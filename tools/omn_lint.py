#!/usr/bin/env python3
"""omn-lint: repo-specific invariants clang-tidy cannot express.

Rules (each scoped to where the invariant actually holds; see
docs/ANALYSIS.md for the full rationale):

  loose-number-parse
      No std::sto*/ato*/strto* outside util/parse.hpp, in src/, tools/,
      bench/, examples/.  These parsers stop at the first bad byte and
      wrap or negate out-of-range values; every numeric token in this
      repo goes through util::parse_count / util::parse_double, which
      reject instead (the PR 6 bug class: `meta attempts 8x` loading as
      8).  tests/ is exempt — rejection tests deliberately compare the
      lax parsers against the strict ones.

  unordered-iteration
      No iteration over a std::unordered_map/set, anywhere in src/,
      tools/, bench/, examples/.  Iteration order is
      implementation-defined, so a serializer, hasher, or to_json that
      walks one emits nondeterministic bytes — and this tree pins exact
      bytes in golden tests, cache keys, and wire checksums.  Declaring
      unordered containers for lookup is fine; only iteration is banned
      (detected as a range-for over, or .begin() on, an identifier the
      same file declares with an unordered type).

  raw-concurrency
      No raw std::thread / std::mutex / std::condition_variable /
      std::lock_guard-family outside src/util/, in src/, tools/, bench/,
      examples/.  Shared state must use the annotated omn::util::Mutex /
      LockGuard / CondVar (thread-safety analysis coverage) and tasks
      must run on the shared ThreadPool (no oversubscription).
      std::thread::hardware_concurrency and std::this_thread are allowed.

  raw-chrono
      No raw std::chrono timing outside src/util/, in src/, tools/,
      bench/, examples/.  Wall clocks go through util::Timer and stage
      timing through OMN_TRACE_SPAN (omn/util/trace.hpp), so every
      measurement shares one monotonic clock discipline and shows up in
      --trace timelines; hand-rolled now()/duration arithmetic is
      invisible to both.  tests/ is exempt (timeout scaffolding).

  no-rand
      No rand()/srand()/random_shuffle, anywhere including tests/.  All
      randomness goes through util::Rng with an explicit seed, or
      results stop being reproducible.

Waivers: a comment anywhere in a file

    // omn-lint: allow(<rule>): <reason>

disables <rule> for that whole file.  The reason is mandatory; a waiver
without one is itself an error.  Waivers are file-granular on purpose —
they are meant to be rare, and a reviewer should read one justification
per file, not play whack-a-mole with line pragmas.

Usage:
    tools/omn_lint.py                  # lint the repo this script sits in
    tools/omn_lint.py path [path...]   # lint specific files/directories
    tools/omn_lint.py --self-test      # run the built-in fixtures

Exit status: 0 clean, 1 findings, 2 bad invocation/self-test failure.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}

WAIVER_RE = re.compile(r"omn-lint:\s*allow\((?P<rule>[\w-]+)\)(?P<reason>.*)")

# ---------------------------------------------------------------------------
# Lexical stripping: rules must not fire on comments or string literals
# (several headers *discuss* std::stod in prose).  Waivers are collected
# from the raw text BEFORE stripping, since they live in comments.


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments/string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Rule machinery


@dataclass
class Finding:
    path: Path
    line: int
    rule: str
    message: str

    def render(self, root: Path) -> str:
        try:
            shown = self.path.resolve().relative_to(root)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}: [{self.rule}] {self.message}"


def _in_dirs(rel: str, dirs: tuple[str, ...]) -> bool:
    return any(rel == d or rel.startswith(d + "/") for d in dirs)


LOOSE_PARSE_RE = re.compile(
    r"\b(?:std::)?(?:stoi|stol|stoll|stoul|stoull|stof|stod|stold"
    r"|atoi|atol|atoll|atof|strtol|strtoll|strtoul|strtoull|strtof"
    r"|strtod|strtold)\s*\("
)
LOOSE_PARSE_EXEMPT = ("src/util/include/omn/util/parse.hpp",)

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*\n?\s*"
    r"(?P<name>\w+)\s*(?:;|=|\{|OMN_GUARDED_BY)"
)
RAW_CONCURRENCY_RE = re.compile(
    r"\bstd::(?:thread\b(?!::)|jthread\b|mutex\b|shared_mutex\b"
    r"|recursive_mutex\b|condition_variable\b|condition_variable_any\b"
    r"|scoped_lock\b|lock_guard\b|unique_lock\b)"
)
RAND_RE = re.compile(r"\b(?:std::)?(?:rand|srand|random_shuffle)\s*\(")
RAW_CHRONO_RE = re.compile(r"\bstd::chrono\b")


def check_loose_number_parse(rel: str, stripped: str) -> list[tuple[int, str]]:
    if not _in_dirs(rel, ("src", "tools", "bench", "examples")):
        return []
    if rel in LOOSE_PARSE_EXEMPT:
        return []
    return [
        (lineno, f"{m.group(0).rstrip('(').strip()} truncates/wraps bad "
                 "input; use util::parse_count / util::parse_double")
        for lineno, m in _matches(stripped, LOOSE_PARSE_RE)
    ]


def check_unordered_iteration(rel: str, stripped: str) -> list[tuple[int, str]]:
    if not _in_dirs(rel, ("src", "tools", "bench", "examples")):
        return []
    names = {m.group("name") for m in UNORDERED_DECL_RE.finditer(stripped)}
    if not names:
        return []
    pattern = re.compile(
        r"(?:for\s*\([^;)]*:\s*(?P<range>" + "|".join(names) + r")\b"
        r"|\b(?P<begin>" + "|".join(names) + r")\s*\.\s*(?:begin|cbegin)\s*\()"
    )
    return [
        (lineno, f"iterating unordered container "
                 f"'{m.group('range') or m.group('begin')}': order is "
                 "implementation-defined, so serialized/hashed bytes become "
                 "nondeterministic")
        for lineno, m in _matches(stripped, pattern)
    ]


def check_raw_concurrency(rel: str, stripped: str) -> list[tuple[int, str]]:
    if not _in_dirs(rel, ("src", "tools", "bench", "examples")):
        return []
    if _in_dirs(rel, ("src/util",)):
        return []  # util implements the sanctioned primitives
    findings = []
    for lineno, m in _matches(stripped, RAW_CONCURRENCY_RE):
        findings.append(
            (lineno, f"{m.group(0)} outside util: use omn::util::Mutex / "
                     "LockGuard / CondVar (annotated, analysis-checked) and "
                     "the shared ThreadPool"))
    return findings


def check_raw_chrono(rel: str, stripped: str) -> list[tuple[int, str]]:
    if not _in_dirs(rel, ("src", "tools", "bench", "examples")):
        return []
    if _in_dirs(rel, ("src/util",)):
        return []  # util::Timer / Trace wrap the clock here
    return [
        (lineno, "raw std::chrono outside util: time wall clocks with "
                 "util::Timer and stages with OMN_TRACE_SPAN so every "
                 "measurement shares one clock discipline and appears "
                 "in --trace timelines")
        for lineno, _ in _matches(stripped, RAW_CHRONO_RE)
    ]


def check_no_rand(rel: str, stripped: str) -> list[tuple[int, str]]:
    if not _in_dirs(rel, ("src", "tools", "bench", "examples", "tests")):
        return []
    return [
        (lineno, f"{m.group(0).rstrip('(').strip()}() is unseeded global "
                 "state; use util::Rng with an explicit seed")
        for lineno, m in _matches(stripped, RAND_RE)
    ]


def _matches(stripped: str, pattern: re.Pattern):
    for m in pattern.finditer(stripped):
        yield stripped.count("\n", 0, m.start()) + 1, m


RULES = {
    "loose-number-parse": check_loose_number_parse,
    "unordered-iteration": check_unordered_iteration,
    "raw-concurrency": check_raw_concurrency,
    "raw-chrono": check_raw_chrono,
    "no-rand": check_no_rand,
}


def collect_waivers(path: Path, raw: str) -> tuple[dict[str, int], list[Finding]]:
    """rule -> waiver line, plus findings for malformed waivers."""
    waivers: dict[str, int] = {}
    problems: list[Finding] = []
    for lineno, line in enumerate(raw.splitlines(), start=1):
        m = WAIVER_RE.search(line)
        if not m:
            continue
        rule, reason = m.group("rule"), m.group("reason")
        if rule not in RULES:
            problems.append(Finding(path, lineno, "bad-waiver",
                                    f"unknown rule '{rule}' in waiver"))
            continue
        if not reason.lstrip().startswith(":") or len(reason.lstrip(": ")) < 8:
            problems.append(Finding(path, lineno, "bad-waiver",
                                    f"waiver for '{rule}' needs a reason: "
                                    "omn-lint: allow(rule): why"))
            continue
        waivers[rule] = lineno
    return waivers, problems


def lint_text(path: Path, rel: str, raw: str) -> list[Finding]:
    waivers, findings = collect_waivers(path, raw)
    stripped = strip_comments_and_strings(raw)
    for rule, check in RULES.items():
        if rule in waivers:
            continue
        for lineno, message in check(rel, stripped):
            findings.append(Finding(path, lineno, rule, message))
    return findings


def lint_file(path: Path, root: Path) -> list[Finding]:
    try:
        rel = str(path.resolve().relative_to(root))
    except ValueError:
        rel = str(path)
    raw = path.read_text(encoding="utf-8", errors="replace")
    return lint_text(path, rel, raw)


def iter_source_files(paths: list[Path]):
    for p in paths:
        if p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix in SOURCE_SUFFIXES and f.is_file():
                    # Never descend into build trees or vendored deps.
                    parts = f.parts
                    if any(part in ("build", "_deps", ".git") for part in parts):
                        continue
                    yield f
        elif p.is_file():
            yield p
        else:
            raise FileNotFoundError(p)


# ---------------------------------------------------------------------------
# Self-test: fixture snippets with known findings, so CI proves the
# checker itself works before trusting its "clean" verdict.

SELF_TEST_FIXTURES = [
    # (virtual path, snippet, expected rule hits)
    ("src/core/src/bad_parse.cpp",
     'int f(const std::string& s) { return std::stoi(s); }\n',
     ["loose-number-parse"]),
    ("src/core/src/bad_parse_c.cpp",
     '#include <cstdlib>\nint f(const char* s) { return atoi(s); }\n',
     ["loose-number-parse"]),
    ("tests/test_ok_lax.cpp",
     'TEST(X, Lax) { EXPECT_EQ(std::stod("0.5x"), 0.5); }\n',
     []),  # tests are exempt from loose-number-parse
    ("src/util/include/omn/util/parse.hpp",
     'inline int p(const char* s) { return atoi(s); }\n',
     []),  # the one sanctioned implementation site
    ("src/net/src/bad_iter.cpp",
     "std::unordered_map<int, int> m_;\n"
     "void to_json() { for (const auto& kv : m_) { use(kv); } }\n",
     ["unordered-iteration"]),
    ("src/net/src/ok_lookup.cpp",
     "std::unordered_map<int, int> m_;\n"
     "bool has(int k) { return m_.find(k) != m_.end(); }\n",
     []),  # lookup is fine, only iteration is banned
    ("src/core/src/bad_thread.cpp",
     "void f() { std::mutex m; std::thread t([]{}); t.join(); }\n",
     ["raw-concurrency", "raw-concurrency"]),
    ("src/core/src/ok_hw.cpp",
     "std::size_t n() { return std::thread::hardware_concurrency(); }\n",
     []),  # querying the core count is not spawning a thread
    ("src/util/src/ok_util_impl.cpp",
     "void f() { std::mutex m; (void)m; }\n",
     []),  # util implements the primitives
    ("src/core/src/waived_thread.cpp",
     "// omn-lint: allow(raw-concurrency): scheduler threads block on "
     "pipe I/O and must not occupy the pool\n"
     "void f() { std::thread t([]{}); t.join(); }\n",
     []),
    ("src/core/src/bad_waiver.cpp",
     "// omn-lint: allow(raw-concurrency)\n"
     "void f() { std::thread t([]{}); t.join(); }\n",
     ["bad-waiver"]),  # missing reason: waiver rejected, rule re-fires
    ("tests/test_bad_rand.cpp",
     "int f() { return rand(); }\n",
     ["no-rand"]),
    ("src/serve/src/bad_chrono.cpp",
     "double f() { auto t = std::chrono::steady_clock::now(); (void)t; "
     "return 0; }\n",
     ["raw-chrono"]),
    ("src/util/src/ok_timer_clock.cpp",
     "auto now() { return std::chrono::steady_clock::now(); }\n",
     []),  # util::Timer's implementation layer owns the raw clock
    ("tests/test_ok_chrono.cpp",
     "auto deadline = std::chrono::seconds(30);\n",
     []),  # tests are exempt (timeout scaffolding)
    ("bench/waived_chrono.cpp",
     "// omn-lint: allow(raw-chrono): calibrating the Timer itself "
     "against the raw clock\n"
     "auto t = std::chrono::steady_clock::now();\n",
     []),
    ("src/core/src/ok_comment.cpp",
     "// std::stoi would truncate here, which is why we use parse_count\n"
     'const char* s = "std::stoi(";\n',
     []),  # comments and string literals never fire
]


def self_test() -> int:
    failures = 0
    for rel, snippet, expected in SELF_TEST_FIXTURES:
        findings = lint_text(Path(rel), rel, snippet)
        got = sorted(f.rule for f in findings
                     if f.rule != "raw-concurrency" or "bad_waiver" not in rel)
        # bad_waiver fixture: the malformed waiver is the interesting
        # finding; the underlying rule firing as well is acceptable.
        if rel.endswith("bad_waiver.cpp"):
            got = sorted({f.rule for f in findings} & {"bad-waiver"})
        if got != sorted(expected):
            failures += 1
            print(f"self-test FAIL {rel}: expected {sorted(expected)}, "
                  f"got {got}", file=sys.stderr)
    if failures:
        return 2
    print(f"self-test OK ({len(SELF_TEST_FIXTURES)} fixtures)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files/directories to lint (default: repo root)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixtures and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    paths = args.paths or [REPO_ROOT / d
                           for d in ("src", "tools", "bench", "examples",
                                     "tests", "fuzz")]
    findings: list[Finding] = []
    for f in iter_source_files(paths):
        findings.extend(lint_file(f, REPO_ROOT))
    for finding in findings:
        print(finding.render(REPO_ROOT))
    if findings:
        print(f"\nomn-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("omn-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
