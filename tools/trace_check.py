#!/usr/bin/env python3
"""Validator for --trace output (Chrome trace-event JSON).

`omn_design --trace out.json` and every bench's `--trace FILE` write the
trace-event "JSON Object Format".  CI's trace-smoke job runs this
checker over traced smoke runs so a refactor that breaks span pairing,
event shape, or worker-lane merging fails loudly instead of producing a
file chrome://tracing quietly mis-renders::

    python3 tools/trace_check.py out.json
    python3 tools/trace_check.py out.json --expect-pids 0,1,2 \\
        --expect-span lp.solve

Checks:
  - the file is one JSON object with a traceEvents list,
  - every event carries name/ph/pid/tid (+ts except metadata), with the
    shapes the exporter emits: instants are thread-scoped ("s":"t"),
    counter samples carry args.value, metadata events name the process,
  - per (pid, tid) lane: "B"/"E" events pair up LIFO with matching
    names and nothing is left open, and timestamps never go backwards
    (each lane is one thread's buffer, recorded in order),
  - --expect-pids: each listed pid is present AND carries at least one
    span, so a distributed run demonstrably merged its worker lanes,
  - --expect-span NAME: some "B" event has exactly that name.

Exit codes: 0 pass, 1 malformed/failed expectation, 2 usage error.
"""

import json
import sys

VALID_PH = ("B", "E", "i", "C", "M")


def fail(message):
    print("trace_check: FAIL: %s" % message)
    return 1


def check_event_shape(event, at):
    """Returns a list of problems with one event's fields."""
    problems = []
    where = "event[%d]" % at
    if not isinstance(event, dict):
        return ["%s: not an object" % where]
    name = event.get("name")
    ph = event.get("ph")
    if not isinstance(name, str) or not name:
        problems.append("%s: missing or empty name" % where)
    if ph not in VALID_PH:
        problems.append("%s: bad ph %r" % (where, ph))
        return problems
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            problems.append("%s (%s): missing integer %s" % (where, name, key))
    if ph != "M" and not isinstance(event.get("ts"), int):
        problems.append("%s (%s): missing integer ts" % (where, name))
    if ph == "i" and event.get("s") != "t":
        problems.append("%s (%s): instant without thread scope" % (where, name))
    if ph == "C" and not isinstance(
        event.get("args", {}).get("value"), (int, float)
    ):
        problems.append("%s (%s): counter without args.value" % (where, name))
    if ph == "M":
        if event.get("name") != "process_name":
            problems.append("%s: unexpected metadata %r" % (where, name))
        elif not event.get("args", {}).get("name"):
            problems.append("%s: process_name without args.name" % where)
    return problems


def check(path, expect_pids, expect_spans):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        return fail("%s: %s" % (path, error))
    if not isinstance(data, dict) or not isinstance(
        data.get("traceEvents"), list
    ):
        return fail("%s: no traceEvents list" % path)

    problems = []
    stacks = {}  # (pid, tid) -> list of open span names
    last_ts = {}  # (pid, tid) -> most recent ts
    span_pids = set()
    seen_pids = set()
    span_names = set()
    spans = 0
    for at, event in enumerate(data["traceEvents"]):
        problems.extend(check_event_shape(event, at))
        if not isinstance(event, dict):
            continue
        ph = event.get("ph")
        name = event.get("name")
        pid = event.get("pid")
        tid = event.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            continue
        seen_pids.add(pid)
        lane = (pid, tid)
        ts = event.get("ts")
        if ph != "M" and isinstance(ts, int):
            if ts < last_ts.get(lane, ts):
                problems.append(
                    "event[%d] (%s): ts %d precedes %d in lane pid=%d tid=%d"
                    % (at, name, ts, last_ts[lane], pid, tid)
                )
            last_ts[lane] = max(ts, last_ts.get(lane, ts))
        if ph == "B":
            stacks.setdefault(lane, []).append(name)
            span_pids.add(pid)
            span_names.add(name)
            spans += 1
        elif ph == "E":
            stack = stacks.get(lane, [])
            if not stack:
                problems.append(
                    "event[%d] (%s): E without open span in lane "
                    "pid=%d tid=%d" % (at, name, pid, tid)
                )
            elif stack[-1] != name:
                problems.append(
                    "event[%d]: E %r closes open span %r in lane "
                    "pid=%d tid=%d" % (at, name, stack[-1], pid, tid)
                )
            else:
                stack.pop()
    for (pid, tid), stack in sorted(stacks.items()):
        for name in stack:
            problems.append(
                "span %r left open in lane pid=%d tid=%d" % (name, pid, tid)
            )

    for pid in expect_pids:
        if pid not in seen_pids:
            problems.append("expected pid %d has no lane" % pid)
        elif pid not in span_pids:
            problems.append("expected pid %d has a lane but no spans" % pid)
    for name in expect_spans:
        if name not in span_names:
            problems.append("expected span %r never begins" % name)

    if problems:
        for problem in problems:
            print("trace_check:   %s" % problem)
        return fail("%s: %d problem(s)" % (path, len(problems)))
    print(
        "trace_check: OK %s: %d events, %d spans, pids %s"
        % (path, len(data["traceEvents"]), spans, sorted(seen_pids))
    )
    return 0


def main(argv):
    args = list(argv[1:])
    expect_pids = []
    expect_spans = []
    usage = (
        "usage: trace_check.py <trace.json> [--expect-pids 0,1,2] "
        "[--expect-span NAME]..."
    )
    while "--expect-pids" in args:
        at = args.index("--expect-pids")
        try:
            expect_pids = [int(p) for p in args[at + 1].split(",") if p]
        except (IndexError, ValueError):
            print(usage)
            return 2
        del args[at : at + 2]
    while "--expect-span" in args:
        at = args.index("--expect-span")
        if at + 1 >= len(args):
            print(usage)
            return 2
        expect_spans.append(args[at + 1])
        del args[at : at + 2]
    if len(args) != 1:
        print(__doc__.strip().splitlines()[0])
        print(usage)
        return 2
    return check(args[0], expect_pids, expect_spans)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
