// omn_design — command-line driver for the overlay design library.
//
// Subcommands:
//   generate  --sinks N [--isps K] [--seed S] [--eu-heavy] --out inst.txt
//   design    --instance inst.txt [--seed S] [--c C] [--colors]
//             [--bandwidth] [--attempts A] [--threads T] [--lp-cache DIR]
//             [--algorithm revised|dense-tableau]
//             [--pricing steepest-edge|dantzig] [--warm-start]
//             [--out design.txt] [--metrics out.json]
//   sweep     --instance inst.txt [--c C1,C2,...] [--seeds K]
//             [--attempts A] [--threads T] [--no-reuse-lp] [--lp-cache DIR]
//             [--workers N] [--checkpoints DIR] [--metrics out.json]
//   serve     --instance inst.txt [--journal F] [--seed S] [--c C]
//             [--colors] [--bandwidth] [--attempts A] [--threads T]
//             [--warm-start] [--lp-cache DIR]
//             [--algorithm ...] [--pricing ...] [--metrics F]
//   run       script.omn          (command file: one subcommand per line)
//   evaluate  --instance inst.txt --design design.txt
//   simulate  --instance inst.txt --design design.txt [--packets P]
//             [--seed S] [--isp-outage-prob Q]
//   failover  --instance inst.txt --design design.txt
//   worker    [--lp-cache DIR]   (internal: distributed sweep worker)
//
// Global flags (any subcommand, any position; stripped before the
// subcommand parser runs):
//   --log FILE    tee everything printed to stdout/stderr into FILE,
//                 each line stamped with seconds since startup (the
//                 console output is unchanged; see omn/util/log.hpp)
//   --trace FILE  record hierarchical spans (designer stages, LP
//                 phases, cache traffic, per-worker shard lanes) and
//                 write a merged Chrome trace-event JSON timeline at
//                 exit — load FILE in chrome://tracing or Perfetto.
//                 `sweep --workers N --trace F` merges the workers'
//                 spans into the same file as per-pid lanes.
//
// Typical session:
//   omn_design generate --sinks 48 --isps 4 --seed 7 --out event.txt
//   omn_design design   --instance event.txt --colors --out plan.txt
//   omn_design sweep    --instance event.txt --c 0.5,2,8 --seeds 4
//   omn_design evaluate --instance event.txt --design plan.txt
//   omn_design failover --instance event.txt --design plan.txt
//
// ... or the same pipeline as ONE reproducible invocation: put those
// lines (minus the leading "omn_design") in a command file and run
//   omn_design run pipeline.omn
// Blank lines and #-comments are skipped; the first failing line aborts
// the script with its line number.  See docs/EXPERIMENTS.md.
//
// design/sweep --metrics out.json writes the run's counters and
// per-stage timers as JSON (schema "omn-metrics-v1", the same envelope
// the benches emit; see docs/EXPERIMENTS.md "Metrics JSON schema").
//
// Design runs execute on the process-wide ExecutionContext; --threads T
// caps the parallelism (0 = all cores, 1 = serial) without changing the
// result — attempt seeds are deterministic, so the design is bit-identical
// for every thread count.  `design --out` records the knobs and per-stage
// timings as `meta` lines in the design file; `evaluate` reports them back.
//
// design --algorithm / --pricing select the simplex core and entering
// rule (see omn/lp/simplex.hpp); `--algorithm dense-tableau` keeps the
// original dense oracle selectable for differential runs.  --warm-start
// (requires --lp-cache) lets a structurally identical instance reuse the
// cache's optimal basis: the LP solve skips phase I and typically needs a
// small fraction of the cold pivots, at the price of possibly returning a
// DIFFERENT optimal vertex than the cold solve — so warm runs trade the
// repo's bit-identity guarantee for speed, and the flag is off by default.
//
// --lp-cache DIR installs a content-addressed core::LpCache over DIR:
// the LP solve (the dominant design cost) is keyed on the instance's
// canonical content plus the LP/solve options and persisted, so a second
// run over the same topology performs zero simplex solves — concurrent
// processes can share one directory (entries are written atomically).
// The design is bit-identical with the cache on or off; cache traffic is
// reported with the timings.
//
// serve is the long-lived incremental-redesign daemon (omn::serve): it
// loads the instance, designs it once, then consumes the line-oriented
// event protocol on stdin (node-add/node-remove/edge-fail/edge-restore/
// capacity-set/query/snapshot/quit; see docs/ARCHITECTURE.md), mutating
// the in-memory instance and re-designing after every event.  With
// --journal F every applied event is appended (checksummed, flushed
// before the ack) so a killed daemon restarted with the same --journal
// replays to the identical design; `snapshot` compacts the journal.
// serve allows --warm-start WITHOUT --lp-cache: the session installs a
// memory-only LpCache for its own basis reuse when none is configured.
//
// sweep --workers N shards the grid across N `omn_design worker`
// subprocesses (omn::dist): the report is bit-identical to the in-process
// sweep, workers share the --lp-cache directory (a warm distributed
// sweep performs zero simplex solves), a killed worker's shard is
// reassigned to a survivor, and --checkpoints DIR persists per-shard
// results so an interrupted sweep resumes without recomputing them.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "omn/core/design_io.hpp"
#include "omn/core/design_sweep.hpp"
#include "omn/core/designer.hpp"
#include "omn/core/lp_cache.hpp"
#include "omn/dist/dist_sweep.hpp"
#include "omn/dist/worker.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/net/serialize.hpp"
#include "omn/obs/chrome_trace.hpp"
#include "omn/serve/serve.hpp"
#include "omn/sim/failures.hpp"
#include "omn/sim/packet_sim.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/execution_context.hpp"
#include "omn/util/json.hpp"
#include "omn/util/log.hpp"
#include "omn/util/parse.hpp"
#include "omn/util/script.hpp"
#include "omn/util/table.hpp"
#include "omn/util/trace.hpp"

namespace {

struct Args;
std::shared_ptr<omn::core::LpCache> make_lp_cache(const Args& args);

/// A malformed invocation (bad option value, unknown argument): main
/// prints the message and exits with the usage status (2) instead of the
/// generic failure status — and never with an uncaught std::sto* throw.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it != options.end() ? it->second : fallback;
  }
  /// Strict non-negative integer option (util::parse_count): `--seed 7x`
  /// or `--threads -1` is a usage error, not a silently truncated or
  /// wrapped value the run then quietly computes with.
  std::size_t get_count(const std::string& key, std::size_t fallback) const {
    auto it = options.find(key);
    if (it == options.end()) return fallback;
    const std::optional<std::size_t> parsed = omn::util::parse_count(it->second);
    if (!parsed.has_value()) {
      throw UsageError("bad --" + key + " value '" + it->second +
                       "' (expected a non-negative integer)");
    }
    return *parsed;
  }
  /// Strict finite double option (util::parse_double).
  double get_double(const std::string& key, double fallback) const {
    auto it = options.find(key);
    if (it == options.end()) return fallback;
    const std::optional<double> parsed = omn::util::parse_double(it->second);
    if (!parsed.has_value()) {
      throw UsageError("bad --" + key + " value '" + it->second +
                       "' (expected a finite number)");
    }
    return *parsed;
  }
  bool has(const std::string& key) const { return flags.count(key) > 0; }
};

/// Parses `command option...` from a token list (shared by the argv path
/// and the `run` command-file lines, which tokenize each line the same
/// way a shell would split the equivalent argv).
Args parse(const std::vector<std::string>& tokens) {
  Args args;
  if (!tokens.empty()) args.command = tokens[0];
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::string token = tokens[i];
    if (token.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected argument: " + token);
    }
    token = token.substr(2);
    const bool value_follows =
        i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0;
    if (value_follows) {
      args.options[token] = tokens[++i];
    } else {
      args.flags[token] = true;
    }
  }
  return args;
}

/// The validated --metrics path ("" when the flag is absent).
std::string metrics_path(const Args& args) {
  if (args.has("metrics")) {
    throw std::runtime_error("--metrics needs a file path argument");
  }
  return args.get("metrics", "");
}

/// Starts a "omn-metrics-v1" envelope for one omn_design subcommand.
/// The envelope mirrors the one bench_common.hpp emits so one consumer
/// (the CI perf gate, a notebook) reads both.
omn::util::Json metrics_envelope(const std::string& command) {
  omn::util::Json envelope = omn::util::Json::object();
  envelope.set("schema", "omn-metrics-v1");
  envelope.set("tool", "omn_design " + command);
  return envelope;
}

void write_metrics_file(const std::string& path,
                        const omn::util::Json& envelope) {
  std::ofstream out(path, std::ios::trunc);
  out << envelope.dump(2) << "\n";
  if (!out.good()) {
    throw std::runtime_error("cannot write --metrics file " + path);
  }
}

/// The validated --lp-cache directory ("" when the flag is absent).  A
/// bare --lp-cache is rejected: without a directory nothing outlives the
/// process, and within one process the sweep planner already dedupes.
std::string lp_cache_dir(const Args& args) {
  if (args.has("lp-cache")) {
    throw std::runtime_error("--lp-cache needs a directory argument");
  }
  return args.get("lp-cache", "");
}

/// The --lp-cache DIR cache, or nullptr when the flag is absent.
std::shared_ptr<omn::core::LpCache> make_lp_cache(const Args& args) {
  const std::string dir = lp_cache_dir(args);
  if (dir.empty()) return nullptr;
  return std::make_shared<omn::core::LpCache>(dir);
}

/// --algorithm / --pricing / --warm-start -> the designer's LP knobs.
/// Unknown names are usage errors, not silent defaults.
/// `warm_needs_cache` enforces the design/sweep pairing of --warm-start
/// with --lp-cache; serve passes false because its DesignState installs a
/// memory-only cache itself when none is configured.
void apply_lp_flags(const Args& args, omn::core::DesignerConfig& cfg,
                    bool warm_needs_cache = true) {
  const std::string algorithm = args.get("algorithm", "revised");
  if (algorithm == "revised") {
    cfg.lp_options.algorithm = omn::lp::Algorithm::kRevised;
  } else if (algorithm == "dense-tableau") {
    cfg.lp_options.algorithm = omn::lp::Algorithm::kDenseTableau;
  } else {
    throw UsageError("bad --algorithm value '" + algorithm +
                     "' (expected 'revised' or 'dense-tableau')");
  }
  const std::string pricing = args.get("pricing", "steepest-edge");
  if (pricing == "steepest-edge") {
    cfg.lp_options.pricing = omn::lp::Pricing::kSteepestEdge;
  } else if (pricing == "dantzig") {
    cfg.lp_options.pricing = omn::lp::Pricing::kDantzig;
  } else {
    throw UsageError("bad --pricing value '" + pricing +
                     "' (expected 'steepest-edge' or 'dantzig')");
  }
  cfg.lp_warm_start = args.has("warm-start");
  if (cfg.lp_warm_start && warm_needs_cache && lp_cache_dir(args).empty()) {
    throw UsageError("--warm-start requires --lp-cache DIR (the shape-keyed "
                     "basis index lives on the cache)");
  }
}

/// Strips the global `--log FILE` / `--trace FILE` flags (valid for
/// every subcommand, at any position) out of the token list and applies
/// them: --log installs the stdout/stderr tee, --trace turns span
/// recording on and registers the Chrome-trace export at exit.  Strict:
/// a missing or flag-like value is a UsageError.
void apply_global_flags(std::vector<std::string>& tokens) {
  for (auto it = tokens.begin(); it != tokens.end();) {
    if (*it != "--log" && *it != "--trace") {
      ++it;
      continue;
    }
    const std::string flag = *it;
    it = tokens.erase(it);
    if (it == tokens.end() || it->rfind("--", 0) == 0) {
      throw UsageError(flag + " needs a file path argument");
    }
    const std::string path = *it;
    it = tokens.erase(it);
    if (flag == "--log") {
      omn::util::install_log_tee(path);
    } else {
      omn::util::Trace::set_enabled(true);
      omn::obs::export_merged_trace_at_exit(path, "omn_design");
    }
  }
}

int usage() {
  std::cerr <<
      "usage: omn_design [--log FILE] [--trace FILE] <command> [options]\n"
      "  generate  --sinks N [--isps K] [--seed S] [--eu-heavy] --out F\n"
      "  design    --instance F [--seed S] [--c C] [--colors] [--bandwidth]\n"
      "            [--attempts A] [--threads T] [--lp-cache DIR] [--out F]\n"
      "            [--algorithm revised|dense-tableau]\n"
      "            [--pricing steepest-edge|dantzig] [--warm-start]\n"
      "            [--metrics F]\n"
      "  serve     --instance F [--journal F] [--seed S] [--c C] [--colors]\n"
      "            [--bandwidth] [--attempts A] [--threads T] [--warm-start]\n"
      "            [--lp-cache DIR] [--algorithm ...] [--pricing ...]\n"
      "            [--metrics F]    (event protocol on stdin; see header)\n"
      "  sweep     --instance F [--c C1,C2,...] [--seeds K] [--attempts A]\n"
      "            [--threads T] [--no-reuse-lp] [--lp-cache DIR]\n"
      "            [--workers N] [--checkpoints DIR] [--metrics F]\n"
      "  run       script.omn    (one subcommand per line; # comments)\n"
      "  worker    [--lp-cache DIR]    (internal: distributed sweep worker)\n"
      "  evaluate  --instance F --design F\n"
      "  simulate  --instance F --design F [--packets P] [--seed S]\n"
      "            [--isp-outage-prob Q]\n"
      "  failover  --instance F --design F\n";
  return 2;
}

int cmd_generate(const Args& args) {
  const int sinks = static_cast<int>(args.get_count("sinks", 48));
  const auto seed = static_cast<std::uint64_t>(args.get_count("seed", 1));
  auto cfg = args.has("eu-heavy")
                 ? omn::topo::eu_heavy_event_config(sinks, seed)
                 : omn::topo::global_event_config(sinks, seed);
  cfg.num_isps = static_cast<int>(
      args.get_count("isps", static_cast<std::size_t>(cfg.num_isps)));
  const auto inst = omn::topo::make_akamai_like(cfg);
  const std::string out = args.get("out", "");
  if (out.empty()) {
    omn::net::save(inst, std::cout);
  } else {
    omn::net::save_file(inst, out);
    std::printf("wrote %s: %d sources, %d reflectors, %d sinks, %zu+%zu edges\n",
                out.c_str(), inst.num_sources(), inst.num_reflectors(),
                inst.num_sinks(), inst.sr_edges().size(),
                inst.rd_edges().size());
  }
  return 0;
}

int cmd_design(const Args& args) {
  const auto inst = omn::net::load_file(args.get("instance", ""));
  omn::core::DesignerConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_count("seed", 1));
  cfg.c = args.get_double("c", cfg.c);
  cfg.rounding_attempts = static_cast<int>(args.get_count("attempts", 3));
  cfg.threads = static_cast<int>(args.get_count("threads", 0));
  cfg.color_constraints = args.has("colors");
  cfg.bandwidth_extension = args.has("bandwidth");
  apply_lp_flags(args, cfg);
  const std::shared_ptr<omn::core::LpCache> cache = make_lp_cache(args);
  // The designer's own context choice, with the cache riding along as a
  // service when requested (a context without the service behaves exactly
  // like the no-context overload).
  omn::util::ExecutionContext context =
      omn::core::OverlayDesigner::default_context(cfg);
  if (cache != nullptr) context.set_service(cache);
  const omn::core::DesignResult result =
      omn::core::OverlayDesigner(cfg).design(inst, context);
  if (!result.ok()) {
    std::cerr << "design failed: " << omn::core::to_string(result.status)
              << "\n";
    return 1;
  }
  std::printf("cost $%.2f (LP bound $%.2f, ratio %.2f); %d reflectors; "
              "min weight ratio %.2f\n",
              result.evaluation.total_cost, result.lp_objective,
              result.cost_ratio, result.evaluation.reflectors_built,
              result.evaluation.min_weight_ratio);
  const std::string threads_label =
      cfg.threads == 0 ? "all" : std::to_string(cfg.threads);
  std::printf("timings: lp_seconds %.3f | rounding_seconds %.3f "
              "(attempts %d, threads %s)\n",
              result.lp_seconds, result.rounding_seconds,
              result.attempts_made, threads_label.c_str());
  std::printf("lp: %s/%s | %d pivots (%d phase 1), %d refactorizations%s\n",
              omn::lp::to_string(cfg.lp_options.algorithm).c_str(),
              omn::lp::to_string(cfg.lp_options.pricing).c_str(),
              result.lp_iterations, result.lp_phase1_iterations,
              result.lp_refactorizations,
              result.lp_warm_start ? ", warm-started" : "");
  if (cache != nullptr) {
    const omn::core::LpCacheStats stats = cache->stats();
    std::printf("lp cache: %s | %zu hits (%zu disk), %zu misses, "
                "%zu rejected | dir %s\n",
                result.lp_cache_hit ? "HIT (solve skipped)" : "miss (stored)",
                stats.hits, stats.disk_hits, stats.misses, stats.rejected,
                cache->directory().c_str());
  }
  const std::string metrics = metrics_path(args);
  if (!metrics.empty()) {
    omn::util::Json envelope = metrics_envelope("design");
    envelope.set("threads", static_cast<std::size_t>(cfg.threads));
    envelope.set("lp_cache", lp_cache_dir(args));
    envelope.set("design", omn::core::to_json(result));
    if (cache != nullptr) {
      const omn::core::LpCacheStats stats = cache->stats();
      omn::util::Json cache_json = omn::util::Json::object();
      cache_json.set("hits", stats.hits);
      cache_json.set("disk_hits", stats.disk_hits);
      cache_json.set("misses", stats.misses);
      cache_json.set("rejected", stats.rejected);
      envelope.set("lp_cache_stats", std::move(cache_json));
    }
    write_metrics_file(metrics, envelope);
    std::printf("wrote metrics %s\n", metrics.c_str());
  }
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    omn::core::DesignMeta meta;
    meta.seed = cfg.seed;
    meta.c = cfg.c;
    // The attempts actually run (the designer clamps to >= 1), so the
    // provenance is truthful and always nonzero for files we write —
    // which is what cmd_evaluate's presence check keys on.
    meta.rounding_attempts = result.attempts_made;
    meta.threads = cfg.threads;
    meta.lp_seconds = result.lp_seconds;
    meta.rounding_seconds = result.rounding_seconds;
    omn::core::save_design_file(result.design, out, meta);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int cmd_serve(const Args& args) {
  omn::core::DesignerConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_count("seed", 1));
  cfg.c = args.get_double("c", cfg.c);
  cfg.rounding_attempts = static_cast<int>(args.get_count("attempts", 3));
  cfg.threads = static_cast<int>(args.get_count("threads", 0));
  cfg.color_constraints = args.has("colors");
  cfg.bandwidth_extension = args.has("bandwidth");
  apply_lp_flags(args, cfg, /*warm_needs_cache=*/false);

  omn::serve::ServeOptions options;
  options.config = cfg;
  options.journal_path = args.get("journal", "");
  options.metrics_path = metrics_path(args);

  const std::shared_ptr<omn::core::LpCache> cache = make_lp_cache(args);
  omn::util::ExecutionContext context =
      omn::core::OverlayDesigner::default_context(cfg);
  if (cache != nullptr) context.set_service(cache);

  // An existing journal means resume (replay to the killed session's
  // state); otherwise a fresh session — which overwrites any --journal
  // path it is given, so a *corrupt* journal must not silently fall
  // through to "fresh".  Journal::load draws that line: resume for any
  // readable file, and corruption is a loud JournalError.
  const bool resume = !options.journal_path.empty() &&
                      std::ifstream(options.journal_path).good();
  if (resume) {
    omn::serve::ServeSession session =
        omn::serve::ServeSession::resume(options, std::move(context));
    return session.run(std::cin, std::cout);
  }
  const auto inst = omn::net::load_file(args.get("instance", ""));
  omn::serve::ServeSession session(inst, std::move(options),
                                   std::move(context));
  return session.run(std::cin, std::cout);
}

int cmd_sweep(const Args& args) {
  const auto inst = omn::net::load_file(args.get("instance", ""));
  const int seeds = static_cast<int>(args.get_count("seeds", 3));
  const int attempts = static_cast<int>(args.get_count("attempts", 1));

  std::vector<double> cs;
  std::stringstream list(args.get("c", "0.5,2,8"));
  for (std::string item; std::getline(list, item, ',');) {
    if (item.empty()) continue;
    const std::optional<double> value = omn::util::parse_double(item);
    if (!value.has_value()) {
      throw UsageError("bad --c value '" + item +
                       "' (expected a comma-separated list of numbers)");
    }
    cs.push_back(*value);
  }

  // All configs differ only in rounding knobs (c, seed), so the LP-reuse
  // planner solves the instance's LP exactly once for the whole grid.
  omn::core::DesignSweep sweep;
  sweep.add_instance("instance", inst);
  for (double c : cs) {
    for (int seed = 1; seed <= seeds; ++seed) {
      omn::core::DesignerConfig cfg;
      cfg.c = c;
      cfg.seed = static_cast<std::uint64_t>(seed);
      cfg.rounding_attempts = attempts;
      sweep.add_config("c" + omn::util::format_double(c, 2) + "-s" +
                           std::to_string(seed),
                       cfg);
    }
  }
  omn::core::SweepOptions options;
  options.threads = args.get_count("threads", 0);
  options.reuse_lp = !args.has("no-reuse-lp");
  const std::size_t workers = args.get_count("workers", 0);

  // Checkpoints are a distributed-engine feature (per-SHARD results);
  // silently ignoring the flag on an in-process sweep would let a
  // multi-hour run believe it is resumable when it is not.
  if (workers == 0 && !args.get("checkpoints", "").empty()) {
    throw std::runtime_error("--checkpoints requires --workers N (shard "
                             "checkpoints exist only for distributed sweeps)");
  }
  omn::core::SweepReport report;
  omn::dist::DistStats dist_stats;
  std::shared_ptr<omn::core::LpCache> cache;
  if (workers > 0) {
    // Shard across worker processes: this binary re-invokes itself as
    // `omn_design worker`, and the workers own the LP cache (sharing the
    // --lp-cache directory across processes).
    omn::dist::DistOptions dist_options;
    dist_options.workers = workers;
    dist_options.worker_command =
        omn::dist::self_worker_command(lp_cache_dir(args));
    dist_options.checkpoint_dir = args.get("checkpoints", "");
    dist_options.stats = &dist_stats;
    report = sweep.run_distributed(options, dist_options);
  } else {
    cache = make_lp_cache(args);
    omn::util::ExecutionContext context =
        omn::core::DesignSweep::default_context(options);
    if (cache != nullptr) context.set_service(cache);
    report = sweep.run(options, context);
  }

  omn::util::Table table({"config", "cost $", "cost/LP", "min w-ratio",
                          "winning attempt", "rounding s"});
  for (const omn::core::SweepCell& cell : report.cells) {
    if (!cell.result.ok()) {
      table.row().cell(cell.config_label)
          .cell(omn::core::to_string(cell.result.status))
          .cell("-").cell("-").cell("-").cell("-");
      continue;
    }
    table.row()
        .cell(cell.config_label)
        .cell(cell.result.evaluation.total_cost, 2)
        .cell(cell.result.cost_ratio, 3)
        .cell(cell.result.evaluation.min_weight_ratio, 3)
        .cell(cell.result.winning_attempt)
        .cell(cell.result.rounding_seconds, 3);
  }
  table.print(std::cout, "sweep: " + std::to_string(cs.size()) + " c values x " +
                             std::to_string(seeds) + " seeds");
  std::printf("\n%zu cells | %zu LP solves (%zu distinct LP configs) | "
              "%.2fs wall\n",
              report.cells.size(), report.lp_solves, report.lp_configs,
              report.wall_seconds);
  if (workers > 0) {
    std::printf("distributed: %zu workers x %zu threads, %zu shards "
                "(%zu computed, %zu from checkpoints, %zu reassigned) | "
                "cache %zu hits / %zu misses | %.2fs cpu\n",
                dist_stats.workers_spawned, dist_stats.threads_per_worker,
                dist_stats.shards_total, dist_stats.shards_computed,
                dist_stats.shards_from_checkpoint,
                dist_stats.shards_reassigned, report.lp_cache_hits,
                report.lp_cache_misses, report.cpu_seconds);
  }
  if (cache != nullptr) {
    const omn::core::LpCacheStats stats = cache->stats();
    std::printf("lp cache: %zu hits (%zu disk), %zu misses, %zu rejected | "
                "dir %s\n",
                report.lp_cache_hits, stats.disk_hits, report.lp_cache_misses,
                stats.rejected, cache->directory().c_str());
  }
  const std::string metrics = metrics_path(args);
  if (!metrics.empty()) {
    omn::util::Json envelope = metrics_envelope("sweep");
    envelope.set("threads", options.threads);
    envelope.set("workers", workers);
    envelope.set("lp_cache", lp_cache_dir(args));
    omn::util::Json record = omn::core::to_json(report);
    record.set("label", "sweep");
    if (workers > 0) record.set("dist", omn::dist::to_json(dist_stats));
    omn::util::Json sweeps = omn::util::Json::array();
    sweeps.push(std::move(record));
    envelope.set("sweeps", std::move(sweeps));
    write_metrics_file(metrics, envelope);
    std::printf("wrote metrics %s\n", metrics.c_str());
  }
  return 0;
}

int cmd_evaluate(const Args& args) {
  const auto inst = omn::net::load_file(args.get("instance", ""));
  omn::core::DesignMeta meta;
  const auto design =
      omn::core::load_design_file(args.get("design", ""), inst, &meta);
  if (meta.rounding_attempts > 0) {
    const std::string threads_label =
        meta.threads == 0 ? "all" : std::to_string(meta.threads);
    std::printf("designed with seed %llu, c %.2f, %d attempts, threads %s; "
                "lp_seconds %.3f, rounding_seconds %.3f\n",
                static_cast<unsigned long long>(meta.seed), meta.c,
                meta.rounding_attempts, threads_label.c_str(),
                meta.lp_seconds, meta.rounding_seconds);
  }
  const auto ev = omn::core::evaluate(inst, design);
  omn::util::Table table({"metric", "value"});
  table.add_row({"total cost $", omn::util::format_double(ev.total_cost, 2)});
  table.add_row({"reflector / SR / RD $",
                 omn::util::format_double(ev.reflector_cost, 2) + " / " +
                     omn::util::format_double(ev.sr_edge_cost, 2) + " / " +
                     omn::util::format_double(ev.rd_edge_cost, 2)});
  table.add_row({"reflectors built", std::to_string(ev.reflectors_built)});
  table.add_row({"consistent", ev.consistent ? "yes" : "NO"});
  table.add_row({"min / mean weight ratio",
                 omn::util::format_double(ev.min_weight_ratio, 3) + " / " +
                     omn::util::format_double(ev.mean_weight_ratio, 3)});
  table.add_row({"sinks meeting full demand",
                 std::to_string(ev.sinks_meeting_demand) + "/" +
                     std::to_string(ev.sinks_total)});
  table.add_row({"sinks meeting 1/4 guarantee",
                 std::to_string(ev.sinks_meeting_quarter) + "/" +
                     std::to_string(ev.sinks_total)});
  table.add_row({"worst fanout utilization",
                 omn::util::format_double(ev.max_fanout_utilization, 2)});
  table.add_row({"max copies per (sink, ISP)",
                 std::to_string(ev.max_color_copies)});
  table.print(std::cout, "evaluation");
  return 0;
}

int cmd_simulate(const Args& args) {
  const auto inst = omn::net::load_file(args.get("instance", ""));
  const auto design =
      omn::core::load_design_file(args.get("design", ""), inst);
  omn::sim::SimulationConfig cfg;
  cfg.num_packets = static_cast<long long>(args.get_count("packets", 100000));
  cfg.seed = static_cast<std::uint64_t>(args.get_count("seed", 1));
  cfg.isp_outage_probability = args.get_double("isp-outage-prob", 0.0);
  const auto report = omn::sim::simulate(inst, design, cfg);
  std::printf("%lld packets: %.1f%% of sinks meet their threshold, %.1f%% "
              "meet the 1/4 guarantee\n",
              static_cast<long long>(report.packets),
              100.0 * report.fraction_meeting_threshold,
              100.0 * report.fraction_meeting_quarter_guarantee);
  return 0;
}

int cmd_failover(const Args& args) {
  const auto inst = omn::net::load_file(args.get("instance", ""));
  const auto design =
      omn::core::load_design_file(args.get("design", ""), inst);
  const auto sweep = omn::sim::color_failure_sweep(inst, design);
  omn::util::Table table({"failed ISP", "served %", "meet threshold %",
                          "meet 1/4 %", "mean P(deliver)"});
  for (const auto& r : sweep) {
    table.row()
        .cell(r.color)
        .cell(100.0 * r.fraction_served, 1)
        .cell(100.0 * r.fraction_meeting_threshold, 1)
        .cell(100.0 * r.fraction_meeting_quarter, 1)
        .cell(r.mean_delivery_probability, 4);
  }
  table.print(std::cout, "single-ISP outage sweep");
  return 0;
}

int cmd_run(const std::vector<std::string>& tokens);

/// Routes one parsed command line to its implementation.  Returns -1 for
/// an unknown command (the caller decides between usage() and a script
/// error with a line number).
int dispatch(const Args& args) {
  if (args.command == "generate") return cmd_generate(args);
  if (args.command == "design") return cmd_design(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "sweep") return cmd_sweep(args);
  if (args.command == "evaluate") return cmd_evaluate(args);
  if (args.command == "simulate") return cmd_simulate(args);
  if (args.command == "failover") return cmd_failover(args);
  return -1;
}

/// `omn_design run script.omn` — the whole experiment pipeline as one
/// reproducible invocation.  Each non-blank, non-#-comment line is one
/// subcommand invocation (`generate --sinks 8 --out inst.txt`, then
/// `design ...`, `evaluate ...`, `sweep ...`), tokenized on whitespace
/// and dispatched exactly like the argv path.  A trailing `\` continues
/// a command onto the next line.  The first failing line aborts with its
/// line number; `worker` and nested `run` lines are rejected (the former
/// owns stdin/stdout, the latter invites cycles).
int cmd_run(const std::vector<std::string>& tokens) {
  if (tokens.size() != 1) {
    throw std::runtime_error("usage: omn_design run <script.omn>");
  }
  const std::string& path = tokens[0];
  std::ifstream script(path);
  if (!script) throw std::runtime_error("run: cannot open " + path);
  // The tokenizer lives in util (omn/util/script.hpp) so the fuzz harness
  // drives the exact reader this subcommand trusts.
  const std::vector<omn::util::ScriptCommand> commands =
      omn::util::parse_script(script);
  for (const omn::util::ScriptCommand& command : commands) {
    const auto fail = [&](const std::string& why) {
      throw std::runtime_error("run: " + path + ":" +
                               std::to_string(command.line_number) + ": " +
                               why);
    };
    if (command.tokens[0] == "worker" || command.tokens[0] == "run" ||
        command.tokens[0] == "serve") {
      fail("'" + command.tokens[0] + "' is not scriptable");
    }
    std::printf("== %s:%d: %s\n", path.c_str(), command.line_number,
                command.text.c_str());
    int status = 0;
    try {
      status = dispatch(parse(command.tokens));
    } catch (const std::exception& ex) {
      fail(ex.what());
    }
    if (status == -1) fail("unknown command '" + command.tokens[0] + "'");
    if (status != 0) {
      fail("command failed with exit status " + std::to_string(status));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // The worker subcommand speaks binary frames on stdin/stdout; route it
  // before the option parser so nothing else ever touches those streams.
  if (argc >= 2 && std::strcmp(argv[1], "worker") == 0) {
    return omn::dist::worker_main(argc, argv);
  }
  try {
    std::vector<std::string> tokens;
    for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
    apply_global_flags(tokens);
    if (!tokens.empty() && tokens[0] == "run") {
      // The script path is a positional argument, which parse() rejects
      // by design everywhere else — route before the option parser.
      return cmd_run({tokens.begin() + 1, tokens.end()});
    }
    const Args args = parse(tokens);
    const int status = dispatch(args);
    return status == -1 ? usage() : status;
  } catch (const UsageError& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return usage();
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
}
