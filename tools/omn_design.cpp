// omn_design — command-line driver for the overlay design library.
//
// Subcommands:
//   generate  --sinks N [--isps K] [--seed S] [--eu-heavy] --out inst.txt
//   design    --instance inst.txt [--seed S] [--c C] [--colors]
//             [--bandwidth] [--attempts A] [--out design.txt]
//   evaluate  --instance inst.txt --design design.txt
//   simulate  --instance inst.txt --design design.txt [--packets P]
//             [--seed S] [--isp-outage-prob Q]
//   failover  --instance inst.txt --design design.txt
//
// Typical session:
//   omn_design generate --sinks 48 --isps 4 --seed 7 --out event.txt
//   omn_design design   --instance event.txt --colors --out plan.txt
//   omn_design evaluate --instance event.txt --design plan.txt
//   omn_design failover --instance event.txt --design plan.txt

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "omn/core/design_io.hpp"
#include "omn/core/designer.hpp"
#include "omn/net/serialize.hpp"
#include "omn/sim/failures.hpp"
#include "omn/sim/packet_sim.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/table.hpp"

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it != options.end() ? it->second : fallback;
  }
  long get_long(const std::string& key, long fallback) const {
    auto it = options.find(key);
    return it != options.end() ? std::stol(it->second) : fallback;
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it != options.end() ? std::stod(it->second) : fallback;
  }
  bool has(const std::string& key) const { return flags.count(key) > 0; }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected argument: " + token);
    }
    token = token.substr(2);
    const bool value_follows =
        i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0;
    if (value_follows) {
      args.options[token] = argv[++i];
    } else {
      args.flags[token] = true;
    }
  }
  return args;
}

int usage() {
  std::cerr <<
      "usage: omn_design <command> [options]\n"
      "  generate  --sinks N [--isps K] [--seed S] [--eu-heavy] --out F\n"
      "  design    --instance F [--seed S] [--c C] [--colors] [--bandwidth]\n"
      "            [--attempts A] [--out F]\n"
      "  evaluate  --instance F --design F\n"
      "  simulate  --instance F --design F [--packets P] [--seed S]\n"
      "            [--isp-outage-prob Q]\n"
      "  failover  --instance F --design F\n";
  return 2;
}

int cmd_generate(const Args& args) {
  const int sinks = static_cast<int>(args.get_long("sinks", 48));
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  auto cfg = args.has("eu-heavy")
                 ? omn::topo::eu_heavy_event_config(sinks, seed)
                 : omn::topo::global_event_config(sinks, seed);
  cfg.num_isps = static_cast<int>(args.get_long("isps", cfg.num_isps));
  const auto inst = omn::topo::make_akamai_like(cfg);
  const std::string out = args.get("out", "");
  if (out.empty()) {
    omn::net::save(inst, std::cout);
  } else {
    omn::net::save_file(inst, out);
    std::printf("wrote %s: %d sources, %d reflectors, %d sinks, %zu+%zu edges\n",
                out.c_str(), inst.num_sources(), inst.num_reflectors(),
                inst.num_sinks(), inst.sr_edges().size(),
                inst.rd_edges().size());
  }
  return 0;
}

int cmd_design(const Args& args) {
  const auto inst = omn::net::load_file(args.get("instance", ""));
  omn::core::DesignerConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  cfg.c = args.get_double("c", cfg.c);
  cfg.rounding_attempts = static_cast<int>(args.get_long("attempts", 3));
  cfg.color_constraints = args.has("colors");
  cfg.bandwidth_extension = args.has("bandwidth");
  const auto result = omn::core::OverlayDesigner(cfg).design(inst);
  if (!result.ok()) {
    std::cerr << "design failed: " << omn::core::to_string(result.status)
              << "\n";
    return 1;
  }
  std::printf("cost $%.2f (LP bound $%.2f, ratio %.2f); %d reflectors; "
              "min weight ratio %.2f\n",
              result.evaluation.total_cost, result.lp_objective,
              result.cost_ratio, result.evaluation.reflectors_built,
              result.evaluation.min_weight_ratio);
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    omn::core::save_design_file(result.design, out);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int cmd_evaluate(const Args& args) {
  const auto inst = omn::net::load_file(args.get("instance", ""));
  const auto design =
      omn::core::load_design_file(args.get("design", ""), inst);
  const auto ev = omn::core::evaluate(inst, design);
  omn::util::Table table({"metric", "value"});
  table.add_row({"total cost $", omn::util::format_double(ev.total_cost, 2)});
  table.add_row({"reflector / SR / RD $",
                 omn::util::format_double(ev.reflector_cost, 2) + " / " +
                     omn::util::format_double(ev.sr_edge_cost, 2) + " / " +
                     omn::util::format_double(ev.rd_edge_cost, 2)});
  table.add_row({"reflectors built", std::to_string(ev.reflectors_built)});
  table.add_row({"consistent", ev.consistent ? "yes" : "NO"});
  table.add_row({"min / mean weight ratio",
                 omn::util::format_double(ev.min_weight_ratio, 3) + " / " +
                     omn::util::format_double(ev.mean_weight_ratio, 3)});
  table.add_row({"sinks meeting full demand",
                 std::to_string(ev.sinks_meeting_demand) + "/" +
                     std::to_string(ev.sinks_total)});
  table.add_row({"sinks meeting 1/4 guarantee",
                 std::to_string(ev.sinks_meeting_quarter) + "/" +
                     std::to_string(ev.sinks_total)});
  table.add_row({"worst fanout utilization",
                 omn::util::format_double(ev.max_fanout_utilization, 2)});
  table.add_row({"max copies per (sink, ISP)",
                 std::to_string(ev.max_color_copies)});
  table.print(std::cout, "evaluation");
  return 0;
}

int cmd_simulate(const Args& args) {
  const auto inst = omn::net::load_file(args.get("instance", ""));
  const auto design =
      omn::core::load_design_file(args.get("design", ""), inst);
  omn::sim::SimulationConfig cfg;
  cfg.num_packets = args.get_long("packets", 100000);
  cfg.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  cfg.isp_outage_probability = args.get_double("isp-outage-prob", 0.0);
  const auto report = omn::sim::simulate(inst, design, cfg);
  std::printf("%lld packets: %.1f%% of sinks meet their threshold, %.1f%% "
              "meet the 1/4 guarantee\n",
              static_cast<long long>(report.packets),
              100.0 * report.fraction_meeting_threshold,
              100.0 * report.fraction_meeting_quarter_guarantee);
  return 0;
}

int cmd_failover(const Args& args) {
  const auto inst = omn::net::load_file(args.get("instance", ""));
  const auto design =
      omn::core::load_design_file(args.get("design", ""), inst);
  const auto sweep = omn::sim::color_failure_sweep(inst, design);
  omn::util::Table table({"failed ISP", "served %", "meet threshold %",
                          "meet 1/4 %", "mean P(deliver)"});
  for (const auto& r : sweep) {
    table.row()
        .cell(r.color)
        .cell(100.0 * r.fraction_served, 1)
        .cell(100.0 * r.fraction_meeting_threshold, 1)
        .cell(100.0 * r.fraction_meeting_quarter, 1)
        .cell(r.mean_delivery_probability, 4);
  }
  table.print(std::cout, "single-ISP outage sweep");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (args.command == "generate") return cmd_generate(args);
    if (args.command == "design") return cmd_design(args);
    if (args.command == "evaluate") return cmd_evaluate(args);
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "failover") return cmd_failover(args);
    return usage();
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
}
