#!/usr/bin/env python3
"""CI perf gate over omn metrics files.

Benches and tools emit an ``omn-metrics-v1`` envelope via ``--metrics
out.json``.  The repo commits one trajectory file per gated bench
(``BENCH_e4.json``, ``BENCH_e8.json``): an append-only log of those
envelopes, schema ``omn-bench-trajectory-v1``.  CI re-runs each bench in
``--smoke`` mode and calls::

    python3 tools/perf_gate.py check BENCH_e4.json /tmp/e4.json

which diffs the fresh envelope against the trajectory's most recent
entry.  Work counters (LP solves, cache traffic, cell counts) are exact
integers derived from the sweep grid, so ANY change is a regression --
or an intentional algorithm change, which must be accompanied by::

    python3 tools/perf_gate.py append BENCH_e4.json /tmp/e4.json

committing the new baseline alongside the code that moved it.  Wall
clock is machine-dependent, so it only gets a generous ratio guard
(default 25x) to catch runaway slowdowns, never noise.

``check`` reports EVERY mismatched envelope key and sweep record before
failing, and ``check-all`` extends that to the whole fleet::

    python3 tools/perf_gate.py check-all /tmp/omn-metrics BENCH_*.json

pairs each committed trajectory ``BENCH_<name>.json`` with
``/tmp/omn-metrics/<name>.json`` and checks them ALL, so one CI run
shows every regressed bench and every regressed counter at once instead
of stopping at the first red bench.

Exit codes: 0 pass, 1 regression/malformed input, 2 usage error.
"""

import json
import os
import sys

METRICS_SCHEMA = "omn-metrics-v1"
TRAJECTORY_SCHEMA = "omn-bench-trajectory-v1"

# Exact-match integer counters, per sweep record.  These count WORK, not
# time: for a fixed grid and fixed flags they are deterministic across
# machines, thread counts, and runs.  The simplex is deterministic too, so
# its pivot counters are exact as well — any unintended change to the
# revised core's pivot sequence (pricing, refactorization cadence,
# warm-start acceptance) moves them and fails the gate.  A record missing
# a key on BOTH sides passes (kernel benches like e14 emit solver-only
# records without the grid counters).
EXACT_SWEEP_KEYS = (
    "events",
    "redesigns",
    "cells",
    "instances",
    "configs",
    "lp_configs",
    "lp_solves",
    "lp_cache_hits",
    "lp_cache_misses",
    "saved_by_reuse",
    "lp_iterations",
    "lp_phase1_iterations",
    "lp_refactorizations",
    "lp_warm_start_hits",
)

# Envelope-level flags that must match for the comparison to be
# apples-to-apples at all.
EXACT_ENVELOPE_KEYS = ("schema", "tool", "smoke", "lp_cache")

DEFAULT_MAX_WALL_RATIO = 25.0


def fail(message):
    print("perf_gate: FAIL: %s" % message)
    return 1


def load_json(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def load_metrics(path):
    data = load_json(path)
    if data.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            "%s: expected schema %r, got %r"
            % (path, METRICS_SCHEMA, data.get("schema"))
        )
    if not isinstance(data.get("sweeps"), list) or not data["sweeps"]:
        raise ValueError("%s: no sweep records" % path)
    return data


def load_trajectory(path):
    data = load_json(path)
    if data.get("schema") != TRAJECTORY_SCHEMA:
        raise ValueError(
            "%s: expected schema %r, got %r"
            % (path, TRAJECTORY_SCHEMA, data.get("schema"))
        )
    if not isinstance(data.get("entries"), list):
        raise ValueError("%s: missing entries list" % path)
    return data


def check(trajectory_path, metrics_path, max_wall_ratio):
    baseline_file = load_trajectory(trajectory_path)
    current = load_metrics(metrics_path)
    if not baseline_file["entries"]:
        return fail(
            "%s has no entries; seed it with "
            "'perf_gate.py append %s %s'"
            % (trajectory_path, trajectory_path, metrics_path)
        )
    baseline = baseline_file["entries"][-1]

    problems = []
    for key in EXACT_ENVELOPE_KEYS:
        if baseline.get(key) != current.get(key):
            problems.append(
                "envelope %s: baseline %r != current %r"
                % (key, baseline.get(key), current.get(key))
            )

    base_sweeps = baseline.get("sweeps", [])
    cur_sweeps = current.get("sweeps", [])
    if len(base_sweeps) != len(cur_sweeps):
        problems.append(
            "sweep count: baseline %d != current %d"
            % (len(base_sweeps), len(cur_sweeps))
        )
    for index, (base, cur) in enumerate(zip(base_sweeps, cur_sweeps)):
        label = cur.get("label", base.get("label", "sweep[%d]" % index))
        for key in EXACT_SWEEP_KEYS:
            if base.get(key) != cur.get(key):
                problems.append(
                    "%s %s: baseline %r != current %r"
                    % (label, key, base.get(key), cur.get(key))
                )
        base_wall = base.get("wall_seconds", 0.0)
        cur_wall = cur.get("wall_seconds", 0.0)
        if base_wall > 0 and cur_wall > base_wall * max_wall_ratio:
            problems.append(
                "%s wall_seconds: %.3fs is over %.0fx baseline %.3fs"
                % (label, cur_wall, max_wall_ratio, base_wall)
            )

    if problems:
        for problem in problems:
            print("perf_gate:   %s" % problem)
        return fail(
            "%d counter(s) moved vs %s; if intentional, re-baseline with "
            "'perf_gate.py append %s %s' and commit"
            % (len(problems), trajectory_path, trajectory_path, metrics_path)
        )

    for cur in cur_sweeps:
        if cur.get("cells") is None:
            # Solver-kernel record (e.g. e14): no grid, pivot counters only.
            print(
                "perf_gate: OK %s: %s pivots (%s phase 1), "
                "%s refactorizations, %.2fs wall"
                % (
                    cur.get("label", "?"),
                    cur.get("lp_iterations"),
                    cur.get("lp_phase1_iterations"),
                    cur.get("lp_refactorizations"),
                    cur.get("wall_seconds", 0.0),
                )
            )
            continue
        print(
            "perf_gate: OK %s: %s cells, %s lp_solves, "
            "%s hits / %s misses, %.2fs wall"
            % (
                cur.get("label", "?"),
                cur.get("cells"),
                cur.get("lp_solves"),
                cur.get("lp_cache_hits"),
                cur.get("lp_cache_misses"),
                cur.get("wall_seconds", 0.0),
            )
        )
    print("perf_gate: PASS (%s vs %s)" % (metrics_path, trajectory_path))
    return 0


def check_all(metrics_dir, trajectory_paths, max_wall_ratio):
    """Checks every (trajectory, metrics) pair; never stops at the first
    failure, so the output lists every regressed bench and counter."""
    if not trajectory_paths:
        return fail("check-all: no trajectory files given")
    failed = []
    for trajectory_path in trajectory_paths:
        base = os.path.basename(trajectory_path)
        if not (base.startswith("BENCH_") and base.endswith(".json")):
            failed.append(trajectory_path)
            print(
                "perf_gate: %s: expected a BENCH_<name>.json trajectory"
                % trajectory_path
            )
            continue
        metrics_path = os.path.join(metrics_dir, base[len("BENCH_"):])
        print("perf_gate: == %s vs %s" % (metrics_path, trajectory_path))
        try:
            status = check(trajectory_path, metrics_path, max_wall_ratio)
        except (OSError, ValueError) as error:
            status = fail(str(error))
        if status != 0:
            failed.append(trajectory_path)
    if failed:
        return fail(
            "%d of %d trajectories regressed: %s"
            % (len(failed), len(trajectory_paths), ", ".join(failed))
        )
    print("perf_gate: PASS all %d trajectories" % len(trajectory_paths))
    return 0


def append(trajectory_path, metrics_path):
    current = load_metrics(metrics_path)
    try:
        trajectory = load_trajectory(trajectory_path)
    except FileNotFoundError:
        trajectory = {"schema": TRAJECTORY_SCHEMA, "entries": []}
    trajectory["entries"].append(current)
    with open(trajectory_path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    print(
        "perf_gate: appended entry %d to %s"
        % (len(trajectory["entries"]), trajectory_path)
    )
    return 0


def main(argv):
    args = list(argv[1:])
    max_wall_ratio = DEFAULT_MAX_WALL_RATIO
    if "--max-wall-ratio" in args:
        at = args.index("--max-wall-ratio")
        try:
            max_wall_ratio = float(args[at + 1])
        except (IndexError, ValueError):
            print("perf_gate: --max-wall-ratio needs a number")
            return 2
        del args[at : at + 2]
    usage = (
        "usage: perf_gate.py check <trajectory.json> <metrics.json> "
        "[--max-wall-ratio R]\n"
        "       perf_gate.py check-all <metrics-dir> <BENCH_*.json...> "
        "[--max-wall-ratio R]\n"
        "       perf_gate.py append <trajectory.json> <metrics.json>"
    )
    if args and args[0] == "check-all":
        if len(args) < 3:
            print(__doc__.strip().splitlines()[0])
            print(usage)
            return 2
        return check_all(args[1], args[2:], max_wall_ratio)
    if len(args) != 3 or args[0] not in ("check", "append"):
        print(__doc__.strip().splitlines()[0])
        print(usage)
        return 2
    mode, trajectory_path, metrics_path = args
    try:
        if mode == "check":
            return check(trajectory_path, metrics_path, max_wall_ratio)
        return append(trajectory_path, metrics_path)
    except (OSError, ValueError) as error:
        return fail(str(error))


if __name__ == "__main__":
    sys.exit(main(sys.argv))
