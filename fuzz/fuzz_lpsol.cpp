// Fuzz target: LpCache::read_entry, the parser for on-disk .lpsol cache
// entries.  The cache directory is shared between processes (and
// potentially machines), so an entry is untrusted input: truncated
// writes, version skew, and plain corruption must all be rejected as a
// miss, never parsed into garbage or crashed on.
//
// read_entry validates the stored key against the key the caller asked
// for, so a harness probing with a fixed key would bounce every mutated
// input at that check and never reach the deeper structure validation.
// Instead the expected key is lifted from the input's own key field
// (bytes 8..24 of a well-formed entry) — mutations then exercise the
// count, payload, and checksum paths — plus one probe with the zero key
// to keep the key-mismatch path itself covered.

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "omn/core/lp_cache.hpp"
#include "omn/util/hash.hpp"

namespace {

std::uint64_t read_u64_le(const std::uint8_t* bytes) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) value = (value << 8) | bytes[i];
  return value;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  omn::util::Digest128 key;  // zero unless the input carries a key field
  if (size >= 24) {
    key.hi = read_u64_le(data + 8);
    key.lo = read_u64_le(data + 16);
  }
  {
    std::istringstream entry(bytes);
    (void)omn::core::LpCache::read_entry(entry, key);
  }
  {
    std::istringstream entry(bytes);
    (void)omn::core::LpCache::read_entry(entry, omn::util::Digest128{});
  }
  return 0;
}
