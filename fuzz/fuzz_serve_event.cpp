// Fuzz target: the serve event-line parser (serve::parse_event).  Event
// lines arrive on the daemon's stdin from arbitrary supervisors and are
// replayed from journals, so the parser must reject malformed input with
// a diagnostic — never crash, hang, or accept a line it cannot render
// back.
//
// Invariant checked beyond "no crash": parse -> to_line -> parse is the
// identity on accepted events, and the canonical line is a fixed point.
// That round-trip is what makes journal encoding deterministic, so a
// violation is a real bug — the harness aborts on it.

#include <cstdint>
#include <cstdlib>
#include <string>

#include "omn/serve/event.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string line(reinterpret_cast<const char*>(data), size);
  std::string error;
  const auto event = omn::serve::parse_event(line, &error);
  if (!event.has_value()) return 0;  // rejected (or blank/comment): fine
  const std::string canonical = event->to_line();
  std::string reparse_error;
  const auto again = omn::serve::parse_event(canonical, &reparse_error);
  if (!again.has_value() || !(*again == *event) ||
      again->to_line() != canonical) {
    std::abort();  // canonical form failed to round-trip
  }
  return 0;
}
