// Fuzz target: the serve journal reader (serve::Journal::decode).  A
// journal is what a restarted daemon trusts to rebuild its design state,
// and the file may be torn (crash mid-append) or corrupt (disk fault), so
// decode must either return a consistent prefix or throw JournalError —
// never crash, hang, or return events it could not have written.
//
// Invariant checked beyond "no crash": whatever decode accepts must
// re-encode and decode to the same contents (decode and encode are
// inverses on the accepted set).  A violation aborts.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "omn/serve/journal.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  omn::serve::JournalContents contents;
  try {
    contents = omn::serve::Journal::decode(bytes);
  } catch (const omn::serve::JournalError&) {
    return 0;  // rejected: the reader's contract for corrupt input
  }
  // Accepted: the decoded prefix must be canonically re-encodable.
  const std::string canonical =
      omn::serve::Journal::encode(contents.header, contents.events);
  omn::serve::JournalContents again;
  try {
    again = omn::serve::Journal::decode(canonical);
  } catch (const omn::serve::JournalError&) {
    std::abort();  // re-encoding an accepted journal must never fail
  }
  if (again.dropped_partial_tail ||
      !(again.header.config_digest == contents.header.config_digest) ||
      again.header.instance_text != contents.header.instance_text ||
      !(again.header.failed == contents.header.failed) ||
      !(again.events == contents.events)) {
    std::abort();  // decode/encode stopped being inverses
  }
  return 0;
}
