// File-driven main for the fuzz harnesses when libFuzzer is unavailable
// (GCC builds, plain regression runs).  Each argument is a corpus file or
// a directory of corpus files; every file is fed to LLVMFuzzerTestOneInput
// exactly once.  Exit status 0 means every input was processed without
// crashing — which is what the `fuzz` ctest label asserts over the
// committed regression corpora.
//
// Under clang with -fsanitize=fuzzer this file is NOT compiled; libFuzzer
// supplies main() and the same corpus-replay behavior via `-runs=0`.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::size_t ran = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    if (fs::is_directory(arg)) {
      // Sorted for a deterministic replay order across filesystems.
      std::vector<std::string> files;
      for (const fs::directory_entry& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
      std::sort(files.begin(), files.end());
      for (const std::string& file : files) {
        if (run_file(file) != 0) return 1;
        ++ran;
      }
    } else {
      if (run_file(arg.string()) != 0) return 1;
      ++ran;
    }
  }
  std::printf("replayed %zu corpus input(s), no crash\n", ran);
  return 0;
}
