// Fuzz target: the dist frame decoder and the payload codecs behind it —
// the exact bytes a parent reads from an untrusted (possibly crashed,
// possibly corrupted) worker's stdout.
//
// The input is treated as a frame stream: frames are read until the first
// non-kOk status, and every kOk payload is routed to the codec its type
// selects, exactly as ProcessPool + run_distributed would.  The contract
// under test: no input may crash, hang, or over-allocate — a bad stream
// must surface as a status/false, never as UB (the length prefix is
// capped before allocation, decode_* are bounds-checked).

#include <cstdint>
#include <sstream>
#include <string>

#include "omn/dist/frame.hpp"
#include "omn/dist/wire.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream stream(
      std::string(reinterpret_cast<const char*>(data), size));
  for (;;) {
    omn::dist::Frame frame;
    if (omn::dist::read_frame(stream, frame) != omn::dist::FrameStatus::kOk) {
      break;  // EOF or rejected: either way the stream is done
    }
    switch (frame.type) {
      case omn::dist::FrameType::kGrid: {
        omn::dist::WireGrid grid;
        (void)omn::dist::decode_grid(frame.payload, grid);
        break;
      }
      case omn::dist::FrameType::kShard: {
        omn::dist::WireShard shard;
        (void)omn::dist::decode_shard(frame.payload, shard);
        break;
      }
      case omn::dist::FrameType::kResult: {
        omn::dist::WireResult result;
        (void)omn::dist::decode_result(frame.payload, result);
        break;
      }
      case omn::dist::FrameType::kShutdown:
        break;
    }
  }
  return 0;
}
