// Fuzz target: the two text loaders — omn-instance files
// (net::from_text, v1 and v2) and omn-design files (design_from_text,
// meta block included).  Both read operator-controlled files named on the
// omn_design command line, and design text also arrives inside dist grid
// payloads, so "reject with an exception" is the only acceptable failure
// mode: no crash, no hang, no silently truncated numeric field.
//
// The same input bytes are offered to both loaders — the formats share
// the token-stream style, so one corpus mutates into both grammars.  The
// design loader validates slot counts against an instance; a tiny fixed
// one (1 source, 2 reflectors, 2 sinks) keeps the expected bit-section
// sizes small enough for mutated headers to occasionally match.

#include <cstdint>
#include <exception>
#include <sstream>
#include <string>

#include "omn/core/design_io.hpp"
#include "omn/net/instance.hpp"
#include "omn/net/serialize.hpp"

namespace {

const omn::net::OverlayInstance& fixture_instance() {
  static const omn::net::OverlayInstance instance = [] {
    omn::net::OverlayInstance inst;
    inst.add_source({"src", 1.0});
    inst.add_reflector({"r0", 10.0, 2.0, 0, {}});
    inst.add_reflector({"r1", 12.0, 2.0, 1, {}});
    inst.add_sink({"d0", 0, 0.9});
    inst.add_sink({"d1", 0, 0.9});
    inst.add_source_reflector_edge({0, 0, 1.0, 0.01, 0.0});
    inst.add_source_reflector_edge({0, 1, 1.0, 0.01, 0.0});
    inst.add_reflector_sink_edge({0, 0, 1.0, 0.01, {}, 0.0});
    inst.add_reflector_sink_edge({0, 1, 1.0, 0.01, {}, 0.0});
    inst.add_reflector_sink_edge({1, 0, 1.0, 0.01, {}, 0.0});
    inst.add_reflector_sink_edge({1, 1, 1.0, 0.01, {}, 0.0});
    return inst;
  }();
  return instance;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    (void)omn::net::from_text(text);
  } catch (const std::exception&) {
    // Rejected: the loaders' contract for malformed input.
  }
  try {
    std::istringstream stream(text);
    omn::core::DesignMeta meta;
    // The meta-reading overload covers the plain one: it parses the meta
    // block strictly AND loads the bit sections.
    (void)omn::core::load_design(stream, fixture_instance(), &meta);
  } catch (const std::exception&) {
  }
  return 0;
}
