// Fuzz target: util::parse_script, the .omn command-file reader behind
// `omn_design run`.  The reader is a total function — any byte sequence
// must tokenize without throwing (the *dispatcher* rejects unknown
// commands later) — so unlike the text-loader harness there is no
// try/catch here: an exception IS a finding.  The invariants the CLI
// relies on are asserted on every produced command.

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "omn/util/script.hpp"

namespace {

// Not assert(): the invariants must hold in every build mode the fuzzer
// or the corpus-replay test runs in, NDEBUG included.
void require(bool ok) {
  if (!ok) std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream stream(
      std::string(reinterpret_cast<const char*>(data), size));
  const std::vector<omn::util::ScriptCommand> commands =
      omn::util::parse_script(stream);
  int previous_line = 0;
  for (const omn::util::ScriptCommand& command : commands) {
    // cmd_run indexes tokens[0] unconditionally and trusts the line
    // numbers to be positive and monotonic for its error messages.
    require(!command.tokens.empty());
    require(!command.tokens[0].empty());
    require(command.tokens[0][0] != '#');
    require(command.line_number > previous_line);
    previous_line = command.line_number;
  }
  return 0;
}
