// E3 — Lemmas 4.3/4.6 + Section 5: after the full rounding pipeline every
// sink retains at least 1/4 of its demand weight and every reflector's
// fanout is stretched by at most 4x.  The direct-rounding ablation (the
// approach the paper rejects in Section 1.6) is run on the same inputs to
// show why the two-stage pipeline matters.

#include <iostream>

#include "omn/baseline/direct_rounding.hpp"
#include "omn/core/designer.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main() {
  using namespace omn;
  const std::vector<int> sink_counts{16, 32, 64};
  constexpr int kSeeds = 8;

  util::Table table({"sinks", "algo", "min w-ratio (worst)", "mean w-ratio",
                     "worst fanout use", "% within factor-4", "cost/LP"});
  for (int n : sink_counts) {
    util::RunningStats min_ratio;
    util::RunningStats mean_ratio;
    util::RunningStats fanout;
    util::RunningStats cost_ratio;
    util::RunningStats d_fanout;
    util::RunningStats d_cost_ratio;
    util::RunningStats d_min_ratio;
    int within = 0;
    int total = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const auto inst = topo::make_akamai_like(
          topo::global_event_config(n, static_cast<std::uint64_t>(seed)));
      core::DesignerConfig cfg;
      cfg.seed = static_cast<std::uint64_t>(seed);
      cfg.rounding_attempts = 3;
      const auto result = core::OverlayDesigner(cfg).design(inst);
      if (!result.ok()) continue;
      ++total;
      min_ratio.add(result.evaluation.min_weight_ratio);
      mean_ratio.add(result.evaluation.mean_weight_ratio);
      fanout.add(result.evaluation.max_fanout_utilization);
      cost_ratio.add(result.cost_ratio);
      if (result.evaluation.min_weight_ratio >= 0.25 - 1e-9 &&
          result.evaluation.max_fanout_utilization <= 4.0 + 1e-9) {
        ++within;
      }
      // Ablation: direct rounding on the same LP solution.
      const auto d = baseline::direct_rounding_design(
          inst, core::build_overlay_lp(inst), result.lp_design, cfg.c,
          cfg.seed);
      const auto dev = core::evaluate(inst, d);
      d_fanout.add(dev.max_fanout_utilization);
      d_min_ratio.add(dev.min_weight_ratio);
      if (result.lp_objective > 0) {
        d_cost_ratio.add(dev.total_cost / result.lp_objective);
      }
    }
    table.row()
        .cell(n)
        .cell("two-stage (paper)")
        .cell(min_ratio.min(), 3)
        .cell(mean_ratio.mean(), 3)
        .cell(fanout.max(), 2)
        .cell(100.0 * within / std::max(total, 1), 1)
        .cell(cost_ratio.mean(), 2);
    table.row()
        .cell(n)
        .cell("direct rounding")
        .cell(d_min_ratio.min(), 3)
        .cell("-")
        .cell(d_fanout.max(), 2)
        .cell("-")
        .cell(d_cost_ratio.mean(), 2);
  }
  table.print(std::cout,
              "E3: constraint violations after rounding (8 seeds per size)");
  std::cout << "\nPaper guarantees for the two-stage pipeline: min w-ratio >= "
               "0.25,\nfanout use <= 4.0, so '% within factor-4' must be 100.\n"
               "Direct rounding blows up fanout and cost (Section 1.6's "
               "rejected approach).\n";
  return 0;
}
