// E3 — Lemmas 4.3/4.6 + Section 5: after the full rounding pipeline every
// sink retains at least 1/4 of its demand weight and every reflector's
// fanout is stretched by at most 4x.  The direct-rounding ablation (the
// approach the paper rejects in Section 1.6) is run on the same inputs to
// show why the two-stage pipeline matters.
//
// The (n, seed) grid runs as a DesignSweep; the direct-rounding ablation
// reuses each cell's fractional LP design in a cheap serial post-pass.

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "omn/baseline/direct_rounding.hpp"
#include "omn/core/design_sweep.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main(int argc, char** argv) {
  using namespace omn;
  const auto args = bench::parse_args(argc, argv, "e3_violations");
  const std::vector<int> sink_counts =
      args.smoke ? std::vector<int>{16} : std::vector<int>{16, 32, 64};
  const int seeds = bench::smoke_scaled(args, 8, 3);

  core::DesignSweep sweep;
  for (int n : sink_counts) {
    for (int seed = 1; seed <= seeds; ++seed) {
      sweep.add_instance(
          "n" + std::to_string(n) + "-s" + std::to_string(seed),
          topo::make_akamai_like(
              topo::global_event_config(n, static_cast<std::uint64_t>(seed))));
    }
  }
  core::DesignerConfig base;
  base.seed = 1;
  base.rounding_attempts = 3;
  sweep.add_config("two-stage", base);

  core::SweepOptions options;
  options.reseed_per_instance = true;
  const core::SweepReport report =
      bench::run_sweep(sweep, options, args, "E3 sweep");

  util::Table table({"sinks", "algo", "min w-ratio (worst)", "mean w-ratio",
                     "worst fanout use", "% within factor-4", "cost/LP"});
  std::size_t instance = 0;
  for (int n : sink_counts) {
    util::RunningStats min_ratio;
    util::RunningStats mean_ratio;
    util::RunningStats fanout;
    util::RunningStats cost_ratio;
    util::RunningStats d_fanout;
    util::RunningStats d_cost_ratio;
    util::RunningStats d_min_ratio;
    int within = 0;
    int total = 0;
    for (int seed = 1; seed <= seeds; ++seed, ++instance) {
      const core::DesignResult& result = report.cell(instance, 0).result;
      if (!result.ok()) continue;
      ++total;
      min_ratio.add(result.evaluation.min_weight_ratio);
      mean_ratio.add(result.evaluation.mean_weight_ratio);
      fanout.add(result.evaluation.max_fanout_utilization);
      cost_ratio.add(result.cost_ratio);
      if (result.evaluation.min_weight_ratio >= 0.25 - 1e-9 &&
          result.evaluation.max_fanout_utilization <= 4.0 + 1e-9) {
        ++within;
      }
      // Ablation: direct rounding on the same LP solution (same effective
      // seed the sweep cell used: base.seed + instance index).
      const net::OverlayInstance& inst = sweep.instance(instance);
      const auto d = baseline::direct_rounding_design(
          inst, core::build_overlay_lp(inst), result.lp_design, base.c,
          base.seed + static_cast<std::uint64_t>(instance));
      const auto dev = core::evaluate(inst, d);
      d_fanout.add(dev.max_fanout_utilization);
      d_min_ratio.add(dev.min_weight_ratio);
      if (result.lp_objective > 0) {
        d_cost_ratio.add(dev.total_cost / result.lp_objective);
      }
    }
    table.row()
        .cell(n)
        .cell("two-stage (paper)")
        .cell(min_ratio.min(), 3)
        .cell(mean_ratio.mean(), 3)
        .cell(fanout.max(), 2)
        .cell(100.0 * within / std::max(total, 1), 1)
        .cell(cost_ratio.mean(), 2);
    table.row()
        .cell(n)
        .cell("direct rounding")
        .cell(d_min_ratio.min(), 3)
        .cell("-")
        .cell(d_fanout.max(), 2)
        .cell("-")
        .cell(d_cost_ratio.mean(), 2);
  }
  bench::print_table(
      table,
      "E3: constraint violations after rounding (" + std::to_string(seeds) +
          " seeds per size)",
      "Paper guarantees for the two-stage pipeline: min w-ratio >= 0.25,\n"
      "fanout use <= 4.0, so '% within factor-4' must be 100.\n"
      "Direct rounding blows up fanout and cost (Section 1.6's "
      "rejected approach).");
  return 0;
}
