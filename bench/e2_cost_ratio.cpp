// E2 — Lemma 4.1 / Section 5: end-to-end cost is within O(log n) of the
// LP lower bound (and hence of the optimal IP cost).
//
// Paper claim: "a solution ... with cost at most c log n times optimal".
// We sweep the number of sinks n, run the full pipeline over several
// seeds, and report measured cost / LP-bound against the c ln n envelope.
// The measured ratio should (a) stay below the envelope with a wide
// margin and (b) grow much more slowly than log n in practice.

#include <cmath>
#include <iostream>

#include "omn/core/designer.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main() {
  using namespace omn;
  constexpr double kC = 8.0;
  const std::vector<int> sink_counts{8, 16, 32, 64, 96};
  constexpr int kSeeds = 5;

  util::Table table({"sinks n", "ratio mean", "ratio max", "c*ln(n) envelope",
                     "headroom x", "lp $ mean", "design $ mean"});
  for (int n : sink_counts) {
    util::RunningStats ratio;
    util::RunningStats lp_cost;
    util::RunningStats design_cost;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const auto inst = topo::make_akamai_like(
          topo::global_event_config(n, static_cast<std::uint64_t>(seed)));
      core::DesignerConfig cfg;
      cfg.c = kC;
      cfg.seed = static_cast<std::uint64_t>(seed);
      cfg.rounding_attempts = 3;
      const auto result = core::OverlayDesigner(cfg).design(inst);
      if (!result.ok()) continue;
      ratio.add(result.cost_ratio);
      lp_cost.add(result.lp_objective);
      design_cost.add(result.evaluation.total_cost);
    }
    const double envelope = std::max(kC * std::log(n), 1.0);
    table.row()
        .cell(n)
        .cell(ratio.mean(), 3)
        .cell(ratio.max(), 3)
        .cell(envelope, 2)
        .cell(envelope / ratio.max(), 1)
        .cell(lp_cost.mean(), 1)
        .cell(design_cost.mean(), 1);
  }
  table.print(std::cout, "E2: cost vs LP lower bound (c = 8, 5 seeds each)");
  std::cout << "\nPaper guarantee: ratio <= c ln n. Measured ratios should sit\n"
               "far below the envelope and grow sub-logarithmically.\n";
  return 0;
}
