// E2 — Lemma 4.1 / Section 5: end-to-end cost is within O(log n) of the
// LP lower bound (and hence of the optimal IP cost).
//
// Paper claim: "a solution ... with cost at most c log n times optimal".
// We sweep the number of sinks n, run the full pipeline over several
// seeds, and report measured cost / LP-bound against the c ln n envelope.
// The measured ratio should (a) stay below the envelope with a wide
// margin and (b) grow much more slowly than log n in practice.
//
// The (n, seed) grid runs as one pool-backed DesignSweep; every instance
// is distinct so each needs its own LP solve, but all cells share the one
// process-wide pool.

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "omn/core/design_sweep.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main(int argc, char** argv) {
  using namespace omn;
  const auto args = bench::parse_args(argc, argv, "e2_cost_ratio");
  constexpr double kC = 8.0;
  const std::vector<int> sink_counts =
      args.smoke ? std::vector<int>{8, 16} : std::vector<int>{8, 16, 32, 64, 96};
  const int seeds = bench::smoke_scaled(args, 5, 2);

  core::DesignSweep sweep;
  for (int n : sink_counts) {
    for (int seed = 1; seed <= seeds; ++seed) {
      sweep.add_instance(
          "n" + std::to_string(n) + "-s" + std::to_string(seed),
          topo::make_akamai_like(
              topo::global_event_config(n, static_cast<std::uint64_t>(seed))));
    }
  }
  core::DesignerConfig cfg;
  cfg.c = kC;
  cfg.seed = 1;
  cfg.rounding_attempts = 3;
  sweep.add_config("c8", cfg);

  core::SweepOptions options;
  options.reseed_per_instance = true;
  const core::SweepReport report =
      bench::run_sweep(sweep, options, args, "E2 sweep");

  util::Table table({"sinks n", "ratio mean", "ratio max", "c*ln(n) envelope",
                     "headroom x", "lp $ mean", "design $ mean"});
  std::size_t instance = 0;
  for (int n : sink_counts) {
    util::RunningStats ratio;
    util::RunningStats lp_cost;
    util::RunningStats design_cost;
    for (int seed = 1; seed <= seeds; ++seed, ++instance) {
      const core::DesignResult& result = report.cell(instance, 0).result;
      if (!result.ok()) continue;
      ratio.add(result.cost_ratio);
      lp_cost.add(result.lp_objective);
      design_cost.add(result.evaluation.total_cost);
    }
    const double envelope = std::max(kC * std::log(n), 1.0);
    table.row()
        .cell(n)
        .cell(ratio.mean(), 3)
        .cell(ratio.max(), 3)
        .cell(envelope, 2)
        .cell(envelope / ratio.max(), 1)
        .cell(lp_cost.mean(), 1)
        .cell(design_cost.mean(), 1);
  }
  bench::print_table(
      table,
      "E2: cost vs LP lower bound (c = 8, " + std::to_string(seeds) +
          " seeds each)",
      "Paper guarantee: ratio <= c ln n. Measured ratios should sit\n"
      "far below the envelope and grow sub-logarithmically.");
  return 0;
}
