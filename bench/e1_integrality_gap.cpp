// E1 — Figure 3 reproduction.
//
// Paper claim: with the entangled-set constraint ({ab, pq} jointly
// capacitated at 3) the max fractional flow is 3.5 but the max integral
// flow is only 3; without the constraint the max flow is 4.  This gap is
// why Section 6.5 needs Srinivasan-Teo rounding instead of plain flow
// integrality.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "omn/lp/model.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/topo/figure3.hpp"
#include "omn/util/table.hpp"

namespace {

double fractional_max_flow_with_set(const omn::topo::Figure3Instance& fig) {
  omn::lp::Model m;
  std::vector<int> var;
  for (const auto& arc : fig.arcs) {
    var.push_back(m.add_variable(0.0, arc.capacity,
                                 arc.to == fig.t ? -1.0 : 0.0));
  }
  for (int node = 0; node < fig.num_nodes; ++node) {
    if (node == fig.s || node == fig.t) continue;
    const int row = m.add_row(omn::lp::RowSense::kEqual, 0.0);
    for (std::size_t a = 0; a < fig.arcs.size(); ++a) {
      if (fig.arcs[a].to == node) m.add_coefficient(row, var[a], 1.0);
      if (fig.arcs[a].from == node) m.add_coefficient(row, var[a], -1.0);
    }
  }
  const int set_row =
      m.add_row(omn::lp::RowSense::kLessEqual, fig.entangled_capacity);
  for (int a : fig.entangled_arcs) {
    m.add_coefficient(set_row, var[static_cast<std::size_t>(a)], 1.0);
  }
  const auto sol = omn::lp::SimplexSolver().solve(m);
  return sol.optimal() ? -sol.objective : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omn;
  // Figure 3 is one fixed 3-LP certificate, not a seed × config grid, so
  // there is nothing to sweep; the common flags are still accepted so the
  // smoke harness can drive every bench uniformly.
  (void)bench::parse_args(argc, argv, "e1_integrality_gap");
  const topo::Figure3Instance fig = topo::make_figure3();

  const double unconstrained = topo::figure3_unconstrained_max_flow(fig);
  const double fractional = fractional_max_flow_with_set(fig);
  const double integral = topo::figure3_integral_max_flow(fig);

  util::Table table({"quantity", "paper", "measured", "match"});
  table.row().cell("max flow, no set constraint").cell("4.0").cell(unconstrained, 1)
      .cell(unconstrained == 4.0);
  table.row().cell("max fractional flow, with {ab,pq} <= 3").cell("3.5")
      .cell(fractional, 1)
      .cell(std::abs(fractional - fig.expected_fractional_max_flow) < 1e-6);
  table.row().cell("max integral flow, with {ab,pq} <= 3").cell("3.0")
      .cell(integral, 1)
      .cell(integral == fig.expected_integral_max_flow);
  table.row().cell("integrality gap").cell("3.5 / 3").cell(fractional / integral, 4)
      .cell(true);
  bench::print_table(
      table, "E1: Figure 3 entangled-set integrality gap",
      "The fractional optimum routes 2 on sa, 1.5 on sp, splits 0.5\n"
      "onto aq at a — exactly the paper's certificate.");
  return 0;
}
