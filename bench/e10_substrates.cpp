// E10 — substrate micro-benchmarks: the from-scratch simplex, the flow
// solvers, and the Monte Carlo packet simulator.  Not a paper table, but
// the §5.1 running-time claim rests on LP-solve cost, so we publish the
// substrate throughput that the E4 scaling numbers are built on.

#include <benchmark/benchmark.h>

#include "omn/core/designer.hpp"
#include "omn/flow/max_flow.hpp"
#include "omn/flow/min_cost_flow.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/sim/packet_sim.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/rng.hpp"

namespace {

// Random dense-ish LP in standard form with a known-feasible interior.
omn::lp::Model random_lp(int n, int m, std::uint64_t seed) {
  omn::util::Rng rng(seed);
  omn::lp::Model model;
  std::vector<double> x0(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    x0[static_cast<std::size_t>(j)] = rng.uniform();
    model.add_variable(0.0, 1.0, rng.uniform(-1.0, 1.0));
  }
  for (int i = 0; i < m; ++i) {
    double activity = 0.0;
    std::vector<double> row(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      row[static_cast<std::size_t>(j)] = rng.uniform(-2.0, 2.0);
      activity += row[static_cast<std::size_t>(j)] * x0[static_cast<std::size_t>(j)];
    }
    const bool le = rng.bernoulli(0.5);
    const int r = model.add_row(
        le ? omn::lp::RowSense::kLessEqual : omn::lp::RowSense::kGreaterEqual,
        le ? activity + rng.uniform(0.0, 1.0) : activity - rng.uniform(0.0, 1.0));
    for (int j = 0; j < n; ++j) {
      model.add_coefficient(r, j, row[static_cast<std::size_t>(j)]);
    }
  }
  return model;
}

void BM_SimplexRandomLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto model = random_lp(n, n, 7);
  for (auto _ : state) {
    const auto sol = omn::lp::SimplexSolver().solve(model);
    benchmark::DoNotOptimize(sol.objective);
  }
  state.counters["vars"] = n;
}
BENCHMARK(BM_SimplexRandomLp)->Arg(25)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

// Grid max-flow: k x k lattice, unit-ish capacities.
omn::flow::Graph grid_graph(int k, std::uint64_t seed) {
  omn::util::Rng rng(seed);
  omn::flow::Graph g(k * k + 2);
  const int s = k * k;
  const int t = k * k + 1;
  auto node = [k](int r, int c) { return r * k + c; };
  for (int r = 0; r < k; ++r) {
    g.add_edge(s, node(r, 0), 1 + static_cast<std::int64_t>(rng.uniform_index(4)));
    g.add_edge(node(r, k - 1), t, 1 + static_cast<std::int64_t>(rng.uniform_index(4)));
    for (int c = 0; c + 1 < k; ++c) {
      g.add_edge(node(r, c), node(r, c + 1),
                 1 + static_cast<std::int64_t>(rng.uniform_index(4)));
      if (r + 1 < k) {
        g.add_edge(node(r, c), node(r + 1, c),
                   1 + static_cast<std::int64_t>(rng.uniform_index(4)));
      }
    }
  }
  return g;
}

void BM_MaxFlowGrid(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto base = grid_graph(k, 11);
  for (auto _ : state) {
    auto g = base;
    benchmark::DoNotOptimize(omn::flow::max_flow(g, k * k, k * k + 1));
  }
  state.counters["nodes"] = k * k + 2;
}
BENCHMARK(BM_MaxFlowGrid)->Arg(10)->Arg(20)->Arg(40);

void BM_MinCostFlowGrid(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  omn::util::Rng rng(13);
  auto base = grid_graph(k, 11);
  // Add costs by rebuilding: grid_graph has zero costs; per-edge random
  // costs come from mutating capacities' twin cost fields directly is not
  // supported, so rebuild with costs here.
  omn::flow::Graph g(base.num_nodes());
  for (int id = 0; id < 2 * base.num_edges(); id += 2) {
    const auto& e = base.edge(id);
    const int from = base.edge(e.twin).to;
    g.add_edge(from, e.to, e.capacity, rng.uniform(0.1, 3.0));
  }
  for (auto _ : state) {
    auto copy = g;
    benchmark::DoNotOptimize(omn::flow::min_cost_flow(
        copy, k * k, k * k + 1, std::numeric_limits<std::int64_t>::max()));
  }
}
BENCHMARK(BM_MinCostFlowGrid)->Arg(10)->Arg(20);

void BM_PacketSimulator(benchmark::State& state) {
  const auto inst = omn::topo::make_akamai_like(
      omn::topo::global_event_config(32, 17));
  omn::core::DesignerConfig cfg;
  cfg.rounding_attempts = 1;
  const auto design = omn::core::OverlayDesigner(cfg).design(inst);
  omn::sim::SimulationConfig sim_cfg;
  sim_cfg.num_packets = state.range(0);
  for (auto _ : state) {
    const auto report = omn::sim::simulate(inst, design.design, sim_cfg);
    benchmark::DoNotOptimize(report.fraction_meeting_threshold);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PacketSimulator)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
