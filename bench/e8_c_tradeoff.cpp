// E8 — Section 4's trade-off: "Here we get a trade-off between a tighter
// constant with which we violate the weight inequalities and the
// competitive cost ratio against an integral optimal solution ... we need
// to set delta^2 * c = 4" (delta = 1/4 gives the paper's c = 64).
//
// We fix one topology and sweep the multiplier c: larger c buys fewer
// weight-guarantee misses (per-seed failures of the w.h.p. bound) at a
// higher cost multiplier.  The grid is one instance × (c, trial)
// rounding-only configs, so DesignSweep's LP-reuse planner performs
// exactly ONE LP solve for the whole sweep — the sweep isolates the
// rounding behaviour by construction.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "omn/core/design_sweep.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main(int argc, char** argv) {
  using namespace omn;
  const auto args = bench::parse_args(argc, argv, "e8_c_tradeoff");
  const int sinks = bench::smoke_scaled(args, 40, 24);
  const int trials = bench::smoke_scaled(args, 12, 4);  // rounding seeds per c
  // Sub-1 values are outside the paper's analysis (it needs c > 1) and are
  // included precisely to show the w.h.p. guarantee breaking down as the
  // multiplier c ln n approaches 1.
  const std::vector<double> cs =
      args.smoke ? std::vector<double>{0.2, 2.0, 64.0}
                 : std::vector<double>{0.1, 0.2, 0.3, 0.5, 1.0, 2.0, 8.0, 64.0};

  auto topo_cfg = topo::global_event_config(sinks, 3);
  topo_cfg.num_reflectors = 24;       // extra redundancy keeps ẑ fractional
  topo_cfg.candidates_per_sink = 12;

  core::DesignSweep sweep;
  sweep.add_instance("event", topo::make_akamai_like(topo_cfg));
  for (double c : cs) {
    for (int trial = 0; trial < trials; ++trial) {
      core::DesignerConfig cfg;
      cfg.c = c;
      cfg.seed = static_cast<std::uint64_t>(trial) * 977 + 13;
      cfg.rounding_attempts = 1;  // single shot: expose the raw w.h.p. rate
      sweep.add_config(
          "c" + util::format_double(c, 1) + "-t" + std::to_string(trial), cfg);
    }
  }
  const core::SweepReport report =
      bench::run_sweep(sweep, {}, args, "E8 sweep");
  // Rounding-only grid: exactly one LP is needed, whether solved fresh or
  // (on a warm --lp-cache run) served from the cache.  Distributed, each
  // shard plans independently, so the budget is one per shard of the
  // engine's automatic plan — still far below one per cell, and a shared
  // warm --lp-cache collapses the solves to 0 again.
  const std::size_t lp_budget =
      args.workers == 0 ? 1 : dist::kDefaultShardsPerWorker * args.workers;
  if (report.lp_solves + report.lp_cache_hits < 1 ||
      report.lp_solves + report.lp_cache_hits > lp_budget) {
    std::fprintf(stderr,
                 "E8: rounding-only grid must reuse the LP solve "
                 "(budget %zu), got %zu solves + %zu cache hits\n",
                 lp_budget, report.lp_solves, report.lp_cache_hits);
    return 1;
  }
  if (!report.cell(0, 0).result.ok()) {
    std::fprintf(stderr, "E8: LP failed (%s)\n",
                 core::to_string(report.cell(0, 0).result.status).c_str());
    return 1;
  }

  util::Table table({"c", "c*ln(n)", "cost/LP mean", "min w-ratio mean",
                     "w.h.p. misses %", "worst fanout use"});
  for (std::size_t ci = 0; ci < cs.size(); ++ci) {
    util::RunningStats cost_ratio;
    util::RunningStats min_ratio;
    util::RunningStats fanout;
    int misses = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const core::DesignResult& result =
          report.cell(0, ci * static_cast<std::size_t>(trials) +
                             static_cast<std::size_t>(trial)).result;
      if (!result.ok()) continue;
      cost_ratio.add(result.cost_ratio);
      min_ratio.add(result.evaluation.min_weight_ratio);
      fanout.add(result.evaluation.max_fanout_utilization);
      if (result.evaluation.min_weight_ratio < 0.25 - 1e-9) ++misses;
    }
    table.row()
        .cell(cs[ci], 1)
        .cell(std::max(cs[ci] * std::log(sinks), 1.0), 1)
        .cell(cost_ratio.mean(), 2)
        .cell(min_ratio.mean(), 3)
        .cell(100.0 * misses / trials, 1)
        .cell(fanout.max(), 2);
  }
  bench::print_table(
      table,
      "E8: multiplier c trade-off (single-shot rounding, " +
          std::to_string(trials) + " seeds, 1 shared LP solve)",
      "Expected shape: cost/LP grows ~linearly in c while the fraction of\n"
      "roundings missing the factor-4 weight guarantee falls toward zero\n"
      "(the paper's delta^2 c = 4 calculation sets c = 64 for a 1/n bound).");
  return 0;
}
