// E8 — Section 4's trade-off: "Here we get a trade-off between a tighter
// constant with which we violate the weight inequalities and the
// competitive cost ratio against an integral optimal solution ... we need
// to set delta^2 * c = 4" (delta = 1/4 gives the paper's c = 64).
//
// We fix one topology + LP solution and sweep the multiplier c: larger c
// buys fewer weight-guarantee misses (per-seed failures of the w.h.p.
// bound) at a higher cost multiplier.  design_from_lp() reuses the LP so
// the sweep isolates the rounding behaviour.

#include <cmath>
#include <iostream>

#include "omn/core/designer.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main() {
  using namespace omn;
  constexpr int kSinks = 40;
  constexpr int kTrials = 12;  // independent rounding seeds per c
  // Sub-1 values are outside the paper's analysis (it needs c > 1) and are
  // included precisely to show the w.h.p. guarantee breaking down as the
  // multiplier c ln n approaches 1.
  const std::vector<double> cs{0.1, 0.2, 0.3, 0.5, 1.0, 2.0, 8.0, 64.0};

  auto topo_cfg = topo::global_event_config(kSinks, 3);
  topo_cfg.num_reflectors = 24;       // extra redundancy keeps ẑ fractional
  topo_cfg.candidates_per_sink = 12;
  const auto inst = topo::make_akamai_like(topo_cfg);
  const auto lp = core::build_overlay_lp(inst);
  const auto sol = lp::SimplexSolver().solve(lp.model);
  if (!sol.optimal()) {
    std::cerr << "LP failed\n";
    return 1;
  }

  util::Table table({"c", "c*ln(n)", "cost/LP mean", "min w-ratio mean",
                     "w.h.p. misses %", "worst fanout use"});
  for (double c : cs) {
    util::RunningStats cost_ratio;
    util::RunningStats min_ratio;
    util::RunningStats fanout;
    int misses = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      core::DesignerConfig cfg;
      cfg.c = c;
      cfg.seed = static_cast<std::uint64_t>(trial) * 977 + 13;
      cfg.rounding_attempts = 1;  // single shot: expose the raw w.h.p. rate
      const auto result =
          core::OverlayDesigner(cfg).design_from_lp(inst, lp, sol);
      if (!result.ok()) continue;
      cost_ratio.add(result.cost_ratio);
      min_ratio.add(result.evaluation.min_weight_ratio);
      fanout.add(result.evaluation.max_fanout_utilization);
      if (result.evaluation.min_weight_ratio < 0.25 - 1e-9) ++misses;
    }
    table.row()
        .cell(c, 1)
        .cell(std::max(c * std::log(kSinks), 1.0), 1)
        .cell(cost_ratio.mean(), 2)
        .cell(min_ratio.mean(), 3)
        .cell(100.0 * misses / kTrials, 1)
        .cell(fanout.max(), 2);
  }
  table.print(std::cout,
              "E8: multiplier c trade-off (single-shot rounding, 12 seeds)");
  std::cout << "\nExpected shape: cost/LP grows ~linearly in c while the "
               "fraction of\nroundings missing the factor-4 weight guarantee "
               "falls toward zero\n(the paper's delta^2 c = 4 calculation sets "
               "c = 64 for a 1/n bound).\n";
  return 0;
}
