// E15: incremental redesign under churn (paper Section 1.3: the design
// algorithm "can be rerun as often as needed so that the overlay network
// adapts to changes").
//
// Replays one deterministic churn stream (serve::ChurnGenerator — edge
// failures/restores, fanout changes, reflector joins/leaves) through two
// core::DesignState instances per topology size:
//
//   cold: lp_warm_start off — every event pays a full simplex solve, the
//         cost `omn_design design` would pay per rerun;
//   warm: lp_warm_start on — the DesignState's memory LpCache serves
//         byte-identical re-solves (fail + restore pairs) for zero pivots
//         and warm-starts same-shaped re-solves from the previous basis.
//
// The point of the experiment is the pivot ledger: warm incremental
// redesign must do strictly less simplex work per event than cold — the
// bench enforces that in-binary (exit 1) and the CI perf gate pins the
// exact counters via BENCH_e15.json.
//
// Flags: see bench_common.hpp (--workers/--lp-cache are accepted for
// flag-parity but the churn loop is inherently sequential, so --workers
// is rejected and --lp-cache is unused: the warm variant's cache must be
// memory-only for the committed counters to be machine-independent).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "omn/core/design_state.hpp"
#include "omn/serve/churn.hpp"
#include "omn/serve/serve.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/timer.hpp"

namespace {

struct ChurnRun {
  std::string label;
  std::size_t events = 0;
  std::size_t redesigns = 0;
  std::size_t lp_iterations = 0;
  std::size_t lp_phase1_iterations = 0;
  std::size_t lp_refactorizations = 0;
  std::size_t lp_warm_start_hits = 0;
  std::size_t lp_cache_hits = 0;
  std::vector<double> redesign_seconds;

  double wall_seconds() const {
    double total = 0.0;
    for (double s : redesign_seconds) total += s;
    return total;
  }
};

/// Replays `events` through a fresh DesignState (warm or cold) and
/// returns the work ledger.  Cache hits contribute zero pivots — no
/// simplex ran — mirroring the DesignSweep counter convention.
ChurnRun replay(const omn::net::OverlayInstance& base,
                const std::vector<omn::serve::Event>& events,
                const omn::bench::BenchArgs& args, int sinks, bool warm) {
  omn::core::DesignerConfig cfg;
  cfg.seed = 1;
  cfg.rounding_attempts = 1;
  cfg.threads = static_cast<int>(args.threads);
  cfg.lp_warm_start = warm;
  omn::core::DesignState state(
      base, cfg, omn::core::OverlayDesigner::default_context(cfg));

  ChurnRun run;
  run.label = "churn/" + std::to_string(sinks) + (warm ? "/warm" : "/cold");
  const auto account = [&run](const omn::core::DesignResult& result,
                              double seconds) {
    ++run.redesigns;
    run.redesign_seconds.push_back(seconds);
    if (result.lp_cache_hit) {
      ++run.lp_cache_hits;
    } else {
      run.lp_iterations += static_cast<std::size_t>(result.lp_iterations);
      run.lp_phase1_iterations +=
          static_cast<std::size_t>(result.lp_phase1_iterations);
      run.lp_refactorizations +=
          static_cast<std::size_t>(result.lp_refactorizations);
    }
    if (result.lp_warm_start) ++run.lp_warm_start_hits;
  };

  const auto timed_redesign = [&]() {
    const omn::util::Timer timer;
    const omn::core::DesignResult& result = state.redesign();
    account(result, timer.seconds());
  };

  timed_redesign();  // the initial design both variants start from
  for (const omn::serve::Event& event : events) {
    omn::serve::apply_event(state, event);
    ++run.events;
    timed_redesign();
  }
  return run;
}

void record_metrics(const omn::bench::BenchArgs& args, const ChurnRun& run) {
  if (args.metrics_path.empty()) return;
  omn::util::Json record = omn::util::Json::object();
  record.set("label", run.label);
  record.set("events", run.events);
  record.set("redesigns", run.redesigns);
  record.set("lp_iterations", run.lp_iterations);
  record.set("lp_phase1_iterations", run.lp_phase1_iterations);
  record.set("lp_refactorizations", run.lp_refactorizations);
  record.set("lp_warm_start_hits", run.lp_warm_start_hits);
  record.set("lp_cache_hits", run.lp_cache_hits);
  record.set("redesign_wall_p50",
             omn::util::percentile(run.redesign_seconds, 0.50));
  record.set("redesign_wall_p99",
             omn::util::percentile(run.redesign_seconds, 0.99));
  record.set("wall_seconds", run.wall_seconds());
  omn::bench::metrics_records().push(std::move(record));
  omn::bench::write_metrics(args);
}

}  // namespace

int main(int argc, char** argv) {
  const omn::bench::BenchArgs args =
      omn::bench::parse_args(argc, argv, "e15_churn");
  if (args.workers > 0) {
    std::fprintf(stderr,
                 "e15_churn: --workers is not supported (one churn stream "
                 "is inherently sequential)\n");
    return 2;
  }

  std::vector<int> sink_sizes;
  if (args.smoke) {
    sink_sizes = {16};
  } else {
    sink_sizes = {32, 64};
  }
  const std::size_t num_events = args.smoke ? 40 : 200;

  omn::util::Table table({"sinks", "variant", "events", "pivots", "phase1",
                          "refacts", "warm hits", "cache hits", "p50 ms",
                          "p99 ms", "wall s"});
  bool gate_ok = true;
  for (const int sinks : sink_sizes) {
    const auto inst = omn::topo::make_akamai_like(
        omn::topo::global_event_config(sinks, /*seed=*/7));
    omn::serve::ChurnConfig churn;
    churn.seed = 11;
    const std::vector<omn::serve::Event> events =
        omn::serve::ChurnGenerator(inst, churn).take(num_events);

    const ChurnRun cold = replay(inst, events, args, sinks, /*warm=*/false);
    const ChurnRun warm = replay(inst, events, args, sinks, /*warm=*/true);
    record_metrics(args, cold);
    record_metrics(args, warm);

    for (const ChurnRun* run : {&cold, &warm}) {
      table.row()
          .cell(sinks)
          .cell(run == &cold ? "cold" : "warm")
          .cell(run->events)
          .cell(run->lp_iterations)
          .cell(run->lp_phase1_iterations)
          .cell(run->lp_refactorizations)
          .cell(run->lp_warm_start_hits)
          .cell(run->lp_cache_hits)
          .cell(1e3 * omn::util::percentile(run->redesign_seconds, 0.50), 3)
          .cell(1e3 * omn::util::percentile(run->redesign_seconds, 0.99), 3)
          .cell(run->wall_seconds(), 2);
    }

    // The experiment's claim, enforced: warm incremental redesign does
    // strictly less simplex work over the stream, and actually warm-starts
    // (a vacuous pass where warm never engaged would hide a regression in
    // the shape index).
    if (warm.lp_iterations >= cold.lp_iterations ||
        warm.lp_warm_start_hits + warm.lp_cache_hits == 0) {
      std::fprintf(stderr,
                   "e15_churn: GATE FAILED at %d sinks: warm %zu pivots "
                   "(%zu warm hits, %zu cache hits) vs cold %zu pivots\n",
                   sinks, warm.lp_iterations, warm.lp_warm_start_hits,
                   warm.lp_cache_hits, cold.lp_iterations);
      gate_ok = false;
    }
  }

  omn::bench::print_table(
      table, "E15: incremental redesign under churn (cold vs warm)",
      "Expected: the warm variant performs strictly fewer simplex pivots\n"
      "than cold on every size — byte-identical re-solves (fail+restore\n"
      "pairs) hit the cache for zero pivots and same-shaped re-solves\n"
      "warm-start from the previous optimal basis.");
  if (!gate_ok) return 1;
  std::printf("e15_churn: warm < cold pivots on every size — gate PASSED\n");
  return 0;
}
