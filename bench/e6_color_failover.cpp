// E6 — Sections 6.4/6.5: color (ISP-diversity) constraints.
//
// Paper claims: (a) colors "make sure that a client is served only with
// one ... stream possible from a certain ISP, thus diversifying the
// stream distribution over different ISPs", giving "some stability in the
// solution — if one of the ISPs goes down we will still serve most of the
// sinks"; (b) the ST-based rounding costs at most a factor ~14 over the
// stage input and violates constraints by at most an additive ~7.
//
// We design with and without colors over several seeds, kill each ISP in
// turn, and report resilience plus the measured ST-bound quantities.

#include <algorithm>
#include <iostream>

#include "omn/core/designer.hpp"
#include "omn/sim/failures.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main() {
  using namespace omn;
  constexpr int kSinks = 48;
  constexpr int kIsps = 4;
  constexpr int kSeeds = 5;

  util::RunningStats plain_worst_served;
  util::RunningStats color_worst_served;
  util::RunningStats plain_worst_quarter;
  util::RunningStats color_worst_quarter;
  util::RunningStats plain_copies;
  util::RunningStats color_copies;
  util::RunningStats cost_factor;   // colored cost / plain cost
  util::RunningStats color_vs_lp;   // colored cost / LP bound

  for (int seed = 1; seed <= kSeeds; ++seed) {
    auto topo_cfg = topo::global_event_config(
        kSinks, static_cast<std::uint64_t>(seed));
    topo_cfg.num_isps = kIsps;
    topo_cfg.candidates_per_sink = 10;
    const auto inst = topo::make_akamai_like(topo_cfg);

    core::DesignerConfig plain_cfg;
    plain_cfg.seed = static_cast<std::uint64_t>(seed);
    plain_cfg.rounding_attempts = 4;
    core::DesignerConfig color_cfg = plain_cfg;
    color_cfg.color_constraints = true;

    const auto plain = core::OverlayDesigner(plain_cfg).design(inst);
    const auto colored = core::OverlayDesigner(color_cfg).design(inst);
    if (!plain.ok() || !colored.ok()) continue;

    auto worst = [](const std::vector<sim::ColorFailureReport>& sweep,
                    auto field) {
      double w = 1.0;
      for (const auto& r : sweep) w = std::min(w, field(r));
      return w;
    };
    const auto sp = sim::color_failure_sweep(inst, plain.design);
    const auto sc = sim::color_failure_sweep(inst, colored.design);
    plain_worst_served.add(
        worst(sp, [](const auto& r) { return r.fraction_served; }));
    color_worst_served.add(
        worst(sc, [](const auto& r) { return r.fraction_served; }));
    plain_worst_quarter.add(
        worst(sp, [](const auto& r) { return r.fraction_meeting_quarter; }));
    color_worst_quarter.add(
        worst(sc, [](const auto& r) { return r.fraction_meeting_quarter; }));
    plain_copies.add(plain.evaluation.max_color_copies);
    color_copies.add(colored.evaluation.max_color_copies);
    if (plain.evaluation.total_cost > 0) {
      cost_factor.add(colored.evaluation.total_cost /
                      plain.evaluation.total_cost);
    }
    if (colored.lp_objective > 0) {
      color_vs_lp.add(colored.evaluation.total_cost / colored.lp_objective);
    }
  }

  util::Table table({"metric", "plain", "color-constrained", "paper bound"});
  table.row()
      .cell("worst-ISP-outage: served fraction (mean)")
      .cell(plain_worst_served.mean(), 3)
      .cell(color_worst_served.mean(), 3)
      .cell("higher is better");
  table.row()
      .cell("worst-ISP-outage: 1/4-guarantee fraction (mean)")
      .cell(plain_worst_quarter.mean(), 3)
      .cell(color_worst_quarter.mean(), 3)
      .cell("\"serve most of the sinks\"");
  table.row()
      .cell("max copies per (sink, ISP)")
      .cell(plain_copies.max(), 0)
      .cell(color_copies.max(), 0)
      .cell("<= 1 + 7 (ST additive)");
  table.row()
      .cell("colored cost / plain cost (mean)")
      .cell("1.0")
      .cell(cost_factor.mean(), 2)
      .cell("<= 14 (ST factor)");
  table.row()
      .cell("colored cost / LP bound (mean)")
      .cell("-")
      .cell(color_vs_lp.mean(), 2)
      .cell("O(log n) overall");
  table.print(std::cout,
              "E6: ISP color constraints and single-ISP outage resilience");
  std::cout << "\n(5 seeds, 48 sinks, 4 ISPs; 'worst' = minimum over the 4 "
               "possible single-ISP outages)\n";
  return 0;
}
