// E12 — ablations of the pipeline's design choices.
//
//  (a) the cutting plane (4): the paper keeps it because it is "a useful
//      cutting plane in the rounding" (Claim 2.1 shows it is redundant for
//      the IP); we measure its effect on the LP bound, pivot count, and
//      final design quality;
//  (b) rounding retries: the w.h.p. guarantees justify rerunning the coin
//      flips; we measure marginal value of attempts 1 -> 8;
//  (c) prune_unused: dropping y/z not referenced by any x after the flow
//      stage is a pure cost win; we quantify it.
//
// All three ablations share one DesignSweep grid (6 seed-instances x 8
// configs).  The grid is run twice — serially and pool-backed — to report
// the batch driver's wall-clock speedup; the cell results are identical
// either way, so the tables are built from the parallel report.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "omn/core/design_sweep.hpp"
#include "omn/core/designer.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main(int argc, char** argv) {
  using namespace omn;
  const auto args = bench::parse_args(argc, argv, "e12_ablations");
  const int kSinks = bench::smoke_scaled(args, 40, 20);
  const int kSeeds = bench::smoke_scaled(args, 6, 2);
  // Small multiplier + redundant reflector pool: c ln n stays near 1, so
  // the z/y coins genuinely flip and the ablations are visible.  (With the
  // default c = 8 the multiplier saturates and rounding is deterministic —
  // itself a finding, reported in EXPERIMENTS.md.)
  constexpr double kC = 0.5;

  core::DesignSweep sweep;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    auto cfg = topo::global_event_config(kSinks,
                                         static_cast<std::uint64_t>(seed));
    cfg.num_reflectors = 24;
    cfg.candidates_per_sink = 12;
    sweep.add_instance("seed" + std::to_string(seed),
                       topo::make_akamai_like(cfg));
  }

  // Config axis (base seed 1; reseed_per_instance shifts it to the
  // instance's seed).  The tables below address columns by these labels.
  core::DesignerConfig base;
  base.c = kC;
  base.seed = 1;
  base.rounding_attempts = 3;
  sweep.add_config("cut", base);  // (a) cutting plane on, (c) prune on
  core::DesignerConfig no_cut = base;
  no_cut.cutting_plane = false;
  sweep.add_config("no-cut", no_cut);  // (a) cutting plane off
  for (int attempts : {1, 2, 4, 8}) {  // (b) retry ladder
    core::DesignerConfig cfg = base;
    cfg.rounding_attempts = attempts;
    sweep.add_config("attempts" + std::to_string(attempts), cfg);
  }
  core::DesignerConfig no_prune = base;
  no_prune.prune_unused = false;
  sweep.add_config("no-prune", no_prune);  // (c) prune off

  core::SweepOptions serial;
  serial.threads = 1;
  serial.reseed_per_instance = true;
  core::SweepOptions parallel = serial;
  parallel.threads = args.threads;  // 0 = all cores

  const core::SweepReport serial_report = sweep.run(serial);
  const core::SweepReport report = sweep.run(parallel);
  std::printf(
      "DesignSweep: %zu cells | %zu LP solves (%zu distinct LP configs) | "
      "serial %.2fs | parallel %.2fs | %.2fx\n\n",
      sweep.num_cells(), report.lp_solves, report.lp_configs,
      serial_report.wall_seconds, report.wall_seconds,
      report.wall_seconds > 0.0
          ? serial_report.wall_seconds / report.wall_seconds
          : 0.0);

  // Aggregates one config column of the grid, addressed by its label (so
  // reordering the add_config calls above cannot silently shift columns),
  // across the seed instances.
  struct ColumnStats {
    util::RunningStats bound, pivots, cost, minw, reflectors;
  };
  const auto column = [&](const std::string& label) {
    ColumnStats s;
    std::size_t config_index = report.num_configs;
    for (std::size_t c = 0; c < report.num_configs; ++c) {
      if (report.cell(0, c).config_label == label) {
        config_index = c;
        break;
      }
    }
    if (config_index == report.num_configs) {
      std::cerr << "e12: no sweep config labelled '" << label << "'\n";
      std::exit(1);
    }
    for (std::size_t i = 0; i < report.num_instances; ++i) {
      const core::DesignResult& r = report.cell(i, config_index).result;
      if (!r.ok()) continue;
      s.bound.add(r.lp_objective);
      s.pivots.add(r.lp_iterations);
      s.cost.add(r.evaluation.total_cost);
      s.minw.add(r.evaluation.min_weight_ratio);
      s.reflectors.add(r.evaluation.reflectors_built);
    }
    return s;
  };

  // ---- (a) cutting plane ----------------------------------------------------
  {
    util::Table table({"cutting plane (4)", "LP bound mean", "LP pivots mean",
                       "design cost mean", "min w-ratio worst"});
    for (const char* label : {"cut", "no-cut"}) {
      const ColumnStats s = column(label);
      table.row()
          .cell(std::string(label) == "cut")
          .cell(s.bound.mean(), 2)
          .cell(s.pivots.mean(), 0)
          .cell(s.cost.mean(), 2)
          .cell(s.minw.min(), 3);
    }
    table.print(std::cout, "E12a: constraint (4) cutting plane");
  }

  // ---- (b) rounding attempts ------------------------------------------------
  {
    util::Table table({"attempts", "min w-ratio worst", "min w-ratio mean",
                       "cost mean"});
    for (int attempts : {1, 2, 4, 8}) {
      const ColumnStats s = column("attempts" + std::to_string(attempts));
      table.row()
          .cell(attempts)
          .cell(s.minw.min(), 3)
          .cell(s.minw.mean(), 3)
          .cell(s.cost.mean(), 2);
    }
    table.print(std::cout, "E12b: value of rounding retries");
  }

  // ---- (c) pruning ------------------------------------------------------------
  {
    util::Table table({"prune_unused", "cost mean", "reflectors mean"});
    for (const char* label : {"cut", "no-prune"}) {
      const ColumnStats s = column(label);
      table.row()
          .cell(std::string(label) == "cut")
          .cell(s.cost.mean(), 2)
          .cell(s.reflectors.mean(), 1);
    }
    table.print(std::cout, "E12c: pruning unused y/z after the flow stage");
  }
  std::cout << "\nExpected: (4) tightens the LP bound and improves rounding "
               "quality;\nretries lift the worst-case weight ratio; pruning "
               "reduces cost for free.\n";
  return 0;
}
