// E12 — ablations of the pipeline's design choices.
//
//  (a) the cutting plane (4): the paper keeps it because it is "a useful
//      cutting plane in the rounding" (Claim 2.1 shows it is redundant for
//      the IP); we measure its effect on the LP bound, pivot count, and
//      final design quality;
//  (b) rounding retries: the w.h.p. guarantees justify rerunning the coin
//      flips; we measure marginal value of attempts 1 -> 8;
//  (c) prune_unused: dropping y/z not referenced by any x after the flow
//      stage is a pure cost win; we quantify it.

#include <iostream>

#include "omn/core/designer.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main() {
  using namespace omn;
  constexpr int kSinks = 40;
  constexpr int kSeeds = 6;
  // Small multiplier + redundant reflector pool: c ln n stays near 1, so
  // the z/y coins genuinely flip and the ablations are visible.  (With the
  // default c = 8 the multiplier saturates and rounding is deterministic —
  // itself a finding, reported in EXPERIMENTS.md.)
  constexpr double kC = 0.5;
  auto make_inst = [](int seed) {
    auto cfg = topo::global_event_config(kSinks,
                                         static_cast<std::uint64_t>(seed));
    cfg.num_reflectors = 24;
    cfg.candidates_per_sink = 12;
    return topo::make_akamai_like(cfg);
  };

  // ---- (a) cutting plane ----------------------------------------------------
  {
    util::Table table({"cutting plane (4)", "LP bound mean", "LP pivots mean",
                       "design cost mean", "min w-ratio worst"});
    for (bool cut : {true, false}) {
      util::RunningStats bound;
      util::RunningStats pivots;
      util::RunningStats cost;
      util::RunningStats minw;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        const auto inst = make_inst(seed);
        core::DesignerConfig cfg;
        cfg.c = kC;
        cfg.seed = static_cast<std::uint64_t>(seed);
        cfg.cutting_plane = cut;
        cfg.rounding_attempts = 3;
        const auto r = core::OverlayDesigner(cfg).design(inst);
        if (!r.ok()) continue;
        bound.add(r.lp_objective);
        pivots.add(r.lp_iterations);
        cost.add(r.evaluation.total_cost);
        minw.add(r.evaluation.min_weight_ratio);
      }
      table.row()
          .cell(cut)
          .cell(bound.mean(), 2)
          .cell(pivots.mean(), 0)
          .cell(cost.mean(), 2)
          .cell(minw.min(), 3);
    }
    table.print(std::cout, "E12a: constraint (4) cutting plane");
  }

  // ---- (b) rounding attempts ------------------------------------------------
  {
    util::Table table({"attempts", "min w-ratio worst", "min w-ratio mean",
                       "cost mean"});
    for (int attempts : {1, 2, 4, 8}) {
      util::RunningStats minw;
      util::RunningStats cost;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        const auto inst = make_inst(seed);
        core::DesignerConfig cfg;
        cfg.c = kC;
        cfg.seed = static_cast<std::uint64_t>(seed);
        cfg.rounding_attempts = attempts;
        const auto r = core::OverlayDesigner(cfg).design(inst);
        if (!r.ok()) continue;
        minw.add(r.evaluation.min_weight_ratio);
        cost.add(r.evaluation.total_cost);
      }
      table.row()
          .cell(attempts)
          .cell(minw.min(), 3)
          .cell(minw.mean(), 3)
          .cell(cost.mean(), 2);
    }
    table.print(std::cout, "E12b: value of rounding retries");
  }

  // ---- (c) pruning ------------------------------------------------------------
  {
    util::Table table({"prune_unused", "cost mean", "reflectors mean"});
    for (bool prune : {true, false}) {
      util::RunningStats cost;
      util::RunningStats reflectors;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        const auto inst = make_inst(seed);
        core::DesignerConfig cfg;
        cfg.c = kC;
        cfg.seed = static_cast<std::uint64_t>(seed);
        cfg.prune_unused = prune;
        cfg.rounding_attempts = 3;
        const auto r = core::OverlayDesigner(cfg).design(inst);
        if (!r.ok()) continue;
        cost.add(r.evaluation.total_cost);
        reflectors.add(r.evaluation.reflectors_built);
      }
      table.row().cell(prune).cell(cost.mean(), 2).cell(reflectors.mean(), 1);
    }
    table.print(std::cout, "E12c: pruning unused y/z after the flow stage");
  }
  std::cout << "\nExpected: (4) tightens the LP bound and improves rounding "
               "quality;\nretries lift the worst-case weight ratio; pruning "
               "reduces cost for free.\n";
  return 0;
}
