// E5 — the loss model (Section 1.3) and the factor-4 intuition at the end
// of Section 5 ("if we want success of .9999 ... what we have is a .9
// guarantee", i.e. the guaranteed post-reconstruction failure is the 4th
// root of the demanded failure).
//
// We design an overlay (a 1x1 DesignSweep cell, so the design runs on the
// shared pool like every other bench), compute exact per-sink delivery
// probabilities (closed form, valid because 3-level paths are
// independent), validate them with the Monte Carlo packet simulator, and
// report how sinks sit relative to the full demand and the 4th-root
// guarantee.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "omn/core/design_sweep.hpp"
#include "omn/sim/packet_sim.hpp"
#include "omn/sim/reliability.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main(int argc, char** argv) {
  using namespace omn;
  const auto args = bench::parse_args(argc, argv, "e5_reliability");
  const int sinks = bench::smoke_scaled(args, 48, 20);
  const long packets = args.smoke ? 40000 : 200000;
  constexpr std::uint64_t kSeed = 5;
  const auto inst =
      topo::make_akamai_like(topo::global_event_config(sinks, kSeed));

  core::DesignSweep sweep;
  sweep.add_instance("event", inst);
  core::DesignerConfig cfg;
  cfg.seed = kSeed;
  cfg.rounding_attempts = 5;
  sweep.add_config("default", cfg);
  const core::SweepReport sweep_report =
      bench::run_sweep(sweep, {}, args, "E5 design");
  const core::DesignResult& result = sweep_report.cell(0, 0).result;
  if (!result.ok()) {
    std::cerr << "design failed\n";
    return 1;
  }

  const auto exact = sim::exact_delivery_probability(inst, result.design);
  sim::SimulationConfig sim_cfg;
  sim_cfg.num_packets = packets;
  sim_cfg.seed = kSeed;
  const auto mc = sim::simulate(inst, result.design, sim_cfg);

  // Agreement between the closed form and the packet simulator.
  util::RunningStats abs_err;
  int meet_full = 0;
  int meet_quarter = 0;
  for (int j = 0; j < inst.num_sinks(); ++j) {
    const double exact_loss = 1.0 - exact[static_cast<std::size_t>(j)];
    abs_err.add(std::abs(exact_loss -
                         mc.sink_loss_rate[static_cast<std::size_t>(j)]));
    const double allowed = 1.0 - inst.sink(j).threshold;
    if (exact_loss <= allowed + 1e-12) ++meet_full;
    if (exact_loss <= std::pow(allowed, 0.25) + 1e-12) ++meet_quarter;
  }

  util::Table table({"metric", "paper expectation", "measured"});
  table.row()
      .cell("sinks meeting full demand Phi")
      .cell("most (not guaranteed)")
      .cell(util::format_double(100.0 * meet_full / sinks, 1) + "%");
  table.row()
      .cell("sinks within 4th-root guarantee")
      .cell("100%")
      .cell(util::format_double(100.0 * meet_quarter / sinks, 1) + "%");
  table.row()
      .cell("MC vs exact loss, mean |err|")
      .cell("~ sqrt(p/N) ~ 1e-3")
      .cell(util::format_double(abs_err.mean(), 5));
  table.row()
      .cell("MC vs exact loss, max |err|")
      .cell("< 5e-3")
      .cell(util::format_double(abs_err.max(), 5));
  table.row()
      .cell("MC fraction meeting 1/4 guarantee")
      .cell("100%")
      .cell(util::format_double(
                100.0 * mc.fraction_meeting_quarter_guarantee, 1) + "%");
  bench::print_table(table,
                     "E5: reliability — exact product form vs Monte Carlo", "");

  // Per-sink detail for the five most demanding sinks.
  util::Table detail({"sink", "threshold", "copies", "exact P(deliver)",
                      "MC loss", "exact loss"});
  std::vector<int> order(static_cast<std::size_t>(inst.num_sinks()));
  for (int j = 0; j < inst.num_sinks(); ++j) order[static_cast<std::size_t>(j)] = j;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return inst.sink(a).threshold > inst.sink(b).threshold;
  });
  for (int rank = 0; rank < 5 && rank < inst.num_sinks(); ++rank) {
    const int j = order[static_cast<std::size_t>(rank)];
    int copies = 0;
    for (int id : inst.sink_in(j)) {
      copies += result.design.x[static_cast<std::size_t>(id)];
    }
    detail.row()
        .cell(inst.sink(j).name)
        .cell(inst.sink(j).threshold, 4)
        .cell(copies)
        .cell(exact[static_cast<std::size_t>(j)], 5)
        .cell(mc.sink_loss_rate[static_cast<std::size_t>(j)], 5)
        .cell(1.0 - exact[static_cast<std::size_t>(j)], 5);
  }
  bench::print_table(detail, "five most demanding sinks", "");

  // Deadline model (paper Section 1.2: late packets are useless).  Sweep
  // the playback deadline and watch effective loss rise as long-haul paths
  // fall out of the window.
  util::Table deadline({"deadline ms", "jitter ms", "% meeting threshold",
                        "% meeting 1/4 guarantee"});
  for (double dl : {0.0, 250.0, 150.0, 80.0, 40.0}) {
    sim::SimulationConfig dcfg;
    dcfg.num_packets = args.smoke ? 10000 : 50000;
    dcfg.seed = kSeed;
    dcfg.deadline_ms = dl;
    dcfg.jitter_sigma_ms = dl > 0.0 ? 15.0 : 0.0;
    const auto r = sim::simulate(inst, result.design, dcfg);
    deadline.row()
        .cell(dl == 0.0 ? std::string("none") : util::format_double(dl, 0))
        .cell(dcfg.jitter_sigma_ms, 0)
        .cell(100.0 * r.fraction_meeting_threshold, 1)
        .cell(100.0 * r.fraction_meeting_quarter_guarantee, 1);
  }
  bench::print_table(deadline, "playback-deadline sweep (Section 1.2 model)",
                     "");
  return 0;
}
