// E14 — LP kernel cost: the paper's running time IS the LP solve ("the
// total running time of our algorithm is the same as solving an LP with
// O(|S| * |R| * |D|) variables and constraints", Section 5.1), so the
// simplex core is the perf budget of everything in this repo.
//
// This bench times the two cores head-to-head on growing uniform overlay
// LPs (topo::make_uniform_random -> core::build_overlay_lp), isolating the
// kernel from rounding and evaluation:
//
//   dense        Algorithm::kDenseTableau (the differential oracle)
//   rev-dantzig  Algorithm::kRevised + Pricing::kDantzig
//   rev-se       Algorithm::kRevised + Pricing::kSteepestEdge (default)
//   resolve-cold the rev-se model with costs perturbed +-3%, solved cold
//   resolve-warm the same perturbed model warm-started from the unperturbed
//                optimal basis (Solution::basis -> warm_start_basis)
//
// Expected shape: the revised core wins on wall clock AND on per-pivot
// cost, and the gap widens with size (dense pivots touch the full m x
// (n+m) tableau; revised pivots touch the basis LU fill).  The warm
// re-solve skips phase I and needs a small fraction of the cold pivots.
// The bench FAILS if, at the largest size, dense beats rev-se on either
// wall clock or per-pivot cost, or the warm re-solve does not save
// pivots — so the CI smoke run re-proves the revised core's advantage,
// not just its counters.
//
// --metrics emits one record per (size, variant) with the deterministic
// pivot counters (lp_iterations / lp_phase1_iterations /
// lp_refactorizations / lp_warm_start_hits) that the perf gate
// exact-matches against BENCH_e14.json, plus wall_seconds under the
// usual generous ratio guard.  --threads/--workers/--lp-cache are
// accepted (shared flag parser) but idle: the kernel runs single-threaded
// solves by construction.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "omn/core/lp_builder.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/topo/synthetic.hpp"
#include "omn/util/table.hpp"
#include "omn/util/timer.hpp"

namespace {

struct Timed {
  omn::lp::Solution solution;
  double wall_seconds = 0.0;
};

Timed solve_timed(const omn::lp::Model& model,
                  const omn::lp::SolveOptions& options) {
  Timed timed;
  const omn::util::Timer timer;
  timed.solution = omn::lp::SimplexSolver().solve(model, options);
  timed.wall_seconds = timer.seconds();
  return timed;
}

/// Deterministic +-3% objective perturbation (same recipe as the warm-start
/// unit tests): enough to move the optimal vertex, small enough that the
/// old basis stays a good starting point.
omn::lp::Model perturbed_costs(const omn::lp::Model& model) {
  omn::lp::Model copy = model;
  for (int v = 0; v < copy.num_variables(); ++v) {
    const auto u = static_cast<std::uint32_t>(v) * 2654435761u;
    const double unit = static_cast<double>((u >> 8) & 0xFFu) / 255.0;
    copy.variable(v).objective *= 1.0 + 0.03 * (2.0 * unit - 1.0);
  }
  return copy;
}

double per_pivot_us(const Timed& timed) {
  const int pivots = timed.solution.iterations;
  return 1e6 * timed.wall_seconds / (pivots > 0 ? pivots : 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omn;
  const auto args = bench::parse_args(argc, argv, "e14_lp_kernel");
  // The dense oracle is O(m * (n + m)) PER PIVOT in both time and it holds
  // the full tableau in memory, so the top size is capped where that stays
  // minutes, not hours (96 sinks ~ a 3k x 6k tableau).  The revised core
  // alone scales far past this — but E14's point is the head-to-head.
  const std::vector<int> sink_counts =
      args.smoke ? std::vector<int>{16, 48} : std::vector<int>{16, 48, 96};

  util::Table table({"sinks", "lp vars x rows", "variant", "wall ms",
                     "pivots (ph1)", "refac", "us/pivot"});
  bool gate_ok = true;
  std::string gate_failure;

  for (std::size_t si = 0; si < sink_counts.size(); ++si) {
    const int sinks = sink_counts[si];
    topo::UniformConfig topo_cfg;
    topo_cfg.num_sources = 3;
    topo_cfg.num_reflectors = sinks / 2;
    topo_cfg.num_sinks = sinks;
    topo_cfg.seed = 14;
    const auto inst = topo::make_uniform_random(topo_cfg);
    const core::OverlayLp lp = core::build_overlay_lp(inst);

    lp::SolveOptions dense_opts;
    dense_opts.algorithm = lp::Algorithm::kDenseTableau;
    lp::SolveOptions dantzig_opts;
    dantzig_opts.pricing = lp::Pricing::kDantzig;
    const lp::SolveOptions se_opts;  // the defaults: revised + steepest edge

    const Timed dense = solve_timed(lp.model, dense_opts);
    const Timed dantzig = solve_timed(lp.model, dantzig_opts);
    const Timed se = solve_timed(lp.model, se_opts);

    // Perturbed re-solve, cold vs warm-started from the unperturbed basis.
    const lp::Model perturbed = perturbed_costs(lp.model);
    const Timed cold = solve_timed(perturbed, se_opts);
    lp::SolveOptions warm_opts = se_opts;
    warm_opts.warm_start_basis = se.solution.basis;
    const Timed warm = solve_timed(perturbed, warm_opts);

    const struct {
      const char* variant;
      const Timed* timed;
    } rows[] = {{"dense", &dense},
                {"rev-dantzig", &dantzig},
                {"rev-se", &se},
                {"resolve-cold", &cold},
                {"resolve-warm", &warm}};
    for (const auto& row : rows) {
      const lp::Solution& sol = row.timed->solution;
      if (!sol.optimal()) {
        std::fprintf(stderr, "E14: %s solve at %d sinks not optimal (%s)\n",
                     row.variant, sinks, lp::to_string(sol.status).c_str());
        return 1;
      }
      table.row()
          .cell(sinks)
          .cell(std::to_string(lp.model.num_variables()) + " x " +
                std::to_string(lp.model.num_rows()))
          .cell(row.variant)
          .cell(1e3 * row.timed->wall_seconds, 2)
          .cell(std::to_string(sol.iterations) + " (" +
                std::to_string(sol.phase1_iterations) + ")")
          .cell(sol.refactorizations)
          .cell(per_pivot_us(*row.timed), 2);

      if (!args.metrics_path.empty()) {
        util::Json record = util::Json::object();
        record.set("label",
                   "s" + std::to_string(sinks) + "-" + row.variant);
        record.set("lp_vars",
                   static_cast<std::size_t>(lp.model.num_variables()));
        record.set("lp_rows", static_cast<std::size_t>(lp.model.num_rows()));
        record.set("lp_iterations",
                   static_cast<std::size_t>(sol.iterations));
        record.set("lp_phase1_iterations",
                   static_cast<std::size_t>(sol.phase1_iterations));
        record.set("lp_refactorizations",
                   static_cast<std::size_t>(sol.refactorizations));
        record.set("lp_warm_start_hits",
                   static_cast<std::size_t>(sol.warm_started ? 1 : 0));
        record.set("wall_seconds", row.timed->wall_seconds);
        bench::metrics_records().push(std::move(record));
      }
    }
    // Rewrite the metrics file after every size so a crash mid-bench still
    // leaves the completed sizes behind (the run_sweep convention).
    bench::write_metrics(args);

    if (si + 1 == sink_counts.size()) {
      if (se.wall_seconds >= dense.wall_seconds) {
        gate_ok = false;
        gate_failure = "rev-se wall " + util::format_double(se.wall_seconds, 3) +
                       "s did not beat dense " +
                       util::format_double(dense.wall_seconds, 3) + "s";
      } else if (per_pivot_us(se) >= per_pivot_us(dense)) {
        gate_ok = false;
        gate_failure =
            "rev-se per-pivot " + util::format_double(per_pivot_us(se), 2) +
            "us did not beat dense " +
            util::format_double(per_pivot_us(dense), 2) + "us";
      } else if (!warm.solution.warm_started ||
                 warm.solution.iterations >= cold.solution.iterations) {
        gate_ok = false;
        gate_failure = "warm re-solve took " +
                       std::to_string(warm.solution.iterations) +
                       " pivots vs cold " +
                       std::to_string(cold.solution.iterations);
      }
    }
  }

  bench::print_table(
      table, "E14: simplex kernel, dense oracle vs revised (LU + eta file)",
      "Expected shape: the revised core beats the dense tableau on wall\n"
      "clock and on per-pivot cost, with the gap widening in size (dense\n"
      "pivots touch the full tableau; revised pivots touch the LU fill).\n"
      "The warm re-solve skips phase I and needs a fraction of the cold\n"
      "pivots.  Both properties are asserted at the largest size.");

  if (!gate_ok) {
    std::fprintf(stderr, "E14: largest size: %s\n", gate_failure.c_str());
    return 1;
  }
  return 0;
}
