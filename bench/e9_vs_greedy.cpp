// E9 — related-work positioning: the paper argues the LP-rounding
// algorithm is needed because "the greedy approach may not work for
// multiple commodities, as the coverage no longer increases concavely",
// while greedy is the natural practical competitor.
//
// We compare three designers on identical instances:
//   - the paper's two-stage LP rounding (a pool-backed DesignSweep),
//   - the capacitated greedy (full coverage, no guarantee on cost),
//   - the random feasible heuristic (cost floor ceiling).
// All costs are normalized by the LP lower bound, the only certified
// yardstick for OPT.

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "omn/baseline/greedy.hpp"
#include "omn/baseline/random_heuristic.hpp"
#include "omn/core/design_sweep.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main(int argc, char** argv) {
  using namespace omn;
  const auto args = bench::parse_args(argc, argv, "e9_vs_greedy");
  const std::vector<int> sink_counts =
      args.smoke ? std::vector<int>{16} : std::vector<int>{16, 32, 64};
  const int seeds = bench::smoke_scaled(args, 6, 2);

  core::DesignSweep sweep;
  for (int n : sink_counts) {
    for (int seed = 1; seed <= seeds; ++seed) {
      sweep.add_instance(
          "n" + std::to_string(n) + "-s" + std::to_string(seed),
          topo::make_akamai_like(
              topo::global_event_config(n, static_cast<std::uint64_t>(seed))));
    }
  }
  core::DesignerConfig cfg;
  cfg.seed = 1;
  cfg.rounding_attempts = 4;
  sweep.add_config("lp-rounding", cfg);

  core::SweepOptions options;
  options.reseed_per_instance = true;
  const core::SweepReport report =
      bench::run_sweep(sweep, options, args, "E9 sweep");

  util::Table table({"sinks", "designer", "cost/LP mean", "cost/LP max",
                     "min w-ratio", "wins vs greedy"});
  std::size_t instance = 0;
  for (int n : sink_counts) {
    util::RunningStats algo_ratio;
    util::RunningStats greedy_ratio;
    util::RunningStats random_ratio;
    util::RunningStats algo_minw;
    util::RunningStats greedy_minw;
    int algo_wins = 0;
    int comparisons = 0;
    for (int seed = 1; seed <= seeds; ++seed, ++instance) {
      const core::DesignResult& algo = report.cell(instance, 0).result;
      if (!algo.ok() || algo.lp_objective <= 0) continue;
      const net::OverlayInstance& inst = sweep.instance(instance);
      const auto greedy = baseline::greedy_design(inst);
      const auto random = baseline::random_design(
          inst, static_cast<std::uint64_t>(seed) * 31 + 1);
      const double lp = algo.lp_objective;
      const auto ge = core::evaluate(inst, greedy.design);
      const auto re = core::evaluate(inst, random.design);
      algo_ratio.add(algo.evaluation.total_cost / lp);
      greedy_ratio.add(ge.total_cost / lp);
      random_ratio.add(re.total_cost / lp);
      algo_minw.add(algo.evaluation.min_weight_ratio);
      greedy_minw.add(ge.min_weight_ratio);
      ++comparisons;
      if (algo.evaluation.total_cost < ge.total_cost) ++algo_wins;
    }
    table.row()
        .cell(n).cell("LP rounding (paper)")
        .cell(algo_ratio.mean(), 2).cell(algo_ratio.max(), 2)
        .cell(algo_minw.min(), 2)
        .cell(std::to_string(algo_wins) + "/" + std::to_string(comparisons));
    table.row()
        .cell(n).cell("greedy")
        .cell(greedy_ratio.mean(), 2).cell(greedy_ratio.max(), 2)
        .cell(greedy_minw.min(), 2).cell("-");
    table.row()
        .cell(n).cell("random feasible")
        .cell(random_ratio.mean(), 2).cell(random_ratio.max(), 2)
        .cell("-").cell("-");
  }
  bench::print_table(
      table,
      "E9: LP rounding vs greedy vs random (" + std::to_string(seeds) +
          " seeds/size)",
      "Note: greedy covers the FULL demand (w-ratio >= 1) while the\n"
      "algorithm guarantees >= 1/4 at lower cost; the fair comparison\n"
      "is cost at the coverage each method achieves.  'wins' counts\n"
      "instances where the algorithm's cost is lower outright.");
  return 0;
}
