// E9 — related-work positioning: the paper argues the LP-rounding
// algorithm is needed because "the greedy approach may not work for
// multiple commodities, as the coverage no longer increases concavely",
// while greedy is the natural practical competitor.
//
// We compare three designers on identical instances:
//   - the paper's two-stage LP rounding,
//   - the capacitated greedy (full coverage, no guarantee on cost),
//   - the random feasible heuristic (cost floor ceiling).
// All costs are normalized by the LP lower bound, the only certified
// yardstick for OPT.

#include <iostream>

#include "omn/baseline/greedy.hpp"
#include "omn/baseline/random_heuristic.hpp"
#include "omn/core/designer.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/topo/synthetic.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main() {
  using namespace omn;
  const std::vector<int> sink_counts{16, 32, 64};
  constexpr int kSeeds = 6;

  util::Table table({"sinks", "designer", "cost/LP mean", "cost/LP max",
                     "min w-ratio", "wins vs greedy"});
  for (int n : sink_counts) {
    util::RunningStats algo_ratio;
    util::RunningStats greedy_ratio;
    util::RunningStats random_ratio;
    util::RunningStats algo_minw;
    util::RunningStats greedy_minw;
    int algo_wins = 0;
    int comparisons = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const auto inst = topo::make_akamai_like(
          topo::global_event_config(n, static_cast<std::uint64_t>(seed)));
      core::DesignerConfig cfg;
      cfg.seed = static_cast<std::uint64_t>(seed);
      cfg.rounding_attempts = 4;
      const auto algo = core::OverlayDesigner(cfg).design(inst);
      if (!algo.ok() || algo.lp_objective <= 0) continue;
      const auto greedy = baseline::greedy_design(inst);
      const auto random = baseline::random_design(
          inst, static_cast<std::uint64_t>(seed) * 31 + 1);
      const double lp = algo.lp_objective;
      const auto ge = core::evaluate(inst, greedy.design);
      const auto re = core::evaluate(inst, random.design);
      algo_ratio.add(algo.evaluation.total_cost / lp);
      greedy_ratio.add(ge.total_cost / lp);
      random_ratio.add(re.total_cost / lp);
      algo_minw.add(algo.evaluation.min_weight_ratio);
      greedy_minw.add(ge.min_weight_ratio);
      ++comparisons;
      if (algo.evaluation.total_cost < ge.total_cost) ++algo_wins;
    }
    table.row()
        .cell(n).cell("LP rounding (paper)")
        .cell(algo_ratio.mean(), 2).cell(algo_ratio.max(), 2)
        .cell(algo_minw.min(), 2)
        .cell(std::to_string(algo_wins) + "/" + std::to_string(comparisons));
    table.row()
        .cell(n).cell("greedy")
        .cell(greedy_ratio.mean(), 2).cell(greedy_ratio.max(), 2)
        .cell(greedy_minw.min(), 2).cell("-");
    table.row()
        .cell(n).cell("random feasible")
        .cell(random_ratio.mean(), 2).cell(random_ratio.max(), 2)
        .cell("-").cell("-");
  }
  table.print(std::cout, "E9: LP rounding vs greedy vs random (6 seeds/size)");
  std::cout << "\nNote: greedy covers the FULL demand (w-ratio >= 1) while the\n"
               "algorithm guarantees >= 1/4 at lower cost; the fair comparison\n"
               "is cost at the coverage each method achieves.  'wins' counts\n"
               "instances where the algorithm's cost is lower outright.\n";
  return 0;
}
