// E11 — true approximation ratio (extension of E2).
//
// E2 measures cost / LP-bound, which over-reports the real ratio because
// LP <= OPT.  On small instances the exact branch-and-bound solver
// certifies OPT, so here we report cost / OPT directly, plus the
// integrality gap OPT / LP of the Section-2 relaxation itself.

#include <iostream>

#include "omn/core/designer.hpp"
#include "omn/core/exact.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/topo/synthetic.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main() {
  using namespace omn;
  constexpr int kSeeds = 6;

  struct Family {
    const char* name;
    int sinks;
    int reflectors;
  };
  const std::vector<Family> families{
      {"akamai-like small", 6, 4},
      {"akamai-like medium", 10, 5},
  };

  util::Table table({"family", "OPT/LP gap mean", "algo cost/OPT mean",
                     "algo cost/OPT max", "greedy-style wins", "solved"});
  for (const Family& f : families) {
    util::RunningStats ip_gap;
    util::RunningStats ratio;
    int solved = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      auto cfg = topo::global_event_config(f.sinks,
                                           static_cast<std::uint64_t>(seed));
      cfg.num_reflectors = f.reflectors;
      cfg.candidates_per_sink = 4;
      const auto inst = topo::make_akamai_like(cfg);
      const auto exact = core::solve_exact(inst);
      if (!exact.optimal()) continue;
      core::DesignerConfig dcfg;
      dcfg.seed = static_cast<std::uint64_t>(seed);
      dcfg.rounding_attempts = 4;
      const auto approx = core::OverlayDesigner(dcfg).design(inst);
      if (!approx.ok()) continue;
      ++solved;
      if (approx.lp_objective > 0) {
        ip_gap.add(exact.objective / approx.lp_objective);
      }
      if (exact.objective > 0) {
        ratio.add(approx.evaluation.total_cost / exact.objective);
      }
    }
    table.row()
        .cell(f.name)
        .cell(ip_gap.mean(), 3)
        .cell(ratio.mean(), 3)
        .cell(ratio.max(), 3)
        .cell("-")
        .cell(std::to_string(solved) + "/" + std::to_string(kSeeds));
  }

  // Set-cover family: the hardness source of the paper's log n bound.
  util::RunningStats sc_ratio;
  util::RunningStats sc_gap;
  int sc_solved = 0;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const auto sc = topo::make_random_set_cover(
        10, 6, 0.3, static_cast<std::uint64_t>(seed));
    const auto exact = core::solve_exact(sc.network);
    if (!exact.optimal()) continue;
    core::DesignerConfig dcfg;
    dcfg.seed = static_cast<std::uint64_t>(seed);
    dcfg.rounding_attempts = 4;
    const auto approx = core::OverlayDesigner(dcfg).design(sc.network);
    if (!approx.ok()) continue;
    ++sc_solved;
    if (approx.lp_objective > 0) sc_gap.add(exact.objective / approx.lp_objective);
    if (exact.objective > 0) {
      sc_ratio.add(approx.evaluation.total_cost / exact.objective);
    }
  }
  table.row()
      .cell("random set cover (10 elems)")
      .cell(sc_gap.mean(), 3)
      .cell(sc_ratio.mean(), 3)
      .cell(sc_ratio.max(), 3)
      .cell("-")
      .cell(std::to_string(sc_solved) + "/" + std::to_string(kSeeds));

  table.print(std::cout, "E11: true approximation ratio vs certified OPT");
  std::cout << "\nOPT/LP near 1 means the LP bound used in E2 is tight on\n"
               "these families; cost/OPT is the algorithm's real ratio\n"
               "(paper guarantee: O(log n)).  Ratios BELOW 1 are legitimate:\n"
               "the algorithm is bicriteria — it may deliver only W/4 of the\n"
               "demand weight, while OPT pays for full coverage.\n";
  return 0;
}
