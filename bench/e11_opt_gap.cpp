// E11 — true approximation ratio (extension of E2).
//
// E2 measures cost / LP-bound, which over-reports the real ratio because
// LP <= OPT.  On small instances the exact branch-and-bound solver
// certifies OPT, so here we report cost / OPT directly, plus the
// integrality gap OPT / LP of the Section-2 relaxation itself.
//
// Both stages are parallel: the exact solves fan out over the shared
// ExecutionContext (each branch-and-bound run is independent), and the
// approximation designs run as one DesignSweep over all families.

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "omn/core/design_sweep.hpp"
#include "omn/core/exact.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/topo/synthetic.hpp"
#include "omn/util/execution_context.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main(int argc, char** argv) {
  using namespace omn;
  const auto args = bench::parse_args(argc, argv, "e11_opt_gap");
  const int seeds = bench::smoke_scaled(args, 6, 2);

  struct Family {
    std::string name;
    std::vector<std::size_t> instance_indices;
  };
  std::vector<Family> families;
  core::DesignSweep sweep;
  const auto add = [&](Family& family, const std::string& label,
                       net::OverlayInstance inst) {
    family.instance_indices.push_back(sweep.num_instances());
    sweep.add_instance(label, std::move(inst));
  };

  struct AkamaiFamily {
    const char* name;
    int sinks;
    int reflectors;
  };
  for (const AkamaiFamily& f : {AkamaiFamily{"akamai-like small", 6, 4},
                                AkamaiFamily{"akamai-like medium", 10, 5}}) {
    Family family{f.name, {}};
    for (int seed = 1; seed <= seeds; ++seed) {
      auto cfg = topo::global_event_config(f.sinks,
                                           static_cast<std::uint64_t>(seed));
      cfg.num_reflectors = f.reflectors;
      cfg.candidates_per_sink = 4;
      add(family, family.name + "-s" + std::to_string(seed),
          topo::make_akamai_like(cfg));
    }
    families.push_back(std::move(family));
  }
  {
    // Set-cover family: the hardness source of the paper's log n bound.
    Family family{"random set cover (10 elems)", {}};
    for (int seed = 1; seed <= seeds; ++seed) {
      add(family, "set-cover-s" + std::to_string(seed),
          topo::make_random_set_cover(10, 6, 0.3,
                                      static_cast<std::uint64_t>(seed))
              .network);
    }
    families.push_back(std::move(family));
  }

  // Certify OPT per instance: independent branch-and-bound runs, fanned
  // out dynamically so an expensive family does not straggle the grid.
  // --threads 1 must be a genuinely pool-free serial baseline.
  const util::ExecutionContext context =
      args.threads == 1 ? util::ExecutionContext::serial()
                        : util::ExecutionContext::global();
  std::vector<core::ExactResult> exact(sweep.num_instances());
  context.parallel_for(
      exact.size(),
      [&](std::size_t i) { exact[i] = core::solve_exact(sweep.instance(i)); },
      {.max_parallelism = args.threads});

  core::DesignerConfig dcfg;
  dcfg.seed = 1;
  dcfg.rounding_attempts = 4;
  sweep.add_config("lp-rounding", dcfg);
  core::SweepOptions options;
  options.reseed_per_instance = true;
  const core::SweepReport report =
      bench::run_sweep(sweep, options, args, "E11 sweep");

  util::Table table({"family", "OPT/LP gap mean", "algo cost/OPT mean",
                     "algo cost/OPT max", "greedy-style wins", "solved"});
  for (const Family& family : families) {
    util::RunningStats ip_gap;
    util::RunningStats ratio;
    int solved = 0;
    for (std::size_t i : family.instance_indices) {
      if (!exact[i].optimal()) continue;
      const core::DesignResult& approx = report.cell(i, 0).result;
      if (!approx.ok()) continue;
      ++solved;
      if (approx.lp_objective > 0) {
        ip_gap.add(exact[i].objective / approx.lp_objective);
      }
      if (exact[i].objective > 0) {
        ratio.add(approx.evaluation.total_cost / exact[i].objective);
      }
    }
    table.row()
        .cell(family.name)
        .cell(ip_gap.mean(), 3)
        .cell(ratio.mean(), 3)
        .cell(ratio.max(), 3)
        .cell("-")
        .cell(std::to_string(solved) + "/" + std::to_string(seeds));
  }

  bench::print_table(
      table, "E11: true approximation ratio vs certified OPT",
      "OPT/LP near 1 means the LP bound used in E2 is tight on\n"
      "these families; cost/OPT is the algorithm's real ratio\n"
      "(paper guarantee: O(log n)).  Ratios BELOW 1 are legitimate:\n"
      "the algorithm is bicriteria — it may deliver only W/4 of the\n"
      "demand weight, while OPT pays for full coverage.");
  return 0;
}
