// E4 — Section 5.1 running time: "the total running time of our algorithm
// is the same as solving an LP with O(|S| * |R| * |D|) variables and
// constraints."
//
// google-benchmark harness: we scale the topology (|D| drives |R| in the
// generator) and time (a) the LP solve alone and (b) the full pipeline.
// The rounding stages should be a small constant fraction of the LP time,
// confirming the paper's claim that the LP dominates.

#include <benchmark/benchmark.h>

#include "omn/core/designer.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/topo/akamai.hpp"

namespace {

omn::net::OverlayInstance instance_for(int sinks) {
  return omn::topo::make_akamai_like(
      omn::topo::global_event_config(sinks, 42));
}

void BM_LpSolveOnly(benchmark::State& state) {
  const auto inst = instance_for(static_cast<int>(state.range(0)));
  const auto lp = omn::core::build_overlay_lp(inst);
  std::int64_t vars = lp.model.num_variables();
  for (auto _ : state) {
    const auto sol = omn::lp::SimplexSolver().solve(lp.model);
    benchmark::DoNotOptimize(sol.objective);
    if (!sol.optimal()) state.SkipWithError("LP not optimal");
  }
  state.counters["lp_vars"] = static_cast<double>(vars);
  state.counters["lp_rows"] = static_cast<double>(lp.model.num_rows());
}
BENCHMARK(BM_LpSolveOnly)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const auto inst = instance_for(static_cast<int>(state.range(0)));
  omn::core::DesignerConfig cfg;
  cfg.rounding_attempts = 1;
  const omn::core::OverlayDesigner designer(cfg);
  double rounding_fraction = 0.0;
  int runs = 0;
  for (auto _ : state) {
    const auto result = designer.design(inst);
    benchmark::DoNotOptimize(result.evaluation.total_cost);
    if (!result.ok()) state.SkipWithError("design failed");
    const double total = result.lp_seconds + result.rounding_seconds;
    if (total > 0) rounding_fraction += result.rounding_seconds / total;
    ++runs;
  }
  state.counters["rounding_fraction"] =
      runs > 0 ? rounding_fraction / runs : 0.0;
}
BENCHMARK(BM_FullPipeline)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_RoundingStagesOnly(benchmark::State& state) {
  const auto inst = instance_for(static_cast<int>(state.range(0)));
  const auto lp = omn::core::build_overlay_lp(inst);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  omn::core::DesignerConfig cfg;
  cfg.rounding_attempts = 1;
  const omn::core::OverlayDesigner designer(cfg);
  for (auto _ : state) {
    const auto result = designer.design_from_lp(inst, lp, sol);
    benchmark::DoNotOptimize(result.evaluation.total_cost);
  }
}
BENCHMARK(BM_RoundingStagesOnly)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
