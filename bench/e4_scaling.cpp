// E4 — Section 5.1 running time: "the total running time of our algorithm
// is the same as solving an LP with O(|S| * |R| * |D|) variables and
// constraints."
//
// google-benchmark harness: we scale the topology (|D| drives |R| in the
// generator) and time (a) the LP solve alone, (b) the full pipeline,
// (c) the Monte Carlo rounding attempts serial vs pool-parallel, and
// (d) a DesignSweep grid serial vs pool-parallel.  Compare the threads:1
// and threads:0 rows of (c)/(d) for the wall-clock speedup; on a machine
// with >= 4 cores, attempts >= 8 should show >= 2x.
//
// Invoked with any bench_common flag (--smoke / --threads / --workers /
// --lp-cache) the binary instead runs grid (d) once through
// bench::run_sweep — in-process or sharded across worker processes —
// and prints the standard sweep summary.  That mode is what the CI
// distributed smoke job drives twice over a shared --lp-cache directory
// to assert a warm distributed sweep performs 0 LP solves.  `e4_scaling
// worker` is the matching self-spawned worker entry.

#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_common.hpp"
#include "omn/core/design_sweep.hpp"
#include "omn/core/designer.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/topo/akamai.hpp"

namespace {

omn::net::OverlayInstance instance_for(int sinks, std::uint64_t seed = 42) {
  return omn::topo::make_akamai_like(
      omn::topo::global_event_config(sinks, seed));
}

void BM_LpSolveOnly(benchmark::State& state) {
  const auto inst = instance_for(static_cast<int>(state.range(0)));
  const auto lp = omn::core::build_overlay_lp(inst);
  std::int64_t vars = lp.model.num_variables();
  for (auto _ : state) {
    const auto sol = omn::lp::SimplexSolver().solve(lp.model);
    benchmark::DoNotOptimize(sol.objective);
    if (!sol.optimal()) state.SkipWithError("LP not optimal");
  }
  state.counters["lp_vars"] = static_cast<double>(vars);
  state.counters["lp_rows"] = static_cast<double>(lp.model.num_rows());
}
BENCHMARK(BM_LpSolveOnly)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const auto inst = instance_for(static_cast<int>(state.range(0)));
  omn::core::DesignerConfig cfg;
  cfg.rounding_attempts = 1;
  const omn::core::OverlayDesigner designer(cfg);
  double rounding_fraction = 0.0;
  int runs = 0;
  for (auto _ : state) {
    const auto result = designer.design(inst);
    benchmark::DoNotOptimize(result.evaluation.total_cost);
    if (!result.ok()) state.SkipWithError("design failed");
    const double total = result.lp_seconds + result.rounding_seconds;
    if (total > 0) rounding_fraction += result.rounding_seconds / total;
    ++runs;
  }
  state.counters["rounding_fraction"] =
      runs > 0 ? rounding_fraction / runs : 0.0;
}
BENCHMARK(BM_FullPipeline)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_RoundingStagesOnly(benchmark::State& state) {
  const auto inst = instance_for(static_cast<int>(state.range(0)));
  const auto lp = omn::core::build_overlay_lp(inst);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  omn::core::DesignerConfig cfg;
  cfg.rounding_attempts = 1;
  const omn::core::OverlayDesigner designer(cfg);
  for (auto _ : state) {
    const auto result = designer.design_from_lp(inst, lp, sol);
    benchmark::DoNotOptimize(result.evaluation.total_cost);
  }
}
BENCHMARK(BM_RoundingStagesOnly)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// (c) Monte Carlo attempt parallelism: the LP is solved once, then the
// rounding attempts run serially (threads:1) or on the pool (threads:0 =
// all cores).  Both produce the bit-identical winning design; only the
// wall clock differs.
void BM_MonteCarloAttempts(benchmark::State& state) {
  const auto inst = instance_for(32);
  const auto lp = omn::core::build_overlay_lp(inst);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  omn::core::DesignerConfig cfg;
  cfg.rounding_attempts = static_cast<int>(state.range(0));
  cfg.threads = static_cast<int>(state.range(1));
  cfg.c = 0.5;  // keep the coins genuinely random (see E12)
  const omn::core::OverlayDesigner designer(cfg);
  for (auto _ : state) {
    const auto result = designer.design_from_lp(inst, lp, sol);
    benchmark::DoNotOptimize(result.evaluation.total_cost);
    if (!result.ok()) state.SkipWithError("design failed");
  }
}
BENCHMARK(BM_MonteCarloAttempts)
    ->ArgNames({"attempts", "threads"})
    ->Args({8, 1})->Args({8, 0})
    ->Args({32, 1})->Args({32, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// (d) DesignSweep batch driver: a seeds x configs experiment grid run
// serially vs pool-backed.  This is the shape every bench in bench/ uses.
void BM_DesignSweepGrid(benchmark::State& state) {
  omn::core::DesignSweep sweep;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sweep.add_instance("seed" + std::to_string(seed),
                       instance_for(16, seed));
  }
  omn::core::DesignerConfig base;
  base.rounding_attempts = 2;
  sweep.add_config("with-cut", base);
  omn::core::DesignerConfig no_cut = base;
  no_cut.cutting_plane = false;
  sweep.add_config("no-cut", no_cut);

  omn::core::SweepOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto report = sweep.run(options);
    benchmark::DoNotOptimize(report.wall_seconds);
  }
  state.counters["cells"] = static_cast<double>(sweep.num_cells());
}
BENCHMARK(BM_DesignSweepGrid)
    ->ArgNames({"threads"})
    ->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The (d) grid as a one-shot bench_common sweep: the shape every bench
// shares, here also the vehicle for the distributed smoke path.
int run_sweep_grid(const omn::bench::BenchArgs& args) {
  const int seeds = omn::bench::smoke_scaled(args, 6, 2);
  const int sinks = omn::bench::smoke_scaled(args, 16, 8);
  omn::core::DesignSweep sweep;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    sweep.add_instance("seed" + std::to_string(seed),
                       instance_for(sinks, seed));
  }
  omn::core::DesignerConfig base;
  base.rounding_attempts = 2;
  sweep.add_config("with-cut", base);
  omn::core::DesignerConfig no_cut = base;
  no_cut.cutting_plane = false;
  sweep.add_config("no-cut", no_cut);

  omn::bench::run_sweep(sweep, {}, args, "e4 sweep grid");
  return 0;
}

// Sweep mode iff any argument is NOT a google-benchmark flag: bench_common
// owns the sweep flag list (and rejects typos), so this never needs to be
// kept in sync when a flag is added there.  No arguments = the gbench
// harness, which is what the ctest Bench smoke entry drives.
bool wants_sweep_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) != 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (wants_sweep_mode(argc, argv)) {
    // parse_args also routes `e4_scaling worker` into the worker loop.
    return run_sweep_grid(omn::bench::parse_args(argc, argv, "e4_scaling"));
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
