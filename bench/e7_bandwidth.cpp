// E7 — Section 6.1: bandwidth on reflectors.
//
// Paper claim: replacing (3)/(4) with bandwidth-weighted versions "allows
// us to model the service by reflectors of different bandwidth streams",
// and "with small modifications the whole analysis goes through" — i.e.
// the same factor-4 guarantees hold with B^k-weighted fanout.
//
// Workload: a 300 kbps audio stream and a 3 Mbps video stream (0.3 vs 3.0
// capacity units).  We design with and without the extension and measure
// the *bandwidth-weighted* fanout utilization of each: ignoring bandwidth
// overloads reflectors carrying video.

#include <iostream>

#include "omn/core/designer.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main() {
  using namespace omn;
  constexpr int kSinks = 40;
  constexpr int kSeeds = 5;

  util::RunningStats naive_bw_util;     // bandwidth-blind design, bw-weighted
  util::RunningStats aware_bw_util;     // bandwidth-aware design, bw-weighted
  util::RunningStats aware_min_ratio;
  util::RunningStats naive_min_ratio;

  for (int seed = 1; seed <= kSeeds; ++seed) {
    auto topo_cfg = topo::global_event_config(
        kSinks, static_cast<std::uint64_t>(seed));
    topo_cfg.num_sources = 2;
    auto inst = topo::make_akamai_like(topo_cfg);
    inst.source(0).bandwidth = 0.3;  // audio
    inst.source(1).bandwidth = 3.0;  // full-screen video

    core::DesignerConfig naive_cfg;
    naive_cfg.seed = static_cast<std::uint64_t>(seed);
    naive_cfg.rounding_attempts = 3;
    naive_cfg.bandwidth_extension = false;
    core::DesignerConfig aware_cfg = naive_cfg;
    aware_cfg.bandwidth_extension = true;

    const auto naive = core::OverlayDesigner(naive_cfg).design(inst);
    const auto aware = core::OverlayDesigner(aware_cfg).design(inst);
    if (!naive.ok() || !aware.ok()) continue;

    // Evaluate BOTH with bandwidth weighting to expose the naive overload.
    const auto naive_ev = core::evaluate(inst, naive.design, true);
    const auto aware_ev = core::evaluate(inst, aware.design, true);
    naive_bw_util.add(naive_ev.max_fanout_utilization);
    aware_bw_util.add(aware_ev.max_fanout_utilization);
    naive_min_ratio.add(naive_ev.min_weight_ratio);
    aware_min_ratio.add(aware_ev.min_weight_ratio);
  }

  util::Table table({"design", "worst bw-weighted fanout use (max)",
                     "min weight ratio (worst)", "paper bound"});
  table.row()
      .cell("bandwidth-blind (3)/(4)")
      .cell(naive_bw_util.max(), 2)
      .cell(naive_min_ratio.min(), 3)
      .cell("none (can overload)");
  table.row()
      .cell("bandwidth-aware (3')/(4')")
      .cell(aware_bw_util.max(), 2)
      .cell(aware_min_ratio.min(), 3)
      .cell("<= 4.0 / >= 0.25");
  table.print(std::cout, "E7: bandwidth extension (0.3 vs 3.0 unit streams)");
  std::cout << "\nThe aware design must keep bandwidth-weighted utilization "
               "within the\nfactor-4 envelope while preserving the weight "
               "guarantee; the blind\ndesign may exceed it on video-heavy "
               "reflectors.\n";
  return 0;
}
