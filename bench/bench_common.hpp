#pragma once
// Shared scaffolding for the experiment binaries in bench/.
//
// Every converted bench runs the same skeleton: parse the common flags,
// build a core::DesignSweep grid, run it on the shared execution context,
// print one standard summary line (cells, LP solves vs grid size, cache
// traffic, wall clock), then tabulate.  This header dedupes that skeleton
// so the benches contain only their experiment-specific grid and tables.
//
// Flags (every converted bench accepts all of these):
//   --threads N     sweep + designer parallelism: 0 = all cores (default),
//                   1 = serial (use two runs to measure the speedup)
//   --smoke         shrink the grid to a tiny configuration; used by the CI
//                   bench smoke job (ctest -C Bench -L bench)
//   --lp-cache DIR  install a core::LpCache over DIR on the global
//                   execution context: a re-run of the same bench serves
//                   every LP solve from the cache (the summary line shows
//                   the hit/miss traffic)
//   --workers N     shard the sweep across N worker processes (omn::dist):
//                   the bench re-invokes itself as `<exe> worker`, the
//                   report is bit-identical to the in-process run, the
//                   host's thread budget is divided across the workers
//                   (never N x all cores), and the workers share the
//                   --lp-cache directory (a warm distributed re-run
//                   performs zero simplex solves).  0 (default) =
//                   in-process.
//   --metrics FILE  write the run's counters as JSON (schema
//                   "omn-metrics-v1", see docs/EXPERIMENTS.md): grid
//                   size, LP solves, cache traffic, saved-by-reuse,
//                   wall/cpu seconds, threads, and — distributed —
//                   workers, shards, and the per-worker thread cap.
//                   The committed BENCH_*.json perf trajectories and the
//                   CI perf gate are built from these files.
//   --trace FILE    record hierarchical spans (designer stages, LP
//                   phases, cache traffic, ExecutionContext chunks) and
//                   write a Chrome trace-event JSON timeline at exit —
//                   load FILE in chrome://tracing or Perfetto.  With
//                   --workers N the workers record too (the flag
//                   propagates as `--trace-spans` on their argv) and
//                   their spans merge into the same file as per-pid
//                   lanes.  Tracing never changes work: the perf gate
//                   runs with --trace on and exact-matches the
//                   counters against an untraced run.
//
// Worker mode: parse_args() routes `<bench> worker [--lp-cache DIR]` to
// omn::dist::worker_main before any flag parsing, so every bench built on
// this header is automatically its own distributed worker binary.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "omn/core/design_sweep.hpp"
#include "omn/core/lp_cache.hpp"
#include "omn/dist/dist_sweep.hpp"
#include "omn/dist/worker.hpp"
#include "omn/obs/chrome_trace.hpp"
#include "omn/util/execution_context.hpp"
#include "omn/util/json.hpp"
#include "omn/util/parse.hpp"
#include "omn/util/table.hpp"
#include "omn/util/trace.hpp"

namespace omn::bench {

struct BenchArgs {
  /// The bench binary's name, for messages and the metrics "tool" field.
  std::string bench_name;
  std::size_t threads = 0;
  bool smoke = false;
  /// Cache directory from --lp-cache, empty = no cache.
  std::string lp_cache_dir;
  /// Worker processes from --workers, 0 = run the sweep in-process.
  std::size_t workers = 0;
  /// Output path from --metrics, empty = no metrics file.
  std::string metrics_path;
  /// Output path from --trace, empty = tracing off.
  std::string trace_path;
};

inline BenchArgs parse_args(int argc, char** argv, const char* bench_name) {
  if (argc >= 2 && std::strcmp(argv[1], "worker") == 0) {
    // Distributed worker mode: stdin/stdout belong to the frame protocol,
    // so enter the loop before any bench code can print.
    std::exit(dist::worker_main(argc, argv));
  }
  BenchArgs args;
  args.bench_name = bench_name;
  const auto parse_count = [&](const char* flag,
                               const char* value) -> std::size_t {
    // Strict: digits only, overflow rejected.  A typo must not silently
    // become 0 = "all cores" (which would invert a serial run), and an
    // out-of-range value must not wrap (strtoul would turn
    // --workers 18446744073709551617 into 1 — util::parse_count cannot).
    const std::optional<std::size_t> parsed = util::parse_count(value);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "%s: bad %s value '%s'\n", bench_name, flag, value);
      std::exit(2);
    }
    return *parsed;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = parse_count("--threads", argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      args.workers = parse_count("--workers", argv[++i]);
    } else if (std::strcmp(argv[i], "--lp-cache") == 0 && i + 1 < argc) {
      args.lp_cache_dir = argv[++i];
      if (args.lp_cache_dir.empty()) {
        std::fprintf(stderr, "%s: --lp-cache needs a directory\n", bench_name);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      args.metrics_path = argv[++i];
      if (args.metrics_path.empty()) {
        std::fprintf(stderr, "%s: --metrics needs a file path\n", bench_name);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      args.trace_path = argv[++i];
      if (args.trace_path.empty()) {
        std::fprintf(stderr, "%s: --trace needs a file path\n", bench_name);
        std::exit(2);
      }
      // Record from here on; the merged Chrome trace (this process plus
      // any dist worker lanes) is written once, at exit.
      util::Trace::set_enabled(true);
      obs::export_merged_trace_at_exit(args.trace_path, bench_name);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--smoke] [--lp-cache DIR] "
                   "[--workers N] [--metrics FILE] [--trace FILE]\n",
                   bench_name);
      std::exit(2);
    }
  }
  return args;
}

/// Shrinks a grid dimension for --smoke runs.
inline int smoke_scaled(const BenchArgs& args, int full, int tiny) {
  return args.smoke ? tiny : full;
}

/// The sweep records accumulated for this process's metrics file: one
/// entry per run_sweep call, in call order, so a bench that runs several
/// grids (e.g. e12's ablation pairs) emits them all.  Function-local
/// static: every translation unit of a bench binary shares one sink.
inline util::Json& metrics_records() {
  static util::Json records = util::Json::array();
  return records;
}

/// Writes the metrics envelope to args.metrics_path (no-op when the flag
/// is absent).  Called by run_sweep after every sweep with the file
/// REWRITTEN cumulatively, so benches need no explicit finalize step and
/// a crash mid-bench still leaves the completed sweeps' metrics behind.
inline void write_metrics(const BenchArgs& args) {
  if (args.metrics_path.empty()) return;
  util::Json envelope = util::Json::object();
  envelope.set("schema", "omn-metrics-v1");
  envelope.set("tool", args.bench_name);
  envelope.set("smoke", args.smoke);
  envelope.set("threads", args.threads);
  envelope.set("workers", args.workers);
  envelope.set("lp_cache", args.lp_cache_dir);
  envelope.set("sweeps", metrics_records());
  std::ofstream out(args.metrics_path, std::ios::trunc);
  out << envelope.dump(2) << "\n";
  if (!out.good()) {
    std::fprintf(stderr, "%s: cannot write --metrics file %s\n",
                 args.bench_name.c_str(), args.metrics_path.c_str());
    std::exit(2);
  }
}

/// Runs the sweep with the bench's options (threads overridden from the
/// command line, the --lp-cache cache installed on the context) and prints
/// the standard summary: LP solves against the grid size, so the effect of
/// the reuse planner and the cache is visible in every bench run, not just
/// where a bench asserts on it.  With --workers N the grid is sharded
/// across N self-spawned worker processes instead (bit-identical cells;
/// the summary gains a shard/worker clause).  With --metrics the run's
/// counters are appended to the metrics file.
inline core::SweepReport run_sweep(const core::DesignSweep& sweep,
                                   core::SweepOptions options,
                                   const BenchArgs& args, const char* label) {
  options.threads = args.threads;
  core::SweepReport report;
  dist::DistStats dist_stats;
  if (args.workers > 0) {
    dist::DistOptions dist_options;
    dist_options.workers = args.workers;
    dist_options.worker_command =
        dist::self_worker_command(args.lp_cache_dir);
    dist_options.stats = &dist_stats;
    report = sweep.run_distributed(options, dist_options);
  } else {
    util::ExecutionContext context =
        core::DesignSweep::default_context(options);
    if (!args.lp_cache_dir.empty()) {
      context.set_service(std::make_shared<core::LpCache>(args.lp_cache_dir));
    }
    report = sweep.run(options, context);
  }
  const std::size_t cells = report.cells.size();
  std::printf("%s: %zu cells | %zu LP solves for %zu cells "
              "(%zu distinct LP configs, %zu saved by reuse",
              label, cells, report.lp_solves, cells, report.lp_configs,
              report.saved_by_reuse());
  if (!args.lp_cache_dir.empty()) {
    std::printf(", cache %zu hits / %zu misses", report.lp_cache_hits,
                report.lp_cache_misses);
  }
  std::printf(") | %.2fs (threads=%zu%s)", report.wall_seconds, args.threads,
              args.threads == 0 ? " = all" : "");
  if (args.workers > 0) {
    std::printf(" | %zu workers x %zu threads, %zu shards (%zu reassigned), "
                "%.2fs cpu",
                dist_stats.workers_spawned, dist_stats.threads_per_worker,
                dist_stats.shards_total, dist_stats.shards_reassigned,
                report.cpu_seconds);
  }
  std::printf("\n\n");

  if (!args.metrics_path.empty()) {
    util::Json record = core::to_json(report);
    record.set("label", label);
    if (args.workers > 0) record.set("dist", dist::to_json(dist_stats));
    metrics_records().push(std::move(record));
    write_metrics(args);
  }
  return report;
}

/// Prints a table with the bench's standard layout: title, then an
/// "Expected:"-style footer paragraph.
inline void print_table(util::Table& table, const std::string& title,
                        const std::string& footer) {
  table.print(std::cout, title);
  if (!footer.empty()) std::cout << "\n" << footer << "\n";
}

}  // namespace omn::bench
