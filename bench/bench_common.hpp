#pragma once
// Shared scaffolding for the experiment binaries in bench/.
//
// Every converted bench runs the same skeleton: parse the common flags,
// build a core::DesignSweep grid, run it on the shared execution context,
// print one standard summary line (cells, LP solves, wall clock), then
// tabulate.  This header dedupes that skeleton so the benches contain only
// their experiment-specific grid and tables.
//
// Flags (every converted bench accepts both):
//   --threads N   sweep + designer parallelism: 0 = all cores (default),
//                 1 = serial (use two runs to measure the speedup)
//   --smoke       shrink the grid to a tiny configuration; used by the CI
//                 bench smoke job (ctest -C Bench -L bench)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "omn/core/design_sweep.hpp"
#include "omn/util/table.hpp"

namespace omn::bench {

struct BenchArgs {
  std::size_t threads = 0;
  bool smoke = false;
};

inline BenchArgs parse_args(int argc, char** argv, const char* bench_name) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(value, &end, 10);
      // Reject anything but a plain non-negative integer: a typo must not
      // silently become 0 = "all cores" (which would invert a serial run).
      if (*value == '\0' || *value == '-' || end == value || *end != '\0') {
        std::fprintf(stderr, "%s: bad --threads value '%s'\n", bench_name,
                     value);
        std::exit(2);
      }
      args.threads = static_cast<std::size_t>(parsed);
    } else {
      std::fprintf(stderr, "usage: %s [--threads N] [--smoke]\n", bench_name);
      std::exit(2);
    }
  }
  return args;
}

/// Shrinks a grid dimension for --smoke runs.
inline int smoke_scaled(const BenchArgs& args, int full, int tiny) {
  return args.smoke ? tiny : full;
}

/// Runs the sweep with the bench's options (threads overridden from the
/// command line) and prints the standard one-line summary.
inline core::SweepReport run_sweep(const core::DesignSweep& sweep,
                                   core::SweepOptions options,
                                   const BenchArgs& args, const char* label) {
  options.threads = args.threads;
  const core::SweepReport report = sweep.run(options);
  std::printf(
      "%s: %zu cells | %zu LP solves (%zu distinct LP configs) | %.2fs "
      "(threads=%zu%s)\n\n",
      label, report.cells.size(), report.lp_solves, report.lp_configs,
      report.wall_seconds, args.threads, args.threads == 0 ? " = all" : "");
  return report;
}

/// Prints a table with the bench's standard layout: title, then an
/// "Expected:"-style footer paragraph.
inline void print_table(util::Table& table, const std::string& title,
                        const std::string& footer) {
  table.print(std::cout, title);
  if (!footer.empty()) std::cout << "\n" << footer << "\n";
}

}  // namespace omn::bench
