// E13 — Section 6.2: capacities on all of the arcs.
//
// Paper claim: a constant-factor-violation algorithm for constraints (7)
// and (8) would yield a constant-factor set-cover approximation, so none
// exists (unless NP ⊂ DTIME(n^O(log log n))); "our rounding procedure ...
// will yield a c log n factor violation of constraints (7) and (8) — the
// best guarantee we can hope for."
//
// We cap every reflector at one ingested stream (u_i = 1), run the
// pipeline, and report the worst measured violation of (8) against the
// paper's c log n envelope, over several seeds and multipliers.

#include <cmath>
#include <iostream>

#include "omn/core/designer.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main() {
  using namespace omn;
  constexpr int kSinks = 40;
  constexpr int kSeeds = 6;

  util::Table table({"c", "c*ln(n) envelope", "worst streams/reflector",
                     "mean streams/reflector", "min w-ratio worst"});
  for (double c : {0.5, 2.0, 8.0}) {
    util::RunningStats worst_streams;
    util::RunningStats mean_streams;
    util::RunningStats minw;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      auto cfg_topo = topo::global_event_config(
          kSinks, static_cast<std::uint64_t>(seed));
      cfg_topo.num_sources = 3;
      auto inst = topo::make_akamai_like(cfg_topo);
      for (int i = 0; i < inst.num_reflectors(); ++i) {
        inst.reflector(i).stream_capacity = 1.0;
      }
      core::DesignerConfig cfg;
      cfg.c = c;
      cfg.seed = static_cast<std::uint64_t>(seed);
      cfg.reflector_stream_capacities = true;
      cfg.rounding_attempts = 3;
      const auto r = core::OverlayDesigner(cfg).design(inst);
      if (!r.ok()) continue;
      double worst = 0.0;
      double total = 0.0;
      int used = 0;
      for (int i = 0; i < inst.num_reflectors(); ++i) {
        double streams = 0.0;
        for (int k = 0; k < inst.num_sources(); ++k) {
          streams += r.design.y[core::y_index(inst, k, i)];
        }
        worst = std::max(worst, streams);
        if (streams > 0) {
          total += streams;
          ++used;
        }
      }
      worst_streams.add(worst);
      if (used > 0) mean_streams.add(total / used);
      minw.add(r.evaluation.min_weight_ratio);
    }
    table.row()
        .cell(c, 1)
        .cell(std::max(c * std::log(kSinks), 1.0), 1)
        .cell(worst_streams.max(), 1)
        .cell(mean_streams.mean(), 2)
        .cell(minw.min(), 3);
  }
  table.print(std::cout,
              "E13: constraint (8) violation after rounding (u_i = 1)");
  std::cout << "\nPaper: violations up to c ln n are unavoidable in the worst\n"
               "case (set-cover hardness); measured violations stay far below\n"
               "the envelope on these instances while the weight guarantee\n"
               "holds.\n";
  return 0;
}
