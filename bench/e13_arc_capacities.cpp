// E13 — Section 6.2: capacities on all of the arcs.
//
// Paper claim: a constant-factor-violation algorithm for constraints (7)
// and (8) would yield a constant-factor set-cover approximation, so none
// exists (unless NP ⊂ DTIME(n^O(log log n))); "our rounding procedure ...
// will yield a c log n factor violation of constraints (7) and (8) — the
// best guarantee we can hope for."
//
// We cap every reflector at one ingested stream (u_i = 1), run the
// pipeline, and report the worst measured violation of (8) against the
// paper's c log n envelope, over several seeds and multipliers.  The grid
// is seeds × c-values where c is a rounding-only knob, so the LP-reuse
// planner solves one LP per seed instance and shares it across all c.

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "omn/core/design_sweep.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"

int main(int argc, char** argv) {
  using namespace omn;
  const auto args = bench::parse_args(argc, argv, "e13_arc_capacities");
  const int sinks = bench::smoke_scaled(args, 40, 20);
  const int seeds = bench::smoke_scaled(args, 6, 2);
  const std::vector<double> cs{0.5, 2.0, 8.0};

  core::DesignSweep sweep;
  for (int seed = 1; seed <= seeds; ++seed) {
    auto cfg_topo = topo::global_event_config(
        sinks, static_cast<std::uint64_t>(seed));
    cfg_topo.num_sources = 3;
    auto inst = topo::make_akamai_like(cfg_topo);
    for (int i = 0; i < inst.num_reflectors(); ++i) {
      inst.reflector(i).stream_capacity = 1.0;
    }
    sweep.add_instance("seed" + std::to_string(seed), std::move(inst));
  }
  for (double c : cs) {
    core::DesignerConfig cfg;
    cfg.c = c;
    cfg.seed = 1;  // reseed_per_instance shifts this to the instance's seed
    cfg.reflector_stream_capacities = true;
    cfg.rounding_attempts = 3;
    sweep.add_config("c" + util::format_double(c, 1), cfg);
  }

  core::SweepOptions options;
  options.reseed_per_instance = true;
  const core::SweepReport report =
      bench::run_sweep(sweep, options, args, "E13 sweep");

  util::Table table({"c", "c*ln(n) envelope", "worst streams/reflector",
                     "mean streams/reflector", "min w-ratio worst"});
  for (std::size_t ci = 0; ci < cs.size(); ++ci) {
    util::RunningStats worst_streams;
    util::RunningStats mean_streams;
    util::RunningStats minw;
    for (std::size_t i = 0; i < static_cast<std::size_t>(seeds); ++i) {
      const core::DesignResult& r = report.cell(i, ci).result;
      if (!r.ok()) continue;
      const net::OverlayInstance& inst = sweep.instance(i);
      double worst = 0.0;
      double total = 0.0;
      int used = 0;
      for (int ri = 0; ri < inst.num_reflectors(); ++ri) {
        double streams = 0.0;
        for (int k = 0; k < inst.num_sources(); ++k) {
          streams += r.design.y[core::y_index(inst, k, ri)];
        }
        worst = std::max(worst, streams);
        if (streams > 0) {
          total += streams;
          ++used;
        }
      }
      worst_streams.add(worst);
      if (used > 0) mean_streams.add(total / used);
      minw.add(r.evaluation.min_weight_ratio);
    }
    table.row()
        .cell(cs[ci], 1)
        .cell(std::max(cs[ci] * std::log(sinks), 1.0), 1)
        .cell(worst_streams.max(), 1)
        .cell(mean_streams.mean(), 2)
        .cell(minw.min(), 3);
  }
  bench::print_table(
      table, "E13: constraint (8) violation after rounding (u_i = 1)",
      "Paper: violations up to c ln n are unavoidable in the worst\n"
      "case (set-cover hardness); measured violations stay far below\n"
      "the envelope on these instances while the weight guarantee\n"
      "holds.");
  return 0;
}
