// Quickstart: build a small overlay network by hand, run the SPAA'03
// design algorithm, and inspect the result.
//
//   $ ./examples/quickstart
//
// The network: one live stream, three candidate reflectors in two ISPs,
// four edgeservers with 99% delivery requirements.

#include <cstdio>
#include <iostream>

#include "omn/core/designer.hpp"
#include "omn/net/instance.hpp"

int main() {
  using namespace omn;

  // 1. Describe the network. -------------------------------------------------
  net::OverlayInstance inst;

  // The encoder feeds one entrypoint; commodity 0 is "the stream".
  inst.add_source(net::Source{"entrypoint-nyc", 1.0});

  // Three candidate reflectors: build cost, fanout, ISP color.
  inst.add_reflector(net::Reflector{"refl-chi", 30.0, 3.0, 0});
  inst.add_reflector(net::Reflector{"refl-lon", 45.0, 3.0, 1});
  inst.add_reflector(net::Reflector{"refl-sjc", 25.0, 3.0, 0});

  // Entrypoint -> reflector links: (source, reflector, $/stream, loss).
  inst.add_source_reflector_edge({0, 0, 2.0, 0.010});
  inst.add_source_reflector_edge({0, 1, 4.0, 0.030});
  inst.add_source_reflector_edge({0, 2, 2.5, 0.015});

  // Four edgeservers, each demanding the stream at 99% delivery.
  for (int j = 0; j < 4; ++j) {
    inst.add_sink(net::Sink{"edge" + std::to_string(j), 0, 0.99});
  }
  // Reflector -> edgeserver links: (reflector, sink, $/stream, loss).
  inst.add_reflector_sink_edge({0, 0, 1.0, 0.020, {}});
  inst.add_reflector_sink_edge({1, 0, 1.5, 0.040, {}});
  inst.add_reflector_sink_edge({0, 1, 1.2, 0.030, {}});
  inst.add_reflector_sink_edge({2, 1, 0.8, 0.015, {}});
  inst.add_reflector_sink_edge({1, 2, 1.1, 0.025, {}});
  inst.add_reflector_sink_edge({2, 2, 0.9, 0.035, {}});
  inst.add_reflector_sink_edge({0, 3, 1.3, 0.020, {}});
  inst.add_reflector_sink_edge({1, 3, 1.0, 0.030, {}});
  inst.add_reflector_sink_edge({2, 3, 1.1, 0.025, {}});

  // 2. Run the algorithm. ----------------------------------------------------
  core::DesignerConfig config;
  config.seed = 7;
  config.rounding_attempts = 5;
  const core::DesignResult result = core::OverlayDesigner(config).design(inst);
  if (!result.ok()) {
    std::cerr << "design failed: " << core::to_string(result.status) << "\n";
    return 1;
  }

  // 3. Inspect the design. ---------------------------------------------------
  std::printf("LP lower bound (cost of any design): $%.2f\n",
              result.lp_objective);
  std::printf("design cost:                         $%.2f  (%.2fx the bound)\n",
              result.evaluation.total_cost, result.cost_ratio);
  std::printf("reflectors built:                    %d of %d\n",
              result.evaluation.reflectors_built, inst.num_reflectors());
  for (int i = 0; i < inst.num_reflectors(); ++i) {
    if (result.design.z[static_cast<std::size_t>(i)]) {
      std::printf("  - %s (ISP %d, fanout use %.0f%%)\n",
                  inst.reflector(i).name.c_str(), inst.reflector(i).color,
                  100.0 * result.evaluation.fanout_utilization
                              [static_cast<std::size_t>(i)]);
    }
  }
  std::printf("\nper-edgeserver delivery:\n");
  for (const auto& sink : result.evaluation.sinks) {
    std::printf("  %s: %d copies, P(delivered) = %.4f (required %.2f)\n",
                inst.sink(sink.sink).name.c_str(), sink.copies,
                sink.delivery_probability, sink.threshold);
  }
  return 0;
}
