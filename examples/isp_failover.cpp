// ISP failover scenario (paper Sections 1.2 and 6.4): catastrophic events
// — the WorldCom outage of 10/3/2002, the Cable & Wireless / PSINet
// de-peering — take a whole ISP down at once.  The color constraints
// diversify each edgeserver's copies across ISPs so a single outage
// degrades rather than destroys delivery.
//
// This example designs the same event twice (with and without color
// constraints) and kills each ISP in turn, asking two questions:
//
//  1. *Before any operator reacts*: how does the standing design hold up?
//     (sim::color_failure_sweep over the static designs.)
//  2. *After the operator reacts*: an incremental core::DesignState —
//     the primitive behind `omn_design serve` — fails every edge out of
//     the dead ISP's reflectors (the serve `edge-fail` event, applied in
//     bulk), re-runs the designer warm, and reports the recovered design
//     next to the simplex work the redesign cost.  edge-restore undoes
//     the outage exactly, so one state serves all ISP scenarios in turn.
//
//   $ ./examples/isp_failover [num_edgeservers] [num_isps] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "omn/core/design_state.hpp"
#include "omn/core/design_sweep.hpp"
#include "omn/core/designer.hpp"
#include "omn/sim/failures.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/parse.hpp"
#include "omn/util/table.hpp"

/// Strict positional argument (util::parse_count): a mistyped argument
/// aborts instead of silently running a different scenario (atoi("4O")
/// parses as 4, strtoull("-1", ...) wraps to 2^64 - 1).
static std::size_t arg_count(int argc, char** argv, int index,
                             std::size_t fallback) {
  if (argc <= index) return fallback;
  const std::optional<std::size_t> parsed = omn::util::parse_count(argv[index]);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "bad argument '%s' (expected a non-negative integer)\n",
                 argv[index]);
    std::exit(2);
  }
  return *parsed;
}

int main(int argc, char** argv) {
  using namespace omn;
  const int sinks = static_cast<int>(arg_count(argc, argv, 1, 40));
  const int isps = static_cast<int>(arg_count(argc, argv, 2, 4));
  const std::uint64_t seed = arg_count(argc, argv, 3, 1);

  auto topo_cfg = topo::global_event_config(sinks, seed);
  topo_cfg.num_isps = isps;
  topo_cfg.candidates_per_sink = 10;
  const auto inst = topo::make_akamai_like(topo_cfg);

  // The two designs are independent grid cells, so run them as a
  // DesignSweep: both cells execute concurrently on the shared pool, and
  // the results are bit-identical to designing them one after the other.
  // (The color constraint changes the LP relaxation, so this grid needs
  // two LP solves — the sweep summary line shows the planner's count.)
  core::DesignerConfig plain_cfg;
  plain_cfg.seed = seed;
  plain_cfg.rounding_attempts = 5;
  core::DesignerConfig color_cfg = plain_cfg;
  color_cfg.color_constraints = true;

  core::DesignSweep sweep;
  sweep.add_instance("event", inst);
  sweep.add_config("plain", plain_cfg);
  sweep.add_config("colored", color_cfg);
  const core::SweepReport report = sweep.run();

  const core::DesignResult& plain = report.cell(0, 0).result;
  const core::DesignResult& colored = report.cell(0, 1).result;
  if (!plain.ok() || !colored.ok()) {
    std::cerr << "design failed\n";
    return 1;
  }
  std::printf("designed %zu configs in %.2fs (pool-backed sweep, %zu LP "
              "solves for %zu distinct LP configs)\n",
              sweep.num_cells(), report.wall_seconds, report.lp_solves,
              report.lp_configs);

  std::printf("no-failure cost: plain $%.2f | color-constrained $%.2f\n",
              plain.evaluation.total_cost, colored.evaluation.total_cost);
  std::printf("max copies per (edgeserver, ISP): plain %d | colored %d\n\n",
              plain.evaluation.max_color_copies,
              colored.evaluation.max_color_copies);

  util::Table table({"failed ISP", "design", "served %", "meet threshold %",
                     "meet 1/4-guarantee %", "mean P(deliver)"});
  const auto sweep_plain = sim::color_failure_sweep(inst, plain.design);
  const auto sweep_colored = sim::color_failure_sweep(inst, colored.design);
  for (int c = 0; c < isps; ++c) {
    const auto& p = sweep_plain[static_cast<std::size_t>(c)];
    const auto& q = sweep_colored[static_cast<std::size_t>(c)];
    table.row()
        .cell(c)
        .cell("plain")
        .cell(100.0 * p.fraction_served, 1)
        .cell(100.0 * p.fraction_meeting_threshold, 1)
        .cell(100.0 * p.fraction_meeting_quarter, 1)
        .cell(p.mean_delivery_probability, 4);
    table.row()
        .cell(c)
        .cell("colored")
        .cell(100.0 * q.fraction_served, 1)
        .cell(100.0 * q.fraction_meeting_threshold, 1)
        .cell(100.0 * q.fraction_meeting_quarter, 1)
        .cell(q.mean_delivery_probability, 4);
  }
  table.print(std::cout, "single-ISP outage sweep (static designs)");

  std::printf("\nworst-case fraction meeting the 1/4 guarantee: plain %.2f | "
              "colored %.2f\n\n",
              sim::worst_case_quarter_fraction(sweep_plain),
              sim::worst_case_quarter_fraction(sweep_colored));

  // Part 2: the operator's response.  One DesignState carries the event
  // through every outage scenario: fail the dead ISP's edges, redesign
  // (warm where the solver can), measure, restore, next ISP.
  core::DesignerConfig failover_cfg = color_cfg;
  failover_cfg.lp_warm_start = true;
  core::DesignState state(inst, failover_cfg,
                          core::OverlayDesigner::default_context(failover_cfg));
  state.redesign();

  util::Table redo({"failed ISP", "status", "cost $", "reflectors",
                    "redesign ms", "pivots", "warm"});
  for (int c = 0; c < isps; ++c) {
    // The outage, as serve would receive it: one edge-fail event per edge
    // out of the dead ISP's reflectors (sr and rd layers both).
    std::vector<core::FailedEdge> downed;
    for (int i = 0; i < state.instance().num_reflectors(); ++i) {
      if (state.instance().reflector(i).color != c) continue;
      const std::string& refl = state.instance().reflector(i).name;
      for (int k = 0; k < state.instance().num_sources(); ++k) {
        if (state.instance().find_sr_edge(k, i) < 0) continue;
        state.fail_edge(false, state.instance().source(k).name, refl);
      }
      for (int j = 0; j < state.instance().num_sinks(); ++j) {
        if (state.instance().find_rd_edge(i, j) < 0) continue;
        state.fail_edge(true, refl, state.instance().sink(j).name);
      }
    }
    downed = state.failed_edges();

    const core::DesignResult& result = state.redesign();
    redo.row()
        .cell(c)
        .cell(core::to_string(result.status))
        .cell(result.evaluation.total_cost, 2)
        .cell(result.evaluation.reflectors_built)
        .cell(1000.0 * (result.lp_seconds + result.rounding_seconds), 1)
        .cell(result.lp_iterations)
        .cell(result.lp_warm_start);

    // Outage over: restore every failed edge to its exact original loss.
    for (const core::FailedEdge& edge : downed) {
      state.restore_edge(edge.rd, edge.a, edge.b);
    }
  }
  redo.print(std::cout, "single-ISP outage: incremental redesign response");
  std::printf("\neach row = the colored design re-run after failing every "
              "edge of that ISP's\nreflectors (the serve edge-fail path); "
              "'pivots'/'warm' show the simplex work\nthe incremental "
              "redesign paid.\n");
  return 0;
}
