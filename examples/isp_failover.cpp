// ISP failover scenario (paper Sections 1.2 and 6.4): catastrophic events
// — the WorldCom outage of 10/3/2002, the Cable & Wireless / PSINet
// de-peering — take a whole ISP down at once.  The color constraints
// diversify each edgeserver's copies across ISPs so a single outage
// degrades rather than destroys delivery.
//
// This example designs the same event twice (with and without color
// constraints), then kills each ISP in turn and reports who is still
// served.
//
//   $ ./examples/isp_failover [num_edgeservers] [num_isps] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>

#include "omn/core/design_sweep.hpp"
#include "omn/core/designer.hpp"
#include "omn/sim/failures.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/parse.hpp"
#include "omn/util/table.hpp"

/// Strict positional argument (util::parse_count): a mistyped argument
/// aborts instead of silently running a different scenario (atoi("4O")
/// parses as 4, strtoull("-1", ...) wraps to 2^64 - 1).
static std::size_t arg_count(int argc, char** argv, int index,
                             std::size_t fallback) {
  if (argc <= index) return fallback;
  const std::optional<std::size_t> parsed = omn::util::parse_count(argv[index]);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "bad argument '%s' (expected a non-negative integer)\n",
                 argv[index]);
    std::exit(2);
  }
  return *parsed;
}

int main(int argc, char** argv) {
  using namespace omn;
  const int sinks = static_cast<int>(arg_count(argc, argv, 1, 40));
  const int isps = static_cast<int>(arg_count(argc, argv, 2, 4));
  const std::uint64_t seed = arg_count(argc, argv, 3, 1);

  auto topo_cfg = topo::global_event_config(sinks, seed);
  topo_cfg.num_isps = isps;
  topo_cfg.candidates_per_sink = 10;
  const auto inst = topo::make_akamai_like(topo_cfg);

  // The two designs are independent grid cells, so run them as a
  // DesignSweep: both cells execute concurrently on the shared pool, and
  // the results are bit-identical to designing them one after the other.
  // (The color constraint changes the LP relaxation, so this grid needs
  // two LP solves — the sweep summary line shows the planner's count.)
  core::DesignerConfig plain_cfg;
  plain_cfg.seed = seed;
  plain_cfg.rounding_attempts = 5;
  core::DesignerConfig color_cfg = plain_cfg;
  color_cfg.color_constraints = true;

  core::DesignSweep sweep;
  sweep.add_instance("event", inst);
  sweep.add_config("plain", plain_cfg);
  sweep.add_config("colored", color_cfg);
  const core::SweepReport report = sweep.run();

  const core::DesignResult& plain = report.cell(0, 0).result;
  const core::DesignResult& colored = report.cell(0, 1).result;
  if (!plain.ok() || !colored.ok()) {
    std::cerr << "design failed\n";
    return 1;
  }
  std::printf("designed %zu configs in %.2fs (pool-backed sweep, %zu LP "
              "solves for %zu distinct LP configs)\n",
              sweep.num_cells(), report.wall_seconds, report.lp_solves,
              report.lp_configs);

  std::printf("no-failure cost: plain $%.2f | color-constrained $%.2f\n",
              plain.evaluation.total_cost, colored.evaluation.total_cost);
  std::printf("max copies per (edgeserver, ISP): plain %d | colored %d\n\n",
              plain.evaluation.max_color_copies,
              colored.evaluation.max_color_copies);

  util::Table table({"failed ISP", "design", "served %", "meet threshold %",
                     "meet 1/4-guarantee %", "mean P(deliver)"});
  const auto sweep_plain = sim::color_failure_sweep(inst, plain.design);
  const auto sweep_colored = sim::color_failure_sweep(inst, colored.design);
  for (int c = 0; c < isps; ++c) {
    const auto& p = sweep_plain[static_cast<std::size_t>(c)];
    const auto& q = sweep_colored[static_cast<std::size_t>(c)];
    table.row()
        .cell(c)
        .cell("plain")
        .cell(100.0 * p.fraction_served, 1)
        .cell(100.0 * p.fraction_meeting_threshold, 1)
        .cell(100.0 * p.fraction_meeting_quarter, 1)
        .cell(p.mean_delivery_probability, 4);
    table.row()
        .cell(c)
        .cell("colored")
        .cell(100.0 * q.fraction_served, 1)
        .cell(100.0 * q.fraction_meeting_threshold, 1)
        .cell(100.0 * q.fraction_meeting_quarter, 1)
        .cell(q.mean_delivery_probability, 4);
  }
  table.print(std::cout, "single-ISP outage sweep");

  std::printf("\nworst-case fraction meeting the 1/4 guarantee: plain %.2f | "
              "colored %.2f\n",
              sim::worst_case_quarter_fraction(sweep_plain),
              sim::worst_case_quarter_fraction(sweep_colored));
  return 0;
}
