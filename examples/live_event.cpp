// Live event scenario: a MacWorld-style global webcast (the paper's intro
// example drew 50,000 viewers / 16.5 Gbps through Akamai's network).
//
// We generate a synthetic Akamai-like topology, design the overlay with
// the SPAA'03 algorithm, validate it with the Monte Carlo packet
// simulator, and contrast against the greedy baseline.
//
//   $ ./examples/live_event [num_edgeservers] [seed]

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <iostream>

#include "omn/baseline/greedy.hpp"
#include "omn/core/designer.hpp"
#include "omn/sim/packet_sim.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/parse.hpp"
#include "omn/util/table.hpp"

/// Strict positional argument (util::parse_count): a mistyped argument
/// aborts instead of silently running a different scenario (atoi("4O")
/// parses as 4, strtoull("-1", ...) wraps to 2^64 - 1).
static std::size_t arg_count(int argc, char** argv, int index,
                             std::size_t fallback) {
  if (argc <= index) return fallback;
  const std::optional<std::size_t> parsed = omn::util::parse_count(argv[index]);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "bad argument '%s' (expected a non-negative integer)\n",
                 argv[index]);
    std::exit(2);
  }
  return *parsed;
}

int main(int argc, char** argv) {
  using namespace omn;
  const int sinks = static_cast<int>(arg_count(argc, argv, 1, 48));
  const std::uint64_t seed = arg_count(argc, argv, 2, 1);

  // A world-wide event: two entrypoints (primary + backup encoder feed),
  // edgeservers spread across metros.
  auto topo_cfg = topo::global_event_config(sinks, seed);
  const net::OverlayInstance inst = topo::make_akamai_like(topo_cfg);
  std::printf("topology: %d sources, %d reflectors (%d ISPs), %d edgeservers\n",
              inst.num_sources(), inst.num_reflectors(), inst.num_colors(),
              inst.num_sinks());

  // Design with the paper's algorithm.
  core::DesignerConfig cfg;
  cfg.seed = seed;
  cfg.rounding_attempts = 5;
  const auto result = core::OverlayDesigner(cfg).design(inst);
  if (!result.ok()) {
    std::cerr << "design failed: " << core::to_string(result.status) << "\n";
    return 1;
  }

  // Greedy baseline on the same instance.
  const auto greedy = baseline::greedy_design(inst);
  const auto greedy_eval = core::evaluate(inst, greedy.design);

  util::Table table({"design", "cost $", "vs LP bound", "reflectors",
                     "min weight ratio", "worst fanout use"});
  table.row()
      .cell("LP rounding (paper)")
      .cell(result.evaluation.total_cost, 2)
      .cell(result.cost_ratio, 2)
      .cell(result.evaluation.reflectors_built)
      .cell(result.evaluation.min_weight_ratio, 2)
      .cell(result.evaluation.max_fanout_utilization, 2);
  table.row()
      .cell("greedy baseline")
      .cell(greedy_eval.total_cost, 2)
      .cell(result.lp_objective > 0
                ? greedy_eval.total_cost / result.lp_objective
                : 0.0,
            2)
      .cell(greedy_eval.reflectors_built)
      .cell(greedy_eval.min_weight_ratio, 2)
      .cell(greedy_eval.max_fanout_utilization, 2);
  table.print(std::cout, "designs");

  // Validate the paper design with packet-level simulation.
  sim::SimulationConfig sim_cfg;
  sim_cfg.num_packets = 100000;
  sim_cfg.seed = seed;
  const auto report = sim::simulate(inst, result.design, sim_cfg);
  std::printf(
      "\nMonte Carlo (%lld packets): %.1f%% of edgeservers meet their full "
      "threshold,\n%.1f%% meet the paper's factor-4 guarantee.\n",
      static_cast<long long>(report.packets),
      100.0 * report.fraction_meeting_threshold,
      100.0 * report.fraction_meeting_quarter_guarantee);
  std::printf("stage timings: LP %.2fs, rounding %.2fs (%d LP pivots)\n",
              result.lp_seconds, result.rounding_seconds, result.lp_iterations);
  return 0;
}
