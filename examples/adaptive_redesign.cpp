// Adaptive redesign (paper Section 1.3): "Since our algorithm is
// reasonably fast it can be rerun as often as needed so that the overlay
// network adapts to changes in the link failure probabilities or costs."
//
// This example simulates a live event across epochs.  Each epoch, link
// loss probabilities drift (a random walk with occasional congestion
// spikes).  A *static* design computed at epoch 0 degrades; the *adaptive*
// strategy re-runs the designer on the fresh measurements every epoch and
// stays healthy.
//
// The adaptive side runs on core::DesignState — the incremental-redesign
// primitive behind `omn_design serve`: one state owns the drifting
// instance, the shared ExecutionContext, and (with lp_warm_start) an LP
// cache whose shape index offers each epoch's solve the previous epoch's
// optimal basis.  Loss drift never changes the LP *shape*, so the offer
// is always made; the solver accepts it only when the old basis is still
// primal feasible under the new coefficients — local perturbations yes,
// an every-edge drift epoch usually not.  The "pivots"/"warm" columns
// make that visible per epoch.
//
//   $ ./examples/adaptive_redesign [epochs] [seed]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <iostream>

#include "omn/core/design_state.hpp"
#include "omn/core/designer.hpp"
#include "omn/sim/reliability.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/execution_context.hpp"
#include "omn/util/rng.hpp"
#include "omn/util/parse.hpp"
#include "omn/util/table.hpp"

namespace {

/// Random-walk drift with occasional congestion spikes, clamped to [1e-4, .5].
void drift_losses(omn::net::OverlayInstance& inst, omn::util::Rng& rng) {
  auto drift = [&rng](double loss) {
    double next = loss * std::exp(rng.normal(0.0, 0.25));
    if (rng.bernoulli(0.05)) next += rng.uniform(0.05, 0.25);  // congestion
    return std::clamp(next, 1e-4, 0.5);
  };
  for (std::size_t e = 0; e < inst.sr_edges().size(); ++e) {
    inst.sr_edge(static_cast<int>(e)).loss =
        drift(inst.sr_edges()[e].loss);
  }
  for (std::size_t e = 0; e < inst.rd_edges().size(); ++e) {
    inst.rd_edge(static_cast<int>(e)).loss = drift(inst.rd_edges()[e].loss);
  }
}

double fraction_meeting_quarter(const omn::net::OverlayInstance& inst,
                                const omn::core::Design& design) {
  const auto probs = omn::sim::exact_delivery_probability(inst, design);
  int ok = 0;
  for (int j = 0; j < inst.num_sinks(); ++j) {
    const double allowed = 1.0 - inst.sink(j).threshold;
    if (1.0 - probs[static_cast<std::size_t>(j)] <=
        std::pow(allowed, 0.25) + 1e-12) {
      ++ok;
    }
  }
  return inst.num_sinks() > 0 ? static_cast<double>(ok) / inst.num_sinks() : 0.0;
}

}  // namespace

/// Strict positional argument (util::parse_count): a mistyped argument
/// aborts instead of silently running a different scenario (atoi("4O")
/// parses as 4, strtoull("-1", ...) wraps to 2^64 - 1).
static std::size_t arg_count(int argc, char** argv, int index,
                             std::size_t fallback) {
  if (argc <= index) return fallback;
  const std::optional<std::size_t> parsed = omn::util::parse_count(argv[index]);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "bad argument '%s' (expected a non-negative integer)\n",
                 argv[index]);
    std::exit(2);
  }
  return *parsed;
}

int main(int argc, char** argv) {
  using namespace omn;
  const int epochs = static_cast<int>(arg_count(argc, argv, 1, 8));
  const std::uint64_t seed = arg_count(argc, argv, 2, 1);

  auto inst = topo::make_akamai_like(topo::global_event_config(36, seed));
  util::Rng rng(seed ^ 0xabcdef);

  core::DesignerConfig cfg;
  cfg.seed = seed;
  cfg.rounding_attempts = 3;
  cfg.lp_warm_start = true;

  // One DesignState for the whole event: one scheduler pool across every
  // epoch's redesign, one warm LP cache across every epoch's solve.
  core::DesignState state(inst, cfg, util::ExecutionContext::global());

  const auto& initial = state.redesign();
  if (!initial.ok()) {
    std::cerr << "initial design failed\n";
    return 1;
  }
  core::Design static_design = initial.design;

  util::Table table({"epoch", "static ok %", "adaptive ok %",
                     "adaptive cost $", "redesign ms", "pivots", "warm"});
  table.row()
      .cell(0)
      .cell(100.0 * fraction_meeting_quarter(state.instance(), static_design),
            1)
      .cell(100.0 * fraction_meeting_quarter(state.instance(), static_design),
            1)
      .cell(initial.evaluation.total_cost, 2)
      .cell(1000.0 * (initial.lp_seconds + initial.rounding_seconds), 1)
      .cell(initial.lp_iterations)
      .cell(initial.lp_warm_start);

  for (int epoch = 1; epoch <= epochs; ++epoch) {
    // Outside the serve event grammar (losses drift continuously rather
    // than failing outright), so use the DesignState escape hatch: mutate
    // in place, keep the warm solver state.
    state.apply([&rng](net::OverlayInstance& live) {
      drift_losses(live, rng);
    });
    // Static design is evaluated against the *new* network conditions.
    const double static_ok =
        fraction_meeting_quarter(state.instance(), static_design);
    // Adaptive: re-run the algorithm on fresh measurements (same pool,
    // warm-started from the previous epoch's basis).
    const auto& redesigned = state.redesign();
    if (!redesigned.ok()) {
      std::cerr << "redesign failed at epoch " << epoch << "\n";
      return 1;
    }
    table.row()
        .cell(epoch)
        .cell(100.0 * static_ok, 1)
        .cell(100.0 * fraction_meeting_quarter(state.instance(),
                                               redesigned.design),
              1)
        .cell(redesigned.evaluation.total_cost, 2)
        .cell(1000.0 * (redesigned.lp_seconds + redesigned.rounding_seconds),
              1)
        .cell(redesigned.lp_iterations)
        .cell(redesigned.lp_warm_start);
  }
  table.print(std::cout, "loss drift: static vs adaptive redesign");
  std::printf("\n'ok %%' = fraction of edgeservers meeting the factor-4 "
              "reliability guarantee under current losses.\n"
              "'pivots'/'warm' = simplex work per redesign.  Drift preserves "
              "the LP shape, so each\nepoch is offered the previous optimal "
              "basis; 'warm' says whether it was still\nprimal feasible "
              "under the drifted losses (local changes warm-start, a "
              "whole-network\ndrift epoch usually re-solves cold).\n");
  return 0;
}
