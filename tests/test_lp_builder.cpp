// Tests for the Section-2 LP builder: structure, feasibility on generated
// topologies, weight clamping, and the extension toggles.
#include "omn/core/lp_builder.hpp"

#include <gtest/gtest.h>

#include "omn/lp/simplex.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/topo/synthetic.hpp"

namespace {

using omn::core::build_overlay_lp;
using omn::core::LpBuildOptions;
using omn::core::OverlayLp;
using omn::net::OverlayInstance;

OverlayInstance tiny() {
  OverlayInstance inst;
  inst.add_source(omn::net::Source{"s0", 1.0});
  inst.add_reflector(omn::net::Reflector{"r0", 10.0, 2.0, 0});
  inst.add_reflector(omn::net::Reflector{"r1", 5.0, 2.0, 1});
  inst.add_sink(omn::net::Sink{"d0", 0, 0.99});
  inst.add_sink(omn::net::Sink{"d1", 0, 0.9});
  inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, 0, 1.0, 0.01});
  inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, 1, 1.0, 0.02});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{0, 0, 1.0, 0.01, {}});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{1, 0, 1.0, 0.02, {}});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{0, 1, 1.0, 0.05, {}});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{1, 1, 1.0, 0.03, {}});
  return inst;
}

TEST(LpBuilder, VariableCounts) {
  const OverlayInstance inst = tiny();
  const OverlayLp lp = build_overlay_lp(inst);
  // 2 z + 2 y + 4 x.
  EXPECT_EQ(lp.model.num_variables(), 8);
  for (int v : lp.z_var) EXPECT_GE(v, 0);
  for (int v : lp.y_var) EXPECT_GE(v, 0);
  for (int v : lp.x_var) EXPECT_GE(v, 0);
}

TEST(LpBuilder, RowCountsWithAndWithoutCuttingPlane) {
  const OverlayInstance inst = tiny();
  LpBuildOptions with;
  LpBuildOptions without;
  without.cutting_plane = false;
  const int rows_with = build_overlay_lp(inst, with).model.num_rows();
  const int rows_without = build_overlay_lp(inst, without).model.num_rows();
  // Constraint (4) adds one row per existing (k, i).
  EXPECT_EQ(rows_with - rows_without, 2);
}

TEST(LpBuilder, WeightsClampedToDemand) {
  const OverlayInstance inst = tiny();
  const OverlayLp lp = build_overlay_lp(inst);
  for (std::size_t e = 0; e < lp.x_weight.size(); ++e) {
    const int j = inst.rd_edges()[e].sink;
    EXPECT_LE(lp.x_weight[e],
              lp.sink_demand[static_cast<std::size_t>(j)] + 1e-12);
    EXPECT_GT(lp.x_weight[e], 0.0);
  }
}

TEST(LpBuilder, MissingSourcePathDisablesX) {
  OverlayInstance inst = tiny();
  // Second commodity with no edges to reflector 1.
  inst.add_source(omn::net::Source{"s1", 1.0});
  inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{1, 0, 1.0, 0.01});
  inst.add_sink(omn::net::Sink{"d2", 1, 0.9});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{0, 2, 1.0, 0.02, {}});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{1, 2, 1.0, 0.02, {}});
  const OverlayLp lp = build_overlay_lp(inst);
  // Edge (r1, d2) has no source path for commodity 1.
  const int id = inst.find_rd_edge(1, 2);
  ASSERT_GE(id, 0);
  EXPECT_EQ(lp.x_var[static_cast<std::size_t>(id)], -1);
  const int ok_id = inst.find_rd_edge(0, 2);
  EXPECT_GE(lp.x_var[static_cast<std::size_t>(ok_id)], 0);
}

TEST(LpBuilder, SolvesTinyToOptimality) {
  const OverlayInstance inst = tiny();
  const OverlayLp lp = build_overlay_lp(inst);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  EXPECT_GT(sol.objective, 0.0);
  const auto frac = lp.extract(inst, sol.x);
  for (double z : frac.z) {
    EXPECT_GE(z, -1e-9);
    EXPECT_LE(z, 1.0 + 1e-9);
  }
  // LP cost identity.
  EXPECT_NEAR(frac.cost(inst), sol.objective, 1e-6);
}

TEST(LpBuilder, LpFeasibleOnGeneratedTopologies) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto inst =
        omn::topo::make_akamai_like(omn::topo::global_event_config(24, seed));
    const OverlayLp lp = build_overlay_lp(inst);
    const auto sol = omn::lp::SimplexSolver().solve(lp.model);
    ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_LE(sol.max_violation, 1e-6);
  }
}

TEST(LpBuilder, InfeasibleWhenSinkUnreachable) {
  OverlayInstance inst = tiny();
  inst.add_sink(omn::net::Sink{"stranded", 0, 0.999});
  // No rd edges into the new sink.
  const OverlayLp lp = build_overlay_lp(inst);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  EXPECT_EQ(sol.status, omn::lp::SolveStatus::kInfeasible);
}

TEST(LpBuilder, FanoutForcesSecondReflector) {
  // With tight fanouts neither reflector alone can serve both sinks: d0
  // needs both reflectors' weight and d1 needs a full unit besides.
  OverlayInstance inst = tiny();
  inst.reflector(0).fanout = 1.0;
  inst.reflector(1).fanout = 2.0;
  const OverlayLp lp = build_overlay_lp(inst);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  const auto frac = lp.extract(inst, sol.x);
  // Both reflectors must be (fractionally) used well beyond one unit.
  EXPECT_GT(frac.z[0] + frac.z[1], 1.3);
  EXPECT_GT(frac.z[0], 0.0);
  EXPECT_GT(frac.z[1], 0.0);
}

TEST(LpBuilder, ColorConstraintsAddRows) {
  const OverlayInstance inst = tiny();
  LpBuildOptions plain;
  LpBuildOptions colored;
  colored.color_constraints = true;
  const int base = build_overlay_lp(inst, plain).model.num_rows();
  const int with = build_overlay_lp(inst, colored).model.num_rows();
  // Two sinks x two colors with candidates.
  EXPECT_EQ(with - base, 4);
}

TEST(LpBuilder, ColorConstraintsLimitPerIspFlow) {
  const OverlayInstance inst = tiny();
  LpBuildOptions colored;
  colored.color_constraints = true;
  const OverlayLp lp = build_overlay_lp(inst, colored);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  const auto frac = lp.extract(inst, sol.x);
  // Per (sink, color) total x <= 1: here each color has one reflector, so
  // every x must itself be <= 1 (trivially true) — verify sums per sink.
  for (int j = 0; j < inst.num_sinks(); ++j) {
    double by_color[2] = {0.0, 0.0};
    for (int id : inst.sink_in(j)) {
      const auto& e = inst.rd_edges()[static_cast<std::size_t>(id)];
      by_color[inst.reflector(e.reflector).color] +=
          frac.x[static_cast<std::size_t>(id)];
    }
    EXPECT_LE(by_color[0], 1.0 + 1e-6);
    EXPECT_LE(by_color[1], 1.0 + 1e-6);
  }
}

TEST(LpBuilder, BandwidthExtensionScalesFanoutUsage) {
  OverlayInstance inst = tiny();
  inst.source(0).bandwidth = 2.0;
  inst.reflector(0).fanout = 4.0;
  inst.reflector(1).fanout = 4.0;
  LpBuildOptions bw;
  bw.bandwidth_extension = true;
  const OverlayLp lp = build_overlay_lp(inst, bw);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  const auto frac = lp.extract(inst, sol.x);
  // Constraint (3'): bandwidth-weighted usage <= F z per reflector.
  for (int i = 0; i < 2; ++i) {
    double usage = 0.0;
    for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
      if (inst.rd_edges()[id].reflector == i) usage += frac.x[id] * 2.0;
    }
    EXPECT_LE(usage, 4.0 * frac.z[static_cast<std::size_t>(i)] + 1e-6);
  }
}

TEST(LpBuilder, RdCapacitiesCapX) {
  OverlayInstance inst = tiny();
  // Cap the (r0, d1) edge; d1's demand stays satisfiable via r1.
  const int capped = inst.find_rd_edge(0, 1);
  ASSERT_GE(capped, 0);
  inst.rd_edge(capped).capacity = 0.25;
  LpBuildOptions caps;
  caps.rd_capacities = true;
  const OverlayLp lp = build_overlay_lp(inst, caps);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  EXPECT_LE(sol.x[static_cast<std::size_t>(
                lp.x_var[static_cast<std::size_t>(capped)])],
            0.25 + 1e-9);
  // Without the toggle the capacity is ignored.
  const OverlayLp plain = build_overlay_lp(inst);
  EXPECT_DOUBLE_EQ(
      plain.model
          .variable(plain.x_var[static_cast<std::size_t>(capped)])
          .upper,
      1.0);
}

TEST(LpBuilder, LpLowerBoundsSetCoverSize) {
  // Set cover {0,1},{1,2},{2,3}: optimum 2; the LP bound must be <= 2 and
  // >= 1 (it can be fractional but not below the trivial bound).
  const auto sc = omn::topo::make_set_cover({{0, 1}, {1, 2}, {2, 3}}, 4);
  const OverlayLp lp = build_overlay_lp(sc.network);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  EXPECT_LE(sol.objective, 2.0 + 1e-6);
  EXPECT_GE(sol.objective, 1.0);
}

}  // namespace
