// The content-addressed LP solve cache (core::LpCache) and its util
// hashing substrate:
//   - Hasher determinism (pinned known-answer digests) and sensitivity;
//   - canonical instance digests: LP-irrelevant differences (names,
//     delays) hash equal, LP-relevant ones do not;
//   - hit/miss correctness in memory and on disk, including the atomic
//     file protocol and cross-process sharing via one directory;
//   - corrupt / truncated / version-mismatched entries rejected;
//   - designs bit-identical with the cache on vs off, and an E8-style
//     repeated sweep performing ZERO LP solves on the warm run (the
//     acceptance bar for the cache).

#include "omn/core/lp_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "omn/core/design_sweep.hpp"
#include "omn/core/designer.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/execution_context.hpp"
#include "omn/util/hash.hpp"

namespace {

namespace fs = std::filesystem;
namespace lp = omn::lp;

using omn::core::DesignerConfig;
using omn::core::DesignResult;
using omn::core::DesignSweep;
using omn::core::LpBuildOptions;
using omn::core::LpCache;
using omn::core::OverlayDesigner;
using omn::core::SweepOptions;
using omn::core::SweepReport;
using omn::util::Digest128;
using omn::util::Hasher;

/// A unique empty directory under the test's temp dir.
std::string fresh_cache_dir(const std::string& tag) {
  const fs::path dir = fs::path(testing::TempDir()) / ("omn-lp-cache-" + tag);
  fs::remove_all(dir);
  return dir.string();
}

omn::net::OverlayInstance small_instance(std::uint64_t seed = 5) {
  return omn::topo::make_akamai_like(omn::topo::global_event_config(10, seed));
}

// ---- Hasher ---------------------------------------------------------------

TEST(Hasher, PinnedKnownAnswers) {
  // These digests pin the byte-level hashing scheme.  If this test fails,
  // the hash changed — which silently invalidates every on-disk cache —
  // so a failure must be a conscious format-version decision, never noise.
  EXPECT_EQ(Hasher().digest().hex(), "0579556b9993edc1f1faf3ff7b35123b");

  Hasher abc;
  abc.str("abc");
  EXPECT_EQ(abc.digest().hex(), "787721036b983a03db253951238e6405");

  Hasher typed;
  typed.u64(42);
  typed.f64(0.5);
  typed.boolean(true);
  typed.opt_f64(std::nullopt);
  EXPECT_EQ(typed.digest().hex(), "47835931829344f4e4e39ed30cb95237");
}

TEST(Hasher, NegativeZeroCanonicalized) {
  Hasher pos;
  pos.f64(0.0);
  Hasher neg;
  neg.f64(-0.0);
  EXPECT_EQ(pos.digest(), neg.digest());
}

TEST(Hasher, LengthPrefixedStringsResistConcatenationSlides) {
  Hasher a;
  a.str("ab");
  a.str("c");
  Hasher b;
  b.str("a");
  b.str("bc");
  EXPECT_FALSE(a.digest() == b.digest());
}

TEST(Hasher, SensitiveToEveryTypedField) {
  const auto base = [] {
    Hasher h;
    h.u64(7);
    h.f64(1.25);
    return h.digest();
  }();
  Hasher changed_int;
  changed_int.u64(8);
  changed_int.f64(1.25);
  EXPECT_FALSE(base == changed_int.digest());
  Hasher changed_double;
  changed_double.u64(7);
  changed_double.f64(1.26);
  EXPECT_FALSE(base == changed_double.digest());
}

// ---- canonical instance digest -------------------------------------------

TEST(InstanceDigest, IgnoresNamesAndDelays) {
  omn::net::OverlayInstance a = small_instance();
  omn::net::OverlayInstance b = small_instance();
  // Rename everything and perturb every propagation delay: neither enters
  // the LP, so the two instances are semantically identical to the solver.
  for (int k = 0; k < b.num_sources(); ++k) b.source(k).name = "s" + std::to_string(k);
  for (int i = 0; i < b.num_reflectors(); ++i) b.reflector(i).name = "r" + std::to_string(i);
  for (int j = 0; j < b.num_sinks(); ++j) b.sink(j).name = "d" + std::to_string(j);
  for (int e = 0; e < static_cast<int>(b.sr_edges().size()); ++e) {
    b.sr_edge(e).delay_ms += 17.0;
  }
  for (int e = 0; e < static_cast<int>(b.rd_edges().size()); ++e) {
    b.rd_edge(e).delay_ms += 29.0;
  }
  EXPECT_EQ(omn::core::lp_instance_digest(a), omn::core::lp_instance_digest(b));
}

TEST(InstanceDigest, SensitiveToLpRelevantContent) {
  const Digest128 base = omn::core::lp_instance_digest(small_instance());

  omn::net::OverlayInstance cost = small_instance();
  cost.rd_edge(0).cost += 0.25;
  EXPECT_FALSE(base == omn::core::lp_instance_digest(cost));

  omn::net::OverlayInstance loss = small_instance();
  loss.sr_edge(0).loss += 0.001;
  EXPECT_FALSE(base == omn::core::lp_instance_digest(loss));

  omn::net::OverlayInstance fanout = small_instance();
  fanout.reflector(0).fanout += 1.0;
  EXPECT_FALSE(base == omn::core::lp_instance_digest(fanout));

  omn::net::OverlayInstance threshold = small_instance();
  threshold.sink(0).threshold = 0.5;
  EXPECT_FALSE(base == omn::core::lp_instance_digest(threshold));

  omn::net::OverlayInstance capped = small_instance();
  capped.reflector(0).stream_capacity = 2.0;
  EXPECT_FALSE(base == omn::core::lp_instance_digest(capped));

  EXPECT_FALSE(base == omn::core::lp_instance_digest(small_instance(6)));
}

TEST(InstanceDigest, KeyCoversBuildAndSolveOptions) {
  const omn::net::OverlayInstance inst = small_instance();
  const Digest128 base = LpCache::key(inst, {}, {});

  LpBuildOptions no_cut;
  no_cut.cutting_plane = false;
  EXPECT_FALSE(base == LpCache::key(inst, no_cut, {}));

  lp::SolveOptions tighter;
  tighter.optimality_tol = 1e-10;
  EXPECT_FALSE(base == LpCache::key(inst, {}, tighter));
}

// ---- memory tier ----------------------------------------------------------

TEST(LpCacheMemory, MissThenHitReturnsBitIdenticalSolution) {
  const omn::net::OverlayInstance inst = small_instance();
  LpCache cache;

  const omn::core::CachedLp cold =
      omn::core::solve_overlay_lp_cached(inst, {}, {}, &cache);
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_EQ(cold.solution.status, lp::SolveStatus::kOptimal);

  const omn::core::CachedLp warm =
      omn::core::solve_overlay_lp_cached(inst, {}, {}, &cache);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.solution.status, cold.solution.status);
  EXPECT_EQ(warm.solution.objective, cold.solution.objective);
  EXPECT_EQ(warm.solution.iterations, cold.solution.iterations);
  EXPECT_EQ(warm.solution.x, cold.solution.x);  // exact, element-wise

  const omn::core::LpCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.memory_hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(LpCacheMemory, DistinctOptionsDoNotCollide) {
  const omn::net::OverlayInstance inst = small_instance();
  LpCache cache;
  LpBuildOptions no_cut;
  no_cut.cutting_plane = false;

  omn::core::solve_overlay_lp_cached(inst, {}, {}, &cache);
  const omn::core::CachedLp other =
      omn::core::solve_overlay_lp_cached(inst, no_cut, {}, &cache);
  EXPECT_FALSE(other.cache_hit);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(LpCacheMemory, ConcurrentFindInsertIsSafe) {
  // Hammer one cache from every pool thread; TSan (the util|core CI job)
  // is the real assertion here, the counts are a sanity check.
  const omn::net::OverlayInstance inst = small_instance();
  LpCache cache;
  const omn::util::ExecutionContext context;
  context.parallel_for(16, [&](std::size_t) {
    const omn::core::CachedLp solved =
        omn::core::solve_overlay_lp_cached(inst, {}, {}, &cache);
    EXPECT_EQ(solved.solution.status, lp::SolveStatus::kOptimal);
  });
  const omn::core::LpCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 16u);
  EXPECT_EQ(stats.insertions, stats.misses);
}

// ---- disk tier ------------------------------------------------------------

TEST(LpCacheDisk, SharedDirectoryServesAColdProcess) {
  const omn::net::OverlayInstance inst = small_instance();
  const std::string dir = fresh_cache_dir("shared");

  // "Process" A solves and persists ...
  LpCache a(dir);
  const omn::core::CachedLp cold =
      omn::core::solve_overlay_lp_cached(inst, {}, {}, &a);
  EXPECT_FALSE(cold.cache_hit);

  // ... "process" B (a fresh cache over the same directory, i.e. an empty
  // memory tier) hits on disk and gets the identical point.
  LpCache b(dir);
  const omn::core::CachedLp warm =
      omn::core::solve_overlay_lp_cached(inst, {}, {}, &b);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.solution.x, cold.solution.x);
  EXPECT_EQ(b.stats().disk_hits, 1u);

  // A disk hit is promoted to memory: the next find never touches disk.
  const omn::core::CachedLp warm2 =
      omn::core::solve_overlay_lp_cached(inst, {}, {}, &b);
  EXPECT_TRUE(warm2.cache_hit);
  EXPECT_EQ(b.stats().memory_hits, 1u);
}

TEST(LpCacheDisk, NoStrayTempFilesAfterInsert) {
  const std::string dir = fresh_cache_dir("tmpfiles");
  LpCache cache(dir);
  omn::core::solve_overlay_lp_cached(small_instance(), {}, {}, &cache);
  std::size_t entries = 0;
  for (const auto& file : fs::directory_iterator(dir)) {
    EXPECT_EQ(file.path().extension(), ".lpsol") << file.path();
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(LpCacheDisk, CorruptEntriesAreRejectedNotTrusted) {
  const omn::net::OverlayInstance inst = small_instance();
  const std::string dir = fresh_cache_dir("corrupt");
  const Digest128 key = LpCache::key(inst, {}, {});

  {
    LpCache writer(dir);
    omn::core::solve_overlay_lp_cached(inst, {}, {}, &writer);
  }
  const fs::path entry = fs::path(dir) / (key.hex() + ".lpsol");
  ASSERT_TRUE(fs::exists(entry));

  // Truncate the entry: a fresh cache must reject it and re-solve.
  const auto original_size = fs::file_size(entry);
  fs::resize_file(entry, original_size / 2);
  {
    LpCache reader(dir);
    const omn::core::CachedLp solved =
        omn::core::solve_overlay_lp_cached(inst, {}, {}, &reader);
    EXPECT_FALSE(solved.cache_hit);
    EXPECT_EQ(reader.stats().rejected, 1u);
    // The re-solve re-inserted a good entry over the corrupt one.
    EXPECT_EQ(fs::file_size(entry), original_size);
  }

  // Flip one payload byte (an x value): checksum must catch it.
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(original_size) - 24);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  {
    LpCache reader(dir);
    const omn::core::CachedLp solved =
        omn::core::solve_overlay_lp_cached(inst, {}, {}, &reader);
    EXPECT_FALSE(solved.cache_hit);
    EXPECT_EQ(reader.stats().rejected, 1u);
  }
}

TEST(LpCacheDisk, WrongKeyFileIsRejected) {
  // An entry copied under the wrong name (or a digest scheme change) must
  // not be served: the stored key is validated against the requested one.
  const omn::net::OverlayInstance inst = small_instance();
  const std::string dir = fresh_cache_dir("wrongkey");
  const Digest128 key = LpCache::key(inst, {}, {});
  LpBuildOptions no_cut;
  no_cut.cutting_plane = false;
  const Digest128 other_key = LpCache::key(inst, no_cut, {});

  LpCache writer(dir);
  omn::core::solve_overlay_lp_cached(inst, {}, {}, &writer);
  fs::copy_file(fs::path(dir) / (key.hex() + ".lpsol"),
                fs::path(dir) / (other_key.hex() + ".lpsol"));

  LpCache reader(dir);
  EXPECT_FALSE(reader.find(other_key).has_value());
  EXPECT_EQ(reader.stats().rejected, 1u);
}

// ---- cache through the designer and the sweep -----------------------------

void expect_designs_bit_identical(const DesignResult& a, const DesignResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.design.z, b.design.z);
  EXPECT_EQ(a.design.y, b.design.y);
  EXPECT_EQ(a.design.x, b.design.x);
  EXPECT_EQ(a.evaluation.total_cost, b.evaluation.total_cost);
  EXPECT_EQ(a.evaluation.min_weight_ratio, b.evaluation.min_weight_ratio);
  EXPECT_EQ(a.lp_objective, b.lp_objective);
  EXPECT_EQ(a.winning_attempt, b.winning_attempt);
}

TEST(LpCacheDesigner, DesignsBitIdenticalCacheOnVsOff) {
  const omn::net::OverlayInstance inst = small_instance();
  DesignerConfig cfg;
  cfg.seed = 11;
  cfg.rounding_attempts = 2;

  omn::util::ExecutionContext plain(2);
  const DesignResult uncached = OverlayDesigner(cfg).design(inst, plain);
  EXPECT_FALSE(uncached.lp_cache_hit);

  omn::util::ExecutionContext cached_ctx(2);
  cached_ctx.set_service(std::make_shared<LpCache>());
  const DesignResult cold = OverlayDesigner(cfg).design(inst, cached_ctx);
  EXPECT_FALSE(cold.lp_cache_hit);
  const DesignResult warm = OverlayDesigner(cfg).design(inst, cached_ctx);
  EXPECT_TRUE(warm.lp_cache_hit);

  expect_designs_bit_identical(uncached, cold);
  expect_designs_bit_identical(uncached, warm);
}

TEST(LpCacheSweep, RepeatedSweepPerformsZeroSolvesOnWarmRun) {
  // The acceptance bar: an E8-style grid (one instance, rounding-only
  // config axis) run twice against one cache does ZERO LP solves the
  // second time, and the reports are bit-identical.
  DesignSweep sweep;
  sweep.add_instance("event", small_instance());
  for (double c : {0.5, 2.0, 8.0}) {
    for (int seed = 1; seed <= 2; ++seed) {
      DesignerConfig cfg;
      cfg.c = c;
      cfg.seed = static_cast<std::uint64_t>(seed);
      cfg.rounding_attempts = 1;
      sweep.add_config("c" + std::to_string(c) + "-s" + std::to_string(seed),
                       cfg);
    }
  }

  omn::util::ExecutionContext context(2);
  context.set_service(std::make_shared<LpCache>());

  const SweepReport cold = sweep.run({}, context);
  EXPECT_EQ(cold.lp_configs, 1u);
  EXPECT_EQ(cold.lp_solves, 1u);
  EXPECT_EQ(cold.lp_cache_hits, 0u);
  EXPECT_EQ(cold.lp_cache_misses, 1u);

  const SweepReport warm = sweep.run({}, context);
  EXPECT_EQ(warm.lp_solves, 0u);
  EXPECT_EQ(warm.lp_cache_hits, 1u);
  EXPECT_EQ(warm.lp_cache_misses, 0u);

  // And against a no-cache baseline, everything but wall clock matches.
  const SweepReport baseline = sweep.run({}, omn::util::ExecutionContext(2));
  ASSERT_EQ(baseline.cells.size(), warm.cells.size());
  for (std::size_t k = 0; k < baseline.cells.size(); ++k) {
    SCOPED_TRACE("cell " + std::to_string(k));
    expect_designs_bit_identical(baseline.cells[k].result,
                                 warm.cells[k].result);
  }
}

TEST(LpCacheSweep, CacheAppliesToUngroupedSweepsToo) {
  DesignSweep sweep;
  sweep.add_instance("event", small_instance());
  DesignerConfig cfg;
  cfg.rounding_attempts = 1;
  sweep.add_config("a", cfg);
  cfg.seed = 2;
  sweep.add_config("b", cfg);

  SweepOptions options;
  options.reuse_lp = false;

  omn::util::ExecutionContext context(1);
  context.set_service(std::make_shared<LpCache>());
  const SweepReport cold = sweep.run(options, context);
  // Ungrouped cells solve independently, so the second cell already hits
  // the first cell's insertion.
  EXPECT_EQ(cold.lp_solves, 1u);
  EXPECT_EQ(cold.lp_cache_hits, 1u);

  const SweepReport warm = sweep.run(options, context);
  EXPECT_EQ(warm.lp_solves, 0u);
  EXPECT_EQ(warm.lp_cache_hits, 2u);
}

TEST(LpCacheSweep, DiskCachePersistsAcrossSweepObjects) {
  const std::string dir = fresh_cache_dir("sweep");
  const auto run_once = [&] {
    DesignSweep sweep;
    sweep.add_instance("event", small_instance());
    DesignerConfig cfg;
    cfg.rounding_attempts = 1;
    sweep.add_config("only", cfg);
    omn::util::ExecutionContext context(1);
    context.set_service(std::make_shared<LpCache>(dir));  // cold memory tier
    return sweep.run({}, context);
  };
  const SweepReport first = run_once();
  EXPECT_EQ(first.lp_solves, 1u);
  const SweepReport second = run_once();
  EXPECT_EQ(second.lp_solves, 0u);
  EXPECT_EQ(second.lp_cache_hits, 1u);
  EXPECT_EQ(second.cell(0, 0).result.design.x, first.cell(0, 0).result.design.x);
}

// ---- shape index / basis warm starts --------------------------------------

TEST(LpShapeDigest, InvariantToCostsButNotStructure) {
  omn::net::OverlayInstance a = small_instance();
  omn::net::OverlayInstance b = small_instance();
  const Digest128 base = omn::core::lp_shape_digest(a, {});
  EXPECT_TRUE(base == omn::core::lp_shape_digest(b, {}));

  // Float perturbations keep the shape (that's the warm-start premise)...
  b.reflector(0).build_cost *= 1.5;
  b.sink(0).threshold *= 0.99;
  EXPECT_TRUE(base == omn::core::lp_shape_digest(b, {}));
  // ...while the byte-cache key, which covers the values, moves.
  EXPECT_FALSE(LpCache::key(a, {}, {}) == LpCache::key(b, {}, {}));

  // Structural changes move the shape: a different topology draw and a
  // different set of LP constraints.
  EXPECT_FALSE(base == omn::core::lp_shape_digest(small_instance(6), {}));
  LpBuildOptions no_cut;
  no_cut.cutting_plane = false;
  EXPECT_FALSE(base == omn::core::lp_shape_digest(a, no_cut));
}

TEST(LpCacheShapeIndex, NoteAndFindBasisRoundTripsAndCountsWarmHits) {
  LpCache cache;
  const Digest128 shape{1, 2};
  EXPECT_FALSE(cache.find_basis(shape).has_value());
  EXPECT_EQ(cache.stats().warm_hits, 0u);

  lp::Basis basis;
  basis.state = {lp::VarStatus::kBasic, lp::VarStatus::kAtLower};
  basis.basic = {0};
  cache.note_basis(shape, basis);

  const std::optional<lp::Basis> found = cache.find_basis(shape);
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(*found == basis);
  EXPECT_EQ(cache.stats().warm_hits, 1u);
  EXPECT_FALSE(cache.find_basis(Digest128{3, 4}).has_value());
}

TEST(LpCacheWarmStart, PerturbedInstanceWarmStartsFromShapeIndex) {
  LpCache cache;
  const omn::net::OverlayInstance first = small_instance();
  const omn::core::CachedLp cold =
      omn::core::solve_overlay_lp_cached(first, {}, {}, &cache,
                                         /*warm_start=*/true);
  ASSERT_EQ(cold.solution.status, lp::SolveStatus::kOptimal);
  EXPECT_FALSE(cold.solution.warm_started);  // nothing to warm-start from yet

  // Same shape, different costs: a different byte-cache key (so a real
  // solve happens), served from the first solve's basis.
  omn::net::OverlayInstance perturbed = small_instance();
  for (int i = 0; i < perturbed.num_reflectors(); ++i) {
    perturbed.reflector(i).build_cost *= 1.0 + 0.01 * (i + 1);
  }
  const omn::core::CachedLp warm =
      omn::core::solve_overlay_lp_cached(perturbed, {}, {}, &cache,
                                         /*warm_start=*/true);
  ASSERT_EQ(warm.solution.status, lp::SolveStatus::kOptimal);
  EXPECT_FALSE(warm.cache_hit);
  EXPECT_TRUE(warm.solution.warm_started);
  EXPECT_EQ(warm.solution.phase1_iterations, 0);
  EXPECT_LT(warm.solution.iterations, cold.solution.iterations);
  EXPECT_GE(cache.stats().warm_hits, 1u);

  // The warm answer must match a cold solve of the same instance.
  const omn::core::CachedLp verify =
      omn::core::solve_overlay_lp_cached(perturbed, {}, {}, nullptr);
  const double scale = 1.0 + std::abs(verify.solution.objective);
  EXPECT_NEAR(warm.solution.objective, verify.solution.objective, 1e-7 * scale);
}

TEST(LpCacheWarmStart, OffByDefaultEvenWithBasesIndexed) {
  LpCache cache;
  const omn::net::OverlayInstance first = small_instance();
  (void)omn::core::solve_overlay_lp_cached(first, {}, {}, &cache);

  omn::net::OverlayInstance perturbed = small_instance();
  perturbed.reflector(0).build_cost *= 2.0;
  const omn::core::CachedLp cold =
      omn::core::solve_overlay_lp_cached(perturbed, {}, {}, &cache);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_FALSE(cold.solution.warm_started);  // bit-identity default holds
}

TEST(LpCacheSweep, WarmStartConfigReportsWarmHitsAndIterationCounters) {
  DesignSweep sweep;
  omn::net::OverlayInstance perturbed = small_instance();
  for (int i = 0; i < perturbed.num_reflectors(); ++i) {
    perturbed.reflector(i).build_cost *= 1.0 + 0.02 * (i + 1);
  }
  sweep.add_instance("base", small_instance());
  sweep.add_instance("perturbed", std::move(perturbed));
  DesignerConfig cfg;
  cfg.rounding_attempts = 1;
  cfg.lp_warm_start = true;
  sweep.add_config("warm", cfg);

  // Serial context: instance 0 solves cold and notes its basis, instance 1
  // (same shape) warm-starts from it.
  omn::util::ExecutionContext context(1);
  context.set_service(std::make_shared<LpCache>());
  const SweepReport report = sweep.run({.threads = 1}, context);
  EXPECT_EQ(report.lp_solves, 2u);
  EXPECT_EQ(report.lp_warm_start_hits, 1u);
  EXPECT_GT(report.lp_iterations, 0u);
  EXPECT_GT(report.lp_phase1_iterations, 0u);
  EXPECT_TRUE(report.cell(1, 0).result.lp_warm_start);
  EXPECT_FALSE(report.cell(0, 0).result.lp_warm_start);
}

}  // namespace
