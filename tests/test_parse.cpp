// Rejection tables for the strict numeric parsers (util/parse.hpp).
// These parsers exist so corrupt flags and file tokens fail loudly
// instead of truncating (std::stod("0.5x") == 0.5); every table here
// pins one spelling the lax std:: parsers would have let through.
#include "omn/util/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string>

namespace {

using omn::util::parse_count;
using omn::util::parse_double;

TEST(ParseCount, AcceptsCanonicalDigits) {
  EXPECT_EQ(parse_count("0"), 0u);
  EXPECT_EQ(parse_count("7"), 7u);
  EXPECT_EQ(parse_count("42"), 42u);
  EXPECT_EQ(parse_count("007"), 7u);  // leading zeros are still all-digits
  EXPECT_EQ(parse_count("18446744073709551615"),
            std::numeric_limits<std::size_t>::max());
}

TEST(ParseCount, RejectsEverythingElse) {
  const char* rejected[] = {
      "",      // empty
      "-1",    // strtoul would silently negate this
      "+1",    // no signs
      " 1",    // no leading whitespace
      "1 ",    // no trailing bytes
      "1x",    // std::stoul would return 1
      "0x10",  // no hex
      "1e3",   // no exponents for counts
      "1.0",   // not an integer
      "18446744073709551616",    // SIZE_MAX + 1: overflow rejected, not wrapped
      "99999999999999999999999"  // far past overflow
  };
  for (const char* text : rejected) {
    EXPECT_FALSE(parse_count(text).has_value()) << "accepted: '" << text << "'";
  }
}

TEST(ParseDouble, AcceptsFiniteDecimalSpellings) {
  EXPECT_EQ(parse_double("0"), 0.0);
  EXPECT_EQ(parse_double("-0"), 0.0);
  EXPECT_EQ(parse_double("0.5"), 0.5);
  EXPECT_EQ(parse_double("-0.5"), -0.5);
  EXPECT_EQ(parse_double(".5"), 0.5);
  EXPECT_EQ(parse_double("1e3"), 1000.0);
  EXPECT_EQ(parse_double("2.5e-3"), 0.0025);
  EXPECT_EQ(parse_double("0.125"), 0.125);  // exact in binary
  EXPECT_EQ(parse_double("1."), 1.0);  // empty fraction is valid C17 grammar
}

TEST(ParseDouble, RejectsTruncatableAndNonFinite) {
  const char* rejected[] = {
      "",     "-",     ".",        "-.",
      "+1",   " 1",    "1 ",      // signs/whitespace
      "0.5x",                     // the std::stod truncation bug class
      "1e",                       // dangling exponent
      "inf",  "-inf",  "infinity", "nan", "nan(0)",  // non-finite
      "0x1p3",                    // hex floats
      "1,5"                       // locale decimal comma
  };
  for (const char* text : rejected) {
    EXPECT_FALSE(parse_double(text).has_value())
        << "accepted: '" << text << "'";
  }
}

TEST(ParseDouble, RejectsOverflowToInfinity) {
  // from_chars reports result_out_of_range for 1e309; the helper must
  // surface that as a rejection, not return an infinity.
  EXPECT_FALSE(parse_double("1e309").has_value());
  EXPECT_FALSE(parse_double("-1e309").has_value());
}

TEST(ParseDouble, RoundTripsSerializerPrecision) {
  // serialize.cpp writes doubles at max_digits10; the strict parser must
  // read that spelling back to the identical bits.
  const double values[] = {0.1, 1.0 / 3.0, 12345.6789, 9.99e-7};
  for (const double v : values) {
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
    const std::optional<double> back = parse_double(os.str());
    ASSERT_TRUE(back.has_value()) << os.str();
    EXPECT_EQ(*back, v) << os.str();
  }
}

}  // namespace
