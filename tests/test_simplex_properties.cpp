// Property tests for the simplex: random LPs with a *certified* optimum.
//
// Construction (KKT): pick a random point x* in the box [0,1]^n, generate
// random rows a_i.  A subset T of rows is made tight at x* (b_i = a_i.x*);
// the rest get positive slack.  The objective is then assembled as
//   c = -sum_{i in T} lambda_i a_i  - mu_plus + mu_minus
// with lambda_i >= 0, mu_plus supported on coordinates at the upper bound,
// mu_minus on coordinates at the lower bound.  By weak duality x* is an
// optimal solution, so the solver must return objective c.x* (it may find
// a different optimal vertex).
#include "omn/lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "omn/lp/model.hpp"
#include "omn/util/rng.hpp"

namespace {

using omn::lp::Model;
using omn::lp::RowSense;
using omn::lp::SimplexSolver;
using omn::lp::SolveStatus;
using omn::util::Rng;

struct CertifiedLp {
  Model model;
  std::vector<double> x_star;
  double optimum = 0.0;
};

CertifiedLp make_certified_lp(int n, int m, std::uint64_t seed) {
  Rng rng(seed);
  CertifiedLp out;
  Model& model = out.model;

  out.x_star.resize(n);
  for (int j = 0; j < n; ++j) {
    // Mix of interior, lower-bound, and upper-bound coordinates.
    const double roll = rng.uniform();
    if (roll < 0.25) {
      out.x_star[j] = 0.0;
    } else if (roll < 0.5) {
      out.x_star[j] = 1.0;
    } else {
      out.x_star[j] = rng.uniform();
    }
  }

  std::vector<std::vector<double>> rows(m, std::vector<double>(n));
  std::vector<bool> tight(m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) rows[i][j] = rng.uniform(-2.0, 2.0);
    tight[i] = rng.bernoulli(0.5);
  }
  // Build objective from tight-row normals and bound multipliers.
  std::vector<double> c(n, 0.0);
  for (int i = 0; i < m; ++i) {
    if (!tight[i]) continue;
    const double lambda = rng.uniform(0.0, 2.0);
    for (int j = 0; j < n; ++j) c[j] -= lambda * rows[i][j];
  }
  for (int j = 0; j < n; ++j) {
    if (out.x_star[j] >= 1.0) {
      c[j] -= rng.uniform(0.0, 1.0);  // pushes toward upper: mu_plus
    } else if (out.x_star[j] <= 0.0) {
      c[j] += rng.uniform(0.0, 1.0);  // pushes toward lower: mu_minus
    }
  }

  for (int j = 0; j < n; ++j) model.add_variable(0.0, 1.0, c[j]);
  out.optimum = 0.0;
  for (int j = 0; j < n; ++j) out.optimum += c[j] * out.x_star[j];

  for (int i = 0; i < m; ++i) {
    double activity = 0.0;
    for (int j = 0; j < n; ++j) activity += rows[i][j] * out.x_star[j];
    const double slack = tight[i] ? 0.0 : rng.uniform(0.1, 1.0);
    const int r = model.add_row(RowSense::kLessEqual, activity + slack);
    for (int j = 0; j < n; ++j) model.add_coefficient(r, j, rows[i][j]);
  }
  return out;
}

class CertifiedLpTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(CertifiedLpTest, SolverFindsCertifiedOptimum) {
  const auto [n, m, seed] = GetParam();
  CertifiedLp lp = make_certified_lp(n, m, seed);
  const auto sol = SimplexSolver().solve(lp.model);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal) << "n=" << n << " m=" << m;
  EXPECT_LE(sol.max_violation, 1e-6);
  const double scale = 1.0 + std::abs(lp.optimum);
  EXPECT_NEAR(sol.objective, lp.optimum, 1e-6 * scale)
      << "n=" << n << " m=" << m << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, CertifiedLpTest,
    ::testing::Combine(::testing::Values(2, 5, 12, 25),
                       ::testing::Values(1, 4, 10, 30),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

// Feasibility-only property: random LPs that are feasible by construction
// (b_i = a_i . x0 + slack for a random x0): the solver must return either a
// feasible optimal point or kUnbounded, never kInfeasible.
class FeasibleLpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeasibleLpTest, NeverClaimsInfeasible) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.uniform_index(10));
  const int m = 1 + static_cast<int>(rng.uniform_index(12));
  Model model;
  std::vector<double> x0(n);
  for (int j = 0; j < n; ++j) {
    x0[j] = rng.uniform();
    model.add_variable(0.0, 1.0, rng.uniform(-1.0, 1.0));
  }
  for (int i = 0; i < m; ++i) {
    std::vector<double> row(n);
    double activity = 0.0;
    for (int j = 0; j < n; ++j) {
      row[j] = rng.uniform(-2.0, 2.0);
      activity += row[j] * x0[j];
    }
    // Mix of <= and >= rows, all satisfied at x0.
    const bool le = rng.bernoulli(0.5);
    const int r = model.add_row(le ? RowSense::kLessEqual : RowSense::kGreaterEqual,
                                le ? activity + rng.uniform(0.0, 0.5)
                                   : activity - rng.uniform(0.0, 0.5));
    for (int j = 0; j < n; ++j) model.add_coefficient(r, j, row[j]);
  }
  const auto sol = SimplexSolver().solve(model);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);  // box-bounded: never unbounded
  EXPECT_LE(sol.max_violation, 1e-6);
  // Optimality sanity: no random feasible point beats the reported optimum.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x(n);
    for (int j = 0; j < n; ++j) x[j] = rng.uniform();
    if (model.max_infeasibility(x) > 1e-9) continue;
    EXPECT_GE(model.objective_value(x), sol.objective - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeasibleLpTest,
                         ::testing::Range<std::uint64_t>(100, 140));

}  // namespace
