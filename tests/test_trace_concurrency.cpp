// Concurrency test for util/trace.hpp, built to run under TSan (the CI
// tsan job includes the "util" label): many threads record spans,
// instants, samples, and counter bumps flat out while the main thread
// drains concurrently.  Correctness checks afterwards:
//
//   - no event is lost or duplicated across the interleaved drains
//     (every thread's full span count arrives exactly once),
//   - per-thread tick order survives drain concatenation,
//   - every counter lands on its exact deterministic total.
#include "omn/util/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

using omn::util::ThreadTrace;
using omn::util::Trace;
using omn::util::TraceEvent;

constexpr std::size_t kThreads = 8;
constexpr std::size_t kSpansPerThread = 500;

TEST(TraceConcurrency, ConcurrentRecordingAndDrainingLosesNothing) {
  Trace::drain();  // discard anything earlier suites left behind
  omn::util::counters_reset_for_tests();
  Trace::set_enabled(true);

  std::atomic<std::size_t> running{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &running, &go] {
      running.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      const std::string span_name = "worker." + std::to_string(t);
      for (std::size_t n = 0; n < kSpansPerThread; ++n) {
        OMN_TRACE_SPAN(span_name.c_str());
        OMN_TRACE_INSTANT(span_name + ".tick");
        OMN_TRACE_SAMPLE(span_name + ".n", n);
        OMN_COUNTER_ADD("trace_test.ops", 1);
      }
    });
  }
  while (running.load() < kThreads) std::this_thread::yield();
  go.store(true);

  // Drain concurrently with the recorders; each drain must hand out only
  // committed events, each exactly once.  Per (tid, name) the begin/end
  // counts and tick order are accumulated across drains.
  struct PerThread {
    std::map<std::string, std::size_t> begins;
    std::map<std::string, std::size_t> ends;
    std::size_t instants = 0;
    std::size_t samples = 0;
    std::uint64_t last_tick = 0;
    bool any = false;
  };
  std::map<std::uint32_t, PerThread> tally;
  const auto absorb = [&tally](std::vector<ThreadTrace> drained) {
    for (const ThreadTrace& thread : drained) {
      PerThread& per = tally[thread.tid];
      for (const TraceEvent& event : thread.events) {
        if (per.any) {
          EXPECT_GT(event.tick, per.last_tick)
              << "tick order broken on tid " << thread.tid;
        }
        per.any = true;
        per.last_tick = event.tick;
        switch (event.kind) {
          case TraceEvent::Kind::kBegin:
            ++per.begins[event.name];
            break;
          case TraceEvent::Kind::kEnd:
            ++per.ends[event.name];
            break;
          case TraceEvent::Kind::kInstant:
            ++per.instants;
            break;
          case TraceEvent::Kind::kCounter:
            ++per.samples;
            break;
        }
      }
    }
  };
  for (int round = 0; round < 50; ++round) absorb(Trace::drain());
  for (std::thread& thread : threads) thread.join();
  absorb(Trace::drain());
  Trace::set_enabled(false);

  // Every recorder thread's events arrived whole: kSpansPerThread
  // begin/end pairs of its own span name, same count of instants and
  // samples.  (The main thread recorded nothing, so exactly kThreads
  // tallies carry worker spans.)
  std::size_t worker_tallies = 0;
  for (const auto& [tid, per] : tally) {
    if (per.begins.empty()) continue;
    ++worker_tallies;
    ASSERT_EQ(per.begins.size(), 1u) << "tid " << tid;
    const std::string& name = per.begins.begin()->first;
    EXPECT_EQ(per.begins.at(name), kSpansPerThread);
    EXPECT_EQ(per.ends.at(name), kSpansPerThread);
    EXPECT_EQ(per.instants, kSpansPerThread);
    EXPECT_EQ(per.samples, kSpansPerThread);
  }
  EXPECT_EQ(worker_tallies, kThreads);
  EXPECT_EQ(omn::util::counter_value("trace_test.ops"),
            kThreads * kSpansPerThread);
}

TEST(TraceConcurrency, CountersAreExactUnderContention) {
  omn::util::counters_reset_for_tests();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::size_t n = 0; n < 10000; ++n) {
        OMN_COUNTER_ADD("trace_test.contended", 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(omn::util::counter_value("trace_test.contended"),
            kThreads * 10000u);
}

}  // namespace
