// Tests for the baseline algorithms (greedy, random, direct rounding).
#include "omn/baseline/direct_rounding.hpp"
#include "omn/baseline/greedy.hpp"
#include "omn/baseline/random_heuristic.hpp"

#include <gtest/gtest.h>

#include "omn/core/evaluator.hpp"
#include "omn/core/lp_builder.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/topo/synthetic.hpp"

namespace {

using omn::baseline::greedy_design;
using omn::baseline::random_design;

TEST(Greedy, CoversEverySinkOnGeneratedTopology) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(30, 1));
  const auto r = greedy_design(inst);
  EXPECT_TRUE(r.covered_all);
  const auto ev = omn::core::evaluate(inst, r.design);
  EXPECT_TRUE(ev.consistent);
  EXPECT_EQ(ev.sinks_unserved, 0);
  EXPECT_GE(ev.min_weight_ratio, 1.0 - 1e-9);  // greedy covers fully
}

TEST(Greedy, RespectsFanout) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(40, 2));
  const auto r = greedy_design(inst);
  const auto ev = omn::core::evaluate(inst, r.design);
  EXPECT_LE(ev.max_fanout_utilization, 1.0 + 1e-9);
}

TEST(Greedy, SolvesSetCoverNearOptimally) {
  // Sets {0,1},{1,2},{2,3}: optimum 2, greedy (ln n)-approx must be <= 3.
  const auto sc = omn::topo::make_set_cover({{0, 1}, {1, 2}, {2, 3}}, 4);
  const auto r = greedy_design(sc.network);
  EXPECT_TRUE(r.covered_all);
  const auto ev = omn::core::evaluate(sc.network, r.design);
  EXPECT_LE(ev.total_cost, 3.0 + 1e-9);
  EXPECT_GE(ev.total_cost, 2.0 - 1e-9);
}

TEST(Greedy, PicksTheCheapSetWhenEquivalent) {
  // Two identical sets, one cheaper via reflector cost.
  auto sc = omn::topo::make_set_cover({{0, 1}, {0, 1}}, 2);
  sc.network.reflector(0).build_cost = 5.0;
  sc.network.reflector(1).build_cost = 1.0;
  const auto r = greedy_design(sc.network);
  EXPECT_TRUE(r.covered_all);
  EXPECT_EQ(r.design.z[0], 0);
  EXPECT_EQ(r.design.z[1], 1);
}

TEST(Greedy, StopsWhenDemandUnmeetable) {
  omn::net::OverlayInstance inst;
  inst.add_source(omn::net::Source{"s", 1.0});
  inst.add_reflector(omn::net::Reflector{"r", 1.0, 1.0, 0});
  inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, 0, 1.0, 0.4});
  inst.add_sink(omn::net::Sink{"d", 0, 0.99999});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{0, 0, 1.0, 0.4, {}});
  const auto r = greedy_design(inst);
  EXPECT_FALSE(r.covered_all);
  EXPECT_EQ(r.moves, 1);  // it still does its best
}

TEST(RandomHeuristic, CoversAndIsConsistent) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(30, 3));
  const auto r = random_design(inst, 7);
  EXPECT_TRUE(r.covered_all);
  const auto ev = omn::core::evaluate(inst, r.design);
  EXPECT_TRUE(ev.consistent);
  EXPECT_LE(ev.max_fanout_utilization, 1.0 + 1e-9);
}

TEST(RandomHeuristic, DeterministicPerSeed) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(20, 5));
  const auto a = random_design(inst, 11);
  const auto b = random_design(inst, 11);
  EXPECT_EQ(a.design.x, b.design.x);
}

TEST(RandomHeuristic, GreedyIsCheaper) {
  // On average greedy must beat random selection on cost; allow one seed to
  // be compared directly since both cover fully.
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(40, 7));
  const auto g = greedy_design(inst);
  const auto r = random_design(inst, 13);
  ASSERT_TRUE(g.covered_all);
  ASSERT_TRUE(r.covered_all);
  EXPECT_LT(omn::core::evaluate(inst, g.design).total_cost,
            omn::core::evaluate(inst, r.design).total_cost);
}

TEST(DirectRounding, StructurallyConsistent) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(24, 9));
  const auto lp = omn::core::build_overlay_lp(inst);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  const auto frac = lp.extract(inst, sol.x);
  const auto d =
      omn::baseline::direct_rounding_design(inst, lp, frac, 8.0, 3);
  const auto ev = omn::core::evaluate(inst, d);
  EXPECT_TRUE(ev.consistent);
}

TEST(DirectRounding, SelectsSupersetTendency) {
  // With multiplier c log n every positive x̂ rounds up with probability
  // min(c log n x̂, 1); most weight-carrying edges should be selected.
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(30, 11));
  const auto lp = omn::core::build_overlay_lp(inst);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  const auto frac = lp.extract(inst, sol.x);
  const auto d =
      omn::baseline::direct_rounding_design(inst, lp, frac, 8.0, 5);
  const auto ev = omn::core::evaluate(inst, d);
  // Direct rounding overshoots: its cost should exceed the LP bound by a
  // large factor (that is the point of the ablation).
  EXPECT_GT(ev.total_cost, sol.objective);
}

}  // namespace
