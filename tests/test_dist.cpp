// Tests for omn::dist — the multi-process sharded sweep engine.
//
//   - ShardPlan: deterministic, covering, near-equal partitions.
//   - Frame protocol: round trips plus one test per rejection status, and
//     the golden file tests/data/dist_frame_v3.bin pinning the current
//     bytes (truncation / checksum-mismatch / version-mismatch rejection);
//     dist_frame_v1.bin and dist_frame_v2.bin stay as version-skew
//     rejection fixtures.  `test_dist write-golden <path>` regenerates
//     the current-version golden on a deliberate format bump.
//   - Wire codecs: grid and result payloads round-trip bit-exactly.
//   - Worker loop: protocol errors exit nonzero, a well-formed session
//     produces a valid result frame (driven in-process through streams).
//   - Checkpoints: full validation, corrupt entries rejected.
//   - End to end (self-spawned worker processes; this binary's main()
//     routes `test_dist worker` into omn::dist::worker_main):
//     run_distributed == run() bit for bit, including after a
//     SIGKILLed worker's shard is reassigned and after a resume from
//     checkpoints that recomputes zero shards.
#include "omn/dist/dist_sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>  // getpid for unique scratch directories

#include "omn/core/design_sweep.hpp"
#include "omn/dist/checkpoint.hpp"
#include "omn/dist/frame.hpp"
#include "omn/dist/process_pool.hpp"
#include "omn/dist/shard_plan.hpp"
#include "omn/dist/wire.hpp"
#include "omn/dist/worker.hpp"
#include "omn/net/serialize.hpp"
#include "omn/obs/trace_codec.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/subprocess.hpp"
#include "omn/util/trace.hpp"

namespace {

namespace fs = std::filesystem;

using omn::core::DesignerConfig;
using omn::core::DesignSweep;
using omn::core::SweepCell;
using omn::core::SweepOptions;
using omn::core::SweepReport;
using omn::dist::DistOptions;
using omn::dist::DistStats;
using omn::dist::Frame;
using omn::dist::FrameStatus;
using omn::dist::FrameType;
using omn::dist::ShardPlan;
using omn::dist::ShardRange;
using omn::dist::WireGrid;
using omn::dist::WireResult;
using omn::dist::WireShard;

std::string data_path(const std::string& file) {
  const char* dir = std::getenv("OMN_TEST_DATA_DIR");
  return (dir != nullptr ? std::string(dir) : std::string("tests/data")) +
         "/" + file;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A scratch directory removed at scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("omn-dist-" + tag + "-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ignored;
    fs::remove_all(path, ignored);
  }
  std::string str() const { return path.string(); }
};

// ---- bit-exact comparison helpers ----------------------------------------

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_f64_vec_bits(const std::vector<double>& a,
                         const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t n = 0; n < a.size(); ++n) EXPECT_EQ(bits(a[n]), bits(b[n]));
}

/// Every result-bearing field bit for bit; `include_timing` additionally
/// compares the timing/cache fields (true only when both sides are the
/// SAME computation, e.g. a codec round trip).
void expect_cells_bit_identical(const std::vector<SweepCell>& a,
                                const std::vector<SweepCell>& b,
                                bool include_timing = false) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    SCOPED_TRACE("cell " + std::to_string(k));
    const SweepCell& x = a[k];
    const SweepCell& y = b[k];
    EXPECT_EQ(x.instance_index, y.instance_index);
    EXPECT_EQ(x.config_index, y.config_index);
    EXPECT_EQ(x.instance_label, y.instance_label);
    EXPECT_EQ(x.config_label, y.config_label);
    EXPECT_EQ(x.result.status, y.result.status);
    EXPECT_EQ(x.result.design.z, y.result.design.z);
    EXPECT_EQ(x.result.design.y, y.result.design.y);
    EXPECT_EQ(x.result.design.x, y.result.design.x);
    expect_f64_vec_bits(x.result.lp_design.z, y.result.lp_design.z);
    expect_f64_vec_bits(x.result.lp_design.y, y.result.lp_design.y);
    expect_f64_vec_bits(x.result.lp_design.x, y.result.lp_design.x);
    EXPECT_EQ(bits(x.result.lp_objective), bits(y.result.lp_objective));
    EXPECT_EQ(x.result.lp_iterations, y.result.lp_iterations);
    EXPECT_EQ(bits(x.result.cost_ratio), bits(y.result.cost_ratio));
    EXPECT_EQ(x.result.winning_attempt, y.result.winning_attempt);
    EXPECT_EQ(x.result.attempts_made, y.result.attempts_made);
    const auto& ex = x.result.evaluation;
    const auto& ey = y.result.evaluation;
    EXPECT_EQ(bits(ex.total_cost), bits(ey.total_cost));
    EXPECT_EQ(bits(ex.reflector_cost), bits(ey.reflector_cost));
    EXPECT_EQ(bits(ex.sr_edge_cost), bits(ey.sr_edge_cost));
    EXPECT_EQ(bits(ex.rd_edge_cost), bits(ey.rd_edge_cost));
    EXPECT_EQ(ex.reflectors_built, ey.reflectors_built);
    EXPECT_EQ(ex.streams_delivered, ey.streams_delivered);
    expect_f64_vec_bits(ex.fanout_utilization, ey.fanout_utilization);
    EXPECT_EQ(bits(ex.max_fanout_utilization),
              bits(ey.max_fanout_utilization));
    EXPECT_EQ(bits(ex.min_weight_ratio), bits(ey.min_weight_ratio));
    EXPECT_EQ(bits(ex.mean_weight_ratio), bits(ey.mean_weight_ratio));
    EXPECT_EQ(ex.sinks_total, ey.sinks_total);
    EXPECT_EQ(ex.sinks_meeting_demand, ey.sinks_meeting_demand);
    EXPECT_EQ(ex.sinks_meeting_quarter, ey.sinks_meeting_quarter);
    EXPECT_EQ(ex.sinks_unserved, ey.sinks_unserved);
    EXPECT_EQ(ex.max_color_copies, ey.max_color_copies);
    EXPECT_EQ(ex.consistent, ey.consistent);
    ASSERT_EQ(ex.sinks.size(), ey.sinks.size());
    for (std::size_t s = 0; s < ex.sinks.size(); ++s) {
      EXPECT_EQ(ex.sinks[s].sink, ey.sinks[s].sink);
      EXPECT_EQ(bits(ex.sinks[s].demand_weight),
                bits(ey.sinks[s].demand_weight));
      EXPECT_EQ(bits(ex.sinks[s].delivered_weight),
                bits(ey.sinks[s].delivered_weight));
      EXPECT_EQ(bits(ex.sinks[s].weight_ratio), bits(ey.sinks[s].weight_ratio));
      EXPECT_EQ(bits(ex.sinks[s].delivery_probability),
                bits(ey.sinks[s].delivery_probability));
      EXPECT_EQ(bits(ex.sinks[s].threshold), bits(ey.sinks[s].threshold));
      EXPECT_EQ(ex.sinks[s].copies, ey.sinks[s].copies);
      EXPECT_EQ(ex.sinks[s].copies_per_color, ey.sinks[s].copies_per_color);
    }
    if (include_timing) {
      EXPECT_EQ(bits(x.seconds), bits(y.seconds));
      EXPECT_EQ(bits(x.result.lp_seconds), bits(y.result.lp_seconds));
      EXPECT_EQ(bits(x.result.rounding_seconds),
                bits(y.result.rounding_seconds));
      EXPECT_EQ(x.result.lp_cache_hit, y.result.lp_cache_hit);
    }
  }
}

/// The grid every end-to-end test shards: 3 instances x 2 configs with
/// per-instance reseeding, so global indices matter.
DesignSweep dist_sweep_grid() {
  DesignSweep sweep;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    sweep.add_instance("seed" + std::to_string(seed),
                       omn::topo::make_akamai_like(
                           omn::topo::global_event_config(8, seed)));
  }
  DesignerConfig base;
  base.seed = 5;
  base.rounding_attempts = 2;
  sweep.add_config("with-cut", base);
  DesignerConfig no_cut = base;
  no_cut.cutting_plane = false;
  sweep.add_config("no-cut", no_cut);
  return sweep;
}

SweepOptions dist_sweep_options() {
  SweepOptions options;
  options.reseed_per_instance = true;
  return options;
}

// ---- ShardPlan ------------------------------------------------------------

TEST(ShardPlan, CoversDeterministicallyWithNearEqualShards) {
  const ShardPlan plan = ShardPlan::make(10, 4);
  ASSERT_EQ(plan.shards.size(), 4u);
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    EXPECT_EQ(plan.shards[s].index, s);
    EXPECT_EQ(plan.shards[s].begin, cursor);
    EXPECT_GT(plan.shards[s].size(), 0u);
    cursor = plan.shards[s].end;
  }
  EXPECT_EQ(cursor, 10u);
  // Near-equal: sizes 3,3,2,2 — larger shards first, never off by > 1.
  EXPECT_EQ(plan.shards[0].size(), 3u);
  EXPECT_EQ(plan.shards[1].size(), 3u);
  EXPECT_EQ(plan.shards[2].size(), 2u);
  EXPECT_EQ(plan.shards[3].size(), 2u);
  // Pure function of (cells, shards).
  EXPECT_EQ(ShardPlan::make(10, 4).shards, plan.shards);
}

TEST(ShardPlan, EdgeCases) {
  EXPECT_TRUE(ShardPlan::make(0, 4).shards.empty());
  // More shards than cells: one cell each, never an empty shard.
  EXPECT_EQ(ShardPlan::make(3, 8).shards.size(), 3u);
  // Zero behaves as one.
  ASSERT_EQ(ShardPlan::make(5, 0).shards.size(), 1u);
  EXPECT_EQ(ShardPlan::make(5, 0).shards[0].size(), 5u);
}

// ---- frame protocol -------------------------------------------------------

TEST(DistFrame, RoundTripsEveryType) {
  for (const FrameType type :
       {FrameType::kGrid, FrameType::kShard, FrameType::kResult,
        FrameType::kShutdown}) {
    std::stringstream stream;
    omn::dist::write_frame(stream, type, "payload-bytes");
    Frame frame;
    ASSERT_EQ(omn::dist::read_frame(stream, frame), FrameStatus::kOk);
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, "payload-bytes");
    // A second read on the drained stream is a clean EOF.
    EXPECT_EQ(omn::dist::read_frame(stream, frame), FrameStatus::kEof);
  }
}

TEST(DistFrame, RejectsEachCorruption) {
  const std::string good = omn::dist::encode_frame(FrameType::kShard, "abc");
  Frame frame;

  // Truncation anywhere inside the frame.
  for (std::size_t keep = 1; keep < good.size(); ++keep) {
    std::istringstream in(good.substr(0, keep));
    EXPECT_EQ(omn::dist::read_frame(in, frame), FrameStatus::kTruncated)
        << "prefix of " << keep << " bytes";
  }

  const auto with = [&](std::size_t offset, char value) {
    std::string bytes = good;
    bytes[offset] = value;
    return bytes;
  };
  std::istringstream bad_magic(with(0, 'X'));
  EXPECT_EQ(omn::dist::read_frame(bad_magic, frame), FrameStatus::kBadMagic);
  std::istringstream bad_version(with(4, 9));
  EXPECT_EQ(omn::dist::read_frame(bad_version, frame),
            FrameStatus::kBadVersion);
  std::istringstream bad_type(with(8, 99));
  EXPECT_EQ(omn::dist::read_frame(bad_type, frame), FrameStatus::kBadType);
  // Flip one payload byte: the trailing checksum must catch it.
  std::istringstream bad_payload(with(20, 'z'));
  EXPECT_EQ(omn::dist::read_frame(bad_payload, frame),
            FrameStatus::kBadChecksum);
  std::istringstream bad_checksum(with(good.size() - 1,
                                       static_cast<char>(good.back() ^ 1)));
  EXPECT_EQ(omn::dist::read_frame(bad_checksum, frame),
            FrameStatus::kBadChecksum);

  // A length prefix past the cap must be rejected before allocation.
  std::string oversized = good;
  oversized[12] = '\xff';
  oversized[13] = '\xff';
  oversized[14] = '\xff';
  oversized[15] = '\xff';
  oversized[16] = '\xff';
  std::istringstream in(oversized);
  EXPECT_EQ(omn::dist::read_frame(in, frame), FrameStatus::kOversized);
}

// ---- golden frame file ----------------------------------------------------

/// The fixed frame the golden file was generated from.
std::string golden_frame_payload() {
  return omn::dist::encode_shard(WireShard{3, 10, 25});
}

TEST(GoldenDistFrame, LoadsAndReserializesByteExact) {
  const std::string golden = slurp(data_path("dist_frame_v3.bin"));
  ASSERT_FALSE(golden.empty());
  std::istringstream in(golden);
  Frame frame;
  ASSERT_EQ(omn::dist::read_frame(in, frame), FrameStatus::kOk);
  EXPECT_EQ(frame.type, FrameType::kShard);
  EXPECT_EQ(frame.payload, golden_frame_payload());
  WireShard shard;
  ASSERT_TRUE(omn::dist::decode_shard(frame.payload, shard));
  EXPECT_EQ(shard.shard_index, 3u);
  EXPECT_EQ(shard.begin, 10u);
  EXPECT_EQ(shard.end, 25u);
  // Any format change must update the golden — an explicit, reviewed
  // decision, exactly like the .lpsol golden.
  EXPECT_EQ(omn::dist::encode_frame(frame.type, frame.payload), golden);
}

TEST(GoldenDistFrame, TruncationVersionAndChecksumRejected) {
  const std::string golden = slurp(data_path("dist_frame_v3.bin"));
  ASSERT_GT(golden.size(), 28u);
  Frame frame;
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{19}, golden.size() - 9,
        golden.size() - 1}) {
    std::istringstream in(golden.substr(0, keep));
    EXPECT_EQ(omn::dist::read_frame(in, frame), FrameStatus::kTruncated)
        << "prefix of " << keep << " bytes was accepted";
  }
  std::string bad_version = golden;
  bad_version[4] = 4;  // version field (little-endian u32 after the magic)
  std::istringstream vin(bad_version);
  EXPECT_EQ(omn::dist::read_frame(vin, frame), FrameStatus::kBadVersion);
  std::string bad_payload = golden;
  bad_payload[21] ^= 1;  // inside the payload: checksum must catch it
  std::istringstream cin(bad_payload);
  EXPECT_EQ(omn::dist::read_frame(cin, frame), FrameStatus::kBadChecksum);
}

TEST(GoldenDistFrame, RejectsLegacyV1Frames) {
  // The frame version gates the PAYLOAD codecs, which v2 extended (solver
  // options, warm-start basis, new counters).  A v1 peer must be rejected
  // at the header, before any payload is misread.
  const std::string golden = slurp(data_path("dist_frame_v1.bin"));
  ASSERT_FALSE(golden.empty());
  std::istringstream in(golden);
  Frame frame;
  EXPECT_EQ(omn::dist::read_frame(in, frame), FrameStatus::kBadVersion);
}

TEST(GoldenDistFrame, RejectsLegacyV2Frames) {
  // v3 appended the trailing omn-trace blob to result payloads; a v2 peer
  // would misread a traced result, so the header rejects it outright.
  const std::string golden = slurp(data_path("dist_frame_v2.bin"));
  ASSERT_FALSE(golden.empty());
  std::istringstream in(golden);
  Frame frame;
  EXPECT_EQ(omn::dist::read_frame(in, frame), FrameStatus::kBadVersion);
}

// ---- wire codecs ----------------------------------------------------------

TEST(DistWire, GridRoundTripsInstancesConfigsAndOptions) {
  DesignSweep sweep = dist_sweep_grid();
  DesignerConfig exotic;
  exotic.c = 0.25;
  exotic.seed = 77;
  exotic.rounding_attempts = 5;
  exotic.color_constraints = true;
  exotic.reflector_stream_capacities = true;
  exotic.prune_unused = false;
  exotic.lp_options.max_iterations = 12345;
  exotic.lp_options.optimality_tol = 3e-10;
  exotic.color_options.color_capacity_scaled = 4;
  exotic.color_options.seed = 9;
  exotic.box_options.x_epsilon = 1e-7;
  sweep.add_config("exotic", exotic);

  SweepOptions options;
  options.threads = 3;
  options.reseed_per_instance = true;
  options.reuse_lp = false;

  const std::string payload = omn::dist::encode_grid(sweep, options);
  WireGrid grid;
  ASSERT_TRUE(omn::dist::decode_grid(payload, grid));
  EXPECT_EQ(grid.options.threads, 3u);
  EXPECT_TRUE(grid.options.reseed_per_instance);
  EXPECT_FALSE(grid.options.reuse_lp);
  ASSERT_EQ(grid.sweep.num_instances(), sweep.num_instances());
  ASSERT_EQ(grid.sweep.num_configs(), sweep.num_configs());
  for (std::size_t i = 0; i < sweep.num_instances(); ++i) {
    EXPECT_EQ(grid.sweep.instance_label(i), sweep.instance_label(i));
    // Text round trip is exact (max_digits10), so re-serialized text is a
    // faithful deep comparison.
    EXPECT_EQ(omn::net::to_text(grid.sweep.instance(i)),
              omn::net::to_text(sweep.instance(i)));
  }
  const DesignerConfig& decoded = grid.sweep.config(sweep.num_configs() - 1);
  EXPECT_EQ(grid.sweep.config_label(sweep.num_configs() - 1), "exotic");
  EXPECT_EQ(bits(decoded.c), bits(exotic.c));
  EXPECT_EQ(decoded.seed, exotic.seed);
  EXPECT_EQ(decoded.rounding_attempts, exotic.rounding_attempts);
  EXPECT_EQ(decoded.color_constraints, exotic.color_constraints);
  EXPECT_EQ(decoded.reflector_stream_capacities,
            exotic.reflector_stream_capacities);
  EXPECT_EQ(decoded.prune_unused, exotic.prune_unused);
  EXPECT_EQ(decoded.lp_options.max_iterations,
            exotic.lp_options.max_iterations);
  EXPECT_EQ(bits(decoded.lp_options.optimality_tol),
            bits(exotic.lp_options.optimality_tol));
  EXPECT_EQ(decoded.color_options.color_capacity_scaled,
            exotic.color_options.color_capacity_scaled);
  EXPECT_EQ(decoded.color_options.seed, exotic.color_options.seed);
  EXPECT_EQ(bits(decoded.box_options.x_epsilon),
            bits(exotic.box_options.x_epsilon));

  // Truncation never parses.
  WireGrid ignored;
  EXPECT_FALSE(
      omn::dist::decode_grid(payload.substr(0, payload.size() - 1), ignored));
  EXPECT_FALSE(omn::dist::decode_grid(payload + "x", ignored));
}

TEST(DistWire, ResultRoundTripsBitExactly) {
  const DesignSweep sweep = dist_sweep_grid();
  WireResult result;
  result.shard_index = 2;
  result.report = sweep.run_range(1, 4, dist_sweep_options(),
                                  omn::util::ExecutionContext::serial());
  const std::string payload = omn::dist::encode_result(result);
  WireResult decoded;
  ASSERT_TRUE(omn::dist::decode_result(payload, decoded));
  EXPECT_EQ(decoded.shard_index, 2u);
  EXPECT_EQ(decoded.report.num_instances, result.report.num_instances);
  EXPECT_EQ(decoded.report.num_configs, result.report.num_configs);
  EXPECT_EQ(decoded.report.lp_solves, result.report.lp_solves);
  EXPECT_EQ(bits(decoded.report.wall_seconds),
            bits(result.report.wall_seconds));
  EXPECT_EQ(bits(decoded.report.cpu_seconds), bits(result.report.cpu_seconds));
  expect_cells_bit_identical(decoded.report.cells, result.report.cells,
                             /*include_timing=*/true);
  EXPECT_TRUE(decoded.trace.empty());  // tracing off: no blob on the wire

  WireResult ignored;
  EXPECT_FALSE(omn::dist::decode_result(payload.substr(0, payload.size() / 2),
                                        ignored));
}

TEST(DistWire, ResultCarriesOpaqueTraceBlob) {
  // v3: the trailing trace blob rides along untouched — the wire layer
  // treats it as bytes; only obs::decode_trace interprets it.
  const DesignSweep sweep = dist_sweep_grid();
  WireResult result;
  result.shard_index = 1;
  result.report = sweep.run_range(0, 2, dist_sweep_options(),
                                  omn::util::ExecutionContext::serial());
  result.trace = std::string("opaque\0span\xff" "bytes", 17);
  const std::string payload = omn::dist::encode_result(result);
  WireResult decoded;
  ASSERT_TRUE(omn::dist::decode_result(payload, decoded));
  EXPECT_EQ(decoded.trace, result.trace);
  // Trailing garbage after the blob still never parses.
  EXPECT_FALSE(omn::dist::decode_result(payload + "x", decoded));
}

// ---- worker loop (in-process, stream-driven) ------------------------------

TEST(DistWorker, WellFormedSessionProducesResultFrames) {
  const DesignSweep sweep = dist_sweep_grid();
  const SweepOptions options = dist_sweep_options();
  std::stringstream in;
  omn::dist::write_frame(in, FrameType::kGrid,
                         omn::dist::encode_grid(sweep, options));
  omn::dist::write_frame(in, FrameType::kShard,
                         omn::dist::encode_shard(WireShard{0, 0, 2}));
  omn::dist::write_frame(in, FrameType::kShutdown, {});

  std::stringstream out;
  EXPECT_EQ(omn::dist::run_worker(in, out, nullptr), 0);

  Frame frame;
  ASSERT_EQ(omn::dist::read_frame(out, frame), FrameStatus::kOk);
  ASSERT_EQ(frame.type, FrameType::kResult);
  WireResult result;
  ASSERT_TRUE(omn::dist::decode_result(frame.payload, result));
  EXPECT_EQ(result.shard_index, 0u);
  const SweepReport expected = sweep.run_range(
      0, 2, options, omn::util::ExecutionContext::serial());
  expect_cells_bit_identical(result.report.cells, expected.cells);
  EXPECT_TRUE(result.trace.empty());  // tracing off: no span payload
  EXPECT_EQ(omn::dist::read_frame(out, frame), FrameStatus::kEof);
}

TEST(DistWorker, TracedSessionShipsDecodableSpanBlob) {
  // With span recording on (what `worker --trace-spans` arranges), each
  // result frame carries the worker's span buffers, decodable back into
  // a timeline that contains the designer stages.
  const DesignSweep sweep = dist_sweep_grid();
  const SweepOptions options = dist_sweep_options();
  std::stringstream in;
  omn::dist::write_frame(in, FrameType::kGrid,
                         omn::dist::encode_grid(sweep, options));
  omn::dist::write_frame(in, FrameType::kShard,
                         omn::dist::encode_shard(WireShard{0, 0, 2}));
  omn::dist::write_frame(in, FrameType::kShutdown, {});

  omn::util::Trace::set_enabled(true);
  omn::util::Trace::drain();  // discard spans recorded by earlier tests
  std::stringstream out;
  const int status = omn::dist::run_worker(in, out, nullptr);
  omn::util::Trace::set_enabled(false);
  ASSERT_EQ(status, 0);

  Frame frame;
  ASSERT_EQ(omn::dist::read_frame(out, frame), FrameStatus::kOk);
  WireResult result;
  ASSERT_TRUE(omn::dist::decode_result(frame.payload, result));
  ASSERT_FALSE(result.trace.empty());
  omn::obs::ProcessTrace trace;
  ASSERT_TRUE(omn::obs::decode_trace(result.trace, trace));
  bool saw_designer_span = false;
  for (const omn::util::ThreadTrace& thread : trace.threads) {
    for (const omn::util::TraceEvent& event : thread.events) {
      if (event.name.rfind("designer.", 0) == 0) saw_designer_span = true;
    }
  }
  EXPECT_TRUE(saw_designer_span);
  // A corrupted blob must decode to false, never a half-parsed timeline.
  std::string corrupt = result.trace;
  corrupt[corrupt.size() / 2] ^= 1;
  EXPECT_FALSE(omn::obs::decode_trace(corrupt, trace));
}

TEST(DistWorker, ProtocolViolationsExitNonzero) {
  const DesignSweep sweep = dist_sweep_grid();
  std::stringstream out;
  {
    // Garbage instead of a frame.
    std::stringstream in("not a frame at all");
    EXPECT_NE(omn::dist::run_worker(in, out, nullptr), 0);
  }
  {
    // A shard before any grid.
    std::stringstream in;
    omn::dist::write_frame(in, FrameType::kShard,
                           omn::dist::encode_shard(WireShard{0, 0, 1}));
    EXPECT_NE(omn::dist::run_worker(in, out, nullptr), 0);
  }
  {
    // A shard range outside the grid.
    std::stringstream in;
    omn::dist::write_frame(
        in, FrameType::kGrid,
        omn::dist::encode_grid(sweep, dist_sweep_options()));
    omn::dist::write_frame(
        in, FrameType::kShard,
        omn::dist::encode_shard(WireShard{0, 0, sweep.num_cells() + 1}));
    EXPECT_NE(omn::dist::run_worker(in, out, nullptr), 0);
  }
  {
    // Clean EOF without a shutdown frame is a clean exit.
    std::stringstream in;
    omn::dist::write_frame(
        in, FrameType::kGrid,
        omn::dist::encode_grid(sweep, dist_sweep_options()));
    EXPECT_EQ(omn::dist::run_worker(in, out, nullptr), 0);
  }
}

// ---- checkpoints ----------------------------------------------------------

TEST(DistCheckpoint, EntryValidatesEverything) {
  const DesignSweep sweep = dist_sweep_grid();
  const ShardRange range{1, 2, 4};
  const omn::util::Digest128 digest{0x1111, 0x2222};
  const SweepReport report = sweep.run_range(
      2, 4, dist_sweep_options(), omn::util::ExecutionContext::serial());

  std::ostringstream out;
  omn::dist::write_checkpoint_entry(out, digest, range, report);
  const std::string golden = out.str();

  {
    std::istringstream in(golden);
    const auto loaded =
        omn::dist::read_checkpoint_entry(in, digest, range);
    ASSERT_TRUE(loaded.has_value());
    expect_cells_bit_identical(loaded->cells, report.cells,
                               /*include_timing=*/true);
  }
  {
    // Foreign grid digest.
    std::istringstream in(golden);
    EXPECT_FALSE(omn::dist::read_checkpoint_entry(
                     in, omn::util::Digest128{9, 9}, range)
                     .has_value());
  }
  {
    // Same index, different cell range.
    std::istringstream in(golden);
    EXPECT_FALSE(omn::dist::read_checkpoint_entry(in, digest,
                                                  ShardRange{1, 2, 5})
                     .has_value());
  }
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{20}, golden.size() - 9,
        golden.size() - 1}) {
    std::istringstream in(golden.substr(0, keep));
    EXPECT_FALSE(omn::dist::read_checkpoint_entry(in, digest, range)
                     .has_value())
        << "prefix of " << keep << " bytes was accepted";
  }
  {
    std::string corrupt = golden;
    corrupt[golden.size() / 2] ^= 1;
    std::istringstream in(corrupt);
    EXPECT_FALSE(omn::dist::read_checkpoint_entry(in, digest, range)
                     .has_value());
  }
}

// ---- end to end (worker subprocesses) -------------------------------------

TEST(DistEndToEnd, DistributedMatchesSerialBitForBit) {
  const DesignSweep sweep = dist_sweep_grid();
  const SweepOptions options = dist_sweep_options();
  const SweepReport serial = sweep.run(
      options, omn::util::ExecutionContext::serial());

  DistOptions dist_options;
  dist_options.workers = 2;
  dist_options.worker_command = omn::dist::self_worker_command("");
  DistStats stats;
  dist_options.stats = &stats;
  const SweepReport distributed = sweep.run_distributed(options, dist_options);

  EXPECT_EQ(distributed.num_instances, serial.num_instances);
  EXPECT_EQ(distributed.num_configs, serial.num_configs);
  EXPECT_EQ(distributed.lp_configs, serial.lp_configs);
  expect_cells_bit_identical(distributed.cells, serial.cells);
  EXPECT_EQ(stats.workers_spawned, 2u);
  EXPECT_EQ(stats.shards_total, stats.shards_computed);
  EXPECT_EQ(stats.shards_reassigned, 0u);
  EXPECT_EQ(stats.workers_failed, 0u);
  EXPECT_GT(distributed.cpu_seconds, 0.0);
  // threads == 0 is a HOST budget of all cores, divided across the two
  // workers — never two all-cores pools.
  const std::size_t cores =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  EXPECT_EQ(stats.threads_per_worker, std::max<std::size_t>(cores / 2, 1));
}

TEST(DistEndToEnd, ExplicitThreadBudgetIsDividedAcrossWorkers) {
  // --workers 2 --threads 4: the explicit cap is the host's TOTAL budget,
  // so each worker gets 2 threads (and the report stays bit-identical to
  // the serial run — the cap only moves wall clock).
  const DesignSweep sweep = dist_sweep_grid();
  SweepOptions options = dist_sweep_options();
  options.threads = 4;
  const SweepReport serial = sweep.run(
      dist_sweep_options(), omn::util::ExecutionContext::serial());

  DistOptions dist_options;
  dist_options.workers = 2;
  dist_options.worker_command = omn::dist::self_worker_command("");
  DistStats stats;
  dist_options.stats = &stats;
  const SweepReport distributed = sweep.run_distributed(options, dist_options);

  EXPECT_EQ(stats.workers_spawned, 2u);
  EXPECT_EQ(stats.threads_per_worker, 2u);
  expect_cells_bit_identical(distributed.cells, serial.cells);
}

TEST(DistEndToEnd, KilledWorkerShardIsReassignedBitForBit) {
  const DesignSweep sweep = dist_sweep_grid();
  const SweepOptions options = dist_sweep_options();
  const SweepReport serial = sweep.run(
      options, omn::util::ExecutionContext::serial());

  DistOptions dist_options;
  dist_options.workers = 2;
  dist_options.worker_command = omn::dist::self_worker_command("");
  DistStats stats;
  dist_options.stats = &stats;
  // SIGKILL worker 0 right after its first shard assignment: the engine
  // must detect the death and hand that shard to worker 1.
  std::atomic<bool> killed{false};
  dist_options.inject_kill_after_assign = [&killed](std::size_t worker,
                                                    std::size_t) {
    return worker == 0 && !killed.exchange(true);
  };
  const SweepReport distributed = sweep.run_distributed(options, dist_options);

  expect_cells_bit_identical(distributed.cells, serial.cells);
  EXPECT_TRUE(killed.load());
  EXPECT_EQ(stats.workers_failed, 1u);
  EXPECT_GE(stats.shards_reassigned, 1u);
  EXPECT_EQ(stats.shards_computed, stats.shards_total);
}

TEST(DistEndToEnd, EveryWorkerDeadThrows) {
  const DesignSweep sweep = dist_sweep_grid();
  DistOptions dist_options;
  dist_options.workers = 2;
  dist_options.worker_command = omn::dist::self_worker_command("");
  dist_options.inject_kill_after_assign = [](std::size_t, std::size_t) {
    return true;  // every assignment kills its worker
  };
  EXPECT_THROW(sweep.run_distributed(dist_sweep_options(), dist_options),
               std::runtime_error);
}

TEST(DistEndToEnd, ResumeFromCheckpointsRecomputesNothing) {
  const TempDir dir("ckpt");
  const DesignSweep sweep = dist_sweep_grid();
  const SweepOptions options = dist_sweep_options();
  const SweepReport serial = sweep.run(
      options, omn::util::ExecutionContext::serial());

  DistOptions dist_options;
  dist_options.workers = 2;
  dist_options.worker_command = omn::dist::self_worker_command("");
  dist_options.checkpoint_dir = dir.str();
  DistStats first_stats;
  dist_options.stats = &first_stats;
  const SweepReport first = sweep.run_distributed(options, dist_options);
  EXPECT_EQ(first_stats.shards_computed, first_stats.shards_total);
  EXPECT_EQ(first_stats.checkpoints_written, first_stats.shards_total);

  DistStats resumed_stats;
  dist_options.stats = &resumed_stats;
  const SweepReport resumed = sweep.run_distributed(options, dist_options);
  // Zero recomputed shards, zero workers spawned: the whole grid came
  // back from the checkpoint files, bit-identical.
  EXPECT_EQ(resumed_stats.shards_computed, 0u);
  EXPECT_EQ(resumed_stats.shards_from_checkpoint, resumed_stats.shards_total);
  EXPECT_EQ(resumed_stats.workers_spawned, 0u);
  expect_cells_bit_identical(resumed.cells, serial.cells);
  expect_cells_bit_identical(resumed.cells, first.cells,
                             /*include_timing=*/true);
}

TEST(DistEndToEnd, CorruptCheckpointIsRejectedAndRecomputed) {
  const TempDir dir("ckpt-corrupt");
  const DesignSweep sweep = dist_sweep_grid();
  const SweepOptions options = dist_sweep_options();

  DistOptions dist_options;
  dist_options.workers = 2;
  dist_options.worker_command = omn::dist::self_worker_command("");
  dist_options.checkpoint_dir = dir.str();
  DistStats stats;
  dist_options.stats = &stats;
  const SweepReport first = sweep.run_distributed(options, dist_options);

  // Flip one byte in the middle of one checkpoint file.
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    files.push_back(entry.path());
  }
  ASSERT_EQ(files.size(), stats.shards_total);
  std::sort(files.begin(), files.end());
  std::string bytes = slurp(files[0].string());
  bytes[bytes.size() / 2] ^= 1;
  std::ofstream(files[0], std::ios::binary | std::ios::trunc) << bytes;

  DistStats resumed_stats;
  dist_options.stats = &resumed_stats;
  const SweepReport resumed = sweep.run_distributed(options, dist_options);
  EXPECT_EQ(resumed_stats.shards_computed, 1u);
  EXPECT_EQ(resumed_stats.shards_from_checkpoint,
            resumed_stats.shards_total - 1);
  expect_cells_bit_identical(resumed.cells, first.cells);
}

}  // namespace

// Self-spawning worker entry: run_distributed re-invokes this test binary
// as `test_dist worker`, which must speak frames on stdin/stdout instead
// of running the test suite.
int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "worker") {
    return omn::dist::worker_main(argc, argv);
  }
  if (argc >= 3 && std::string(argv[1]) == "write-golden") {
    // Regenerates tests/data/dist_frame_v<current>.bin on a deliberate
    // frame-format bump (the retired version's file stays committed as a
    // must-reject fixture).
    const std::string bytes = omn::dist::encode_frame(
        omn::dist::FrameType::kShard,
        omn::dist::encode_shard(omn::dist::WireShard{3, 10, 25}));
    std::ofstream out(argv[2], std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return out.good() ? 0 : 1;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
