// Tests for the serve stack: the event protocol (omn/serve/event.hpp),
// the crash journal (omn/serve/journal.hpp), the incremental
// core::DesignState, and ServeSession end to end.
//
// The two suites that carry the correctness argument:
//
//  - ServeDifferential replays deterministic churn streams (>= 200 events
//    across >= 3 topologies) and, after EVERY event, checks the
//    incremental redesign against a cold OverlayDesigner::design on the
//    same mutated instance: bit-identical with warm start off,
//    objective/feasibility-equivalent within a pinned tolerance with it
//    on.  This is what licenses `serve` to claim its designs are the
//    designs a from-scratch rerun would produce.
//
//  - ServeCrash SIGKILLs a live daemon mid-stream (this binary re-invokes
//    itself as `test_serve serve-child`, speaking the line protocol over
//    pipes) and asserts the resumed session replays the journal to the
//    bit-identical design digest.
//
// The committed golden journal (tests/data/serve_journal_v1.bin) pins the
// v1 byte format: the file must decode, re-encode byte-identically, and
// reject corruption.  Regenerate (only on a deliberate format bump, with
// the version constant) via `test_serve write-golden <path>`.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "omn/core/design_state.hpp"
#include "omn/core/designer.hpp"
#include "omn/net/serialize.hpp"
#include "omn/serve/churn.hpp"
#include "omn/serve/event.hpp"
#include "omn/serve/journal.hpp"
#include "omn/serve/serve.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/topo/synthetic.hpp"
#include "omn/util/subprocess.hpp"

namespace {

using omn::core::DesignerConfig;
using omn::core::DesignResult;
using omn::core::DesignState;
using omn::core::FailedEdge;
using omn::core::OverlayDesigner;
using omn::serve::Event;
using omn::serve::EventKind;
using omn::serve::Journal;
using omn::serve::JournalContents;
using omn::serve::JournalError;
using omn::serve::JournalHeader;
using omn::serve::ServeOptions;
using omn::serve::ServeSession;

std::string data_path(const std::string& file) {
  const char* dir = std::getenv("OMN_TEST_DATA_DIR");
  return (dir != nullptr ? std::string(dir) : std::string("tests/data")) +
         "/" + file;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

std::string temp_path(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return (dir != nullptr ? std::string(dir) : std::string("/tmp")) + "/" +
         name + "." + std::to_string(::getpid());
}

/// The config every differential/replay suite runs under: serial and
/// single-attempt so each redesign is one LP solve plus one rounding
/// pass, keeping 400+ solves per suite affordable.
DesignerConfig base_config() {
  DesignerConfig cfg;
  cfg.seed = 1;
  cfg.rounding_attempts = 1;
  cfg.threads = 1;
  return cfg;
}

/// The fixed config of the self-spawned `serve-child` daemon; the parent
/// side of the crash tests must use the identical config or resume will
/// (correctly) refuse the journal.
DesignerConfig serve_child_config() {
  DesignerConfig cfg = base_config();
  cfg.lp_warm_start = true;
  return cfg;
}

Event parse_ok(const std::string& line) {
  std::string error;
  const std::optional<Event> event = omn::serve::parse_event(line, &error);
  EXPECT_TRUE(event.has_value()) << line << ": " << error;
  return event.value_or(Event{});
}

void expect_rejected(const std::string& line) {
  std::string error;
  const std::optional<Event> event = omn::serve::parse_event(line, &error);
  EXPECT_FALSE(event.has_value()) << line;
  EXPECT_FALSE(error.empty()) << line;
}

// ---------------------------------------------------------------------------
// Event protocol

TEST(ServeEvent, ParsesEveryKind) {
  Event e = parse_ok("node-add r9 12.5 8 1 1.25 0.015");
  EXPECT_EQ(e.kind, EventKind::kNodeAdd);
  EXPECT_EQ(e.a, "r9");
  EXPECT_DOUBLE_EQ(e.build_cost, 12.5);
  EXPECT_DOUBLE_EQ(e.fanout, 8.0);
  EXPECT_EQ(e.color, 1);
  EXPECT_DOUBLE_EQ(e.edge_cost, 1.25);
  EXPECT_DOUBLE_EQ(e.edge_loss, 0.015);

  e = parse_ok("node-remove r9");
  EXPECT_EQ(e.kind, EventKind::kNodeRemove);
  EXPECT_EQ(e.a, "r9");

  e = parse_ok("edge-fail sr s0 r1");
  EXPECT_EQ(e.kind, EventKind::kEdgeFail);
  EXPECT_FALSE(e.rd);
  EXPECT_EQ(e.a, "s0");
  EXPECT_EQ(e.b, "r1");

  e = parse_ok("edge-restore rd r1 d3");
  EXPECT_EQ(e.kind, EventKind::kEdgeRestore);
  EXPECT_TRUE(e.rd);
  EXPECT_EQ(e.a, "r1");
  EXPECT_EQ(e.b, "d3");

  e = parse_ok("capacity-set r1 7.5");
  EXPECT_EQ(e.kind, EventKind::kCapacitySet);
  EXPECT_DOUBLE_EQ(e.fanout, 7.5);

  EXPECT_EQ(parse_ok("query").kind, EventKind::kQuery);
  EXPECT_EQ(parse_ok("stats").kind, EventKind::kStats);
  EXPECT_EQ(parse_ok("snapshot").kind, EventKind::kSnapshot);
  EXPECT_EQ(parse_ok("quit").kind, EventKind::kQuit);
  // stats is a pure read: it must never reach the journal.
  EXPECT_FALSE(parse_ok("stats").is_mutation());
}

TEST(ServeEvent, BlankAndCommentAreNotEvents) {
  for (const std::string line : {"", "   ", "# comment", "  # note"}) {
    std::string error = "sentinel";
    EXPECT_FALSE(omn::serve::parse_event(line, &error).has_value()) << line;
    EXPECT_TRUE(error.empty()) << line;
  }
}

TEST(ServeEvent, RejectsMalformedLines) {
  expect_rejected("frobnicate");                       // unknown kind
  expect_rejected("node-add r9 12.5 8 1 1.25");        // token count
  expect_rejected("node-add r9 12.5 8 1 1.25 0.015 x");
  expect_rejected("node-add r9 12.5 8 1.5 1.25 0.015");  // color not count
  expect_rejected("node-add r9 12.5 0 1 1.25 0.015");  // fanout <= 0
  expect_rejected("node-add r9 12.5 8 1 1.25 1");      // loss not in [0,1)
  expect_rejected("node-add r9 12.5 8 1 1.25 nan");
  expect_rejected("node-add r9 -1 8 1 1.25 0.015");    // negative cost
  expect_rejected("edge-fail lr s0 r1");               // bad layer
  expect_rejected("edge-fail sr s0");                  // missing endpoint
  expect_rejected("capacity-set r1 4O");               // strict numbers
  expect_rejected("capacity-set r1 -2");
  expect_rejected("query extra");
  expect_rejected("stats now");
  expect_rejected("quit 0");
}

TEST(ServeEvent, CanonicalLineRoundTrips) {
  const std::vector<std::string> lines = {
      "node-add r9 12.5 8 1 1.25 0.015",
      "node-add churn3 0.1 1e3 0 0.5 0.0123456789012345",
      "node-remove r9",
      "edge-fail sr s0 r1",
      "edge-fail rd r1 d3",
      "edge-restore sr s0 r1",
      "capacity-set r1 7.5",
      "query",
      "stats",
      "snapshot",
      "quit",
  };
  for (const std::string& line : lines) {
    const Event event = parse_ok(line);
    const std::string canonical = event.to_line();
    const Event again = parse_ok(canonical);
    EXPECT_EQ(event, again) << line;
    // Canonical form is a fixed point: rendering it again changes nothing.
    EXPECT_EQ(again.to_line(), canonical) << line;
  }
}

// ---------------------------------------------------------------------------
// Journal format

omn::net::OverlayInstance golden_instance() {
  omn::net::OverlayInstance inst;
  const int s0 = inst.add_source({"s0", 1.0});
  const int r0 = inst.add_reflector({"r0", 10.0, 8.0, 0});
  const int r1 = inst.add_reflector({"r1", 12.0, 6.0, 1});
  const int d0 = inst.add_sink({"d0", 0, 0.9});
  const int d1 = inst.add_sink({"d1", 0, 0.9});
  inst.add_source_reflector_edge({s0, r0, 1.0, 0.01});
  inst.add_source_reflector_edge({s0, r1, 1.5, 0.02});
  inst.add_reflector_sink_edge({r0, d0, 0.5, 0.03});
  inst.add_reflector_sink_edge({r0, d1, 0.6, 0.04});
  inst.add_reflector_sink_edge({r1, d0, 0.7, 0.05});
  inst.add_reflector_sink_edge({r1, d1, 0.8, 0.06});
  return inst;
}

JournalHeader golden_header() {
  JournalHeader header;
  header.config_digest = omn::serve::config_digest(base_config());
  header.instance_text = omn::net::to_text(golden_instance());
  header.failed = {FailedEdge{false, "s0", "r0", 0.01},
                   FailedEdge{true, "r1", "d1", 0.06}};
  return header;
}

std::vector<Event> golden_events() {
  return {
      parse_ok("capacity-set r1 7.5"),
      parse_ok("node-add r9 12.5 8 1 1.25 0.015"),
      parse_ok("edge-restore sr s0 r0"),
      parse_ok("node-remove r9"),
  };
}

TEST(ServeJournal, EncodeDecodeRoundTrips) {
  const JournalHeader header = golden_header();
  const std::vector<Event> events = golden_events();
  const std::string bytes = Journal::encode(header, events);
  const JournalContents contents = Journal::decode(bytes);
  EXPECT_EQ(contents.header.config_digest, header.config_digest);
  EXPECT_EQ(contents.header.instance_text, header.instance_text);
  EXPECT_EQ(contents.header.failed, header.failed);
  EXPECT_EQ(contents.events, events);
  EXPECT_FALSE(contents.dropped_partial_tail);
}

TEST(ServeJournal, GoldenFileIsByteExact) {
  const std::string bytes = slurp(data_path("serve_journal_v1.bin"));
  ASSERT_FALSE(bytes.empty());
  // The committed file is the canonical encoding — any formatting drift
  // (field order, width, checksum scheme) breaks old journals and fails
  // here.
  EXPECT_EQ(bytes, Journal::encode(golden_header(), golden_events()));
  const JournalContents contents = Journal::decode(bytes);
  EXPECT_EQ(contents.events, golden_events());
  EXPECT_EQ(contents.header.failed, golden_header().failed);
  EXPECT_FALSE(contents.dropped_partial_tail);
}

TEST(ServeJournal, RejectsCorruptBytes) {
  const std::string bytes = Journal::encode(golden_header(), golden_events());
  // Header corruption (magic, digest, text, checksum) must throw.
  for (const std::size_t at : {std::size_t{0}, std::size_t{9},
                               std::size_t{40}}) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
    EXPECT_THROW((void)Journal::decode(corrupt), JournalError) << at;
  }
  // A flipped byte inside a complete, non-final record must throw too
  // (only a *torn tail* is forgiven).
  const std::string header_only = Journal::encode(golden_header(), {});
  std::string corrupt = bytes;
  corrupt[header_only.size() + 6] ^= 0x40;
  EXPECT_THROW((void)Journal::decode(corrupt), JournalError);
}

TEST(ServeJournal, DropsTornFinalRecordOnly) {
  const JournalHeader header = golden_header();
  const std::vector<Event> events = golden_events();
  const std::string bytes = Journal::encode(header, events);
  const std::string prefix =
      Journal::encode(header, {events.begin(), events.end() - 1});
  // Tear the final record anywhere short of complete: the decoded prefix
  // must survive and the tail must be reported, not thrown.
  for (const std::size_t keep :
       {prefix.size() + 1, prefix.size() + 5, bytes.size() - 1}) {
    const JournalContents contents = Journal::decode(bytes.substr(0, keep));
    EXPECT_TRUE(contents.dropped_partial_tail) << keep;
    EXPECT_EQ(contents.events.size(), events.size() - 1) << keep;
  }
  // An empty tail is not a torn tail.
  EXPECT_FALSE(Journal::decode(prefix).dropped_partial_tail);
}

TEST(ServeJournal, RejectsNonDenseSequenceNumbers) {
  const std::string header = Journal::encode_header(golden_header());
  const std::string skipped =
      header + Journal::encode_record(1, parse_ok("capacity-set r1 7.5"));
  EXPECT_THROW((void)Journal::decode(skipped), JournalError);
}

TEST(ServeJournal, RejectsNonMutationRecords) {
  const std::string bytes = Journal::encode_header(golden_header()) +
                            Journal::encode_record(0, parse_ok("query"));
  EXPECT_THROW((void)Journal::decode(bytes), JournalError);
}

TEST(ServeJournal, LoadRejectsMissingFile) {
  EXPECT_THROW((void)Journal::load(temp_path("serve_no_such_journal")),
               JournalError);
}

TEST(ServeJournal, ConfigDigestPinsResultAffectingKnobsOnly) {
  const DesignerConfig base = base_config();
  DesignerConfig changed = base;
  changed.c = base.c * 2;
  EXPECT_NE(omn::serve::config_digest(base),
            omn::serve::config_digest(changed));
  changed = base;
  changed.lp_warm_start = !base.lp_warm_start;
  EXPECT_NE(omn::serve::config_digest(base),
            omn::serve::config_digest(changed));
  // Thread count never changes the design, so it must not split journals.
  changed = base;
  changed.threads = 7;
  EXPECT_EQ(omn::serve::config_digest(base),
            omn::serve::config_digest(changed));
}

// ---------------------------------------------------------------------------
// DesignState mutators

TEST(DesignState, FailRestoreIsExactRoundTrip) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(6, 2));
  DesignState state(inst, base_config(), omn::util::ExecutionContext::serial());
  const DesignResult before = state.redesign();

  const std::string refl = inst.reflector(0).name;
  const std::string sink = inst.sink(0).name;
  state.fail_edge(true, refl, sink);
  ASSERT_EQ(state.failed_edges().size(), 1u);
  EXPECT_EQ(state.failed_edges()[0].a, refl);
  const int edge = inst.find_rd_edge(0, 0);
  ASSERT_GE(edge, 0);
  EXPECT_DOUBLE_EQ(state.instance().rd_edges()[edge].loss,
                   omn::core::kFailedEdgeLoss);

  state.restore_edge(true, refl, sink);
  EXPECT_TRUE(state.failed_edges().empty());
  EXPECT_DOUBLE_EQ(state.instance().rd_edges()[edge].loss,
                   inst.rd_edges()[edge].loss);
  // Warm start off: the restored state's redesign is bit-identical to the
  // never-failed design.
  const DesignResult& after = state.redesign();
  EXPECT_EQ(after.design.z, before.design.z);
  EXPECT_EQ(after.design.y, before.design.y);
  EXPECT_EQ(after.design.x, before.design.x);
  EXPECT_EQ(after.lp_objective, before.lp_objective);
}

TEST(DesignState, MutatorsRejectWithoutMutating) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(6, 2));
  DesignState state(inst, base_config(), omn::util::ExecutionContext::serial());
  const std::string refl = inst.reflector(0).name;
  const std::string sink = inst.sink(0).name;

  EXPECT_THROW(state.fail_edge(true, "nope", sink), std::invalid_argument);
  EXPECT_THROW(state.fail_edge(true, refl, "nope"), std::invalid_argument);
  EXPECT_THROW(state.restore_edge(true, refl, sink), std::invalid_argument);
  state.fail_edge(true, refl, sink);
  EXPECT_THROW(state.fail_edge(true, refl, sink), std::invalid_argument);
  state.restore_edge(true, refl, sink);

  EXPECT_THROW(state.set_fanout(refl, 0.0), std::invalid_argument);
  EXPECT_THROW(state.set_fanout("nope", 4.0), std::invalid_argument);
  EXPECT_THROW(state.add_reflector(refl, 1, 4, 0, 1, 0.01),
               std::invalid_argument);
  EXPECT_THROW(state.remove_reflector("nope"), std::invalid_argument);

  // Nothing above stuck: the instance still matches the original.
  EXPECT_EQ(omn::net::to_text(state.instance()), omn::net::to_text(inst));
  EXPECT_TRUE(state.failed_edges().empty());
}

TEST(DesignState, AddAndRemoveReflectorKeepRegistryByName) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(6, 2));
  DesignState state(inst, base_config(), omn::util::ExecutionContext::serial());
  const std::string refl = inst.reflector(1).name;
  const std::string sink = inst.sink(1).name;
  state.fail_edge(true, refl, sink);

  state.add_reflector("extra", 15.0, 9.0, 0, 1.0, 0.02);
  const int added = state.find_reflector("extra");
  ASSERT_GE(added, 0);
  // Wired to every source and every sink.
  for (int k = 0; k < state.instance().num_sources(); ++k) {
    EXPECT_GE(state.instance().find_sr_edge(k, added), 0) << k;
  }
  for (int j = 0; j < state.instance().num_sinks(); ++j) {
    EXPECT_GE(state.instance().find_rd_edge(added, j), 0) << j;
  }

  // Removing the unrelated reflector remaps indices; the name-keyed
  // failed-edge registry must survive and still restore exactly.
  state.remove_reflector("extra");
  EXPECT_LT(state.find_reflector("extra"), 0);
  ASSERT_EQ(state.failed_edges().size(), 1u);
  state.restore_edge(true, refl, sink);
  EXPECT_EQ(omn::net::to_text(state.instance()), omn::net::to_text(inst));
}

TEST(DesignState, AdoptFailedEdgesValidates) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(6, 2));
  DesignState state(inst, base_config(), omn::util::ExecutionContext::serial());
  const std::string refl = inst.reflector(0).name;
  const std::string sink = inst.sink(0).name;
  state.adopt_failed_edges({FailedEdge{true, refl, sink, 0.05}});
  EXPECT_EQ(state.failed_edges().size(), 1u);
  EXPECT_THROW(state.adopt_failed_edges({FailedEdge{true, "nope", sink, 0.1}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Differential churn replay

std::vector<omn::net::OverlayInstance> differential_topologies() {
  omn::topo::UniformConfig uniform;
  uniform.num_reflectors = 8;
  uniform.num_sinks = 12;
  uniform.seed = 13;
  return {
      omn::topo::make_akamai_like(omn::topo::global_event_config(10, 5)),
      omn::topo::make_akamai_like(omn::topo::eu_heavy_event_config(8, 9)),
      omn::topo::make_uniform_random(uniform),
  };
}

// Warm start OFF: after every event the incremental redesign must be
// bit-identical to a cold OverlayDesigner::design on the mutated
// instance.  3 topologies x 70 events >= the 200-event floor.
TEST(ServeDifferential, ColdEquivalenceBitIdentical) {
  const DesignerConfig cfg = base_config();
  std::size_t topo_index = 0;
  for (const auto& inst : differential_topologies()) {
    SCOPED_TRACE("topology " + std::to_string(topo_index++));
    DesignState state(inst, cfg, omn::util::ExecutionContext::serial());
    state.redesign();
    omn::serve::ChurnConfig churn;
    churn.seed = 17 + topo_index;
    omn::serve::ChurnGenerator generator(inst, churn);
    for (int step = 0; step < 70; ++step) {
      const Event event = generator.next();
      SCOPED_TRACE("event " + std::to_string(step) + ": " + event.to_line());
      omn::serve::apply_event(state, event);
      const DesignResult& incremental = state.redesign();
      const DesignResult cold = OverlayDesigner(cfg).design(
          state.instance(), omn::util::ExecutionContext::serial());
      ASSERT_EQ(incremental.status, cold.status);
      ASSERT_EQ(incremental.lp_objective, cold.lp_objective);
      ASSERT_EQ(incremental.design.z, cold.design.z);
      ASSERT_EQ(incremental.design.y, cold.design.y);
      ASSERT_EQ(incremental.design.x, cold.design.x);
      ASSERT_EQ(incremental.evaluation.total_cost, cold.evaluation.total_cost);
    }
  }
}

// Warm start ON: the redesign may land on a different optimal vertex, but
// status and the LP optimum must agree with the cold solve to tight
// tolerance, the rounded design must stay feasible-equivalent, and the
// warm path must actually engage at least once over the stream.
TEST(ServeDifferential, WarmEquivalenceWithinTolerance) {
  DesignerConfig warm_cfg = base_config();
  warm_cfg.lp_warm_start = true;
  const DesignerConfig cold_cfg = base_config();
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(10, 5));
  DesignState state(inst, warm_cfg, omn::util::ExecutionContext::serial());
  state.redesign();
  omn::serve::ChurnConfig churn;
  churn.seed = 29;
  omn::serve::ChurnGenerator generator(inst, churn);
  std::size_t warm_engagements = 0;
  for (int step = 0; step < 40; ++step) {
    const Event event = generator.next();
    SCOPED_TRACE("event " + std::to_string(step) + ": " + event.to_line());
    omn::serve::apply_event(state, event);
    const DesignResult& incremental = state.redesign();
    if (incremental.lp_warm_start || incremental.lp_cache_hit) {
      ++warm_engagements;
    }
    const DesignResult cold = OverlayDesigner(cold_cfg).design(
        state.instance(), omn::util::ExecutionContext::serial());
    ASSERT_EQ(incremental.status, cold.status);
    if (incremental.status != omn::core::DesignStatus::kOk) continue;
    const double scale = std::max(1.0, std::abs(cold.lp_objective));
    ASSERT_NEAR(incremental.lp_objective, cold.lp_objective, 1e-7 * scale);
    ASSERT_EQ(incremental.evaluation.sinks_total,
              cold.evaluation.sinks_total);
    ASSERT_GE(incremental.evaluation.min_weight_ratio, 0.25);
  }
  EXPECT_GT(warm_engagements, 0u);
}

// ---------------------------------------------------------------------------
// ServeSession protocol + replay

ServeOptions journal_options(const DesignerConfig& cfg,
                             const std::string& journal_path) {
  ServeOptions options;
  options.config = cfg;
  options.journal_path = journal_path;
  return options;
}

TEST(ServeSession, SpeaksTheLineProtocol) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(6, 2));
  ServeSession session(inst, journal_options(base_config(), ""),
                       omn::util::ExecutionContext::serial());
  EXPECT_EQ(session.ready_line().rfind("ok 0 ready status=ok ", 0), 0u)
      << session.ready_line();

  EXPECT_EQ(session.handle_line(""), "");
  EXPECT_EQ(session.handle_line("# comment"), "");
  EXPECT_EQ(session.handle_line("frobnicate").rfind("err parse: ", 0), 0u);
  EXPECT_EQ(session.handle_line("edge-fail rd nope nope").rfind("err apply: ",
                                                                0),
            0u);
  EXPECT_EQ(session.stats().parse_errors, 1u);
  EXPECT_EQ(session.stats().apply_errors, 1u);

  const std::string refl = inst.reflector(0).name;
  const std::string ack = session.handle_line("capacity-set " + refl + " 9");
  EXPECT_EQ(ack.rfind("ok 1 capacity-set status=ok ", 0), 0u) << ack;
  EXPECT_NE(ack.find(" pivots="), std::string::npos) << ack;

  const std::string query = session.handle_line("query");
  EXPECT_NE(query.find(" digest="), std::string::npos) << query;

  // stats reports live counters without bumping the sequence number: the
  // capacity-set above is the one applied event and the one redesign
  // beyond the initial design, and the LP pivot counter is live.
  const std::string stats = session.handle_line("stats");
  EXPECT_EQ(stats.rfind("ok 1 stats ", 0), 0u) << stats;
  EXPECT_NE(stats.find(" events=1 "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" redesigns=2 "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" replayed=0 "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" journal_seq=1 "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" uptime_us="), std::string::npos) << stats;
  const auto count_of = [&stats](const std::string& key) {
    const std::size_t at = stats.find(" " + key + "=");
    EXPECT_NE(at, std::string::npos) << key << " missing: " << stats;
    return at == std::string::npos
               ? 0ll
               : std::stoll(stats.substr(at + key.size() + 2));
  };
  EXPECT_GT(count_of("pivots"), 0);
  EXPECT_GE(count_of("refactorizations"), 0);
  // A second stats call still does not advance the sequence.
  EXPECT_EQ(session.handle_line("stats").rfind("ok 1 stats ", 0), 0u);

  EXPECT_FALSE(session.done());
  EXPECT_EQ(session.handle_line("quit"), "ok 1 bye");
  EXPECT_TRUE(session.done());
}

std::string digest_of(const ServeSession& session) {
  return session.state().design_digest().hex();
}

TEST(ServeSession, ReplayConvergesToIdenticalDesign) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(8, 4));
  const std::string journal = temp_path("serve_replay_journal");
  const DesignerConfig cfg = serve_child_config();
  omn::serve::ChurnConfig churn;
  churn.seed = 31;
  const std::vector<Event> events =
      omn::serve::ChurnGenerator(inst, churn).take(10);

  std::string live_digest;
  {
    ServeSession session(inst, journal_options(cfg, journal),
                         omn::util::ExecutionContext::serial());
    for (const Event& event : events) {
      ASSERT_EQ(session.handle_line(event.to_line()).rfind("ok ", 0), 0u);
    }
    live_digest = digest_of(session);
    // Session dies here without quit — exactly what the journal is for.
  }

  ServeSession resumed = ServeSession::resume(
      journal_options(cfg, journal), omn::util::ExecutionContext::serial());
  EXPECT_EQ(resumed.stats().replayed, events.size());
  EXPECT_EQ(digest_of(resumed), live_digest);
  EXPECT_NE(resumed.ready_line().find("replayed=10"), std::string::npos);
  std::remove(journal.c_str());
}

TEST(ServeSession, ResumeDropsTornTailAndRejectsConfigMismatch) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(8, 4));
  const std::string journal = temp_path("serve_torn_journal");
  const DesignerConfig cfg = serve_child_config();
  omn::serve::ChurnConfig churn;
  churn.seed = 37;
  const std::vector<Event> events =
      omn::serve::ChurnGenerator(inst, churn).take(3);

  std::string digest_after_two;
  {
    ServeSession session(inst, journal_options(cfg, journal),
                         omn::util::ExecutionContext::serial());
    for (std::size_t i = 0; i < events.size(); ++i) {
      ASSERT_EQ(session.handle_line(events[i].to_line()).rfind("ok ", 0), 0u);
      if (i == 1) digest_after_two = digest_of(session);
    }
  }

  // Tear the last record as a crash mid-append would.
  const std::string bytes = slurp(journal);
  spit(journal, bytes.substr(0, bytes.size() - 7));
  ServeSession resumed = ServeSession::resume(
      journal_options(cfg, journal), omn::util::ExecutionContext::serial());
  EXPECT_EQ(resumed.stats().replayed, 2u);
  EXPECT_EQ(digest_of(resumed), digest_after_two);
  // The resume rewrote the journal canonically: the torn bytes are gone.
  EXPECT_EQ(slurp(journal).size(),
            Journal::encode(Journal::load(journal).header,
                            Journal::load(journal).events)
                .size());

  // A journal written under different design knobs must be refused.
  DesignerConfig other = cfg;
  other.c = cfg.c * 2;
  EXPECT_THROW((void)ServeSession::resume(journal_options(other, journal),
                                          omn::util::ExecutionContext::serial()),
               JournalError);
  std::remove(journal.c_str());
}

TEST(ServeSession, SnapshotCompactsTheJournal) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(8, 4));
  const std::string journal = temp_path("serve_snapshot_journal");
  const DesignerConfig cfg = serve_child_config();
  omn::serve::ChurnConfig churn;
  churn.seed = 41;
  const std::vector<Event> events =
      omn::serve::ChurnGenerator(inst, churn).take(6);

  std::string digest;
  {
    ServeSession session(inst, journal_options(cfg, journal),
                         omn::util::ExecutionContext::serial());
    for (const Event& event : events) {
      ASSERT_EQ(session.handle_line(event.to_line()).rfind("ok ", 0), 0u);
    }
    EXPECT_EQ(session.handle_line("snapshot").rfind("ok 6 snapshot ", 0), 0u);
    digest = digest_of(session);
  }
  // Compaction folded every event into the header's base instance.
  const JournalContents contents = Journal::load(journal);
  EXPECT_TRUE(contents.events.empty());
  ServeSession resumed = ServeSession::resume(
      journal_options(cfg, journal), omn::util::ExecutionContext::serial());
  EXPECT_EQ(contents.header.failed.size(),
            resumed.state().failed_edges().size());
  EXPECT_EQ(resumed.stats().replayed, 0u);
  EXPECT_EQ(digest_of(resumed), digest);
  std::remove(journal.c_str());
}

// ---------------------------------------------------------------------------
// SIGKILL crash replay (self-spawned daemon over pipes)

std::string read_line_from(omn::util::Subprocess& child) {
  std::string line;
  char byte = 0;
  while (child.read_exact(&byte, 1) == 1) {
    if (byte == '\n') return line;
    line.push_back(byte);
  }
  ADD_FAILURE() << "child stream ended mid-line: '" << line << "'";
  return line;
}

void send_line_to(omn::util::Subprocess& child, const std::string& line) {
  const std::string with_newline = line + "\n";
  ASSERT_TRUE(child.write_exact(with_newline.data(), with_newline.size()));
}

std::string field_of(const std::string& line, const std::string& key) {
  const std::size_t at = line.find(key + "=");
  EXPECT_NE(at, std::string::npos) << key << " in: " << line;
  if (at == std::string::npos) return "";
  const std::size_t start = at + key.size() + 1;
  const std::size_t end = line.find(' ', start);
  return line.substr(start, end == std::string::npos ? end : end - start);
}

TEST(ServeCrash, SigkilledDaemonReplaysToIdenticalDigest) {
  const std::string exe = omn::util::current_executable_path();
  ASSERT_FALSE(exe.empty());
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(8, 4));
  const std::string inst_path = temp_path("serve_crash_instance");
  const std::string journal = temp_path("serve_crash_journal");
  std::remove(journal.c_str());
  omn::net::save_file(inst, inst_path);

  omn::serve::ChurnConfig churn;
  churn.seed = 43;
  const std::vector<Event> events =
      omn::serve::ChurnGenerator(inst, churn).take(5);

  // Session A: feed 5 events, read 5 acks, then SIGKILL — no quit, no
  // chance to flush anything beyond what append() already forced out.
  auto child = omn::util::Subprocess::spawn(
      {exe, "serve-child", inst_path, journal});
  ASSERT_TRUE(child.valid());
  EXPECT_EQ(read_line_from(child).rfind("ok 0 ready ", 0), 0u);
  for (const Event& event : events) {
    send_line_to(child, event.to_line());
    const std::string ack = read_line_from(child);
    ASSERT_EQ(ack.rfind("ok ", 0), 0u) << ack;
  }
  child.kill();
  EXPECT_EQ(child.wait(), 128 + 9);

  // Session B resumes from the journal; its ready line carries the
  // replayed count and the converged digest.
  auto resumed = omn::util::Subprocess::spawn(
      {exe, "serve-child", inst_path, journal});
  const std::string ready = read_line_from(resumed);
  EXPECT_EQ(field_of(ready, "replayed"), "5");
  const std::string resumed_digest = field_of(ready, "digest");

  // Reference: the same stream applied in-process under the same config.
  DesignState reference(inst, serve_child_config(),
                        omn::util::ExecutionContext::serial());
  reference.redesign();
  for (const Event& event : events) {
    omn::serve::apply_event(reference, event);
    reference.redesign();
  }
  EXPECT_EQ(resumed_digest, reference.design_digest().hex());

  // And the resumed daemon keeps serving: one more event, clean quit.
  send_line_to(resumed, "query");
  EXPECT_EQ(field_of(read_line_from(resumed), "digest"), resumed_digest);
  send_line_to(resumed, "quit");
  EXPECT_EQ(read_line_from(resumed).rfind("ok 5 bye", 0), 0u);
  EXPECT_EQ(resumed.wait(), 0);

  std::remove(inst_path.c_str());
  std::remove(journal.c_str());
}

}  // namespace

// Self-spawned daemon entry for the crash tests: `test_serve serve-child
// <instance> <journal>` runs a ServeSession on stdin/stdout under the
// fixed serve_child_config(), resuming when the journal file exists.
int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "serve-child") {
    if (argc < 4) {
      std::fprintf(stderr,
                   "usage: test_serve serve-child <instance> <journal>\n");
      return 2;
    }
    ServeOptions options;
    options.config = serve_child_config();
    options.journal_path = argv[3];
    omn::util::ExecutionContext context =
        omn::util::ExecutionContext::serial();
    if (std::ifstream(options.journal_path).good()) {
      ServeSession session = ServeSession::resume(options, context);
      return session.run(std::cin, std::cout);
    }
    ServeSession session(omn::net::load_file(argv[2]), options, context);
    return session.run(std::cin, std::cout);
  }
  if (argc >= 3 && std::string(argv[1]) == "write-golden") {
    const std::string bytes = Journal::encode(golden_header(), golden_events());
    std::ofstream out(argv[2], std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return out.good() ? 0 : 1;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
