// Unit tests for streaming/batch statistics.
#include "omn/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using omn::util::RunningStats;

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesBatchFormulas) {
  const std::vector<double> data{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : data) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), omn::util::mean(data));
  EXPECT_NEAR(s.stddev(), omn::util::stddev(data), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_DOUBLE_EQ(s.sum(), 31.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(omn::util::percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(omn::util::percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(omn::util::percentile(v, 0.5), 25.0);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> v{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(omn::util::percentile(v, 0.5), 25.0);
}

TEST(Percentile, RejectsBadQuantile) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(omn::util::percentile(v, 1.5), std::invalid_argument);
  EXPECT_THROW(omn::util::percentile(v, -0.1), std::invalid_argument);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(omn::util::percentile({}, 0.5), 0.0);
}

TEST(GeometricMean, KnownValue) {
  const std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(omn::util::geometric_mean(v), 4.0, 1e-12);
}

TEST(GeometricMean, RejectsNonPositive) {
  const std::vector<double> v{1.0, 0.0};
  EXPECT_THROW(omn::util::geometric_mean(v), std::invalid_argument);
}

TEST(Summary, ReportsAllFields) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const omn::util::Summary s = omn::util::summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_FALSE(s.to_string().empty());
}

}  // namespace
