// Unit tests for the LP model container.
#include "omn/lp/model.hpp"

#include <gtest/gtest.h>

namespace {

using omn::lp::Model;
using omn::lp::RowSense;

TEST(LpModel, AddVariableValidatesBounds) {
  Model m;
  EXPECT_EQ(m.add_variable(0.0, 1.0, 2.0), 0);
  EXPECT_EQ(m.add_variable(0.0, omn::lp::kInfinity, 0.0), 1);
  EXPECT_THROW(m.add_variable(2.0, 1.0, 0.0), std::invalid_argument);
}

TEST(LpModel, AddCoefficientChecksIndices) {
  Model m;
  const int v = m.add_variable(0.0, 1.0, 0.0);
  const int r = m.add_row(RowSense::kLessEqual, 1.0);
  m.add_coefficient(r, v, 2.0);
  EXPECT_THROW(m.add_coefficient(r + 1, v, 1.0), std::out_of_range);
  EXPECT_THROW(m.add_coefficient(r, v + 1, 1.0), std::out_of_range);
}

TEST(LpModel, ZeroCoefficientIgnored) {
  Model m;
  const int v = m.add_variable(0.0, 1.0, 0.0);
  const int r = m.add_row(RowSense::kLessEqual, 1.0);
  m.add_coefficient(r, v, 0.0);
  EXPECT_EQ(m.num_nonzeros(), 0u);
}

TEST(LpModel, RowActivities) {
  Model m;
  const int a = m.add_variable(0.0, 10.0, 0.0);
  const int b = m.add_variable(0.0, 10.0, 0.0);
  const int r0 = m.add_row(RowSense::kLessEqual, 5.0);
  const int r1 = m.add_row(RowSense::kGreaterEqual, 1.0);
  m.add_coefficient(r0, a, 1.0);
  m.add_coefficient(r0, b, 2.0);
  m.add_coefficient(r1, b, 1.0);
  const auto act = m.row_activities({1.0, 2.0});
  EXPECT_DOUBLE_EQ(act[0], 5.0);
  EXPECT_DOUBLE_EQ(act[1], 2.0);
}

TEST(LpModel, ObjectiveValue) {
  Model m;
  m.add_variable(0.0, 1.0, 3.0);
  m.add_variable(0.0, 1.0, -2.0);
  EXPECT_DOUBLE_EQ(m.objective_value({1.0, 0.5}), 2.0);
}

TEST(LpModel, MaxInfeasibilityMeasuresWorstViolation) {
  Model m;
  const int v = m.add_variable(0.0, 1.0, 0.0);
  const int r = m.add_row(RowSense::kGreaterEqual, 3.0);
  m.add_coefficient(r, v, 1.0);
  // x = 0.5: row shortfall 2.5, bounds fine.
  EXPECT_DOUBLE_EQ(m.max_infeasibility({0.5}), 2.5);
  // x = 2.0 violates the upper bound by 1 but the row by 1.
  EXPECT_DOUBLE_EQ(m.max_infeasibility({2.0}), 1.0);
}

TEST(LpModel, EqualitySenseInfeasibilityIsAbsolute) {
  Model m;
  const int v = m.add_variable(-5.0, 5.0, 0.0);
  const int r = m.add_row(RowSense::kEqual, 1.0);
  m.add_coefficient(r, v, 1.0);
  EXPECT_DOUBLE_EQ(m.max_infeasibility({3.0}), 2.0);
  EXPECT_DOUBLE_EQ(m.max_infeasibility({-1.0}), 2.0);
}

TEST(LpModel, ValidateRejectsInfiniteLowerBound) {
  Model m;
  m.add_variable(0.0, 1.0, 0.0);
  m.variable(0).lower = -omn::lp::kInfinity;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(LpModel, DimensionMismatchThrows) {
  Model m;
  m.add_variable(0.0, 1.0, 0.0);
  EXPECT_THROW(m.objective_value({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(m.row_activities({}), std::invalid_argument);
}

}  // namespace
