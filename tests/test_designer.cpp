// End-to-end tests of the OverlayDesigner pipeline (TEST_P across
// topologies/seeds): status, structural consistency, the paper's factor-4
// weight guarantee, fanout bound, and cost vs the LP lower bound.
#include "omn/core/designer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "omn/topo/akamai.hpp"
#include "omn/topo/synthetic.hpp"

namespace {

using omn::core::DesignerConfig;
using omn::core::DesignResult;
using omn::core::DesignStatus;
using omn::core::OverlayDesigner;

TEST(Designer, StatusStrings) {
  EXPECT_EQ(omn::core::to_string(DesignStatus::kOk), "ok");
  EXPECT_EQ(omn::core::to_string(DesignStatus::kLpInfeasible), "lp-infeasible");
}

TEST(Designer, ReportsInfeasibleInstance) {
  omn::net::OverlayInstance inst;
  inst.add_source(omn::net::Source{"s", 1.0});
  inst.add_reflector(omn::net::Reflector{"r", 1.0, 2.0, 0});
  inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, 0, 1.0, 0.1});
  inst.add_sink(omn::net::Sink{"unreachable", 0, 0.9});
  // No rd edge at all.
  const DesignResult r = OverlayDesigner().design(inst);
  EXPECT_EQ(r.status, DesignStatus::kLpInfeasible);
}

TEST(Designer, DeterministicPerSeed) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(20, 3));
  DesignerConfig cfg;
  cfg.seed = 99;
  const DesignResult a = OverlayDesigner(cfg).design(inst);
  const DesignResult b = OverlayDesigner(cfg).design(inst);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.design.x, b.design.x);
  EXPECT_EQ(a.design.z, b.design.z);
  EXPECT_DOUBLE_EQ(a.evaluation.total_cost, b.evaluation.total_cost);
}

TEST(Designer, RetriesImproveOrKeepQuality) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(24, 5));
  DesignerConfig one;
  one.rounding_attempts = 1;
  DesignerConfig many = one;
  many.rounding_attempts = 8;
  const DesignResult a = OverlayDesigner(one).design(inst);
  const DesignResult b = OverlayDesigner(many).design(inst);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Attempt selection compares ratios with a relative tolerance (so a
  // tolerance-tied attempt with better cost may win); allow that slack.
  EXPECT_GE(b.evaluation.min_weight_ratio,
            a.evaluation.min_weight_ratio - 1e-8);
}

// The parallel attempt path must pick the same winner, bit for bit, as the
// serial path: attempt seeds depend only on (config seed, attempt index)
// and the winner scan runs in index order either way.
TEST(Designer, ParallelAttemptsBitIdenticalToSerial) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(24, 7));
  DesignerConfig serial;
  serial.seed = 21;
  serial.rounding_attempts = 6;
  serial.c = 0.5;  // keep the coins genuinely random (see E12)
  serial.threads = 1;
  DesignerConfig parallel = serial;
  parallel.threads = 4;

  const DesignResult s = OverlayDesigner(serial).design(inst);
  const DesignResult p = OverlayDesigner(parallel).design(inst);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(s.winning_attempt, p.winning_attempt);
  EXPECT_EQ(s.design.x, p.design.x);
  EXPECT_EQ(s.design.y, p.design.y);
  EXPECT_EQ(s.design.z, p.design.z);
  EXPECT_EQ(s.evaluation.total_cost, p.evaluation.total_cost);
  EXPECT_EQ(s.evaluation.min_weight_ratio, p.evaluation.min_weight_ratio);
}

TEST(Designer, ParallelAttemptsBitIdenticalWithColorConstraints) {
  auto topo_cfg = omn::topo::global_event_config(20, 9);
  topo_cfg.num_isps = 3;
  const auto inst = omn::topo::make_akamai_like(topo_cfg);
  DesignerConfig serial;
  serial.seed = 5;
  serial.rounding_attempts = 4;
  serial.color_constraints = true;
  serial.threads = 1;
  DesignerConfig parallel = serial;
  parallel.threads = 0;  // auto

  const DesignResult s = OverlayDesigner(serial).design(inst);
  const DesignResult p = OverlayDesigner(parallel).design(inst);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(s.winning_attempt, p.winning_attempt);
  EXPECT_EQ(s.design.x, p.design.x);
  EXPECT_EQ(s.evaluation.total_cost, p.evaluation.total_cost);
}

// The winner must not depend on which execution context ran the attempts:
// a caller-owned pool, the global context, and an inline serial context
// all produce the bit-identical design.
TEST(Designer, InjectedContextBitIdenticalAcrossContexts) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(20, 31));
  DesignerConfig cfg;
  cfg.seed = 17;
  cfg.rounding_attempts = 5;
  cfg.c = 0.5;
  const OverlayDesigner designer(cfg);

  const omn::util::ExecutionContext own(3);
  const DesignResult a = designer.design(inst, own);
  const DesignResult b = designer.design(inst, omn::util::ExecutionContext::global());
  const DesignResult c = designer.design(inst, omn::util::ExecutionContext::serial());
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.winning_attempt, b.winning_attempt);
  EXPECT_EQ(a.winning_attempt, c.winning_attempt);
  EXPECT_EQ(a.design.x, b.design.x);
  EXPECT_EQ(a.design.x, c.design.x);
  EXPECT_EQ(a.evaluation.total_cost, b.evaluation.total_cost);
  EXPECT_EQ(a.evaluation.total_cost, c.evaluation.total_cost);
}

// Regression: better_evaluation used to compare min_weight_ratio with
// exact !=, so an ulp of FMA noise could flip the winner across compilers.
TEST(Designer, BetterEvaluationToleratesUlpNoise) {
  omn::core::Evaluation a;
  a.min_weight_ratio = 0.3;
  a.sinks_meeting_demand = 5;
  a.total_cost = 100.0;
  omn::core::Evaluation b = a;
  b.min_weight_ratio = 0.3 + 1e-13;  // ulp noise, not a real difference
  b.sinks_meeting_demand = 4;

  // a wins on the sink tie-break despite b's infinitesimally higher ratio.
  EXPECT_TRUE(omn::core::better_evaluation(a, b));
  EXPECT_FALSE(omn::core::better_evaluation(b, a));

  // A genuine ratio difference still dominates everything else.
  omn::core::Evaluation c = a;
  c.min_weight_ratio = 0.4;
  c.sinks_meeting_demand = 0;
  c.total_cost = 1e9;
  EXPECT_TRUE(omn::core::better_evaluation(c, a));
  EXPECT_FALSE(omn::core::better_evaluation(a, c));

  // Cost within tolerance is a tie: neither is better, so the serial scan
  // keeps the earlier attempt deterministically.
  omn::core::Evaluation d = a;
  d.total_cost = 100.0 + 1e-10;
  EXPECT_FALSE(omn::core::better_evaluation(a, d));
  EXPECT_FALSE(omn::core::better_evaluation(d, a));
}

class DesignerEndToEnd
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(DesignerEndToEnd, GuaranteesHold) {
  const auto [sinks, seed] = GetParam();
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(sinks, seed));
  DesignerConfig cfg;
  cfg.seed = seed;
  cfg.rounding_attempts = 3;
  const DesignResult r = OverlayDesigner(cfg).design(inst);
  ASSERT_EQ(r.status, DesignStatus::kOk);

  // Structure.
  EXPECT_TRUE(r.evaluation.consistent);
  EXPECT_EQ(r.evaluation.sinks_unserved, 0);

  // Paper guarantees: weight >= W/4, fanout <= 4F.
  EXPECT_GE(r.evaluation.min_weight_ratio, 0.25 - 1e-9);
  EXPECT_LE(r.evaluation.max_fanout_utilization, 4.0 + 1e-9);

  // Cost: above the LP lower bound, below the c log n envelope (with slack
  // for the prune stage and constant factors).
  EXPECT_GE(r.cost_ratio, 1.0 - 1e-9);
  const double envelope = std::max(cfg.c * std::log(sinks), 1.0) * 4.0;
  EXPECT_LE(r.cost_ratio, envelope);
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndSeeds, DesignerEndToEnd,
    ::testing::Combine(::testing::Values(12, 24, 36),
                       ::testing::Values(1u, 2u, 3u, 4u)));

TEST(Designer, ColorConstraintsReduceColorConcentration) {
  auto cfg_topo = omn::topo::global_event_config(36, 11);
  cfg_topo.num_isps = 4;
  const auto inst = omn::topo::make_akamai_like(cfg_topo);

  DesignerConfig plain;
  plain.seed = 1;
  DesignerConfig colored = plain;
  colored.color_constraints = true;

  const DesignResult a = OverlayDesigner(plain).design(inst);
  const DesignResult b = OverlayDesigner(colored).design(inst);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The colored design must not concentrate more copies per ISP than the
  // ST bound; typically far fewer than the unconstrained design's max.
  EXPECT_LE(b.evaluation.max_color_copies, 8);
}

TEST(Designer, BandwidthExtensionRespectsScaledFanout) {
  auto cfg_topo = omn::topo::global_event_config(24, 13);
  auto inst = omn::topo::make_akamai_like(cfg_topo);
  for (int k = 0; k < inst.num_sources(); ++k) {
    inst.source(k).bandwidth = k == 0 ? 0.3 : 3.0;  // 300kbps vs 3Mbps
  }
  DesignerConfig cfg;
  cfg.bandwidth_extension = true;
  const DesignResult r = OverlayDesigner(cfg).design(inst);
  ASSERT_TRUE(r.ok());
  // Bandwidth-weighted utilization also obeys the factor-4 envelope.
  EXPECT_LE(r.evaluation.max_fanout_utilization, 4.0 + 1e-9);
  EXPECT_GE(r.evaluation.min_weight_ratio, 0.25 - 1e-9);
}

TEST(Designer, AllExtensionsCombined) {
  // Colors + bandwidth + rd capacities together: the pipeline must still
  // produce a consistent design meeting the factor-4 guarantee.
  auto topo_cfg = omn::topo::global_event_config(28, 15);
  topo_cfg.num_isps = 3;
  topo_cfg.num_sources = 2;
  topo_cfg.candidates_per_sink = 10;
  auto inst = omn::topo::make_akamai_like(topo_cfg);
  inst.source(0).bandwidth = 0.5;
  inst.source(1).bandwidth = 2.0;
  for (std::size_t e = 0; e < inst.rd_edges().size(); e += 7) {
    inst.rd_edge(static_cast<int>(e)).capacity = 0.5;
  }
  DesignerConfig cfg;
  cfg.color_constraints = true;
  cfg.bandwidth_extension = true;
  cfg.rd_capacities = true;
  cfg.rounding_attempts = 4;
  const DesignResult r = OverlayDesigner(cfg).design(inst);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.evaluation.consistent);
  EXPECT_EQ(r.evaluation.sinks_unserved, 0);
  EXPECT_GE(r.evaluation.min_weight_ratio, 0.25 - 1e-9);
  EXPECT_LE(r.evaluation.max_fanout_utilization, 4.0 + 1e-9);
  EXPECT_LE(r.evaluation.max_color_copies, 8);
}

TEST(Designer, LpLowerBoundIsActuallyLower) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(30, 17));
  const DesignResult r = OverlayDesigner().design(inst);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.lp_objective, r.evaluation.total_cost + 1e-6);
  EXPECT_GT(r.lp_objective, 0.0);
}

TEST(Designer, TimingsPopulated) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(16, 19));
  const DesignResult r = OverlayDesigner().design(inst);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.lp_seconds, 0.0);
  EXPECT_GE(r.rounding_seconds, 0.0);
  EXPECT_GT(r.lp_iterations, 0);
}

// Each stage is timed independently: lp_seconds was once computed as
// (total - rounding) and could go negative; the design_from_lp path must
// report 0 LP seconds (the caller solved the LP), never garbage.
TEST(Designer, StageTimingsAreIndependent) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(16, 23));
  const auto lp = omn::core::build_overlay_lp(inst);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);

  DesignerConfig cfg;
  cfg.rounding_attempts = 2;
  const DesignResult direct =
      OverlayDesigner(cfg).design_from_lp(inst, lp, sol);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.lp_seconds, 0.0);
  EXPECT_GE(direct.rounding_seconds, 0.0);

  const DesignResult full = OverlayDesigner(cfg).design(inst);
  ASSERT_TRUE(full.ok());
  EXPECT_GE(full.lp_seconds, 0.0);
  EXPECT_GE(full.rounding_seconds, 0.0);
}

}  // namespace
