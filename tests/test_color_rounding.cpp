// Tests for the Section-6.5 color-constrained rounding.
#include "omn/core/color_rounding.hpp"

#include <gtest/gtest.h>

#include "omn/core/evaluator.hpp"
#include "omn/core/rounding.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/topo/akamai.hpp"

namespace {

using omn::core::build_overlay_lp;
using omn::core::color_constrained_round;
using omn::core::ColorRoundingOptions;
using omn::core::ColorRoundResult;
using omn::core::LpBuildOptions;
using omn::core::OverlayLp;

struct Prepared {
  omn::net::OverlayInstance inst;
  OverlayLp lp;
  std::vector<double> x_bar;
};

Prepared prepare(int sinks, std::uint64_t seed) {
  Prepared p;
  auto cfg = omn::topo::global_event_config(sinks, seed);
  cfg.num_isps = 4;
  p.inst = omn::topo::make_akamai_like(cfg);
  LpBuildOptions opts;
  opts.color_constraints = true;
  p.lp = build_overlay_lp(p.inst, opts);
  const auto sol = omn::lp::SimplexSolver().solve(p.lp.model);
  EXPECT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  const auto frac = p.lp.extract(p.inst, sol.x);
  omn::core::RoundingOptions ropt;
  ropt.c = 8.0;
  ropt.seed = seed;
  p.x_bar = omn::core::randomized_round(p.inst, p.lp, frac, ropt).x;
  return p;
}

TEST(ColorRounding, ProducesIntegralSelection) {
  Prepared p = prepare(24, 3);
  ColorRoundingOptions opt;
  opt.seed = 5;
  const ColorRoundResult r = color_constrained_round(p.inst, p.lp, p.x_bar, opt);
  EXPECT_EQ(r.x.size(), p.inst.rd_edges().size());
  EXPECT_GT(r.boxes_total, 0);
  EXPECT_GT(r.boxes_served, 0);
}

TEST(ColorRounding, DeterministicPerSeed) {
  Prepared p = prepare(20, 7);
  ColorRoundingOptions opt;
  opt.seed = 11;
  const auto a = color_constrained_round(p.inst, p.lp, p.x_bar, opt);
  const auto b = color_constrained_round(p.inst, p.lp, p.x_bar, opt);
  EXPECT_EQ(a.x, b.x);
}

TEST(ColorRounding, SelectionSubsetOfPositiveXBar) {
  Prepared p = prepare(20, 9);
  ColorRoundingOptions opt;
  const auto r = color_constrained_round(p.inst, p.lp, p.x_bar, opt);
  for (std::size_t id = 0; id < r.x.size(); ++id) {
    if (r.x[id]) {
      EXPECT_GT(p.x_bar[id], 0.0) << "edge " << id;
    }
  }
}

TEST(ColorRounding, ColorMultiplicityWithinStBound) {
  // ST additive bound: <= u + 7; with u = 1 copies per (sink, color) stay
  // small.  Check over several seeds.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Prepared p = prepare(30, seed);
    ColorRoundingOptions opt;
    opt.seed = seed;
    const auto r = color_constrained_round(p.inst, p.lp, p.x_bar, opt);
    omn::core::Design d = omn::core::Design::zeros(p.inst);
    d.x = r.x;
    d.close_upward(p.inst);
    const auto ev = omn::core::evaluate(p.inst, d);
    EXPECT_LE(ev.max_color_copies, 8) << "seed " << seed;  // 1 + 7
  }
}

TEST(ColorRounding, EmptyXBarGivesEmptyResult) {
  Prepared p = prepare(12, 13);
  std::fill(p.x_bar.begin(), p.x_bar.end(), 0.0);
  ColorRoundingOptions opt;
  const auto r = color_constrained_round(p.inst, p.lp, p.x_bar, opt);
  EXPECT_EQ(r.boxes_total, 0);
  for (auto v : r.x) EXPECT_EQ(v, 0);
}

TEST(ColorRounding, CostFilterDropsAbsurdPairs) {
  // Build an instance where one candidate edge costs orders of magnitude
  // more than the whole fractional solution.
  omn::net::OverlayInstance inst;
  inst.add_source(omn::net::Source{"s", 1.0});
  for (int i = 0; i < 2; ++i) {
    inst.add_reflector(omn::net::Reflector{"r" + std::to_string(i), 0.1, 4.0, i});
    inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, i, 0.1, 0.05});
  }
  inst.add_sink(omn::net::Sink{"d", 0, 0.9});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{0, 0, 1.0, 0.05, {}});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{1, 0, 100000.0, 0.05, {}});
  LpBuildOptions lopts;
  lopts.color_constraints = true;
  const OverlayLp lp = build_overlay_lp(inst, lopts);
  // The absurd pair carries a sliver of x̄ mass, so the stage cost stays
  // small and the 4X filter fires on it.
  const std::vector<double> x_bar{0.6, 0.01};
  ColorRoundingOptions opt;
  const auto r = color_constrained_round(inst, lp, x_bar, opt);
  EXPECT_GE(r.pairs_dropped_by_cost, 1);
  EXPECT_EQ(r.x[1], 0);  // the absurd pair must not be selected
}

TEST(ColorRounding, FallsBackWhenColorsUnsatisfiable) {
  // Single color, many boxes per sink: the color cap cannot hold, the
  // implementation must relax and eventually fall back rather than fail.
  omn::net::OverlayInstance inst;
  inst.add_source(omn::net::Source{"s", 1.0});
  for (int i = 0; i < 8; ++i) {
    inst.add_reflector(omn::net::Reflector{"r" + std::to_string(i), 0.1, 8.0, 0});
    inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, i, 0.1, 0.3});
  }
  inst.add_sink(omn::net::Sink{"d", 0, 0.9999});
  for (int i = 0; i < 8; ++i) {
    inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{i, 0, 1.0, 0.3, {}});
  }
  LpBuildOptions lopts;  // note: color constraints OFF in the base LP so a
  lopts.color_constraints = false;  // large x̄ mass is possible
  const OverlayLp lp = build_overlay_lp(inst, lopts);
  std::vector<double> x_bar(8, 0.9);
  ColorRoundingOptions opt;
  opt.color_capacity_scaled = 1;  // absurdly tight to force relaxation
  opt.relax_retries = 1;
  const auto r = color_constrained_round(inst, lp, x_bar, opt);
  // Either a relaxed capacity worked or the fallback kicked in; both must
  // produce a usable selection.
  int selected = 0;
  for (auto v : r.x) selected += v;
  EXPECT_GT(selected, 0);
}

}  // namespace
