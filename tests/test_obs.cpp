// Tests for omn::obs — the export half of the tracing stack.
//
//   - trace codec: ProcessTrace round-trips bit-exactly; truncation,
//     bad magic, version skew, checksum mismatch, and trailing garbage
//     are all rejected (a corrupt worker frame must never become a
//     half-parsed timeline).
//   - chrome_trace_json: structural golden
//     tests/data/chrome_trace_golden.json pins the normalized
//     serialization byte for byte (`test_obs write-golden <path>`
//     regenerates it on a deliberate format change); offset placement
//     and metadata lanes are checked on the real-timestamp path.
//   - collector: deposits merge per pid (earliest offset wins), drain
//     empties the mailbox.
//   - merge_process_trace: per-tid concatenation, counter maxima.
#include "omn/obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "omn/obs/collector.hpp"
#include "omn/obs/timeline.hpp"
#include "omn/obs/trace_codec.hpp"
#include "omn/util/trace.hpp"

namespace {

using omn::obs::ProcessTrace;
using omn::obs::TimelineProcess;
using omn::util::ThreadTrace;
using omn::util::TraceEvent;

std::string data_path(const std::string& file) {
  const char* dir = std::getenv("OMN_TEST_DATA_DIR");
  return (dir != nullptr ? std::string(dir) : std::string("tests/data")) +
         "/" + file;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TraceEvent make_event(TraceEvent::Kind kind, std::string name,
                      std::uint64_t tick, std::uint64_t micros,
                      double value = 0.0) {
  TraceEvent event;
  event.kind = kind;
  event.name = std::move(name);
  event.tick = tick;
  event.micros = micros;
  event.value = value;
  return event;
}

/// The fixed two-process timeline every serialization test (and the
/// committed golden) is built from: a main process with two threads
/// covering all four event kinds plus counters, and one worker lane.
ProcessTrace fixture_main_trace() {
  ProcessTrace trace;
  trace.name = "main";
  ThreadTrace t0;
  t0.tid = 0;
  t0.events.push_back(
      make_event(TraceEvent::Kind::kBegin, "designer.design", 0, 10));
  t0.events.push_back(make_event(TraceEvent::Kind::kBegin, "lp.solve", 1, 20));
  t0.events.push_back(
      make_event(TraceEvent::Kind::kInstant, "lp.refactorize", 2, 30));
  t0.events.push_back(
      make_event(TraceEvent::Kind::kCounter, "lp.pivots", 3, 40, 7.0));
  t0.events.push_back(make_event(TraceEvent::Kind::kEnd, "lp.solve", 4, 50));
  t0.events.push_back(
      make_event(TraceEvent::Kind::kEnd, "designer.design", 5, 60));
  trace.threads.push_back(std::move(t0));
  ThreadTrace t1;
  t1.tid = 1;
  t1.events.push_back(make_event(TraceEvent::Kind::kBegin, "sweep.cell", 0, 15));
  t1.events.push_back(make_event(TraceEvent::Kind::kEnd, "sweep.cell", 1, 25));
  trace.threads.push_back(std::move(t1));
  trace.counters.emplace_back("cache.hits", 3);
  trace.counters.emplace_back("lp.solves", 2);
  return trace;
}

ProcessTrace fixture_worker_trace() {
  ProcessTrace trace;
  trace.name = "worker 1";
  ThreadTrace t0;
  t0.tid = 0;
  t0.events.push_back(
      make_event(TraceEvent::Kind::kBegin, "designer.attempt", 0, 5));
  t0.events.push_back(
      make_event(TraceEvent::Kind::kEnd, "designer.attempt", 1, 9));
  trace.threads.push_back(std::move(t0));
  trace.counters.emplace_back("lp.solves", 1);
  return trace;
}

std::vector<TimelineProcess> fixture_timeline() {
  std::vector<TimelineProcess> processes;
  processes.push_back(TimelineProcess{0, 0, fixture_main_trace()});
  processes.push_back(TimelineProcess{1, 1000, fixture_worker_trace()});
  return processes;
}

// ---- trace codec ----------------------------------------------------------

TEST(TraceCodec, RoundTripsEveryField) {
  const ProcessTrace original = fixture_main_trace();
  const std::string bytes = omn::obs::encode_trace(original);
  ProcessTrace decoded;
  ASSERT_TRUE(omn::obs::decode_trace(bytes, decoded));
  EXPECT_EQ(decoded.name, original.name);
  ASSERT_EQ(decoded.threads.size(), original.threads.size());
  for (std::size_t t = 0; t < original.threads.size(); ++t) {
    SCOPED_TRACE("thread " + std::to_string(t));
    EXPECT_EQ(decoded.threads[t].tid, original.threads[t].tid);
    ASSERT_EQ(decoded.threads[t].events.size(),
              original.threads[t].events.size());
    for (std::size_t n = 0; n < original.threads[t].events.size(); ++n) {
      const TraceEvent& a = original.threads[t].events[n];
      const TraceEvent& b = decoded.threads[t].events[n];
      EXPECT_EQ(b.kind, a.kind);
      EXPECT_EQ(b.name, a.name);
      EXPECT_EQ(b.tick, a.tick);
      EXPECT_EQ(b.micros, a.micros);
      EXPECT_EQ(b.value, a.value);
    }
  }
  EXPECT_EQ(decoded.counters, original.counters);
}

TEST(TraceCodec, EmptyTraceRoundTrips) {
  ProcessTrace empty;
  empty.name = "idle";
  const std::string bytes = omn::obs::encode_trace(empty);
  ProcessTrace decoded;
  ASSERT_TRUE(omn::obs::decode_trace(bytes, decoded));
  EXPECT_EQ(decoded.name, "idle");
  EXPECT_TRUE(decoded.threads.empty());
  EXPECT_TRUE(decoded.counters.empty());
}

TEST(TraceCodec, RejectsEveryMalformation) {
  const std::string good = omn::obs::encode_trace(fixture_main_trace());
  ProcessTrace ignored;
  ASSERT_TRUE(omn::obs::decode_trace(good, ignored));

  // Truncation at every prefix length.
  for (std::size_t keep = 0; keep < good.size(); ++keep) {
    EXPECT_FALSE(omn::obs::decode_trace(good.substr(0, keep), ignored))
        << "prefix of " << keep << " bytes was accepted";
  }
  // Trailing garbage.
  EXPECT_FALSE(omn::obs::decode_trace(good + "x", ignored));
  // Bad magic.
  std::string bad_magic = good;
  bad_magic[0] ^= 1;
  EXPECT_FALSE(omn::obs::decode_trace(bad_magic, ignored));
  // Version skew (u8 after the u32 magic).
  std::string bad_version = good;
  bad_version[4] = 2;
  EXPECT_FALSE(omn::obs::decode_trace(bad_version, ignored));
  // Any payload flip trips the trailing checksum.
  std::string bad_payload = good;
  bad_payload[good.size() / 2] ^= 1;
  EXPECT_FALSE(omn::obs::decode_trace(bad_payload, ignored));
}

// ---- chrome trace export --------------------------------------------------

TEST(ChromeTrace, GoldenNormalizedSerializationIsByteStable) {
  // Committed golden pins the normalized (tick-timestamp) serialization:
  // key order, metadata lanes, instant scope, counter tracks.  Any
  // format change must regenerate it with `test_obs write-golden` — an
  // explicit, reviewed decision, like the dist frame golden.
  const std::string golden = slurp(data_path("chrome_trace_golden.json"));
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(omn::obs::chrome_trace_json(fixture_timeline(),
                                        /*normalize_timestamps=*/true) +
                "\n",
            golden);
}

TEST(ChromeTrace, RealTimestampsApplyTheProcessOffset) {
  const std::string json =
      omn::obs::chrome_trace_json(fixture_timeline(),
                                  /*normalize_timestamps=*/false);
  // Worker events land at offset + micros on the shared timeline...
  EXPECT_NE(json.find("1005"), std::string::npos);
  EXPECT_NE(json.find("1009"), std::string::npos);
  // ...while normalized output uses per-thread ticks and never sees the
  // offset.
  const std::string normalized =
      omn::obs::chrome_trace_json(fixture_timeline(),
                                  /*normalize_timestamps=*/true);
  EXPECT_EQ(normalized.find("1005"), std::string::npos);
}

TEST(ChromeTrace, EveryProcessGetsANameLane) {
  const std::string json = omn::obs::chrome_trace_json(fixture_timeline());
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("main"), std::string::npos);
  EXPECT_NE(json.find("worker 1"), std::string::npos);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
}

// ---- collector ------------------------------------------------------------

TEST(Collector, DepositsMergePerPidAndDrainEmptiesTheMailbox) {
  omn::obs::take_child_traces();  // discard other tests' leftovers

  omn::obs::add_child_trace(TimelineProcess{2, 500, fixture_worker_trace()});
  omn::obs::add_child_trace(TimelineProcess{1, 300, fixture_worker_trace()});
  // Second deposit for pid 1, earlier offset: merged, earliest wins.
  ProcessTrace later = fixture_worker_trace();
  later.counters = {{"lp.solves", 5}};
  omn::obs::add_child_trace(TimelineProcess{1, 100, std::move(later)});

  std::vector<TimelineProcess> taken = omn::obs::take_child_traces();
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].pid, 1u);
  EXPECT_EQ(taken[0].offset_micros, 100);
  EXPECT_EQ(taken[1].pid, 2u);
  EXPECT_EQ(taken[1].offset_micros, 500);
  // pid 1 holds both deposits: its tid-0 stream has both span pairs and
  // the counter kept the maximum.
  ASSERT_EQ(taken[0].trace.threads.size(), 1u);
  EXPECT_EQ(taken[0].trace.threads[0].events.size(), 4u);
  EXPECT_EQ(taken[0].trace.counters,
            (std::vector<std::pair<std::string, std::uint64_t>>{
                {"lp.solves", 5}}));

  EXPECT_TRUE(omn::obs::take_child_traces().empty());
}

// ---- merge_process_trace --------------------------------------------------

TEST(MergeProcessTrace, ConcatenatesPerTidAndKeepsCounterMaxima) {
  ProcessTrace into = fixture_main_trace();
  ProcessTrace from;
  from.name = "main";
  ThreadTrace t0;
  t0.tid = 0;
  t0.events.push_back(
      make_event(TraceEvent::Kind::kBegin, "designer.design", 6, 70));
  t0.events.push_back(
      make_event(TraceEvent::Kind::kEnd, "designer.design", 7, 80));
  from.threads.push_back(std::move(t0));
  ThreadTrace t2;
  t2.tid = 2;
  t2.events.push_back(make_event(TraceEvent::Kind::kInstant, "new.thread", 0, 75));
  from.threads.push_back(std::move(t2));
  from.counters.emplace_back("cache.hits", 9);
  from.counters.emplace_back("cache.misses", 1);

  omn::obs::merge_process_trace(into, from);
  ASSERT_EQ(into.threads.size(), 3u);
  // tid 0: the original six events plus the two appended ones, in order.
  EXPECT_EQ(into.threads[0].events.size(), 8u);
  EXPECT_EQ(into.threads[0].events.back().tick, 7u);
  // tid 2 arrived whole.
  bool found_new_thread = false;
  for (const ThreadTrace& thread : into.threads) {
    if (thread.tid == 2) {
      found_new_thread = true;
      ASSERT_EQ(thread.events.size(), 1u);
      EXPECT_EQ(thread.events[0].name, "new.thread");
    }
  }
  EXPECT_TRUE(found_new_thread);
  // Counters: max per name, union of names.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t lp_solves = 0;
  for (const auto& [name, value] : into.counters) {
    if (name == "cache.hits") cache_hits = value;
    if (name == "cache.misses") cache_misses = value;
    if (name == "lp.solves") lp_solves = value;
  }
  EXPECT_EQ(cache_hits, 9u);
  EXPECT_EQ(cache_misses, 1u);
  EXPECT_EQ(lp_solves, 2u);
}

// ---- drain_process_trace --------------------------------------------------

TEST(DrainProcessTrace, CapturesSpansAndCounterSnapshot) {
  omn::util::Trace::drain();  // discard earlier tests' events
  omn::util::Trace::set_enabled(true);
  { OMN_TRACE_SPAN("obs.test_span"); }
  OMN_COUNTER_ADD("obs.test_counter", 11);
  ProcessTrace trace = omn::obs::drain_process_trace("test process");
  omn::util::Trace::set_enabled(false);

  EXPECT_EQ(trace.name, "test process");
  bool found_span = false;
  for (const ThreadTrace& thread : trace.threads) {
    for (const TraceEvent& event : thread.events) {
      found_span = found_span || event.name == "obs.test_span";
    }
  }
  EXPECT_TRUE(found_span);
  bool found_counter = false;
  for (const auto& [name, value] : trace.counters) {
    if (name == "obs.test_counter") {
      found_counter = true;
      EXPECT_GE(value, 11u);
    }
  }
  EXPECT_TRUE(found_counter);
}

}  // namespace

// `test_obs write-golden <path>` regenerates the committed normalized
// chrome-trace golden from the fixture timeline (deliberate format
// changes only).
int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "write-golden") {
    std::ofstream out(argv[2], std::ios::binary | std::ios::trunc);
    out << omn::obs::chrome_trace_json(fixture_timeline(),
                                       /*normalize_timestamps=*/true)
        << "\n";
    return out.good() ? 0 : 1;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
