// Unit tests for the thread pool used by the Monte Carlo simulator.
#include "omn/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace {

using omn::util::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForWorkerIndexInRange) {
  ThreadPool pool(2);
  std::atomic<bool> ok{true};
  pool.parallel_for(1000, [&](std::size_t, std::size_t, std::size_t worker) {
    if (worker > pool.size()) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(1, [&](std::size_t begin, std::size_t end, std::size_t) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<long long> partial(pool.size() + 1, 0);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end,
                            std::size_t worker) {
    long long acc = 0;
    for (std::size_t i = begin; i < end; ++i) acc += static_cast<long long>(i);
    partial[worker] += acc;
  });
  const long long total = std::accumulate(partial.begin(), partial.end(), 0ll);
  EXPECT_EQ(total, static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> counter{0};
    pool.parallel_for(100, [&](std::size_t begin, std::size_t end, std::size_t) {
      counter.fetch_add(static_cast<int>(end - begin));
    });
    ASSERT_EQ(counter.load(), 100);
  }
}

}  // namespace
