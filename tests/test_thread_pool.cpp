// Unit tests for the thread pool used by the Monte Carlo simulator, the
// designer's rounding attempts, and DesignSweep.
#include "omn/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace {

using omn::util::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForWorkerIndexInRange) {
  ThreadPool pool(2);
  std::atomic<bool> ok{true};
  pool.parallel_for(1000, [&](std::size_t, std::size_t, std::size_t worker) {
    if (worker > pool.size()) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(1, [&](std::size_t begin, std::size_t end, std::size_t) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<long long> partial(pool.size() + 1, 0);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end,
                            std::size_t worker) {
    long long acc = 0;
    for (std::size_t i = begin; i < end; ++i) acc += static_cast<long long>(i);
    partial[worker] += acc;
  });
  const long long total = std::accumulate(partial.begin(), partial.end(), 0ll);
  EXPECT_EQ(total, static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> counter{0};
    pool.parallel_for(100, [&](std::size_t begin, std::size_t end, std::size_t) {
      counter.fetch_add(static_cast<int>(end - begin));
    });
    ASSERT_EQ(counter.load(), 100);
  }
}

// Regression: the calling thread used to receive chunk index size() even
// when fewer chunks than size() + 1 exist, overflowing caller scratch
// arrays sized by the chunk count.  Every index must stay below
// min(count, size() + 1).
TEST(ThreadPool, ChunkIndexStaysBelowChunkCount) {
  ThreadPool pool(4);
  for (std::size_t count : {1u, 2u, 3u, 4u, 5u, 9u, 100u}) {
    const std::size_t bound = std::min(count, pool.size() + 1);
    std::vector<std::atomic<int>> hits_per_chunk(bound);
    std::atomic<std::size_t> max_seen{0};
    pool.parallel_for(count, [&](std::size_t begin, std::size_t end,
                                 std::size_t chunk) {
      std::size_t prev = max_seen.load();
      while (chunk > prev && !max_seen.compare_exchange_weak(prev, chunk)) {
      }
      if (chunk < bound) {
        hits_per_chunk[chunk].fetch_add(static_cast<int>(end - begin));
      }
    });
    EXPECT_LT(max_seen.load(), bound) << "count " << count;
    int covered = 0;
    for (auto& h : hits_per_chunk) covered += h.load();
    EXPECT_EQ(covered, static_cast<int>(count)) << "count " << count;
  }
}

TEST(ThreadPool, SubmitExceptionPropagatesToWaitIdle) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([i] {
      if (i == 3) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed; the pool stays usable.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsChunkException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t begin, std::size_t, std::size_t) {
                          if (begin == 0) throw std::invalid_argument("chunk 0");
                        }),
      std::invalid_argument);
  // A failed batch leaves the pool healthy for the next one.
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&](std::size_t begin, std::size_t end, std::size_t) {
    counter.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(counter.load(), 50);
}

// Two threads issue parallel_for on the same pool at once; each batch must
// wait only for its own chunks (the old pool waited on *all* in-flight
// tasks, so overlapping batches cross-talked).
TEST(ThreadPool, OverlappingBatchesFromMultipleThreads) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 20000;
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<int>> a(kN), b(kN);
    std::thread other([&] {
      pool.parallel_for(kN, [&](std::size_t begin, std::size_t end,
                                std::size_t) {
        for (std::size_t i = begin; i < end; ++i) a[i].fetch_add(1);
      });
    });
    pool.parallel_for(kN, [&](std::size_t begin, std::size_t end,
                              std::size_t) {
      for (std::size_t i = begin; i < end; ++i) b[i].fetch_add(1);
    });
    other.join();
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(a[i].load(), 1) << "a index " << i;
      ASSERT_EQ(b[i].load(), 1) << "b index " << i;
    }
  }
}

// A chunk body may itself call parallel_for on the same pool; the waiter
// help-runs queued tasks, so this completes even when every worker is busy
// with outer chunks.
TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 6;
  constexpr std::size_t kInner = 500;
  std::vector<std::atomic<int>> counts(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t obegin, std::size_t oend,
                                std::size_t) {
    for (std::size_t o = obegin; o < oend; ++o) {
      pool.parallel_for(kInner, [&, o](std::size_t begin, std::size_t end,
                                       std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          counts[o * kInner + i].fetch_add(1);
        }
      });
    }
  });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SubmitAfterStopThrows) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.stop();
  // stop() drains the queue before joining.
  EXPECT_EQ(counter.load(), 20);
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  EXPECT_THROW(
      pool.parallel_for(10, [](std::size_t, std::size_t, std::size_t) {}),
      std::runtime_error);
  pool.stop();  // idempotent
}

TEST(ThreadPool, AsyncReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.async([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, AsyncPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future =
      pool.async([]() -> int { throw std::runtime_error("async failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // Future-carried exceptions do not leak into wait_idle().
  pool.wait_idle();
}

TEST(ThreadPool, ParallelMapReturnsFuturesInOrder) {
  ThreadPool pool(3);
  auto futures =
      pool.parallel_map(16, [](std::size_t i) { return i * i; });
  ASSERT_EQ(futures.size(), 16u);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

}  // namespace
