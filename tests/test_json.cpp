// util::Json / util::parse_count / metrics serialization.
//
// The metrics layer's contract is the serialized bytes: the committed
// BENCH_*.json trajectories and the CI perf gate diff files produced on
// different machines, so the writer must be deterministic and the schema
// pinned.  The golden tests below hand-construct reports with fixed
// counters and compare the full serialization character by character —
// a schema change must show up here as a conscious golden update.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "omn/core/design_sweep.hpp"
#include "omn/core/designer.hpp"
#include "omn/dist/dist_sweep.hpp"
#include "omn/util/json.hpp"
#include "omn/util/parse.hpp"

namespace {

using omn::util::Json;
using omn::util::json_escape;
using omn::util::parse_count;

// ---- Json writer ----------------------------------------------------------

TEST(Json, ScalarsSerialize) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(0).dump(), "0");
  EXPECT_EQ(Json(-17).dump(), "-17");
  EXPECT_EQ(Json(std::size_t{18446744073709551615u}).dump(),
            "18446744073709551615");
  EXPECT_EQ(Json(std::int64_t{-9223372036854775807LL}).dump(),
            "-9223372036854775807");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(std::string("x")).dump(), "\"x\"");
}

TEST(Json, DoublesRoundTripAndStayTyped) {
  // Integral doubles keep a ".0" marker; full precision survives.
  EXPECT_EQ(Json(2.0).dump(), "2.0");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  EXPECT_EQ(Json(-0.0).dump(), "-0.0");
  const double pi = 3.141592653589793;
  EXPECT_EQ(std::stod(Json(pi).dump()), pi);
  const double tiny = 9.87e-5;
  EXPECT_EQ(std::stod(Json(tiny).dump()), tiny);
  // JSON has no inf/nan: they serialize as null rather than corrupting
  // the file.
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(Json("say \"hi\"\n").dump(), "\"say \\\"hi\\\"\\n\"");
}

TEST(Json, ObjectsPreserveInsertionOrderAndOverwriteInPlace) {
  Json j = Json::object();
  j.set("b", 1);
  j.set("a", 2);
  j.set("b", 3);  // overwrite keeps the original slot
  EXPECT_EQ(j.dump(), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(j.size(), 2u);
}

TEST(Json, NestedPrettyPrinting) {
  Json inner = Json::object();
  inner.set("n", 1);
  Json arr = Json::array();
  arr.push(inner);
  arr.push("s");
  Json j = Json::object();
  j.set("list", std::move(arr));
  j.set("empty_list", Json::array());
  j.set("empty_obj", Json::object());
  EXPECT_EQ(j.dump(),
            "{\"list\":[{\"n\":1},\"s\"],\"empty_list\":[],\"empty_obj\":{}}");
  EXPECT_EQ(j.dump(2),
            "{\n"
            "  \"list\": [\n"
            "    {\n"
            "      \"n\": 1\n"
            "    },\n"
            "    \"s\"\n"
            "  ],\n"
            "  \"empty_list\": [],\n"
            "  \"empty_obj\": {}\n"
            "}");
}

TEST(Json, SetOnNonObjectAndPushOnNonArrayThrow) {
  Json scalar(1);
  EXPECT_THROW(scalar.set("k", 2), std::logic_error);
  EXPECT_THROW(scalar.push(2), std::logic_error);
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", 2), std::logic_error);
  Json obj = Json::object();
  EXPECT_THROW(obj.push(2), std::logic_error);
}

// ---- parse_count ----------------------------------------------------------

TEST(ParseCount, AcceptsPlainDigits) {
  EXPECT_EQ(parse_count("0"), std::size_t{0});
  EXPECT_EQ(parse_count("42"), std::size_t{42});
  EXPECT_EQ(parse_count("007"), std::size_t{7});
  EXPECT_EQ(parse_count("18446744073709551615"),
            std::numeric_limits<std::size_t>::max());
}

TEST(ParseCount, RejectsEverythingStrtoulAccepts) {
  // strtoul would happily parse all of these: leading whitespace and
  // sign prefixes are skipped, trailing garbage is ignored, and
  // out-of-range values wrap modulo 2^64 (2^64 + 1 -> 1).
  EXPECT_FALSE(parse_count(" 5").has_value());
  EXPECT_FALSE(parse_count("5 ").has_value());
  EXPECT_FALSE(parse_count("+5").has_value());
  EXPECT_FALSE(parse_count("-1").has_value());
  EXPECT_FALSE(parse_count("5x").has_value());
  EXPECT_FALSE(parse_count("0x10").has_value());
  EXPECT_FALSE(parse_count("").has_value());
  EXPECT_FALSE(parse_count("threads").has_value());
  // 2^64 and 2^64 + 1: overflow must be rejected, never wrapped to 0/1.
  EXPECT_FALSE(parse_count("18446744073709551616").has_value());
  EXPECT_FALSE(parse_count("18446744073709551617").has_value());
  EXPECT_FALSE(parse_count("99999999999999999999999").has_value());
}

// ---- metrics schema goldens ----------------------------------------------

// The exact bytes to_json(SweepReport) emits for fixed counters.  The CI
// perf gate and the committed BENCH_*.json trajectories key on these
// field names; renaming one is a schema break and must be made
// deliberately, here first.
TEST(MetricsSchema, SweepReportGolden) {
  omn::core::SweepReport report;
  report.cells.resize(12);
  report.num_instances = 3;
  report.num_configs = 4;
  report.lp_configs = 2;
  report.lp_solves = 5;
  report.lp_cache_hits = 1;
  report.lp_cache_misses = 5;
  report.lp_iterations = 420;
  report.lp_phase1_iterations = 130;
  report.lp_refactorizations = 7;
  report.lp_warm_start_hits = 2;
  report.wall_seconds = 1.5;
  report.cpu_seconds = 3.0;
  EXPECT_EQ(omn::core::to_json(report).dump(),
            "{\"cells\":12,\"instances\":3,\"configs\":4,\"lp_configs\":2,"
            "\"lp_solves\":5,\"lp_cache_hits\":1,\"lp_cache_misses\":5,"
            "\"lp_iterations\":420,\"lp_phase1_iterations\":130,"
            "\"lp_refactorizations\":7,\"lp_warm_start_hits\":2,"
            "\"saved_by_reuse\":6,\"wall_seconds\":1.5,\"cpu_seconds\":3.0}");
}

TEST(MetricsSchema, SavedByReuseClampsAtZero) {
  // reuse off, no cache: every cell solves, nothing saved — the
  // subtraction must not wrap.
  omn::core::SweepReport report;
  report.cells.resize(4);
  report.lp_solves = 4;
  EXPECT_EQ(report.saved_by_reuse(), 0u);
  report.lp_solves = 5;  // merge pathologies must not underflow either
  EXPECT_EQ(report.saved_by_reuse(), 0u);
}

TEST(MetricsSchema, DistStatsGolden) {
  omn::dist::DistStats stats;
  stats.workers_spawned = 2;
  stats.workers_failed = 1;
  stats.threads_per_worker = 4;
  stats.shards_total = 8;
  stats.shards_computed = 6;
  stats.shards_from_checkpoint = 2;
  stats.shards_reassigned = 1;
  stats.checkpoints_written = 6;
  EXPECT_EQ(omn::dist::to_json(stats).dump(),
            "{\"workers_spawned\":2,\"workers_failed\":1,"
            "\"threads_per_worker\":4,\"shards_total\":8,"
            "\"shards_computed\":6,\"shards_from_checkpoint\":2,"
            "\"shards_reassigned\":1,\"checkpoints_written\":6}");
}

TEST(MetricsSchema, DesignResultGolden) {
  omn::core::DesignResult result;
  result.status = omn::core::DesignStatus::kOk;
  result.evaluation.total_cost = 160.5;
  result.lp_objective = 100.25;
  result.cost_ratio = 1.5;
  result.lp_iterations = 97;
  result.lp_phase1_iterations = 31;
  result.lp_refactorizations = 3;
  result.winning_attempt = 1;
  result.attempts_made = 2;
  result.lp_seconds = 0.5;
  result.rounding_seconds = 0.25;
  result.lp_cache_hit = true;
  result.lp_warm_start = false;
  EXPECT_EQ(omn::core::to_json(result).dump(),
            "{\"status\":\"ok\",\"total_cost\":160.5,"
            "\"lp_objective\":100.25,\"cost_ratio\":1.5,"
            "\"lp_iterations\":97,\"lp_phase1_iterations\":31,"
            "\"lp_refactorizations\":3,\"winning_attempt\":1,"
            "\"attempts_made\":2,\"lp_seconds\":0.5,"
            "\"rounding_seconds\":0.25,\"lp_cache_hit\":true,"
            "\"lp_warm_start\":false}");
}

}  // namespace
