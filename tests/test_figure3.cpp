// Reproduces the paper's Figure 3 numbers: the entangled-set constraint
// creates a 3.5 (fractional) vs 3 (integral) max-flow gap, while the
// unconstrained max flow is 4.  The fractional value is computed with the
// LP substrate; the integral one by exhaustive enumeration.
#include "omn/topo/figure3.hpp"

#include <gtest/gtest.h>

#include "omn/lp/model.hpp"
#include "omn/lp/simplex.hpp"

namespace {

using omn::topo::Figure3Instance;
using omn::topo::make_figure3;

TEST(Figure3, UnconstrainedMaxFlowIsFour) {
  const Figure3Instance fig = make_figure3();
  EXPECT_DOUBLE_EQ(omn::topo::figure3_unconstrained_max_flow(fig), 4.0);
}

TEST(Figure3, IntegralMaxFlowWithSetConstraintIsThree) {
  const Figure3Instance fig = make_figure3();
  EXPECT_DOUBLE_EQ(omn::topo::figure3_integral_max_flow(fig),
                   fig.expected_integral_max_flow);
}

TEST(Figure3, FractionalMaxFlowWithSetConstraintIsThreePointFive) {
  const Figure3Instance fig = make_figure3();
  // Edge-flow LP: maximize flow into t subject to conservation, capacities,
  // and the entangled set constraint sum_{e in S} f_e <= 3.
  omn::lp::Model m;
  std::vector<int> var;
  var.reserve(fig.arcs.size());
  for (const auto& arc : fig.arcs) {
    // Maximize total inflow to t == minimize negative of it.
    const double obj = arc.to == fig.t ? -1.0 : 0.0;
    var.push_back(m.add_variable(0.0, arc.capacity, obj));
  }
  for (int node = 0; node < fig.num_nodes; ++node) {
    if (node == fig.s || node == fig.t) continue;
    const int row = m.add_row(omn::lp::RowSense::kEqual, 0.0);
    for (std::size_t a = 0; a < fig.arcs.size(); ++a) {
      if (fig.arcs[a].to == node) m.add_coefficient(row, var[a], 1.0);
      if (fig.arcs[a].from == node) m.add_coefficient(row, var[a], -1.0);
    }
  }
  const int set_row =
      m.add_row(omn::lp::RowSense::kLessEqual, fig.entangled_capacity);
  for (int a : fig.entangled_arcs) {
    m.add_coefficient(set_row, var[static_cast<std::size_t>(a)], 1.0);
  }
  const auto sol = omn::lp::SimplexSolver().solve(m);
  ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  EXPECT_NEAR(-sol.objective, fig.expected_fractional_max_flow, 1e-7);
}

TEST(Figure3, PaperGapValuesRecorded) {
  const Figure3Instance fig = make_figure3();
  EXPECT_DOUBLE_EQ(fig.expected_fractional_max_flow, 3.5);
  EXPECT_DOUBLE_EQ(fig.expected_integral_max_flow, 3.0);
  EXPECT_EQ(fig.entangled_arcs.size(), 2u);
  EXPECT_EQ(fig.arcs[static_cast<std::size_t>(fig.entangled_arcs[0])].name, "ab");
  EXPECT_EQ(fig.arcs[static_cast<std::size_t>(fig.entangled_arcs[1])].name, "pq");
}

}  // namespace
