// Tests for the latency/deadline model (paper Section 1.2: late packets
// are effectively useless) and the v1/v2 serialization compatibility.
#include <gtest/gtest.h>

#include "omn/core/designer.hpp"
#include "omn/net/serialize.hpp"
#include "omn/sim/packet_sim.hpp"
#include "omn/topo/akamai.hpp"

namespace {

using omn::net::OverlayInstance;

OverlayInstance delayed_instance(double sr_delay, double rd_delay) {
  OverlayInstance inst;
  inst.add_source(omn::net::Source{"s", 1.0});
  inst.add_reflector(omn::net::Reflector{"r", 1.0, 4.0, 0});
  inst.add_sink(omn::net::Sink{"d", 0, 0.9});
  omn::net::SourceReflectorEdge sr{0, 0, 1.0, 0.01};
  sr.delay_ms = sr_delay;
  inst.add_source_reflector_edge(sr);
  omn::net::ReflectorSinkEdge rd{0, 0, 1.0, 0.01, {}};
  rd.delay_ms = rd_delay;
  inst.add_reflector_sink_edge(rd);
  return inst;
}

omn::core::Design full_design(const OverlayInstance& inst) {
  auto d = omn::core::Design::zeros(inst);
  d.x.assign(d.x.size(), 1);
  d.close_upward(inst);
  return d;
}

TEST(Latency, NoDeadlineIgnoresDelay) {
  const auto inst = delayed_instance(500.0, 500.0);
  omn::sim::SimulationConfig cfg;
  cfg.num_packets = 5000;
  const auto report = omn::sim::simulate(inst, full_design(inst), cfg);
  EXPECT_LT(report.sink_loss_rate[0], 0.05);  // only packet loss matters
}

TEST(Latency, PathExceedingDeadlineIsUseless) {
  const auto inst = delayed_instance(80.0, 80.0);  // 160 ms path
  omn::sim::SimulationConfig cfg;
  cfg.num_packets = 2000;
  cfg.deadline_ms = 100.0;  // everything arrives late
  const auto report = omn::sim::simulate(inst, full_design(inst), cfg);
  EXPECT_DOUBLE_EQ(report.sink_loss_rate[0], 1.0);
}

TEST(Latency, PathWithinDeadlineUnaffected) {
  const auto inst = delayed_instance(20.0, 20.0);
  omn::sim::SimulationConfig cfg;
  cfg.num_packets = 5000;
  cfg.deadline_ms = 100.0;
  const auto report = omn::sim::simulate(inst, full_design(inst), cfg);
  EXPECT_LT(report.sink_loss_rate[0], 0.05);
}

TEST(Latency, JitterPushesBoundaryPathsOverDeadline) {
  const auto inst = delayed_instance(45.0, 45.0);  // 90 ms, 10 ms headroom
  omn::sim::SimulationConfig base;
  base.num_packets = 20000;
  base.deadline_ms = 100.0;
  omn::sim::SimulationConfig jittery = base;
  jittery.jitter_sigma_ms = 30.0;
  const auto calm = omn::sim::simulate(inst, full_design(inst), base);
  const auto rough = omn::sim::simulate(inst, full_design(inst), jittery);
  EXPECT_LT(calm.sink_loss_rate[0], 0.05);
  EXPECT_GT(rough.sink_loss_rate[0], calm.sink_loss_rate[0] + 0.2);
}

TEST(Latency, GeneratorAssignsPositiveDelays) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(20, 3));
  for (const auto& e : inst.sr_edges()) EXPECT_GT(e.delay_ms, 0.0);
  for (const auto& e : inst.rd_edges()) EXPECT_GT(e.delay_ms, 0.0);
}

TEST(Latency, ValidateRejectsNegativeDelay) {
  auto inst = delayed_instance(1.0, 1.0);
  inst.sr_edge(0).delay_ms = -1.0;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Latency, SerializationRoundTripsDelays) {
  const auto inst = delayed_instance(12.5, 37.5);
  const auto back = omn::net::from_text(omn::net::to_text(inst));
  EXPECT_DOUBLE_EQ(back.sr_edges()[0].delay_ms, 12.5);
  EXPECT_DOUBLE_EQ(back.rd_edges()[0].delay_ms, 37.5);
}

TEST(Latency, LoadsLegacyV1WithoutDelays) {
  const std::string v1 =
      "omn-instance v1\n"
      "sources 1\ns 1\n"
      "reflectors 1\nr 1 4 0\n"
      "sinks 1\nd 0 0.9\n"
      "sr_edges 1\n0 0 1 0.01\n"
      "rd_edges 1\n0 0 1 0.01 inf\n";
  const auto inst = omn::net::from_text(v1);
  EXPECT_EQ(inst.num_sinks(), 1);
  EXPECT_DOUBLE_EQ(inst.sr_edges()[0].delay_ms, 0.0);
  EXPECT_DOUBLE_EQ(inst.rd_edges()[0].delay_ms, 0.0);
}

TEST(Latency, RejectsUnknownVersion) {
  EXPECT_THROW(omn::net::from_text("omn-instance v3\n"), std::runtime_error);
}

}  // namespace
