// Tests for the shared ExecutionContext: dynamic (work-stealing)
// parallel_for correctness under skewed workloads, nested/concurrent use
// on one pool, race-free first use of the global context, exception
// propagation, and the deterministic chunk partition the packet simulator
// relies on.  Runs under the ThreadSanitizer CI job via the util label.
#include "omn/util/execution_context.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace {

using omn::util::ExecutionContext;

TEST(ExecutionContext, SerialHasConcurrencyOneAndRunsInline) {
  const ExecutionContext serial = ExecutionContext::serial();
  EXPECT_EQ(serial.concurrency(), 1u);
  EXPECT_EQ(serial.pool(), nullptr);
  // Inline execution visits indices in order.
  std::vector<std::size_t> order;
  serial.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ExecutionContext, OwnedContextReportsRequestedConcurrency) {
  const ExecutionContext ctx(3);
  EXPECT_EQ(ctx.concurrency(), 3u);
  ASSERT_NE(ctx.pool(), nullptr);
  EXPECT_EQ(ctx.pool()->size(), 2u);  // workers exclude the calling thread
}

TEST(ExecutionContext, DynamicParallelForCoversEveryIndexExactlyOnce) {
  const ExecutionContext ctx(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  ctx.parallel_for(kN, [&](std::size_t i) { touched[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

// The motivating case for dynamic chunking: items whose cost is wildly
// skewed (one expensive item among many cheap ones, like one
// color-constrained cell in a sweep grid).  A static partition would hand
// one worker a contiguous run of expensive items; the atomic counter must
// still visit every index exactly once and finish.
TEST(ExecutionContext, SkewedWorkloadsVisitEveryIndexExactlyOnce) {
  const ExecutionContext ctx(4);
  constexpr std::size_t kN = 256;
  std::vector<std::atomic<int>> touched(kN);
  ctx.parallel_for(kN, [&](std::size_t i) {
    if (i % 64 == 0) {  // a few stragglers, ~100x the base cost
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    touched[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutionContext, GrainBatchesStillCoverEverything) {
  const ExecutionContext ctx(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> touched(kN);
  ctx.parallel_for(
      kN, [&](std::size_t i) { touched[i].fetch_add(1); },
      {.max_parallelism = 0, .grain = 64});
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
  // A grain larger than the range degrades to one serial pass.
  std::vector<std::size_t> order;
  ctx.parallel_for(4, [&](std::size_t i) { order.push_back(i); },
                   {.max_parallelism = 0, .grain = 100});
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ExecutionContext, MaxParallelismOneIsDeterministicallySerial) {
  const ExecutionContext ctx(4);
  std::vector<std::size_t> order;
  ctx.parallel_for(6, [&](std::size_t i) { order.push_back(i); },
                   {.max_parallelism = 1});
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ExecutionContext, ZeroCountIsNoop) {
  const ExecutionContext ctx(2);
  std::atomic<int> calls{0};
  ctx.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  ctx.parallel_for_chunks(0, 4,
                          [&](std::size_t, std::size_t, std::size_t) {
                            calls.fetch_add(1);
                          });
  EXPECT_EQ(calls.load(), 0);
}

// An item body may itself run a parallel_for on the same context: the
// nested batch feeds the same queue (no second pool) and the waiter
// help-runs, so this completes even with every worker busy.
TEST(ExecutionContext, NestedParallelForOnOneContextCompletes) {
  const ExecutionContext ctx(3);
  constexpr std::size_t kOuter = 6;
  constexpr std::size_t kInner = 400;
  std::vector<std::atomic<int>> counts(kOuter * kInner);
  ctx.parallel_for(kOuter, [&](std::size_t o) {
    ctx.parallel_for(kInner, [&, o](std::size_t i) {
      counts[o * kInner + i].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

// Two threads drive the same context concurrently (the DesignSweep shape:
// every cell and every nested attempt shares one pool).
TEST(ExecutionContext, ConcurrentParallelForFromMultipleThreads) {
  const ExecutionContext ctx(3);
  constexpr std::size_t kN = 20000;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::atomic<int>> a(kN), b(kN);
    std::thread other([&] {
      ctx.parallel_for(kN, [&](std::size_t i) { a[i].fetch_add(1); });
    });
    ctx.parallel_for(kN, [&](std::size_t i) { b[i].fetch_add(1); });
    other.join();
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(a[i].load(), 1) << "a index " << i;
      ASSERT_EQ(b[i].load(), 1) << "b index " << i;
    }
  }
}

TEST(ExecutionContext, BodyExceptionPropagatesAndContextSurvives) {
  const ExecutionContext ctx(3);
  EXPECT_THROW(
      ctx.parallel_for(100,
                       [](std::size_t i) {
                         if (i == 17) throw std::invalid_argument("item 17");
                       }),
      std::invalid_argument);
  // The context (and its pool) stay healthy for the next batch.
  std::atomic<int> count{0};
  ctx.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ExecutionContext, GlobalIsOneSharedContextAndRaceFreeOnFirstUse) {
  // Hammer global() from many threads at once; every caller must see the
  // same context/pool and complete its batch.  (Under TSan this also
  // checks the magic-static initialization and the pool handoff.)
  constexpr int kThreads = 8;
  std::vector<ExecutionContext*> seen(kThreads, nullptr);
  std::vector<std::atomic<int>> sums(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ExecutionContext& ctx = ExecutionContext::global();
      seen[static_cast<std::size_t>(t)] = &ctx;
      ctx.parallel_for(100, [&](std::size_t) {
        sums[static_cast<std::size_t>(t)].fetch_add(1);
      });
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
    EXPECT_EQ(sums[static_cast<std::size_t>(t)].load(), 100);
  }
  EXPECT_GE(ExecutionContext::global().concurrency(), 1u);
}

// The packet simulator sizes per-batch RNG streams by chunk_count and
// relies on the partition being a pure function of (count, width).
TEST(ExecutionContext, ChunkPartitionIsDeterministicAndExhaustive) {
  const ExecutionContext ctx(4);
  for (const auto& [count, width] : std::vector<std::pair<std::size_t, std::size_t>>{
           {10, 4}, {9, 4}, {1, 8}, {8, 1}, {100, 3}, {5, 5}, {7, 16}}) {
    const std::size_t parts = ExecutionContext::chunk_count(count, width);
    ASSERT_GE(parts, 1u);
    ASSERT_LE(parts, std::min(count, width));
    std::mutex mu;
    std::set<std::size_t> chunks_seen;
    std::vector<int> covered(count, 0);
    ctx.parallel_for_chunks(count, width,
                            [&](std::size_t begin, std::size_t end,
                                std::size_t chunk) {
                              std::lock_guard lock(mu);
                              EXPECT_LT(begin, end);  // chunks are non-empty
                              EXPECT_LT(chunk, parts);
                              chunks_seen.insert(chunk);
                              for (std::size_t i = begin; i < end; ++i) {
                                covered[i] += 1;
                              }
                            });
    EXPECT_EQ(chunks_seen.size(), parts) << count << "/" << width;
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(covered[i], 1) << "count " << count << " width " << width
                               << " index " << i;
    }
  }
}

TEST(ExecutionContext, HandlesShareOnePool) {
  const ExecutionContext a(3);
  const ExecutionContext b = a;  // copy of the handle, not of the pool
  EXPECT_EQ(a.pool(), b.pool());
  std::atomic<int> count{0};
  b.parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

// ---- shared services ------------------------------------------------------

struct FakeCache {
  int value = 0;
};
struct OtherService {
  int value = 0;
};

TEST(ExecutionContextServices, AbsentByDefaultAndTypeKeyed) {
  const ExecutionContext ctx(1);
  EXPECT_EQ(ctx.find_service<FakeCache>(), nullptr);

  ExecutionContext rw = ctx;
  rw.set_service(std::make_shared<FakeCache>(FakeCache{7}));
  ASSERT_NE(ctx.find_service<FakeCache>(), nullptr);
  EXPECT_EQ(ctx.find_service<FakeCache>()->value, 7);
  // Keyed by type: another service type is a different slot.
  EXPECT_EQ(ctx.find_service<OtherService>(), nullptr);
}

TEST(ExecutionContextServices, CopiesShareOneRegistry) {
  ExecutionContext a(2);
  const ExecutionContext b = a;
  a.set_service(std::make_shared<FakeCache>(FakeCache{42}));
  ASSERT_NE(b.find_service<FakeCache>(), nullptr);
  EXPECT_EQ(b.find_service<FakeCache>()->value, 42);
  EXPECT_EQ(a.find_service<FakeCache>(), b.find_service<FakeCache>());

  // nullptr removes.
  a.set_service<FakeCache>(nullptr);
  EXPECT_EQ(b.find_service<FakeCache>(), nullptr);
}

TEST(ExecutionContextServices, SerialContextsAreFresh) {
  ExecutionContext one = ExecutionContext::serial();
  one.set_service(std::make_shared<FakeCache>(FakeCache{1}));
  EXPECT_NE(one.find_service<FakeCache>(), nullptr);
  // Each serial() call is a new context with an empty registry.
  EXPECT_EQ(ExecutionContext::serial().find_service<FakeCache>(), nullptr);
}

TEST(ExecutionContextServices, LookupIsSafeFromWorkItems) {
  ExecutionContext ctx(4);
  ctx.set_service(std::make_shared<FakeCache>(FakeCache{9}));
  std::atomic<int> seen{0};
  ctx.parallel_for(64, [&](std::size_t) {
    const auto service = ctx.find_service<FakeCache>();
    if (service != nullptr && service->value == 9) seen.fetch_add(1);
  });
  EXPECT_EQ(seen.load(), 64);
}

}  // namespace
