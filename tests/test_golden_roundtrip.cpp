// Golden round-trip regression tests for the two text formats:
//   net/serialize  (omn-instance v1)
//   core/design_io (omn-design v1)
//
// Each golden file under tests/data/ was produced by the writers
// themselves and committed; the tests check
//   1. the golden text still loads,
//   2. re-serializing the loaded value reproduces the golden text byte
//      for byte (so any format change must update the goldens, i.e. is
//      an explicit, reviewed decision), and
//   3. write -> read round-trips deep-equal for a freshly built value.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "omn/core/design.hpp"
#include "omn/core/design_io.hpp"
#include "omn/net/instance.hpp"
#include "omn/net/serialize.hpp"

namespace {

std::string data_path(const std::string& file) {
  const char* dir = std::getenv("OMN_TEST_DATA_DIR");
  return (dir != nullptr ? std::string(dir) : std::string("tests/data")) +
         "/" + file;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void expect_deep_equal(const omn::net::OverlayInstance& a,
                       const omn::net::OverlayInstance& b) {
  ASSERT_EQ(a.num_sources(), b.num_sources());
  ASSERT_EQ(a.num_reflectors(), b.num_reflectors());
  ASSERT_EQ(a.num_sinks(), b.num_sinks());
  ASSERT_EQ(a.sr_edges().size(), b.sr_edges().size());
  ASSERT_EQ(a.rd_edges().size(), b.rd_edges().size());
  for (int k = 0; k < a.num_sources(); ++k) {
    EXPECT_EQ(a.source(k).name, b.source(k).name);
    EXPECT_DOUBLE_EQ(a.source(k).bandwidth, b.source(k).bandwidth);
  }
  for (int i = 0; i < a.num_reflectors(); ++i) {
    EXPECT_EQ(a.reflector(i).name, b.reflector(i).name);
    EXPECT_DOUBLE_EQ(a.reflector(i).build_cost, b.reflector(i).build_cost);
    EXPECT_DOUBLE_EQ(a.reflector(i).fanout, b.reflector(i).fanout);
    EXPECT_EQ(a.reflector(i).color, b.reflector(i).color);
    EXPECT_EQ(a.reflector(i).stream_capacity.has_value(),
              b.reflector(i).stream_capacity.has_value());
    if (a.reflector(i).stream_capacity && b.reflector(i).stream_capacity) {
      EXPECT_DOUBLE_EQ(*a.reflector(i).stream_capacity,
                       *b.reflector(i).stream_capacity);
    }
  }
  for (int j = 0; j < a.num_sinks(); ++j) {
    EXPECT_EQ(a.sink(j).name, b.sink(j).name);
    EXPECT_EQ(a.sink(j).commodity, b.sink(j).commodity);
    EXPECT_DOUBLE_EQ(a.sink(j).threshold, b.sink(j).threshold);
  }
  for (std::size_t e = 0; e < a.sr_edges().size(); ++e) {
    EXPECT_EQ(a.sr_edges()[e].source, b.sr_edges()[e].source);
    EXPECT_EQ(a.sr_edges()[e].reflector, b.sr_edges()[e].reflector);
    EXPECT_DOUBLE_EQ(a.sr_edges()[e].cost, b.sr_edges()[e].cost);
    EXPECT_DOUBLE_EQ(a.sr_edges()[e].loss, b.sr_edges()[e].loss);
  }
  for (std::size_t e = 0; e < a.rd_edges().size(); ++e) {
    EXPECT_EQ(a.rd_edges()[e].reflector, b.rd_edges()[e].reflector);
    EXPECT_EQ(a.rd_edges()[e].sink, b.rd_edges()[e].sink);
    EXPECT_DOUBLE_EQ(a.rd_edges()[e].cost, b.rd_edges()[e].cost);
    EXPECT_DOUBLE_EQ(a.rd_edges()[e].loss, b.rd_edges()[e].loss);
    EXPECT_EQ(a.rd_edges()[e].capacity.has_value(),
              b.rd_edges()[e].capacity.has_value());
    if (a.rd_edges()[e].capacity && b.rd_edges()[e].capacity) {
      EXPECT_DOUBLE_EQ(*a.rd_edges()[e].capacity, *b.rd_edges()[e].capacity);
    }
  }
}

void expect_deep_equal(const omn::core::Design& a, const omn::core::Design& b) {
  EXPECT_EQ(a.z, b.z);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.x, b.x);
}

omn::net::OverlayInstance make_sample_instance() {
  using namespace omn;
  net::OverlayInstance inst;
  inst.add_source(net::Source{"src-a", 1.0});
  inst.add_source(net::Source{"src-b", 2.5});
  net::Reflector capped{"refl-capped", 12.0, 4.0, 1, {}};
  capped.stream_capacity = 1.0;
  inst.add_reflector(net::Reflector{"refl-open", 10.0, 6.0, 0, {}});
  inst.add_reflector(capped);
  inst.add_sink(net::Sink{"sink-0", 0, 0.95});
  inst.add_sink(net::Sink{"sink-1", 1, 0.99});
  inst.add_source_reflector_edge({0, 0, 1.5, 0.02, 0.0});
  inst.add_source_reflector_edge({0, 1, 2.0, 0.01, 0.0});
  inst.add_source_reflector_edge({1, 0, 1.0, 0.05, 0.0});
  inst.add_source_reflector_edge({1, 1, 2.5, 0.03, 0.0});
  net::ReflectorSinkEdge capped_edge{0, 1, 1.25, 0.04, {}, 0.0};
  capped_edge.capacity = 2.0;
  inst.add_reflector_sink_edge({0, 0, 0.75, 0.02, {}, 0.0});
  inst.add_reflector_sink_edge({1, 0, 0.5, 0.03, {}, 0.0});
  inst.add_reflector_sink_edge(capped_edge);
  inst.add_reflector_sink_edge({1, 1, 1.0, 0.01, {}, 0.0});
  return inst;
}

TEST(GoldenInstance, LoadsAndReserializesByteExact) {
  const std::string golden = slurp(data_path("golden_instance.txt"));
  ASSERT_FALSE(golden.empty());
  const omn::net::OverlayInstance inst = omn::net::from_text(golden);
  inst.validate();
  EXPECT_EQ(omn::net::to_text(inst), golden);
}

TEST(GoldenInstance, GoldenMatchesProgrammaticSample) {
  const omn::net::OverlayInstance golden =
      omn::net::load_file(data_path("golden_instance.txt"));
  expect_deep_equal(golden, make_sample_instance());
}

TEST(GoldenInstance, WriteReadDeepEqual) {
  const omn::net::OverlayInstance inst = make_sample_instance();
  const omn::net::OverlayInstance reloaded =
      omn::net::from_text(omn::net::to_text(inst));
  expect_deep_equal(inst, reloaded);
}

TEST(GoldenDesign, LoadsAndReserializesByteExact) {
  const omn::net::OverlayInstance inst =
      omn::net::load_file(data_path("golden_instance.txt"));
  const std::string golden = slurp(data_path("golden_design.txt"));
  ASSERT_FALSE(golden.empty());
  const omn::core::Design design = omn::core::design_from_text(golden, inst);
  EXPECT_EQ(omn::core::design_to_text(design), golden);
}

TEST(GoldenDesign, WriteReadDeepEqual) {
  const omn::net::OverlayInstance inst = make_sample_instance();
  omn::core::Design design = omn::core::Design::zeros(inst);
  // Serve sink-0 via refl-open and sink-1 via refl-capped.
  design.x[0] = 1;
  design.x[3] = 1;
  design.close_upward(inst);
  const omn::core::Design reloaded =
      omn::core::design_from_text(omn::core::design_to_text(design), inst);
  expect_deep_equal(design, reloaded);
}

}  // namespace
