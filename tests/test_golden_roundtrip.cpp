// Golden round-trip regression tests for the persisted formats:
//   net/serialize  (omn-instance v1, text)
//   core/design_io (omn-design v1, text)
//   core/lp_cache  (LP cache entry v1, binary)
//
// Each golden file under tests/data/ was produced by the writers
// themselves and committed; the tests check
//   1. the golden bytes still load,
//   2. re-serializing the loaded value reproduces the golden bytes
//      exactly (so any format change must update the goldens, i.e. is
//      an explicit, reviewed decision), and
//   3. write -> read round-trips deep-equal for a freshly built value.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "omn/core/design.hpp"
#include "omn/core/design_io.hpp"
#include "omn/core/lp_cache.hpp"
#include "omn/net/instance.hpp"
#include "omn/net/serialize.hpp"
#include "omn/util/hash.hpp"

namespace {

std::string data_path(const std::string& file) {
  const char* dir = std::getenv("OMN_TEST_DATA_DIR");
  return (dir != nullptr ? std::string(dir) : std::string("tests/data")) +
         "/" + file;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void expect_deep_equal(const omn::net::OverlayInstance& a,
                       const omn::net::OverlayInstance& b) {
  ASSERT_EQ(a.num_sources(), b.num_sources());
  ASSERT_EQ(a.num_reflectors(), b.num_reflectors());
  ASSERT_EQ(a.num_sinks(), b.num_sinks());
  ASSERT_EQ(a.sr_edges().size(), b.sr_edges().size());
  ASSERT_EQ(a.rd_edges().size(), b.rd_edges().size());
  for (int k = 0; k < a.num_sources(); ++k) {
    EXPECT_EQ(a.source(k).name, b.source(k).name);
    EXPECT_DOUBLE_EQ(a.source(k).bandwidth, b.source(k).bandwidth);
  }
  for (int i = 0; i < a.num_reflectors(); ++i) {
    EXPECT_EQ(a.reflector(i).name, b.reflector(i).name);
    EXPECT_DOUBLE_EQ(a.reflector(i).build_cost, b.reflector(i).build_cost);
    EXPECT_DOUBLE_EQ(a.reflector(i).fanout, b.reflector(i).fanout);
    EXPECT_EQ(a.reflector(i).color, b.reflector(i).color);
    EXPECT_EQ(a.reflector(i).stream_capacity.has_value(),
              b.reflector(i).stream_capacity.has_value());
    if (a.reflector(i).stream_capacity && b.reflector(i).stream_capacity) {
      EXPECT_DOUBLE_EQ(*a.reflector(i).stream_capacity,
                       *b.reflector(i).stream_capacity);
    }
  }
  for (int j = 0; j < a.num_sinks(); ++j) {
    EXPECT_EQ(a.sink(j).name, b.sink(j).name);
    EXPECT_EQ(a.sink(j).commodity, b.sink(j).commodity);
    EXPECT_DOUBLE_EQ(a.sink(j).threshold, b.sink(j).threshold);
  }
  for (std::size_t e = 0; e < a.sr_edges().size(); ++e) {
    EXPECT_EQ(a.sr_edges()[e].source, b.sr_edges()[e].source);
    EXPECT_EQ(a.sr_edges()[e].reflector, b.sr_edges()[e].reflector);
    EXPECT_DOUBLE_EQ(a.sr_edges()[e].cost, b.sr_edges()[e].cost);
    EXPECT_DOUBLE_EQ(a.sr_edges()[e].loss, b.sr_edges()[e].loss);
  }
  for (std::size_t e = 0; e < a.rd_edges().size(); ++e) {
    EXPECT_EQ(a.rd_edges()[e].reflector, b.rd_edges()[e].reflector);
    EXPECT_EQ(a.rd_edges()[e].sink, b.rd_edges()[e].sink);
    EXPECT_DOUBLE_EQ(a.rd_edges()[e].cost, b.rd_edges()[e].cost);
    EXPECT_DOUBLE_EQ(a.rd_edges()[e].loss, b.rd_edges()[e].loss);
    EXPECT_EQ(a.rd_edges()[e].capacity.has_value(),
              b.rd_edges()[e].capacity.has_value());
    if (a.rd_edges()[e].capacity && b.rd_edges()[e].capacity) {
      EXPECT_DOUBLE_EQ(*a.rd_edges()[e].capacity, *b.rd_edges()[e].capacity);
    }
  }
}

void expect_deep_equal(const omn::core::Design& a, const omn::core::Design& b) {
  EXPECT_EQ(a.z, b.z);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.x, b.x);
}

omn::net::OverlayInstance make_sample_instance() {
  using namespace omn;
  net::OverlayInstance inst;
  inst.add_source(net::Source{"src-a", 1.0});
  inst.add_source(net::Source{"src-b", 2.5});
  net::Reflector capped{"refl-capped", 12.0, 4.0, 1, {}};
  capped.stream_capacity = 1.0;
  inst.add_reflector(net::Reflector{"refl-open", 10.0, 6.0, 0, {}});
  inst.add_reflector(capped);
  inst.add_sink(net::Sink{"sink-0", 0, 0.95});
  inst.add_sink(net::Sink{"sink-1", 1, 0.99});
  inst.add_source_reflector_edge({0, 0, 1.5, 0.02, 0.0});
  inst.add_source_reflector_edge({0, 1, 2.0, 0.01, 0.0});
  inst.add_source_reflector_edge({1, 0, 1.0, 0.05, 0.0});
  inst.add_source_reflector_edge({1, 1, 2.5, 0.03, 0.0});
  net::ReflectorSinkEdge capped_edge{0, 1, 1.25, 0.04, {}, 0.0};
  capped_edge.capacity = 2.0;
  inst.add_reflector_sink_edge({0, 0, 0.75, 0.02, {}, 0.0});
  inst.add_reflector_sink_edge({1, 0, 0.5, 0.03, {}, 0.0});
  inst.add_reflector_sink_edge(capped_edge);
  inst.add_reflector_sink_edge({1, 1, 1.0, 0.01, {}, 0.0});
  return inst;
}

TEST(GoldenInstance, LoadsAndReserializesByteExact) {
  const std::string golden = slurp(data_path("golden_instance.txt"));
  ASSERT_FALSE(golden.empty());
  const omn::net::OverlayInstance inst = omn::net::from_text(golden);
  inst.validate();
  EXPECT_EQ(omn::net::to_text(inst), golden);
}

TEST(GoldenInstance, GoldenMatchesProgrammaticSample) {
  const omn::net::OverlayInstance golden =
      omn::net::load_file(data_path("golden_instance.txt"));
  expect_deep_equal(golden, make_sample_instance());
}

TEST(GoldenInstance, WriteReadDeepEqual) {
  const omn::net::OverlayInstance inst = make_sample_instance();
  const omn::net::OverlayInstance reloaded =
      omn::net::from_text(omn::net::to_text(inst));
  expect_deep_equal(inst, reloaded);
}

TEST(GoldenDesign, LoadsAndReserializesByteExact) {
  const omn::net::OverlayInstance inst =
      omn::net::load_file(data_path("golden_instance.txt"));
  const std::string golden = slurp(data_path("golden_design.txt"));
  ASSERT_FALSE(golden.empty());
  const omn::core::Design design = omn::core::design_from_text(golden, inst);
  EXPECT_EQ(omn::core::design_to_text(design), golden);
}

TEST(GoldenDesign, WriteReadDeepEqual) {
  const omn::net::OverlayInstance inst = make_sample_instance();
  omn::core::Design design = omn::core::Design::zeros(inst);
  // Serve sink-0 via refl-open and sink-1 via refl-capped.
  design.x[0] = 1;
  design.x[3] = 1;
  design.close_upward(inst);
  const omn::core::Design reloaded =
      omn::core::design_from_text(omn::core::design_to_text(design), inst);
  expect_deep_equal(design, reloaded);
}

// ---- LP cache entry (binary v2, legacy v1) --------------------------------

/// The fixed (key, solution) pair the golden entries were generated from.
omn::util::Digest128 golden_cache_key() {
  return {0x0123456789abcdefull, 0xfedcba9876543210ull};
}

omn::lp::Solution golden_cache_solution() {
  omn::lp::Solution s;
  s.status = omn::lp::SolveStatus::kOptimal;
  s.objective = 42.5;
  s.iterations = 17;
  s.phase1_iterations = 5;
  s.max_violation = 1e-9;
  s.x = {0.0, 1.0, 0.25, 0.75, 2.5};
  return s;
}

/// The v2 golden extends the v1 value with the basis block.
omn::lp::Solution golden_cache_solution_v2() {
  using omn::lp::VarStatus;
  omn::lp::Solution s = golden_cache_solution();
  s.refactorizations = 3;
  s.warm_started = true;
  omn::lp::Basis basis;
  basis.state = {VarStatus::kAtLower, VarStatus::kBasic, VarStatus::kAtUpper,
                 VarStatus::kBasic, VarStatus::kAtLower};
  basis.basic = {1, 3};
  s.basis = std::move(basis);
  return s;
}

TEST(GoldenLpCacheEntry, LoadsAndReserializesByteExact) {
  const std::string golden = slurp(data_path("lp_cache_entry_v2.bin"));
  ASSERT_FALSE(golden.empty());

  std::istringstream in(golden);
  const std::optional<omn::lp::Solution> loaded =
      omn::core::LpCache::read_entry(in, golden_cache_key());
  ASSERT_TRUE(loaded.has_value());
  const omn::lp::Solution expected = golden_cache_solution_v2();
  EXPECT_EQ(loaded->status, expected.status);
  EXPECT_EQ(loaded->objective, expected.objective);
  EXPECT_EQ(loaded->iterations, expected.iterations);
  EXPECT_EQ(loaded->phase1_iterations, expected.phase1_iterations);
  EXPECT_EQ(loaded->max_violation, expected.max_violation);
  EXPECT_EQ(loaded->x, expected.x);
  EXPECT_EQ(loaded->refactorizations, expected.refactorizations);
  EXPECT_EQ(loaded->warm_started, expected.warm_started);
  ASSERT_TRUE(loaded->basis.has_value());
  EXPECT_TRUE(*loaded->basis == *expected.basis);

  std::ostringstream out;
  omn::core::LpCache::write_entry(out, golden_cache_key(), *loaded);
  EXPECT_EQ(out.str(), golden);
}

TEST(GoldenLpCacheEntry, ReadsLegacyV1Entries) {
  // Pre-basis cache directories must keep working: the committed v1 entry
  // still loads, with the v2-only fields at their defaults.
  const std::string golden = slurp(data_path("lp_cache_entry_v1.bin"));
  ASSERT_FALSE(golden.empty());

  std::istringstream in(golden);
  const std::optional<omn::lp::Solution> loaded =
      omn::core::LpCache::read_entry(in, golden_cache_key());
  ASSERT_TRUE(loaded.has_value());
  const omn::lp::Solution expected = golden_cache_solution();
  EXPECT_EQ(loaded->status, expected.status);
  EXPECT_EQ(loaded->objective, expected.objective);
  EXPECT_EQ(loaded->iterations, expected.iterations);
  EXPECT_EQ(loaded->phase1_iterations, expected.phase1_iterations);
  EXPECT_EQ(loaded->max_violation, expected.max_violation);
  EXPECT_EQ(loaded->x, expected.x);
  EXPECT_EQ(loaded->refactorizations, 0);
  EXPECT_FALSE(loaded->warm_started);
  EXPECT_FALSE(loaded->basis.has_value());

  // Re-serializing writes v2 bytes: same value, current format.
  std::ostringstream out;
  omn::core::LpCache::write_entry(out, golden_cache_key(), *loaded);
  EXPECT_NE(out.str(), golden);
  std::istringstream reread(out.str());
  const std::optional<omn::lp::Solution> upgraded =
      omn::core::LpCache::read_entry(reread, golden_cache_key());
  ASSERT_TRUE(upgraded.has_value());
  EXPECT_EQ(upgraded->x, expected.x);
}

TEST(GoldenLpCacheEntry, WriteReadRoundTripsExactly) {
  // Bit patterns must survive, including -0.0 and denormals.
  omn::lp::Solution s = golden_cache_solution_v2();
  s.x.push_back(-0.0);
  s.x.push_back(5e-324);
  std::ostringstream out;
  omn::core::LpCache::write_entry(out, golden_cache_key(), s);
  std::istringstream in(out.str());
  const std::optional<omn::lp::Solution> loaded =
      omn::core::LpCache::read_entry(in, golden_cache_key());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->x.size(), s.x.size());
  for (std::size_t n = 0; n < s.x.size(); ++n) {
    EXPECT_EQ(std::signbit(loaded->x[n]), std::signbit(s.x[n]));
    EXPECT_EQ(loaded->x[n], s.x[n]);
  }
}

TEST(GoldenLpCacheEntry, TruncatedEntryRejected) {
  // Every proper prefix of both format versions must be rejected — no
  // partial-read acceptance.
  for (const char* file : {"lp_cache_entry_v1.bin", "lp_cache_entry_v2.bin"}) {
    const std::string golden = slurp(data_path(file));
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{4}, std::size_t{24}, golden.size() - 8,
          golden.size() - 1}) {
      std::istringstream in(golden.substr(0, keep));
      EXPECT_FALSE(
          omn::core::LpCache::read_entry(in, golden_cache_key()).has_value())
          << file << ": prefix of " << keep << " bytes was accepted";
    }
    // ... and so must trailing garbage.
    std::istringstream padded(golden + "x");
    EXPECT_FALSE(
        omn::core::LpCache::read_entry(padded, golden_cache_key()).has_value())
        << file;
  }
}

TEST(GoldenLpCacheEntry, VersionMismatchRejected) {
  // v1 and v2 are the only versions read_entry accepts; anything newer (or
  // zero) is a stale/foreign file.  Patching the version also breaks the
  // checksum, but the version gate must reject first — a future v3 writer
  // shares the magic, not the layout.
  for (const std::uint8_t version : {std::uint8_t{0}, std::uint8_t{3}}) {
    std::string golden = slurp(data_path("lp_cache_entry_v2.bin"));
    ASSERT_GT(golden.size(), 8u);
    golden[4] = static_cast<char>(version);  // little-endian u32 after magic
    std::istringstream in(golden);
    EXPECT_FALSE(
        omn::core::LpCache::read_entry(in, golden_cache_key()).has_value());
  }
}

TEST(GoldenLpCacheEntry, ChecksumMismatchRejected) {
  std::string golden = slurp(data_path("lp_cache_entry_v2.bin"));
  ASSERT_GT(golden.size(), 48u);
  golden[40] = static_cast<char>(golden[40] ^ 0x01);  // a payload byte
  std::istringstream in(golden);
  EXPECT_FALSE(
      omn::core::LpCache::read_entry(in, golden_cache_key()).has_value());
}

TEST(GoldenLpCacheEntry, KeyMismatchRejected) {
  for (const char* file : {"lp_cache_entry_v1.bin", "lp_cache_entry_v2.bin"}) {
    const std::string golden = slurp(data_path(file));
    omn::util::Digest128 other = golden_cache_key();
    other.lo ^= 1;
    std::istringstream in(golden);
    EXPECT_FALSE(omn::core::LpCache::read_entry(in, other).has_value()) << file;
  }
}

}  // namespace
