// Pins the .omn command-file tokenizer semantics (util/script.hpp).
// These rules are load-bearing for `omn_design run`: the rules header
// comment in script.hpp defers to THIS suite as the source of truth, and
// fuzz/fuzz_script.cpp asserts the same invariants over arbitrary bytes.
#include "omn/util/script.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace {

using omn::util::ScriptCommand;
using omn::util::parse_script;

std::vector<ScriptCommand> parse(const std::string& text) {
  std::istringstream stream(text);
  return parse_script(stream);
}

TEST(Script, TokenizesOneCommandPerLine) {
  const auto commands = parse("generate --sinks 8\ndesign out.txt\n");
  ASSERT_EQ(commands.size(), 2u);
  EXPECT_EQ(commands[0].tokens,
            (std::vector<std::string>{"generate", "--sinks", "8"}));
  EXPECT_EQ(commands[0].line_number, 1);
  EXPECT_EQ(commands[1].tokens, (std::vector<std::string>{"design", "out.txt"}));
  EXPECT_EQ(commands[1].line_number, 2);
}

TEST(Script, SkipsBlankAndCommentLinesButCountsThem) {
  const auto commands = parse("\n# header comment\n\nsimulate\n");
  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(commands[0].tokens, (std::vector<std::string>{"simulate"}));
  // Physical line numbers: blanks and comments still advance the count.
  EXPECT_EQ(commands[0].line_number, 4);
}

TEST(Script, TrailingCommentEndsTokensButStaysInText) {
  const auto commands = parse("design out.txt # the good one\n");
  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(commands[0].tokens, (std::vector<std::string>{"design", "out.txt"}));
  // `text` is the line as written, for the `== file:N: <text>` echo.
  EXPECT_EQ(commands[0].text, "design out.txt # the good one");
}

TEST(Script, HashInsideTokenIsNotAComment) {
  // Only a token BEGINNING with '#' ends the line; '#' mid-token (e.g. a
  // filename) is data.
  const auto commands = parse("design out#1.txt\n");
  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(commands[0].tokens,
            (std::vector<std::string>{"design", "out#1.txt"}));
}

TEST(Script, BackslashJoinsLines) {
  const auto commands = parse("generate \\\n--sinks 8\n");
  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(commands[0].tokens,
            (std::vector<std::string>{"generate", "--sinks", "8"}));
  // line_number is the LAST physical line of the command.
  EXPECT_EQ(commands[0].line_number, 2);
}

TEST(Script, BackslashChainsAcrossSeveralLines) {
  const auto commands = parse("a\\\nb\\\nc\nnext\n");
  ASSERT_EQ(commands.size(), 2u);
  EXPECT_EQ(commands[0].tokens, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(commands[0].line_number, 3);
  EXPECT_EQ(commands[1].line_number, 4);
}

TEST(Script, JoinHappensBeforeCommentScan) {
  // A comment on the first physical line swallows the continuation: the
  // lines are joined first, then the '#' token ends tokenization.  Pinned
  // because changing the order would silently change script meaning.
  const auto commands = parse("a # why\\\nb\nc\n");
  ASSERT_EQ(commands.size(), 2u);
  EXPECT_EQ(commands[0].tokens, (std::vector<std::string>{"a"}));
  EXPECT_EQ(commands[0].line_number, 2);
  EXPECT_EQ(commands[1].tokens, (std::vector<std::string>{"c"}));
}

TEST(Script, TrailingBackslashOnLastLineIsDropped) {
  const auto commands = parse("design out.txt \\");
  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(commands[0].tokens, (std::vector<std::string>{"design", "out.txt"}));
  EXPECT_EQ(commands[0].line_number, 1);
}

TEST(Script, EmptyInputYieldsNoCommands) {
  EXPECT_TRUE(parse("").empty());
  EXPECT_TRUE(parse("\n\n# only comments\n").empty());
}

TEST(Script, LineNumbersAreStrictlyIncreasing) {
  // The fuzz harness asserts this invariant on arbitrary bytes; pin it on
  // a representative script too.
  const auto commands = parse("a\n\nb \\\nc\n# x\nd\n");
  ASSERT_EQ(commands.size(), 3u);
  int previous = 0;
  for (const ScriptCommand& command : commands) {
    EXPECT_GT(command.line_number, previous);
    previous = command.line_number;
  }
  EXPECT_EQ(commands[2].line_number, 6);
}

}  // namespace
