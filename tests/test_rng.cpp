// Unit tests for the xoshiro256** RNG wrapper.
#include "omn/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace {

using omn::util::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double min = 1.0;
  double max = 0.0;
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    min = std::min(min, u);
    max = std::max(max, u);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
  EXPECT_LT(min, 0.001);
  EXPECT_GT(max, 0.999);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexIsUnbiased) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 7;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kN = 140000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_index(kBuckets)];
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kN / static_cast<int>(kBuckets), 900)
        << "bucket " << b;
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  constexpr int kN = 100000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  constexpr int kN = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(29);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  constexpr int kN = 200000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, JumpChangesSequence) {
  Rng a(43);
  Rng b(43);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
