// Tests for the Section-3 randomized rounding: determinism, structural
// invariants, marginal probabilities (statistical), and the deterministic
// x̄ = x̂ branch.
#include "omn/core/rounding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "omn/lp/simplex.hpp"
#include "omn/topo/akamai.hpp"

namespace {

using omn::core::build_overlay_lp;
using omn::core::FractionalDesign;
using omn::core::OverlayLp;
using omn::core::randomized_round;
using omn::core::RoundedSolution;
using omn::core::RoundingOptions;

struct Solved {
  omn::net::OverlayInstance inst;
  OverlayLp lp;
  FractionalDesign frac;
};

Solved solve_topology(int sinks, std::uint64_t seed) {
  Solved s;
  s.inst = omn::topo::make_akamai_like(omn::topo::global_event_config(sinks, seed));
  s.lp = build_overlay_lp(s.inst);
  const auto sol = omn::lp::SimplexSolver().solve(s.lp.model);
  EXPECT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  s.frac = s.lp.extract(s.inst, sol.x);
  return s;
}

TEST(Rounding, DeterministicPerSeed) {
  const Solved s = solve_topology(20, 3);
  RoundingOptions opt;
  opt.seed = 42;
  const RoundedSolution a = randomized_round(s.inst, s.lp, s.frac, opt);
  const RoundedSolution b = randomized_round(s.inst, s.lp, s.frac, opt);
  EXPECT_EQ(a.z, b.z);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.x, b.x);
}

TEST(Rounding, RejectsBadC) {
  const Solved s = solve_topology(10, 3);
  RoundingOptions opt;
  opt.c = 0.0;
  EXPECT_THROW(randomized_round(s.inst, s.lp, s.frac, opt),
               std::invalid_argument);
  opt.c = -2.0;
  EXPECT_THROW(randomized_round(s.inst, s.lp, s.frac, opt),
               std::invalid_argument);
}

TEST(Rounding, MultiplierIsCLogN) {
  const Solved s = solve_topology(20, 3);
  RoundingOptions opt;
  opt.c = 8.0;
  const auto r = randomized_round(s.inst, s.lp, s.frac, opt);
  EXPECT_NEAR(r.multiplier, 8.0 * std::log(20.0), 1e-12);
}

TEST(Rounding, StructuralInvariants) {
  const Solved s = solve_topology(30, 5);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    RoundingOptions opt;
    opt.seed = seed;
    const RoundedSolution r = randomized_round(s.inst, s.lp, s.frac, opt);
    // y only where z; x only where y (paper constraints (1), (2) carried
    // through the rounding).
    for (const auto& e : s.inst.sr_edges()) {
      const std::size_t slot = omn::core::y_index(s.inst, e.source, e.reflector);
      if (r.y[slot]) {
        EXPECT_TRUE(r.z[static_cast<std::size_t>(e.reflector)]);
      }
    }
    for (std::size_t id = 0; id < s.inst.rd_edges().size(); ++id) {
      if (r.x[id] <= 0.0) continue;
      const auto& e = s.inst.rd_edges()[id];
      const int k = s.inst.sink(e.sink).commodity;
      EXPECT_TRUE(r.y[omn::core::y_index(s.inst, k, e.reflector)]);
      // x̄ is either x̂ (deterministic branch) or 1/multiplier.
      const bool is_hat = std::abs(r.x[id] - s.frac.x[id]) < 1e-12;
      const bool is_unit = std::abs(r.x[id] - 1.0 / r.multiplier) < 1e-12;
      EXPECT_TRUE(is_hat || is_unit) << "x̄=" << r.x[id];
    }
  }
}

TEST(Rounding, ZeroFractionStaysZero) {
  const Solved s = solve_topology(20, 7);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    RoundingOptions opt;
    opt.seed = seed;
    const auto r = randomized_round(s.inst, s.lp, s.frac, opt);
    for (std::size_t i = 0; i < s.frac.z.size(); ++i) {
      if (s.frac.z[i] <= 0.0) {
        EXPECT_EQ(r.z[i], 0);
      }
    }
    for (std::size_t id = 0; id < s.frac.x.size(); ++id) {
      if (s.frac.x[id] <= 0.0) {
        EXPECT_EQ(r.x[id], 0.0);
      }
    }
  }
}

TEST(Rounding, MarginalProbabilityOfZMatchesScaledValue) {
  // Redundant reflector pool keeps ẑ fractional; a small c keeps the
  // scaled probability strictly inside (0, 1).
  Solved s;
  auto cfg = omn::topo::global_event_config(24, 9);
  cfg.num_reflectors = 20;
  cfg.candidates_per_sink = 10;
  s.inst = omn::topo::make_akamai_like(cfg);
  s.lp = build_overlay_lp(s.inst);
  const auto sol = omn::lp::SimplexSolver().solve(s.lp.model);
  ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  s.frac = s.lp.extract(s.inst, sol.x);
  // Find a reflector with fractional ẑ strictly inside (0, 1/mult).
  RoundingOptions probe;
  probe.c = 0.5;
  const auto r0 = randomized_round(s.inst, s.lp, s.frac, probe);
  int target = -1;
  for (std::size_t i = 0; i < s.frac.z.size(); ++i) {
    const double scaled = s.frac.z[i] * r0.multiplier;
    if (scaled > 0.05 && scaled < 0.95) {
      target = static_cast<int>(i);
      break;
    }
  }
  if (target < 0) GTEST_SKIP() << "no suitably fractional z in this LP";
  const double expected =
      std::min(s.frac.z[static_cast<std::size_t>(target)] * r0.multiplier, 1.0);
  int hits = 0;
  constexpr int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    RoundingOptions opt;
    opt.c = probe.c;
    opt.seed = 1000 + static_cast<std::uint64_t>(t);
    const auto r = randomized_round(s.inst, s.lp, s.frac, opt);
    hits += r.z[static_cast<std::size_t>(target)];
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, expected, 0.04);
}

TEST(Rounding, ExpectedCostBoundedByCLogNTimesLp) {
  // Lemma 4.1: E[cost after rounding] <= c log n * LP cost.  Check the
  // empirical mean over seeds (x̄ cost accounted with fractional values).
  const Solved s = solve_topology(30, 11);
  const double lp_cost = s.frac.cost(s.inst);
  RoundingOptions opt;
  double total = 0.0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    opt.seed = static_cast<std::uint64_t>(t);
    const auto r = randomized_round(s.inst, s.lp, s.frac, opt);
    FractionalDesign as_frac = FractionalDesign::zeros(s.inst);
    for (std::size_t i = 0; i < r.z.size(); ++i) as_frac.z[i] = r.z[i];
    for (std::size_t y = 0; y < r.y.size(); ++y) as_frac.y[y] = r.y[y];
    as_frac.x = r.x;
    total += as_frac.cost(s.inst);
  }
  const double mean_cost = total / kTrials;
  const double mult = std::max(opt.c * std::log(30.0), 1.0);
  EXPECT_LE(mean_cost, mult * lp_cost * 1.15);  // 15% statistical headroom
}

TEST(Rounding, SingleSinkUsesUnitMultiplier) {
  omn::net::OverlayInstance inst;
  inst.add_source(omn::net::Source{"s", 1.0});
  inst.add_reflector(omn::net::Reflector{"r", 1.0, 2.0, 0});
  inst.add_sink(omn::net::Sink{"d", 0, 0.9});
  inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, 0, 1.0, 0.01});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{0, 0, 1.0, 0.01, {}});
  const auto lp = build_overlay_lp(inst);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  const auto frac = lp.extract(inst, sol.x);
  RoundingOptions opt;
  const auto r = randomized_round(inst, lp, frac, opt);
  EXPECT_DOUBLE_EQ(r.multiplier, 1.0);  // ln(1) = 0 clamps to 1
}

}  // namespace
