// Tests for the Section-5 modified GAP rounding: box-network structure,
// saturation, integrality, and the paper's factor-4 weight guarantee, both
// on hand-built fractional inputs and end-to-end over seeds (TEST_P).
#include "omn/core/gap.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "omn/core/rounding.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/topo/akamai.hpp"

namespace {

using omn::core::BoxNetwork;
using omn::core::build_box_network;
using omn::core::build_overlay_lp;
using omn::core::gap_round;
using omn::core::GapResult;
using omn::core::OverlayLp;

// One source, three reflectors, one sink; hand-assigned x̄.
struct Fixture {
  omn::net::OverlayInstance inst;
  OverlayLp lp;

  Fixture() {
    inst.add_source(omn::net::Source{"s", 1.0});
    for (int i = 0; i < 3; ++i) {
      inst.add_reflector(omn::net::Reflector{"r" + std::to_string(i), 1.0,
                                             4.0, i});
      inst.add_source_reflector_edge(
          omn::net::SourceReflectorEdge{0, i, 1.0, 0.01 * (i + 1)});
    }
    inst.add_sink(omn::net::Sink{"d", 0, 0.99});
    for (int i = 0; i < 3; ++i) {
      inst.add_reflector_sink_edge(
          omn::net::ReflectorSinkEdge{i, 0, 1.0 + i, 0.02 * (i + 1), {}});
    }
    lp = build_overlay_lp(inst);
  }
};

TEST(BoxNetworkBuild, BoxCountFollowsCeilOfTwiceMass) {
  Fixture f;
  // Total x̄ mass 1.2 -> s_j = ceil(2.4) = 3 boxes, last dropped -> 2 kept.
  const std::vector<double> x_bar{0.5, 0.4, 0.3};
  const BoxNetwork net = build_box_network(f.inst, f.lp, x_bar);
  EXPECT_EQ(net.boxes.size(), 2u);
  EXPECT_EQ(net.pairs.size(), 3u);
}

TEST(BoxNetworkBuild, LonePartialBoxKeptByDefault) {
  Fixture f;
  const std::vector<double> x_bar{0.3, 0.0, 0.0};  // mass 0.3 -> 1 box
  const BoxNetwork net = build_box_network(f.inst, f.lp, x_bar);
  EXPECT_EQ(net.boxes.size(), 1u);
  omn::core::BoxNetworkOptions strict;
  strict.keep_lone_partial_box = false;
  const BoxNetwork none = build_box_network(f.inst, f.lp, x_bar, strict);
  EXPECT_EQ(none.boxes.size(), 0u);
}

TEST(BoxNetworkBuild, ZeroMassYieldsEmptyNetwork) {
  Fixture f;
  const std::vector<double> x_bar{0.0, 0.0, 0.0};
  const BoxNetwork net = build_box_network(f.inst, f.lp, x_bar);
  EXPECT_EQ(net.boxes.size(), 0u);
  EXPECT_EQ(net.demand(), 0);
}

TEST(BoxNetworkBuild, BoxesFilledInDecreasingWeightOrder) {
  Fixture f;
  // Weights decrease with reflector index (higher loss): r0 heaviest.
  const std::vector<double> x_bar{0.5, 0.5, 0.5};  // 3 boxes, keep 2
  const BoxNetwork net = build_box_network(f.inst, f.lp, x_bar);
  ASSERT_EQ(net.boxes.size(), 2u);
  // First box must be fed by the heaviest pair (reflector 0).
  ASSERT_FALSE(net.boxes[0].feeders.empty());
  EXPECT_EQ(net.pairs[static_cast<std::size_t>(net.boxes[0].feeders[0])]
                .reflector,
            0);
  // The dropped box would have held the lightest mass (reflector 2); the
  // kept boxes must not be fed by it exclusively.
  for (const auto& box : net.boxes) {
    for (int p : box.feeders) {
      EXPECT_LT(net.pairs[static_cast<std::size_t>(p)].reflector, 3);
    }
  }
}

TEST(GapRound, SaturatesAndSelectsHalfUnits) {
  Fixture f;
  const std::vector<double> x_bar{0.5, 0.4, 0.3};
  const GapResult r = gap_round(f.inst, f.lp, x_bar);
  EXPECT_TRUE(r.saturated);
  EXPECT_EQ(r.num_boxes, 2);
  int selected = 0;
  for (auto v : r.x) selected += v;
  // Two boxes, each picks a pair; distinct pairs possible.
  EXPECT_GE(selected, 1);
  EXPECT_LE(selected, 3);
}

TEST(GapRound, PrefersCheaperPairsAtEqualWeight) {
  // Two reflectors with identical losses (same weight interval) but very
  // different costs; a single box must pick the cheap one.
  omn::net::OverlayInstance inst;
  inst.add_source(omn::net::Source{"s", 1.0});
  for (int i = 0; i < 2; ++i) {
    inst.add_reflector(omn::net::Reflector{"r" + std::to_string(i), 1.0, 4.0, 0});
    inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, i, 0.0, 0.05});
  }
  inst.add_sink(omn::net::Sink{"d", 0, 0.9});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{0, 0, 100.0, 0.05, {}});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{1, 0, 1.0, 0.05, {}});
  const OverlayLp lp = build_overlay_lp(inst);
  const std::vector<double> x_bar{0.25, 0.25};  // one partial box
  const GapResult r = gap_round(inst, lp, x_bar);
  ASSERT_TRUE(r.saturated);
  EXPECT_EQ(r.x[0], 0);  // expensive pair not chosen
  EXPECT_EQ(r.x[1], 1);
}

TEST(GapRound, DeterministicGivenSameInput) {
  Fixture f;
  const std::vector<double> x_bar{0.5, 0.4, 0.3};
  const GapResult a = gap_round(f.inst, f.lp, x_bar);
  const GapResult b = gap_round(f.inst, f.lp, x_bar);
  EXPECT_EQ(a.x, b.x);
  EXPECT_DOUBLE_EQ(a.flow_cost, b.flow_cost);
}

// ---- end-to-end property over topologies and seeds -------------------------

class GapEndToEnd
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(GapEndToEnd, WeightGuaranteeAndFanoutBoundHold) {
  const auto [sinks, seed] = GetParam();
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(sinks, seed));
  const OverlayLp lp = build_overlay_lp(inst);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  const auto frac = lp.extract(inst, sol.x);

  omn::core::RoundingOptions ropt;
  ropt.c = 8.0;
  ropt.seed = seed * 1000 + 7;
  const auto rounded = omn::core::randomized_round(inst, lp, frac, ropt);
  const GapResult r = gap_round(inst, lp, rounded.x);
  EXPECT_TRUE(r.saturated);

  // Paper guarantee: delivered weight >= W/4 per sink, fanout <= 4 F_i.
  std::vector<double> delivered(static_cast<std::size_t>(inst.num_sinks()), 0.0);
  std::vector<double> usage(static_cast<std::size_t>(inst.num_reflectors()), 0.0);
  for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
    if (!r.x[id]) continue;
    const auto& e = inst.rd_edges()[id];
    delivered[static_cast<std::size_t>(e.sink)] += lp.x_weight[id];
    usage[static_cast<std::size_t>(e.reflector)] += 1.0;
  }
  for (int j = 0; j < inst.num_sinks(); ++j) {
    EXPECT_GE(delivered[static_cast<std::size_t>(j)],
              0.25 * lp.sink_demand[static_cast<std::size_t>(j)] - 1e-9)
        << "sink " << j << " (sinks=" << sinks << " seed=" << seed << ")";
  }
  for (int i = 0; i < inst.num_reflectors(); ++i) {
    EXPECT_LE(usage[static_cast<std::size_t>(i)],
              4.0 * inst.reflector(i).fanout + 1e-9)
        << "reflector " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndSeeds, GapEndToEnd,
    ::testing::Combine(::testing::Values(12, 24, 40),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u)));

}  // namespace
