// Build smoke test: links against every omn:: library and runs the
// quickstart pipeline end-to-end on the paper's Figure-3 topology plus a
// small overlay instance.  Designed to finish in about a second; its job
// is to prove the build wiring (include paths, link order, all eight
// static libraries) is sound.

#include <gtest/gtest.h>

#include "omn/baseline/greedy.hpp"
#include "omn/core/designer.hpp"
#include "omn/flow/max_flow.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/net/instance.hpp"
#include "omn/sim/reliability.hpp"
#include "omn/topo/figure3.hpp"
#include "omn/util/rng.hpp"

namespace {

// The quickstart instance: one stream, three reflectors in two ISPs, four
// edgeservers demanding 99% delivery.
omn::net::OverlayInstance make_quickstart_instance() {
  using namespace omn;
  net::OverlayInstance inst;
  inst.add_source(net::Source{"entrypoint-nyc", 1.0});
  inst.add_reflector(net::Reflector{"refl-chi", 30.0, 3.0, 0, {}});
  inst.add_reflector(net::Reflector{"refl-lon", 45.0, 3.0, 1, {}});
  inst.add_reflector(net::Reflector{"refl-sjc", 25.0, 3.0, 0, {}});
  inst.add_source_reflector_edge({0, 0, 2.0, 0.010, 0.0});
  inst.add_source_reflector_edge({0, 1, 4.0, 0.030, 0.0});
  inst.add_source_reflector_edge({0, 2, 2.5, 0.015, 0.0});
  for (int j = 0; j < 4; ++j) {
    inst.add_sink(net::Sink{"edge" + std::to_string(j), 0, 0.99});
  }
  inst.add_reflector_sink_edge({0, 0, 1.0, 0.020, {}, 0.0});
  inst.add_reflector_sink_edge({1, 0, 1.5, 0.040, {}, 0.0});
  inst.add_reflector_sink_edge({0, 1, 1.2, 0.030, {}, 0.0});
  inst.add_reflector_sink_edge({2, 1, 0.8, 0.015, {}, 0.0});
  inst.add_reflector_sink_edge({1, 2, 1.1, 0.025, {}, 0.0});
  inst.add_reflector_sink_edge({2, 2, 0.9, 0.035, {}, 0.0});
  inst.add_reflector_sink_edge({0, 3, 1.3, 0.020, {}, 0.0});
  inst.add_reflector_sink_edge({1, 3, 1.0, 0.030, {}, 0.0});
  inst.add_reflector_sink_edge({2, 3, 1.1, 0.025, {}, 0.0});
  return inst;
}

TEST(BuildSmoke, Figure3FlowSubstrates) {
  const omn::topo::Figure3Instance fig = omn::topo::make_figure3();
  EXPECT_DOUBLE_EQ(omn::topo::figure3_unconstrained_max_flow(fig), 4.0);
  EXPECT_DOUBLE_EQ(omn::topo::figure3_integral_max_flow(fig),
                   fig.expected_integral_max_flow);
}

TEST(BuildSmoke, QuickstartPipelineEndToEnd) {
  const omn::net::OverlayInstance inst = make_quickstart_instance();
  inst.validate();

  omn::core::DesignerConfig config;
  config.seed = 7;
  config.rounding_attempts = 5;
  const omn::core::DesignResult result =
      omn::core::OverlayDesigner(config).design(inst);

  ASSERT_TRUE(result.ok()) << omn::core::to_string(result.status);
  EXPECT_GT(result.lp_objective, 0.0);
  EXPECT_GE(result.cost_ratio, 1.0 - 1e-9);
  EXPECT_GE(result.evaluation.reflectors_built, 1);
  EXPECT_TRUE(result.evaluation.consistent);

  // Paper guarantees: every sink gets at least 1/4 of its demand weight
  // and no reflector exceeds 4x its fanout.
  EXPECT_GE(result.evaluation.min_weight_ratio, 0.25);
  EXPECT_LE(result.evaluation.max_fanout_utilization, 4.0 + 1e-9);

  // sim: the simulator's exact reliability must agree with the
  // evaluator's closed form for every sink (independent substrates).
  const std::vector<double> delivery =
      omn::sim::exact_delivery_probability(inst, result.design);
  ASSERT_EQ(delivery.size(), static_cast<std::size_t>(inst.num_sinks()));
  for (int j = 0; j < inst.num_sinks(); ++j) {
    EXPECT_NEAR(delivery[static_cast<std::size_t>(j)],
                result.evaluation.sinks[static_cast<std::size_t>(j)]
                    .delivery_probability,
                1e-12)
        << "sink " << j;
  }

  // baseline: greedy must also cover this easy instance, at a cost no
  // better than the LP lower bound.
  const omn::baseline::GreedyResult greedy = omn::baseline::greedy_design(inst);
  EXPECT_TRUE(greedy.covered_all);
  EXPECT_GE(greedy.design.cost(inst), result.lp_objective - 1e-6);
}

TEST(BuildSmoke, UtilRngIsDeterministic) {
  omn::util::Rng a(42), b(42);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a(), b());
}

}  // namespace
