// Round-trip tests for design serialization.
#include "omn/core/design_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "omn/core/designer.hpp"
#include "omn/topo/akamai.hpp"

namespace {

TEST(DesignIo, RoundTrip) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(20, 3));
  const auto result = omn::core::OverlayDesigner().design(inst);
  ASSERT_TRUE(result.ok());
  const std::string text = omn::core::design_to_text(result.design);
  const auto back = omn::core::design_from_text(text, inst);
  EXPECT_EQ(back.z, result.design.z);
  EXPECT_EQ(back.y, result.design.y);
  EXPECT_EQ(back.x, result.design.x);
}

TEST(DesignIo, FileRoundTrip) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(12, 5));
  const auto result = omn::core::OverlayDesigner().design(inst);
  ASSERT_TRUE(result.ok());
  const std::string path = ::testing::TempDir() + "omn_design.txt";
  omn::core::save_design_file(result.design, path);
  const auto back = omn::core::load_design_file(path, inst);
  EXPECT_EQ(back.x, result.design.x);
  std::remove(path.c_str());
}

TEST(DesignIo, RejectsWrongInstance) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(12, 5));
  const auto other =
      omn::topo::make_akamai_like(omn::topo::global_event_config(20, 6));
  const auto result = omn::core::OverlayDesigner().design(inst);
  ASSERT_TRUE(result.ok());
  const std::string text = omn::core::design_to_text(result.design);
  EXPECT_THROW(omn::core::design_from_text(text, other), std::runtime_error);
}

TEST(DesignIo, RejectsGarbage) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(8, 7));
  EXPECT_THROW(omn::core::design_from_text("nope", inst), std::runtime_error);
  EXPECT_THROW(omn::core::design_from_text("omn-design v1\nz 1 2\n", inst),
               std::runtime_error);
}

TEST(DesignIo, MissingFileThrows) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(8, 9));
  EXPECT_THROW(omn::core::load_design_file("/nonexistent/d.txt", inst),
               std::runtime_error);
}

}  // namespace
