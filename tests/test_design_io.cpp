// Round-trip tests for design serialization.
#include "omn/core/design_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "omn/core/designer.hpp"
#include "omn/topo/akamai.hpp"

namespace {

TEST(DesignIo, RoundTrip) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(20, 3));
  const auto result = omn::core::OverlayDesigner().design(inst);
  ASSERT_TRUE(result.ok());
  const std::string text = omn::core::design_to_text(result.design);
  const auto back = omn::core::design_from_text(text, inst);
  EXPECT_EQ(back.z, result.design.z);
  EXPECT_EQ(back.y, result.design.y);
  EXPECT_EQ(back.x, result.design.x);
}

TEST(DesignIo, FileRoundTrip) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(12, 5));
  const auto result = omn::core::OverlayDesigner().design(inst);
  ASSERT_TRUE(result.ok());
  const std::string path = ::testing::TempDir() + "omn_design.txt";
  omn::core::save_design_file(result.design, path);
  const auto back = omn::core::load_design_file(path, inst);
  EXPECT_EQ(back.x, result.design.x);
  std::remove(path.c_str());
}

TEST(DesignIo, RejectsWrongInstance) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(12, 5));
  const auto other =
      omn::topo::make_akamai_like(omn::topo::global_event_config(20, 6));
  const auto result = omn::core::OverlayDesigner().design(inst);
  ASSERT_TRUE(result.ok());
  const std::string text = omn::core::design_to_text(result.design);
  EXPECT_THROW(omn::core::design_from_text(text, other), std::runtime_error);
}

TEST(DesignIo, RejectsGarbage) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(8, 7));
  EXPECT_THROW(omn::core::design_from_text("nope", inst), std::runtime_error);
  EXPECT_THROW(omn::core::design_from_text("omn-design v1\nz 1 2\n", inst),
               std::runtime_error);
}

TEST(DesignIo, MissingFileThrows) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(8, 9));
  EXPECT_THROW(omn::core::load_design_file("/nonexistent/d.txt", inst),
               std::runtime_error);
}

TEST(DesignIo, MetaRoundTripsThroughFile) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(12, 5));
  const auto result = omn::core::OverlayDesigner().design(inst);
  ASSERT_TRUE(result.ok());
  omn::core::DesignMeta meta;
  meta.seed = 77;
  meta.c = 0.125;
  meta.rounding_attempts = 4;
  meta.threads = 3;
  meta.lp_seconds = 0.1234567891234;  // full double precision must survive
  meta.rounding_seconds = 9.87e-5;
  const std::string path = ::testing::TempDir() + "omn_design_meta.txt";
  omn::core::save_design_file(result.design, path, meta);
  omn::core::DesignMeta back;
  const auto design = omn::core::load_design_file(path, inst, &back);
  EXPECT_EQ(back, meta);
  EXPECT_EQ(design.x, result.design.x);
  EXPECT_EQ(design.y, result.design.y);
  EXPECT_EQ(design.z, result.design.z);
  std::remove(path.c_str());
}

TEST(DesignIo, MetaLinesAreOptionalAndIgnorable) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(12, 5));
  const auto result = omn::core::OverlayDesigner().design(inst);
  ASSERT_TRUE(result.ok());

  // A file without meta loads with zeroed meta (old v1 files keep working).
  const std::string plain = omn::core::design_to_text(result.design);
  EXPECT_EQ(plain.find("meta"), std::string::npos);
  std::istringstream plain_in(plain);
  omn::core::DesignMeta absent;
  omn::core::load_design(plain_in, inst, &absent);
  EXPECT_EQ(absent, omn::core::DesignMeta{});

  // A file with meta loads fine through the meta-less API too, and
  // unknown keys are skipped (forward compatibility).
  omn::core::DesignMeta meta;
  meta.seed = 5;
  meta.rounding_attempts = 2;
  std::ostringstream with_meta;
  omn::core::save_design(result.design, with_meta, meta);
  std::string text = with_meta.str();
  const std::string header = "omn-design v1\n";
  text.insert(header.size(), "meta future_knob 42\n");
  const auto back = omn::core::design_from_text(text, inst);
  EXPECT_EQ(back.x, result.design.x);
  std::istringstream meta_in(text);
  omn::core::DesignMeta parsed;
  omn::core::load_design(meta_in, inst, &parsed);
  EXPECT_EQ(parsed.seed, 5u);
  EXPECT_EQ(parsed.rounding_attempts, 2);
}

TEST(DesignIo, CorruptMetaValuesAreRejectedNotTruncated) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(12, 5));
  const auto result = omn::core::OverlayDesigner().design(inst);
  ASSERT_TRUE(result.ok());

  omn::core::DesignMeta meta;
  meta.seed = 5;
  meta.rounding_attempts = 8;
  std::ostringstream os;
  omn::core::save_design(result.design, os, meta);
  const std::string good = os.str();

  // std::stoi/stod stop at the first bad byte, so `attempts 8x` used to
  // load silently as 8 — every corrupted value must throw instead.  The
  // meta-less load path must stay oblivious (meta lines are skipped,
  // values never parsed).
  const auto corrupt_one = [&](const std::string& key,
                               const std::string& bad_value) {
    const std::string from = "meta " + key + " ";
    const std::size_t at = good.find(from);
    ASSERT_NE(at, std::string::npos) << key;
    const std::size_t value_at = at + from.size();
    std::string text = good;
    text.replace(value_at, text.find('\n', value_at) - value_at, bad_value);

    std::istringstream is(text);
    omn::core::DesignMeta parsed;
    EXPECT_THROW(omn::core::load_design(is, inst, &parsed),
                 std::runtime_error)
        << key << " = '" << bad_value << "' was accepted";

    const auto back = omn::core::design_from_text(text, inst);
    EXPECT_EQ(back.x, result.design.x);
  };
  corrupt_one("attempts", "8x");
  corrupt_one("attempts", "1e3");
  corrupt_one("seed", "-1");       // stoull would wrap this to 2^64 - 1
  corrupt_one("seed", "5seven");
  corrupt_one("c", "0.5oops");
  corrupt_one("lp_seconds", "1.25.3");
  corrupt_one("threads", "two");
}

}  // namespace
