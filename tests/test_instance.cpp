// Unit tests for the overlay instance model and weight transforms.
#include "omn/net/instance.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using omn::net::OverlayInstance;
using omn::net::Reflector;
using omn::net::ReflectorSinkEdge;
using omn::net::Sink;
using omn::net::Source;
using omn::net::SourceReflectorEdge;

OverlayInstance tiny() {
  OverlayInstance inst;
  inst.add_source(Source{"s0", 1.0});
  inst.add_reflector(Reflector{"r0", 10.0, 4.0, 0});
  inst.add_reflector(Reflector{"r1", 20.0, 4.0, 1});
  inst.add_sink(Sink{"d0", 0, 0.99});
  inst.add_source_reflector_edge(SourceReflectorEdge{0, 0, 1.0, 0.02});
  inst.add_source_reflector_edge(SourceReflectorEdge{0, 1, 2.0, 0.05});
  inst.add_reflector_sink_edge(ReflectorSinkEdge{0, 0, 0.5, 0.01, {}});
  inst.add_reflector_sink_edge(ReflectorSinkEdge{1, 0, 0.7, 0.03, {}});
  return inst;
}

TEST(Instance, CountsAndAccessors) {
  const OverlayInstance inst = tiny();
  EXPECT_EQ(inst.num_sources(), 1);
  EXPECT_EQ(inst.num_reflectors(), 2);
  EXPECT_EQ(inst.num_sinks(), 1);
  EXPECT_EQ(inst.num_colors(), 2);
  EXPECT_EQ(inst.source(0).name, "s0");
  EXPECT_EQ(inst.reflector(1).color, 1);
}

TEST(Instance, AdjacencyIndexes) {
  const OverlayInstance inst = tiny();
  EXPECT_EQ(inst.source_out(0).size(), 2u);
  EXPECT_EQ(inst.reflector_out(0).size(), 1u);
  EXPECT_EQ(inst.sink_in(0).size(), 2u);
  EXPECT_EQ(inst.find_sr_edge(0, 1), 1);
  EXPECT_EQ(inst.find_sr_edge(0, 99), -1);
  EXPECT_EQ(inst.find_rd_edge(1, 0), 1);
  EXPECT_EQ(inst.find_rd_edge(0, 99), -1);
}

TEST(Instance, AdjacencyRefreshesAfterMutation) {
  OverlayInstance inst = tiny();
  EXPECT_EQ(inst.sink_in(0).size(), 2u);
  inst.add_sink(Sink{"d1", 0, 0.9});
  inst.add_reflector_sink_edge(ReflectorSinkEdge{0, 1, 0.1, 0.1, {}});
  EXPECT_EQ(inst.sink_in(1).size(), 1u);
}

TEST(Instance, PathFailureFormula) {
  // p1 + p2 - p1 p2.
  EXPECT_DOUBLE_EQ(OverlayInstance::path_failure(0.1, 0.2), 0.28);
  EXPECT_DOUBLE_EQ(OverlayInstance::path_failure(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(OverlayInstance::path_failure(1.0, 0.5), 1.0);
}

TEST(Instance, PathWeightIsNegLog) {
  const double w = OverlayInstance::path_weight(0.1, 0.2);
  EXPECT_NEAR(w, -std::log(0.28), 1e-12);
}

TEST(Instance, PathWeightClampsPerfectLinks) {
  const double w = OverlayInstance::path_weight(0.0, 0.0);
  EXPECT_NEAR(w, -std::log(omn::net::kMinFailure), 1e-9);
  EXPECT_TRUE(std::isfinite(w));
}

TEST(Instance, DemandWeight) {
  EXPECT_NEAR(OverlayInstance::demand_weight(0.99), -std::log(0.01), 1e-12);
}

TEST(Instance, WeightHelperUsesBothHops) {
  const OverlayInstance inst = tiny();
  const auto w = inst.weight(0, 0);
  ASSERT_TRUE(w.has_value());
  EXPECT_NEAR(*w, OverlayInstance::path_weight(0.02, 0.01), 1e-12);
  EXPECT_FALSE(inst.weight(0, 0).has_value() == false);
}

TEST(Instance, WeightAbsentWithoutEdges) {
  OverlayInstance inst = tiny();
  inst.add_sink(Sink{"d-disconnected", 0, 0.9});
  EXPECT_FALSE(inst.weight(0, 1).has_value());
}

TEST(Instance, ValidateAcceptsTiny) {
  EXPECT_NO_THROW(tiny().validate());
}

TEST(Instance, ValidateRejectsBadThreshold) {
  OverlayInstance inst = tiny();
  inst.sink(0).threshold = 1.0;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
  inst.sink(0).threshold = 0.0;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, ValidateRejectsBadLoss) {
  OverlayInstance inst = tiny();
  inst.sr_edge(0).loss = 1.5;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, ValidateRejectsDanglingEdge) {
  OverlayInstance inst = tiny();
  inst.add_reflector_sink_edge(ReflectorSinkEdge{0, 7, 0.1, 0.1, {}});
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, ValidateRejectsDuplicateEdge) {
  OverlayInstance inst = tiny();
  inst.add_reflector_sink_edge(ReflectorSinkEdge{0, 0, 0.9, 0.2, {}});
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, ValidateRejectsNonPositiveFanout) {
  OverlayInstance inst = tiny();
  inst.reflector(0).fanout = 0.0;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, ValidateRejectsUnknownCommodity) {
  OverlayInstance inst = tiny();
  inst.sink(0).commodity = 3;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, ExpandMultiDemandCopiesSinksAndEdges) {
  OverlayInstance multi;
  multi.add_source(Source{"s0", 1.0});
  multi.add_source(Source{"s1", 1.0});
  multi.add_reflector(Reflector{"r0", 1.0, 8.0, 0});
  multi.add_source_reflector_edge(SourceReflectorEdge{0, 0, 1.0, 0.01});
  multi.add_source_reflector_edge(SourceReflectorEdge{1, 0, 1.0, 0.01});
  multi.add_sink(Sink{"edge", 0, 0.9});
  multi.add_reflector_sink_edge(ReflectorSinkEdge{0, 0, 0.2, 0.02, {}});

  const auto expanded = OverlayInstance::expand_multi_demand(
      multi, {{{0, 0.95}, {1, 0.99}}});
  EXPECT_EQ(expanded.num_sinks(), 2);
  EXPECT_EQ(expanded.sink(0).commodity, 0);
  EXPECT_EQ(expanded.sink(1).commodity, 1);
  EXPECT_DOUBLE_EQ(expanded.sink(1).threshold, 0.99);
  EXPECT_EQ(expanded.sink_in(0).size(), 1u);
  EXPECT_EQ(expanded.sink_in(1).size(), 1u);
  EXPECT_NO_THROW(expanded.validate());
}

TEST(Instance, ExpandMultiDemandSizeMismatchThrows) {
  const OverlayInstance multi = tiny();
  EXPECT_THROW(OverlayInstance::expand_multi_demand(multi, {}),
               std::invalid_argument);
}

TEST(Instance, TotalDemandWeight) {
  OverlayInstance inst = tiny();
  const double expected = OverlayInstance::demand_weight(0.99);
  EXPECT_NEAR(inst.total_demand_weight(), expected, 1e-12);
}

}  // namespace
