// Unit and property tests for the flow substrate, including a cross-check
// of min-cost flow against the LP solver on random transportation problems
// (two independently implemented substrates must agree).
#include "omn/flow/graph.hpp"
#include "omn/flow/max_flow.hpp"
#include "omn/flow/min_cost_flow.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "omn/lp/model.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/util/rng.hpp"

namespace {

using omn::flow::Graph;
using omn::flow::max_flow;
using omn::flow::min_cost_flow;

TEST(Graph, AddEdgeCreatesTwin) {
  Graph g(2);
  const int e = g.add_edge(0, 1, 5, 2.0);
  EXPECT_EQ(g.edge(e).to, 1);
  EXPECT_EQ(g.edge(e).capacity, 5);
  EXPECT_EQ(g.edge(g.edge(e).twin).to, 0);
  EXPECT_EQ(g.edge(g.edge(e).twin).capacity, 0);
  EXPECT_DOUBLE_EQ(g.edge(g.edge(e).twin).cost, -2.0);
}

TEST(Graph, RejectsBadInput) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 1, -1), std::invalid_argument);
}

TEST(MaxFlow, SingleEdge) {
  Graph g(2);
  g.add_edge(0, 1, 7);
  EXPECT_EQ(max_flow(g, 0, 1), 7);
}

TEST(MaxFlow, ClassicDiamond) {
  // s -> a (3), s -> b (2), a -> t (2), b -> t (3), a -> b (1): max 5.
  Graph g(4);
  g.add_edge(0, 1, 3);
  g.add_edge(0, 2, 2);
  g.add_edge(1, 3, 2);
  g.add_edge(2, 3, 3);
  g.add_edge(1, 2, 1);
  EXPECT_EQ(max_flow(g, 0, 3), 5);
}

TEST(MaxFlow, DisconnectedIsZero) {
  Graph g(4);
  g.add_edge(0, 1, 10);
  g.add_edge(2, 3, 10);
  EXPECT_EQ(max_flow(g, 0, 3), 0);
}

TEST(MaxFlow, RespectsCutNotEdgeCount) {
  // Wide first layer, bottleneck of 1 in the middle.
  Graph g(6);
  for (int i = 1; i <= 3; ++i) {
    g.add_edge(0, i, 10);
    g.add_edge(4, 5, 10);
    g.add_edge(i, 4, 10);
  }
  // Replace middle edges with a single bottleneck.
  Graph h(4);
  h.add_edge(0, 1, 100);
  h.add_edge(1, 2, 1);
  h.add_edge(2, 3, 100);
  EXPECT_EQ(max_flow(h, 0, 3), 1);
}

TEST(MaxFlow, FlowOnReportsPerEdge) {
  Graph g(3);
  const int a = g.add_edge(0, 1, 4);
  const int b = g.add_edge(1, 2, 3);
  EXPECT_EQ(max_flow(g, 0, 2), 3);
  EXPECT_EQ(g.flow_on(a), 3);
  EXPECT_EQ(g.flow_on(b), 3);
}

TEST(MaxFlow, ResetFlowRestoresCapacity) {
  Graph g(2);
  const int e = g.add_edge(0, 1, 5);
  EXPECT_EQ(max_flow(g, 0, 1), 5);
  g.reset_flow();
  EXPECT_EQ(g.edge(e).capacity, 5);
  EXPECT_EQ(g.flow_on(e), 0);
  EXPECT_EQ(max_flow(g, 0, 1), 5);
}

TEST(MaxFlow, InvalidArgs) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(max_flow(g, 0, 0), std::invalid_argument);
  EXPECT_THROW(max_flow(g, 0, 9), std::out_of_range);
}

TEST(MinCostFlow, PrefersCheapPath) {
  // Two parallel 2-hop routes; cheaper one must fill first.
  Graph g(4);
  const int cheap1 = g.add_edge(0, 1, 1, 1.0);
  const int cheap2 = g.add_edge(1, 3, 1, 1.0);
  const int costly1 = g.add_edge(0, 2, 1, 10.0);
  const int costly2 = g.add_edge(2, 3, 1, 10.0);
  const auto r1 = min_cost_flow(g, 0, 3, 1);
  EXPECT_EQ(r1.flow, 1);
  EXPECT_DOUBLE_EQ(r1.cost, 2.0);
  EXPECT_EQ(g.flow_on(cheap1), 1);
  EXPECT_EQ(g.flow_on(costly1), 0);
  // Second unit must take the expensive route.
  const auto r2 = min_cost_flow(g, 0, 3, 1);
  EXPECT_EQ(r2.flow, 1);
  EXPECT_DOUBLE_EQ(r2.cost, 20.0);
  EXPECT_EQ(g.flow_on(cheap2), 1);
  EXPECT_EQ(g.flow_on(costly2), 1);
}

TEST(MinCostFlow, StopsAtMaxFlow) {
  Graph g(2);
  g.add_edge(0, 1, 3, 1.0);
  const auto r = min_cost_flow(g, 0, 1, 100);
  EXPECT_EQ(r.flow, 3);
  EXPECT_FALSE(r.reached_target);
}

TEST(MinCostFlow, HandlesNegativeCosts) {
  // Negative edge on the longer path makes it cheaper overall.
  Graph g(3);
  g.add_edge(0, 1, 1, 5.0);
  g.add_edge(1, 2, 1, -4.0);
  g.add_edge(0, 2, 1, 3.0);
  const auto r = min_cost_flow(g, 0, 2, 1);
  EXPECT_EQ(r.flow, 1);
  EXPECT_DOUBLE_EQ(r.cost, 1.0);  // 5 - 4 beats 3
}

TEST(MinCostFlow, ZeroTarget) {
  Graph g(2);
  g.add_edge(0, 1, 1, 1.0);
  const auto r = min_cost_flow(g, 0, 1, 0);
  EXPECT_EQ(r.flow, 0);
  EXPECT_TRUE(r.reached_target);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

// ---- property: min-cost flow agrees with the LP solver -------------------

struct Transportation {
  int suppliers;
  int consumers;
  std::vector<std::int64_t> supply;
  std::vector<std::int64_t> demand;
  std::vector<std::vector<double>> cost;
};

Transportation random_transportation(std::uint64_t seed) {
  omn::util::Rng rng(seed);
  Transportation t;
  t.suppliers = 2 + static_cast<int>(rng.uniform_index(3));
  t.consumers = 2 + static_cast<int>(rng.uniform_index(3));
  t.supply.resize(t.suppliers);
  t.demand.resize(t.consumers);
  // Balanced instance.
  std::int64_t total = 0;
  for (auto& s : t.supply) {
    s = 1 + static_cast<std::int64_t>(rng.uniform_index(5));
    total += s;
  }
  std::int64_t left = total;
  for (int j = 0; j < t.consumers; ++j) {
    if (j == t.consumers - 1) {
      t.demand[j] = left;
    } else {
      t.demand[j] = left > 0 ? static_cast<std::int64_t>(
                                   rng.uniform_index(left + 1))
                             : 0;
      left -= t.demand[j];
    }
  }
  t.cost.assign(t.suppliers, std::vector<double>(t.consumers));
  for (auto& row : t.cost) {
    for (auto& c : row) c = rng.uniform(0.5, 10.0);
  }
  return t;
}

class TransportationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransportationTest, MinCostFlowMatchesSimplex) {
  const Transportation t = random_transportation(GetParam());

  // Min-cost flow formulation.
  const int s_node = t.suppliers + t.consumers;
  const int t_node = s_node + 1;
  Graph g(t.suppliers + t.consumers + 2);
  std::int64_t total = 0;
  for (int i = 0; i < t.suppliers; ++i) {
    g.add_edge(s_node, i, t.supply[i], 0.0);
    total += t.supply[i];
  }
  for (int j = 0; j < t.consumers; ++j) {
    g.add_edge(t.suppliers + j, t_node, t.demand[j], 0.0);
  }
  for (int i = 0; i < t.suppliers; ++i) {
    for (int j = 0; j < t.consumers; ++j) {
      g.add_edge(i, t.suppliers + j, total, t.cost[i][j]);
    }
  }
  const auto flow = min_cost_flow(g, s_node, t_node, total);
  ASSERT_TRUE(flow.reached_target);

  // LP formulation of the same problem.
  omn::lp::Model m;
  std::vector<std::vector<int>> var(t.suppliers, std::vector<int>(t.consumers));
  for (int i = 0; i < t.suppliers; ++i) {
    for (int j = 0; j < t.consumers; ++j) {
      var[i][j] = m.add_variable(0.0, omn::lp::kInfinity, t.cost[i][j]);
    }
  }
  for (int i = 0; i < t.suppliers; ++i) {
    const int r = m.add_row(omn::lp::RowSense::kLessEqual,
                            static_cast<double>(t.supply[i]));
    for (int j = 0; j < t.consumers; ++j) m.add_coefficient(r, var[i][j], 1.0);
  }
  for (int j = 0; j < t.consumers; ++j) {
    const int r = m.add_row(omn::lp::RowSense::kGreaterEqual,
                            static_cast<double>(t.demand[j]));
    for (int i = 0; i < t.suppliers; ++i) m.add_coefficient(r, var[i][j], 1.0);
  }
  const auto lp = omn::lp::SimplexSolver().solve(m);
  ASSERT_EQ(lp.status, omn::lp::SolveStatus::kOptimal);

  EXPECT_NEAR(flow.cost, lp.objective, 1e-6 * (1.0 + std::abs(lp.objective)))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportationTest,
                         ::testing::Range<std::uint64_t>(1, 41));

// Conservation property on random graphs.
class ConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationTest, MaxFlowConservesAtInternalNodes) {
  omn::util::Rng rng(GetParam());
  const int n = 6 + static_cast<int>(rng.uniform_index(10));
  Graph g(n);
  for (int e = 0; e < 3 * n; ++e) {
    const int u = static_cast<int>(rng.uniform_index(n));
    const int v = static_cast<int>(rng.uniform_index(n));
    if (u == v) continue;
    g.add_edge(u, v, 1 + static_cast<std::int64_t>(rng.uniform_index(9)));
  }
  const std::int64_t value = max_flow(g, 0, n - 1);
  std::vector<std::int64_t> net(n, 0);
  for (int id = 0; id < 2 * g.num_edges(); id += 2) {
    const auto f = g.flow_on(id);
    ASSERT_GE(f, 0);
    ASSERT_LE(f, g.capacity_of(id));
    const int to = g.edge(id).to;
    const int from = g.edge(g.edge(id).twin).to;
    net[from] -= f;
    net[to] += f;
  }
  EXPECT_EQ(net[0], -value);
  EXPECT_EQ(net[n - 1], value);
  for (int v = 1; v + 1 < n; ++v) EXPECT_EQ(net[v], 0) << "node " << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest,
                         ::testing::Range<std::uint64_t>(50, 80));

}  // namespace
