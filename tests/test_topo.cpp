// Tests for the synthetic topology generators.
#include "omn/topo/akamai.hpp"
#include "omn/topo/synthetic.hpp"

#include <gtest/gtest.h>

#include <set>

#include "omn/net/serialize.hpp"

namespace {

using omn::net::OverlayInstance;

TEST(AkamaiLike, ProducesRequestedSizes) {
  auto cfg = omn::topo::global_event_config(40, 1);
  const OverlayInstance inst = omn::topo::make_akamai_like(cfg);
  EXPECT_EQ(inst.num_sinks(), 40);
  EXPECT_EQ(inst.num_sources(), cfg.num_sources);
  EXPECT_EQ(inst.num_reflectors(), cfg.num_reflectors);
  EXPECT_NO_THROW(inst.validate());
}

TEST(AkamaiLike, DeterministicPerSeed) {
  const auto a = omn::topo::make_akamai_like(omn::topo::global_event_config(25, 5));
  const auto b = omn::topo::make_akamai_like(omn::topo::global_event_config(25, 5));
  EXPECT_EQ(omn::net::to_text(a), omn::net::to_text(b));
}

TEST(AkamaiLike, DifferentSeedsDiffer) {
  const auto a = omn::topo::make_akamai_like(omn::topo::global_event_config(25, 5));
  const auto b = omn::topo::make_akamai_like(omn::topo::global_event_config(25, 6));
  EXPECT_NE(omn::net::to_text(a), omn::net::to_text(b));
}

TEST(AkamaiLike, SourcesReachEveryReflector) {
  const auto inst = omn::topo::make_akamai_like(omn::topo::global_event_config(30, 2));
  for (int k = 0; k < inst.num_sources(); ++k) {
    for (int i = 0; i < inst.num_reflectors(); ++i) {
      EXPECT_GE(inst.find_sr_edge(k, i), 0);
    }
  }
}

TEST(AkamaiLike, EverySinkDemandIsSatisfiableWithMargin) {
  const auto cfg = omn::topo::global_event_config(60, 3);
  const auto inst = omn::topo::make_akamai_like(cfg);
  for (int j = 0; j < inst.num_sinks(); ++j) {
    double available = 0.0;
    for (int id : inst.sink_in(j)) {
      const auto& e = inst.rd_edges()[static_cast<std::size_t>(id)];
      const int sr = inst.find_sr_edge(inst.sink(j).commodity, e.reflector);
      ASSERT_GE(sr, 0);
      available += OverlayInstance::path_weight(inst.sr_edge(sr).loss, e.loss);
    }
    EXPECT_GE(available, inst.sink_demand_weight(j) - 1e-9) << "sink " << j;
  }
}

TEST(AkamaiLike, ColorsPartitionReflectors) {
  auto cfg = omn::topo::global_event_config(40, 4);
  cfg.num_isps = 5;
  const auto inst = omn::topo::make_akamai_like(cfg);
  std::set<int> seen;
  for (int i = 0; i < inst.num_reflectors(); ++i) {
    seen.insert(inst.reflector(i).color);
    EXPECT_LT(inst.reflector(i).color, 5);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(AkamaiLike, EuHeavyConfigSkewsFocus) {
  const auto cfg = omn::topo::eu_heavy_event_config(50, 1);
  EXPECT_GT(cfg.focus_fraction, 0.5);
  EXPECT_NO_THROW(omn::topo::make_akamai_like(cfg).validate());
}

TEST(AkamaiLike, RejectsEmptyStage) {
  omn::topo::AkamaiLikeConfig cfg;
  cfg.num_sinks = 0;
  EXPECT_THROW(omn::topo::make_akamai_like(cfg), std::invalid_argument);
}

TEST(UniformRandom, ValidatesAndSatisfiable) {
  omn::topo::UniformConfig cfg;
  cfg.num_sinks = 40;
  cfg.seed = 11;
  const auto inst = omn::topo::make_uniform_random(cfg);
  EXPECT_NO_THROW(inst.validate());
  for (int j = 0; j < inst.num_sinks(); ++j) {
    double available = 0.0;
    for (int id : inst.sink_in(j)) {
      const auto& e = inst.rd_edges()[static_cast<std::size_t>(id)];
      const int sr = inst.find_sr_edge(inst.sink(j).commodity, e.reflector);
      if (sr < 0) continue;
      available += OverlayInstance::path_weight(inst.sr_edge(sr).loss, e.loss);
    }
    EXPECT_GE(available, inst.sink_demand_weight(j) - 1e-9);
  }
}

TEST(UniformRandom, DensityControlsEdgeCount) {
  omn::topo::UniformConfig sparse;
  sparse.rd_edge_density = 0.1;
  sparse.weight_margin = 0.0;
  sparse.seed = 13;
  omn::topo::UniformConfig dense = sparse;
  dense.rd_edge_density = 0.9;
  const auto a = omn::topo::make_uniform_random(sparse);
  const auto b = omn::topo::make_uniform_random(dense);
  EXPECT_LT(a.rd_edges().size(), b.rd_edges().size());
}

TEST(SetCover, EncodesCoverExactly) {
  // Sets {0,1}, {1,2}, {2,3}: optimal cover of {0..3} has size 2.
  const auto sc = omn::topo::make_set_cover({{0, 1}, {1, 2}, {2, 3}}, 4);
  EXPECT_EQ(sc.network.num_reflectors(), 3);
  EXPECT_EQ(sc.network.num_sinks(), 4);
  EXPECT_NO_THROW(sc.network.validate());
  // Unit reflector costs, zero edge costs.
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(sc.network.reflector(i).build_cost, 1.0);
  }
  for (const auto& e : sc.network.rd_edges()) EXPECT_DOUBLE_EQ(e.cost, 0.0);
  // A single covering reflector must satisfy the threshold.
  const auto& edge = sc.network.rd_edges()[0];
  const int sr = sc.network.find_sr_edge(0, edge.reflector);
  const double w = OverlayInstance::path_weight(sc.network.sr_edge(sr).loss,
                                                edge.loss);
  EXPECT_GE(w, sc.network.sink_demand_weight(edge.sink));
}

TEST(SetCover, RandomInstanceCoversEveryElement) {
  const auto sc = omn::topo::make_random_set_cover(30, 8, 0.2, 17);
  std::vector<bool> covered(30, false);
  for (const auto& set : sc.sets) {
    for (int el : set) covered[static_cast<std::size_t>(el)] = true;
  }
  for (int el = 0; el < 30; ++el) EXPECT_TRUE(covered[el]) << el;
}

TEST(SetCover, RejectsBadElements) {
  EXPECT_THROW(omn::topo::make_set_cover({{5}}, 3), std::invalid_argument);
  EXPECT_THROW(omn::topo::make_set_cover({}, 0), std::invalid_argument);
}

}  // namespace
