// Cross-module integration tests: the full pipeline from topology
// generation through design to Monte Carlo validation, plus persistence.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "omn/baseline/greedy.hpp"
#include "omn/core/designer.hpp"
#include "omn/net/serialize.hpp"
#include "omn/sim/failures.hpp"
#include "omn/sim/packet_sim.hpp"
#include "omn/topo/akamai.hpp"

namespace {

TEST(Integration, DesignSurvivesSerializationRoundTrip) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(24, 21));
  const auto reloaded = omn::net::from_text(omn::net::to_text(inst));
  omn::core::DesignerConfig cfg;
  cfg.seed = 4;
  const auto a = omn::core::OverlayDesigner(cfg).design(inst);
  const auto b = omn::core::OverlayDesigner(cfg).design(reloaded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same bits in, same design out.
  EXPECT_EQ(a.design.x, b.design.x);
  EXPECT_DOUBLE_EQ(a.evaluation.total_cost, b.evaluation.total_cost);
}

TEST(Integration, DesignedNetworkDeliversUnderMonteCarlo) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(30, 22));
  omn::core::DesignerConfig cfg;
  cfg.rounding_attempts = 5;
  const auto result = omn::core::OverlayDesigner(cfg).design(inst);
  ASSERT_TRUE(result.ok());

  omn::sim::SimulationConfig sim;
  sim.num_packets = 100000;
  const auto report = omn::sim::simulate(inst, result.design, sim);
  // Every sink must meet the paper's factor-4 relaxed guarantee under
  // actual packet losses.
  EXPECT_GE(report.fraction_meeting_quarter_guarantee, 0.99);
}

TEST(Integration, AlgorithmBeatsGreedyOnReliabilityPerDollarOrCost) {
  // The LP-rounding algorithm and greedy both produce feasible designs;
  // record that the LP design's cost stays within a reasonable factor of
  // greedy's (the cost comparison experiment E9 reports exact numbers).
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(36, 23));
  const auto algo = omn::core::OverlayDesigner().design(inst);
  const auto greedy = omn::baseline::greedy_design(inst);
  ASSERT_TRUE(algo.ok());
  ASSERT_TRUE(greedy.covered_all);
  const auto ge = omn::core::evaluate(inst, greedy.design);
  EXPECT_GT(algo.evaluation.total_cost, 0.0);
  EXPECT_GT(ge.total_cost, 0.0);
  // Both respect the LP lower bound.
  EXPECT_GE(ge.total_cost, algo.lp_objective - 1e-6);
  EXPECT_GE(algo.evaluation.total_cost, algo.lp_objective - 1e-6);
}

TEST(Integration, ColorDesignSurvivesWorstIspOutageBetter) {
  auto topo_cfg = omn::topo::global_event_config(40, 24);
  topo_cfg.num_isps = 4;
  topo_cfg.candidates_per_sink = 10;
  const auto inst = omn::topo::make_akamai_like(topo_cfg);

  omn::core::DesignerConfig plain;
  plain.seed = 2;
  plain.rounding_attempts = 4;
  omn::core::DesignerConfig colored = plain;
  colored.color_constraints = true;

  const auto a = omn::core::OverlayDesigner(plain).design(inst);
  const auto b = omn::core::OverlayDesigner(colored).design(inst);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  const auto sweep_plain = omn::sim::color_failure_sweep(inst, a.design);
  const auto sweep_colored = omn::sim::color_failure_sweep(inst, b.design);
  auto worst_served = [](const auto& sweep) {
    double worst = 1.0;
    for (const auto& r : sweep) worst = std::min(worst, r.fraction_served);
    return worst;
  };
  // Color diversification must not make the worst single-ISP outage
  // materially worse, and must keep serving a majority of sinks.  (Sinks
  // whose demand is met by a single copy are unprotectable by diversity;
  // experiment E6 quantifies the full picture.)
  EXPECT_GE(worst_served(sweep_colored), worst_served(sweep_plain) - 0.05);
  EXPECT_GE(worst_served(sweep_colored), 0.5);
}

TEST(Integration, EuHeavyScenarioDesigns) {
  const auto inst = omn::topo::make_akamai_like(
      omn::topo::eu_heavy_event_config(32, 25));
  const auto result = omn::core::OverlayDesigner().design(inst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.evaluation.sinks_unserved, 0);
  EXPECT_GE(result.evaluation.min_weight_ratio, 0.25 - 1e-9);
}

TEST(Integration, MultiDemandExpansionDesigns) {
  // Build a 2-commodity base where each edgeserver wants both streams.
  auto topo_cfg = omn::topo::global_event_config(16, 26);
  topo_cfg.num_sources = 2;
  auto base = omn::topo::make_akamai_like(topo_cfg);
  std::vector<std::vector<std::pair<int, double>>> demands(
      static_cast<std::size_t>(base.num_sinks()));
  for (int j = 0; j < base.num_sinks(); ++j) {
    demands[static_cast<std::size_t>(j)] = {{0, 0.95}, {1, 0.95}};
  }
  const auto expanded =
      omn::net::OverlayInstance::expand_multi_demand(base, demands);
  EXPECT_EQ(expanded.num_sinks(), base.num_sinks() * 2);
  const auto result = omn::core::OverlayDesigner().design(expanded);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.evaluation.min_weight_ratio, 0.25 - 1e-9);
}

}  // namespace
