// Round-trip tests for the text serialization.
#include "omn/net/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "omn/topo/akamai.hpp"
#include "omn/topo/synthetic.hpp"

namespace {

using omn::net::OverlayInstance;

void expect_equal(const OverlayInstance& a, const OverlayInstance& b) {
  ASSERT_EQ(a.num_sources(), b.num_sources());
  ASSERT_EQ(a.num_reflectors(), b.num_reflectors());
  ASSERT_EQ(a.num_sinks(), b.num_sinks());
  ASSERT_EQ(a.sr_edges().size(), b.sr_edges().size());
  ASSERT_EQ(a.rd_edges().size(), b.rd_edges().size());
  for (int k = 0; k < a.num_sources(); ++k) {
    EXPECT_DOUBLE_EQ(a.source(k).bandwidth, b.source(k).bandwidth);
  }
  for (int i = 0; i < a.num_reflectors(); ++i) {
    EXPECT_DOUBLE_EQ(a.reflector(i).build_cost, b.reflector(i).build_cost);
    EXPECT_DOUBLE_EQ(a.reflector(i).fanout, b.reflector(i).fanout);
    EXPECT_EQ(a.reflector(i).color, b.reflector(i).color);
  }
  for (int j = 0; j < a.num_sinks(); ++j) {
    EXPECT_EQ(a.sink(j).commodity, b.sink(j).commodity);
    EXPECT_DOUBLE_EQ(a.sink(j).threshold, b.sink(j).threshold);
  }
  for (std::size_t e = 0; e < a.sr_edges().size(); ++e) {
    EXPECT_DOUBLE_EQ(a.sr_edges()[e].cost, b.sr_edges()[e].cost);
    EXPECT_DOUBLE_EQ(a.sr_edges()[e].loss, b.sr_edges()[e].loss);
  }
  for (std::size_t e = 0; e < a.rd_edges().size(); ++e) {
    EXPECT_DOUBLE_EQ(a.rd_edges()[e].cost, b.rd_edges()[e].cost);
    EXPECT_DOUBLE_EQ(a.rd_edges()[e].loss, b.rd_edges()[e].loss);
    EXPECT_EQ(a.rd_edges()[e].capacity.has_value(),
              b.rd_edges()[e].capacity.has_value());
  }
}

TEST(Serialize, RoundTripAkamaiLike) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(30, 7));
  const std::string text = omn::net::to_text(inst);
  const OverlayInstance back = omn::net::from_text(text);
  expect_equal(inst, back);
}

TEST(Serialize, RoundTripUniform) {
  omn::topo::UniformConfig cfg;
  cfg.seed = 3;
  const auto inst = omn::topo::make_uniform_random(cfg);
  expect_equal(inst, omn::net::from_text(omn::net::to_text(inst)));
}

TEST(Serialize, PreservesCapacities) {
  OverlayInstance inst;
  inst.add_source(omn::net::Source{"s", 1.0});
  inst.add_reflector(omn::net::Reflector{"r", 1.0, 2.0, 0});
  inst.add_sink(omn::net::Sink{"d", 0, 0.9});
  inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, 0, 1.0, 0.1});
  omn::net::ReflectorSinkEdge e{0, 0, 1.0, 0.1, {}};
  e.capacity = 0.5;
  inst.add_reflector_sink_edge(e);
  const OverlayInstance back = omn::net::from_text(omn::net::to_text(inst));
  ASSERT_TRUE(back.rd_edges()[0].capacity.has_value());
  EXPECT_DOUBLE_EQ(*back.rd_edges()[0].capacity, 0.5);
}

TEST(Serialize, NamesWithSpacesAreSanitized) {
  OverlayInstance inst;
  inst.add_source(omn::net::Source{"has space", 1.0});
  inst.add_reflector(omn::net::Reflector{"r", 1.0, 2.0, 0});
  inst.add_sink(omn::net::Sink{"d", 0, 0.9});
  inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, 0, 0.0, 0.1});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{0, 0, 0.0, 0.1, {}});
  const OverlayInstance back = omn::net::from_text(omn::net::to_text(inst));
  EXPECT_EQ(back.source(0).name, "has_space");
}

// Capacity fields are read as raw tokens (to admit "inf") and parsed with
// the strict util::parse_double.  A corrupt token must throw — the old
// std::stod path would have truncated "0.5x" to 0.5 and loaded a wrong
// instance silently.
TEST(Serialize, RejectsCorruptRdEdgeCapacity) {
  OverlayInstance inst;
  inst.add_source(omn::net::Source{"s", 1.0});
  inst.add_reflector(omn::net::Reflector{"r", 1.0, 2.0, 0});
  inst.add_sink(omn::net::Sink{"d", 0, 0.9});
  inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, 0, 1.0, 0.1});
  omn::net::ReflectorSinkEdge e{0, 0, 1.0, 0.1, {}};
  e.capacity = 0.5;
  inst.add_reflector_sink_edge(e);
  const std::string text = omn::net::to_text(inst);
  ASSERT_NE(text.find(" 0.5 "), std::string::npos);
  for (const char* bad : {"0.5x", "nan", "+0.5", "1e", "."}) {
    std::string corrupt = text;
    corrupt.replace(corrupt.find(" 0.5 "), 5,
                    std::string(" ") + bad + " ");
    try {
      omn::net::from_text(corrupt);
      FAIL() << "accepted rd-edge capacity '" << bad << "'";
    } catch (const std::runtime_error& err) {
      EXPECT_NE(std::string(err.what()).find("rd-edge capacity"),
                std::string::npos)
          << err.what();
    }
  }
}

TEST(Serialize, RejectsCorruptReflectorCapacity) {
  OverlayInstance inst;
  inst.add_source(omn::net::Source{"s", 1.0});
  omn::net::Reflector r{"r", 1.0, 2.0, 0};
  r.stream_capacity = 7.5;
  inst.add_reflector(r);
  inst.add_sink(omn::net::Sink{"d", 0, 0.9});
  inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, 0, 1.0, 0.1});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{0, 0, 1.0, 0.1, {}});
  std::string text = omn::net::to_text(inst);
  ASSERT_NE(text.find("7.5"), std::string::npos);
  text.replace(text.find("7.5"), 3, "7,5");  // locale decimal comma
  try {
    omn::net::from_text(text);
    FAIL() << "accepted reflector capacity '7,5'";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("reflector capacity"),
              std::string::npos)
        << err.what();
  }
}

TEST(Serialize, RejectsGarbage) {
  EXPECT_THROW(omn::net::from_text("not an instance"), std::runtime_error);
  EXPECT_THROW(omn::net::from_text("omn-instance v9\n"), std::runtime_error);
}

TEST(Serialize, RejectsTruncated) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(10, 7));
  std::string text = omn::net::to_text(inst);
  text.resize(text.size() / 2);
  EXPECT_ANY_THROW(omn::net::from_text(text));
}

TEST(Serialize, FileRoundTrip) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(12, 9));
  const std::string path = ::testing::TempDir() + "omn_roundtrip.txt";
  omn::net::save_file(inst, path);
  const OverlayInstance back = omn::net::load_file(path);
  expect_equal(inst, back);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(omn::net::load_file("/nonexistent/omn.txt"), std::runtime_error);
}

}  // namespace
