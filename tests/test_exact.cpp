// Tests for the exact branch-and-bound IP solver.
#include "omn/core/exact.hpp"

#include <gtest/gtest.h>

#include "omn/baseline/greedy.hpp"
#include "omn/core/designer.hpp"
#include "omn/core/evaluator.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/topo/synthetic.hpp"

namespace {

using omn::core::ExactOptions;
using omn::core::ExactResult;
using omn::core::solve_exact;

TEST(Exact, SetCoverOptimumIsTwo) {
  // Sets {0,1},{1,2},{2,3}: optimal cover {0,2} of size 2.
  const auto sc = omn::topo::make_set_cover({{0, 1}, {1, 2}, {2, 3}}, 4);
  const ExactResult r = solve_exact(sc.network);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
  EXPECT_EQ(r.design.z[0], 1);
  EXPECT_EQ(r.design.z[1], 0);
  EXPECT_EQ(r.design.z[2], 1);
}

TEST(Exact, SingleSetCover) {
  const auto sc = omn::topo::make_set_cover({{0, 1, 2}}, 3);
  const ExactResult r = solve_exact(sc.network);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective, 1.0, 1e-6);
}

TEST(Exact, InfeasibleInstanceDetected) {
  omn::net::OverlayInstance inst;
  inst.add_source(omn::net::Source{"s", 1.0});
  inst.add_reflector(omn::net::Reflector{"r", 1.0, 1.0, 0});
  inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, 0, 1.0, 0.4});
  inst.add_sink(omn::net::Sink{"d", 0, 0.99999});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{0, 0, 1.0, 0.4, {}});
  const ExactResult r = solve_exact(inst);
  EXPECT_EQ(r.status, ExactResult::Status::kInfeasible);
  EXPECT_FALSE(r.has_design);
}

TEST(Exact, SolutionIsFeasibleAndConsistent) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(8, 3));
  const ExactResult r = solve_exact(inst);
  ASSERT_TRUE(r.optimal());
  const auto ev = omn::core::evaluate(inst, r.design);
  EXPECT_TRUE(ev.consistent);
  EXPECT_GE(ev.min_weight_ratio, 1.0 - 1e-6);       // IP satisfies (5) fully
  EXPECT_LE(ev.max_fanout_utilization, 1.0 + 1e-6);  // and (3) fully
  EXPECT_NEAR(ev.total_cost, r.objective, 1e-6);
}

TEST(Exact, NeverBelowLpBoundAndNeverAboveHeuristics) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    auto cfg = omn::topo::global_event_config(8, seed);
    cfg.num_reflectors = 5;
    cfg.candidates_per_sink = 4;
    const auto inst = omn::topo::make_akamai_like(cfg);
    const ExactResult exact = solve_exact(inst);
    ASSERT_TRUE(exact.optimal()) << "seed " << seed;

    // LP bound <= OPT.
    const auto lp = omn::core::build_overlay_lp(inst);
    const auto sol = omn::lp::SimplexSolver().solve(lp.model);
    ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
    EXPECT_LE(sol.objective, exact.objective + 1e-6);

    // Any fully-covering heuristic costs at least OPT.
    const auto greedy = omn::baseline::greedy_design(inst);
    if (greedy.covered_all) {
      EXPECT_GE(omn::core::evaluate(inst, greedy.design).total_cost,
                exact.objective - 1e-6);
    }
  }
}

TEST(Exact, NodeLimitTruncates) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(12, 5));
  ExactOptions opts;
  opts.max_nodes = 1;
  const ExactResult r = solve_exact(inst, opts);
  EXPECT_EQ(r.status, ExactResult::Status::kNodeLimit);
  EXPECT_LE(r.nodes_explored, 2);
}

TEST(Exact, MatchesDesignerLowerBoundOrdering) {
  // designer cost >= OPT >= LP bound on a small instance.
  auto cfg = omn::topo::global_event_config(6, 7);
  cfg.num_reflectors = 4;
  const auto inst = omn::topo::make_akamai_like(cfg);
  const ExactResult exact = solve_exact(inst);
  ASSERT_TRUE(exact.optimal());
  omn::core::DesignerConfig dcfg;
  dcfg.rounding_attempts = 4;
  const auto approx = omn::core::OverlayDesigner(dcfg).design(inst);
  ASSERT_TRUE(approx.ok());
  EXPECT_GE(exact.objective, approx.lp_objective - 1e-6);
  // The approximation may relax the weight constraint (factor 4), so its
  // cost can be below OPT; but with full coverage it cannot be below LP.
  EXPECT_GE(approx.evaluation.total_cost, approx.lp_objective - 1e-6);
}

}  // namespace
