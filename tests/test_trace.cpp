// Tests for util/trace.hpp — the recording half of omn::obs.
//
//   - Off by default: spans, instants, and samples record nothing, and
//     the lazy span name is never even built.
//   - Span nesting: RAII begin/end pairs come out balanced, in strictly
//     increasing per-thread tick order.
//   - drain(): hands out each event exactly once, assigns dense stable
//     tids, and is safe to interleave with recording.
//   - Counters: always live (independent of Trace::enabled()), shared
//     per name across handles, snapshot sorted by name.
//
// These tests toggle the process-wide enable flag, so each one drains
// first (discarding anything a previous test recorded) and restores the
// disabled state before returning.
#include "omn/util/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace {

using omn::util::ThreadTrace;
using omn::util::Trace;
using omn::util::TraceCounter;
using omn::util::TraceEvent;
using omn::util::TraceSpan;

/// Enables tracing for one test body and guarantees cleanup: drains the
/// leftovers of prior tests on entry, disables and drains on exit.
struct ScopedTracing {
  ScopedTracing() {
    Trace::drain();
    Trace::set_enabled(true);
  }
  ~ScopedTracing() {
    Trace::set_enabled(false);
    Trace::drain();
  }
};

/// The calling thread's events from a fresh drain (every test records on
/// the main thread only unless it spawns explicitly).
std::vector<TraceEvent> drain_this_thread() {
  std::vector<TraceEvent> merged;
  for (ThreadTrace& thread : Trace::drain()) {
    for (TraceEvent& event : thread.events) merged.push_back(std::move(event));
  }
  return merged;
}

TEST(Trace, DisabledByDefaultRecordsNothing) {
  ASSERT_FALSE(Trace::enabled());
  Trace::drain();
  {
    OMN_TRACE_SPAN("ignored.span");
    OMN_TRACE_INSTANT("ignored.instant");
    OMN_TRACE_SAMPLE("ignored.sample", 7);
  }
  EXPECT_TRUE(drain_this_thread().empty());
}

TEST(Trace, LazySpanNameIsNotBuiltWhenDisabled) {
  ASSERT_FALSE(Trace::enabled());
  bool built = false;
  {
    OMN_TRACE_SPAN([&] {
      built = true;
      return std::string("never");
    });
  }
  EXPECT_FALSE(built);

  const ScopedTracing tracing;
  {
    OMN_TRACE_SPAN([&] {
      built = true;
      return std::string("now");
    });
  }
  EXPECT_TRUE(built);
}

TEST(Trace, NestedSpansAreBalancedAndTickOrdered) {
  const ScopedTracing tracing;
  {
    OMN_TRACE_SPAN("outer");
    { OMN_TRACE_SPAN("first"); }
    { OMN_TRACE_SPAN("second"); }
  }
  const std::vector<TraceEvent> events = drain_this_thread();
  ASSERT_EQ(events.size(), 6u);
  const auto expect_event = [&](std::size_t at, TraceEvent::Kind kind,
                                const std::string& name) {
    EXPECT_EQ(events[at].kind, kind) << "event " << at;
    EXPECT_EQ(events[at].name, name) << "event " << at;
  };
  expect_event(0, TraceEvent::Kind::kBegin, "outer");
  expect_event(1, TraceEvent::Kind::kBegin, "first");
  expect_event(2, TraceEvent::Kind::kEnd, "first");
  expect_event(3, TraceEvent::Kind::kBegin, "second");
  expect_event(4, TraceEvent::Kind::kEnd, "second");
  expect_event(5, TraceEvent::Kind::kEnd, "outer");
  for (std::size_t at = 1; at < events.size(); ++at) {
    EXPECT_GT(events[at].tick, events[at - 1].tick);
    EXPECT_GE(events[at].micros, events[at - 1].micros);
  }
}

TEST(Trace, InstantsAndSamplesCarryKindAndValue) {
  const ScopedTracing tracing;
  OMN_TRACE_INSTANT("lp.refactorize");
  OMN_TRACE_SAMPLE("lp.pivots", 42);
  const std::vector<TraceEvent> events = drain_this_thread();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kInstant);
  EXPECT_EQ(events[0].name, "lp.refactorize");
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kCounter);
  EXPECT_EQ(events[1].name, "lp.pivots");
  EXPECT_EQ(events[1].value, 42.0);
}

TEST(Trace, DrainHandsOutEachEventExactlyOnce) {
  const ScopedTracing tracing;
  { OMN_TRACE_SPAN("batch.one"); }
  EXPECT_EQ(drain_this_thread().size(), 2u);
  EXPECT_TRUE(drain_this_thread().empty());
  { OMN_TRACE_SPAN("batch.two"); }
  const std::vector<TraceEvent> second = drain_this_thread();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].name, "batch.two");
  // Ticks keep increasing across drains: appending a later drain to an
  // earlier one preserves per-thread order (what merge_process_trace
  // relies on).
  EXPECT_GT(second[0].tick, 0u);
}

TEST(Trace, ThreadsGetTheirOwnEventStreams) {
  const ScopedTracing tracing;
  { OMN_TRACE_SPAN("main.span"); }
  std::thread worker([] { OMN_TRACE_SPAN("worker.span"); });
  worker.join();
  const std::vector<ThreadTrace> threads = Trace::drain();
  // Exactly one thread stream holds each span, and no stream holds both.
  int main_streams = 0;
  int worker_streams = 0;
  for (const ThreadTrace& thread : threads) {
    bool has_main = false;
    bool has_worker = false;
    for (const TraceEvent& event : thread.events) {
      has_main = has_main || event.name == "main.span";
      has_worker = has_worker || event.name == "worker.span";
    }
    EXPECT_FALSE(has_main && has_worker);
    main_streams += has_main ? 1 : 0;
    worker_streams += has_worker ? 1 : 0;
  }
  EXPECT_EQ(main_streams, 1);
  EXPECT_EQ(worker_streams, 1);
  // Tids are unique per stream.
  std::set<std::uint32_t> seen;
  for (const ThreadTrace& thread : threads) {
    EXPECT_TRUE(seen.insert(thread.tid).second)
        << "duplicate tid " << thread.tid;
  }
}

TEST(TraceCounters, LiveEvenWhenTracingIsDisabled) {
  omn::util::counters_reset_for_tests();
  ASSERT_FALSE(Trace::enabled());
  OMN_COUNTER_ADD("test.disabled_counter", 3);
  OMN_COUNTER_ADD("test.disabled_counter", 4);
  EXPECT_EQ(omn::util::counter_value("test.disabled_counter"), 7u);
}

TEST(TraceCounters, HandlesWithTheSameNameShareOneCell) {
  omn::util::counters_reset_for_tests();
  TraceCounter a("test.shared");
  TraceCounter b("test.shared");
  a.add(10);
  b.add(5);
  EXPECT_EQ(a.value(), 15u);
  EXPECT_EQ(b.value(), 15u);
  EXPECT_EQ(omn::util::counter_value("test.shared"), 15u);
}

TEST(TraceCounters, SnapshotIsSortedByNameAndValueQueriesMissingAsZero) {
  omn::util::counters_reset_for_tests();
  OMN_COUNTER_ADD("test.zebra", 1);
  OMN_COUNTER_ADD("test.alpha", 2);
  const auto snapshot = omn::util::counters_snapshot();
  for (std::size_t at = 1; at < snapshot.size(); ++at) {
    EXPECT_LT(snapshot[at - 1].first, snapshot[at].first);
  }
  EXPECT_EQ(omn::util::counter_value("test.never_registered"), 0u);
}

}  // namespace
