// Tests for the Monte Carlo packet simulator, exact reliability, and
// failure injection.  The key property: MC loss rates converge to the
// exact product-form probabilities.
#include "omn/sim/failures.hpp"
#include "omn/sim/packet_sim.hpp"
#include "omn/sim/reliability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "omn/core/designer.hpp"
#include "omn/topo/akamai.hpp"

namespace {

using omn::core::Design;
using omn::net::OverlayInstance;

struct Deployed {
  OverlayInstance inst;
  Design design;
};

Deployed deploy(int sinks, std::uint64_t seed, int isps = 4) {
  Deployed d;
  auto cfg = omn::topo::global_event_config(sinks, seed);
  cfg.num_isps = isps;
  d.inst = omn::topo::make_akamai_like(cfg);
  omn::core::DesignerConfig dcfg;
  dcfg.seed = seed;
  const auto result = omn::core::OverlayDesigner(dcfg).design(d.inst);
  EXPECT_TRUE(result.ok());
  d.design = result.design;
  return d;
}

TEST(ExactReliability, MatchesEvaluator) {
  const Deployed d = deploy(20, 1);
  const auto probs = omn::sim::exact_delivery_probability(d.inst, d.design);
  const auto ev = omn::core::evaluate(d.inst, d.design);
  ASSERT_EQ(probs.size(), ev.sinks.size());
  for (std::size_t j = 0; j < probs.size(); ++j) {
    EXPECT_NEAR(probs[j], ev.sinks[j].delivery_probability, 1e-12);
  }
}

TEST(PacketSim, ConvergesToExactReliability) {
  const Deployed d = deploy(16, 2);
  const auto exact = omn::sim::exact_delivery_probability(d.inst, d.design);
  omn::sim::SimulationConfig cfg;
  cfg.num_packets = 200000;
  cfg.seed = 7;
  const auto report = omn::sim::simulate(d.inst, d.design, cfg);
  ASSERT_EQ(report.sink_loss_rate.size(), exact.size());
  for (std::size_t j = 0; j < exact.size(); ++j) {
    // Binomial std dev at n = 2e5 is < 0.0012; allow 4 sigma.
    EXPECT_NEAR(report.sink_loss_rate[j], 1.0 - exact[j], 0.005)
        << "sink " << j;
  }
}

TEST(PacketSim, DeterministicPerSeed) {
  const Deployed d = deploy(12, 3);
  omn::sim::SimulationConfig cfg;
  cfg.num_packets = 20000;
  cfg.seed = 5;
  cfg.threads = 2;
  const auto a = omn::sim::simulate(d.inst, d.design, cfg);
  const auto b = omn::sim::simulate(d.inst, d.design, cfg);
  EXPECT_EQ(a.sink_loss_rate, b.sink_loss_rate);
}

TEST(PacketSim, EmptyDesignLosesEverything) {
  const Deployed d = deploy(10, 4);
  const Design empty = Design::zeros(d.inst);
  omn::sim::SimulationConfig cfg;
  cfg.num_packets = 1000;
  const auto report = omn::sim::simulate(d.inst, empty, cfg);
  for (double loss : report.sink_loss_rate) EXPECT_DOUBLE_EQ(loss, 1.0);
  EXPECT_DOUBLE_EQ(report.fraction_meeting_threshold, 0.0);
}

TEST(PacketSim, QuarterGuaranteeFractionReported) {
  const Deployed d = deploy(20, 5);
  omn::sim::SimulationConfig cfg;
  cfg.num_packets = 50000;
  const auto report = omn::sim::simulate(d.inst, d.design, cfg);
  EXPECT_GE(report.fraction_meeting_quarter_guarantee, 0.95);
  EXPECT_GE(report.fraction_meeting_quarter_guarantee,
            report.fraction_meeting_threshold - 1e-12);
}

TEST(PacketSim, CorrelatedIspOutagesIncreaseLoss) {
  const Deployed d = deploy(20, 6);
  omn::sim::SimulationConfig base;
  base.num_packets = 50000;
  base.seed = 11;
  omn::sim::SimulationConfig correlated = base;
  correlated.isp_outage_probability = 0.2;
  const auto a = omn::sim::simulate(d.inst, d.design, base);
  const auto b = omn::sim::simulate(d.inst, d.design, correlated);
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (double v : a.sink_loss_rate) mean_a += v;
  for (double v : b.sink_loss_rate) mean_b += v;
  EXPECT_GT(mean_b, mean_a);
}

TEST(Failures, WithFailedColorZeroesThatColor) {
  const Deployed d = deploy(20, 7);
  const Design failed = omn::sim::with_failed_color(d.inst, d.design, 0);
  for (int i = 0; i < d.inst.num_reflectors(); ++i) {
    if (d.inst.reflector(i).color == 0) {
      EXPECT_EQ(failed.z[static_cast<std::size_t>(i)], 0);
    }
  }
  for (std::size_t id = 0; id < d.inst.rd_edges().size(); ++id) {
    const auto& e = d.inst.rd_edges()[id];
    if (d.inst.reflector(e.reflector).color == 0) {
      EXPECT_EQ(failed.x[id], 0);
    } else {
      EXPECT_EQ(failed.x[id], d.design.x[id]);
    }
  }
}

TEST(Failures, SweepCoversEveryColor) {
  const Deployed d = deploy(24, 8);
  const auto sweep = omn::sim::color_failure_sweep(d.inst, d.design);
  EXPECT_EQ(static_cast<int>(sweep.size()), d.inst.num_colors());
  for (const auto& r : sweep) {
    EXPECT_GE(r.fraction_served, 0.0);
    EXPECT_LE(r.fraction_served, 1.0);
    EXPECT_LE(r.fraction_meeting_threshold, r.fraction_meeting_quarter + 1e-12);
  }
}

TEST(Failures, FailureNeverImprovesDelivery) {
  const Deployed d = deploy(24, 9);
  const auto base = omn::sim::exact_delivery_probability(d.inst, d.design);
  for (int c = 0; c < d.inst.num_colors(); ++c) {
    const auto failed =
        omn::sim::exact_delivery_probability_with_failed_color(d.inst,
                                                               d.design, c);
    for (std::size_t j = 0; j < base.size(); ++j) {
      EXPECT_LE(failed[j], base[j] + 1e-12);
    }
  }
}

TEST(Failures, WorstCaseHelper) {
  std::vector<omn::sim::ColorFailureReport> sweep(3);
  sweep[0].fraction_meeting_quarter = 0.9;
  sweep[1].fraction_meeting_quarter = 0.4;
  sweep[2].fraction_meeting_quarter = 0.7;
  EXPECT_DOUBLE_EQ(omn::sim::worst_case_quarter_fraction(sweep), 0.4);
}

}  // namespace
