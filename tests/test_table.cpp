// Unit tests for the report table renderer.
#include "omn/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using omn::util::Table;

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CellTypesRender) {
  Table t({"a", "b", "c", "d"});
  t.row().cell("x").cell(1.23456, 2).cell(std::size_t{7}).cell(true);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0), "x");
  EXPECT_EQ(t.at(0, 1), "1.23");
  EXPECT_EQ(t.at(0, 2), "7");
  EXPECT_EQ(t.at(0, 3), "yes");
}

TEST(Table, TooManyCellsThrows) {
  Table t({"only"});
  t.row().cell("ok");
  EXPECT_THROW(t.cell("overflow"), std::out_of_range);
}

TEST(Table, AddRowChecksWidth) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_THROW(t.add_row({"just-one"}), std::invalid_argument);
}

TEST(Table, AsciiAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"longer-name", "1"});
  t.add_row({"x", "22"});
  const std::string out = t.to_ascii("title");
  EXPECT_NE(out.find("== title =="), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"has,comma", "has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvRoundTripLineCount) {
  Table t({"h"});
  t.add_row({"r1"});
  t.add_row({"r2"});
  std::istringstream in(t.to_csv());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3);  // header + 2 rows
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(omn::util::format_double(3.14159, 3), "3.142");
  EXPECT_EQ(omn::util::format_double(2.0, 0), "2");
}

}  // namespace
