// Tests for the DesignSweep batch driver: grid shape/labels, cell access,
// and bit-identical results for serial vs pool-backed execution.
#include "omn/core/design_sweep.hpp"

#include <gtest/gtest.h>

#include "omn/topo/akamai.hpp"

namespace {

using omn::core::DesignerConfig;
using omn::core::DesignSweep;
using omn::core::SweepOptions;
using omn::core::SweepReport;

DesignSweep small_sweep() {
  DesignSweep sweep;
  for (std::uint64_t seed : {1u, 2u}) {
    sweep.add_instance(
        "seed" + std::to_string(seed),
        omn::topo::make_akamai_like(omn::topo::global_event_config(
            12, seed)));
  }
  DesignerConfig base;
  base.seed = 3;
  base.rounding_attempts = 2;
  sweep.add_config("with-cut", base);
  DesignerConfig no_cut = base;
  no_cut.cutting_plane = false;
  sweep.add_config("no-cut", no_cut);
  DesignerConfig more_attempts = base;
  more_attempts.rounding_attempts = 4;
  sweep.add_config("attempts4", more_attempts);
  return sweep;
}

TEST(DesignSweep, GridShapeAndLabels) {
  const DesignSweep sweep = small_sweep();
  EXPECT_EQ(sweep.num_instances(), 2u);
  EXPECT_EQ(sweep.num_configs(), 3u);
  EXPECT_EQ(sweep.num_cells(), 6u);

  SweepOptions serial;
  serial.threads = 1;
  const SweepReport report = sweep.run(serial);
  ASSERT_EQ(report.cells.size(), 6u);
  EXPECT_EQ(report.num_instances, 2u);
  EXPECT_EQ(report.num_configs, 3u);
  EXPECT_GT(report.wall_seconds, 0.0);

  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      const auto& cell = report.cell(i, c);
      EXPECT_EQ(cell.instance_index, i);
      EXPECT_EQ(cell.config_index, c);
      EXPECT_EQ(cell.instance_label, "seed" + std::to_string(i + 1));
      ASSERT_TRUE(cell.result.ok())
          << cell.instance_label << " x " << cell.config_label;
      EXPECT_GE(cell.seconds, 0.0);
    }
  }
  EXPECT_EQ(report.cell(0, 0).config_label, "with-cut");
  EXPECT_EQ(report.cell(0, 1).config_label, "no-cut");
  EXPECT_EQ(report.cell(0, 2).config_label, "attempts4");
}

TEST(DesignSweep, ParallelRunMatchesSerialBitForBit) {
  const DesignSweep sweep = small_sweep();
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const SweepReport a = sweep.run(serial);
  const SweepReport b = sweep.run(parallel);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t k = 0; k < a.cells.size(); ++k) {
    EXPECT_EQ(a.cells[k].instance_label, b.cells[k].instance_label);
    EXPECT_EQ(a.cells[k].config_label, b.cells[k].config_label);
    EXPECT_EQ(a.cells[k].result.winning_attempt,
              b.cells[k].result.winning_attempt);
    EXPECT_EQ(a.cells[k].result.design.x, b.cells[k].result.design.x);
    EXPECT_EQ(a.cells[k].result.design.y, b.cells[k].result.design.y);
    EXPECT_EQ(a.cells[k].result.design.z, b.cells[k].result.design.z);
    EXPECT_EQ(a.cells[k].result.evaluation.total_cost,
              b.cells[k].result.evaluation.total_cost);
    EXPECT_EQ(a.cells[k].result.lp_objective, b.cells[k].result.lp_objective);
  }
}

TEST(DesignSweep, EmptyGridIsEmptyReport) {
  DesignSweep sweep;
  const SweepReport report = sweep.run();
  EXPECT_TRUE(report.cells.empty());
  EXPECT_EQ(report.num_instances, 0u);
  EXPECT_EQ(report.num_configs, 0u);
}

}  // namespace
