// Tests for the DesignSweep batch driver: grid shape/labels, cell access,
// bit-identical results for serial vs pool-backed execution, and the
// LP-reuse planner (grouped solves must be bit-identical to per-cell
// solves, with the solve count equal to instances x distinct LP configs).
#include "omn/core/design_sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "omn/topo/akamai.hpp"
#include "omn/util/execution_context.hpp"

namespace {

using omn::core::DesignerConfig;
using omn::core::DesignSweep;
using omn::core::SweepOptions;
using omn::core::SweepReport;

/// Everything except wall-clock fields must match bit for bit.
void expect_reports_bit_identical(const SweepReport& a, const SweepReport& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t k = 0; k < a.cells.size(); ++k) {
    SCOPED_TRACE("cell " + std::to_string(k));
    EXPECT_EQ(a.cells[k].instance_label, b.cells[k].instance_label);
    EXPECT_EQ(a.cells[k].config_label, b.cells[k].config_label);
    EXPECT_EQ(a.cells[k].result.status, b.cells[k].result.status);
    EXPECT_EQ(a.cells[k].result.winning_attempt,
              b.cells[k].result.winning_attempt);
    EXPECT_EQ(a.cells[k].result.lp_iterations, b.cells[k].result.lp_iterations);
    EXPECT_EQ(a.cells[k].result.lp_objective, b.cells[k].result.lp_objective);
    EXPECT_EQ(a.cells[k].result.cost_ratio, b.cells[k].result.cost_ratio);
    EXPECT_EQ(a.cells[k].result.design.x, b.cells[k].result.design.x);
    EXPECT_EQ(a.cells[k].result.design.y, b.cells[k].result.design.y);
    EXPECT_EQ(a.cells[k].result.design.z, b.cells[k].result.design.z);
    EXPECT_EQ(a.cells[k].result.evaluation.total_cost,
              b.cells[k].result.evaluation.total_cost);
    EXPECT_EQ(a.cells[k].result.evaluation.min_weight_ratio,
              b.cells[k].result.evaluation.min_weight_ratio);
  }
}

DesignSweep small_sweep() {
  DesignSweep sweep;
  for (std::uint64_t seed : {1u, 2u}) {
    sweep.add_instance(
        "seed" + std::to_string(seed),
        omn::topo::make_akamai_like(omn::topo::global_event_config(
            12, seed)));
  }
  DesignerConfig base;
  base.seed = 3;
  base.rounding_attempts = 2;
  sweep.add_config("with-cut", base);
  DesignerConfig no_cut = base;
  no_cut.cutting_plane = false;
  sweep.add_config("no-cut", no_cut);
  DesignerConfig more_attempts = base;
  more_attempts.rounding_attempts = 4;
  sweep.add_config("attempts4", more_attempts);
  return sweep;
}

TEST(DesignSweep, GridShapeAndLabels) {
  const DesignSweep sweep = small_sweep();
  EXPECT_EQ(sweep.num_instances(), 2u);
  EXPECT_EQ(sweep.num_configs(), 3u);
  EXPECT_EQ(sweep.num_cells(), 6u);

  SweepOptions serial;
  serial.threads = 1;
  const SweepReport report = sweep.run(serial);
  ASSERT_EQ(report.cells.size(), 6u);
  EXPECT_EQ(report.num_instances, 2u);
  EXPECT_EQ(report.num_configs, 3u);
  EXPECT_GT(report.wall_seconds, 0.0);

  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      const auto& cell = report.cell(i, c);
      EXPECT_EQ(cell.instance_index, i);
      EXPECT_EQ(cell.config_index, c);
      EXPECT_EQ(cell.instance_label, "seed" + std::to_string(i + 1));
      ASSERT_TRUE(cell.result.ok())
          << cell.instance_label << " x " << cell.config_label;
      EXPECT_GE(cell.seconds, 0.0);
    }
  }
  EXPECT_EQ(report.cell(0, 0).config_label, "with-cut");
  EXPECT_EQ(report.cell(0, 1).config_label, "no-cut");
  EXPECT_EQ(report.cell(0, 2).config_label, "attempts4");
}

TEST(DesignSweep, ParallelRunMatchesSerialBitForBit) {
  const DesignSweep sweep = small_sweep();
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const SweepReport a = sweep.run(serial);
  const SweepReport b = sweep.run(parallel);
  expect_reports_bit_identical(a, b);
}

TEST(DesignSweep, EmptyGridIsEmptyReport) {
  DesignSweep sweep;
  const SweepReport report = sweep.run();
  EXPECT_TRUE(report.cells.empty());
  EXPECT_EQ(report.num_instances, 0u);
  EXPECT_EQ(report.num_configs, 0u);
  EXPECT_EQ(report.lp_solves, 0u);
}

// The acceptance shape of the LP-reuse planner: 1 instance × k configs
// that differ only in rounding knobs (seed, c, attempts, pruning) must
// perform exactly ONE LP solve.
TEST(DesignSweep, RoundingOnlyGridPerformsExactlyOneLpSolve) {
  DesignSweep sweep;
  sweep.add_instance("event",
                     omn::topo::make_akamai_like(
                         omn::topo::global_event_config(12, 2)));
  for (int k = 0; k < 5; ++k) {
    DesignerConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(k) * 101 + 7;
    cfg.c = 0.5 + k;
    cfg.rounding_attempts = 1 + k % 3;
    cfg.prune_unused = (k % 2 == 0);
    sweep.add_config("round" + std::to_string(k), cfg);
  }
  const SweepReport report = sweep.run();
  EXPECT_EQ(report.lp_configs, 1u);
  EXPECT_EQ(report.lp_solves, 1u);
  for (const auto& cell : report.cells) {
    EXPECT_TRUE(cell.result.ok()) << cell.config_label;
  }
}

// The solve count is instances × distinct LP configs: configs that change
// the LP (cutting plane off, a different iteration limit) get their own
// group, rounding-only variants share one.
TEST(DesignSweep, LpSolveCountEqualsInstancesTimesDistinctLpConfigs) {
  DesignSweep sweep;
  for (std::uint64_t seed : {1u, 2u}) {
    sweep.add_instance("seed" + std::to_string(seed),
                       omn::topo::make_akamai_like(
                           omn::topo::global_event_config(12, seed)));
  }
  DesignerConfig base;
  base.seed = 3;
  base.rounding_attempts = 2;
  sweep.add_config("base", base);
  DesignerConfig reseeded = base;  // rounding-only twin of base
  reseeded.seed = 99;
  sweep.add_config("reseeded", reseeded);
  DesignerConfig no_cut = base;  // changes the LP relaxation
  no_cut.cutting_plane = false;
  sweep.add_config("no-cut", no_cut);
  DesignerConfig tight = base;  // changes the solve options
  tight.lp_options.max_iterations = 12345;
  sweep.add_config("tight-iters", tight);

  const SweepReport grouped = sweep.run();
  EXPECT_EQ(grouped.lp_configs, 3u);  // {base, reseeded} | {no-cut} | {tight}
  EXPECT_EQ(grouped.lp_solves, 2u * 3u);

  SweepOptions ungrouped;
  ungrouped.reuse_lp = false;
  const SweepReport per_cell = sweep.run(ungrouped);
  EXPECT_EQ(per_cell.lp_solves, sweep.num_cells());
}

// Grouped (shared-LP) and ungrouped (per-cell LP) sweeps must produce
// bit-identical reports: the LP build and simplex solve are deterministic,
// so reuse may only change the wall clock.
TEST(DesignSweep, GroupedMatchesUngroupedBitForBit) {
  const DesignSweep sweep = small_sweep();
  SweepOptions grouped;
  grouped.reuse_lp = true;
  grouped.reseed_per_instance = true;
  SweepOptions ungrouped = grouped;
  ungrouped.reuse_lp = false;
  const SweepReport a = sweep.run(grouped);
  const SweepReport b = sweep.run(ungrouped);
  EXPECT_LT(a.lp_solves, b.lp_solves);
  expect_reports_bit_identical(a, b);
}

// A caller-owned context must work end to end and reproduce the global
// context's report bit for bit (no hidden dependence on which pool ran).
TEST(DesignSweep, InjectedContextMatchesGlobalBitForBit) {
  const DesignSweep sweep = small_sweep();
  const omn::util::ExecutionContext own(2);
  const SweepReport a = sweep.run({}, own);
  const SweepReport b = sweep.run({});
  expect_reports_bit_identical(a, b);
}

// ---- run_range (the distributed engine's shard primitive) -----------------

// Any partition of the cell range, re-merged, must reproduce the full
// run cell for cell — including with per-instance reseeding, which
// depends on GLOBAL instance indices surviving the split.
TEST(DesignSweep, RangesMergeBackToTheFullRunBitForBit) {
  const DesignSweep sweep = small_sweep();
  SweepOptions options;
  options.reseed_per_instance = true;
  const omn::util::ExecutionContext context =
      omn::util::ExecutionContext::serial();
  const SweepReport full = sweep.run(options, context);

  for (const std::size_t split : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("split at " + std::to_string(split));
    SweepReport merged;
    merged.num_instances = sweep.num_instances();
    merged.num_configs = sweep.num_configs();
    merged.merge(sweep.run_range(0, split, options, context));
    merged.merge(sweep.run_range(split, sweep.num_cells(), options, context));
    expect_reports_bit_identical(full, merged);
    EXPECT_EQ(merged.lp_configs, full.lp_configs);
  }
}

TEST(DesignSweep, RangeReportCarriesGlobalIndicesAndRangeCounters) {
  const DesignSweep sweep = small_sweep();  // 2 instances x 3 configs
  const omn::util::ExecutionContext context =
      omn::util::ExecutionContext::serial();
  // Cells [4, 6) are instance 1, configs 1..2.
  const SweepReport part = sweep.run_range(4, 6, {}, context);
  ASSERT_EQ(part.cells.size(), 2u);
  EXPECT_EQ(part.num_instances, 2u);
  EXPECT_EQ(part.num_configs, 3u);
  EXPECT_EQ(part.cells[0].instance_index, 1u);
  EXPECT_EQ(part.cells[0].config_index, 1u);
  EXPECT_EQ(part.cells[1].config_index, 2u);
  EXPECT_EQ(part.cells[0].instance_label, "seed2");
  // Configs 1 ("no-cut") and 2 ("attempts4") span the grid's two LP
  // groups, so the range solves each once FOR INSTANCE 1 ONLY — two
  // solves, not the full run's 2 instances x 2 groups = 4.
  EXPECT_EQ(part.lp_configs, 2u);
  EXPECT_EQ(part.lp_solves, 2u);
  EXPECT_EQ(part.cpu_seconds, part.wall_seconds);
  EXPECT_THROW(sweep.run_range(4, 7, {}, context), std::out_of_range);
  EXPECT_THROW(sweep.run_range(5, 4, {}, context), std::out_of_range);
}

// ---- SweepReport::merge timing + counter semantics ------------------------

TEST(SweepReport, MergeAggregatesCountersWallMaxAndCpuSum) {
  SweepReport merged;
  merged.num_instances = 1;
  merged.num_configs = 2;

  SweepReport shard_a;
  shard_a.num_instances = 1;
  shard_a.num_configs = 2;
  shard_a.cells.resize(1);
  shard_a.cells[0].instance_index = 0;
  shard_a.cells[0].config_index = 1;
  shard_a.cells[0].config_label = "right";
  shard_a.lp_configs = 2;
  shard_a.lp_solves = 3;
  shard_a.lp_cache_hits = 1;
  shard_a.lp_cache_misses = 3;
  shard_a.wall_seconds = 2.0;
  shard_a.cpu_seconds = 2.0;

  SweepReport shard_b;
  shard_b.num_instances = 1;
  shard_b.num_configs = 2;
  shard_b.cells.resize(1);
  shard_b.cells[0].instance_index = 0;
  shard_b.cells[0].config_index = 0;
  shard_b.cells[0].config_label = "left";
  shard_b.lp_configs = 2;
  shard_b.lp_solves = 1;
  shard_b.wall_seconds = 5.0;
  shard_b.cpu_seconds = 5.0;

  merged.merge(shard_a);
  merged.merge(shard_b);
  ASSERT_EQ(merged.cells.size(), 2u);
  EXPECT_EQ(merged.cells[0].config_label, "left");
  EXPECT_EQ(merged.cells[1].config_label, "right");
  EXPECT_EQ(merged.lp_configs, 2u);
  EXPECT_EQ(merged.lp_solves, 4u);
  EXPECT_EQ(merged.lp_cache_hits, 1u);
  EXPECT_EQ(merged.lp_cache_misses, 3u);
  // Concurrent shards: wall is the slowest shard, cpu the total machine
  // time across both.
  EXPECT_DOUBLE_EQ(merged.wall_seconds, 5.0);
  EXPECT_DOUBLE_EQ(merged.cpu_seconds, 7.0);
}

TEST(SweepReport, MergeRejectsForeignGrids) {
  SweepReport merged;
  merged.num_instances = 2;
  merged.num_configs = 2;

  SweepReport wrong_dims;
  wrong_dims.num_instances = 1;
  wrong_dims.num_configs = 2;
  EXPECT_THROW(merged.merge(wrong_dims), std::invalid_argument);

  SweepReport out_of_grid;
  out_of_grid.num_instances = 2;
  out_of_grid.num_configs = 2;
  out_of_grid.cells.resize(1);
  out_of_grid.cells[0].instance_index = 2;  // grid has instances 0..1
  EXPECT_THROW(merged.merge(out_of_grid), std::invalid_argument);
}

}  // namespace
