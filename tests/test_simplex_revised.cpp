// Tests specific to the revised simplex (basis LU + eta file) and its
// relationship to the dense tableau oracle:
//
//  - Differential property: ~200 random bounded LPs — feasible,
//    infeasible, unbounded, and degenerate by construction — solved by
//    the dense tableau and by the revised solver under both pricing
//    rules must agree on status, objective (within tolerance), and
//    primal feasibility.  The dense tableau is the textbook-transparent
//    oracle; the revised solver is the production path.
//  - Dense phase-II pivot pinning: the frozen-artificial-column
//    optimization (skipping artificial columns in phase-II pivot row
//    updates and pricing scans) must not change WHICH pivots run, only
//    how much work each one does.  Iteration counts for fixed seeds are
//    pinned to the pre-optimization values.
//  - Warm starts: re-solving a perturbed instance from the previous
//    optimal basis must converge in measurably fewer iterations and
//    reach the same optimum.
//  - Basis export/import round trip and refactorization behaviour.
#include "omn/lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "omn/core/lp_builder.hpp"
#include "omn/lp/model.hpp"
#include "omn/topo/synthetic.hpp"
#include "omn/util/rng.hpp"

namespace {

using omn::lp::Algorithm;
using omn::lp::Basis;
using omn::lp::kInfinity;
using omn::lp::Model;
using omn::lp::Pricing;
using omn::lp::RowSense;
using omn::lp::SimplexSolver;
using omn::lp::Solution;
using omn::lp::SolveOptions;
using omn::lp::SolveStatus;
using omn::util::Rng;

// ---- differential property ------------------------------------------------

/// A random bounded LP drawn to cover the solver's whole status space:
/// most instances are feasible (some degenerate: duplicated rows, zero
/// right-hand sides, equality rows), a slice is infeasible by
/// construction (contradictory row pair), and a slice is unbounded
/// (a variable with +inf upper bound, negative cost, and no row limiting
/// it from above).
Model make_random_lp(std::uint64_t seed) {
  Rng rng(seed);
  Model model;
  const int n = 2 + static_cast<int>(rng.uniform_index(10));
  const int m = 1 + static_cast<int>(rng.uniform_index(10));
  const double shape = rng.uniform();

  for (int j = 0; j < n; ++j) {
    const double lower = rng.bernoulli(0.3) ? rng.uniform(-2.0, 0.0) : 0.0;
    double upper = lower + rng.uniform(0.5, 3.0);
    if (rng.bernoulli(0.15)) upper = kInfinity;
    double cost = rng.uniform(-1.0, 1.0);
    if (rng.bernoulli(0.1)) cost = 0.0;  // objective ties: degenerate optima
    model.add_variable(lower, upper, cost);
  }

  std::vector<double> last_row;
  for (int i = 0; i < m; ++i) {
    std::vector<double> row(n);
    const bool duplicate = i > 0 && !last_row.empty() && rng.bernoulli(0.15);
    for (int j = 0; j < n; ++j) {
      row[j] = duplicate ? last_row[j] : rng.uniform(-2.0, 2.0);
      if (!duplicate && rng.bernoulli(0.4)) row[j] = 0.0;  // sparse rows
    }
    const double roll = rng.uniform();
    const RowSense sense = roll < 0.6   ? RowSense::kLessEqual
                           : roll < 0.9 ? RowSense::kGreaterEqual
                                        : RowSense::kEqual;
    // Anchor the rhs near the activity at a random in-box point so a good
    // fraction of instances is feasible; zero rhs sometimes for degeneracy.
    double activity = 0.0;
    for (int j = 0; j < n; ++j) {
      const double lo = model.variable(j).lower;
      const double hi = std::isinf(model.variable(j).upper)
                            ? lo + 1.0
                            : model.variable(j).upper;
      activity += row[j] * rng.uniform(lo, hi);
    }
    double rhs = activity + rng.uniform(-0.5, 0.5);
    if (rng.bernoulli(0.1)) rhs = 0.0;
    const int r = model.add_row(sense, rhs);
    for (int j = 0; j < n; ++j) {
      if (row[j] != 0.0) model.add_coefficient(r, j, row[j]);
    }
    last_row = std::move(row);
  }

  if (shape < 0.15 && n >= 1) {
    // Contradictory pair on variable 0: x0 <= lo - 1 AND x0 >= lo + 1.
    const double lo = model.variable(0).lower;
    const int r1 = model.add_row(RowSense::kLessEqual, lo - 1.0);
    model.add_coefficient(r1, 0, 1.0);
    const int r2 = model.add_row(RowSense::kGreaterEqual, lo + 1.0);
    model.add_coefficient(r2, 0, 1.0);
  } else if (shape < 0.3) {
    // A free-to-grow direction: fresh variable, +inf upper, negative
    // cost, appearing in no row — unbounded unless the rest is infeasible.
    model.add_variable(0.0, kInfinity, -1.0);
  }
  return model;
}

TEST(RevisedSimplexDifferential, AgreesWithDenseTableauOn200RandomLps) {
  int optimal = 0;
  int infeasible = 0;
  int unbounded = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Model model = make_random_lp(seed);

    SolveOptions dense_options;
    dense_options.algorithm = Algorithm::kDenseTableau;
    const Solution dense = SimplexSolver().solve(model, dense_options);
    ASSERT_NE(dense.status, SolveStatus::kIterationLimit) << "seed=" << seed;

    for (const Pricing pricing : {Pricing::kDantzig, Pricing::kSteepestEdge}) {
      SolveOptions revised_options;
      revised_options.algorithm = Algorithm::kRevised;
      revised_options.pricing = pricing;
      const Solution revised = SimplexSolver().solve(model, revised_options);

      ASSERT_EQ(revised.status, dense.status)
          << "seed=" << seed << " pricing=" << to_string(pricing)
          << " dense=" << to_string(dense.status)
          << " revised=" << to_string(revised.status);
      if (dense.status == SolveStatus::kOptimal) {
        const double scale = 1.0 + std::abs(dense.objective);
        EXPECT_NEAR(revised.objective, dense.objective, 1e-6 * scale)
            << "seed=" << seed << " pricing=" << to_string(pricing);
        EXPECT_LE(revised.max_violation, 1e-6) << "seed=" << seed;
        EXPECT_LE(dense.max_violation, 1e-6) << "seed=" << seed;
      }
    }
    optimal += dense.status == SolveStatus::kOptimal;
    infeasible += dense.status == SolveStatus::kInfeasible;
    unbounded += dense.status == SolveStatus::kUnbounded;
  }
  // The generator must actually exercise every status, or the test is
  // quietly weaker than it claims.
  EXPECT_GE(optimal, 60);
  EXPECT_GE(infeasible, 15);
  EXPECT_GE(unbounded, 10);
}

// ---- dense phase-II pivot pinning (frozen artificial columns) -------------

struct PinnedCase {
  std::uint64_t seed;
  int iterations;
  int phase1_iterations;
  double objective;
};

TEST(DenseTableauPinning, FrozenArtificialColumnsKeepPivotSequence) {
  // Captured from the seed solver BEFORE the frozen-artificial-column
  // optimization: restricting phase-II scans to structural+slack columns
  // must leave every pivot choice — hence these counts — unchanged.
  const PinnedCase cases[] = {
      {1, 255, 68, 157.92197387791703},
      {2, 287, 65, 143.31882828522023},
      {3, 178, 67, 157.57052923141768},
  };
  for (const PinnedCase& c : cases) {
    omn::topo::UniformConfig cfg;
    cfg.num_sources = 2;
    cfg.num_reflectors = 8;
    cfg.num_sinks = 20;
    cfg.seed = c.seed;
    const omn::net::OverlayInstance inst = omn::topo::make_uniform_random(cfg);
    const omn::core::OverlayLp lp = omn::core::build_overlay_lp(inst, {});

    SolveOptions options;
    options.algorithm = Algorithm::kDenseTableau;
    const Solution sol = SimplexSolver().solve(lp.model, options);
    ASSERT_EQ(sol.status, SolveStatus::kOptimal) << "seed=" << c.seed;
    EXPECT_EQ(sol.iterations, c.iterations) << "seed=" << c.seed;
    EXPECT_EQ(sol.phase1_iterations, c.phase1_iterations) << "seed=" << c.seed;
    const double scale = 1.0 + std::abs(c.objective);
    EXPECT_NEAR(sol.objective, c.objective, 1e-9 * scale) << "seed=" << c.seed;
  }
}

// ---- warm starts ----------------------------------------------------------

omn::core::OverlayLp make_overlay_lp(std::uint64_t seed) {
  omn::topo::UniformConfig cfg;
  cfg.num_sources = 2;
  cfg.num_reflectors = 10;
  cfg.num_sinks = 30;
  cfg.seed = seed;
  return omn::core::build_overlay_lp(omn::topo::make_uniform_random(cfg), {});
}

TEST(RevisedSimplexWarmStart, PerturbedResolveTakesFewerIterations) {
  omn::core::OverlayLp lp = make_overlay_lp(7);

  const Solution cold = SimplexSolver().solve(lp.model);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_TRUE(cold.basis.has_value());
  EXPECT_FALSE(cold.warm_started);

  // Perturb every objective coefficient by a few percent: same LP shape,
  // nearby optimum — the warm start's intended regime.
  Rng rng(99);
  for (int j = 0; j < lp.model.num_variables(); ++j) {
    lp.model.variable(j).objective *= 1.0 + rng.uniform(-0.03, 0.03);
  }

  const Solution re_cold = SimplexSolver().solve(lp.model);
  ASSERT_EQ(re_cold.status, SolveStatus::kOptimal);

  SolveOptions warm_options;
  warm_options.warm_start_basis = *cold.basis;
  const Solution warm = SimplexSolver().solve(lp.model, warm_options);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(warm.phase1_iterations, 0);  // the basis skips phase I entirely

  const double scale = 1.0 + std::abs(re_cold.objective);
  EXPECT_NEAR(warm.objective, re_cold.objective, 1e-7 * scale);
  // "Measurably fewer": the warm solve must beat the cold one by a wide
  // margin, not within noise (measured ~10-25x fewer on this family).
  ASSERT_GT(re_cold.iterations, 0);
  EXPECT_LT(warm.iterations, re_cold.iterations / 2);
}

TEST(RevisedSimplexWarmStart, InvalidBasisFallsBackToColdStart) {
  omn::core::OverlayLp lp = make_overlay_lp(11);
  const Solution cold = SimplexSolver().solve(lp.model);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);

  // Wrong shape: a basis for a different model must be rejected, and the
  // solve must still return the right answer from a cold start.
  Basis bogus;
  bogus.state.assign(3, omn::lp::VarStatus::kAtLower);
  SolveOptions options;
  options.warm_start_basis = bogus;
  const Solution sol = SimplexSolver().solve(lp.model, options);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_FALSE(sol.warm_started);
  const double scale = 1.0 + std::abs(cold.objective);
  EXPECT_NEAR(sol.objective, cold.objective, 1e-9 * scale);
}

TEST(RevisedSimplexWarmStart, ExportedBasisRestartsToOptimalInOnePass) {
  omn::core::OverlayLp lp = make_overlay_lp(13);
  const Solution cold = SimplexSolver().solve(lp.model);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_TRUE(cold.basis.has_value());

  // Re-solving the SAME model from its own optimal basis must terminate
  // (essentially) immediately at the same objective.
  SolveOptions options;
  options.warm_start_basis = *cold.basis;
  const Solution warm = SimplexSolver().solve(lp.model, options);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(warm.iterations, 0);
  const double scale = 1.0 + std::abs(cold.objective);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9 * scale);
}

// ---- refactorization ------------------------------------------------------

TEST(RevisedSimplex, TinyRefactorIntervalStaysCorrect) {
  // refactor_interval = 1 refactorizes after every pivot: slow but
  // maximally stable — the answer must not move.
  const omn::core::OverlayLp lp = make_overlay_lp(17);
  const Solution normal = SimplexSolver().solve(lp.model);
  ASSERT_EQ(normal.status, SolveStatus::kOptimal);

  SolveOptions options;
  options.refactor_interval = 1;
  const Solution paranoid = SimplexSolver().solve(lp.model, options);
  ASSERT_EQ(paranoid.status, SolveStatus::kOptimal);
  const double scale = 1.0 + std::abs(normal.objective);
  EXPECT_NEAR(paranoid.objective, normal.objective, 1e-9 * scale);
  // Every pivot refactorizes, so the counter must at least reach the
  // pivot count (extra refactorizations from drift checks are fine).
  EXPECT_GE(paranoid.refactorizations, paranoid.iterations);
}

TEST(RevisedSimplex, ReportsRefactorizationCount) {
  const omn::core::OverlayLp lp = make_overlay_lp(19);
  SolveOptions options;
  options.refactor_interval = 16;
  const Solution sol = SimplexSolver().solve(lp.model, options);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  // Enough pivots run on this family that at least one periodic
  // refactorization must have triggered.
  ASSERT_GT(sol.iterations, 32);
  EXPECT_GT(sol.refactorizations, 0);
}

}  // namespace
