// Concurrency test for the warm-start plumbing serve relies on: several
// threads, each driving its own core::DesignState, share ONE LpCache
// service (byte tier + shape-keyed basis index, both added in the revised
// simplex work).  The CI tsan leg runs this suite under ThreadSanitizer,
// so a data race in LpCache::find/insert/note_basis/find_basis or in the
// stats aggregation fails loudly here even if it never corrupts a result
// in practice.
//
// The assertion at the end is about the *aggregate*: every redesign
// either hit the byte cache, warm-started, or was one of the cold solves
// that seeded the cache — and the cache's own counters are consistent
// with the work the threads observed.

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "omn/core/design_state.hpp"
#include "omn/core/designer.hpp"
#include "omn/core/lp_cache.hpp"
#include "omn/serve/churn.hpp"
#include "omn/serve/serve.hpp"
#include "omn/topo/akamai.hpp"
#include "omn/util/execution_context.hpp"

namespace {

TEST(ServeConcurrency, SharedLpCacheAcrossStatesIsRaceFree) {
  const auto inst =
      omn::topo::make_akamai_like(omn::topo::global_event_config(6, 3));
  const auto cache = std::make_shared<omn::core::LpCache>();

  omn::core::DesignerConfig cfg;
  cfg.seed = 1;
  cfg.rounding_attempts = 1;
  cfg.threads = 1;
  cfg.lp_warm_start = true;

  constexpr std::size_t kThreads = 4;
  constexpr int kEventsPerThread = 8;
  std::atomic<std::size_t> warm_or_cached{0};
  std::atomic<std::size_t> redesigns{0};

  // The driver context fans the thread bodies out; each body builds its
  // own context handle carrying the SHARED cache service, so every
  // DesignState funnels its LP solves through the same LpCache instance
  // concurrently — the serve daemon next to a sweep, in miniature.
  omn::util::ExecutionContext driver(kThreads);
  driver.parallel_for(kThreads, [&](std::size_t thread_index) {
    omn::util::ExecutionContext context = omn::util::ExecutionContext::serial();
    context.set_service(cache);
    omn::core::DesignState state(inst, cfg, context);
    state.redesign();
    redesigns.fetch_add(1, std::memory_order_relaxed);
    omn::serve::ChurnConfig churn;
    // Same stream on even threads, distinct on odd: identical re-solves
    // exercise the byte tier across threads, distinct ones the shape
    // index.
    churn.seed = 100 + (thread_index % 2 == 0 ? 0 : thread_index);
    omn::serve::ChurnGenerator generator(inst, churn);
    for (int step = 0; step < kEventsPerThread; ++step) {
      omn::serve::apply_event(state, generator.next());
      const omn::core::DesignResult& result = state.redesign();
      redesigns.fetch_add(1, std::memory_order_relaxed);
      if (result.lp_cache_hit || result.lp_warm_start) {
        warm_or_cached.fetch_add(1, std::memory_order_relaxed);
      }
    }
    EXPECT_TRUE(state.last().ok());
  });

  // The shared cache engaged: with four states solving overlapping LP
  // sequences, some solves must have been served warm or byte-identical.
  EXPECT_GT(warm_or_cached.load(), 0u);

  // Counter consistency: every redesign consulted the cache exactly once
  // (hit or miss), and every miss was inserted; warm hits came from the
  // shape index.  A torn/raced update would break these identities.
  const omn::core::LpCacheStats stats = cache->stats();
  EXPECT_EQ(stats.hits + stats.misses, redesigns.load());
  EXPECT_EQ(stats.insertions, stats.misses);
  EXPECT_GE(stats.warm_hits, 1u);
  EXPECT_LE(stats.warm_hits, stats.misses);
}

}  // namespace
