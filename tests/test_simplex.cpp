// Unit tests for the two-phase bounded-variable simplex on hand-checked
// programs: textbook optima, equality rows, upper bounds, infeasible and
// unbounded detection, and a classic degenerate/cycling instance.
#include "omn/lp/simplex.hpp"

#include <gtest/gtest.h>

#include "omn/lp/model.hpp"

namespace {

using omn::lp::Model;
using omn::lp::RowSense;
using omn::lp::SimplexSolver;
using omn::lp::SolveStatus;

constexpr double kTol = 1e-7;

TEST(Simplex, EmptyModelBoxOptimum) {
  Model m;
  m.add_variable(0.0, 1.0, 1.0);    // stays at lower
  m.add_variable(0.0, 1.0, -2.0);   // goes to upper
  const auto sol = SimplexSolver().solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 0.0, kTol);
  EXPECT_NEAR(sol.x[1], 1.0, kTol);
  EXPECT_NEAR(sol.objective, -2.0, kTol);
}

TEST(Simplex, EmptyModelUnboundedVariable) {
  Model m;
  m.add_variable(0.0, omn::lp::kInfinity, -1.0);
  const auto sol = SimplexSolver().solve(m);
  EXPECT_EQ(sol.status, SolveStatus::kUnbounded);
}

// Maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig
// example): optimum (2, 6) with value 36.
TEST(Simplex, TextbookMaximization) {
  Model m;
  const int x = m.add_variable(0.0, omn::lp::kInfinity, -3.0);
  const int y = m.add_variable(0.0, omn::lp::kInfinity, -5.0);
  int r = m.add_row(RowSense::kLessEqual, 4.0);
  m.add_coefficient(r, x, 1.0);
  r = m.add_row(RowSense::kLessEqual, 12.0);
  m.add_coefficient(r, y, 2.0);
  r = m.add_row(RowSense::kLessEqual, 18.0);
  m.add_coefficient(r, x, 3.0);
  m.add_coefficient(r, y, 2.0);
  const auto sol = SimplexSolver().solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, kTol);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-6);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-6);
}

// Minimize x + 2y s.t. x + y >= 3, x - y <= 1: needs phase I.
TEST(Simplex, GreaterEqualNeedsPhase1) {
  Model m;
  const int x = m.add_variable(0.0, omn::lp::kInfinity, 1.0);
  const int y = m.add_variable(0.0, omn::lp::kInfinity, 2.0);
  int r = m.add_row(RowSense::kGreaterEqual, 3.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  r = m.add_row(RowSense::kLessEqual, 1.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, -1.0);
  const auto sol = SimplexSolver().solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  // Optimum: push x as high as possible: x - y <= 1, x + y >= 3 =>
  // x = 2, y = 1, objective 4.
  EXPECT_NEAR(sol.objective, 4.0, 1e-6);
  EXPECT_GT(sol.phase1_iterations, 0);
  EXPECT_LE(sol.max_violation, 1e-6);
}

TEST(Simplex, EqualityRow) {
  Model m;
  const int x = m.add_variable(0.0, 10.0, 1.0);
  const int y = m.add_variable(0.0, 10.0, 3.0);
  const int r = m.add_row(RowSense::kEqual, 4.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  const auto sol = SimplexSolver().solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-6);  // cheap variable takes it all
  EXPECT_NEAR(sol.x[1], 0.0, 1e-6);
  EXPECT_NEAR(sol.objective, 4.0, kTol);
}

TEST(Simplex, UpperBoundsBindWithoutExplicitRows) {
  Model m;
  // min -x - y s.t. x + y <= 1.5, x,y in [0,1]: optimum 1.5 at e.g. (1, .5).
  const int x = m.add_variable(0.0, 1.0, -1.0);
  const int y = m.add_variable(0.0, 1.0, -1.0);
  const int r = m.add_row(RowSense::kLessEqual, 1.5);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  const auto sol = SimplexSolver().solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -1.5, kTol);
  EXPECT_LE(sol.x[0], 1.0 + kTol);
  EXPECT_LE(sol.x[1], 1.0 + kTol);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.add_variable(0.0, 1.0, 1.0);
  const int r = m.add_row(RowSense::kGreaterEqual, 2.0);
  m.add_coefficient(r, x, 1.0);
  const auto sol = SimplexSolver().solve(m);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEqualitySystem) {
  Model m;
  const int x = m.add_variable(0.0, 10.0, 0.0);
  const int y = m.add_variable(0.0, 10.0, 0.0);
  int r = m.add_row(RowSense::kEqual, 1.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  r = m.add_row(RowSense::kEqual, 5.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  const auto sol = SimplexSolver().solve(m);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const int x = m.add_variable(0.0, omn::lp::kInfinity, -1.0);
  const int y = m.add_variable(0.0, omn::lp::kInfinity, 0.0);
  // x - y <= 1 does not bound x from above because y can chase it.
  const int r = m.add_row(RowSense::kLessEqual, 1.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, -1.0);
  const auto sol = SimplexSolver().solve(m);
  EXPECT_EQ(sol.status, SolveStatus::kUnbounded);
}

// Beale's classic cycling example; terminates only with anti-cycling.
TEST(Simplex, BealeCyclingInstanceTerminates) {
  Model m;
  const int x1 = m.add_variable(0.0, omn::lp::kInfinity, -0.75);
  const int x2 = m.add_variable(0.0, omn::lp::kInfinity, 150.0);
  const int x3 = m.add_variable(0.0, omn::lp::kInfinity, -0.02);
  const int x4 = m.add_variable(0.0, omn::lp::kInfinity, 6.0);
  int r = m.add_row(RowSense::kLessEqual, 0.0);
  m.add_coefficient(r, x1, 0.25);
  m.add_coefficient(r, x2, -60.0);
  m.add_coefficient(r, x3, -0.04);
  m.add_coefficient(r, x4, 9.0);
  r = m.add_row(RowSense::kLessEqual, 0.0);
  m.add_coefficient(r, x1, 0.5);
  m.add_coefficient(r, x2, -90.0);
  m.add_coefficient(r, x3, -0.02);
  m.add_coefficient(r, x4, 3.0);
  r = m.add_row(RowSense::kLessEqual, 1.0);
  m.add_coefficient(r, x3, 1.0);
  const auto sol = SimplexSolver().solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-6);
}

TEST(Simplex, FixedVariablesRespected) {
  Model m;
  const int x = m.add_variable(0.7, 0.7, -10.0);  // fixed
  const int y = m.add_variable(0.0, 1.0, 1.0);
  const int r = m.add_row(RowSense::kGreaterEqual, 1.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  const auto sol = SimplexSolver().solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 0.7, kTol);
  EXPECT_NEAR(sol.x[1], 0.3, 1e-6);
}

TEST(Simplex, NonzeroLowerBounds) {
  Model m;
  // min x + y with x >= 2, y >= 3, x + y >= 6.
  const int x = m.add_variable(2.0, omn::lp::kInfinity, 1.0);
  const int y = m.add_variable(3.0, omn::lp::kInfinity, 1.0);
  const int r = m.add_row(RowSense::kGreaterEqual, 6.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  const auto sol = SimplexSolver().solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 6.0, 1e-6);
}

TEST(Simplex, RedundantRowsHandled) {
  Model m;
  const int x = m.add_variable(0.0, 1.0, -1.0);
  for (int i = 0; i < 5; ++i) {
    const int r = m.add_row(RowSense::kLessEqual, 0.5);
    m.add_coefficient(r, x, 1.0);
  }
  const auto sol = SimplexSolver().solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 0.5, 1e-6);
}

TEST(Simplex, DuplicateTripletsAreSummed) {
  Model m;
  const int x = m.add_variable(0.0, 10.0, -1.0);
  const int r = m.add_row(RowSense::kLessEqual, 4.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, x, 1.0);  // effective coefficient 2
  const auto sol = SimplexSolver().solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-6);
}

TEST(Simplex, ReportsIterationLimit) {
  Model m;
  const int x = m.add_variable(0.0, omn::lp::kInfinity, -3.0);
  const int y = m.add_variable(0.0, omn::lp::kInfinity, -5.0);
  int r = m.add_row(RowSense::kLessEqual, 4.0);
  m.add_coefficient(r, x, 1.0);
  r = m.add_row(RowSense::kLessEqual, 12.0);
  m.add_coefficient(r, y, 2.0);
  omn::lp::SolveOptions opts;
  opts.max_iterations = 1;
  const auto sol = SimplexSolver().solve(m, opts);
  EXPECT_EQ(sol.status, SolveStatus::kIterationLimit);
}

}  // namespace
