// Tests for the design evaluator against hand-computed numbers.
#include "omn/core/evaluator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using omn::core::Design;
using omn::core::evaluate;
using omn::core::Evaluation;
using omn::net::OverlayInstance;

OverlayInstance two_reflector_instance() {
  OverlayInstance inst;
  inst.add_source(omn::net::Source{"s", 2.0});  // bandwidth 2 for ext 6.1
  inst.add_reflector(omn::net::Reflector{"r0", 10.0, 2.0, 0});
  inst.add_reflector(omn::net::Reflector{"r1", 20.0, 2.0, 1});
  inst.add_sink(omn::net::Sink{"d", 0, 0.99});
  inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, 0, 3.0, 0.1});
  inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{0, 1, 4.0, 0.2});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{0, 0, 1.0, 0.1, {}});
  inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{1, 0, 2.0, 0.2, {}});
  return inst;
}

Design full_design(const OverlayInstance& inst) {
  Design d = Design::zeros(inst);
  d.z = {1, 1};
  d.y = {1, 1};
  d.x = {1, 1};
  return d;
}

TEST(Evaluator, CostBreakdown) {
  const OverlayInstance inst = two_reflector_instance();
  const Evaluation ev = evaluate(inst, full_design(inst));
  EXPECT_DOUBLE_EQ(ev.reflector_cost, 30.0);
  EXPECT_DOUBLE_EQ(ev.sr_edge_cost, 7.0);
  EXPECT_DOUBLE_EQ(ev.rd_edge_cost, 3.0);
  EXPECT_DOUBLE_EQ(ev.total_cost, 40.0);
  EXPECT_EQ(ev.reflectors_built, 2);
  EXPECT_EQ(ev.streams_delivered, 2);
}

TEST(Evaluator, DeliveryProbabilityProductFormula) {
  const OverlayInstance inst = two_reflector_instance();
  const Evaluation ev = evaluate(inst, full_design(inst));
  // Path failures: 0.1+0.1-0.01 = 0.19; 0.2+0.2-0.04 = 0.36.
  const double expected = 1.0 - 0.19 * 0.36;
  ASSERT_EQ(ev.sinks.size(), 1u);
  EXPECT_NEAR(ev.sinks[0].delivery_probability, expected, 1e-12);
  EXPECT_EQ(ev.sinks[0].copies, 2);
}

TEST(Evaluator, WeightRatioUsesClampedWeights) {
  const OverlayInstance inst = two_reflector_instance();
  const Evaluation ev = evaluate(inst, full_design(inst));
  const double W = OverlayInstance::demand_weight(0.99);
  const double w0 = std::min(OverlayInstance::path_weight(0.1, 0.1), W);
  const double w1 = std::min(OverlayInstance::path_weight(0.2, 0.2), W);
  EXPECT_NEAR(ev.sinks[0].delivered_weight, w0 + w1, 1e-12);
  EXPECT_NEAR(ev.sinks[0].weight_ratio, (w0 + w1) / W, 1e-12);
}

TEST(Evaluator, FanoutUtilization) {
  const OverlayInstance inst = two_reflector_instance();
  const Evaluation ev = evaluate(inst, full_design(inst));
  // One x per reflector, fanout 2 -> utilization 0.5 each.
  EXPECT_DOUBLE_EQ(ev.fanout_utilization[0], 0.5);
  EXPECT_DOUBLE_EQ(ev.max_fanout_utilization, 0.5);
}

TEST(Evaluator, BandwidthExtensionDoublesUsage) {
  const OverlayInstance inst = two_reflector_instance();
  const Evaluation ev = evaluate(inst, full_design(inst), /*bandwidth=*/true);
  EXPECT_DOUBLE_EQ(ev.fanout_utilization[0], 1.0);  // B = 2
}

TEST(Evaluator, ColorCopiesTracked) {
  const OverlayInstance inst = two_reflector_instance();
  const Evaluation ev = evaluate(inst, full_design(inst));
  EXPECT_EQ(ev.max_color_copies, 1);
  EXPECT_EQ(ev.sinks[0].copies_per_color.size(), 2u);
  EXPECT_EQ(ev.sinks[0].copies_per_color[0], 1);
}

TEST(Evaluator, UnservedSinkCounted) {
  const OverlayInstance inst = two_reflector_instance();
  Design d = Design::zeros(inst);
  const Evaluation ev = evaluate(inst, d);
  EXPECT_EQ(ev.sinks_unserved, 1);
  EXPECT_EQ(ev.sinks[0].copies, 0);
  EXPECT_DOUBLE_EQ(ev.sinks[0].delivery_probability, 0.0);
  EXPECT_DOUBLE_EQ(ev.total_cost, 0.0);
}

TEST(Evaluator, InconsistencyDetected) {
  const OverlayInstance inst = two_reflector_instance();
  Design d = Design::zeros(inst);
  d.x[0] = 1;  // x without y
  const Evaluation ev = evaluate(inst, d);
  EXPECT_FALSE(ev.consistent);
}

TEST(Evaluator, ConsistentFullDesign) {
  const OverlayInstance inst = two_reflector_instance();
  const Evaluation ev = evaluate(inst, full_design(inst));
  EXPECT_TRUE(ev.consistent);
}

TEST(DesignHelpers, CloseUpwardPropagates) {
  const OverlayInstance inst = two_reflector_instance();
  Design d = Design::zeros(inst);
  d.x[1] = 1;
  d.close_upward(inst);
  EXPECT_EQ(d.y[1], 1);
  EXPECT_EQ(d.z[1], 1);
  EXPECT_EQ(d.z[0], 0);
}

TEST(DesignHelpers, PruneDropsUnused) {
  const OverlayInstance inst = two_reflector_instance();
  Design d = full_design(inst);
  d.x[1] = 0;  // reflector 1 no longer serves anyone
  d.prune_unused(inst);
  EXPECT_EQ(d.y[1], 0);
  EXPECT_EQ(d.z[1], 0);
  EXPECT_EQ(d.z[0], 1);
}

TEST(DesignHelpers, CostMatchesEvaluator) {
  const OverlayInstance inst = two_reflector_instance();
  const Design d = full_design(inst);
  EXPECT_DOUBLE_EQ(d.cost(inst), evaluate(inst, d).total_cost);
}

TEST(DesignHelpers, SizeMismatchThrows) {
  const OverlayInstance inst = two_reflector_instance();
  Design d = Design::zeros(inst);
  d.z.pop_back();
  EXPECT_THROW(d.cost(inst), std::invalid_argument);
}

}  // namespace
