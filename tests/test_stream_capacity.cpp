// Tests for extension 6.2 (constraint (8): per-reflector stream-ingest
// capacities).  The paper proves only a c log n violation guarantee is
// possible for the rounded solution; the LP itself must respect the cap
// exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "omn/core/designer.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/net/serialize.hpp"
#include "omn/topo/akamai.hpp"

namespace {

omn::net::OverlayInstance capped_instance(std::uint64_t seed) {
  auto cfg = omn::topo::global_event_config(24, seed);
  cfg.num_sources = 3;
  auto inst = omn::topo::make_akamai_like(cfg);
  for (int i = 0; i < inst.num_reflectors(); ++i) {
    inst.reflector(i).stream_capacity = 1.0;  // one stream per reflector
  }
  return inst;
}

TEST(StreamCapacity, LpRespectsCapExactly) {
  const auto inst = capped_instance(3);
  omn::core::LpBuildOptions opts;
  opts.reflector_stream_capacities = true;
  const auto lp = omn::core::build_overlay_lp(inst, opts);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  ASSERT_EQ(sol.status, omn::lp::SolveStatus::kOptimal);
  const auto frac = lp.extract(inst, sol.x);
  for (int i = 0; i < inst.num_reflectors(); ++i) {
    double total = 0.0;
    for (int k = 0; k < inst.num_sources(); ++k) {
      total += frac.y[omn::core::y_index(inst, k, i)];
    }
    EXPECT_LE(total, 1.0 + 1e-6) << "reflector " << i;
  }
}

TEST(StreamCapacity, ToggleOffIgnoresCaps) {
  const auto inst = capped_instance(5);
  const auto with_rows =
      [&](bool on) {
        omn::core::LpBuildOptions opts;
        opts.reflector_stream_capacities = on;
        return omn::core::build_overlay_lp(inst, opts).model.num_rows();
      };
  EXPECT_GT(with_rows(true), with_rows(false));
}

TEST(StreamCapacity, RoundedViolationWithinCLogN) {
  // Paper: the rounding violates (8) by at most c log n — "the best
  // guarantee we can hope for".
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto inst = capped_instance(seed);
    omn::core::DesignerConfig cfg;
    cfg.seed = seed;
    cfg.reflector_stream_capacities = true;
    cfg.rounding_attempts = 3;
    const auto r = omn::core::OverlayDesigner(cfg).design(inst);
    ASSERT_TRUE(r.ok()) << "seed " << seed;
    const double mult =
        std::max(cfg.c * std::log(inst.num_sinks()), 1.0);
    for (int i = 0; i < inst.num_reflectors(); ++i) {
      double streams = 0.0;
      for (int k = 0; k < inst.num_sources(); ++k) {
        streams += r.design.y[omn::core::y_index(inst, k, i)];
      }
      EXPECT_LE(streams, mult * 1.0 + 1e-9) << "reflector " << i;
    }
    EXPECT_GE(r.evaluation.min_weight_ratio, 0.25 - 1e-9);
  }
}

TEST(StreamCapacity, ValidateRejectsNonPositive) {
  auto inst = capped_instance(7);
  inst.reflector(0).stream_capacity = 0.0;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(StreamCapacity, SerializationRoundTrips) {
  auto inst = capped_instance(9);
  inst.reflector(1).stream_capacity.reset();  // mix capped and uncapped
  const auto back = omn::net::from_text(omn::net::to_text(inst));
  ASSERT_TRUE(back.reflector(0).stream_capacity.has_value());
  EXPECT_DOUBLE_EQ(*back.reflector(0).stream_capacity, 1.0);
  EXPECT_FALSE(back.reflector(1).stream_capacity.has_value());
}

TEST(StreamCapacity, TightCapsCanMakeLpInfeasible) {
  // Three commodities, one reflector, cap 1: sinks of different streams
  // cannot all be served.
  omn::net::OverlayInstance inst;
  for (int k = 0; k < 3; ++k) {
    inst.add_source(omn::net::Source{"s" + std::to_string(k), 1.0});
  }
  omn::net::Reflector r{"r", 1.0, 9.0, 0, {}};
  r.stream_capacity = 1.0;
  inst.add_reflector(std::move(r));
  for (int k = 0; k < 3; ++k) {
    inst.add_source_reflector_edge(omn::net::SourceReflectorEdge{k, 0, 1.0, 0.01});
    inst.add_sink(omn::net::Sink{"d" + std::to_string(k), k, 0.9});
    inst.add_reflector_sink_edge(omn::net::ReflectorSinkEdge{0, k, 1.0, 0.01, {}});
  }
  omn::core::LpBuildOptions opts;
  opts.reflector_stream_capacities = true;
  const auto lp = omn::core::build_overlay_lp(inst, opts);
  const auto sol = omn::lp::SimplexSolver().solve(lp.model);
  EXPECT_EQ(sol.status, omn::lp::SolveStatus::kInfeasible);
}

}  // namespace
