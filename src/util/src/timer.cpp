// Timer is header-only; this translation unit exists to anchor the target.
#include "omn/util/timer.hpp"

namespace omn::util {
static_assert(sizeof(Timer) > 0);
}  // namespace omn::util
