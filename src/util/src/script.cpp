#include "omn/util/script.hpp"

#include <sstream>

namespace omn::util {

std::vector<ScriptCommand> parse_script(std::istream& is) {
  std::vector<ScriptCommand> commands;
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    while (!line.empty() && line.back() == '\\') {
      line.pop_back();
      std::string continuation;
      if (!std::getline(is, continuation)) break;
      ++line_number;
      line += ' ';
      line += continuation;
    }
    std::istringstream stream(line);
    std::vector<std::string> words;
    for (std::string word; stream >> word;) {
      if (word[0] == '#') break;  // trailing comment
      words.push_back(word);
    }
    if (words.empty()) continue;
    commands.push_back(ScriptCommand{line_number, std::move(words), line});
  }
  return commands;
}

}  // namespace omn::util
