#include "omn/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace omn::util {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  if (rows_.empty()) row();
  if (rows_.back().size() >= headers_.size()) {
    throw std::out_of_range("Table: too many cells in row");
  }
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }
Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}
Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(long value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(bool value) { return cell(std::string(value ? "yes" : "no")); }

Table& Table::add_row(std::initializer_list<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.emplace_back(cells);
  return *this;
}

const std::string& Table::at(std::size_t r, std::size_t c) const {
  return rows_.at(r).at(c);
}

std::string Table::to_ascii(const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << text;
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c ? "," : "") << (c < row.size() ? escape(row[c]) : "");
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << to_ascii(title);
}

}  // namespace omn::util
