#include "omn/util/trace.hpp"

#include <array>
#include <chrono>
#include <map>
#include <memory>

#include "omn/util/thread_annotations.hpp"

namespace omn::util {
namespace {

constexpr std::size_t kChunkSize = 1024;

/// Fixed-size block of event slots.  Chunks are allocated once and never
/// move or shrink, so the owner thread can write into a slot while other
/// chunks are being read — the committed-count handshake below is the
/// only synchronization the slots need.
struct Chunk {
  std::array<TraceEvent, kChunkSize> slots;
};

/// One thread's append-only event buffer.
///
/// Writer protocol (owner thread only): grow if at capacity (cold, takes
/// mutex_ to publish the new chunk to readers), write the event into the
/// next slot through the writer-private chunk list, then release-store
/// the committed count.  No lock on the steady-state path.
///
/// Reader protocol (drain, any thread): take mutex_ (serializes drains
/// and pins the shared chunk list against growth), acquire-load the
/// committed count, and move out slots [drained_, committed).  The
/// acquire pairs with the writer's release, so every slot below the
/// loaded count is fully written.
class ThreadBuffer {
 public:
  explicit ThreadBuffer(std::uint32_t tid) : tid_(tid) {}

  std::uint32_t tid() const { return tid_; }

  /// Owner thread only.
  void append(TraceEvent event) {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n == writer_chunks_.size() * kChunkSize) grow();
    writer_chunks_[n / kChunkSize]->slots[n % kChunkSize] = std::move(event);
    count_.store(n + 1, std::memory_order_release);
  }

  /// Owner thread only: the next per-thread sequence number.
  std::uint64_t next_tick() { return tick_++; }

  /// Any thread.  Returns events recorded since the previous drain.
  std::vector<TraceEvent> drain() {
    LockGuard lock(mutex_);
    const std::size_t committed = count_.load(std::memory_order_acquire);
    std::vector<TraceEvent> out;
    out.reserve(committed - drained_);
    for (std::size_t n = drained_; n < committed; ++n) {
      out.push_back(std::move(chunks_[n / kChunkSize]->slots[n % kChunkSize]));
    }
    drained_ = committed;
    return out;
  }

 private:
  void grow() {
    auto chunk = std::make_unique<Chunk>();
    writer_chunks_.push_back(chunk.get());
    LockGuard lock(mutex_);
    chunks_.push_back(std::move(chunk));
  }

  const std::uint32_t tid_;

  // Writer-private state: only the owner thread touches these.
  std::vector<Chunk*> writer_chunks_;
  std::uint64_t tick_ = 0;

  // The committed-count handshake between writer and drain.
  std::atomic<std::size_t> count_{0};

  Mutex mutex_;
  std::vector<std::unique_ptr<Chunk>> chunks_ OMN_GUARDED_BY(mutex_);
  std::size_t drained_ OMN_GUARDED_BY(mutex_) = 0;
};

/// Process-wide buffer registry.  Leaked singleton: worker threads may
/// outlive main()'s statics, and drained buffers must survive the
/// threads that filled them.
class Registry {
 public:
  static Registry& instance() {
    static Registry* registry = new Registry;
    return *registry;
  }

  /// The calling thread's buffer, registering it on first use with a
  /// dense tid assigned in first-record order.
  ThreadBuffer& local() {
    thread_local ThreadBuffer* buffer = nullptr;
    if (buffer == nullptr) {
      LockGuard lock(mutex_);
      auto owned =
          std::make_unique<ThreadBuffer>(static_cast<std::uint32_t>(
              buffers_.size()));
      buffer = owned.get();
      buffers_.push_back(std::move(owned));
    }
    return *buffer;
  }

  std::vector<ThreadTrace> drain_all() {
    std::vector<ThreadBuffer*> buffers;
    {
      LockGuard lock(mutex_);
      for (const auto& buffer : buffers_) buffers.push_back(buffer.get());
    }
    std::vector<ThreadTrace> out;
    for (ThreadBuffer* buffer : buffers) {
      ThreadTrace thread;
      thread.tid = buffer->tid();
      thread.events = buffer->drain();
      if (!thread.events.empty()) out.push_back(std::move(thread));
    }
    return out;
  }

 private:
  Mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ OMN_GUARDED_BY(mutex_);
};

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void record(TraceEvent::Kind kind, std::string name, double value) {
  ThreadBuffer& buffer = Registry::instance().local();
  TraceEvent event;
  event.kind = kind;
  event.name = std::move(name);
  event.tick = buffer.next_tick();
  event.micros = Trace::now_micros();
  event.value = value;
  buffer.append(std::move(event));
}

/// Counter registry: name -> leaked atomic cell.  std::map keeps the
/// snapshot order sorted (deterministic export).
class Counters {
 public:
  static Counters& instance() {
    static Counters* counters = new Counters;
    return *counters;
  }

  std::atomic<std::uint64_t>& cell(const std::string& name) {
    LockGuard lock(mutex_);
    auto& slot = cells_[name];
    if (!slot) slot = std::make_unique<std::atomic<std::uint64_t>>(0);
    return *slot;
  }

  std::vector<std::pair<std::string, std::uint64_t>> snapshot() {
    LockGuard lock(mutex_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(cells_.size());
    for (const auto& [name, cell] : cells_) {
      out.emplace_back(name, cell->load(std::memory_order_relaxed));
    }
    return out;
  }

  std::uint64_t value(const std::string& name) {
    LockGuard lock(mutex_);
    const auto found = cells_.find(name);
    return found == cells_.end()
               ? 0
               : found->second->load(std::memory_order_relaxed);
  }

  void reset() {
    LockGuard lock(mutex_);
    for (auto& [name, cell] : cells_) {
      cell->store(0, std::memory_order_relaxed);
    }
  }

 private:
  Mutex mutex_;
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>> cells_
      OMN_GUARDED_BY(mutex_);
};

}  // namespace

void Trace::set_enabled(bool on) {
  // Touch the epoch before enabling so the first traced event never
  // races epoch initialization against now_micros() readers.
  trace_epoch();
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Trace::now_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

void Trace::instant(std::string name) {
  record(TraceEvent::Kind::kInstant, std::move(name), 0.0);
}

void Trace::sample(std::string name, double value) {
  record(TraceEvent::Kind::kCounter, std::move(name), value);
}

std::vector<ThreadTrace> Trace::drain() {
  return Registry::instance().drain_all();
}

void Trace::begin_span(std::string name) {
  record(TraceEvent::Kind::kBegin, std::move(name), 0.0);
}

void Trace::end_span(std::string name) {
  record(TraceEvent::Kind::kEnd, std::move(name), 0.0);
}

TraceCounter::TraceCounter(const std::string& name)
    : cell_(&Counters::instance().cell(name)) {}

std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot() {
  return Counters::instance().snapshot();
}

std::uint64_t counter_value(const std::string& name) {
  return Counters::instance().value(name);
}

void counters_reset_for_tests() {
  Counters::instance().reset();
}

}  // namespace omn::util
