#include "omn/util/execution_context.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>

#include "omn/util/thread_annotations.hpp"
#include "omn/util/trace.hpp"

namespace omn::util {

/// Type-erased service map shared by all copies of a context.  A plain
/// mutex suffices: services are looked up once per high-level operation
/// (a design, a sweep phase), never per grid cell or work item.
struct ExecutionContext::ServiceRegistry {
  Mutex mutex;
  std::map<std::type_index, std::shared_ptr<void>> entries
      OMN_GUARDED_BY(mutex);
};

ExecutionContext::ExecutionContext(std::size_t threads)
    : services_(std::make_shared<ServiceRegistry>()) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads > 1) {
    pool_ = std::make_shared<ThreadPool>(threads - 1);
  }
}

std::shared_ptr<void> ExecutionContext::find_service_erased(
    std::type_index type) const {
  const LockGuard lock(services_->mutex);
  const auto it = services_->entries.find(type);
  return it != services_->entries.end() ? it->second : nullptr;
}

void ExecutionContext::set_service_erased(std::type_index type,
                                          std::shared_ptr<void> service) {
  const LockGuard lock(services_->mutex);
  if (service == nullptr) {
    services_->entries.erase(type);
  } else {
    services_->entries[type] = std::move(service);
  }
}

ExecutionContext& ExecutionContext::global() {
  // Magic static: initialization is race-free even when the first callers
  // are concurrent, and every caller gets the same pool.
  static ExecutionContext context(0);
  return context;
}

ExecutionContext ExecutionContext::serial() { return ExecutionContext(1); }

void ExecutionContext::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& body) const {
  parallel_for(count, body, ForOptions{});
}

void ExecutionContext::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& body,
    ForOptions options) const {
  if (count == 0) return;
  const std::size_t grain = std::max<std::size_t>(1, options.grain);
  std::size_t width = concurrency();
  if (options.max_parallelism > 0) {
    width = std::min(width, options.max_parallelism);
  }
  // One claimant slot per thread that could usefully participate.
  const std::size_t slots = std::min(width, (count + grain - 1) / grain);
  if (pool_ == nullptr || slots <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Each slot loops pulling the next grain of indices off the shared
  // counter until the range is exhausted — work-stealing by construction,
  // so a slot stuck on an expensive item simply stops claiming while the
  // others drain the rest.  The pool-level parallel_for supplies the
  // batch tracking (the caller runs one slot itself and help-runs queued
  // work while waiting) and rethrows the first exception.
  std::atomic<std::size_t> next{0};
  pool_->parallel_for(slots, [&](std::size_t, std::size_t, std::size_t) {
    for (;;) {
      const std::size_t begin =
          next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(count, begin + grain);
      // One span per claimed grain: in a trace, the claim spans on each
      // worker lane show exactly how the dynamic partition balanced (or
      // didn't).  The name is built lazily — untraced runs skip it.
      OMN_TRACE_SPAN([&] {
        return "ctx.chunk " + std::to_string(begin) + ".." +
               std::to_string(end);
      });
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        // Abandon unclaimed items so sibling slots wind down promptly.
        next.store(count, std::memory_order_relaxed);
        throw;
      }
    }
  });
}

void ExecutionContext::parallel_for_chunks(
    std::size_t count, std::size_t width,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body)
    const {
  if (count == 0) return;
  if (width == 0) width = concurrency();
  // chunk_count is the single source of truth for the partition (callers
  // size per-chunk state with it); the chunk size follows from it.
  const std::size_t parts = chunk_count(count, width);
  const std::size_t chunk = (count + parts - 1) / parts;
  const auto run_chunk = [&](std::size_t p) {
    body(p * chunk, std::min(count, (p + 1) * chunk), p);
  };
  if (pool_ == nullptr || parts <= 1) {
    for (std::size_t p = 0; p < parts; ++p) run_chunk(p);
    return;
  }
  parallel_for(parts, run_chunk);
}

std::size_t ExecutionContext::chunk_count(std::size_t count,
                                          std::size_t width) {
  if (count == 0) return 0;
  // Chunk size is ceil(count / min(count, width)); the chunk count is then
  // however many such chunks the range needs, so every chunk is non-empty
  // (e.g. count 9, width 4 -> chunks of 3 -> 3 chunks, not 4).
  const std::size_t cap = std::min(count, std::max<std::size_t>(1, width));
  const std::size_t chunk = (count + cap - 1) / cap;
  return (count + chunk - 1) / chunk;
}

}  // namespace omn::util
