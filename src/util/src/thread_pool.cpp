#include "omn/util/thread_pool.hpp"

#include <algorithm>

namespace omn::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t parts = std::min(count, size() + 1);
  const std::size_t chunk = (count + parts - 1) / parts;
  // Dispatch all but the first chunk to the pool; run the first chunk on
  // the calling thread so a single-threaded pool still makes progress while
  // this thread would otherwise idle.
  for (std::size_t p = 1; p < parts; ++p) {
    const std::size_t begin = p * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    submit([&body, begin, end, p] { body(begin, end, p - 1); });
  }
  body(0, std::min(chunk, count), size());
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace omn::util
