#include "omn/util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace omn::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // Construction is single-threaded by definition; the analysis does not
  // require mutex_ here (the object is not yet shared), and the worker
  // threads only observe workers_ through their own entry point.
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  // Claim the worker handles under the lock, then join outside it: the
  // workers themselves need mutex_ to drain the queue and exit.
  std::vector<std::thread> claimed;
  {
    LockGuard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    claimed.swap(workers_);
  }
  cv_task_.notify_all();
  for (auto& worker : claimed) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  // The queued closure owns its whole lifecycle: run, capture the first
  // exception for wait_idle(), and retire from the in-flight count.  That
  // way worker_loop and help_until_done can execute any queued closure
  // without knowing whether it came from submit() or parallel_for().
  auto wrapped = [this, t = std::move(task)] {
    std::exception_ptr err;
    try {
      t();
    } catch (...) {
      err = std::current_exception();
    }
    LockGuard lock(mutex_);
    if (err && !error_) error_ = err;
    --in_flight_;
    if (in_flight_ == 0) cv_idle_.notify_all();
  };
  {
    LockGuard lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit called after stop()");
    }
    queue_.push(std::move(wrapped));
    ++in_flight_;
  }
  cv_task_.notify_one();
  cv_batch_.notify_all();
}

void ThreadPool::wait_idle() {
  std::exception_ptr err;
  {
    LockGuard lock(mutex_);
    while (in_flight_ != 0) cv_idle_.wait(mutex_);
    err = std::exchange(error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t workers = size();
  const std::size_t chunk =
      (count + workers) / (workers + 1);  // ceil(count / (workers + 1))
  const std::size_t parts = (count + chunk - 1) / chunk;  // non-empty chunks

  Batch batch;
  batch.pending = parts;
  {
    LockGuard lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::parallel_for called after stop()");
    }
    for (std::size_t p = 1; p < parts; ++p) {
      const std::size_t begin = p * chunk;
      const std::size_t end = std::min(count, begin + chunk);
      queue_.push([this, &body, &batch, begin, end, p] {
        std::exception_ptr err;
        try {
          body(begin, end, p - 1);
        } catch (...) {
          err = std::current_exception();
        }
        LockGuard inner(mutex_);
        if (err && !batch.error) batch.error = err;
        --batch.pending;
        --in_flight_;
        if (in_flight_ == 0) cv_idle_.notify_all();
        cv_batch_.notify_all();
      });
      ++in_flight_;
    }
  }
  cv_task_.notify_all();
  cv_batch_.notify_all();

  // The calling thread runs the first chunk (as the last chunk index, so
  // pool-side chunks keep the stable indices 0..parts-2), then helps drain
  // the queue until its own batch has finished.
  {
    std::exception_ptr err;
    try {
      body(0, std::min(chunk, count), parts - 1);
    } catch (...) {
      err = std::current_exception();
    }
    LockGuard lock(mutex_);
    if (err && !batch.error) batch.error = err;
    --batch.pending;
  }
  cv_batch_.notify_all();
  help_until_done(batch);
  if (batch.error) std::rethrow_exception(batch.error);
}

void ThreadPool::worker_loop() {
  LockGuard lock(mutex_);
  for (;;) {
    while (!stopping_ && queue_.empty()) cv_task_.wait(mutex_);
    if (queue_.empty()) return;  // stopping_ and drained
    run_one();
  }
}

void ThreadPool::run_one() {
  std::function<void()> task = std::move(queue_.front());
  queue_.pop();
  mutex_.unlock();
  task();  // self-contained: never throws, does its own accounting
  mutex_.lock();
}

void ThreadPool::help_until_done(Batch& batch) {
  LockGuard lock(mutex_);
  for (;;) {
    if (batch.pending == 0) return;
    if (!queue_.empty()) {
      run_one();
      continue;
    }
    // Woken by batch completion or newly stealable work; loop re-checks.
    cv_batch_.wait(mutex_);
  }
}

}  // namespace omn::util
