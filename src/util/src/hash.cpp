#include "omn/util/hash.hpp"

#include <bit>

namespace omn::util {

namespace {

// Distinct odd multipliers keep the two lanes decorrelated even though
// they absorb the same byte stream.
constexpr std::uint64_t kPrimeA = 1099511628211ull;          // FNV-1a prime
constexpr std::uint64_t kPrimeB = 0x9e3779b97f4a7c15ull;     // 2^64 / phi

/// splitmix64 finalizer: full-avalanche bijection on 64 bits.
std::uint64_t avalanche(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::string Digest128::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int n = 0; n < 16; ++n) {
    const std::uint64_t word = n < 8 ? hi : lo;
    const int shift = 4 * (2 * (7 - (n % 8)) + 1);
    out[static_cast<std::size_t>(2 * n)] = kDigits[(word >> shift) & 0xf];
    out[static_cast<std::size_t>(2 * n + 1)] = kDigits[(word >> (shift - 4)) & 0xf];
  }
  return out;
}

void Hasher::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t a = a_;
  std::uint64_t b = b_;
  for (std::size_t n = 0; n < size; ++n) {
    const std::uint64_t byte = p[n];
    a = (a ^ byte) * kPrimeA;
    b = (b ^ (byte + 0x5bull)) * kPrimeB;
  }
  a_ = a;
  b_ = b;
}

void Hasher::u8(std::uint8_t v) { bytes(&v, 1); }

void Hasher::u32(std::uint32_t v) {
  unsigned char le[4];
  for (int n = 0; n < 4; ++n) le[n] = static_cast<unsigned char>(v >> (8 * n));
  bytes(le, sizeof le);
}

void Hasher::u64(std::uint64_t v) {
  unsigned char le[8];
  for (int n = 0; n < 8; ++n) le[n] = static_cast<unsigned char>(v >> (8 * n));
  bytes(le, sizeof le);
}

void Hasher::i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

void Hasher::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Hasher::f64(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0: equal values must hash equal
  u64(std::bit_cast<std::uint64_t>(v));
}

void Hasher::boolean(bool v) { u8(v ? 1 : 0); }

void Hasher::str(std::string_view s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

void Hasher::opt_f64(const std::optional<double>& v) {
  boolean(v.has_value());
  if (v.has_value()) f64(*v);
}

Digest128 Hasher::digest() const {
  // Cross-feed the lanes so each output word depends on both states.
  return Digest128{avalanche(a_ + kPrimeB * b_), avalanche(b_ ^ (a_ * kPrimeA))};
}

std::uint64_t content_checksum(std::string_view bytes) {
  Hasher hasher;
  hasher.bytes(bytes.data(), bytes.size());
  return hasher.digest().lo;
}

}  // namespace omn::util
