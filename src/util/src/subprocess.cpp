#include "omn/util/subprocess.hpp"

#include <new>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define OMN_SUBPROCESS_POSIX 1
#include <csignal>
#include <cstring>
#include <mutex>

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#if defined(__APPLE__)
#include <cstdint>

#include <mach-o/dyld.h>
#endif
#endif

namespace omn::util {

#if defined(OMN_SUBPROCESS_POSIX)

namespace {

/// Writing to a child that died mid-frame must surface as EPIPE on the
/// write, not as a process-killing SIGPIPE.  Installed once, process-wide;
/// an application that set its own SIGPIPE handler keeps it.
void ignore_sigpipe_once() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    struct sigaction current {};
    if (sigaction(SIGPIPE, nullptr, &current) == 0 &&
        current.sa_handler == SIG_DFL) {
      std::signal(SIGPIPE, SIG_IGN);
    }
  });
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) {
    throw std::runtime_error("Subprocess::spawn: empty argv");
  }
  ignore_sigpipe_once();

  // in_pipe: parent writes -> child stdin; out_pipe: child stdout -> parent.
  int in_pipe[2] = {-1, -1};
  int out_pipe[2] = {-1, -1};
  if (::pipe(in_pipe) != 0) {
    throw std::runtime_error("Subprocess::spawn: pipe() failed");
  }
  if (::pipe(out_pipe) != 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    throw std::runtime_error("Subprocess::spawn: pipe() failed");
  }
  const auto close_all = [&] {
    for (int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) {
      if (fd >= 0) ::close(fd);
    }
  };
  // Two fd invariants, established before fork:
  //  - every pipe end sits ABOVE the stdio range, so the child's dup2
  //    below is always a real duplication (a parent launched with stdin
  //    or stdout closed can be handed fd 0/1 by pipe(), and dup2(fd, fd)
  //    would be a no-op that leaves CLOEXEC set);
  //  - CLOEXEC on every end, so a LATER-spawned sibling does not inherit
  //    this child's fds — a sibling holding a stray stdin write end
  //    would keep this child's stdin open forever after the parent dies.
  //    The child's dup2 clears the flag on the two fds it keeps.
  for (int* fd : {&in_pipe[0], &in_pipe[1], &out_pipe[0], &out_pipe[1]}) {
    if (*fd < 3) {
      const int raised = ::fcntl(*fd, F_DUPFD, 3);
      ::close(*fd);
      *fd = raised;
      if (raised < 0) {
        close_all();
        throw std::runtime_error("Subprocess::spawn: fcntl(F_DUPFD) failed");
      }
    }
    ::fcntl(*fd, F_SETFD, FD_CLOEXEC);
  }

  // Built BEFORE fork: the child may only make async-signal-safe calls
  // until exec (the parent may be multi-threaded, and another thread
  // could hold the allocator lock at fork time).
  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    c_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  c_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    close_all();
    throw std::runtime_error("Subprocess::spawn: fork() failed");
  }

  if (pid == 0) {
    // Child: async-signal-safe calls only, then exec.
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execvp(c_argv[0], c_argv.data());
    ::_exit(127);  // exec failed; 127 matches the shell convention
  }

  // Parent: keep the write end of the child's stdin and the read end of
  // its stdout; close the child-side ends so EOF propagates.
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  Subprocess child;
  child.pid_ = pid;
  child.stdin_fd_ = in_pipe[1];
  child.stdout_fd_ = out_pipe[0];
  return child;
}

bool Subprocess::write_exact(const void* data, std::size_t size) {
  if (stdin_fd_ < 0) return false;
  const char* cursor = static_cast<const char*>(data);
  std::size_t left = size;
  while (left > 0) {
    const ssize_t n = ::write(stdin_fd_, cursor, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

std::size_t Subprocess::read_exact(void* data, std::size_t size) {
  if (stdout_fd_ < 0) return 0;
  char* cursor = static_cast<char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(stdout_fd_, cursor + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: the child exited or closed stdout
    done += static_cast<std::size_t>(n);
  }
  return done;
}

void Subprocess::close_stdin() { close_fd(stdin_fd_); }

void Subprocess::kill() {
  if (pid_ > 0 && !reaped_) ::kill(static_cast<pid_t>(pid_), SIGKILL);
}

bool Subprocess::running() {
  if (pid_ <= 0 || reaped_) return false;
  int status = 0;
  const pid_t r = ::waitpid(static_cast<pid_t>(pid_), &status, WNOHANG);
  if (r == 0) return true;
  reaped_ = true;
  exit_code_ = WIFEXITED(status)     ? WEXITSTATUS(status)
               : WIFSIGNALED(status) ? 128 + WTERMSIG(status)
                                     : -1;
  return false;
}

int Subprocess::wait() {
  if (pid_ <= 0) return -1;
  if (!reaped_) {
    int status = 0;
    pid_t r = 0;
    do {
      r = ::waitpid(static_cast<pid_t>(pid_), &status, 0);
    } while (r < 0 && errno == EINTR);
    reaped_ = true;
    exit_code_ = r < 0                 ? -1
                 : WIFEXITED(status)   ? WEXITSTATUS(status)
                 : WIFSIGNALED(status) ? 128 + WTERMSIG(status)
                                       : -1;
  }
  return exit_code_;
}

Subprocess::~Subprocess() {
  if (pid_ > 0 && !reaped_) {
    kill();
    wait();
  }
  reset();
}

std::string current_executable_path() {
#if defined(__linux__)
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n > 0) return std::string(buffer, static_cast<std::size_t>(n));
#elif defined(__APPLE__)
  std::uint32_t size = 0;
  _NSGetExecutablePath(nullptr, &size);  // reports the needed size
  std::string buffer(size, '\0');
  if (_NSGetExecutablePath(buffer.data(), &size) == 0) {
    return std::string(buffer.c_str());  // trim at the NUL
  }
#endif
  return {};
}

#else  // !OMN_SUBPROCESS_POSIX

Subprocess Subprocess::spawn(const std::vector<std::string>&) {
  throw std::runtime_error("Subprocess: unsupported platform");
}
bool Subprocess::write_exact(const void*, std::size_t) { return false; }
std::size_t Subprocess::read_exact(void*, std::size_t) { return 0; }
void Subprocess::close_stdin() {}
void Subprocess::kill() {}
bool Subprocess::running() { return false; }
int Subprocess::wait() { return -1; }
Subprocess::~Subprocess() { reset(); }

std::string current_executable_path() { return {}; }

#endif  // OMN_SUBPROCESS_POSIX

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_),
      stdin_fd_(other.stdin_fd_),
      stdout_fd_(other.stdout_fd_),
      reaped_(other.reaped_),
      exit_code_(other.exit_code_) {
  other.pid_ = -1;
  other.stdin_fd_ = -1;
  other.stdout_fd_ = -1;
  other.reaped_ = false;
  other.exit_code_ = -1;
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    this->~Subprocess();
    new (this) Subprocess(std::move(other));
  }
  return *this;
}

void Subprocess::reset() noexcept {
#if defined(OMN_SUBPROCESS_POSIX)
  close_fd(stdin_fd_);
  close_fd(stdout_fd_);
#endif
  pid_ = -1;
}

}  // namespace omn::util
