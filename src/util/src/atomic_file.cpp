#include "omn/util/atomic_file.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "omn/util/hash.hpp"

namespace omn::util {

namespace fs = std::filesystem;

std::string unique_temp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  Hasher h;
  h.u64(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  // The pid is the load-bearing cross-PROCESS discriminator: identical
  // worker binaries writing the same shared directory can agree on the
  // thread-id hash and the counter value, leaving only the clock tick
  // otherwise.
#if defined(__unix__) || defined(__APPLE__)
  h.u64(static_cast<std::uint64_t>(::getpid()));
#endif
  h.u64(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  h.u64(counter.fetch_add(1, std::memory_order_relaxed));
  return h.digest().hex().substr(0, 16);
}

bool write_file_atomic(const std::string& path, std::string_view bytes) {
  try {
    const fs::path final_path(path);
    const fs::path temp_path = path + ".tmp-" + unique_temp_suffix();
    {
      std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      // close() flushes and sets failbit on failure (e.g. ENOSPC at
      // flush) — checking good() before the flush would let a truncated
      // temp file slip through to the rename below.
      out.close();
      if (out.fail()) {
        std::error_code ignored;
        fs::remove(temp_path, ignored);
        return false;
      }
    }
    std::error_code ec;
    fs::rename(temp_path, final_path, ec);
    if (ec) {
      // E.g. a platform where rename cannot replace an existing file: a
      // concurrent writer beat us to an identical entry; drop ours.
      std::error_code ignored;
      fs::remove(temp_path, ignored);
      return false;
    }
    return true;
  } catch (const fs::filesystem_error&) {
    return false;
  }
}

}  // namespace omn::util
