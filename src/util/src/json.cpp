#include "omn/util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace omn::util {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Json& Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("Json::set: value is not an object");
  }
  for (auto& [existing, child] : children_) {
    if (existing == key) {
      child = std::move(value);
      return *this;
    }
  }
  children_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) {
    throw std::logic_error("Json::push: value is not an array");
  }
  children_.emplace_back(std::string{}, std::move(value));
  return *this;
}

namespace {

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  char buf[40];
  // 17 significant digits round-trip any IEEE double exactly; %g keeps
  // integral values like 0.5 or 3 short and stable across platforms.
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
  // A bare integral double still reads back as a double everywhere, but
  // make the type visible in the file: 2 -> 2.0 (not for exponents).
  if (std::string_view(buf).find_first_of(".eE") == std::string_view::npos) {
    out += ".0";
  }
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int levels) {
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(levels),
               ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: append_double(out, double_); break;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray:
    case Kind::kObject: {
      const char open = kind_ == Kind::kArray ? '[' : '{';
      const char close = kind_ == Kind::kArray ? ']' : '}';
      out += open;
      bool first = true;
      for (const auto& [key, child] : children_) {
        if (!first) out += ',';
        first = false;
        if (indent > 0) newline_pad(depth + 1);
        if (kind_ == Kind::kObject) {
          out += '"';
          out += json_escape(key);
          out += indent > 0 ? "\": " : "\":";
        }
        child.write(out, indent, depth + 1);
      }
      if (!children_.empty() && indent > 0) newline_pad(depth);
      out += close;
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace omn::util
