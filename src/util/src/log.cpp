#include "omn/util/log.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "omn/util/thread_annotations.hpp"
#include "omn/util/timer.hpp"

namespace omn::util {

namespace {

/// write(2) until everything is out (pipes and ttys take short writes).
void write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n <= 0) return;  // the console went away; keep pumping the log
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
}

/// Everything the tee owns.  Leaked: the pumps and the atexit hook
/// outlive main, so static-destruction order must not touch this.
struct TeeState {
  std::FILE* log = nullptr;
  Timer since_install;
  int saved_fd[2] = {-1, -1};   // dup of the original fds 1 and 2
  int pipe_read[2] = {-1, -1};  // read ends the pumps drain
  std::thread pump[2];

  Mutex log_mutex;
  // Partial-line carry per stream, flushed when its newline arrives.
  std::string carry[2] OMN_GUARDED_BY(log_mutex);

  void append(int stream, const char* data, std::size_t size) {
    LockGuard lock(log_mutex);
    carry[stream].append(data, size);
    for (std::size_t nl = carry[stream].find('\n');
         nl != std::string::npos; nl = carry[stream].find('\n')) {
      std::fprintf(log, "[%10.3f] %.*s\n", since_install.seconds(),
                   static_cast<int>(nl), carry[stream].data());
      carry[stream].erase(0, nl + 1);
    }
    std::fflush(log);
  }

  void flush_carry(int stream) {
    LockGuard lock(log_mutex);
    if (!carry[stream].empty()) {
      std::fprintf(log, "[%10.3f] %s\n", since_install.seconds(),
                   carry[stream].c_str());
      carry[stream].clear();
    }
    std::fflush(log);
  }
};

TeeState* g_tee = nullptr;

void pump_stream(TeeState* tee, int stream) {
  char buffer[4096];
  for (;;) {
    const ssize_t n =
        ::read(tee->pipe_read[stream], buffer, sizeof(buffer));
    if (n <= 0) break;  // write ends closed at uninstall -> EOF
    write_all(tee->saved_fd[stream], buffer,
              static_cast<std::size_t>(n));
    tee->append(stream, buffer, static_cast<std::size_t>(n));
  }
  tee->flush_carry(stream);
}

void uninstall_log_tee() {
  TeeState* tee = g_tee;
  if (tee == nullptr) return;
  std::fflush(stdout);
  std::fflush(stderr);
  // Restoring the saved fds over 1/2 drops the last references to the
  // pipe write ends, so each pump reads EOF and drains out.
  ::dup2(tee->saved_fd[0], STDOUT_FILENO);
  ::dup2(tee->saved_fd[1], STDERR_FILENO);
  for (int stream = 0; stream < 2; ++stream) {
    tee->pump[stream].join();
    ::close(tee->pipe_read[stream]);
  }
  std::fclose(tee->log);
  g_tee = nullptr;  // saved fds stay open; they ARE fds 1/2 now
}

}  // namespace

void install_log_tee(const std::string& path) {
  if (g_tee != nullptr) {
    throw std::runtime_error("--log: tee already installed");
  }
  std::FILE* log = std::fopen(path.c_str(), "w");
  if (log == nullptr) {
    throw std::runtime_error("--log: cannot open " + path);
  }
  auto* tee = new TeeState;
  tee->log = log;
  const int target_fd[2] = {STDOUT_FILENO, STDERR_FILENO};
  for (int stream = 0; stream < 2; ++stream) {
    int fds[2];
    if (::pipe(fds) != 0) {
      throw std::runtime_error("--log: cannot create pipe");
    }
    tee->pipe_read[stream] = fds[0];
    tee->saved_fd[stream] = ::dup(target_fd[stream]);
    if (tee->saved_fd[stream] < 0 ||
        ::dup2(fds[1], target_fd[stream]) < 0) {
      throw std::runtime_error("--log: cannot redirect fd " +
                               std::to_string(target_fd[stream]));
    }
    ::close(fds[1]);  // fd 1/2 now holds the only write reference
  }
  // Line-buffer the C streams so console and log stay interleaved the
  // way a tty session would be (a pipe would otherwise fully buffer).
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::setvbuf(stderr, nullptr, _IONBF, 0);
  // omn-lint: allow(raw-concurrency): the pump threads block in read(2)
  // for the process lifetime; parking them in the shared compute pool
  // would starve it
  for (int stream = 0; stream < 2; ++stream) {
    tee->pump[stream] = std::thread(pump_stream, tee, stream);
  }
  g_tee = tee;
  std::atexit(uninstall_log_tee);
}

bool log_tee_installed() { return g_tee != nullptr; }

}  // namespace omn::util
