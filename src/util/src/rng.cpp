#include "omn/util/rng.hpp"

#include <cmath>

namespace omn::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // An all-zero state would be a fixed point; splitmix64 cannot produce
  // four zero outputs in a row, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) {
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::pareto(double x_m, double alpha) {
  return x_m / std::pow(1.0 - uniform(), 1.0 / alpha);
}

Rng Rng::fork() {
  Rng child(0);
  for (auto& word : child.state_) word = (*this)();
  if (child.state_[0] == 0 && child.state_[1] == 0 && child.state_[2] == 0 &&
      child.state_[3] == 0) {
    child.state_[0] = 1;
  }
  return child;
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull, 0xa9582618e03fc9aaull,
      0x39abdc4529b1661cull};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ull << bit)) {
        for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

}  // namespace omn::util
