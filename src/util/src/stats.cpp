#include "omn/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace omn::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q not in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_acc = 0.0;
  for (double v : values) {
    if (v <= 0.0) throw std::invalid_argument("geometric_mean: non-positive value");
    log_acc += std::log(v);
  }
  return std::exp(log_acc / static_cast<double>(values.size()));
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.p50 = percentile(values, 0.50);
  s.p90 = percentile(values, 0.90);
  s.p99 = percentile(values, 0.99);
  return s;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " sd=" << stddev << " min=" << min
     << " p50=" << p50 << " p90=" << p90 << " p99=" << p99 << " max=" << max;
  return os.str();
}

}  // namespace omn::util
