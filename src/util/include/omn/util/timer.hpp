#pragma once
// Wall-clock timing for the experiment harness.

#include <chrono>

namespace omn::util {

/// Monotonic stopwatch.  Starts running on construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace omn::util
