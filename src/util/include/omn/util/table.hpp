#pragma once
// Plain-text table rendering for experiment reports.
//
// Every bench binary prints its results as an aligned ASCII table (for
// humans) and can additionally emit CSV (for plotting).  The same Table
// object backs both renderings.

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace omn::util {

/// A simple row/column table of strings with typed cell helpers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 4);
  Table& cell(std::size_t value);
  Table& cell(long value);
  Table& cell(int value);
  Table& cell(bool value);

  /// Appends a complete row at once; must match the header width.
  Table& add_row(std::initializer_list<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }
  const std::string& at(std::size_t r, std::size_t c) const;

  /// Renders with aligned columns, a header rule, and a title line.
  std::string to_ascii(const std::string& title = "") const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by bench code).
std::string format_double(double value, int precision = 4);

}  // namespace omn::util
