#pragma once
// Streaming and batch summary statistics used by the experiment harness.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace omn::util {

/// Numerically stable (Welford) streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch percentile with linear interpolation; q in [0, 1].
/// The input span is copied; the original order is preserved.
double percentile(std::span<const double> values, double q);

/// Arithmetic mean of a span (0 for empty input).
double mean(std::span<const double> values);

/// Sample standard deviation of a span (0 for fewer than two values).
double stddev(std::span<const double> values);

/// Geometric mean; all values must be positive.
double geometric_mean(std::span<const double> values);

/// Summary of a sample used in experiment reports.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  std::string to_string() const;
};

Summary summarize(std::span<const double> values);

}  // namespace omn::util
