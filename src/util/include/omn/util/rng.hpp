#pragma once
// Deterministic, seedable pseudo-random number generation.
//
// All randomized components of the library (the Section-3 randomized
// rounding, the Srinivasan–Teo path rounding, topology generators, and the
// Monte Carlo packet simulator) draw their randomness from omn::util::Rng so
// that every experiment in the repository is reproducible from a 64-bit
// seed.  The generator is xoshiro256** (Blackman & Vigna), which is fast,
// has a 2^256-1 period, and passes BigCrush.

#include <array>
#include <cstdint>
#include <limits>

namespace omn::util {

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator so
/// it can also be plugged into <random> distributions if desired.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64, as
  /// recommended by the xoshiro authors (avoids all-zero states).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).  Uses the top 53 bits.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be > 0.  Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);

  /// Pareto-distributed value with minimum x_m > 0 and shape alpha > 0.
  /// Used by the topology generator for heavy-tailed bandwidth costs.
  double pareto(double x_m, double alpha);

  /// Forks an independent stream: returns a generator seeded from this
  /// one's next outputs.  Used to give each worker thread its own stream.
  Rng fork();

  /// Equivalent to 2^128 calls of operator(); provides non-overlapping
  /// subsequences for parallel use.
  void jump();

 private:
  std::array<std::uint64_t, 4> state_{};
  // Cached second value from the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace omn::util
