#pragma once
// --log support: a process-level tee that mirrors everything the process
// writes to stdout and stderr into one timestamped log file (the
// OpenROAD `-log` idiom: the console session and the log file tell the
// same story, the log just adds elapsed-time stamps).
//
// Mechanism: install_log_tee() swaps fds 1 and 2 for pipes and starts
// one pump thread per stream.  Each pump forwards every byte verbatim to
// the original destination (so console output, redirections, and the
// serve line protocol behave exactly as before) and appends complete
// lines to the log as `[   12.345] <line>`, the stamp being seconds
// since the tee was installed (monotonic — never wall-clock, so logs
// diff cleanly).  stdout and stderr interleave in the log in pump order,
// each line whole.
//
// The tee uninstalls through an atexit hook: flush both C streams,
// restore the saved fds (which closes the pipe write ends and lets the
// pumps drain to EOF), join, close the log.  Output printed by LATER
// atexit hooks therefore still reaches the console but not the log —
// register the tee before other exit work that must be captured.
//
// fd-level, not streambuf-level, on purpose: the tree prints through
// std::printf and std::ostream both, and only the fd sees every byte.

#include <string>

namespace omn::util {

/// Installs the stdout/stderr tee writing to `path` (truncated).  Call
/// at most once, before the output that must be captured; throws
/// std::runtime_error when the log file cannot be opened or the plumbing
/// fails.  No-op platforms without POSIX fds do not exist for this tree.
void install_log_tee(const std::string& path);

/// True between install_log_tee() and process exit.
bool log_tee_installed();

}  // namespace omn::util
