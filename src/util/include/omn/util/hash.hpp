#pragma once
// Deterministic content hashing for cache keys.
//
// Hasher absorbs a stream of typed values and produces a 128-bit digest
// (two FNV-1a-style 64-bit lanes with distinct multipliers, finished with
// a splitmix64 avalanche).  Every value is serialized to a fixed-width
// little-endian byte sequence before absorption, so the digest of a given
// value stream is identical on every platform, compiler, and endianness —
// the property the on-disk LP cache relies on to share entries across
// processes and machines.
//
// This is a *content* hash for addressing, not a cryptographic hash: it
// has no collision resistance against an adversary.  Callers that map a
// digest hit back to heavyweight state should keep a cheap structural
// sanity check (e.g. core::solve_overlay_lp_cached verifies the cached
// point's dimension against the rebuilt model).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace omn::util {

/// A 128-bit content digest.  Value type: compare with ==, key maps with
/// Digest128Hash, render with hex() (32 lowercase hex chars, hi then lo).
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Digest128&) const = default;

  /// 32 lowercase hex characters: hi word first, zero-padded.
  std::string hex() const;
};

/// std::unordered_map-compatible hash functor for Digest128.
struct Digest128Hash {
  std::size_t operator()(const Digest128& d) const noexcept {
    return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9e3779b97f4a7c15ull));
  }
};

/// The 64-bit trailer checksum every persisted/wire format appends
/// (Hasher over the bytes, low digest word).  One definition so the
/// .lpsol, frame, and checkpoint trailers can never drift apart.
std::uint64_t content_checksum(std::string_view bytes);

/// Streaming hasher.  Typed append methods serialize canonically (fixed
/// width, little-endian; strings length-prefixed; optionals presence-
/// prefixed; -0.0 collapsed to +0.0 so semantically equal values hash
/// equal).  digest() may be called at any point without disturbing the
/// stream.
class Hasher {
 public:
  /// Raw bytes, absorbed as-is.  Prefer the typed methods: raw struct
  /// memory is NOT deterministic across platforms (padding, endianness).
  void bytes(const void* data, std::size_t size);

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  /// Hashes the IEEE-754 bit pattern with -0.0 canonicalized to +0.0.
  void f64(double v);
  void boolean(bool v);
  /// Length-prefixed, so ("ab", "c") and ("a", "bc") hash differently.
  void str(std::string_view s);
  /// Presence byte, then the value when present.
  void opt_f64(const std::optional<double>& v);

  /// The digest of everything absorbed so far.
  Digest128 digest() const;

 private:
  // FNV-1a offset basis; lane b starts decorrelated from lane a.
  std::uint64_t a_ = 14695981039346656037ull;
  std::uint64_t b_ = 14695981039346656037ull ^ 0x9e3779b97f4a7c15ull;
};

}  // namespace omn::util
