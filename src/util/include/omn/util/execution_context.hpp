#pragma once
// ExecutionContext: the process's one scheduler handle.
//
// Every parallel stage of the pipeline — the designer's Monte Carlo
// rounding attempts, DesignSweep experiment grids, the packet simulator's
// batches — used to construct its own ThreadPool per call.  That wastes
// thread startup on hot loops (adaptive_redesign re-designs every epoch)
// and oversubscribes the machine when stages nest (a sweep cell fanning
// out its own attempts).  An ExecutionContext fixes both: it is a cheap,
// copyable handle to one shared ThreadPool that callers pass down through
// the layers, so nested parallel stages feed the same queue instead of
// spawning rival pools.
//
// Ownership rules:
//  - `ExecutionContext::global()` is the process-wide default (hardware
//    concurrency), constructed race-free on first use and reused by every
//    caller that does not inject its own context;
//  - `ExecutionContext(n)` owns a fresh pool of n - 1 workers; copies of
//    the handle share it, and the pool is joined when the last copy dies;
//  - `ExecutionContext::serial()` has no pool at all — every parallel_for
//    runs inline on the calling thread (useful for baselines and tests).
//
// Scheduling: parallel_for uses *dynamic* chunking — claimants pull
// `grain` indices at a time off a shared atomic counter — so skewed
// per-item workloads (e.g. color-constrained design cells next to plain
// ones) balance instead of straggling behind a static partition.  For
// callers whose determinism depends on the partition itself (the packet
// simulator assigns one RNG stream per chunk), parallel_for_chunks fixes
// the partition as a pure function of (count, width) and only the
// *execution order* of chunks is dynamic.
//
// Nested and concurrent calls are safe: the underlying ThreadPool batches
// track their own completion and waiters help-run queued work, so an item
// body may itself call parallel_for on the same context.

#include <cstddef>
#include <functional>
#include <memory>
#include <typeindex>

#include "omn/util/thread_pool.hpp"

namespace omn::util {

class ExecutionContext {
 public:
  /// `threads` is the total number of threads the context may use, the
  /// calling thread included: 0 = hardware_concurrency(), 1 = serial
  /// (no pool).  A context constructed with n > 1 owns a pool of n - 1
  /// workers shared by all copies of the handle.
  explicit ExecutionContext(std::size_t threads = 0);

  /// The process-wide default context (hardware concurrency).  The
  /// underlying pool is constructed on first use (thread-safe, C++ magic
  /// static) and lives for the rest of the process.
  static ExecutionContext& global();

  /// A context with no pool: all work runs inline on the calling thread.
  static ExecutionContext serial();

  /// Total threads available to this context, calling thread included.
  std::size_t concurrency() const { return pool_ ? pool_->size() + 1 : 1; }

  struct ForOptions {
    /// Cap on the number of threads concurrently claiming items
    /// (0 = the context's full concurrency).  The cap bounds *this call's*
    /// claimants only; the shared pool is never resized.
    std::size_t max_parallelism = 0;
    /// Indices claimed per grab from the shared counter.  Larger grains
    /// amortize the atomic per item; 1 (the default) balances best.
    std::size_t grain = 1;
  };

  /// Runs body(i) for every i in [0, count) with dynamic chunking:
  /// claimants pull `grain` indices at a time from an atomic counter, so
  /// expensive items never straggle behind a static partition.  The
  /// calling thread participates and help-runs unrelated queued work while
  /// waiting; nested and concurrent calls are safe.  Rethrows the first
  /// exception a body raised (remaining unclaimed items are abandoned).
  /// Item execution order is unspecified — bodies must be independent.
  /// (Two overloads instead of a defaulted ForOptions argument: a nested
  /// class with member initializers cannot be defaulted in-class.)
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t index)>& body) const;
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t index)>& body,
                    ForOptions options) const;

  /// Splits [0, count) into chunk_count(count, width) contiguous chunks —
  /// a pure function of (count, width), never of the pool size — and runs
  /// body(begin, end, chunk) once per chunk, dynamically scheduled.  Use
  /// this when per-chunk state (e.g. one RNG stream per chunk) must stay
  /// deterministic for a given width while still sharing the pool.
  /// `width` = 0 selects concurrency().
  void parallel_for_chunks(
      std::size_t count, std::size_t width,
      const std::function<void(std::size_t begin, std::size_t end,
                               std::size_t chunk)>& body) const;

  /// Number of chunks parallel_for_chunks uses for (count, width): at most
  /// min(count, width), every chunk non-empty, 0 when count == 0.
  static std::size_t chunk_count(std::size_t count, std::size_t width);

  /// The wrapped pool, or nullptr for a serial context.  Exposed for
  /// callers that need submit()/async()/parallel_map() directly.
  ThreadPool* pool() const { return pool_.get(); }

  // ---- shared services ----------------------------------------------------
  //
  // A context also carries a type-erased registry of *services*: shared
  // process state that wants the same scope and plumbing as the pool
  // (e.g. core::LpCache, whose in-memory tier must be shared by every
  // layer a sweep fans out through).  Copies of a context share one
  // registry exactly as they share the pool — set a service on any copy
  // and every holder of the same context sees it; global()'s registry is
  // process-wide.  Each serial() call returns a *fresh* context, so keep
  // a copy if its services must persist.  All access is thread-safe.

  /// The service of type T installed on this context, or nullptr.
  template <typename T>
  std::shared_ptr<T> find_service() const {
    return std::static_pointer_cast<T>(
        find_service_erased(std::type_index(typeid(T))));
  }

  /// Installs (or, with nullptr, removes) the service of type T.  The
  /// registry keeps the shared_ptr alive as long as any context copy does.
  template <typename T>
  void set_service(std::shared_ptr<T> service) {
    set_service_erased(std::type_index(typeid(T)), std::move(service));
  }

 private:
  std::shared_ptr<void> find_service_erased(std::type_index type) const;
  void set_service_erased(std::type_index type, std::shared_ptr<void> service);

  /// nullptr = serial context.
  std::shared_ptr<ThreadPool> pool_;
  struct ServiceRegistry;
  /// Never null: allocated by the constructor, shared by copies.
  std::shared_ptr<ServiceRegistry> services_;
};

}  // namespace omn::util
