#pragma once
// Subprocess: a spawned child process with piped stdin/stdout.
//
// The distributed sweep engine (omn::dist) talks to worker processes over
// a length-prefixed binary frame protocol on the workers' stdin/stdout;
// this class owns exactly that plumbing — fork/exec with two pipes,
// blocking exact-count reads and writes, liveness polling, kill, and
// reaping — and nothing protocol-specific.  stderr is inherited from the
// parent so worker diagnostics land in the parent's stderr.
//
// Failure model: a dead or misbehaving child surfaces as a short read
// (read_exact returns fewer bytes than asked) or a failed write
// (write_exact returns false) — never as a signal.  SIGPIPE is set to
// SIG_IGN process-wide on first spawn, so writing to a crashed child
// yields EPIPE instead of killing the parent.
//
// POSIX-only (fork/execvp/pipe).  On unsupported platforms spawn()
// throws std::runtime_error.

#include <cstddef>
#include <string>
#include <vector>

namespace omn::util {

class Subprocess {
 public:
  /// An empty handle (valid() == false); assign from spawn().
  Subprocess() = default;

  /// Spawns `argv` (argv[0] looked up via PATH when not a path) with
  /// stdin/stdout piped to this handle and stderr inherited.  Throws
  /// std::runtime_error when the pipes or the fork cannot be created;
  /// exec failure inside the child surfaces as exit status 127.
  static Subprocess spawn(const std::vector<std::string>& argv);

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Kills (if still running) and reaps the child.
  ~Subprocess();

  bool valid() const { return pid_ > 0; }
  long pid() const { return pid_; }

  /// Writes all `size` bytes to the child's stdin.  Returns false on any
  /// error (e.g. EPIPE after a child crash) — a partial write never goes
  /// unreported.
  bool write_exact(const void* data, std::size_t size);

  /// Reads until `size` bytes arrived from the child's stdout or the
  /// stream ended.  Returns the bytes actually read; anything short of
  /// `size` means EOF or error (child exit, kill, closed pipe).
  std::size_t read_exact(void* data, std::size_t size);

  /// Closes the child's stdin (a worker reading frames sees clean EOF).
  void close_stdin();

  /// SIGKILL.  Safe to call repeatedly or after exit; reap with wait().
  void kill();

  /// True while the child has not exited.  Non-blocking; once the child
  /// exited the status is captured for wait().
  bool running();

  /// Blocks until the child exits and reaps it (idempotent).  Returns the
  /// exit code for a normal exit, 128 + signal for a signalled death, or
  /// -1 for an invalid handle.
  int wait();

 private:
  void reset() noexcept;

  long pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  int exit_code_ = -1;
};

/// Absolute path of the running executable (/proc/self/exe on Linux),
/// or an empty string when the platform offers no way to recover it.
/// Self-spawning drivers (a bench re-invoking itself as `<exe> worker`)
/// use this instead of trusting argv[0], which may be a bare name.
std::string current_executable_path();

}  // namespace omn::util
