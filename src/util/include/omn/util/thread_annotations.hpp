#pragma once
// Clang thread-safety analysis annotations, and the annotated mutex
// primitives every shared-state class in the tree is required to use
// (enforced by tools/omn_lint.py: raw std::mutex / std::thread outside
// omn::util is a lint error).
//
// The annotations turn the locking discipline that today lives in header
// comments ("guarded by mutex_", "one scheduler thread per worker") into
// compiler-checked contracts: clang's -Wthread-safety pass rejects, at
// compile time, any access to an OMN_GUARDED_BY member without the named
// mutex held, any call to an OMN_REQUIRES function from an unlocked
// context, and any unbalanced acquire/release.  The clang CI legs build
// with -Wthread-safety -Werror; GCC (and any other compiler) sees plain
// std::mutex semantics with every macro expanding to nothing, so the
// annotations cost nothing where they cannot be checked.
//
// Usage pattern (see docs/ANALYSIS.md for the full ownership rules):
//
//   class Counter {
//    public:
//     void bump() {
//       LockGuard lock(mutex_);   // scoped acquire, analysis-visible
//       ++value_;
//     }
//    private:
//     Mutex mutex_;
//     int value_ OMN_GUARDED_BY(mutex_) = 0;
//   };
//
// Condition variables: use util::CondVar, whose wait(Mutex&) atomically
// releases and reacquires the mutex.  To the analysis the mutex is held
// across the call (held before, held after), so guarded state may be
// re-checked in a plain `while (!ready_) cv_.wait(mutex_);` loop without
// extra annotation.  Predicate-lambda waits are deliberately not offered:
// a lambda body is analyzed as its own function and would need its own
// REQUIRES annotation, which is easy to forget — the explicit while loop
// keeps the guarded reads inside the annotated scope.

#include <condition_variable>
#include <mutex>

// NOLINTBEGIN(bugprone-macro-parentheses) — attribute arguments are lock
// expressions (`mutex_`, `!mutex_`) and must be pasted unparenthesized.
#if defined(__clang__)
#define OMN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OMN_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define OMN_CAPABILITY(name) OMN_THREAD_ANNOTATION(capability(name))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define OMN_SCOPED_CAPABILITY OMN_THREAD_ANNOTATION(scoped_lockable)
/// Member may only be read or written with the named mutex held.
#define OMN_GUARDED_BY(mutex) OMN_THREAD_ANNOTATION(guarded_by(mutex))
/// Pointer member whose *pointee* is protected by the named mutex.
#define OMN_PT_GUARDED_BY(mutex) OMN_THREAD_ANNOTATION(pt_guarded_by(mutex))
/// Function requires the mutex held on entry (and still held on exit).
#define OMN_REQUIRES(...) \
  OMN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the mutex (must not already be held).
#define OMN_ACQUIRE(...) \
  OMN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the mutex (must be held on entry).
#define OMN_RELEASE(...) \
  OMN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the mutex iff it returns `result`.
#define OMN_TRY_ACQUIRE(result, ...) \
  OMN_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))
/// Caller must NOT hold the mutex (deadlock guard for self-locking APIs).
#define OMN_EXCLUDES(...) OMN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch; every use needs a justifying comment (see docs/ANALYSIS.md).
#define OMN_NO_THREAD_SAFETY_ANALYSIS \
  OMN_THREAD_ANNOTATION(no_thread_safety_analysis)
// NOLINTEND(bugprone-macro-parentheses)

namespace omn::util {

/// std::mutex with a capability annotation, so members can be declared
/// OMN_GUARDED_BY(mutex_) and the analysis can check the discipline.
/// Also BasicLockable, which is what CondVar::wait relies on.
class OMN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() OMN_ACQUIRE() { mutex_.lock(); }
  void unlock() OMN_RELEASE() { mutex_.unlock(); }
  bool try_lock() OMN_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock over a util::Mutex — std::lock_guard with the scoped-
/// capability annotation, so the analysis sees exactly which region of
/// the function holds the mutex.
class OMN_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) OMN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() OMN_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with util::Mutex.  wait() atomically
/// releases the mutex while blocked and reacquires it before returning,
/// exactly like std::condition_variable — the annotation-neutral
/// signature (held before, held after) is what lets guarded predicates
/// stay inside the caller's locked scope.  Spurious wakeups happen;
/// always wait in a condition loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mutex` (the analysis sees it held across the call).
  void wait(Mutex& mutex) { cv_.wait(mutex); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // condition_variable_any works with any BasicLockable, which is what
  // lets waiters block on the annotated Mutex directly instead of an
  // unannotated std::unique_lock.
  std::condition_variable_any cv_;
};

}  // namespace omn::util
