#pragma once
// Json: a minimal dependency-free JSON value + writer.
//
// The metrics layer (--metrics out.json on every bench and omn_design
// subcommand, the committed BENCH_*.json perf trajectories, the CI perf
// gate) needs machine-readable output, and the repo deliberately carries
// no third-party JSON library.  This is the smallest value type that
// serves that: a tree of null / bool / integer / double / string /
// array / object nodes with a deterministic serializer, so two runs with
// the same counters emit byte-identical files (objects preserve insertion
// order; doubles print with 17 significant digits and round-trip
// exactly).
//
// It is a WRITER only.  Nothing in-process ever needs to parse JSON: the
// perf gate diffs metrics in CI with python3's stdlib, and the tests pin
// the serialized bytes directly.
//
//   util::Json j = util::Json::object();
//   j.set("cells", report.cells.size());
//   j.set("wall_seconds", report.wall_seconds);
//   util::Json sweeps = util::Json::array();
//   sweeps.push(std::move(j));
//   os << sweeps.dump(2);   // pretty, 2-space indent; dump() = compact

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace omn::util {

class Json {
 public:
  /// Default-constructed value is JSON null.
  Json() = default;

  // Scalar constructors are implicit so set()/push() read naturally.
  // The integer spread covers every width without ambiguity: signed
  // types widen to int64, unsigned types to uint64 (size_t included).
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(double value) : kind_(Kind::kDouble), double_(value) {}
  Json(int value) : kind_(Kind::kInt), int_(value) {}
  Json(long value) : kind_(Kind::kInt), int_(value) {}
  Json(long long value) : kind_(Kind::kInt), int_(value) {}
  Json(unsigned value) : kind_(Kind::kUint), uint_(value) {}
  Json(unsigned long value) : kind_(Kind::kUint), uint_(value) {}
  Json(unsigned long long value) : kind_(Kind::kUint), uint_(value) {}
  Json(const char* value) : kind_(Kind::kString), string_(value) {}
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Sets `key` on an object (created in insertion order; setting an
  /// existing key overwrites in place, keeping the original position so
  /// the serialization stays deterministic).  Throws std::logic_error
  /// when this value is not an object.
  Json& set(std::string key, Json value);

  /// Appends to an array.  Throws std::logic_error on non-arrays.
  Json& push(Json value);

  std::size_t size() const { return children_.size(); }

  /// Serializes the tree.  indent == 0 emits the compact one-line form;
  /// indent > 0 pretty-prints with that many spaces per level (the
  /// committed BENCH_*.json files use 2 so diffs stay reviewable).
  /// Non-finite doubles serialize as null — JSON has no inf/nan.
  std::string dump(int indent = 0) const;

 private:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };

  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  /// Array elements (keys empty) or object members, in insertion order.
  std::vector<std::pair<std::string, Json>> children_;
};

/// `text` with JSON string escaping applied (quotes NOT included):
/// backslash, double quote, and control characters below 0x20 become
/// escape sequences; everything else passes through byte-for-byte.
std::string json_escape(std::string_view text);

}  // namespace omn::util
