#pragma once
// Atomic whole-file writes for shared directories.
//
// Every on-disk store that concurrent processes share (the LP cache's
// .lpsol entries, the distributed sweep's .ckpt shard checkpoints) uses
// the same protocol: serialize fully in memory, write to a uniquely
// named temp file beside the destination, then rename into place — so a
// reader never observes a partial entry and concurrent writers of the
// same path simply race to an identical result.  This header is that
// protocol's single home.

#include <string>
#include <string_view>

namespace omn::util {

/// A file-name suffix unique across threads and processes (clock, thread
/// id, and a process-local counter hashed to 16 hex chars).  Collisions
/// would corrupt a concurrent writer's temp file, so uniqueness is the
/// whole contract.
std::string unique_temp_suffix();

/// Writes `bytes` to `path` via `<path>.tmp-<suffix>` + atomic rename.
/// Returns false (leaving no temp file behind) on any failure — callers
/// that treat the store as advisory just ignore the result.  The parent
/// directory must already exist.
bool write_file_atomic(const std::string& path, std::string_view bytes);

}  // namespace omn::util
