#pragma once
// Strict numeric parsing for command-line flags and file tokens.
//
// strtoul and the std::sto* family are the wrong tools for validating
// user input: they skip leading whitespace, accept '+'/'-' prefixes
// (strtoul silently NEGATES a "-1"), stop at the first non-numeric byte
// instead of rejecting it, and signal overflow through errno — which
// every call site forgets to check, so `--workers 18446744073709551617`
// wraps instead of failing.  These helpers accept exactly the canonical
// spelling and nothing else.

#include <charconv>
#include <cstddef>
#include <limits>
#include <optional>
#include <string_view>
#include <system_error>

namespace omn::util {

/// Parses a non-negative decimal integer written as plain digits:
/// no whitespace, no sign, no hex/octal prefixes, no trailing bytes.
/// Returns nullopt for anything else — including values that do not fit
/// in a size_t (overflow is rejected, never wrapped).
inline std::optional<std::size_t> parse_count(std::string_view text) {
  if (text.empty()) return std::nullopt;
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

/// Parses a finite decimal floating-point number: an optional '-', then
/// digits with an optional '.' and optional exponent — the general format
/// of std::from_chars.  The whole token must be consumed.  Rejects
/// whitespace, '+' signs, hex floats, "inf"/"nan" (a capacity or
/// threshold of NaN is always a corrupt file, never a value), and any
/// trailing bytes.  Returns nullopt for anything rejected, so corrupt
/// input surfaces as a parse failure instead of a silently truncated
/// value (std::stod("0.5x") == 0.5 is exactly the bug class this bans).
inline std::optional<double> parse_double(std::string_view text) {
  std::string_view digits = text;
  if (!digits.empty() && digits.front() == '-') digits.remove_prefix(1);
  // from_chars itself accepts "inf"/"infinity"/"nan(...)"; requiring the
  // first character after the sign to be a digit or '.' filters those
  // while leaving every numeric spelling intact.
  if (digits.empty()) return std::nullopt;
  const char first = digits.front();
  if ((first < '0' || first > '9') && first != '.') return std::nullopt;
  double value = 0.0;
  const char* const begin = text.data();
  const char* const end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

}  // namespace omn::util
