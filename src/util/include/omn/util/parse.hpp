#pragma once
// Strict numeric parsing for command-line flags and file tokens.
//
// strtoul and the std::sto* family are the wrong tools for validating
// user input: they skip leading whitespace, accept '+'/'-' prefixes
// (strtoul silently NEGATES a "-1"), stop at the first non-numeric byte
// instead of rejecting it, and signal overflow through errno — which
// every call site forgets to check, so `--workers 18446744073709551617`
// wraps instead of failing.  These helpers accept exactly the canonical
// spelling and nothing else.

#include <cstddef>
#include <limits>
#include <optional>
#include <string_view>

namespace omn::util {

/// Parses a non-negative decimal integer written as plain digits:
/// no whitespace, no sign, no hex/octal prefixes, no trailing bytes.
/// Returns nullopt for anything else — including values that do not fit
/// in a size_t (overflow is rejected, never wrapped).
inline std::optional<std::size_t> parse_count(std::string_view text) {
  if (text.empty()) return std::nullopt;
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace omn::util
