#pragma once
// Reader for .omn command files (`omn_design run script.omn`): one
// subcommand per logical line, `#` comments, and trailing-backslash
// continuations.  Extracted from the CLI so the exact same tokenizer
// can be driven by the run subcommand, the tests, and the fuzz harness
// (fuzz/fuzz_script.cpp) — the reader consumes untrusted files and must
// never crash or throw on any byte sequence; bad input simply tokenizes
// to whatever the rules below say it tokenizes to, and the *dispatcher*
// rejects unknown commands.
//
// Rules (fixed by examples/pipeline.omn and the PR 6 format docs):
//  - a line ending in '\' is joined with the next line, the backslash
//    replaced by a single space; a trailing '\' on the last line is
//    dropped (no continuation to join);
//  - tokens are whitespace-separated (operator>> semantics);
//  - a token beginning with '#' ends the line's tokens (comment);
//  - lines with no tokens (blank or pure comment) yield no command.
//
// Note the join happens BEFORE comment scanning, so a '#' comment on a
// continued line swallows the continuation — exactly what the CLI
// always did, now pinned by test_script.

#include <istream>
#include <string>
#include <vector>

namespace omn::util {

/// One logical command line of a script.
struct ScriptCommand {
  /// The LAST physical line of the command (continuations included) —
  /// this is the number error messages and the `== file:N:` echo use.
  int line_number = 0;
  /// Whitespace-split tokens, comment stripped; never empty.
  std::vector<std::string> tokens;
  /// The joined logical line as written (comment included), for echoing.
  std::string text;
};

/// Reads every command from `is` (see the rules above).  Total function:
/// never throws on any input byte sequence.
std::vector<ScriptCommand> parse_script(std::istream& is);

}  // namespace omn::util
