#pragma once
// Always-on tracing core: hierarchical spans + process-wide counters.
//
// This is the recording half of omn::obs (the export half — Chrome
// trace-event JSON, the cross-process span codec — lives in src/obs,
// which depends on this header, never the other way around; the core
// sits in util so every layer down to ExecutionContext can record).
//
// Design:
//   - Spans/instants/counter samples are recorded into PER-THREAD
//     append-only buffers.  The hot path takes no lock: the owner
//     thread writes the event into a pre-grown chunk slot and
//     release-publishes a committed count; drain() acquires the count
//     and reads only committed slots.  A mutex exists per buffer but is
//     touched only on chunk growth (once per 1024 events) and at drain.
//   - Recording is compiled in but OFF by default.  Every macro guards
//     on Trace::enabled() (one relaxed atomic load), so an untraced run
//     pays a branch per site and nothing else.  Enabling tracing must
//     never change WORK — spans only observe; the perf gate runs with
//     --trace on to enforce exactly that.
//   - Determinism: every event carries a per-thread `tick` (incremented
//     at span begin AND end), giving a total order per thread that does
//     not depend on the clock.  The golden structural-trace test
//     serializes with tick-normalized timestamps so its bytes are
//     machine-independent; real exports use steady-clock microseconds
//     since the process trace epoch.
//   - Named counters (TraceCounter / OMN_COUNTER_ADD) are ALWAYS live,
//     independent of Trace::enabled(): a relaxed fetch_add on a cached
//     atomic.  They feed `omn_design serve`'s `stats` event and are
//     exported as final counter-track samples alongside the spans.
//
// Buffers are append-only for the life of the process: drain() hands
// out events recorded since the previous drain but never frees chunks,
// so a traced run's memory grows with its event count.  That is the
// deliberate trade for a lock-free hot path; tracing is an opt-in
// diagnostic mode, not a production default.

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace omn::util {

/// One recorded trace event.  `tick` orders events within a thread;
/// `micros` is steady-clock time since the process trace epoch.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kBegin = 0,    ///< span opened (Chrome "B")
    kEnd = 1,      ///< span closed (Chrome "E")
    kInstant = 2,  ///< point event, e.g. a basis refactorization ("i")
    kCounter = 3,  ///< counter-track sample ("C"), value in `value`
  };

  Kind kind = Kind::kBegin;
  std::string name;
  std::uint64_t tick = 0;
  std::uint64_t micros = 0;
  double value = 0.0;
};

/// All events drained from one thread, in tick order.
struct ThreadTrace {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

namespace detail {
/// Global enable flag; inline so Trace::enabled() is a single relaxed
/// load at every call site.
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

/// Static facade over the per-thread buffer registry.
class Trace {
 public:
  /// Whether recording is on.  Relaxed: a site that races an enable
  /// toggle merely records or skips one event.
  static bool enabled() {
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// Turns recording on/off process-wide.  Counters are unaffected
  /// (always live).
  static void set_enabled(bool on);

  /// Steady-clock microseconds since the process trace epoch (the first
  /// call into the trace layer).  Monotonic, never wall-clock.
  static std::uint64_t now_micros();

  /// Records a point event on the calling thread.  Callers normally go
  /// through OMN_TRACE_INSTANT, which guards on enabled() first.
  static void instant(std::string name);

  /// Records a counter-track sample on the calling thread (e.g. the
  /// pivot count at a refactorization boundary).
  static void sample(std::string name, double value);

  /// Moves out every event recorded since the previous drain, across
  /// all threads that ever recorded, in stable tid order.  Threads are
  /// assigned dense tids (0, 1, ...) in first-record order.  Safe to
  /// call while other threads record: only committed events are taken.
  static std::vector<ThreadTrace> drain();

 private:
  friend class TraceSpan;
  static void begin_span(std::string name);
  static void end_span(std::string name);
};

/// RAII span.  Construction records kBegin (when tracing is enabled),
/// destruction records the matching kEnd on the same thread — proper
/// nesting is structural, not a protocol the call sites can get wrong.
class TraceSpan {
 public:
  /// Static-name span: OMN_TRACE_SPAN("lp.solve").
  explicit TraceSpan(const char* name) {
    if (Trace::enabled()) open(name);
  }

  /// Lazy-name span for names with a dynamic part; the callable runs
  /// only when tracing is enabled, so the untraced path never builds
  /// the string: OMN_TRACE_SPAN([&] { return "cell " + ...; }).
  template <typename NameFn,
            typename = std::enable_if_t<std::is_invocable_r_v<
                std::string, NameFn&>>>
  explicit TraceSpan(NameFn&& name_fn) {
    if (Trace::enabled()) open(name_fn());
  }

  ~TraceSpan() {
    if (open_) Trace::end_span(std::move(name_));
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void open(std::string name) {
    open_ = true;
    name_ = name;
    Trace::begin_span(std::move(name));
  }

  bool open_ = false;
  std::string name_;
};

/// Handle to one named process-wide counter: a cached pointer into the
/// global registry, so add() is a single relaxed fetch_add.  Intended
/// use is a function-local static (see OMN_COUNTER_ADD); construction
/// takes the registry mutex once.
class TraceCounter {
 public:
  explicit TraceCounter(const std::string& name);

  void add(std::uint64_t delta) {
    cell_->fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t>* cell_;
};

/// Snapshot of every registered counter, sorted by name (deterministic
/// export order).  Values are cumulative since process start (or the
/// last counters_reset_for_tests()).
std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot();

/// Current value of one counter; 0 if it was never registered.
std::uint64_t counter_value(const std::string& name);

/// Zeroes every registered counter.  Test isolation only — production
/// counters are monotone by contract.
void counters_reset_for_tests();

}  // namespace omn::util

#define OMN_TRACE_CONCAT_INNER(a, b) a##b
#define OMN_TRACE_CONCAT(a, b) OMN_TRACE_CONCAT_INNER(a, b)

/// Opens a span for the rest of the enclosing scope.  Takes either a
/// string literal or a lazy callable returning std::string.
#define OMN_TRACE_SPAN(...)                                       \
  ::omn::util::TraceSpan OMN_TRACE_CONCAT(omn_trace_span_,        \
                                          __LINE__)(__VA_ARGS__)

/// Records a point event (when tracing is enabled).
#define OMN_TRACE_INSTANT(name)                                   \
  do {                                                            \
    if (::omn::util::Trace::enabled()) {                          \
      ::omn::util::Trace::instant(name);                          \
    }                                                             \
  } while (0)

/// Records a counter-track sample (when tracing is enabled).
#define OMN_TRACE_SAMPLE(name, sample_value)                      \
  do {                                                            \
    if (::omn::util::Trace::enabled()) {                          \
      ::omn::util::Trace::sample(                                 \
          name, static_cast<double>(sample_value));               \
    }                                                             \
  } while (0)

/// Bumps a live named counter (always on, ~one relaxed fetch_add; the
/// registry lookup happens once per site via the local static).
#define OMN_COUNTER_ADD(counter_name, delta)                      \
  do {                                                            \
    static ::omn::util::TraceCounter omn_trace_counter_handle(    \
        counter_name);                                            \
    omn_trace_counter_handle.add(delta);                          \
  } while (0)
