#pragma once
// A small fixed-size thread pool used for embarrassingly parallel work:
// Monte Carlo packet simulation batches and per-seed experiment sweeps.
//
// Design notes (following the hpc-parallel guides):
//  - workers are created once and joined in the destructor (RAII);
//  - parallel_for hands each worker a contiguous index range, so shared
//    inputs are read-only and each worker writes only to its own slot —
//    no locks on the hot path;
//  - the pool degrades gracefully to inline execution when hardware
//    concurrency is 1 (as on single-core CI machines).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace omn::util {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; tasks may not themselves block on the pool.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Splits [0, count) into roughly equal chunks, runs
  /// body(begin, end, worker_index) on the pool, and waits.
  /// worker_index is in [0, size()] — the calling thread participates and
  /// uses index size().
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t begin, std::size_t end,
                                             std::size_t worker)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace omn::util
