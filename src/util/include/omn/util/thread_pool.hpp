#pragma once
// A small fixed-size thread pool used for embarrassingly parallel work:
// Monte Carlo packet simulation batches, the designer's rounding attempts,
// and per-seed experiment sweeps (core::DesignSweep).  Library code
// normally reaches the pool through a util::ExecutionContext handle (one
// shared pool per process, dynamic chunking) rather than constructing
// pools directly.
//
// Design notes (following the hpc-parallel guides):
//  - workers are created once and joined in stop()/the destructor (RAII);
//  - parallel_for hands each worker a contiguous index range, so shared
//    inputs are read-only and each worker writes only to its own slot —
//    no locks on the hot path;
//  - every parallel_for call tracks completion through its own Batch, so
//    overlapping calls from multiple threads (or nested calls from inside
//    a task) never cross-talk: each waiter blocks only on its own chunks
//    and help-runs queued tasks while it waits, which also makes nested
//    parallel_for deadlock-free on a saturated pool;
//  - task exceptions are captured and rethrown to the waiter
//    (parallel_for / wait_idle / the future), never std::terminate;
//  - the pool degrades gracefully to inline execution when hardware
//    concurrency is 1 (as on single-core CI machines).

#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "omn/util/thread_annotations.hpp"

namespace omn::util {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const {
    LockGuard lock(mutex_);
    return workers_.size();
  }

  /// Enqueues a task; tasks may not themselves block on the pool (they may
  /// call parallel_for, which help-runs instead of blocking).  If the task
  /// throws, the first exception is rethrown by the next wait_idle().
  /// Throws std::runtime_error if the pool has been stopped.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any of them raised (if any).
  void wait_idle();

  /// Drains the queue, joins all workers, and rejects further submit()
  /// and parallel_for() calls.  Idempotent; called by the destructor.
  void stop();

  /// Splits [0, count) into `parts = min(count, size() + 1)` contiguous
  /// chunks and runs body(begin, end, chunk_index) with chunk_index in
  /// [0, parts) — so scratch arrays may be sized by the chunk count.  The
  /// calling thread runs the first chunk (as chunk_index parts - 1) and
  /// help-runs queued tasks while waiting, so concurrent and nested calls
  /// are safe.  Rethrows the first exception a chunk raised.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t begin, std::size_t end,
                                             std::size_t chunk)>& body);

  /// Schedules fn() on the pool and returns its future.  Exceptions thrown
  /// by fn propagate through future::get().
  template <typename Fn>
  auto async(Fn fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  /// parallel_map: schedules fn(i) for every i in [0, count) and returns
  /// one future per element, in index order.
  template <typename Fn>
  auto parallel_map(std::size_t count, Fn fn)
      -> std::vector<std::future<std::invoke_result_t<Fn&, std::size_t>>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<std::future<R>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      futures.push_back(async([fn, i]() mutable { return fn(i); }));
    }
    return futures;
  }

 private:
  /// Per-parallel_for completion state; lives on the waiter's stack.  Its
  /// fields are protected by the pool's mutex_ (a nested struct cannot
  /// name the enclosing instance's mutex in OMN_GUARDED_BY, but every
  /// access site also touches annotated members, so the analysis checks
  /// the same locked regions).
  struct Batch {
    std::size_t pending = 0;
    std::exception_ptr error;
  };

  void worker_loop();
  /// Runs one queued closure (queue must be non-empty).  Drops the mutex
  /// around the closure itself and reacquires it before returning; the
  /// closures are self-contained and never throw.
  void run_one() OMN_REQUIRES(mutex_);
  /// Blocks until batch.pending == 0, executing queued tasks while waiting.
  void help_until_done(Batch& batch);

  mutable Mutex mutex_;
  std::vector<std::thread> workers_ OMN_GUARDED_BY(mutex_);
  std::queue<std::function<void()>> queue_ OMN_GUARDED_BY(mutex_);
  CondVar cv_task_;   // workers: queue non-empty or stopping
  CondVar cv_idle_;   // wait_idle: in_flight_ == 0
  CondVar cv_batch_;  // batch waiters: done or stealable work
  std::size_t in_flight_ OMN_GUARDED_BY(mutex_) = 0;
  bool stopping_ OMN_GUARDED_BY(mutex_) = false;
  /// First exception from a plain submit() task.
  std::exception_ptr error_ OMN_GUARDED_BY(mutex_);
};

}  // namespace omn::util
