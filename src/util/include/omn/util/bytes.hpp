#pragma once
// Fixed-width little-endian byte (de)serialization.
//
// Every persisted or wire-crossing binary format in the codebase — LP
// cache entries, the distributed sweep frame protocol, shard checkpoints
// — must be byte-identical across platforms, compilers, and endianness,
// because files and pipes are shared between processes and potentially
// machines.  ByteWriter/ByteReader are the one place that encoding lives:
// every field goes through these explicit encoders, never through raw
// struct writes.
//
// ByteReader is defensive by construction: every accessor bounds-checks
// and returns false on truncation instead of reading past the buffer, and
// vec_size() lets callers validate an element count against the bytes
// actually remaining *before* allocating (a garbage count must fail the
// parse, not throw bad_alloc).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace omn::util {

/// Append-only little-endian encoder.  bytes() exposes the buffer for
/// hashing/checksumming mid-stream (e.g. a trailing checksum over all
/// preceding bytes).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int n = 0; n < 4; ++n) buf_.push_back(static_cast<char>(v >> (8 * n)));
  }
  void u64(std::uint64_t v) {
    for (int n = 0; n < 8; ++n) buf_.push_back(static_cast<char>(v >> (8 * n)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Exact bit pattern — round-tripping must preserve -0.0 and NaN bits.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed (u64) raw bytes.
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer.  Every
/// accessor returns false (leaving the value untouched on a short read)
/// instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = static_cast<std::uint8_t>(data_[pos_]);
    pos_ += 1;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int n = 0; n < 4; ++n) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(
               data_[pos_ + static_cast<std::size_t>(n)]))
           << (8 * n);
    }
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int n = 0; n < 8; ++n) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
               data_[pos_ + static_cast<std::size_t>(n)]))
           << (8 * n);
    }
    pos_ += 8;
    return true;
  }
  bool i32(std::int32_t& v) {
    std::uint32_t raw = 0;
    if (!u32(raw)) return false;
    v = static_cast<std::int32_t>(raw);
    return true;
  }
  bool i64(std::int64_t& v) {
    std::uint64_t raw = 0;
    if (!u64(raw)) return false;
    v = static_cast<std::int64_t>(raw);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t raw = 0;
    if (!u64(raw)) return false;
    v = std::bit_cast<double>(raw);
    return true;
  }
  bool boolean(bool& v) {
    std::uint8_t raw = 0;
    if (!u8(raw) || raw > 1) return false;  // anything but 0/1 is corruption
    v = raw != 0;
    return true;
  }
  /// Length-prefixed bytes written by ByteWriter::str.
  bool str(std::string& v) {
    std::uint64_t size = 0;
    if (!u64(size) || size > remaining()) return false;
    v.assign(data_.data() + pos_, static_cast<std::size_t>(size));
    pos_ += static_cast<std::size_t>(size);
    return true;
  }

  /// Reads an element count and validates it against the bytes remaining
  /// (each element occupying at least `element_size` bytes), so callers
  /// can size containers without trusting a corrupt count.
  bool vec_size(std::uint64_t& count, std::size_t element_size) {
    if (!u64(count)) return false;
    return element_size == 0 || count <= remaining() / element_size;
  }

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace omn::util
