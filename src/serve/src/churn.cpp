#include "omn/serve/churn.hpp"

#include <algorithm>

namespace omn::serve {

ChurnGenerator::ChurnGenerator(const net::OverlayInstance& base,
                               ChurnConfig config)
    : config_(config), rng_(config.seed) {
  num_colors_ = std::max(1, base.num_colors());
  for (int k = 0; k < base.num_sources(); ++k) {
    sources_.push_back(base.source(k).name);
  }
  for (int i = 0; i < base.num_reflectors(); ++i) {
    reflectors_.push_back(base.reflector(i).name);
  }
  for (int j = 0; j < base.num_sinks(); ++j) {
    sinks_.push_back(base.sink(j).name);
  }
  for (const net::SourceReflectorEdge& edge : base.sr_edges()) {
    live_edges_.push_back(EdgeRef{false, sources_[static_cast<std::size_t>(
                                             edge.source)],
                                  reflectors_[static_cast<std::size_t>(
                                      edge.reflector)]});
  }
  for (const net::ReflectorSinkEdge& edge : base.rd_edges()) {
    live_edges_.push_back(EdgeRef{true, reflectors_[static_cast<std::size_t>(
                                            edge.reflector)],
                                  sinks_[static_cast<std::size_t>(edge.sink)]});
  }
}

Event ChurnGenerator::next() {
  const double total = config_.fail_weight + config_.restore_weight +
                       config_.capacity_weight + config_.add_weight +
                       config_.remove_weight;
  double draw = rng_.uniform(0.0, total);
  if ((draw -= config_.fail_weight) < 0.0) return make_fail();
  if ((draw -= config_.restore_weight) < 0.0) return make_restore();
  if ((draw -= config_.capacity_weight) < 0.0) return make_capacity();
  if ((draw -= config_.add_weight) < 0.0) return make_add();
  return make_remove();
}

std::vector<Event> ChurnGenerator::take(std::size_t count) {
  std::vector<Event> events;
  events.reserve(count);
  for (std::size_t n = 0; n < count; ++n) events.push_back(next());
  return events;
}

Event ChurnGenerator::make_fail() {
  if (live_edges_.empty() || failed_edges_.size() >= config_.max_failed) {
    return make_capacity();
  }
  const std::size_t at = static_cast<std::size_t>(
      rng_.uniform_index(live_edges_.size()));
  const EdgeRef edge = live_edges_[at];
  live_edges_.erase(live_edges_.begin() + static_cast<std::ptrdiff_t>(at));
  failed_edges_.push_back(edge);
  Event event;
  event.kind = EventKind::kEdgeFail;
  event.rd = edge.rd;
  event.a = edge.a;
  event.b = edge.b;
  return event;
}

Event ChurnGenerator::make_restore() {
  if (failed_edges_.empty()) return make_fail();
  const std::size_t at = static_cast<std::size_t>(
      rng_.uniform_index(failed_edges_.size()));
  const EdgeRef edge = failed_edges_[at];
  failed_edges_.erase(failed_edges_.begin() + static_cast<std::ptrdiff_t>(at));
  live_edges_.push_back(edge);
  Event event;
  event.kind = EventKind::kEdgeRestore;
  event.rd = edge.rd;
  event.a = edge.a;
  event.b = edge.b;
  return event;
}

Event ChurnGenerator::make_capacity() {
  Event event;
  event.kind = EventKind::kCapacitySet;
  event.a = reflectors_[static_cast<std::size_t>(
      rng_.uniform_index(reflectors_.size()))];
  event.fanout = rng_.uniform(config_.fanout_min, config_.fanout_max);
  return event;
}

Event ChurnGenerator::make_add() {
  if (added_.size() >= config_.max_added) return make_capacity();
  Event event;
  event.kind = EventKind::kNodeAdd;
  event.a = "churn" + std::to_string(next_add_id_++);
  event.build_cost = rng_.uniform(config_.add_cost_min, config_.add_cost_max);
  event.fanout = rng_.uniform(config_.add_fanout_min, config_.add_fanout_max);
  event.color = static_cast<int>(
      rng_.uniform_index(static_cast<std::uint64_t>(num_colors_)));
  event.edge_cost =
      rng_.uniform(config_.add_edge_cost_min, config_.add_edge_cost_max);
  event.edge_loss =
      rng_.uniform(config_.add_edge_loss_min, config_.add_edge_loss_max);
  note_added_reflector(event.a);
  return event;
}

void ChurnGenerator::note_added_reflector(const std::string& name) {
  reflectors_.push_back(name);
  added_.push_back(name);
  for (const std::string& source : sources_) {
    live_edges_.push_back(EdgeRef{false, source, name});
  }
  for (const std::string& sink : sinks_) {
    live_edges_.push_back(EdgeRef{true, name, sink});
  }
}

Event ChurnGenerator::make_remove() {
  if (added_.empty()) return make_capacity();
  const std::size_t at =
      static_cast<std::size_t>(rng_.uniform_index(added_.size()));
  const std::string name = added_[at];
  added_.erase(added_.begin() + static_cast<std::ptrdiff_t>(at));
  reflectors_.erase(
      std::find(reflectors_.begin(), reflectors_.end(), name));
  const auto touches = [&name](const EdgeRef& edge) {
    return (edge.rd ? edge.a : edge.b) == name;
  };
  live_edges_.erase(
      std::remove_if(live_edges_.begin(), live_edges_.end(), touches),
      live_edges_.end());
  failed_edges_.erase(
      std::remove_if(failed_edges_.begin(), failed_edges_.end(), touches),
      failed_edges_.end());
  Event event;
  event.kind = EventKind::kNodeRemove;
  event.a = name;
  return event;
}

}  // namespace omn::serve
