#include "omn/serve/journal.hpp"

#include <fstream>
#include <sstream>

#include "omn/util/atomic_file.hpp"
#include "omn/util/bytes.hpp"

namespace omn::serve {

namespace {

constexpr std::uint32_t kHeaderMagic = 0x4A4E4D4Fu;  // "OMNJ"
constexpr std::uint32_t kRecordMagic = 0x544E5645u;  // "EVNT"

}  // namespace

util::Digest128 config_digest(const core::DesignerConfig& config) {
  util::Hasher hasher;
  hasher.str("omn-serve-config-v1");
  hasher.f64(config.c);
  hasher.u64(config.seed);
  hasher.i32(config.rounding_attempts);
  hasher.boolean(config.color_constraints);
  hasher.boolean(config.bandwidth_extension);
  hasher.boolean(config.rd_capacities);
  hasher.boolean(config.reflector_stream_capacities);
  hasher.boolean(config.prune_unused);
  hasher.boolean(config.cutting_plane);
  hasher.boolean(config.lp_warm_start);
  hasher.u32(static_cast<std::uint32_t>(config.lp_options.algorithm));
  hasher.u32(static_cast<std::uint32_t>(config.lp_options.pricing));
  return hasher.digest();
}

std::string Journal::encode_header(const JournalHeader& header) {
  util::ByteWriter writer;
  writer.u32(kHeaderMagic);
  writer.u32(kFormatVersion);
  writer.u64(header.config_digest.hi);
  writer.u64(header.config_digest.lo);
  writer.str(header.instance_text);
  writer.u64(header.failed.size());
  for (const core::FailedEdge& record : header.failed) {
    writer.boolean(record.rd);
    writer.str(record.a);
    writer.str(record.b);
    writer.f64(record.original_loss);
  }
  writer.u64(util::content_checksum(writer.bytes()));
  return writer.bytes();
}

std::string Journal::encode_record(std::uint64_t seq, const Event& event) {
  util::ByteWriter writer;
  writer.u32(kRecordMagic);
  writer.u64(seq);
  writer.str(event.to_line());
  writer.u64(util::content_checksum(writer.bytes()));
  return writer.bytes();
}

std::string Journal::encode(const JournalHeader& header,
                            const std::vector<Event>& events) {
  std::string bytes = encode_header(header);
  for (std::size_t n = 0; n < events.size(); ++n) {
    bytes += encode_record(n, events[n]);
  }
  return bytes;
}

JournalContents Journal::decode(std::string_view bytes) {
  util::ByteReader reader(bytes);
  JournalContents contents;

  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!reader.u32(magic) || magic != kHeaderMagic) {
    throw JournalError("journal: bad header magic");
  }
  if (!reader.u32(version) || version != kFormatVersion) {
    throw JournalError("journal: unsupported version " +
                       std::to_string(version));
  }
  JournalHeader& header = contents.header;
  std::uint64_t n_failed = 0;
  if (!reader.u64(header.config_digest.hi) ||
      !reader.u64(header.config_digest.lo) ||
      !reader.str(header.instance_text) ||
      !reader.vec_size(n_failed, 1 + 8 + 8 + 8)) {
    throw JournalError("journal: truncated header");
  }
  header.failed.reserve(static_cast<std::size_t>(n_failed));
  for (std::uint64_t n = 0; n < n_failed; ++n) {
    core::FailedEdge record;
    if (!reader.boolean(record.rd) || !reader.str(record.a) ||
        !reader.str(record.b) || !reader.f64(record.original_loss)) {
      throw JournalError("journal: truncated failed-edge record");
    }
    header.failed.push_back(std::move(record));
  }
  std::uint64_t stored = 0;
  const std::uint64_t computed =
      util::content_checksum(bytes.substr(0, reader.position()));
  if (!reader.u64(stored) || stored != computed) {
    throw JournalError("journal: header checksum mismatch");
  }

  // Records.  A read that runs out of bytes is a torn final append (the
  // tolerated crash artifact); everything else — wrong magic, checksum or
  // seq mismatch, an event line the parser rejects — is corruption.
  while (reader.remaining() > 0) {
    const std::size_t record_start = reader.position();
    std::uint64_t seq = 0;
    std::string line;
    if (!reader.u32(magic) || !reader.u64(seq) || !reader.str(line)) {
      contents.dropped_partial_tail = true;
      break;
    }
    if (magic != kRecordMagic) {
      throw JournalError("journal: bad record magic at byte " +
                         std::to_string(record_start));
    }
    const std::uint64_t record_checksum = util::content_checksum(
        bytes.substr(record_start, reader.position() - record_start));
    if (!reader.u64(stored)) {
      contents.dropped_partial_tail = true;
      break;
    }
    if (stored != record_checksum) {
      throw JournalError("journal: record " + std::to_string(seq) +
                         " checksum mismatch");
    }
    if (seq != contents.events.size()) {
      throw JournalError("journal: record seq " + std::to_string(seq) +
                         " out of order (expected " +
                         std::to_string(contents.events.size()) + ")");
    }
    std::string error;
    const std::optional<Event> event = parse_event(line, &error);
    if (!event.has_value() || !event->is_mutation()) {
      throw JournalError("journal: record " + std::to_string(seq) +
                         " holds an invalid event: " +
                         (error.empty() ? line : error));
    }
    contents.events.push_back(*event);
  }
  return contents;
}

JournalContents Journal::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JournalError("journal: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw JournalError("journal: cannot read " + path);
  }
  return decode(buffer.str());
}

Journal Journal::rewrite(const std::string& path, const JournalHeader& header,
                         const std::vector<Event>& events) {
  if (!util::write_file_atomic(path, encode(header, events))) {
    throw std::runtime_error("journal: cannot write " + path);
  }
  Journal journal;
  journal.path_ = path;
  journal.seq_ = events.size();
  journal.out_.open(path, std::ios::binary | std::ios::app);
  if (!journal.out_) {
    throw std::runtime_error("journal: cannot open " + path +
                             " for appending");
  }
  return journal;
}

void Journal::append(const Event& event) {
  if (!out_.is_open()) {
    throw std::runtime_error("journal: append on a closed journal");
  }
  const std::string bytes = encode_record(seq_, event);
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out_.flush();
  if (!out_.good()) {
    throw std::runtime_error("journal: append to " + path_ + " failed");
  }
  ++seq_;
}

}  // namespace omn::serve
