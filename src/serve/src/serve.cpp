#include "omn/serve/serve.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "omn/net/serialize.hpp"
#include "omn/util/stats.hpp"
#include "omn/util/table.hpp"
#include "omn/util/timer.hpp"
#include "omn/util/trace.hpp"

namespace omn::serve {

namespace {

double sum(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

}  // namespace

void apply_event(core::DesignState& state, const Event& event) {
  switch (event.kind) {
    case EventKind::kNodeAdd:
      state.add_reflector(event.a, event.build_cost, event.fanout,
                          event.color, event.edge_cost, event.edge_loss);
      return;
    case EventKind::kNodeRemove:
      state.remove_reflector(event.a);
      return;
    case EventKind::kEdgeFail:
      state.fail_edge(event.rd, event.a, event.b);
      return;
    case EventKind::kEdgeRestore:
      state.restore_edge(event.rd, event.a, event.b);
      return;
    case EventKind::kCapacitySet:
      state.set_fanout(event.a, event.fanout);
      return;
    case EventKind::kQuery:
    case EventKind::kStats:
    case EventKind::kSnapshot:
    case EventKind::kQuit:
      break;
  }
  throw std::logic_error("apply_event: '" + to_string(event.kind) +
                         "' is not a mutation");
}

ServeSession::ServeSession(net::OverlayInstance base, ServeOptions options,
                           util::ExecutionContext context)
    : ServeSession(std::move(base), std::move(options), std::move(context),
                   /*fresh_journal=*/true) {}

ServeSession::ServeSession(net::OverlayInstance base, ServeOptions options,
                           util::ExecutionContext context, bool fresh_journal)
    : options_(std::move(options)),
      state_(std::move(base), options_.config, std::move(context)) {
  const util::Timer redesign_timer;
  const core::DesignResult* result_ptr = nullptr;
  {
    OMN_TRACE_SPAN("serve.initial_design");
    result_ptr = &state_.redesign();
  }
  const core::DesignResult& result = *result_ptr;
  ++stats_.redesigns;
  OMN_COUNTER_ADD("serve.redesigns", 1);
  stats_.redesign_seconds.push_back(redesign_timer.seconds());
  if (result.lp_cache_hit) {
    ++stats_.lp_cache_hits;
  } else {
    stats_.lp_iterations += static_cast<std::size_t>(result.lp_iterations);
    stats_.lp_phase1_iterations +=
        static_cast<std::size_t>(result.lp_phase1_iterations);
    stats_.lp_refactorizations +=
        static_cast<std::size_t>(result.lp_refactorizations);
  }
  if (result.lp_warm_start) ++stats_.lp_warm_start_hits;
  if (fresh_journal && !options_.journal_path.empty()) {
    journal_ = Journal::rewrite(options_.journal_path, current_header(), {});
  }
}

ServeSession ServeSession::resume(const ServeOptions& options,
                                  util::ExecutionContext context) {
  const JournalContents contents = Journal::load(options.journal_path);
  if (contents.header.config_digest != config_digest(options.config)) {
    throw JournalError(
        "journal: designer config mismatch (the journal was written under "
        "different design knobs; replaying it would converge to a different "
        "design)");
  }
  net::OverlayInstance base = net::from_text(contents.header.instance_text);
  ServeSession session(std::move(base), options, std::move(context),
                       /*fresh_journal=*/false);
  session.state_.adopt_failed_edges(contents.header.failed);
  for (const Event& event : contents.events) {
    // A journaled event applied cleanly once, to this same state sequence,
    // so it applies cleanly again; apply_and_redesign keeps the warm-start
    // trajectory identical to the killed session's.
    (void)session.apply_and_redesign(event);
    --session.stats_.events;  // re-applied, not new
    ++session.stats_.replayed;
  }
  // Reopen for appending: rewriting the decoded prefix drops any torn
  // final record, so the on-disk bytes are canonical again.
  session.journal_ =
      Journal::rewrite(options.journal_path, contents.header, contents.events);
  return session;
}

JournalHeader ServeSession::current_header() const {
  JournalHeader header;
  header.config_digest = config_digest(options_.config);
  header.instance_text = net::to_text(state_.instance());
  header.failed = state_.failed_edges();
  return header;
}

const core::DesignResult& ServeSession::apply_and_redesign(
    const Event& event) {
  apply_event(state_, event);
  ++stats_.events;
  OMN_COUNTER_ADD("serve.events", 1);
  const util::Timer redesign_timer;
  const core::DesignResult* result_ptr = nullptr;
  {
    OMN_TRACE_SPAN([&] { return "serve.redesign " + to_string(event.kind); });
    result_ptr = &state_.redesign();
  }
  const core::DesignResult& result = *result_ptr;
  ++stats_.redesigns;
  OMN_COUNTER_ADD("serve.redesigns", 1);
  stats_.redesign_seconds.push_back(redesign_timer.seconds());
  if (result.lp_cache_hit) {
    ++stats_.lp_cache_hits;
  } else {
    stats_.lp_iterations += static_cast<std::size_t>(result.lp_iterations);
    stats_.lp_phase1_iterations +=
        static_cast<std::size_t>(result.lp_phase1_iterations);
    stats_.lp_refactorizations +=
        static_cast<std::size_t>(result.lp_refactorizations);
  }
  if (result.lp_warm_start) ++stats_.lp_warm_start_hits;
  return result;
}

std::string ServeSession::ack_mutation(const Event& event,
                                       const core::DesignResult& result,
                                       double wall_seconds) const {
  const int pivots_worked = result.lp_cache_hit ? 0 : result.lp_iterations;
  return "ok " + std::to_string(seq()) + " " + to_string(event.kind) +
         " status=" + core::to_string(result.status) +
         " cost=" + util::format_double(result.evaluation.total_cost, 2) +
         " pivots=" + std::to_string(pivots_worked) +
         " warm=" + (result.lp_warm_start ? "1" : "0") +
         " cache=" + (result.lp_cache_hit ? "1" : "0") + " wall_us=" +
         std::to_string(static_cast<long long>(1e6 * wall_seconds));
}

std::string ServeSession::stats_line() const {
  // Session tallies come from stats_; cache traffic comes from the live
  // process-wide counter registry (the LpCache bumps those), so a shared
  // cache's disk activity is visible even when this session caused none.
  return "ok " + std::to_string(seq()) + " stats events=" +
         std::to_string(stats_.events) +
         " redesigns=" + std::to_string(stats_.redesigns) +
         " replayed=" + std::to_string(stats_.replayed) +
         " pivots=" + std::to_string(stats_.lp_iterations) +
         " refactorizations=" + std::to_string(stats_.lp_refactorizations) +
         " warm_hits=" + std::to_string(stats_.lp_warm_start_hits) +
         " cache_hits=" + std::to_string(util::counter_value("cache.hits")) +
         " cache_misses=" +
         std::to_string(util::counter_value("cache.misses")) +
         " cache_disk_reads=" +
         std::to_string(util::counter_value("cache.disk_reads")) +
         " cache_disk_writes=" +
         std::to_string(util::counter_value("cache.disk_writes")) +
         " journal_seq=" + std::to_string(seq()) + " uptime_us=" +
         std::to_string(static_cast<long long>(uptime_.microseconds()));
}

std::string ServeSession::ready_line() const {
  const core::DesignResult& result = state_.last();
  return "ok 0 ready status=" + core::to_string(result.status) +
         " cost=" + util::format_double(result.evaluation.total_cost, 2) +
         " reflectors=" + std::to_string(state_.instance().num_reflectors()) +
         " replayed=" + std::to_string(stats_.replayed) +
         " digest=" + state_.design_digest().hex();
}

std::string ServeSession::handle_line(const std::string& line) {
  std::string error;
  const std::optional<Event> event = parse_event(line, &error);
  if (!event.has_value()) {
    if (error.empty()) return "";  // blank or comment: no response
    ++stats_.parse_errors;
    return "err parse: " + error;
  }
  if (event->is_mutation()) {
    const util::Timer event_timer;
    const core::DesignResult* result = nullptr;
    try {
      result = &apply_and_redesign(*event);
    } catch (const std::invalid_argument& ex) {
      ++stats_.apply_errors;
      return std::string("err apply: ") + ex.what();
    }
    // Journal AFTER a clean apply (rejected events must not poison the
    // replay) and BEFORE the ack (an acknowledged event must survive a
    // SIGKILL).  append() flushes; its exceptions propagate — past a
    // journal write failure the ack would lie.
    if (journal_.has_value()) journal_->append(*event);
    return ack_mutation(*event, *result, event_timer.seconds());
  }
  switch (event->kind) {
    case EventKind::kQuery: {
      const core::DesignResult& result = state_.last();
      return "ok " + std::to_string(seq()) +
             " design status=" + core::to_string(result.status) +
             " cost=" + util::format_double(result.evaluation.total_cost, 2) +
             " reflectors=" +
             std::to_string(result.evaluation.reflectors_built) +
             " digest=" + state_.design_digest().hex();
    }
    case EventKind::kStats:
      return stats_line();
    case EventKind::kSnapshot: {
      ++stats_.snapshots;
      if (journal_.has_value()) {
        journal_ =
            Journal::rewrite(options_.journal_path, current_header(), {});
      }
      return "ok " + std::to_string(seq()) + " snapshot journal=" +
             (journal_.has_value() ? options_.journal_path : "none");
    }
    case EventKind::kQuit:
      done_ = true;
      write_metrics();
      return "ok " + std::to_string(seq()) + " bye";
    default:
      break;
  }
  return "err parse: unhandled event";  // unreachable
}

int ServeSession::run(std::istream& in, std::ostream& out) {
  out << ready_line() << "\n" << std::flush;
  for (std::string line; !done_ && std::getline(in, line);) {
    const std::string response = handle_line(line);
    if (!response.empty()) out << response << "\n" << std::flush;
  }
  if (!done_) {
    // EOF without quit: a clean shutdown, metrics included.
    done_ = true;
    write_metrics();
  }
  return 0;
}

util::Json ServeSession::metrics_json() const {
  util::Json record = util::Json::object();
  record.set("label", "serve");
  record.set("events", stats_.events);
  record.set("redesigns", stats_.redesigns);
  record.set("replayed", stats_.replayed);
  record.set("parse_errors", stats_.parse_errors);
  record.set("apply_errors", stats_.apply_errors);
  record.set("snapshots", stats_.snapshots);
  record.set("lp_iterations", stats_.lp_iterations);
  record.set("lp_phase1_iterations", stats_.lp_phase1_iterations);
  record.set("lp_refactorizations", stats_.lp_refactorizations);
  record.set("lp_warm_start_hits", stats_.lp_warm_start_hits);
  record.set("lp_cache_hits", stats_.lp_cache_hits);
  record.set("redesign_wall_p50",
             util::percentile(stats_.redesign_seconds, 0.50));
  record.set("redesign_wall_p99",
             util::percentile(stats_.redesign_seconds, 0.99));
  record.set("wall_seconds", sum(stats_.redesign_seconds));

  util::Json envelope = util::Json::object();
  envelope.set("schema", "omn-metrics-v1");
  envelope.set("tool", "omn_design serve");
  envelope.set("lp_cache", std::string());
  util::Json sweeps = util::Json::array();
  sweeps.push(std::move(record));
  envelope.set("sweeps", std::move(sweeps));
  return envelope;
}

void ServeSession::write_metrics() const {
  if (options_.metrics_path.empty()) return;
  std::ofstream out(options_.metrics_path, std::ios::trunc);
  out << metrics_json().dump(2) << "\n";
  if (!out.good()) {
    throw std::runtime_error("serve: cannot write --metrics file " +
                             options_.metrics_path);
  }
}

}  // namespace omn::serve
