#include "omn/serve/event.hpp"

#include <charconv>
#include <sstream>
#include <vector>

#include "omn/util/parse.hpp"

namespace omn::serve {

namespace {

/// Shortest exact decimal form (std::to_chars with no precision):
/// util::parse_double(format(v)) == v bit-for-bit for every finite v,
/// which is what makes canonical event lines (and hence the journal
/// encoding) a lossless round trip.
std::string format_value(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  for (std::string token; in >> token;) tokens.push_back(std::move(token));
  return tokens;
}

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool parse_layer(const std::string& token, bool& rd, std::string* error) {
  if (token == "sr") {
    rd = false;
    return true;
  }
  if (token == "rd") {
    rd = true;
    return true;
  }
  return set_error(error, "bad layer '" + token + "' (expected 'sr' or 'rd')");
}

bool parse_value(const std::string& token, const char* what, double& out,
                 std::string* error) {
  const std::optional<double> parsed = omn::util::parse_double(token);
  if (!parsed.has_value()) {
    return set_error(error, std::string("bad ") + what + " '" + token + "'");
  }
  out = *parsed;
  return true;
}

}  // namespace

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kNodeAdd: return "node-add";
    case EventKind::kNodeRemove: return "node-remove";
    case EventKind::kEdgeFail: return "edge-fail";
    case EventKind::kEdgeRestore: return "edge-restore";
    case EventKind::kCapacitySet: return "capacity-set";
    case EventKind::kQuery: return "query";
    case EventKind::kStats: return "stats";
    case EventKind::kSnapshot: return "snapshot";
    case EventKind::kQuit: return "quit";
  }
  return "?";
}

bool Event::is_mutation() const {
  switch (kind) {
    case EventKind::kNodeAdd:
    case EventKind::kNodeRemove:
    case EventKind::kEdgeFail:
    case EventKind::kEdgeRestore:
    case EventKind::kCapacitySet:
      return true;
    case EventKind::kQuery:
    case EventKind::kStats:
    case EventKind::kSnapshot:
    case EventKind::kQuit:
      return false;
  }
  return false;
}

std::string Event::to_line() const {
  switch (kind) {
    case EventKind::kNodeAdd:
      return "node-add " + a + " " + format_value(build_cost) + " " +
             format_value(fanout) + " " + std::to_string(color) + " " +
             format_value(edge_cost) + " " + format_value(edge_loss);
    case EventKind::kNodeRemove:
      return "node-remove " + a;
    case EventKind::kEdgeFail:
      return std::string("edge-fail ") + (rd ? "rd " : "sr ") + a + " " + b;
    case EventKind::kEdgeRestore:
      return std::string("edge-restore ") + (rd ? "rd " : "sr ") + a + " " + b;
    case EventKind::kCapacitySet:
      return "capacity-set " + a + " " + format_value(fanout);
    case EventKind::kQuery:
      return "query";
    case EventKind::kStats:
      return "stats";
    case EventKind::kSnapshot:
      return "snapshot";
    case EventKind::kQuit:
      return "quit";
  }
  return "?";
}

std::optional<Event> parse_event(const std::string& line,
                                 std::string* error) {
  if (error != nullptr) error->clear();
  const std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty() || tokens[0].front() == '#') return std::nullopt;

  const auto want = [&](std::size_t count) {
    if (tokens.size() == count) return true;
    set_error(error, tokens[0] + " expects " + std::to_string(count - 1) +
                         " argument(s), got " +
                         std::to_string(tokens.size() - 1));
    return false;
  };

  Event event;
  if (tokens[0] == "node-add") {
    event.kind = EventKind::kNodeAdd;
    if (!want(7)) return std::nullopt;
    event.a = tokens[1];
    if (!parse_value(tokens[2], "build_cost", event.build_cost, error) ||
        !parse_value(tokens[3], "fanout", event.fanout, error) ||
        !parse_value(tokens[5], "edge_cost", event.edge_cost, error) ||
        !parse_value(tokens[6], "edge_loss", event.edge_loss, error)) {
      return std::nullopt;
    }
    const std::optional<std::size_t> color = omn::util::parse_count(tokens[4]);
    if (!color.has_value() || *color > 1000000) {
      set_error(error, "bad color '" + tokens[4] + "'");
      return std::nullopt;
    }
    event.color = static_cast<int>(*color);
    if (!(event.build_cost >= 0.0)) {
      set_error(error, "build_cost must be non-negative");
      return std::nullopt;
    }
    if (!(event.fanout > 0.0)) {
      set_error(error, "fanout must be positive");
      return std::nullopt;
    }
    if (!(event.edge_cost >= 0.0)) {
      set_error(error, "edge_cost must be non-negative");
      return std::nullopt;
    }
    if (!(event.edge_loss >= 0.0 && event.edge_loss < 1.0)) {
      set_error(error, "edge_loss must lie in [0, 1)");
      return std::nullopt;
    }
    return event;
  }
  if (tokens[0] == "node-remove") {
    event.kind = EventKind::kNodeRemove;
    if (!want(2)) return std::nullopt;
    event.a = tokens[1];
    return event;
  }
  if (tokens[0] == "edge-fail" || tokens[0] == "edge-restore") {
    event.kind = tokens[0] == "edge-fail" ? EventKind::kEdgeFail
                                          : EventKind::kEdgeRestore;
    if (!want(4)) return std::nullopt;
    if (!parse_layer(tokens[1], event.rd, error)) return std::nullopt;
    event.a = tokens[2];
    event.b = tokens[3];
    return event;
  }
  if (tokens[0] == "capacity-set") {
    event.kind = EventKind::kCapacitySet;
    if (!want(3)) return std::nullopt;
    event.a = tokens[1];
    if (!parse_value(tokens[2], "fanout", event.fanout, error)) {
      return std::nullopt;
    }
    if (!(event.fanout > 0.0)) {
      set_error(error, "fanout must be positive");
      return std::nullopt;
    }
    return event;
  }
  if (tokens[0] == "query" || tokens[0] == "stats" ||
      tokens[0] == "snapshot" || tokens[0] == "quit") {
    event.kind = tokens[0] == "query"      ? EventKind::kQuery
                 : tokens[0] == "stats"    ? EventKind::kStats
                 : tokens[0] == "snapshot" ? EventKind::kSnapshot
                                           : EventKind::kQuit;
    if (!want(1)) return std::nullopt;
    return event;
  }
  set_error(error, "unknown event '" + tokens[0] + "'");
  return std::nullopt;
}

}  // namespace omn::serve
