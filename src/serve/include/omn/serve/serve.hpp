#pragma once
// ServeSession: the long-lived incremental-redesign daemon behind
// `omn_design serve`.
//
// A session owns a core::DesignState (instance + warm solver state) and
// an optional Journal, and speaks the line protocol of
// omn/serve/event.hpp on an istream/ostream pair (stdin/stdout in the
// CLI).  Lifecycle of one mutation event:
//
//   parse -> apply to the DesignState -> journal append + flush
//         -> redesign (warm where the config allows) -> "ok ..." ack
//
// Apply precedes journal so only successfully applied events are ever
// recorded (a rejected event must not poison replay); journal precedes
// the ack so an acknowledged event survives SIGKILL.  A crash between
// apply and the ack loses at most that unacknowledged event — the
// consistency model a line client expects.
//
// Responses are single lines:
//   ok <seq> <kind> status=<s> cost=<c> pivots=<p> warm=<0|1>
//      cache=<0|1> wall_us=<n>          (mutations)
//   ok <seq> design status=<s> cost=<c> reflectors=<n> digest=<hex32>
//                                        (query)
//   ok <seq> stats events=<n> redesigns=<n> replayed=<n> pivots=<n>
//      refactorizations=<n> warm_hits=<n> cache_hits=<n> cache_misses=<n>
//      cache_disk_reads=<n> cache_disk_writes=<n> journal_seq=<seq>
//      uptime_us=<n>                      (stats — live counters, no
//                                         state change, never journaled)
//   ok <seq> snapshot journal=<path|none>
//   ok <seq> bye                         (quit; EOF behaves like quit)
//   err parse: <why> | err apply: <why>  (the session keeps running)
// run() additionally opens with `ok 0 ready ... replayed=<k>
// digest=<hex32>` so a supervisor can see a resumed session converge
// before sending anything.
//
// Threading: one session is confined to one thread (the redesigns fan
// out on the session's ExecutionContext; a shared LpCache service may be
// used concurrently by other threads).

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "omn/core/design_state.hpp"
#include "omn/serve/event.hpp"
#include "omn/serve/journal.hpp"
#include "omn/util/json.hpp"
#include "omn/util/timer.hpp"

namespace omn::serve {

/// Applies one mutation event to a DesignState (throws
/// std::invalid_argument on a protocol violation, std::logic_error for
/// non-mutations).  Shared by ServeSession, the churn bench, and the
/// differential tests so "what an event means" has exactly one home.
void apply_event(core::DesignState& state, const Event& event);

struct ServeOptions {
  core::DesignerConfig config;
  /// Journal file ("" = run without crash durability).
  std::string journal_path;
  /// Metrics JSON file written at quit/EOF ("" = none).
  std::string metrics_path;
};

struct ServeStats {
  std::size_t events = 0;        ///< mutations accepted this session
  std::size_t redesigns = 0;     ///< designer runs (initial + per event)
  std::size_t replayed = 0;      ///< journal events re-applied on resume
  std::size_t parse_errors = 0;
  std::size_t apply_errors = 0;
  std::size_t snapshots = 0;
  // Work counters, summed over redesigns; LP cache hits contribute zero
  // pivots (no simplex ran), mirroring the DesignSweep convention.
  std::size_t lp_iterations = 0;
  std::size_t lp_phase1_iterations = 0;
  std::size_t lp_refactorizations = 0;
  std::size_t lp_warm_start_hits = 0;
  std::size_t lp_cache_hits = 0;
  /// Wall seconds of each redesign, in order (p50/p99 in the metrics).
  std::vector<double> redesign_seconds;
};

class ServeSession {
 public:
  /// Fresh session over `base`: runs the initial design and — when
  /// options.journal_path is set — writes a new journal (overwriting any
  /// existing file).
  ServeSession(net::OverlayInstance base, ServeOptions options,
               util::ExecutionContext context);

  /// Resumes from options.journal_path: decodes the journal (JournalError
  /// on corruption or a DesignerConfig digest mismatch), rebuilds the
  /// snapshot base, re-applies every journaled event — redesigning after
  /// each, so the warm-start trajectory matches the killed session's —
  /// and reopens the journal for appending (torn tail rewritten away).
  static ServeSession resume(const ServeOptions& options,
                             util::ExecutionContext context);

  /// Handles one input line; returns the response line ("" for blank or
  /// comment input, which gets no response).  Protocol errors come back
  /// as `err ...` responses; journal I/O failures throw (state and
  /// journal could diverge past that point, so the session must die).
  std::string handle_line(const std::string& line);

  /// True once quit was handled; handle_line must not be called again.
  bool done() const { return done_; }

  /// The `ok 0 ready ...` line run() opens with.
  std::string ready_line() const;

  /// Drives the full loop: ready line, then one handle_line per input
  /// line until quit or EOF (EOF behaves like quit).  Returns 0.
  int run(std::istream& in, std::ostream& out);

  core::DesignState& state() { return state_; }
  const core::DesignState& state() const { return state_; }
  const ServeStats& stats() const { return stats_; }

  /// The "omn-metrics-v1" envelope for this session (events, redesigns,
  /// pivot totals, warm/cache hits, p50/p99 redesign wall).
  util::Json metrics_json() const;
  /// Writes metrics_json() to options.metrics_path (no-op when unset).
  void write_metrics() const;

 private:
  ServeSession(net::OverlayInstance base, ServeOptions options,
               util::ExecutionContext context, bool fresh_journal);
  /// The journal header describing the CURRENT state (compaction base).
  JournalHeader current_header() const;
  /// The `ok <seq> stats ...` live-counter response.
  std::string stats_line() const;
  /// Applies + redesigns one mutation, updating the work counters.
  const core::DesignResult& apply_and_redesign(const Event& event);
  std::string ack_mutation(const Event& event,
                           const core::DesignResult& result,
                           double wall_seconds) const;
  std::uint64_t seq() const { return stats_.replayed + stats_.events; }

  ServeOptions options_;
  core::DesignState state_;
  std::optional<Journal> journal_;
  ServeStats stats_;
  /// Session uptime reported by the `stats` event (starts at
  /// construction, so a resumed session's uptime includes its replay).
  util::Timer uptime_;
  bool done_ = false;
};

}  // namespace omn::serve
