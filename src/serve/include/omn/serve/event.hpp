#pragma once
// The serve event protocol: one line-oriented event per network change.
//
// Grammar (whitespace-separated tokens, one event per line; blank lines
// and lines starting with `#` are not events):
//
//   node-add <name> <build_cost> <fanout> <color> <edge_cost> <edge_loss>
//   node-remove <name>
//   edge-fail sr <source> <reflector>
//   edge-fail rd <reflector> <sink>
//   edge-restore sr <source> <reflector>
//   edge-restore rd <reflector> <sink>
//   capacity-set <reflector> <fanout>
//   query
//   stats
//   snapshot
//   quit
//
// Numbers go through the strict util parsers (parse_count for the color,
// parse_double for the rest), so `1e3` is fine but `4O`, `-0x1`, `nan`,
// and trailing garbage are parse errors — the daemon rejects the line and
// keeps running; nothing is ever half-applied.  Ranges are validated at
// parse time (fanout > 0, loss in [0, 1), color >= 0, costs >= 0) so a
// journaled event can always be re-applied.
//
// to_line() renders the canonical text form: parse(to_line(e)) == e for
// every valid event, and doubles round-trip exactly (shortest-exact
// formatting).  The journal stores canonical lines, which is what makes
// journal encoding deterministic and the golden-file test possible.

#include <optional>
#include <string>

namespace omn::serve {

enum class EventKind {
  kNodeAdd,
  kNodeRemove,
  kEdgeFail,
  kEdgeRestore,
  kCapacitySet,
  kQuery,
  kStats,  ///< live session/process counters, no state change
  kSnapshot,
  kQuit,
};

std::string to_string(EventKind kind);

struct Event {
  EventKind kind = EventKind::kQuery;

  /// node-add / node-remove / capacity-set: the reflector name.
  /// edge-fail / edge-restore: endpoint a (source for sr, reflector for
  /// rd); `b` holds the other endpoint.
  std::string a;
  std::string b;

  /// edge-fail / edge-restore: true selects the reflector->sink layer.
  bool rd = false;

  // node-add parameters (capacity-set reuses `fanout`).
  double build_cost = 0.0;
  double fanout = 0.0;
  int color = 0;
  double edge_cost = 0.0;
  double edge_loss = 0.0;

  bool operator==(const Event&) const = default;

  /// True for events that mutate the instance (everything but
  /// query/stats/snapshot/quit) — exactly the events a journal records.
  bool is_mutation() const;

  /// Canonical line form (no trailing newline).
  std::string to_line() const;
};

/// Parses one event line.  Returns nullopt and sets `*error` (when given)
/// on any violation: unknown kind, wrong token count, malformed or
/// out-of-range numbers, or a name that could not round-trip (names must
/// be non-empty and whitespace-free by tokenization).  Blank/comment
/// lines are NOT events and also return nullopt (with an empty error).
std::optional<Event> parse_event(const std::string& line,
                                 std::string* error = nullptr);

}  // namespace omn::serve
