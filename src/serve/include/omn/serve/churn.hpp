#pragma once
// ChurnGenerator: deterministic, seeded streams of valid mutation events
// against an evolving instance — the workload driver behind the serve
// differential tests (tests/test_serve.cpp) and the E15 churn bench.
//
// The generator keeps its own lightweight model of the instance (names,
// live/failed edges, which reflectors it added) and only ever emits
// events the serve protocol will accept on the state it produced so far:
// it fails only live edges, restores only failed ones, and removes only
// reflectors it added itself (base reflectors stay, so topologies never
// churn themselves into infeasibility).  Each emitted event is applied to
// the internal model, so next() is a pure function of (base instance,
// config, call count) — two generators with equal inputs produce equal
// streams, which is what makes the differential suites and the committed
// E15 counters reproducible.

#include <cstdint>
#include <string>
#include <vector>

#include "omn/net/instance.hpp"
#include "omn/serve/event.hpp"
#include "omn/util/rng.hpp"

namespace omn::serve {

struct ChurnConfig {
  std::uint64_t seed = 1;

  // Event mix (relative weights; normalized internally).  Categories that
  // are impossible in the current model state (nothing failed yet,
  // nothing left to remove) fall through to edge-fail.
  double fail_weight = 0.35;
  double restore_weight = 0.25;
  double capacity_weight = 0.25;
  double add_weight = 0.08;
  double remove_weight = 0.07;

  /// Cap on concurrently failed edges (past it, fail falls through to
  /// capacity-set) so long streams cannot black out the network.
  std::size_t max_failed = 6;
  /// Cap on generator-added reflectors alive at once.
  std::size_t max_added = 4;

  // node-add parameter ranges.
  double add_cost_min = 10.0;
  double add_cost_max = 60.0;
  double add_fanout_min = 6.0;
  double add_fanout_max = 20.0;
  double add_edge_cost_min = 0.5;
  double add_edge_cost_max = 3.0;
  double add_edge_loss_min = 0.002;
  double add_edge_loss_max = 0.05;

  // capacity-set fanout range.
  double fanout_min = 4.0;
  double fanout_max = 24.0;
};

class ChurnGenerator {
 public:
  ChurnGenerator(const net::OverlayInstance& base, ChurnConfig config);

  /// The next mutation event (always valid against the state all prior
  /// events produced).
  Event next();

  /// Convenience: the next `count` events.
  std::vector<Event> take(std::size_t count);

 private:
  struct EdgeRef {
    bool rd = false;
    std::string a;
    std::string b;
  };

  Event make_fail();
  Event make_restore();
  Event make_capacity();
  Event make_add();
  Event make_remove();
  void note_added_reflector(const std::string& name);

  ChurnConfig config_;
  util::Rng rng_;
  int num_colors_ = 1;
  std::vector<std::string> sources_;
  std::vector<std::string> reflectors_;
  std::vector<std::string> sinks_;
  std::vector<EdgeRef> live_edges_;
  std::vector<EdgeRef> failed_edges_;
  /// Generator-added reflectors still present (eligible for removal).
  std::vector<std::string> added_;
  std::uint64_t next_add_id_ = 0;
};

}  // namespace omn::serve
