#pragma once
// The serve event journal: crash durability for `omn_design serve`.
//
// An append-only, checksummed binary log.  The daemon journals every
// *mutation* event (flushed before the event is acknowledged), so a
// SIGKILLed daemon replays the journal on restart and converges to the
// identical design.  query/snapshot/quit never touch state and are not
// recorded; `snapshot` instead compacts the journal (atomic rewrite with
// the current instance as the new base and zero pending events).
//
// Format v1 (fixed-width little-endian via util::ByteWriter, one
// content_checksum trailer per section — the same conventions as the
// .lpsol entries and the dist frame protocol):
//
//   header:
//     u32 magic 0x4A4E4D4F ("OMNJ")    u32 version (1)
//     u64 config_digest.hi             u64 config_digest.lo
//     str instance_text                (omn-instance v2 snapshot base)
//     u64 n_failed; n_failed x [ u8 rd  str a  str b  f64 original_loss ]
//     u64 checksum (content_checksum of all preceding header bytes)
//   record (one per journaled event, in apply order):
//     u32 magic 0x544E5645 ("EVNT")    u64 seq (0-based, dense)
//     str event_line                   (canonical Event::to_line text)
//     u64 checksum (content_checksum of this record's preceding bytes)
//
// config_digest pins the result-affecting DesignerConfig knobs: replaying
// the same events under a different c / seed / warm-start flag would
// converge to a *different* design, so resume refuses a mismatched
// journal instead of silently diverging.  The failed-edge registry rides
// in the header because the snapshot instance text already carries the
// pinned losses — only the restore bookkeeping (original losses) needs
// separate persistence.
//
// Decode is defensive: bad magic, bad version, a checksum mismatch, a
// non-dense seq, or an unparseable / non-mutation event line in any
// complete section throws JournalError — corruption is rejected, never
// replayed.  The one tolerated defect is a torn final record (the daemon
// died mid-append): decode() drops the partial tail and reports it via
// dropped_partial_tail, because an unacknowledged event is allowed to be
// lost.  Resume rewrites the file (atomically) from the decoded prefix,
// so the torn bytes never accumulate.

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "omn/core/design_state.hpp"
#include "omn/serve/event.hpp"
#include "omn/util/hash.hpp"

namespace omn::serve {

/// Any journal defect decode() refuses to proceed past.
struct JournalError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct JournalHeader {
  util::Digest128 config_digest;
  /// net::to_text of the snapshot base instance (with any pinned losses).
  std::string instance_text;
  /// Failed edges at snapshot time, in fail order.
  std::vector<core::FailedEdge> failed;
};

struct JournalContents {
  JournalHeader header;
  std::vector<Event> events;
  /// True when a torn final record was dropped (crash mid-append).
  bool dropped_partial_tail = false;
};

/// The result-affecting DesignerConfig knobs, digested for the header.
/// Thread count and timing-only options are excluded: they never change
/// the design, so they may differ between the writer and the resumer.
util::Digest128 config_digest(const core::DesignerConfig& config);

class Journal {
 public:
  static constexpr std::uint32_t kFormatVersion = 1;

  /// An inert handle; assign from create() / resume via rewrite().
  Journal() = default;

  // ---- pure (de)serialization, exposed for tests and the fuzzer ----------

  static std::string encode_header(const JournalHeader& header);
  static std::string encode_record(std::uint64_t seq, const Event& event);
  /// header + all records: the full canonical file image.
  static std::string encode(const JournalHeader& header,
                            const std::vector<Event>& events);
  /// Throws JournalError on any defect except a torn final record (see
  /// the header comment).
  static JournalContents decode(std::string_view bytes);

  /// Reads and decodes `path` (throws JournalError, including for a
  /// missing or unreadable file).
  static JournalContents load(const std::string& path);

  // ---- writing ------------------------------------------------------------

  /// Atomically writes the full image for (header, events) to `path`,
  /// then returns a handle open for appending after the last record.
  /// This one entry point covers fresh start (no events), resume (decoded
  /// prefix, torn tail dropped), and snapshot compaction (new header,
  /// no events).  Throws std::runtime_error when the write fails.
  static Journal rewrite(const std::string& path, const JournalHeader& header,
                         const std::vector<Event>& events);

  /// Appends one record and flushes it to the OS before returning, so an
  /// acknowledged event survives a SIGKILL.  Throws std::runtime_error on
  /// I/O failure.  The event must be a mutation.
  void append(const Event& event);

  bool open() const { return out_.is_open(); }
  const std::string& path() const { return path_; }
  std::uint64_t next_seq() const { return seq_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t seq_ = 0;
};

}  // namespace omn::serve
