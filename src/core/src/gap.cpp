#include "omn/core/gap.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "omn/flow/min_cost_flow.hpp"

namespace omn::core {

namespace {

/// Scaled (x2) capacity: smallest integer >= 2 * value.
std::int64_t scaled_ceil(double value) {
  return static_cast<std::int64_t>(std::ceil(2.0 * value - 1e-9));
}

}  // namespace

BoxNetwork build_box_network(const net::OverlayInstance& inst,
                             const OverlayLp& lp,
                             const std::vector<double>& x_bar,
                             const BoxNetworkOptions& options) {
  BoxNetwork net;

  // ---- per-sink box construction (paper Section 5) ------------------------
  struct Feeder {
    int pair_index;
    int box_index;
  };
  struct PendingPair {
    int rd_edge_id;
    double value;
    double weight;
  };
  std::vector<BoxNetwork::Pair> pairs;
  std::vector<BoxNetwork::Box> boxes;
  std::vector<Feeder> feeders;
  std::vector<int> pair_index_of_edge(x_bar.size(), -1);

  for (int j = 0; j < inst.num_sinks(); ++j) {
    std::vector<PendingPair> pending;
    for (int id : inst.sink_in(j)) {
      const auto uid = static_cast<std::size_t>(id);
      if (lp.x_var[uid] < 0) continue;
      if (x_bar[uid] <= options.x_epsilon) continue;
      pending.push_back(PendingPair{id, std::min(x_bar[uid], 1.0),
                                    lp.x_weight[uid]});
    }
    if (pending.empty()) continue;
    // Decreasing weight order: w_1j >= w_2j >= ...
    std::sort(pending.begin(), pending.end(),
              [](const PendingPair& a, const PendingPair& b) {
                return a.weight > b.weight;
              });
    double total = 0.0;
    for (const PendingPair& p : pending) total += p.value;
    const auto s_j = static_cast<int>(scaled_ceil(total));
    if (s_j <= 0) continue;
    const int kept =
        s_j >= 2 ? s_j - 1 : (options.keep_lone_partial_box ? 1 : 0);
    if (kept == 0) continue;

    // Register this sink's pair nodes.
    const int first_pair = static_cast<int>(pairs.size());
    for (const PendingPair& p : pending) {
      BoxNetwork::Pair pair;
      pair.rd_edge_id = p.rd_edge_id;
      const net::ReflectorSinkEdge& e =
          inst.rd_edges()[static_cast<std::size_t>(p.rd_edge_id)];
      pair.reflector = e.reflector;
      pair.sink = j;
      pair.color = inst.reflector(e.reflector).color;
      pair.cost = e.cost;
      pair_index_of_edge[static_cast<std::size_t>(p.rd_edge_id)] =
          static_cast<int>(pairs.size());
      pairs.push_back(pair);
    }

    // Fill boxes with 1/2 mass each, walking the sorted pair list.
    const int first_box = static_cast<int>(boxes.size());
    for (int b = 0; b < kept; ++b) {
      BoxNetwork::Box box;
      box.sink = j;
      boxes.push_back(box);
    }
    int box = 0;
    double box_room = 0.5;
    for (std::size_t p = 0; p < pending.size() && box < kept; ++p) {
      double remaining = pending[p].value;
      while (remaining > options.x_epsilon && box < kept) {
        const double used = std::min(remaining, box_room);
        feeders.push_back(Feeder{first_pair + static_cast<int>(p),
                                 first_box + box});
        remaining -= used;
        box_room -= used;
        if (box_room <= options.x_epsilon) {
          ++box;
          box_room = 0.5;
        }
      }
    }
  }

  // ---- node numbering ------------------------------------------------------
  // S, then one node per reflector that owns at least one pair, then pair
  // nodes, then box nodes, then T.
  std::vector<int> reflector_node(static_cast<std::size_t>(inst.num_reflectors()),
                                  -1);
  int next = 1;
  for (const BoxNetwork::Pair& p : pairs) {
    if (reflector_node[static_cast<std::size_t>(p.reflector)] < 0) {
      reflector_node[static_cast<std::size_t>(p.reflector)] = next++;
    }
  }
  const int first_pair_node = next;
  next += static_cast<int>(pairs.size());
  const int first_box_node = next;
  next += static_cast<int>(boxes.size());
  const int t_node = next++;

  net.graph = flow::Graph(next);
  net.source = 0;
  net.sink_t = t_node;

  // ---- edges ---------------------------------------------------------------
  // s -> reflector: scaled fanout, enlarged (only) when the rounded x̄ mass
  // already exceeds it, so the flow stage can always re-route the x̄ mass
  // (Lemma 4.6 bounds that mass by 2 F_i w.h.p.).
  std::vector<double> mass_at_reflector(
      static_cast<std::size_t>(inst.num_reflectors()), 0.0);
  for (const BoxNetwork::Pair& p : pairs) {
    mass_at_reflector[static_cast<std::size_t>(p.reflector)] +=
        std::min(x_bar[static_cast<std::size_t>(p.rd_edge_id)], 1.0);
  }
  for (int i = 0; i < inst.num_reflectors(); ++i) {
    if (reflector_node[static_cast<std::size_t>(i)] < 0) continue;
    const std::int64_t cap =
        std::max(scaled_ceil(inst.reflector(i).fanout),
                 scaled_ceil(mass_at_reflector[static_cast<std::size_t>(i)]));
    net.graph.add_edge(net.source, reflector_node[static_cast<std::size_t>(i)],
                       cap, 0.0);
  }
  // reflector -> pair: capacity 1 (scaled 2); carries the rd-edge cost per
  // half-unit so the min-cost flow optimizes real dollars.
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    BoxNetwork::Pair& pair = pairs[p];
    pair.edge_into_pair = net.graph.add_edge(
        reflector_node[static_cast<std::size_t>(pair.reflector)],
        first_pair_node + static_cast<int>(p), 2, pair.cost / 2.0);
  }
  // pair -> box (capacity 1/2, scaled 1) and box -> T (capacity 1/2).
  for (std::size_t b = 0; b < boxes.size(); ++b) {
    boxes[b].node = first_box_node + static_cast<int>(b);
  }
  for (const Feeder& f : feeders) {
    const int edge = net.graph.add_edge(
        first_pair_node + f.pair_index,
        boxes[static_cast<std::size_t>(f.box_index)].node, 1, 0.0);
    boxes[static_cast<std::size_t>(f.box_index)].feeders.push_back(f.pair_index);
    boxes[static_cast<std::size_t>(f.box_index)].feed_edges.push_back(edge);
  }
  for (auto& box : boxes) {
    box.edge_to_t = net.graph.add_edge(box.node, t_node, 1, 0.0);
  }

  net.pairs = std::move(pairs);
  net.boxes = std::move(boxes);
  return net;
}

GapResult gap_round(const net::OverlayInstance& inst, const OverlayLp& lp,
                    const std::vector<double>& x_bar,
                    const BoxNetworkOptions& options) {
  BoxNetwork net = build_box_network(inst, lp, x_bar, options);
  GapResult out;
  out.x.assign(x_bar.size(), 0);
  out.num_boxes = static_cast<int>(net.boxes.size());
  if (net.boxes.empty()) return out;

  const flow::MinCostFlowResult flow =
      flow::min_cost_flow(net.graph, net.source, net.sink_t, net.demand());
  out.flow = flow.flow;
  out.flow_cost = flow.cost;
  out.saturated = flow.reached_target;

  // "We double all x = 1/2": any pair carrying at least one scaled
  // (half) unit is selected.
  for (const BoxNetwork::Pair& pair : net.pairs) {
    if (net.graph.flow_on(pair.edge_into_pair) >= 1) {
      out.x[static_cast<std::size_t>(pair.rd_edge_id)] = 1;
    }
  }
  return out;
}

}  // namespace omn::core
