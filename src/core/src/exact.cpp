#include "omn/core/exact.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "omn/lp/simplex.hpp"

namespace omn::core {

namespace {

struct Frame {
  int variable = -1;
  double fixed_value = 0.0;
  double saved_lower = 0.0;
  double saved_upper = 0.0;
};

class BranchAndBound {
 public:
  BranchAndBound(const net::OverlayInstance& inst, const ExactOptions& opts)
      : inst_(inst), opts_(opts), lp_(build_overlay_lp(inst, opts.lp_options)),
        model_(lp_.model) {
    // Branch priority: z variables first (they gate everything), then y,
    // then x — mirroring the constraint hierarchy (1)-(2).
    for (int v : lp_.z_var) priority_.push_back(v);
    for (int v : lp_.y_var) {
      if (v >= 0) priority_.push_back(v);
    }
    for (int v : lp_.x_var) {
      if (v >= 0) priority_.push_back(v);
    }
  }

  ExactResult run() {
    ExactResult out;
    dive();
    out.nodes_explored = nodes_;
    if (incumbent_.empty()) {
      out.status = infeasible_root_ ? ExactResult::Status::kInfeasible
                                    : (hit_limit_
                                           ? ExactResult::Status::kNodeLimit
                                           : ExactResult::Status::kInfeasible);
      return out;
    }
    out.status = hit_limit_ ? ExactResult::Status::kNodeLimit
                            : ExactResult::Status::kOptimal;
    out.has_design = true;
    out.objective = incumbent_objective_;
    out.design = extract_design();
    return out;
  }

 private:
  void dive() {
    if (opts_.max_nodes > 0 && nodes_ >= opts_.max_nodes) {
      hit_limit_ = true;
      return;
    }
    ++nodes_;
    const lp::Solution sol = lp::SimplexSolver().solve(model_);
    if (sol.status == lp::SolveStatus::kInfeasible) {
      if (nodes_ == 1) infeasible_root_ = true;
      return;
    }
    if (sol.status != lp::SolveStatus::kOptimal) {
      hit_limit_ = true;  // treat solver trouble as truncation, not silence
      return;
    }
    if (!incumbent_.empty() &&
        sol.objective >= incumbent_objective_ - 1e-9) {
      return;  // bound: cannot beat the incumbent
    }
    const int branch_var = most_fractional(sol.x);
    if (branch_var < 0) {
      // Integral: new incumbent.
      incumbent_ = sol.x;
      incumbent_objective_ = sol.objective;
      return;
    }
    const double value = sol.x[static_cast<std::size_t>(branch_var)];
    // Explore the branch nearest the LP value first (better incumbents
    // earlier mean stronger pruning).
    const double first = value >= 0.5 ? 1.0 : 0.0;
    for (double fixed : {first, 1.0 - first}) {
      lp::Variable& var = model_.variable(branch_var);
      const Frame frame{branch_var, fixed, var.lower, var.upper};
      var.lower = fixed;
      var.upper = fixed;
      dive();
      model_.variable(branch_var).lower = frame.saved_lower;
      model_.variable(branch_var).upper = frame.saved_upper;
      if (hit_limit_) return;
    }
  }

  int most_fractional(const std::vector<double>& x) const {
    int best = -1;
    double best_score = opts_.int_tol;
    for (int v : priority_) {
      const double value = x[static_cast<std::size_t>(v)];
      const double frac = std::min(value, 1.0 - value);
      if (frac > best_score) {
        best_score = frac;
        best = v;
        // z variables are scanned first; take the first sufficiently
        // fractional one in priority order rather than a global argmax,
        // which keeps branching aligned with the constraint hierarchy.
        if (frac > 0.25) break;
      }
    }
    return best;
  }

  Design extract_design() const {
    Design d = Design::zeros(inst_);
    auto bit = [&](int v) {
      return incumbent_[static_cast<std::size_t>(v)] > 0.5 ? 1 : 0;
    };
    for (std::size_t i = 0; i < lp_.z_var.size(); ++i) {
      d.z[i] = static_cast<std::uint8_t>(bit(lp_.z_var[i]));
    }
    for (std::size_t s = 0; s < lp_.y_var.size(); ++s) {
      if (lp_.y_var[s] >= 0) {
        d.y[s] = static_cast<std::uint8_t>(bit(lp_.y_var[s]));
      }
    }
    for (std::size_t e = 0; e < lp_.x_var.size(); ++e) {
      if (lp_.x_var[e] >= 0) {
        d.x[e] = static_cast<std::uint8_t>(bit(lp_.x_var[e]));
      }
    }
    return d;
  }

  const net::OverlayInstance& inst_;
  ExactOptions opts_;
  OverlayLp lp_;
  lp::Model model_;  // scratch copy whose bounds we mutate while diving
  std::vector<int> priority_;

  std::vector<double> incumbent_;
  double incumbent_objective_ = std::numeric_limits<double>::infinity();
  std::int64_t nodes_ = 0;
  bool hit_limit_ = false;
  bool infeasible_root_ = false;
};

}  // namespace

ExactResult solve_exact(const net::OverlayInstance& inst,
                        const ExactOptions& options) {
  return BranchAndBound(inst, options).run();
}

}  // namespace omn::core
