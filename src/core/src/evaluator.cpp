#include "omn/core/evaluator.hpp"

#include <algorithm>
#include <cmath>

namespace omn::core {

Evaluation evaluate(const net::OverlayInstance& inst, const Design& design,
                    bool bandwidth_extension) {
  Evaluation ev;
  const int R = inst.num_reflectors();
  const int D = inst.num_sinks();
  const int colors = std::max(1, inst.num_colors());

  // ---- costs ----------------------------------------------------------------
  for (int i = 0; i < R; ++i) {
    if (design.z[static_cast<std::size_t>(i)]) {
      ev.reflector_cost += inst.reflector(i).build_cost;
      ++ev.reflectors_built;
    }
  }
  for (const net::SourceReflectorEdge& e : inst.sr_edges()) {
    if (design.y[y_index(inst, e.source, e.reflector)]) {
      ev.sr_edge_cost += e.cost;
      ++ev.streams_delivered;
    }
  }
  for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
    if (design.x[id]) ev.rd_edge_cost += inst.rd_edges()[id].cost;
  }
  ev.total_cost = ev.reflector_cost + ev.sr_edge_cost + ev.rd_edge_cost;

  // ---- structural consistency and fanout usage -------------------------------
  ev.fanout_utilization.assign(static_cast<std::size_t>(R), 0.0);
  for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
    if (!design.x[id]) continue;
    const net::ReflectorSinkEdge& e = inst.rd_edges()[id];
    const int k = inst.sink(e.sink).commodity;
    if (!design.y[y_index(inst, k, e.reflector)]) ev.consistent = false;
    const double usage = bandwidth_extension ? inst.source(k).bandwidth : 1.0;
    ev.fanout_utilization[static_cast<std::size_t>(e.reflector)] += usage;
  }
  for (const net::SourceReflectorEdge& e : inst.sr_edges()) {
    if (design.y[y_index(inst, e.source, e.reflector)] &&
        !design.z[static_cast<std::size_t>(e.reflector)]) {
      ev.consistent = false;
    }
  }
  for (int i = 0; i < R; ++i) {
    ev.fanout_utilization[static_cast<std::size_t>(i)] /=
        inst.reflector(i).fanout;
    ev.max_fanout_utilization = std::max(
        ev.max_fanout_utilization,
        ev.fanout_utilization[static_cast<std::size_t>(i)]);
  }

  // ---- per-sink reliability ---------------------------------------------------
  ev.sinks_total = D;
  ev.sinks.reserve(static_cast<std::size_t>(D));
  double ratio_sum = 0.0;
  double ratio_min = D > 0 ? std::numeric_limits<double>::infinity() : 0.0;
  for (int j = 0; j < D; ++j) {
    SinkEvaluation se;
    se.sink = j;
    se.threshold = inst.sink(j).threshold;
    se.demand_weight = inst.sink_demand_weight(j);
    se.copies_per_color.assign(static_cast<std::size_t>(colors), 0);
    double failure_product = 1.0;
    const int k = inst.sink(j).commodity;
    for (int id : inst.sink_in(j)) {
      if (!design.x[static_cast<std::size_t>(id)]) continue;
      const net::ReflectorSinkEdge& e = inst.rd_edges()[static_cast<std::size_t>(id)];
      const int sr = inst.find_sr_edge(k, e.reflector);
      if (sr < 0) continue;
      const double w = net::OverlayInstance::path_weight(inst.sr_edge(sr).loss,
                                                         e.loss);
      se.delivered_weight += std::min(w, se.demand_weight);
      failure_product *=
          net::OverlayInstance::path_failure(inst.sr_edge(sr).loss, e.loss);
      ++se.copies;
      ++se.copies_per_color[static_cast<std::size_t>(
          inst.reflector(e.reflector).color)];
    }
    se.delivery_probability = se.copies > 0 ? 1.0 - failure_product : 0.0;
    se.weight_ratio =
        se.demand_weight > 0.0 ? se.delivered_weight / se.demand_weight : 1.0;

    ratio_sum += se.weight_ratio;
    ratio_min = std::min(ratio_min, se.weight_ratio);
    if (se.weight_ratio >= 1.0 - 1e-9) ++ev.sinks_meeting_demand;
    if (se.weight_ratio >= 0.25 - 1e-9) ++ev.sinks_meeting_quarter;
    if (se.copies == 0) ++ev.sinks_unserved;
    for (int c : se.copies_per_color) {
      ev.max_color_copies = std::max(ev.max_color_copies, c);
    }
    ev.sinks.push_back(std::move(se));
  }
  ev.min_weight_ratio = D > 0 ? ratio_min : 0.0;
  ev.mean_weight_ratio = D > 0 ? ratio_sum / D : 0.0;
  return ev;
}

}  // namespace omn::core
