#include "omn/core/color_rounding.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "omn/util/rng.hpp"

namespace omn::core {

namespace {

/// Builds and solves the edge-flow LP over the box network with entangled
/// color rows.  Returns variable values per graph edge id (forward edges
/// only), or empty on infeasibility.
std::vector<double> solve_network_lp(const BoxNetwork& net,
                                     const std::vector<bool>& pair_dropped,
                                     std::int64_t color_cap,
                                     const lp::SolveOptions& lp_options) {
  const flow::Graph& g = net.graph;
  lp::Model model;

  // One variable per forward edge, bounded by its capacity.
  const int num_fwd = g.num_edges();
  std::vector<int> var_of_edge(static_cast<std::size_t>(2 * num_fwd), -1);
  for (int e = 0; e < 2 * num_fwd; e += 2) {
    const auto cap = static_cast<double>(g.capacity_of(e));
    var_of_edge[static_cast<std::size_t>(e)] =
        model.add_variable(0.0, cap, g.edge(e).cost);
  }
  // Dropped pairs (cost filter) cannot carry flow.
  for (std::size_t p = 0; p < net.pairs.size(); ++p) {
    if (pair_dropped[p]) {
      model.variable(var_of_edge[static_cast<std::size_t>(
                         net.pairs[p].edge_into_pair)]).upper = 0.0;
    }
  }
  // Box demands: the box->T edge must carry exactly one scaled unit.
  for (const BoxNetwork::Box& box : net.boxes) {
    lp::Variable& v = model.variable(
        var_of_edge[static_cast<std::size_t>(box.edge_to_t)]);
    v.lower = 1.0;
    v.upper = 1.0;
  }
  // Flow conservation at every internal node.
  for (int node = 0; node < g.num_nodes(); ++node) {
    if (node == net.source || node == net.sink_t) continue;
    const int row = model.add_row(lp::RowSense::kEqual, 0.0);
    bool any = false;
    for (int id : g.out_edges(node)) {
      if ((id & 1) == 0) {
        // Forward edge leaving `node`.
        model.add_coefficient(row, var_of_edge[static_cast<std::size_t>(id)],
                              -1.0);
        any = true;
      } else {
        // Twin of a forward edge entering `node`.
        model.add_coefficient(
            row, var_of_edge[static_cast<std::size_t>(id - 1)], 1.0);
        any = true;
      }
    }
    (void)any;
  }
  // Entangled color rows: per (sink, color) over level-2->3 edges.
  std::map<std::pair<int, int>, int> color_row;
  for (std::size_t p = 0; p < net.pairs.size(); ++p) {
    const BoxNetwork::Pair& pair = net.pairs[p];
    const auto key = std::make_pair(pair.sink, pair.color);
    auto it = color_row.find(key);
    if (it == color_row.end()) {
      const int row = model.add_row(lp::RowSense::kLessEqual,
                                    static_cast<double>(color_cap));
      it = color_row.emplace(key, row).first;
    }
    model.add_coefficient(
        it->second,
        var_of_edge[static_cast<std::size_t>(pair.edge_into_pair)], 1.0);
  }

  const lp::Solution sol = lp::SimplexSolver().solve(model, lp_options);
  if (!sol.optimal()) return {};
  std::vector<double> flow(static_cast<std::size_t>(num_fwd), 0.0);
  for (int e = 0; e < num_fwd; ++e) {
    flow[static_cast<std::size_t>(e)] =
        sol.x[static_cast<std::size_t>(var_of_edge[static_cast<std::size_t>(2 * e)])];
  }
  return flow;
}

}  // namespace

ColorRoundResult color_constrained_round(const net::OverlayInstance& inst,
                                         const OverlayLp& lp,
                                         const std::vector<double>& x_bar,
                                         const ColorRoundingOptions& options) {
  ColorRoundResult out;
  out.x.assign(x_bar.size(), 0);

  BoxNetwork net = build_box_network(inst, lp, x_bar, options.box_options);
  out.boxes_total = static_cast<int>(net.boxes.size());
  if (net.boxes.empty()) return out;

  // Paper preprocessing: eliminate paths with c_p > 4X, where X is the cost
  // of the fractional solution entering this stage.
  double stage_cost = 0.0;
  for (const BoxNetwork::Pair& pair : net.pairs) {
    stage_cost += pair.cost *
                  std::min(x_bar[static_cast<std::size_t>(pair.rd_edge_id)], 1.0);
  }
  std::vector<bool> dropped(net.pairs.size(), false);
  for (std::size_t p = 0; p < net.pairs.size(); ++p) {
    if (net.pairs[p].cost > options.cost_drop_factor * stage_cost &&
        stage_cost > 0.0) {
      dropped[p] = true;
      ++out.pairs_dropped_by_cost;
    }
  }

  // Solve the entangled LP, relaxing color capacity if needed.
  std::int64_t cap = options.color_capacity_scaled;
  std::vector<double> flow;
  for (int attempt = 0; attempt <= options.relax_retries; ++attempt) {
    flow = solve_network_lp(net, dropped, cap, options.lp_options);
    if (!flow.empty()) break;
    cap *= 2;
  }
  if (flow.empty()) {
    // Last resort: ignore colors entirely (plain Section-5 flow).
    out.color_lp_feasible = false;
    const GapResult gap = gap_round(inst, lp, x_bar, options.box_options);
    out.x = gap.x;
    out.boxes_served = gap.saturated ? out.boxes_total : 0;
    out.color_capacity_used = 0;
    return out;
  }
  out.color_capacity_used = cap;

  // Dependent rounding: exactly one feeder pair per box, sampled with the
  // LP marginals.  Preference tiers implement the diversity intent of
  // constraint (9): first feeders whose (sink, color) is untouched, then
  // merely unchosen pairs, then anything with positive flow.
  util::Rng rng(options.seed);
  std::set<int> chosen_pairs;                      // indices into net.pairs
  std::set<std::pair<int, int>> chosen_colors;     // (sink, color)
  for (const BoxNetwork::Box& box : net.boxes) {
    auto mass_of = [&](std::size_t f) {
      return flow[static_cast<std::size_t>(box.feed_edges[f] / 2)];
    };
    auto eligible_mass = [&](int tier) {
      double total = 0.0;
      for (std::size_t f = 0; f < box.feeders.size(); ++f) {
        const int p = box.feeders[f];
        const auto& pair = net.pairs[static_cast<std::size_t>(p)];
        if (tier <= 1 && chosen_pairs.count(p)) continue;
        if (tier == 0 && chosen_colors.count({pair.sink, pair.color})) continue;
        total += mass_of(f);
      }
      return total;
    };
    int tier = 0;
    double scale = 0.0;
    for (; tier <= 2; ++tier) {
      scale = eligible_mass(tier);
      if (scale > 1e-9) break;
    }
    if (scale <= 1e-9) continue;  // box starved (LP routed nothing here)
    double pick = rng.uniform() * scale;
    int selected = -1;
    for (std::size_t f = 0; f < box.feeders.size(); ++f) {
      const int p = box.feeders[f];
      const auto& pair = net.pairs[static_cast<std::size_t>(p)];
      if (tier <= 1 && chosen_pairs.count(p)) continue;
      if (tier == 0 && chosen_colors.count({pair.sink, pair.color})) continue;
      pick -= mass_of(f);
      selected = p;
      if (pick <= 0.0) break;
    }
    if (selected >= 0) {
      const auto& pair = net.pairs[static_cast<std::size_t>(selected)];
      chosen_pairs.insert(selected);
      chosen_colors.emplace(pair.sink, pair.color);
      out.x[static_cast<std::size_t>(pair.rd_edge_id)] = 1;
      ++out.boxes_served;
    }
  }
  return out;
}

}  // namespace omn::core
