#include "omn/core/design_state.hpp"

#include <stdexcept>
#include <utility>

#include "omn/core/lp_cache.hpp"

namespace omn::core {

namespace {

const char* layer_name(bool rd) { return rd ? "rd" : "sr"; }

}  // namespace

DesignState::DesignState(net::OverlayInstance base, DesignerConfig config,
                         util::ExecutionContext context)
    : instance_(std::move(base)),
      config_(config),
      context_(std::move(context)) {
  instance_.validate();
  // Warm starts live on the cache's shape index, so a warm config without
  // a cache would silently degrade to cold solves forever.  Installing a
  // memory-only cache here also gives fail+restore round trips a byte
  // tier: returning to a previously solved instance costs zero pivots.
  if (config_.lp_warm_start && context_.find_service<LpCache>() == nullptr) {
    context_.set_service(std::make_shared<LpCache>());
  }
}

int DesignState::find_source(const std::string& name) const {
  for (int k = 0; k < instance_.num_sources(); ++k) {
    if (instance_.source(k).name == name) return k;
  }
  return -1;
}

int DesignState::find_reflector(const std::string& name) const {
  for (int i = 0; i < instance_.num_reflectors(); ++i) {
    if (instance_.reflector(i).name == name) return i;
  }
  return -1;
}

int DesignState::find_sink(const std::string& name) const {
  for (int j = 0; j < instance_.num_sinks(); ++j) {
    if (instance_.sink(j).name == name) return j;
  }
  return -1;
}

int DesignState::find_failed(bool rd, const std::string& a,
                             const std::string& b) const {
  for (std::size_t n = 0; n < failed_.size(); ++n) {
    if (failed_[n].rd == rd && failed_[n].a == a && failed_[n].b == b) {
      return static_cast<int>(n);
    }
  }
  return -1;
}

int DesignState::resolve_edge(bool rd, const std::string& a,
                              const std::string& b) const {
  if (rd) {
    const int i = find_reflector(a);
    if (i < 0) throw std::invalid_argument("unknown reflector '" + a + "'");
    const int j = find_sink(b);
    if (j < 0) throw std::invalid_argument("unknown sink '" + b + "'");
    const int id = instance_.find_rd_edge(i, j);
    if (id < 0) {
      throw std::invalid_argument("no rd edge " + a + " -> " + b);
    }
    return id;
  }
  const int k = find_source(a);
  if (k < 0) throw std::invalid_argument("unknown source '" + a + "'");
  const int i = find_reflector(b);
  if (i < 0) throw std::invalid_argument("unknown reflector '" + b + "'");
  const int id = instance_.find_sr_edge(k, i);
  if (id < 0) {
    throw std::invalid_argument("no sr edge " + a + " -> " + b);
  }
  return id;
}

void DesignState::fail_edge(bool rd, const std::string& a,
                            const std::string& b) {
  const int id = resolve_edge(rd, a, b);
  if (find_failed(rd, a, b) >= 0) {
    throw std::invalid_argument(std::string(layer_name(rd)) + " edge " + a +
                                " -> " + b + " is already failed");
  }
  const double original =
      rd ? instance_.rd_edge(id).loss : instance_.sr_edge(id).loss;
  failed_.push_back(FailedEdge{rd, a, b, original});
  if (rd) {
    instance_.rd_edge(id).loss = kFailedEdgeLoss;
  } else {
    instance_.sr_edge(id).loss = kFailedEdgeLoss;
  }
}

void DesignState::restore_edge(bool rd, const std::string& a,
                               const std::string& b) {
  const int id = resolve_edge(rd, a, b);
  const int at = find_failed(rd, a, b);
  if (at < 0) {
    throw std::invalid_argument(std::string(layer_name(rd)) + " edge " + a +
                                " -> " + b + " is not failed");
  }
  const double original = failed_[static_cast<std::size_t>(at)].original_loss;
  if (rd) {
    instance_.rd_edge(id).loss = original;
  } else {
    instance_.sr_edge(id).loss = original;
  }
  failed_.erase(failed_.begin() + at);
}

void DesignState::set_fanout(const std::string& reflector, double fanout) {
  const int i = find_reflector(reflector);
  if (i < 0) {
    throw std::invalid_argument("unknown reflector '" + reflector + "'");
  }
  if (!(fanout > 0.0)) {
    throw std::invalid_argument("fanout must be positive");
  }
  instance_.reflector(i).fanout = fanout;
}

void DesignState::add_reflector(const std::string& name, double build_cost,
                                double fanout, int color, double edge_cost,
                                double edge_loss) {
  if (find_reflector(name) >= 0) {
    throw std::invalid_argument("reflector '" + name + "' already exists");
  }
  if (!(build_cost >= 0.0)) {
    throw std::invalid_argument("build cost must be non-negative");
  }
  if (!(fanout > 0.0)) throw std::invalid_argument("fanout must be positive");
  if (color < 0) throw std::invalid_argument("color must be non-negative");
  if (!(edge_cost >= 0.0)) {
    throw std::invalid_argument("edge cost must be non-negative");
  }
  if (!(edge_loss >= 0.0 && edge_loss < 1.0)) {
    throw std::invalid_argument("edge loss must lie in [0, 1)");
  }
  const int i = instance_.add_reflector(
      net::Reflector{name, build_cost, fanout, color, std::nullopt});
  for (int k = 0; k < instance_.num_sources(); ++k) {
    instance_.add_source_reflector_edge(
        net::SourceReflectorEdge{k, i, edge_cost, edge_loss, 0.0});
  }
  for (int j = 0; j < instance_.num_sinks(); ++j) {
    instance_.add_reflector_sink_edge(
        net::ReflectorSinkEdge{i, j, edge_cost, edge_loss, std::nullopt, 0.0});
  }
}

void DesignState::remove_reflector(const std::string& name) {
  const int removed = find_reflector(name);
  if (removed < 0) {
    throw std::invalid_argument("unknown reflector '" + name + "'");
  }
  if (instance_.num_reflectors() <= 1) {
    throw std::invalid_argument("cannot remove the last reflector");
  }
  // Rebuild without the reflector: edge ids and reflector indices shift,
  // which is exactly why the failed-edge registry is keyed by names.
  net::OverlayInstance next;
  for (int k = 0; k < instance_.num_sources(); ++k) {
    next.add_source(instance_.source(k));
  }
  for (int i = 0; i < instance_.num_reflectors(); ++i) {
    if (i != removed) next.add_reflector(instance_.reflector(i));
  }
  for (int j = 0; j < instance_.num_sinks(); ++j) {
    next.add_sink(instance_.sink(j));
  }
  for (const net::SourceReflectorEdge& edge : instance_.sr_edges()) {
    if (edge.reflector == removed) continue;
    net::SourceReflectorEdge copy = edge;
    if (copy.reflector > removed) --copy.reflector;
    next.add_source_reflector_edge(copy);
  }
  for (const net::ReflectorSinkEdge& edge : instance_.rd_edges()) {
    if (edge.reflector == removed) continue;
    net::ReflectorSinkEdge copy = edge;
    if (copy.reflector > removed) --copy.reflector;
    next.add_reflector_sink_edge(copy);
  }
  next.validate();

  std::vector<FailedEdge> kept;
  for (const FailedEdge& record : failed_) {
    const std::string& reflector = record.rd ? record.a : record.b;
    if (reflector != name) kept.push_back(record);
  }
  instance_ = std::move(next);
  failed_ = std::move(kept);
}

void DesignState::apply(
    const std::function<void(net::OverlayInstance&)>& mutate) {
  mutate(instance_);
  instance_.validate();
}

const DesignResult& DesignState::redesign() {
  last_ = OverlayDesigner(config_).design(instance_, context_);
  has_design_ = true;
  return last_;
}

const DesignResult& DesignState::last() const {
  if (!has_design_) {
    throw std::logic_error("DesignState::last() before the first redesign()");
  }
  return last_;
}

util::Digest128 DesignState::design_digest() const {
  const Design& design = last().design;
  util::Hasher hasher;
  hasher.str("omn-design-digest-v1");
  hasher.u64(design.z.size());
  for (std::uint8_t bit : design.z) hasher.u8(bit);
  hasher.u64(design.y.size());
  for (std::uint8_t bit : design.y) hasher.u8(bit);
  hasher.u64(design.x.size());
  for (std::uint8_t bit : design.x) hasher.u8(bit);
  return hasher.digest();
}

void DesignState::adopt_failed_edges(std::vector<FailedEdge> failed) {
  for (const FailedEdge& record : failed) {
    (void)resolve_edge(record.rd, record.a, record.b);  // must exist
  }
  failed_ = std::move(failed);
}

}  // namespace omn::core
