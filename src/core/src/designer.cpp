#include "omn/core/designer.hpp"

#include <algorithm>
#include <cmath>

#include "omn/util/timer.hpp"

namespace omn::core {

std::string to_string(DesignStatus status) {
  switch (status) {
    case DesignStatus::kOk: return "ok";
    case DesignStatus::kLpInfeasible: return "lp-infeasible";
    case DesignStatus::kLpIterationLimit: return "lp-iteration-limit";
  }
  return "unknown";
}

namespace {

/// Attempt quality: higher min weight ratio wins; ties by more sinks
/// meeting the full demand; then by lower cost.
bool better(const Evaluation& a, const Evaluation& b) {
  if (a.min_weight_ratio != b.min_weight_ratio) {
    return a.min_weight_ratio > b.min_weight_ratio;
  }
  if (a.sinks_meeting_demand != b.sinks_meeting_demand) {
    return a.sinks_meeting_demand > b.sinks_meeting_demand;
  }
  return a.total_cost < b.total_cost;
}

}  // namespace

DesignResult OverlayDesigner::design(const net::OverlayInstance& inst) const {
  LpBuildOptions lp_options;
  lp_options.cutting_plane = config_.cutting_plane;
  lp_options.bandwidth_extension = config_.bandwidth_extension;
  lp_options.rd_capacities = config_.rd_capacities;
  lp_options.reflector_stream_capacities = config_.reflector_stream_capacities;
  lp_options.color_constraints = config_.color_constraints;

  util::Timer lp_timer;
  const OverlayLp lp = build_overlay_lp(inst, lp_options);
  const lp::Solution solution =
      lp::SimplexSolver().solve(lp.model, config_.lp_options);

  DesignResult result = design_from_lp(inst, lp, solution);
  result.lp_seconds = lp_timer.seconds() - result.rounding_seconds;
  return result;
}

DesignResult OverlayDesigner::design_from_lp(
    const net::OverlayInstance& inst, const OverlayLp& lp,
    const lp::Solution& lp_solution) const {
  DesignResult result;
  result.lp_iterations = lp_solution.iterations;

  switch (lp_solution.status) {
    case lp::SolveStatus::kOptimal:
      break;
    case lp::SolveStatus::kInfeasible:
      result.status = DesignStatus::kLpInfeasible;
      return result;
    default:
      result.status = DesignStatus::kLpIterationLimit;
      return result;
  }

  result.lp_design = lp.extract(inst, lp_solution.x);
  result.lp_objective = lp_solution.objective;

  util::Timer rounding_timer;
  bool have_best = false;
  Design best_design;
  Evaluation best_eval;
  int best_attempt = 0;

  const int attempts = std::max(1, config_.rounding_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const std::uint64_t seed =
        config_.seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(attempt);

    RoundingOptions ropt;
    ropt.c = config_.c;
    ropt.seed = seed;
    const RoundedSolution rounded = randomized_round(
        inst, lp, result.lp_design, ropt);

    Design design = Design::zeros(inst);
    design.z = rounded.z;
    design.y = rounded.y;
    if (config_.color_constraints) {
      ColorRoundingOptions copt = config_.color_options;
      copt.seed = seed ^ 0xdeadbeefcafef00dull;
      copt.box_options = config_.box_options;
      copt.lp_options = config_.lp_options;
      const ColorRoundResult colored =
          color_constrained_round(inst, lp, rounded.x, copt);
      design.x = colored.x;
    } else {
      const GapResult gap = gap_round(inst, lp, rounded.x, config_.box_options);
      design.x = gap.x;
    }
    // Selected pairs always had ȳ = 1, but enforce structure defensively
    // and drop anything the flow stage did not use.
    design.close_upward(inst);
    if (config_.prune_unused) design.prune_unused(inst);

    Evaluation eval = evaluate(inst, design, config_.bandwidth_extension);
    if (!have_best || better(eval, best_eval)) {
      have_best = true;
      best_design = std::move(design);
      best_eval = std::move(eval);
      best_attempt = attempt;
    }
  }
  result.rounding_seconds = rounding_timer.seconds();

  result.design = std::move(best_design);
  result.evaluation = std::move(best_eval);
  result.winning_attempt = best_attempt;
  result.attempts_made = attempts;
  result.cost_ratio = result.lp_objective > 0.0
                          ? result.evaluation.total_cost / result.lp_objective
                          : 1.0;
  return result;
}

}  // namespace omn::core
