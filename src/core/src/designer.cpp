#include "omn/core/designer.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "omn/core/lp_cache.hpp"
#include "omn/util/execution_context.hpp"
#include "omn/util/timer.hpp"
#include "omn/util/trace.hpp"

namespace omn::core {

std::string to_string(DesignStatus status) {
  switch (status) {
    case DesignStatus::kOk: return "ok";
    case DesignStatus::kLpInfeasible: return "lp-infeasible";
    case DesignStatus::kLpIterationLimit: return "lp-iteration-limit";
  }
  return "unknown";
}

util::Json to_json(const DesignResult& result) {
  util::Json j = util::Json::object();
  j.set("status", to_string(result.status));
  j.set("total_cost", result.evaluation.total_cost);
  j.set("lp_objective", result.lp_objective);
  j.set("cost_ratio", result.cost_ratio);
  j.set("lp_iterations", result.lp_iterations);
  j.set("lp_phase1_iterations", result.lp_phase1_iterations);
  j.set("lp_refactorizations", result.lp_refactorizations);
  j.set("winning_attempt", result.winning_attempt);
  j.set("attempts_made", result.attempts_made);
  j.set("lp_seconds", result.lp_seconds);
  j.set("rounding_seconds", result.rounding_seconds);
  j.set("lp_cache_hit", result.lp_cache_hit);
  j.set("lp_warm_start", result.lp_warm_start);
  return j;
}

namespace {

/// Relative-tolerance equality for the selection keys.  min_weight_ratio
/// and total_cost are sums of products of LP values, so two attempts that
/// are mathematically tied can differ in the last few ulps depending on
/// FMA contraction and summation order.
bool nearly_equal(double a, double b) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= 1e-9 * scale;
}

}  // namespace

util::ExecutionContext OverlayDesigner::default_context(
    const DesignerConfig& config) {
  if (config.threads == 1 || config.rounding_attempts <= 1) {
    return util::ExecutionContext::serial();
  }
  return util::ExecutionContext::global();
}

bool better_evaluation(const Evaluation& a, const Evaluation& b) {
  if (!nearly_equal(a.min_weight_ratio, b.min_weight_ratio)) {
    return a.min_weight_ratio > b.min_weight_ratio;
  }
  if (a.sinks_meeting_demand != b.sinks_meeting_demand) {
    return a.sinks_meeting_demand > b.sinks_meeting_demand;
  }
  return a.total_cost < b.total_cost && !nearly_equal(a.total_cost, b.total_cost);
}

LpBuildOptions lp_build_options(const DesignerConfig& config) {
  LpBuildOptions options;
  options.cutting_plane = config.cutting_plane;
  options.bandwidth_extension = config.bandwidth_extension;
  options.rd_capacities = config.rd_capacities;
  options.reflector_stream_capacities = config.reflector_stream_capacities;
  options.color_constraints = config.color_constraints;
  return options;
}

DesignResult OverlayDesigner::design(const net::OverlayInstance& inst) const {
  return design(inst, default_context(config_));
}

DesignResult OverlayDesigner::design(
    const net::OverlayInstance& inst,
    const util::ExecutionContext& context) const {
  // Time the LP stage on its own; design_from_lp times the rounding stage
  // on its own.  (Subtracting one from the other mis-attributes and can
  // even go negative under clock jitter.)
  util::Timer lp_timer;
  // The LP solve goes through the context's LpCache service when one is
  // installed; the solver is deterministic, so a cached point yields a
  // bit-identical design.  Without a cache this is a plain build + solve.
  const std::shared_ptr<LpCache> cache = context.find_service<LpCache>();
  CachedLp solved;
  {
    OMN_TRACE_SPAN("designer.lp");
    solved = solve_overlay_lp_cached(
        inst, lp_build_options(config_), config_.lp_options, cache.get(),
        config_.lp_warm_start);
  }
  const double lp_seconds = lp_timer.seconds();

  DesignResult result = design_from_lp(inst, solved.lp, solved.solution, context);
  result.lp_seconds = lp_seconds;
  result.lp_cache_hit = solved.cache_hit;
  return result;
}

DesignResult OverlayDesigner::design_from_lp(
    const net::OverlayInstance& inst, const OverlayLp& lp,
    const lp::Solution& lp_solution) const {
  return design_from_lp(inst, lp, lp_solution, default_context(config_));
}

DesignResult OverlayDesigner::design_from_lp(
    const net::OverlayInstance& inst, const OverlayLp& lp,
    const lp::Solution& lp_solution,
    const util::ExecutionContext& context) const {
  DesignResult result;
  result.lp_iterations = lp_solution.iterations;
  result.lp_phase1_iterations = lp_solution.phase1_iterations;
  result.lp_refactorizations = lp_solution.refactorizations;
  result.lp_warm_start = lp_solution.warm_started;

  switch (lp_solution.status) {
    case lp::SolveStatus::kOptimal:
      break;
    case lp::SolveStatus::kInfeasible:
      result.status = DesignStatus::kLpInfeasible;
      return result;
    default:
      result.status = DesignStatus::kLpIterationLimit;
      return result;
  }

  result.lp_design = lp.extract(inst, lp_solution.x);
  result.lp_objective = lp_solution.objective;

  util::Timer rounding_timer;
  const int attempts = std::max(1, config_.rounding_attempts);

  // Each Monte Carlo attempt is independent: its seed is derived from the
  // configured seed and the attempt index alone, and the rounding stages
  // share no mutable state.  Attempts therefore run in any order — or
  // concurrently.
  struct AttemptOutcome {
    Design design;
    Evaluation eval;
  };

  const auto compute_attempt = [&](int attempt) -> AttemptOutcome {
    OMN_TRACE_SPAN(
        [&] { return "designer.attempt " + std::to_string(attempt); });
    const std::uint64_t seed =
        config_.seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(attempt);

    RoundingOptions ropt;
    ropt.c = config_.c;
    ropt.seed = seed;
    const RoundedSolution rounded = randomized_round(
        inst, lp, result.lp_design, ropt);

    Design design = Design::zeros(inst);
    design.z = rounded.z;
    design.y = rounded.y;
    if (config_.color_constraints) {
      ColorRoundingOptions copt = config_.color_options;
      copt.seed = seed ^ 0xdeadbeefcafef00dull;
      copt.box_options = config_.box_options;
      copt.lp_options = config_.lp_options;
      const ColorRoundResult colored =
          color_constrained_round(inst, lp, rounded.x, copt);
      design.x = colored.x;
    } else {
      const GapResult gap = gap_round(inst, lp, rounded.x, config_.box_options);
      design.x = gap.x;
    }
    // Selected pairs always had ȳ = 1, but enforce structure defensively
    // and drop anything the flow stage did not use.
    design.close_upward(inst);
    if (config_.prune_unused) design.prune_unused(inst);

    AttemptOutcome outcome;
    outcome.eval = evaluate(inst, design, config_.bandwidth_extension);
    outcome.design = std::move(design);
    return outcome;
  };

  // Both paths pick the winner by scanning attempts in index order with
  // the same comparator, so for a fixed seed the parallel path is
  // bit-identical to the serial one.  The serial path keeps only the
  // running best; the parallel path holds all attempts until the scan.
  AttemptOutcome winner;
  int best_attempt = 0;

  OMN_TRACE_SPAN("designer.rounding");
  const std::size_t cap =
      config_.threads > 0 ? static_cast<std::size_t>(config_.threads) : 0;
  if (attempts > 1 && cap != 1 && context.concurrency() > 1) {
    std::vector<AttemptOutcome> outcomes(static_cast<std::size_t>(attempts));
    context.parallel_for(
        static_cast<std::size_t>(attempts),
        [&](std::size_t i) { outcomes[i] = compute_attempt(static_cast<int>(i)); },
        {.max_parallelism = cap});
    for (int attempt = 1; attempt < attempts; ++attempt) {
      if (better_evaluation(
              outcomes[static_cast<std::size_t>(attempt)].eval,
              outcomes[static_cast<std::size_t>(best_attempt)].eval)) {
        best_attempt = attempt;
      }
    }
    winner = std::move(outcomes[static_cast<std::size_t>(best_attempt)]);
  } else {
    winner = compute_attempt(0);
    for (int attempt = 1; attempt < attempts; ++attempt) {
      AttemptOutcome outcome = compute_attempt(attempt);
      if (better_evaluation(outcome.eval, winner.eval)) {
        winner = std::move(outcome);
        best_attempt = attempt;
      }
    }
  }
  result.rounding_seconds = rounding_timer.seconds();

  result.design = std::move(winner.design);
  result.evaluation = std::move(winner.eval);
  result.winning_attempt = best_attempt;
  result.attempts_made = attempts;
  result.cost_ratio = result.lp_objective > 0.0
                          ? result.evaluation.total_cost / result.lp_objective
                          : 1.0;
  return result;
}

}  // namespace omn::core
