#include "omn/core/rounding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace omn::core {

RoundedSolution randomized_round(const net::OverlayInstance& inst,
                                 const OverlayLp& lp,
                                 const FractionalDesign& frac,
                                 const RoundingOptions& options) {
  // The paper's analysis assumes c > 1; smaller positive values are allowed
  // so the E8 trade-off experiment can demonstrate *why* (the w.h.p.
  // guarantee visibly fails once c ln n drops below ~1).
  if (options.c <= 0.0) {
    throw std::invalid_argument("randomized_round: c must be positive");
  }
  util::Rng rng(options.seed);
  RoundedSolution out;
  const int R = inst.num_reflectors();
  const int S = inst.num_sources();
  const double n = std::max(1, inst.num_sinks());
  const double mult = std::max(options.c * std::log(n), 1.0);
  out.multiplier = mult;

  out.z.assign(static_cast<std::size_t>(R), 0);
  out.y.assign(static_cast<std::size_t>(S) * static_cast<std::size_t>(R), 0);
  out.x.assign(inst.rd_edges().size(), 0.0);

  // Steps [1]-[4]: scaled probabilities and coin flips for z and y.
  std::vector<double> z_dot(static_cast<std::size_t>(R), 0.0);
  std::vector<double> y_dot(out.y.size(), 0.0);
  for (int i = 0; i < R; ++i) {
    const double zi = frac.z[static_cast<std::size_t>(i)];
    z_dot[static_cast<std::size_t>(i)] = std::min(zi * mult, 1.0);
    out.z[static_cast<std::size_t>(i)] =
        rng.bernoulli(z_dot[static_cast<std::size_t>(i)]) ? 1 : 0;
  }
  for (const net::SourceReflectorEdge& e : inst.sr_edges()) {
    const std::size_t slot = y_index(inst, e.source, e.reflector);
    const double zd = z_dot[static_cast<std::size_t>(e.reflector)];
    if (zd <= 0.0) continue;  // ẑ = 0 forces ŷ = 0 by constraint (1)
    y_dot[slot] = std::min(frac.y[slot] * mult / zd, 1.0);
    if (out.z[static_cast<std::size_t>(e.reflector)]) {
      out.y[slot] = rng.bernoulli(y_dot[slot]) ? 1 : 0;
    }
  }

  // Step [5]: x̄ assignment.
  for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
    if (lp.x_var[id] < 0) continue;
    const net::ReflectorSinkEdge& e = inst.rd_edges()[id];
    const int k = inst.sink(e.sink).commodity;
    const std::size_t slot = y_index(inst, k, e.reflector);
    const double x_hat = frac.x[id];
    if (x_hat <= 0.0) continue;
    if (z_dot[static_cast<std::size_t>(e.reflector)] >= 1.0 &&
        y_dot[slot] >= 1.0) {
      // Both coins were deterministic (z̄ = ȳ = 1): keep x̂ exactly.
      out.x[id] = x_hat;
    } else if (out.y[slot]) {
      const double y_hat = frac.y[slot];
      const double probability = y_hat > 0.0 ? std::min(x_hat / y_hat, 1.0) : 0.0;
      if (rng.bernoulli(probability)) out.x[id] = 1.0 / mult;
    }
  }
  return out;
}

}  // namespace omn::core
