#include "omn/core/lp_cache.hpp"

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "omn/util/atomic_file.hpp"
#include "omn/util/bytes.hpp"
#include "omn/util/trace.hpp"

namespace omn::core {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x4F4C5043u;

// The entry format must be byte-identical across platforms (the directory
// tier is shared between processes and potentially machines), so every
// field goes through util::ByteWriter/ByteReader, never raw struct writes.
using util::ByteReader;
using util::ByteWriter;

void hash_build_options(util::Hasher& h, const LpBuildOptions& o) {
  h.boolean(o.cutting_plane);
  h.boolean(o.bandwidth_extension);
  h.boolean(o.rd_capacities);
  h.boolean(o.reflector_stream_capacities);
  h.boolean(o.color_constraints);
}

void hash_solve_options(util::Hasher& h, const lp::SolveOptions& o) {
  h.i32(o.max_iterations);
  h.f64(o.optimality_tol);
  h.f64(o.feasibility_tol);
  h.f64(o.pivot_tol);
  h.i32(o.degenerate_switch);
  h.u32(static_cast<std::uint32_t>(o.algorithm));
  h.u32(static_cast<std::uint32_t>(o.pricing));
  h.i32(o.refactor_interval);
  // warm_start_basis is deliberately excluded: the starting basis changes
  // where the solve starts, not which problem it solves, and the byte
  // cache must serve one key to warm and cold callers alike.
}

}  // namespace

util::Digest128 lp_instance_digest(const net::OverlayInstance& instance) {
  util::Hasher h;
  h.str("omn-lp-instance-v1");
  h.i32(instance.num_sources());
  h.i32(instance.num_reflectors());
  h.i32(instance.num_sinks());
  h.u64(instance.sr_edges().size());
  h.u64(instance.rd_edges().size());
  for (int k = 0; k < instance.num_sources(); ++k) {
    h.f64(instance.source(k).bandwidth);
  }
  for (int i = 0; i < instance.num_reflectors(); ++i) {
    const net::Reflector& r = instance.reflector(i);
    h.f64(r.build_cost);
    h.f64(r.fanout);
    h.i32(r.color);
    h.opt_f64(r.stream_capacity);
  }
  for (int j = 0; j < instance.num_sinks(); ++j) {
    const net::Sink& s = instance.sink(j);
    h.i32(s.commodity);
    h.f64(s.threshold);
  }
  // Edge lists in id order: the order defines the LP's variable indexing,
  // so it is part of the content.  delay_ms is sim-only, never hashed.
  for (const net::SourceReflectorEdge& e : instance.sr_edges()) {
    h.i32(e.source);
    h.i32(e.reflector);
    h.f64(e.cost);
    h.f64(e.loss);
  }
  for (const net::ReflectorSinkEdge& e : instance.rd_edges()) {
    h.i32(e.reflector);
    h.i32(e.sink);
    h.f64(e.cost);
    h.f64(e.loss);
    h.opt_f64(e.capacity);
  }
  return h.digest();
}

util::Digest128 lp_shape_digest(const net::OverlayInstance& instance,
                                const LpBuildOptions& build) {
  util::Hasher h;
  h.str("omn-lp-shape-v1");
  h.i32(instance.num_sources());
  h.i32(instance.num_reflectors());
  h.i32(instance.num_sinks());
  h.u64(instance.sr_edges().size());
  h.u64(instance.rd_edges().size());
  // Structure only: colors and commodities select which constraint rows
  // exist, optional capacities decide whether their rows are emitted, and
  // edge endpoints fix the sparsity pattern.  No costs, losses, bandwidths,
  // thresholds, or capacity *values* — those move the optimum, not the
  // shape, and near-miss warm starts are exactly the same-shape case.
  for (int i = 0; i < instance.num_reflectors(); ++i) {
    const net::Reflector& r = instance.reflector(i);
    h.i32(r.color);
    h.boolean(r.stream_capacity.has_value());
  }
  for (int j = 0; j < instance.num_sinks(); ++j) {
    h.i32(instance.sink(j).commodity);
  }
  for (const net::SourceReflectorEdge& e : instance.sr_edges()) {
    h.i32(e.source);
    h.i32(e.reflector);
  }
  for (const net::ReflectorSinkEdge& e : instance.rd_edges()) {
    h.i32(e.reflector);
    h.i32(e.sink);
    h.boolean(e.capacity.has_value());
  }
  hash_build_options(h, build);
  return h.digest();
}

util::Digest128 LpCache::key(const net::OverlayInstance& instance,
                             const LpBuildOptions& build,
                             const lp::SolveOptions& solve) {
  util::Hasher h;
  h.str("omn-lp-solve-v1");
  const util::Digest128 inst = lp_instance_digest(instance);
  h.u64(inst.hi);
  h.u64(inst.lo);
  hash_build_options(h, build);
  hash_solve_options(h, solve);
  return h.digest();
}

LpCache::LpCache(std::string directory) : directory_(std::move(directory)) {
  fs::create_directories(directory_);
}

std::optional<lp::Solution> LpCache::find(const util::Digest128& key) {
  OMN_TRACE_SPAN("cache.find");
  {
    const util::LockGuard lock(mutex_);
    const auto it = memory_.find(key);
    if (it != memory_.end()) {
      ++stats_.hits;
      ++stats_.memory_hits;
      OMN_TRACE_INSTANT("cache.hit_memory");
      OMN_COUNTER_ADD("cache.hits", 1);
      return it->second;
    }
  }
  if (directory_.empty()) {
    const util::LockGuard lock(mutex_);
    ++stats_.misses;
    OMN_TRACE_INSTANT("cache.miss");
    OMN_COUNTER_ADD("cache.misses", 1);
    return std::nullopt;
  }
  return load_from_disk(key);
}

void LpCache::insert(const util::Digest128& key, const lp::Solution& solution) {
  {
    const util::LockGuard lock(mutex_);
    memory_[key] = solution;
    ++stats_.insertions;
  }
  if (!directory_.empty()) store_to_disk(key, solution);
}

void LpCache::note_basis(const util::Digest128& shape, const lp::Basis& basis) {
  const util::LockGuard lock(mutex_);
  bases_[shape] = basis;
}

std::optional<lp::Basis> LpCache::find_basis(const util::Digest128& shape) {
  const util::LockGuard lock(mutex_);
  const auto it = bases_.find(shape);
  if (it == bases_.end()) return std::nullopt;
  ++stats_.warm_hits;
  return it->second;
}

LpCacheStats LpCache::stats() const {
  const util::LockGuard lock(mutex_);
  return stats_;
}

std::string LpCache::path_for(const util::Digest128& key) const {
  return (fs::path(directory_) / (key.hex() + ".lpsol")).string();
}

std::optional<lp::Solution> LpCache::load_from_disk(
    const util::Digest128& key) {
  OMN_TRACE_SPAN("cache.disk_read");
  std::optional<lp::Solution> entry;
  bool rejected = false;
  {
    std::ifstream in(path_for(key), std::ios::binary);
    if (in.good()) {
      entry = read_entry(in, key);
      // An unreadable-but-present file is a corrupt entry, not a miss.
      rejected = !entry.has_value();
    }
  }
  const util::LockGuard lock(mutex_);
  if (!entry.has_value()) {
    ++stats_.misses;
    if (rejected) ++stats_.rejected;
    OMN_TRACE_INSTANT("cache.miss");
    OMN_COUNTER_ADD("cache.misses", 1);
    return std::nullopt;
  }
  memory_[key] = *entry;  // promote: later finds skip the disk
  ++stats_.hits;
  ++stats_.disk_hits;
  OMN_TRACE_INSTANT("cache.hit_disk");
  OMN_COUNTER_ADD("cache.hits", 1);
  OMN_COUNTER_ADD("cache.disk_reads", 1);
  return entry;
}

void LpCache::store_to_disk(const util::Digest128& key,
                            const lp::Solution& solution) {
  OMN_TRACE_SPAN("cache.disk_write");
  OMN_COUNTER_ADD("cache.disk_writes", 1);
  // Readers (this process or another sharing the directory) only ever
  // observe complete entries; the tier is advisory, so a failed store —
  // write_file_atomic returns false — must never fail the solve.
  std::ostringstream buffer;
  write_entry(buffer, key, solution);
  util::write_file_atomic(path_for(key), buffer.str());
}

void LpCache::write_entry(std::ostream& os, const util::Digest128& key,
                          const lp::Solution& solution) {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(kFormatVersion);
  w.u64(key.hi);
  w.u64(key.lo);
  w.u32(static_cast<std::uint32_t>(solution.status));
  w.i32(solution.iterations);
  w.i32(solution.phase1_iterations);
  w.f64(solution.objective);
  w.f64(solution.max_violation);
  w.u64(solution.x.size());
  for (double v : solution.x) w.f64(v);
  w.i32(solution.refactorizations);
  w.u8(solution.warm_started ? 1 : 0);
  w.u8(solution.basis.has_value() ? 1 : 0);
  if (solution.basis.has_value()) {
    w.u64(solution.basis->state.size());
    for (lp::VarStatus s : solution.basis->state) {
      w.u8(static_cast<std::uint8_t>(s));
    }
    w.u64(solution.basis->basic.size());
    for (std::int32_t row : solution.basis->basic) w.i32(row);
  }
  const std::uint64_t checksum = util::content_checksum(w.bytes());
  w.u64(checksum);
  os.write(w.bytes().data(), static_cast<std::streamsize>(w.bytes().size()));
}

std::optional<lp::Solution> LpCache::read_entry(std::istream& is,
                                                const util::Digest128& key) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string data = buffer.str();
  ByteReader r(data);

  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  util::Digest128 stored;
  if (!r.u32(magic) || magic != kMagic) return std::nullopt;
  // v1 (basis-less) entries are still accepted so existing cache
  // directories survive the upgrade; anything else is stale or foreign.
  if (!r.u32(version) || (version != kFormatVersion && version != 1)) {
    return std::nullopt;
  }
  if (!r.u64(stored.hi) || !r.u64(stored.lo) || !(stored == key)) {
    return std::nullopt;
  }

  lp::Solution solution;
  std::uint32_t status = 0;
  std::uint64_t count = 0;
  if (!r.u32(status) || status > static_cast<std::uint32_t>(
                                     lp::SolveStatus::kIterationLimit)) {
    return std::nullopt;
  }
  solution.status = static_cast<lp::SolveStatus>(status);
  if (!r.i32(solution.iterations) || !r.i32(solution.phase1_iterations) ||
      !r.f64(solution.objective) || !r.f64(solution.max_violation) ||
      !r.u64(count)) {
    return std::nullopt;
  }
  // A truncated x array must fail before allocation, not throw bad_alloc
  // on a garbage count.
  if (r.remaining() < 8 || (r.remaining() - 8) / 8 < count) return std::nullopt;
  solution.x.resize(static_cast<std::size_t>(count));
  for (double& v : solution.x) {
    if (!r.f64(v)) return std::nullopt;
  }

  if (version >= 2) {
    std::uint8_t warm = 0;
    std::uint8_t has_basis = 0;
    if (!r.i32(solution.refactorizations) || !r.u8(warm) || warm > 1 ||
        !r.u8(has_basis) || has_basis > 1) {
      return std::nullopt;
    }
    solution.warm_started = warm != 0;
    if (has_basis != 0) {
      lp::Basis basis;
      std::uint64_t num_states = 0;
      if (!r.vec_size(num_states, 1)) return std::nullopt;
      basis.state.resize(static_cast<std::size_t>(num_states));
      for (lp::VarStatus& s : basis.state) {
        std::uint8_t raw = 0;
        if (!r.u8(raw) || raw > static_cast<std::uint8_t>(lp::VarStatus::kBasic)) {
          return std::nullopt;
        }
        s = static_cast<lp::VarStatus>(raw);
      }
      std::uint64_t num_basic = 0;
      if (!r.vec_size(num_basic, 4)) return std::nullopt;
      basis.basic.resize(static_cast<std::size_t>(num_basic));
      for (std::int32_t& row : basis.basic) {
        // Basic entries index into state[]; anything outside is corruption.
        if (!r.i32(row) || row < 0 ||
            static_cast<std::uint64_t>(row) >= num_states) {
          return std::nullopt;
        }
      }
      solution.basis = std::move(basis);
    }
  }

  const std::size_t payload_size = r.position();
  std::uint64_t checksum = 0;
  if (!r.u64(checksum) || r.remaining() != 0) return std::nullopt;
  if (checksum != util::content_checksum(
                      std::string_view(data).substr(0, payload_size))) {
    return std::nullopt;
  }
  return solution;
}

CachedLp solve_overlay_lp_cached(const net::OverlayInstance& instance,
                                 const LpBuildOptions& build,
                                 const lp::SolveOptions& solve,
                                 LpCache* cache, bool warm_start) {
  CachedLp out;
  {
    OMN_TRACE_SPAN("lp.build");
    out.lp = build_overlay_lp(instance, build);
  }
  if (cache == nullptr) {
    OMN_TRACE_SPAN("lp.solve");
    out.solution = lp::SimplexSolver().solve(out.lp.model, solve);
    return out;
  }
  const util::Digest128 key = LpCache::key(instance, build, solve);
  if (std::optional<lp::Solution> hit = cache->find(key)) {
    // Structural backstop against a (vanishingly unlikely) digest
    // collision or a foreign file dropped into the cache directory: an
    // optimal point must match the rebuilt model's dimension.  Non-optimal
    // statuses carry no point that downstream code reads.
    if (hit->status != lp::SolveStatus::kOptimal ||
        hit->x.size() == static_cast<std::size_t>(out.lp.model.num_variables())) {
      out.solution = std::move(*hit);
      out.cache_hit = true;
      // A disk hit from another process may carry a basis this process has
      // not yet indexed; feed it into the shape index so later near-miss
      // solves can warm-start from it.
      if (out.solution.status == lp::SolveStatus::kOptimal &&
          out.solution.basis.has_value()) {
        cache->note_basis(lp_shape_digest(instance, build),
                          *out.solution.basis);
      }
      return out;
    }
  }
  lp::SolveOptions effective = solve;
  if (warm_start) {
    if (std::optional<lp::Basis> basis =
            cache->find_basis(lp_shape_digest(instance, build))) {
      effective.warm_start_basis = std::move(*basis);
    }
  }
  {
    OMN_TRACE_SPAN("lp.solve");
    out.solution = lp::SimplexSolver().solve(out.lp.model, effective);
  }
  // Insert under the caller's key: warm_start_basis is excluded from the
  // key, and an optimal warm-started point answers cold callers too (same
  // objective; possibly a different vertex — see the header caveat).
  cache->insert(key, out.solution);
  if (out.solution.status == lp::SolveStatus::kOptimal &&
      out.solution.basis.has_value()) {
    cache->note_basis(lp_shape_digest(instance, build), *out.solution.basis);
  }
  return out;
}

}  // namespace omn::core
