#include "omn/core/design_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace omn::core {

namespace {

constexpr const char* kMagic = "omn-design";
constexpr const char* kVersion = "v1";

void emit(std::ostream& os, const char* tag,
          const std::vector<std::uint8_t>& bits) {
  os << tag << ' ' << bits.size() << ' ';
  for (std::uint8_t b : bits) os << (b ? '1' : '0');
  os << '\n';
}

std::vector<std::uint8_t> read_bits(std::istream& is, const char* tag,
                                    std::size_t expected) {
  std::string got;
  std::size_t count = 0;
  std::string bits;
  if (!(is >> got >> count >> bits) || got != tag) {
    throw std::runtime_error(std::string("load_design: expected section ") +
                             tag);
  }
  if (count != expected || bits.size() != expected) {
    throw std::runtime_error(
        std::string("load_design: size mismatch in section ") + tag);
  }
  std::vector<std::uint8_t> out(expected, 0);
  for (std::size_t i = 0; i < expected; ++i) {
    if (bits[i] != '0' && bits[i] != '1') {
      throw std::runtime_error("load_design: non-binary digit");
    }
    out[i] = bits[i] == '1' ? 1 : 0;
  }
  return out;
}

}  // namespace

void save_design(const Design& design, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  emit(os, "z", design.z);
  emit(os, "y", design.y);
  emit(os, "x", design.x);
}

Design load_design(std::istream& is, const net::OverlayInstance& inst) {
  std::string magic;
  std::string version;
  if (!(is >> magic >> version) || magic != kMagic || version != kVersion) {
    throw std::runtime_error("load_design: bad header");
  }
  Design d;
  d.z = read_bits(is, "z", static_cast<std::size_t>(inst.num_reflectors()));
  d.y = read_bits(is, "y",
                  static_cast<std::size_t>(inst.num_sources()) *
                      static_cast<std::size_t>(inst.num_reflectors()));
  d.x = read_bits(is, "x", inst.rd_edges().size());
  return d;
}

std::string design_to_text(const Design& design) {
  std::ostringstream os;
  save_design(design, os);
  return os.str();
}

Design design_from_text(const std::string& text,
                        const net::OverlayInstance& inst) {
  std::istringstream is(text);
  return load_design(is, inst);
}

void save_design_file(const Design& design, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_design: cannot open " + path);
  save_design(design, os);
}

Design load_design_file(const std::string& path,
                        const net::OverlayInstance& inst) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_design: cannot open " + path);
  return load_design(is, inst);
}

}  // namespace omn::core
