#include "omn/core/design_io.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "omn/util/parse.hpp"

namespace omn::core {

namespace {

constexpr const char* kMagic = "omn-design";
constexpr const char* kVersion = "v1";

void emit(std::ostream& os, const char* tag,
          const std::vector<std::uint8_t>& bits) {
  os << tag << ' ' << bits.size() << ' ';
  for (std::uint8_t b : bits) os << (b ? '1' : '0');
  os << '\n';
}

/// Reads one bit section.  `got` is the section tag when the caller
/// already consumed it (scanning past the meta block); empty otherwise.
std::vector<std::uint8_t> read_bits(std::istream& is, std::string got,
                                    const char* tag, std::size_t expected) {
  if (got.empty()) is >> got;
  std::size_t count = 0;
  std::string bits;
  if (!(is >> count >> bits) || got != tag) {
    throw std::runtime_error(std::string("load_design: expected section ") +
                             tag);
  }
  if (count != expected || bits.size() != expected) {
    throw std::runtime_error(
        std::string("load_design: size mismatch in section ") + tag);
  }
  std::vector<std::uint8_t> out(expected, 0);
  for (std::size_t i = 0; i < expected; ++i) {
    if (bits[i] != '0' && bits[i] != '1') {
      throw std::runtime_error("load_design: non-binary digit");
    }
    out[i] = bits[i] == '1' ? 1 : 0;
  }
  return out;
}

// Strict meta value parsers on util::parse_count / util::parse_double —
// the std::sto* family stops at the first non-numeric byte, so a corrupt
// line like `meta attempts 8x` would silently load as 8 (and stoull
// NEGATES a "-1" into 2^64-1); the util helpers require the full token
// and reject sign prefixes on unsigned fields, so corruption raises
// instead of loading a plausible-looking wrong value.  Throwing
// std::exception suffices: apply_meta converts anything thrown into the
// canonical error.

std::uint64_t meta_u64(const std::string& value) {
  const std::optional<std::size_t> parsed = util::parse_count(value);
  if (!parsed.has_value()) throw std::invalid_argument("bad u64");
  return static_cast<std::uint64_t>(*parsed);
}

int meta_int(const std::string& value) {
  std::string_view text = value;
  bool negative = false;
  if (!text.empty() && text.front() == '-') {
    negative = true;
    text.remove_prefix(1);
  }
  const std::optional<std::size_t> parsed = util::parse_count(text);
  if (!parsed.has_value() ||
      *parsed > static_cast<std::size_t>(std::numeric_limits<int>::max())) {
    throw std::invalid_argument("bad int");
  }
  const int magnitude = static_cast<int>(*parsed);
  return negative ? -magnitude : magnitude;
}

double meta_double(const std::string& value) {
  const std::optional<double> parsed = util::parse_double(value);
  if (!parsed.has_value()) throw std::invalid_argument("bad double");
  return *parsed;
}

void apply_meta(DesignMeta& meta, const std::string& key,
                const std::string& value) {
  try {
    if (key == "seed") {
      meta.seed = meta_u64(value);
    } else if (key == "c") {
      meta.c = meta_double(value);
    } else if (key == "attempts") {
      meta.rounding_attempts = meta_int(value);
    } else if (key == "threads") {
      meta.threads = meta_int(value);
    } else if (key == "lp_seconds") {
      meta.lp_seconds = meta_double(value);
    } else if (key == "rounding_seconds") {
      meta.rounding_seconds = meta_double(value);
    }
    // Unknown keys are ignored: newer writers may add fields.
  } catch (const std::exception&) {
    throw std::runtime_error("load_design: bad meta value for '" + key + "'");
  }
}

}  // namespace

void save_design(const Design& design, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  emit(os, "z", design.z);
  emit(os, "y", design.y);
  emit(os, "x", design.x);
}

void save_design(const Design& design, std::ostream& os,
                 const DesignMeta& meta) {
  os << kMagic << ' ' << kVersion << '\n';
  std::ostringstream m;
  m.precision(17);  // doubles round-trip exactly
  m << "meta seed " << meta.seed << '\n'
    << "meta c " << meta.c << '\n'
    << "meta attempts " << meta.rounding_attempts << '\n'
    << "meta threads " << meta.threads << '\n'
    << "meta lp_seconds " << meta.lp_seconds << '\n'
    << "meta rounding_seconds " << meta.rounding_seconds << '\n';
  os << m.str();
  emit(os, "z", design.z);
  emit(os, "y", design.y);
  emit(os, "x", design.x);
}

Design load_design(std::istream& is, const net::OverlayInstance& inst) {
  return load_design(is, inst, nullptr);
}

Design load_design(std::istream& is, const net::OverlayInstance& inst,
                   DesignMeta* meta) {
  std::string magic;
  std::string version;
  if (!(is >> magic >> version) || magic != kMagic || version != kVersion) {
    throw std::runtime_error("load_design: bad header");
  }
  std::string tag;
  if (!(is >> tag)) throw std::runtime_error("load_design: truncated file");
  while (tag == "meta") {
    std::string key;
    std::string value;
    if (!(is >> key >> value)) {
      throw std::runtime_error("load_design: truncated meta line");
    }
    if (meta != nullptr) apply_meta(*meta, key, value);
    if (!(is >> tag)) throw std::runtime_error("load_design: truncated file");
  }
  Design d;
  d.z = read_bits(is, tag, "z",
                  static_cast<std::size_t>(inst.num_reflectors()));
  d.y = read_bits(is, {}, "y",
                  static_cast<std::size_t>(inst.num_sources()) *
                      static_cast<std::size_t>(inst.num_reflectors()));
  d.x = read_bits(is, {}, "x", inst.rd_edges().size());
  return d;
}

std::string design_to_text(const Design& design) {
  std::ostringstream os;
  save_design(design, os);
  return os.str();
}

Design design_from_text(const std::string& text,
                        const net::OverlayInstance& inst) {
  std::istringstream is(text);
  return load_design(is, inst);
}

void save_design_file(const Design& design, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_design: cannot open " + path);
  save_design(design, os);
}

void save_design_file(const Design& design, const std::string& path,
                      const DesignMeta& meta) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_design: cannot open " + path);
  save_design(design, os, meta);
}

Design load_design_file(const std::string& path,
                        const net::OverlayInstance& inst) {
  return load_design_file(path, inst, nullptr);
}

Design load_design_file(const std::string& path,
                        const net::OverlayInstance& inst, DesignMeta* meta) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_design: cannot open " + path);
  return load_design(is, inst, meta);
}

}  // namespace omn::core
