#include "omn/core/design.hpp"

#include <stdexcept>

namespace omn::core {

namespace {

template <typename T>
void check_sizes(const net::OverlayInstance& inst, const std::vector<T>& z,
                 const std::vector<T>& y, const std::vector<T>& x) {
  if (z.size() != static_cast<std::size_t>(inst.num_reflectors()) ||
      y.size() != static_cast<std::size_t>(inst.num_sources()) *
                      static_cast<std::size_t>(inst.num_reflectors()) ||
      x.size() != inst.rd_edges().size()) {
    throw std::invalid_argument("Design: size mismatch with instance");
  }
}

template <typename T>
double design_cost(const net::OverlayInstance& inst, const std::vector<T>& z,
                   const std::vector<T>& y, const std::vector<T>& x) {
  check_sizes(inst, z, y, x);
  double total = 0.0;
  for (int i = 0; i < inst.num_reflectors(); ++i) {
    total += inst.reflector(i).build_cost *
             static_cast<double>(z[static_cast<std::size_t>(i)]);
  }
  for (const net::SourceReflectorEdge& e : inst.sr_edges()) {
    total += e.cost * static_cast<double>(
                          y[y_index(inst, e.source, e.reflector)]);
  }
  for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
    total += inst.rd_edges()[id].cost * static_cast<double>(x[id]);
  }
  return total;
}

}  // namespace

Design Design::zeros(const net::OverlayInstance& inst) {
  Design d;
  d.z.assign(static_cast<std::size_t>(inst.num_reflectors()), 0);
  d.y.assign(static_cast<std::size_t>(inst.num_sources()) *
                 static_cast<std::size_t>(inst.num_reflectors()),
             0);
  d.x.assign(inst.rd_edges().size(), 0);
  return d;
}

double Design::cost(const net::OverlayInstance& inst) const {
  return design_cost(inst, z, y, x);
}

void Design::close_upward(const net::OverlayInstance& inst) {
  check_sizes(inst, z, y, x);
  for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
    if (!x[id]) continue;
    const net::ReflectorSinkEdge& e = inst.rd_edges()[id];
    const int k = inst.sink(e.sink).commodity;
    y[y_index(inst, k, e.reflector)] = 1;
  }
  for (int k = 0; k < inst.num_sources(); ++k) {
    for (int i = 0; i < inst.num_reflectors(); ++i) {
      if (y[y_index(inst, k, i)]) z[static_cast<std::size_t>(i)] = 1;
    }
  }
}

void Design::prune_unused(const net::OverlayInstance& inst) {
  check_sizes(inst, z, y, x);
  std::vector<std::uint8_t> y_used(y.size(), 0);
  for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
    if (!x[id]) continue;
    const net::ReflectorSinkEdge& e = inst.rd_edges()[id];
    const int k = inst.sink(e.sink).commodity;
    y_used[y_index(inst, k, e.reflector)] = 1;
  }
  for (std::size_t s = 0; s < y.size(); ++s) {
    if (!y_used[s]) y[s] = 0;
  }
  std::vector<std::uint8_t> z_used(z.size(), 0);
  for (int k = 0; k < inst.num_sources(); ++k) {
    for (int i = 0; i < inst.num_reflectors(); ++i) {
      if (y[y_index(inst, k, i)]) z_used[static_cast<std::size_t>(i)] = 1;
    }
  }
  for (std::size_t i = 0; i < z.size(); ++i) {
    if (!z_used[i]) z[i] = 0;
  }
}

FractionalDesign FractionalDesign::zeros(const net::OverlayInstance& inst) {
  FractionalDesign d;
  d.z.assign(static_cast<std::size_t>(inst.num_reflectors()), 0.0);
  d.y.assign(static_cast<std::size_t>(inst.num_sources()) *
                 static_cast<std::size_t>(inst.num_reflectors()),
             0.0);
  d.x.assign(inst.rd_edges().size(), 0.0);
  return d;
}

double FractionalDesign::cost(const net::OverlayInstance& inst) const {
  return design_cost(inst, z, y, x);
}

}  // namespace omn::core
