#include "omn/core/design_sweep.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "omn/core/lp_cache.hpp"
#include "omn/util/timer.hpp"
#include "omn/util/trace.hpp"

namespace omn::core {

DesignSweep& DesignSweep::add_instance(std::string label,
                                       net::OverlayInstance instance) {
  instances_.emplace_back(std::move(label), std::move(instance));
  return *this;
}

DesignSweep& DesignSweep::add_config(std::string label, DesignerConfig config) {
  configs_.emplace_back(std::move(label), std::move(config));
  return *this;
}

util::ExecutionContext DesignSweep::default_context(
    const SweepOptions& options) {
  // Avoid constructing the global pool for explicitly serial sweeps.
  return options.threads == 1 ? util::ExecutionContext::serial()
                              : util::ExecutionContext::global();
}

void SweepReport::merge(const SweepReport& shard) {
  if (shard.num_instances != num_instances ||
      shard.num_configs != num_configs) {
    throw std::invalid_argument("SweepReport::merge: grid dimensions differ");
  }
  const std::size_t total = num_instances * num_configs;
  if (cells.size() != total) cells.resize(total);
  for (const SweepCell& cell : shard.cells) {
    const std::size_t index = cell.instance_index * num_configs +
                              cell.config_index;
    if (cell.instance_index >= num_instances ||
        cell.config_index >= num_configs) {
      throw std::invalid_argument("SweepReport::merge: cell outside the grid");
    }
    cells[index] = cell;
  }
  if (shard.lp_configs > lp_configs) lp_configs = shard.lp_configs;
  lp_solves += shard.lp_solves;
  lp_cache_hits += shard.lp_cache_hits;
  lp_cache_misses += shard.lp_cache_misses;
  lp_iterations += shard.lp_iterations;
  lp_phase1_iterations += shard.lp_phase1_iterations;
  lp_refactorizations += shard.lp_refactorizations;
  lp_warm_start_hits += shard.lp_warm_start_hits;
  // Shards run concurrently, so the merged wall is the slowest shard;
  // the merged cpu is the total machine time across all of them.
  if (shard.wall_seconds > wall_seconds) wall_seconds = shard.wall_seconds;
  cpu_seconds += shard.cpu_seconds;
}

std::size_t SweepReport::saved_by_reuse() const {
  const std::size_t spent = lp_solves + lp_cache_hits;
  return cells.size() > spent ? cells.size() - spent : 0;
}

util::Json to_json(const SweepReport& report) {
  util::Json j = util::Json::object();
  j.set("cells", report.cells.size());
  j.set("instances", report.num_instances);
  j.set("configs", report.num_configs);
  j.set("lp_configs", report.lp_configs);
  j.set("lp_solves", report.lp_solves);
  j.set("lp_cache_hits", report.lp_cache_hits);
  j.set("lp_cache_misses", report.lp_cache_misses);
  j.set("lp_iterations", report.lp_iterations);
  j.set("lp_phase1_iterations", report.lp_phase1_iterations);
  j.set("lp_refactorizations", report.lp_refactorizations);
  j.set("lp_warm_start_hits", report.lp_warm_start_hits);
  j.set("saved_by_reuse", report.saved_by_reuse());
  j.set("wall_seconds", report.wall_seconds);
  j.set("cpu_seconds", report.cpu_seconds);
  return j;
}

SweepReport DesignSweep::run(const SweepOptions& options) const {
  return run(options, default_context(options));
}

SweepReport DesignSweep::run(const SweepOptions& options,
                             const util::ExecutionContext& context) const {
  return run_range(0, num_cells(), options, context);
}

SweepReport DesignSweep::run_range(std::size_t begin, std::size_t end,
                                   const SweepOptions& options,
                                   const util::ExecutionContext& context) const {
  if (begin > end || end > num_cells()) {
    throw std::out_of_range("DesignSweep::run_range: bad cell range");
  }
  SweepReport report;
  report.num_instances = instances_.size();
  report.num_configs = configs_.size();
  const std::size_t count = end - begin;
  report.cells.resize(count);

  util::Timer wall;
  const util::ExecutionContext::ForOptions fan{.max_parallelism =
                                                   options.threads};

  // --- LP-reuse planner ----------------------------------------------------
  // Group configs by the exact options that shape the LP relaxation and
  // its solve; everything else (seed, c, attempts, pruning, ...) only
  // affects rounding, so configs in one group share a solve per instance.
  // Groups are computed over the FULL config list so lp_configs (and the
  // group ids) are identical for every range of the same grid.
  struct LpKey {
    LpBuildOptions build;
    lp::SolveOptions solve;
    // Warm starting changes which optimal vertex the solve can return, so
    // warm and cold configs must not share a solve.
    bool warm_start = false;
    bool operator==(const LpKey&) const = default;
  };
  std::vector<LpKey> groups;
  std::vector<std::size_t> group_of_config(configs_.size(), 0);
  for (std::size_t c = 0; c < configs_.size(); ++c) {
    const LpKey key{lp_build_options(configs_[c].second),
                    configs_[c].second.lp_options,
                    configs_[c].second.lp_warm_start};
    std::size_t g = 0;
    while (g < groups.size() && !(groups[g] == key)) ++g;
    if (g == groups.size()) groups.push_back(key);
    group_of_config[c] = g;
  }
  report.lp_configs = groups.size();
  if (count == 0) {
    report.wall_seconds = wall.seconds();
    report.cpu_seconds = report.wall_seconds;
    return report;
  }

  const auto config_for_cell = [&](std::size_t i, std::size_t c) {
    DesignerConfig config = configs_[c].second;
    if (options.reseed_per_instance) {
      config.seed += static_cast<std::uint64_t>(i);
    }
    // An explicit sweep-level cap is a budget on TOTAL threads, so nested
    // rounding attempts must not fan out past it: grid claimants are
    // bounded by max_parallelism, and each cell runs its attempts inline.
    // Uncapped sweeps (threads == 0) share the context's pool at both
    // levels — one pool, work-stealing, no oversubscription.  The design
    // is bit-identical either way.
    if (options.threads != 0) config.threads = 1;
    return config;
  };
  const auto fill_cell_labels = [&](std::size_t index) -> SweepCell& {
    SweepCell& cell = report.cells[index - begin];
    cell.instance_index = index / configs_.size();
    cell.config_index = index % configs_.size();
    cell.instance_label = instances_[cell.instance_index].first;
    cell.config_label = configs_[cell.config_index].first;
    return cell;
  };

  // The cross-run LP cache, when the caller installed one on the context.
  // Both paths route their solves through solve_overlay_lp_cached, so a
  // warm cache removes every simplex run from the sweep.
  const std::shared_ptr<LpCache> cache = context.find_service<LpCache>();

  if (!options.reuse_lp) {
    // Ungrouped: every cell builds and solves its own LP (the pre-planner
    // behaviour, kept for measurement and bit-identity tests).  The
    // designer consults the context's cache itself; the per-cell outcome
    // lands in result.lp_cache_hit, tallied below.
    context.parallel_for(
        count,
        [&](std::size_t t) {
          SweepCell& cell = fill_cell_labels(begin + t);
          OMN_TRACE_SPAN(
              [&] { return "sweep.cell " + std::to_string(begin + t); });
          const DesignerConfig config =
              config_for_cell(cell.instance_index, cell.config_index);
          util::Timer cell_timer;
          cell.result = OverlayDesigner(config).design(
              instances_[cell.instance_index].second, context);
          cell.seconds = cell_timer.seconds();
        },
        fan);
    for (const SweepCell& cell : report.cells) {
      if (cell.result.lp_cache_hit) {
        ++report.lp_cache_hits;
      } else {
        ++report.lp_solves;
        if (cache != nullptr) ++report.lp_cache_misses;
        report.lp_iterations +=
            static_cast<std::size_t>(cell.result.lp_iterations);
        report.lp_phase1_iterations +=
            static_cast<std::size_t>(cell.result.lp_phase1_iterations);
        report.lp_refactorizations +=
            static_cast<std::size_t>(cell.result.lp_refactorizations);
        if (cell.result.lp_warm_start) ++report.lp_warm_start_hits;
      }
    }
    report.wall_seconds = wall.seconds();
    report.cpu_seconds = report.wall_seconds;
    return report;
  }

  // Phase 1: one LP build per (instance, distinct LP config) PAIR THE
  // RANGE ACTUALLY TOUCHES, with the solve served from the cache when
  // possible.  For the full range this is every (instance, group) pair in
  // (instance, group) order — exactly the pre-range behaviour.
  struct SolvedLp {
    OverlayLp lp;
    lp::Solution solution;
    bool cache_hit = false;
    double seconds = 0.0;
  };
  constexpr std::size_t kUnused = static_cast<std::size_t>(-1);
  std::vector<std::size_t> solved_index(instances_.size() * groups.size(),
                                        kUnused);
  std::vector<std::size_t> needed;  // flat (i, g) keys, lexicographic
  for (std::size_t index = begin; index < end; ++index) {
    const std::size_t i = index / configs_.size();
    const std::size_t g = group_of_config[index % configs_.size()];
    const std::size_t key = i * groups.size() + g;
    if (solved_index[key] == kUnused) {
      solved_index[key] = 0;  // mark; the real slot is assigned below
      needed.push_back(key);
    }
  }
  // Slots follow `needed`'s first-touch scan order — a pure function of
  // the range and the config list (NOT necessarily sorted by (i, g):
  // group ids repeat non-monotonically when configs interleave groups).
  for (std::size_t n = 0; n < needed.size(); ++n) solved_index[needed[n]] = n;

  std::vector<SolvedLp> solved(needed.size());
  std::atomic<std::size_t> solves{0};
  std::atomic<std::size_t> cache_hits{0};
  std::atomic<std::size_t> iterations{0};
  std::atomic<std::size_t> phase1_iterations{0};
  std::atomic<std::size_t> refactorizations{0};
  std::atomic<std::size_t> warm_hits{0};
  context.parallel_for(
      solved.size(),
      [&](std::size_t t) {
        const std::size_t i = needed[t] / groups.size();
        const std::size_t g = needed[t] % groups.size();
        OMN_TRACE_SPAN([&] {
          return "sweep.lp_group i" + std::to_string(i) + " g" +
                 std::to_string(g);
        });
        util::Timer timer;
        SolvedLp& s = solved[t];
        CachedLp cached = solve_overlay_lp_cached(
            instances_[i].second, groups[g].build, groups[g].solve,
            cache.get(), groups[g].warm_start);
        s.lp = std::move(cached.lp);
        s.solution = std::move(cached.solution);
        s.cache_hit = cached.cache_hit;
        s.seconds = timer.seconds();
        if (s.cache_hit) {
          cache_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          solves.fetch_add(1, std::memory_order_relaxed);
          iterations.fetch_add(static_cast<std::size_t>(s.solution.iterations),
                               std::memory_order_relaxed);
          phase1_iterations.fetch_add(
              static_cast<std::size_t>(s.solution.phase1_iterations),
              std::memory_order_relaxed);
          refactorizations.fetch_add(
              static_cast<std::size_t>(s.solution.refactorizations),
              std::memory_order_relaxed);
          if (s.solution.warm_started) {
            warm_hits.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      fan);
  report.lp_solves = solves.load();
  report.lp_cache_hits = cache_hits.load();
  if (cache != nullptr) report.lp_cache_misses = report.lp_solves;
  report.lp_iterations = iterations.load();
  report.lp_phase1_iterations = phase1_iterations.load();
  report.lp_refactorizations = refactorizations.load();
  report.lp_warm_start_hits = warm_hits.load();

  // Phase 2: fan the rounding cells out over the shared solves.  Nested
  // rounding attempts reuse the same context (and pool), so a sweep never
  // oversubscribes the machine.
  context.parallel_for(
      count,
      [&](std::size_t t) {
        SweepCell& cell = fill_cell_labels(begin + t);
        OMN_TRACE_SPAN(
            [&] { return "sweep.cell " + std::to_string(begin + t); });
        const std::size_t i = cell.instance_index;
        const std::size_t c = cell.config_index;
        const DesignerConfig config = config_for_cell(i, c);
        const SolvedLp& s =
            solved[solved_index[i * groups.size() + group_of_config[c]]];
        util::Timer cell_timer;
        cell.result = OverlayDesigner(config).design_from_lp(
            instances_[i].second, s.lp, s.solution, context);
        cell.result.lp_seconds = s.seconds;
        cell.result.lp_cache_hit = s.cache_hit;
        cell.seconds = cell_timer.seconds();
      },
      fan);
  report.wall_seconds = wall.seconds();
  report.cpu_seconds = report.wall_seconds;
  return report;
}

}  // namespace omn::core
