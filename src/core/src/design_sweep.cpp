#include "omn/core/design_sweep.hpp"

#include <algorithm>
#include <thread>

#include "omn/util/thread_pool.hpp"
#include "omn/util/timer.hpp"

namespace omn::core {

DesignSweep& DesignSweep::add_instance(std::string label,
                                       net::OverlayInstance instance) {
  instances_.emplace_back(std::move(label), std::move(instance));
  return *this;
}

DesignSweep& DesignSweep::add_config(std::string label, DesignerConfig config) {
  configs_.emplace_back(std::move(label), std::move(config));
  return *this;
}

SweepReport DesignSweep::run(const SweepOptions& options) const {
  SweepReport report;
  report.num_instances = instances_.size();
  report.num_configs = configs_.size();
  report.cells.resize(num_cells());

  util::Timer wall;
  const auto run_cell = [&](std::size_t index) {
    const std::size_t i = index / configs_.size();
    const std::size_t c = index % configs_.size();

    SweepCell& cell = report.cells[index];
    cell.instance_index = i;
    cell.config_index = c;
    cell.instance_label = instances_[i].first;
    cell.config_label = configs_[c].first;

    // The grid level owns the machine; a cell that also fanned out its
    // rounding attempts would oversubscribe it.
    DesignerConfig config = configs_[c].second;
    config.threads = 1;
    if (options.reseed_per_instance) {
      config.seed += static_cast<std::uint64_t>(i);
    }

    util::Timer cell_timer;
    cell.result = OverlayDesigner(config).design(instances_[i].second);
    cell.seconds = cell_timer.seconds();
  };

  const std::size_t total_threads =
      options.threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : options.threads;
  if (num_cells() > 1 && total_threads > 1) {
    util::ThreadPool pool(
        std::min<std::size_t>(total_threads - 1, num_cells() - 1));
    pool.parallel_for(num_cells(),
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t k = begin; k < end; ++k) run_cell(k);
                      });
  } else {
    for (std::size_t k = 0; k < num_cells(); ++k) run_cell(k);
  }
  report.wall_seconds = wall.seconds();
  return report;
}

}  // namespace omn::core
