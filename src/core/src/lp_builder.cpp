#include "omn/core/lp_builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace omn::core {

OverlayLp build_overlay_lp(const net::OverlayInstance& inst,
                           const LpBuildOptions& options) {
  inst.validate();
  OverlayLp out;
  out.options = options;
  lp::Model& m = out.model;

  const int S = inst.num_sources();
  const int R = inst.num_reflectors();
  const int D = inst.num_sinks();

  // ---- variables ----------------------------------------------------------
  out.z_var.assign(static_cast<std::size_t>(R), -1);
  for (int i = 0; i < R; ++i) {
    out.z_var[static_cast<std::size_t>(i)] = m.add_variable(
        0.0, 1.0, inst.reflector(i).build_cost, "z" + std::to_string(i));
  }

  out.y_var.assign(static_cast<std::size_t>(S) * static_cast<std::size_t>(R), -1);
  for (const net::SourceReflectorEdge& e : inst.sr_edges()) {
    out.y_var[y_index(inst, e.source, e.reflector)] =
        m.add_variable(0.0, 1.0, e.cost,
                       "y" + std::to_string(e.source) + "_" +
                           std::to_string(e.reflector));
  }

  out.x_var.assign(inst.rd_edges().size(), -1);
  out.x_weight.assign(inst.rd_edges().size(), 0.0);
  out.sink_demand.assign(static_cast<std::size_t>(D), 0.0);
  for (int j = 0; j < D; ++j) {
    out.sink_demand[static_cast<std::size_t>(j)] = inst.sink_demand_weight(j);
  }
  for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
    const net::ReflectorSinkEdge& e = inst.rd_edges()[id];
    const int k = inst.sink(e.sink).commodity;
    const int sr = inst.find_sr_edge(k, e.reflector);
    if (sr < 0) continue;  // no source path: x^k_ij cannot exist
    const double upper =
        options.rd_capacities && e.capacity ? std::min(1.0, *e.capacity) : 1.0;
    out.x_var[id] = m.add_variable(0.0, upper, e.cost,
                                   "x" + std::to_string(e.reflector) + "_" +
                                       std::to_string(e.sink));
    const double w =
        net::OverlayInstance::path_weight(inst.sr_edge(sr).loss, e.loss);
    out.x_weight[id] =
        std::min(w, out.sink_demand[static_cast<std::size_t>(e.sink)]);
  }

  // ---- (1) y <= z ----------------------------------------------------------
  for (const net::SourceReflectorEdge& e : inst.sr_edges()) {
    const int yv = out.y_var[y_index(inst, e.source, e.reflector)];
    const int row = m.add_row(lp::RowSense::kLessEqual, 0.0,
                              "link_yz_" + std::to_string(e.source) + "_" +
                                  std::to_string(e.reflector));
    m.add_coefficient(row, yv, 1.0);
    m.add_coefficient(row, out.z_var[static_cast<std::size_t>(e.reflector)], -1.0);
  }

  // ---- (2) x <= y ----------------------------------------------------------
  for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
    const int xv = out.x_var[id];
    if (xv < 0) continue;
    const net::ReflectorSinkEdge& e = inst.rd_edges()[id];
    const int k = inst.sink(e.sink).commodity;
    const int yv = out.y_var[y_index(inst, k, e.reflector)];
    const int row = m.add_row(lp::RowSense::kLessEqual, 0.0,
                              "link_xy_" + std::to_string(id));
    m.add_coefficient(row, xv, 1.0);
    m.add_coefficient(row, yv, -1.0);
  }

  // ---- (3) fanout vs z and (4) fanout vs y --------------------------------
  std::vector<int> fanout_row(static_cast<std::size_t>(R), -1);
  for (int i = 0; i < R; ++i) {
    fanout_row[static_cast<std::size_t>(i)] = m.add_row(
        lp::RowSense::kLessEqual, 0.0, "fanout_" + std::to_string(i));
    m.add_coefficient(fanout_row[static_cast<std::size_t>(i)],
                      out.z_var[static_cast<std::size_t>(i)],
                      -inst.reflector(i).fanout);
  }
  std::vector<int> cut_row;
  if (options.cutting_plane) {
    cut_row.assign(static_cast<std::size_t>(S) * static_cast<std::size_t>(R), -1);
    for (const net::SourceReflectorEdge& e : inst.sr_edges()) {
      const std::size_t slot = y_index(inst, e.source, e.reflector);
      cut_row[slot] = m.add_row(lp::RowSense::kLessEqual, 0.0,
                                "cut_" + std::to_string(e.source) + "_" +
                                    std::to_string(e.reflector));
      m.add_coefficient(cut_row[slot], out.y_var[slot],
                        -inst.reflector(e.reflector).fanout);
    }
  }
  for (std::size_t id = 0; id < inst.rd_edges().size(); ++id) {
    const int xv = out.x_var[id];
    if (xv < 0) continue;
    const net::ReflectorSinkEdge& e = inst.rd_edges()[id];
    const int k = inst.sink(e.sink).commodity;
    const double usage =
        options.bandwidth_extension ? inst.source(k).bandwidth : 1.0;
    m.add_coefficient(fanout_row[static_cast<std::size_t>(e.reflector)], xv,
                      usage);
    if (options.cutting_plane) {
      m.add_coefficient(cut_row[y_index(inst, k, e.reflector)], xv, usage);
    }
  }

  // ---- (5) weight demands --------------------------------------------------
  for (int j = 0; j < D; ++j) {
    const int row =
        m.add_row(lp::RowSense::kGreaterEqual,
                  out.sink_demand[static_cast<std::size_t>(j)],
                  "demand_" + std::to_string(j));
    bool any = false;
    for (int id : inst.sink_in(j)) {
      const int xv = out.x_var[static_cast<std::size_t>(id)];
      if (xv < 0) continue;
      m.add_coefficient(row, xv, out.x_weight[static_cast<std::size_t>(id)]);
      any = true;
    }
    if (!any) {
      // The sink has no usable path at all: the LP is trivially infeasible;
      // keep the row so the solver reports it.
    }
  }

  // ---- (8) reflector stream-ingest capacities (extension 6.2) --------------
  if (options.reflector_stream_capacities) {
    std::vector<int> cap_row(static_cast<std::size_t>(R), -1);
    for (int i = 0; i < R; ++i) {
      if (!inst.reflector(i).stream_capacity) continue;
      cap_row[static_cast<std::size_t>(i)] =
          m.add_row(lp::RowSense::kLessEqual, *inst.reflector(i).stream_capacity,
                    "ycap_" + std::to_string(i));
    }
    for (const net::SourceReflectorEdge& e : inst.sr_edges()) {
      const int row = cap_row[static_cast<std::size_t>(e.reflector)];
      if (row < 0) continue;
      m.add_coefficient(row, out.y_var[y_index(inst, e.source, e.reflector)],
                        1.0);
    }
  }

  // ---- (9) color constraints ------------------------------------------------
  if (options.color_constraints) {
    const int colors = inst.num_colors();
    for (int j = 0; j < D; ++j) {
      // One row per (sink, color) that actually has candidate edges.
      std::vector<int> row_of_color(static_cast<std::size_t>(colors), -1);
      for (int id : inst.sink_in(j)) {
        const int xv = out.x_var[static_cast<std::size_t>(id)];
        if (xv < 0) continue;
        const int color =
            inst.reflector(inst.rd_edges()[static_cast<std::size_t>(id)].reflector)
                .color;
        int& row = row_of_color[static_cast<std::size_t>(color)];
        if (row < 0) {
          row = m.add_row(lp::RowSense::kLessEqual, 1.0,
                          "color_" + std::to_string(j) + "_" +
                              std::to_string(color));
        }
        m.add_coefficient(row, xv, 1.0);
      }
    }
  }

  return out;
}

FractionalDesign OverlayLp::extract(const net::OverlayInstance& inst,
                                    const std::vector<double>& point) const {
  FractionalDesign d = FractionalDesign::zeros(inst);
  for (std::size_t i = 0; i < z_var.size(); ++i) {
    if (z_var[i] >= 0) d.z[i] = point.at(static_cast<std::size_t>(z_var[i]));
  }
  for (std::size_t s = 0; s < y_var.size(); ++s) {
    if (y_var[s] >= 0) d.y[s] = point.at(static_cast<std::size_t>(y_var[s]));
  }
  for (std::size_t e = 0; e < x_var.size(); ++e) {
    if (x_var[e] >= 0) d.x[e] = point.at(static_cast<std::size_t>(x_var[e]));
  }
  return d;
}

}  // namespace omn::core
