#pragma once
// DesignState: the incremental-redesign primitive behind `omn_design
// serve` (paper Section 1.3: the algorithm "can be rerun as often as
// needed so that the overlay network adapts to changes").
//
// A DesignState owns a mutable OverlayInstance plus everything warm that
// successive redesigns can reuse:
//
//  - the ExecutionContext (one shared pool across every redesign);
//  - an LpCache service on that context when DesignerConfig::lp_warm_start
//    is set (installed automatically if the caller did not provide one):
//    the byte tier serves *identical* re-solves (e.g. after a
//    fail + restore pair returns the instance to a prior state) with zero
//    pivots, and the shape index warm-starts *same-shaped* re-solves
//    (edge-loss/cost/fanout deltas) from the previous optimal basis;
//  - the last DesignResult, for callers that report deltas.
//
// Mutators map one-to-one onto the serve event protocol
// (omn/serve/event.hpp): fail/restore edges by endpoint *names*, adjust a
// reflector's fanout, add a fully-wired reflector, remove one by rebuild.
// Names — not edge ids — key the failed-edge registry, so the registry
// survives the index remapping a node removal performs.
//
// Determinism contract: with lp_warm_start OFF every redesign() is
// bit-identical to a cold OverlayDesigner::design() on the same mutated
// instance (same config, any context) — the differential churn suite in
// tests/test_serve.cpp asserts this after every event.  With it ON the
// redesign may land on a different optimal vertex; status, feasibility,
// and the LP objective still match the cold solve.
//
// Threading: a DesignState is confined to one thread.  The redesign
// itself fans out on the shared context, and the LpCache service is
// internally synchronized (other threads may share it concurrently), but
// the mutators and redesign() must not race each other.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "omn/core/designer.hpp"
#include "omn/net/instance.hpp"
#include "omn/util/execution_context.hpp"
#include "omn/util/hash.hpp"

namespace omn::core {

/// The loss a failed edge is pinned at.  Close enough to 1 that the LP
/// routes around the edge whenever any alternative exists, below 1 so the
/// instance stays valid and the weight transform stays finite.
inline constexpr double kFailedEdgeLoss = 0.999999;

/// One failed edge, keyed by endpoint names (stable across the index
/// remapping of node removals), remembering the loss to restore.
struct FailedEdge {
  /// false = source->reflector edge (a = source, b = reflector);
  /// true  = reflector->sink edge  (a = reflector, b = sink).
  bool rd = false;
  std::string a;
  std::string b;
  double original_loss = 0.0;

  bool operator==(const FailedEdge&) const = default;
};

class DesignState {
 public:
  /// Takes ownership of `base` (validated here).  When
  /// `config.lp_warm_start` is set and `context` carries no LpCache
  /// service, a memory-only cache is installed on the context (shared by
  /// every copy of that context handle).
  DesignState(net::OverlayInstance base, DesignerConfig config,
              util::ExecutionContext context);

  // ---- event-protocol mutators -------------------------------------------
  //
  // All mutators validate first and throw std::invalid_argument on a
  // protocol error (unknown name, duplicate add, double fail, restore of a
  // live edge, non-positive fanout) WITHOUT mutating state, so a serve
  // session can reject the event and keep running.

  /// Fails the named edge: pins its loss at kFailedEdgeLoss and records
  /// the original for restore_edge.  `rd` selects the layer as in
  /// FailedEdge.
  void fail_edge(bool rd, const std::string& a, const std::string& b);

  /// Restores a previously failed edge to its exact original loss — a
  /// subsequent redesign with warm start off is bit-identical to a state
  /// where the edge never failed.
  void restore_edge(bool rd, const std::string& a, const std::string& b);

  /// Sets the named reflector's fanout (shape-preserving: warm starts
  /// survive).
  void set_fanout(const std::string& reflector, double fanout);

  /// Adds a reflector wired to every source and every sink with the given
  /// uniform edge cost/loss (a "node join": the LP shape changes, so the
  /// next redesign is a cold solve).
  void add_reflector(const std::string& name, double build_cost,
                     double fanout, int color, double edge_cost,
                     double edge_loss);

  /// Removes the named reflector and its edges (a "node leave"); rebuilds
  /// the instance, remapping indices.  Failed-edge records for its edges
  /// are dropped.
  void remove_reflector(const std::string& name);

  /// Escape hatch for callers outside the event protocol (e.g. the
  /// adaptive-redesign example's loss drift): mutates the instance
  /// in-place, then re-validates.  The caller must not rename or remove
  /// entities that the failed-edge registry references.
  void apply(const std::function<void(net::OverlayInstance&)>& mutate);

  // ---- redesign -----------------------------------------------------------

  /// Runs the full designer pipeline on the current instance (warm where
  /// the config and cache allow) and stores the result as last().
  const DesignResult& redesign();

  /// The result of the most recent redesign().  Must not be called before
  /// the first redesign (asserted via has_design()).
  const DesignResult& last() const;
  bool has_design() const { return has_design_; }

  /// Content digest of the last redesign's 0/1 design bits — equal
  /// digests mean byte-identical designs (the serve crash-replay check).
  util::Digest128 design_digest() const;

  // ---- state access -------------------------------------------------------

  const net::OverlayInstance& instance() const { return instance_; }
  const DesignerConfig& config() const { return config_; }
  const util::ExecutionContext& context() const { return context_; }

  /// Failed edges in fail order (what a journal snapshot persists).
  const std::vector<FailedEdge>& failed_edges() const { return failed_; }

  /// Replaces the registry wholesale when resuming from a journal
  /// snapshot: the snapshot instance already carries the pinned losses,
  /// so only the restore bookkeeping is adopted.  Every record must name
  /// an existing edge (throws std::invalid_argument otherwise).
  void adopt_failed_edges(std::vector<FailedEdge> failed);

  // ---- name lookups (exposed for the serve layer's error messages) -------

  int find_source(const std::string& name) const;
  int find_reflector(const std::string& name) const;
  int find_sink(const std::string& name) const;

 private:
  /// The registry entry for (rd, a, b), or -1.
  int find_failed(bool rd, const std::string& a, const std::string& b) const;
  /// Resolves (rd, a, b) to an edge id, throwing std::invalid_argument
  /// with a protocol-grade message when either endpoint or the edge is
  /// missing.
  int resolve_edge(bool rd, const std::string& a, const std::string& b) const;

  net::OverlayInstance instance_;
  DesignerConfig config_;
  util::ExecutionContext context_;
  std::vector<FailedEdge> failed_;
  DesignResult last_;
  bool has_design_ = false;
};

}  // namespace omn::core
