#pragma once
// Builds the LP relaxation of the paper's IP (Section 2):
//
//   min  sum_i r_i z_i + sum_{i,k} c_ki y^k_i + sum_{i,j,k} c_ij x^k_ij
//   s.t. (1) y^k_i <= z_i
//        (2) x^k_ij <= y^k_i
//        (3) sum_{k,j} [B^k] x^k_ij <= F_i z_i
//        (4) sum_j   [B^k] x^k_ij <= F_i y^k_i      (cutting plane)
//        (5) sum_i  x^k_ij w^k_ij >= W^k_j
//        (7') sum_k x^k_ij <= u_ij                   (extension 6.3)
//        (9) sum_{i in R_l} x^k_ij <= 1              (extension 6.4, colors)
//        0 <= x, y, z <= 1
//
// Variables exist only where edges exist: y^k_i requires the (k, i) source
// edge, x^k_ij requires both the (k(j), i) source edge and the (i, j)
// reflector edge.  Weights are clamped to w <= W (paper: "it never helps
// to have more weight on an edge than the one that a sink demands").
// [B^k] denotes the bandwidth coefficient under extension 6.1 (1 otherwise).

#include <cstdint>
#include <vector>

#include "omn/core/design.hpp"
#include "omn/lp/model.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/net/instance.hpp"

namespace omn::core {

struct LpBuildOptions {
  /// Include the redundant-but-useful cutting plane (4).
  bool cutting_plane = true;
  /// Extension 6.1: weight fanout usage by the stream's bandwidth B^k.
  bool bandwidth_extension = false;
  /// Extension 6.3: per (reflector, sink)-edge capacities (x <= u).
  bool rd_capacities = false;
  /// Extension 6.2, constraint (8): per-reflector stream-ingest capacities
  /// (sum_k y^k_i <= u_i).  The paper shows only a c log n violation
  /// guarantee is achievable for the rounded solution (it would otherwise
  /// give a constant-factor set-cover approximation).
  bool reflector_stream_capacities = false;
  /// Extension 6.4: at most one copy per (sink, ISP color).
  bool color_constraints = false;

  /// Equal build options produce the same LP for a given instance — the
  /// property DesignSweep's LP-reuse planner keys on.
  bool operator==(const LpBuildOptions&) const = default;
};

/// The compiled LP plus index maps back to the design's slots.
struct OverlayLp {
  lp::Model model;

  /// Variable index per reflector (z_i); always present.
  std::vector<int> z_var;
  /// Variable index per (k, i) flat slot, or -1 when the edge is absent.
  std::vector<int> y_var;
  /// Variable index per rd-edge id, or -1 when no source path exists.
  std::vector<int> x_var;

  /// Clamped weight w^k_ij per rd-edge id (0 when x_var == -1).
  std::vector<double> x_weight;
  /// Demand weight W_j per sink.
  std::vector<double> sink_demand;

  LpBuildOptions options;

  /// Converts a solver point into a FractionalDesign.
  FractionalDesign extract(const net::OverlayInstance& instance,
                           const std::vector<double>& point) const;
};

OverlayLp build_overlay_lp(const net::OverlayInstance& instance,
                           const LpBuildOptions& options = {});

}  // namespace omn::core
