#pragma once
// Section 6.4/6.5: color (ISP-diversity) constraints.
//
// The color constraints (9) — at most one stream copy per (sink, ISP) —
// become "entangled set" capacities on the level-2->3 edges of the box
// network, which (paper Figure 3 / experiment E1) breaks plain flow
// integrality.  The paper reformulates the network in path variables,
// relaxes capacities by constant factors ((i) 4u_e, (iii) 4u_i, dropping
// paths costlier than 4X), and applies Srinivasan-Teo Theorem 2.2 to get
// an integral solution violating constraints by an additive 7 and cost by
// a factor <= 14.
//
// Our implementation follows the same pipeline with a sampling-based
// dependent rounding in place of ST's derandomized rounding:
//   1. build the box network (gap.hpp);
//   2. drop pairs with cost > 4X (X = fractional stage cost);
//   3. solve the network LP with the entangled color rows using the
//      simplex substrate (edge-flow form; equivalent to the path form by
//      flow decomposition);
//   4. for each box, select one feeder pair with probability proportional
//      to its LP flow into the box, avoiding pairs already chosen for the
//      same sink when possible (dependent rounding with exactly-one-per-box
//      marginals, the structure ST's theorem rounds);
//   5. selected pairs become x = 1.
// The additive-7 / 14x bounds are validated empirically (experiment E6).

#include <cstdint>
#include <vector>

#include "omn/core/gap.hpp"
#include "omn/core/lp_builder.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/net/instance.hpp"

namespace omn::core {

/// Knobs for the Srinivasan-Teo-style color-constrained rounding.
struct ColorRoundingOptions {
  /// Scaled (x2) per-(sink,color) capacity of the entangled sets.  The
  /// default 2 is the strict constraint (9) (u = 1 stream copy per color,
  /// two half-units); infeasibility triggers the paper's 4u-style
  /// relaxation via relax_retries (each retry doubles the capacity).
  std::int64_t color_capacity_scaled = 2;
  /// Multiplier for the expensive-path filter (paper: 4X).
  double cost_drop_factor = 4.0;
  /// Retries with doubled color capacity if the network LP is infeasible.
  int relax_retries = 2;
  std::uint64_t seed = 1;
  BoxNetworkOptions box_options;
  lp::SolveOptions lp_options;
};

/// Outcome of the color rounding: the integral x plus diagnostics on
/// how far the capacities had to be relaxed and what the cost filter
/// dropped (experiment E6 reports all of these).
struct ColorRoundResult {
  /// Integral x per rd-edge id.
  std::vector<std::uint8_t> x;
  /// Final color capacity that made the network LP feasible.
  std::int64_t color_capacity_used = 0;
  /// False when even relaxed capacities failed and the plain GAP flow was
  /// used as fallback (colors unconstrained).
  bool color_lp_feasible = true;
  int boxes_total = 0;
  int boxes_served = 0;
  /// Number of pairs dropped by the 4X cost filter.
  int pairs_dropped_by_cost = 0;
};

/// Rounds the fractional x-bar under the color constraints (9): builds
/// the box network, drops pairs costlier than cost_drop_factor * X,
/// solves the entangled network LP, and samples one feeder per box
/// (dependent rounding).  Falls back to the plain GAP flow when even the
/// relaxed capacities are infeasible (color_lp_feasible = false).
ColorRoundResult color_constrained_round(const net::OverlayInstance& instance,
                                         const OverlayLp& lp,
                                         const std::vector<double>& x_bar,
                                         const ColorRoundingOptions& options);

}  // namespace omn::core
