#pragma once
// Solution representations for the overlay design problem.
//
// Index spaces (shared with the LP builder):
//   z:  one slot per reflector i                        -> built?
//   y:  one slot per (commodity k, reflector i), flat   -> stream delivered?
//   x:  one slot per reflector->sink edge id            -> edge serves sink?
// The commodity of an x slot is implied by its sink (the paper's WLOG:
// every sink demands exactly one commodity).

#include <cstdint>
#include <vector>

#include "omn/net/instance.hpp"

namespace omn::core {

/// Flat index of y^k_i.
inline std::size_t y_index(const net::OverlayInstance& instance, int k, int i) {
  return static_cast<std::size_t>(k) *
             static_cast<std::size_t>(instance.num_reflectors()) +
         static_cast<std::size_t>(i);
}

/// A 0/1 design (the algorithm's final output).
struct Design {
  std::vector<std::uint8_t> z;  // [R]
  std::vector<std::uint8_t> y;  // [S*R]
  std::vector<std::uint8_t> x;  // [#rd edges]

  static Design zeros(const net::OverlayInstance& instance);

  /// Total dollar cost: sum r_i z_i + sum c_ki y_ki + sum c_ij x_ij.
  double cost(const net::OverlayInstance& instance) const;

  /// Forces consistency upward: x=1 implies y=1 implies z=1.
  void close_upward(const net::OverlayInstance& instance);

  /// Drops y with no supporting x and z with no supporting y (pure cost
  /// reduction; never affects delivered weight).
  void prune_unused(const net::OverlayInstance& instance);
};

/// A fractional design (LP optimum or post-randomized-rounding state).
struct FractionalDesign {
  std::vector<double> z;
  std::vector<double> y;
  std::vector<double> x;

  static FractionalDesign zeros(const net::OverlayInstance& instance);

  double cost(const net::OverlayInstance& instance) const;
};

}  // namespace omn::core
