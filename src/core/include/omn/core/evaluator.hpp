#pragma once
// Measures a 0/1 design against the instance: dollar cost, fanout usage,
// delivered reliability weight per sink (the LP's currency), exact
// delivery probability (the user's currency; exact because two-hop paths
// into a sink are independent in a 3-level network, paper Section 1.5),
// color multiplicities, and structural consistency.

#include <vector>

#include "omn/core/design.hpp"
#include "omn/net/instance.hpp"

namespace omn::core {

/// Per-sink view of a design: delivered weight vs demand, exact delivery
/// probability, and per-ISP copy counts.
struct SinkEvaluation {
  /// Index of the sink this row describes.
  int sink = 0;
  /// W_j (demand weight) and the sum of clamped weights actually delivered.
  double demand_weight = 0.0;
  double delivered_weight = 0.0;
  /// delivered_weight / demand_weight (>= 1 means constraint met;
  /// >= 0.25 is the paper's factor-4 guarantee).
  double weight_ratio = 0.0;
  /// Exact probability that a packet reaches the sink via at least one
  /// serving path (product formula over independent paths).
  double delivery_probability = 0.0;
  /// The sink's required threshold Phi.
  double threshold = 0.0;
  /// Number of serving reflectors (copies of the stream received).
  int copies = 0;
  /// Copies per ISP color (size = instance.num_colors()).
  std::vector<int> copies_per_color;
};

/// Full scorecard of a 0/1 design: dollar costs by component, fanout
/// utilization, weight-ratio statistics against the paper's guarantees,
/// color multiplicities, and structural consistency.
struct Evaluation {
  /// Dollar cost: reflector_cost + sr_edge_cost + rd_edge_cost.
  double total_cost = 0.0;
  double reflector_cost = 0.0;
  double sr_edge_cost = 0.0;
  double rd_edge_cost = 0.0;

  int reflectors_built = 0;
  int streams_delivered = 0;  // sum of y

  /// usage_i / F_i per reflector (bandwidth-weighted under extension 6.1)
  /// and the max over reflectors (<= 1 means no violation; the paper's
  /// guarantee is <= 4).
  std::vector<double> fanout_utilization;
  double max_fanout_utilization = 0.0;

  double min_weight_ratio = 0.0;
  double mean_weight_ratio = 0.0;
  int sinks_total = 0;
  int sinks_meeting_demand = 0;    // ratio >= 1
  int sinks_meeting_quarter = 0;   // ratio >= 1/4 (paper guarantee)
  int sinks_unserved = 0;          // zero copies

  /// Max copies of one stream delivered to one sink from a single color
  /// (extension 6.4 wants <= 1; the ST bound allows a small constant).
  int max_color_copies = 0;

  /// x <= y <= z held structurally.
  bool consistent = true;

  std::vector<SinkEvaluation> sinks;
};

/// Scores `design` against `instance`.  With bandwidth_extension, fanout
/// usage is weighted by each stream's bandwidth (Section 6.1), matching
/// the LP the design was produced from.
Evaluation evaluate(const net::OverlayInstance& instance, const Design& design,
                    bool bandwidth_extension = false);

}  // namespace omn::core
