#pragma once
// Section 3: the randomized rounding stage.
//
// Given the fractional LP optimum (ẑ, ŷ, x̂) and a preset multiplier c > 1:
//
//   [1] ż_i   = min(ẑ_i · c·ln n, 1)
//   [2] ẏ^k_i = min(ŷ^k_i · c·ln n / ż_i, 1)
//   [3] z̄_i = 1 with probability ż_i
//   [4] if z̄_i = 1: ȳ^k_i = 1 with probability ẏ^k_i
//   [5] if ż_i = ẏ^k_i = 1:        x̄ = x̂            (deterministic)
//       else if ȳ^k_i = 1:         x̄ = 1/(c·ln n) with probability x̂/ŷ
//   [6] everything else 0.
//
// The output leaves x̄ fractional; Section 5's GAP stage makes it integral.
// The multiplier is clamped below at 1 so that tiny instances (n = 1, where
// ln n = 0) still round sensibly.

#include <cstdint>

#include "omn/core/design.hpp"
#include "omn/core/lp_builder.hpp"
#include "omn/util/rng.hpp"

namespace omn::core {

struct RoundingOptions {
  /// The paper's preset multiplier c (theory: c = 64 with delta = 1/4;
  /// practice: much smaller works; experiment E8 sweeps this).
  double c = 8.0;
  std::uint64_t seed = 1;
};

struct RoundedSolution {
  /// Integral reflector openings and stream deliveries.
  std::vector<std::uint8_t> z;
  std::vector<std::uint8_t> y;
  /// Fractional x̄ per rd-edge id (values in {0} ∪ {1/(c ln n)} ∪ (0, 1]).
  std::vector<double> x;
  /// The multiplier actually used: max(c · ln n, 1).
  double multiplier = 1.0;
};

RoundedSolution randomized_round(const net::OverlayInstance& instance,
                                 const OverlayLp& lp,
                                 const FractionalDesign& fractional,
                                 const RoundingOptions& options);

}  // namespace omn::core
