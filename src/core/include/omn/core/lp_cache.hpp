#pragma once
// LpCache: content-addressed cache of LP solutions, across sweeps and
// across processes.
//
// DesignSweep's planner already dedupes LP solves *within* one run; this
// cache extends the memoization across DesignSweep::run calls, across
// OverlayDesigner::design calls, and (with a directory) across processes.
// The key is a 128-bit digest of everything the solve depends on:
//
//   key = H( canonical instance content , LpBuildOptions , SolveOptions )
//
// Canonical instance content covers exactly the fields that shape the LP —
// entity counts, source bandwidths, reflector cost/fanout/color/stream
// capacity, sink commodity/threshold, and both edge lists (endpoints,
// costs, losses, capacities) in id order.  Names and propagation delays
// are excluded: they never enter the LP, so two instances differing only
// there hash equal ("semantically identical instances hash equal").  Edge
// *order* is included because it defines the LP's variable order.
//
// The cached value is the lp::Solution alone, not the OverlayLp: the
// build is cheap and deterministic, so a hit rebuilds the model and skips
// only the simplex solve (the dominant cost).  Because the solver is
// deterministic, a cached point is bit-identical to a fresh solve —
// designs produced with the cache on and off are byte-for-byte equal.
//
// Tiers:
//  - in-memory: a mutex-guarded map, shared across threads and layers by
//    installing the cache on a util::ExecutionContext
//    (context.set_service(std::make_shared<LpCache>(...))); DesignSweep
//    and OverlayDesigner consult the context's service automatically.
//  - on-disk (optional): one versioned binary file per entry in a cache
//    directory, named by the key's hex digest.  Writes go to a unique
//    temp file followed by an atomic rename, so concurrent sweep
//    processes can share one directory without readers ever seeing a
//    partial entry.  Corrupt, truncated, or version-mismatched entries
//    are rejected (and re-solved), never trusted.
//
// Entry format v2 (all fields little-endian; see docs/ARCHITECTURE.md):
//
//   u32 magic 0x4F4C5043 ("CPLO")   u32 version (2)
//   u64 key.hi   u64 key.lo
//   u32 solve status                i32 iterations   i32 phase1_iterations
//   f64 objective                   f64 max_violation
//   u64 n                           f64 x[n]            (exact bit patterns)
//   i32 refactorizations            u8 warm_started
//   u8 has_basis                    [u64 ns  u8 state[ns]  u64 nb  i32 basic[nb]]
//   u64 checksum (util::Hasher digest.lo of all preceding bytes)
//
// v1 entries (the format without the refactorizations/warm_started/basis
// block) are still read — old cache directories keep working; they just
// carry no basis to warm-start from.  Writes always produce v2.
//
// Basis warm-start (opt-in): optimal bases are also indexed in memory by a
// structural "shape" digest (lp_shape_digest: everything that determines
// the LP's dimensions and sparsity pattern, but none of the float data).
// A solve for a near-miss instance — same shape, different costs — can
// fetch that basis and start from it instead of from scratch.  This is
// off by default at every call site because a warm-started solve may
// return a *different optimal vertex* than a cold one, which would break
// the bit-identity guarantees (serial vs parallel, cache on/off,
// distributed vs serial) the rest of the stack advertises; callers opt in
// per run via DesignerConfig::lp_warm_start / --warm-start.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>

#include "omn/core/lp_builder.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/net/instance.hpp"
#include "omn/util/hash.hpp"
#include "omn/util/thread_annotations.hpp"

namespace omn::core {

/// Cache traffic counters (monotonic since construction).
struct LpCacheStats {
  std::size_t hits = 0;         ///< memory_hits + disk_hits
  std::size_t memory_hits = 0;  ///< served from the in-memory tier
  std::size_t disk_hits = 0;    ///< loaded from the cache directory
  std::size_t misses = 0;       ///< neither tier had a valid entry
  std::size_t insertions = 0;   ///< entries stored via insert()
  std::size_t rejected = 0;     ///< corrupt/mismatched disk entries refused
  std::size_t warm_hits = 0;    ///< shape-index lookups that found a basis
};

class LpCache {
 public:
  /// On-disk entry format version; bumped on any layout change so stale
  /// files are rejected instead of misread.  read_entry additionally
  /// accepts the previous version (v1, basis-less).
  static constexpr std::uint32_t kFormatVersion = 2;

  /// Memory-only cache.
  LpCache() = default;
  /// Memory + disk tiers.  Creates `directory` (and parents) if missing;
  /// throws std::filesystem::filesystem_error when that fails.
  explicit LpCache(std::string directory);

  LpCache(const LpCache&) = delete;
  LpCache& operator=(const LpCache&) = delete;

  /// The content key of one LP solve.  Equal keys guarantee (up to hash
  /// collision) the same model and options, hence — the solver being
  /// deterministic — the same solution.
  static util::Digest128 key(const net::OverlayInstance& instance,
                             const LpBuildOptions& build,
                             const lp::SolveOptions& solve);

  /// Looks the key up (memory tier first, then disk).  A disk hit is
  /// promoted into the memory tier.  Thread-safe.
  std::optional<lp::Solution> find(const util::Digest128& key);

  /// Stores the solution under the key in every configured tier.  Disk
  /// write failures are swallowed (the cache is advisory); the atomic
  /// temp-file + rename protocol keeps concurrent writers safe.
  void insert(const util::Digest128& key, const lp::Solution& solution);

  /// Records `basis` as the latest optimal basis for LPs of `shape`
  /// (lp_shape_digest).  Memory-only: shapes index far fewer, larger
  /// objects than solves and a stale basis merely costs one rejected warm
  /// start.  Thread-safe.
  void note_basis(const util::Digest128& shape, const lp::Basis& basis);

  /// The latest basis noted for `shape`, if any (counts as a warm hit in
  /// stats()).  Thread-safe.
  std::optional<lp::Basis> find_basis(const util::Digest128& shape);

  /// The cache directory, or empty for a memory-only cache.
  const std::string& directory() const { return directory_; }

  LpCacheStats stats() const;

  // ---- entry (de)serialization, exposed for the format tests ------------

  /// Writes one v2 entry for `key` to `os`.
  static void write_entry(std::ostream& os, const util::Digest128& key,
                          const lp::Solution& solution);
  /// Parses one entry (v2 or legacy v1), validating magic, version, key,
  /// structure, and checksum.  Returns nullopt on any mismatch (including
  /// trailing or missing bytes) — a rejected entry is indistinguishable
  /// from a miss.
  static std::optional<lp::Solution> read_entry(std::istream& is,
                                                const util::Digest128& key);

 private:
  std::string path_for(const util::Digest128& key) const;
  std::optional<lp::Solution> load_from_disk(const util::Digest128& key);
  void store_to_disk(const util::Digest128& key, const lp::Solution& solution);

  std::string directory_;  // empty = memory-only

  // mutex_ covers the memory tier and the counters only; disk I/O happens
  // outside the lock (the atomic temp+rename protocol makes that safe), so
  // a slow filesystem never serializes concurrent memory-tier hits.
  mutable util::Mutex mutex_;
  std::unordered_map<util::Digest128, lp::Solution, util::Digest128Hash>
      memory_ OMN_GUARDED_BY(mutex_);
  std::unordered_map<util::Digest128, lp::Basis, util::Digest128Hash>
      bases_ OMN_GUARDED_BY(mutex_);
  LpCacheStats stats_ OMN_GUARDED_BY(mutex_);
};

/// Canonical digest of the LP-relevant instance content (see the header
/// comment for what is covered and why names/delays are excluded).
util::Digest128 lp_instance_digest(const net::OverlayInstance& instance);

/// Structural digest of the LP an instance+build would produce: entity and
/// edge counts, edge endpoints, commodity/colors, the capacity-presence
/// pattern, and the build options — but none of the float data.  Two
/// instances with equal shape digests yield LPs with identical dimensions,
/// variable order, and sparsity pattern, so an optimal basis for one is a
/// valid (if not optimal) starting basis for the other.
util::Digest128 lp_shape_digest(const net::OverlayInstance& instance,
                                const LpBuildOptions& build);

/// An LP build + solve with optional caching: the model is always (re)built
/// — the build is cheap and deterministic — and the solve is served from
/// `cache` when possible, performed and inserted otherwise.
struct CachedLp {
  OverlayLp lp;
  lp::Solution solution;
  /// True when the solve was served from the cache (no simplex run).
  bool cache_hit = false;
};

/// `cache` may be nullptr (plain build + solve).  This is the single entry
/// point both OverlayDesigner and DesignSweep use, so the key derivation
/// can never diverge between layers.
///
/// With `warm_start` set (and a cache), a byte-cache miss consults the
/// cache's shape index for a basis from a same-shaped instance and solves
/// from it; the result is still inserted into the byte cache under the
/// cold key.  See the warm-start caveat in the header comment — callers
/// that advertise bit-identity must leave this off.
CachedLp solve_overlay_lp_cached(const net::OverlayInstance& instance,
                                 const LpBuildOptions& build,
                                 const lp::SolveOptions& solve,
                                 LpCache* cache, bool warm_start = false);

}  // namespace omn::core
