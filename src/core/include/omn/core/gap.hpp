#pragma once
// Section 5: rounding the remaining fractional x̄ by a modified
// Generalized-Assignment-style min-cost flow over a five-level "box"
// network (paper Figure 2):
//
//   level 1: super-source s
//   level 2: reflectors, edge s->i with the reflector's (post-rounding)
//            fanout capacity
//   level 3: (reflector, sink) pairs with x̄ != 0, edges of capacity 1
//   level 4: per-sink "boxes", each representing 1/2 unit of fractional x̄
//            mass in decreasing-weight order; the last (partial) box of
//            each sink is eliminated
//   level 5: super-sink T, box->T edges of capacity 1/2
//
// All capacities are scaled by 2 so the half-units become integral; an
// integral min-cost flow saturating the boxes exists because the scaled
// fractional flow does (flow integrality), and its cost is at most the
// fractional cost.  Pairs carrying at least one scaled unit become x = 1
// (the paper's "double all x = 1/2" step).  The doubling is where the
// final factor-2 (combined factor-4) violations of the weight and fanout
// constraints come from.

#include <cstdint>
#include <optional>
#include <vector>

#include "omn/core/lp_builder.hpp"
#include "omn/flow/graph.hpp"
#include "omn/net/instance.hpp"

namespace omn::core {

/// The five-level conversion network (shared with the Section-6.5 color
/// rounding, which adds entangled-set constraints on level-2->3 edges).
struct BoxNetwork {
  flow::Graph graph{0};
  int source = 0;
  int sink_t = 0;

  struct Pair {
    int rd_edge_id = 0;      // back-reference into the instance
    int reflector = 0;
    int sink = 0;
    int color = 0;           // reflector's ISP color
    int edge_into_pair = 0;  // graph edge id (reflector -> pair node)
    double cost = 0.0;       // dollar cost c_ij of selecting this pair
  };
  std::vector<Pair> pairs;

  struct Box {
    int sink = 0;
    int node = 0;
    int edge_to_t = 0;  // graph edge id (box -> T)
    /// Graph edge ids (pair -> this box) in the same order as `feeders`.
    std::vector<int> feed_edges;
    /// Indices into `pairs` that contribute mass to this box.
    std::vector<int> feeders;
  };
  std::vector<Box> boxes;

  /// Total demand (scaled units) = number of boxes.
  std::int64_t demand() const { return static_cast<std::int64_t>(boxes.size()); }
};

/// Knobs for the box-network construction (shared by the plain GAP
/// rounding and the Section-6.5 color rounding built on top of it).
struct BoxNetworkOptions {
  /// Paper: always eliminate the last box.  When a sink produced exactly
  /// one (partial) box, eliminating it would leave the sink unserved, so
  /// by default we keep a lone partial box (a strict improvement; noted in
  /// DESIGN.md).
  bool keep_lone_partial_box = true;
  /// Treat x̄ below this as zero.
  double x_epsilon = 1e-9;
};

/// Builds the conversion network from the post-randomized-rounding x̄.
/// `x_bar[id]` is the fractional value for rd-edge id.
BoxNetwork build_box_network(const net::OverlayInstance& instance,
                             const OverlayLp& lp,
                             const std::vector<double>& x_bar,
                             const BoxNetworkOptions& options = {});

/// Outcome of the min-cost-flow rounding: the integral x plus the flow
/// diagnostics tests assert on.
struct GapResult {
  /// Integral x per rd-edge id.
  std::vector<std::uint8_t> x;
  /// True when every box demand was saturated (guaranteed when x̄ came from
  /// a successful rounding; asserted by tests).
  bool saturated = true;
  /// Scaled flow units routed and their (informational) flow cost.
  std::int64_t flow = 0;
  double flow_cost = 0.0;
  int num_boxes = 0;
};

/// Runs the min-cost-flow rounding on the box network.
GapResult gap_round(const net::OverlayInstance& instance, const OverlayLp& lp,
                    const std::vector<double>& x_bar,
                    const BoxNetworkOptions& options = {});

}  // namespace omn::core
