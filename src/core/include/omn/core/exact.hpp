#pragma once
// Exact branch-and-bound solver for the overlay-design IP (Section 2).
//
// The paper proves a log n lower bound on polynomial-time approximation,
// so this solver is exponential by necessity; it exists to certify true
// optima on SMALL instances (tens of binary variables) so that tests and
// experiment E11 can measure the algorithm's real approximation ratio
// instead of the weaker cost / LP-bound proxy.
//
// Method: depth-first branch and bound on the LP relaxation, branching on
// the most fractional variable (z before y before x), pruning nodes whose
// LP bound meets the incumbent.  Variable fixings are applied as bound
// changes on a scratch copy of the model, so no re-building per node.

#include <cstdint>

#include "omn/core/design.hpp"
#include "omn/core/lp_builder.hpp"
#include "omn/net/instance.hpp"

namespace omn::core {

/// Knobs for the branch-and-bound search.
struct ExactOptions {
  /// Give up after this many branch-and-bound nodes (0 = unlimited).
  std::int64_t max_nodes = 200000;
  /// Integrality tolerance.
  double int_tol = 1e-6;
  LpBuildOptions lp_options;
};

/// Outcome of an exact solve: the search status, the best design found
/// (when any), and how much of the tree was explored.
struct ExactResult {
  /// Terminal state of the search.
  enum class Status {
    kOptimal,      // proven optimal design found
    kInfeasible,   // the IP has no feasible design
    kNodeLimit,    // search truncated; `design` holds the incumbent if any
  };
  Status status = Status::kNodeLimit;
  /// The best (for kOptimal: provably optimal) design found.
  Design design;
  /// Dollar cost of `design` (meaningful only when has_design).
  double objective = 0.0;
  /// True when `design` is populated (kOptimal, or kNodeLimit with an
  /// incumbent).
  bool has_design = false;
  std::int64_t nodes_explored = 0;

  bool optimal() const { return status == Status::kOptimal; }
};

/// Solves the IP exactly.  Intended for instances with at most a few dozen
/// binary variables; see ExactOptions::max_nodes.
ExactResult solve_exact(const net::OverlayInstance& instance,
                        const ExactOptions& options = {});

}  // namespace omn::core
