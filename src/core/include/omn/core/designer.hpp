#pragma once
// OverlayDesigner: the end-to-end pipeline of the paper.
//
//   LP relaxation (Section 2)  ->  randomized rounding (Section 3)
//   ->  modified GAP min-cost-flow rounding (Section 5)
//   [or the color-constrained Srinivasan-Teo rounding (Section 6.5)]
//   ->  0/1 design + evaluation.
//
// The LP optimum is kept as a certified lower bound on the optimal IP
// cost, so callers can report the measured approximation ratio
// (cost / LP lower bound <= cost / OPT ratio actually achieved).
//
// Because the guarantees of Sections 4-5 hold "with high probability",
// the designer can retry the randomized stages with fresh seeds and keep
// the best design (highest min weight ratio, then lowest cost) — the
// standard practical use of Monte Carlo rounding.

#include <cstdint>
#include <string>

#include "omn/core/color_rounding.hpp"
#include "omn/core/design.hpp"
#include "omn/core/evaluator.hpp"
#include "omn/core/gap.hpp"
#include "omn/core/lp_builder.hpp"
#include "omn/core/rounding.hpp"
#include "omn/lp/simplex.hpp"
#include "omn/net/instance.hpp"
#include "omn/util/execution_context.hpp"
#include "omn/util/json.hpp"

namespace omn::core {

struct DesignerConfig {
  /// The rounding multiplier c (Section 3).
  double c = 8.0;
  std::uint64_t seed = 1;
  /// Number of independent rounding attempts; best design wins.
  int rounding_attempts = 3;
  /// Cap on the threads concurrently running rounding attempts (the
  /// calling thread included): 0 = the execution context's full
  /// concurrency, 1 = serial.  Attempt seeds are derived deterministically
  /// from `seed`, so the winning design is bit-identical for every thread
  /// count and execution context.
  int threads = 0;
  /// Enable the Section 6.4/6.5 color constraints.
  bool color_constraints = false;
  /// Enable the Section 6.1 bandwidth extension.
  bool bandwidth_extension = false;
  /// Enable the Section 6.3 per-edge capacities.
  bool rd_capacities = false;
  /// Enable the Section 6.2 per-reflector stream capacities (constraint
  /// (8); only a c log n violation guarantee exists, see the paper).
  bool reflector_stream_capacities = false;
  /// Drop unused y/z after rounding (cost-only cleanup).
  bool prune_unused = true;
  /// Include the paper's cutting plane (4) in the LP.
  bool cutting_plane = true;
  /// Warm-start LP solves from the optimal basis of a previously solved
  /// same-shaped instance (needs an LpCache service on the context).  Off
  /// by default: a warm-started solve can land on a different optimal
  /// vertex, which breaks the bit-identity guarantees (serial vs parallel,
  /// cache on/off) — opt in only when iteration speed matters more.
  bool lp_warm_start = false;
  lp::SolveOptions lp_options;
  ColorRoundingOptions color_options;
  BoxNetworkOptions box_options;
};

enum class DesignStatus {
  kOk,
  kLpInfeasible,     // some sink cannot be served at all
  kLpIterationLimit, // simplex gave up (raise lp_options.max_iterations)
};

std::string to_string(DesignStatus status);

/// Attempt quality order used to keep the best rounding attempt: higher min
/// weight ratio wins, ties broken by more sinks meeting the full demand,
/// then by lower cost.  The floating-point keys are compared with a
/// relative tolerance so FMA / compiler / optimization differences in the
/// last bits cannot flip the selection.  Exposed for tests.
bool better_evaluation(const Evaluation& a, const Evaluation& b);

struct DesignResult {
  DesignStatus status = DesignStatus::kOk;

  Design design;
  Evaluation evaluation;

  /// LP optimum: fractional design and its objective (a lower bound on the
  /// optimal integral cost).
  FractionalDesign lp_design;
  double lp_objective = 0.0;
  int lp_iterations = 0;
  int lp_phase1_iterations = 0;
  /// Basis refactorizations the revised solver performed (0 for the dense
  /// tableau oracle).
  int lp_refactorizations = 0;

  /// cost(design) / lp_objective (>= 1; the measured approximation ratio).
  double cost_ratio = 0.0;

  /// Index (0-based) of the winning rounding attempt and total attempts.
  int winning_attempt = 0;
  int attempts_made = 0;

  /// Stage timings (seconds), each measured independently.  lp_seconds
  /// covers the LP build + simplex solve and stays 0 on the
  /// design_from_lp() path, where the LP was solved by the caller.
  double lp_seconds = 0.0;
  double rounding_seconds = 0.0;

  /// True when the LP solve was served by a core::LpCache installed on
  /// the execution context (lp_seconds then covers only the model
  /// rebuild + cache load).  Always false without a cache service.
  bool lp_cache_hit = false;

  /// True when the LP solve started from a cached same-shape basis
  /// (DesignerConfig::lp_warm_start and a shape-index hit).
  bool lp_warm_start = false;

  bool ok() const { return status == DesignStatus::kOk; }
};

/// One design run's outcome and per-stage timers as a JSON object
/// (status, cost, LP bound and ratio, attempt counts, lp/rounding
/// seconds, cache hit) — what `omn_design design --metrics` records; see
/// docs/EXPERIMENTS.md "Metrics JSON schema".  The design bits are NOT
/// included (they have their own format, design_io.hpp).
util::Json to_json(const DesignResult& result);

/// The LP relaxation options implied by a designer configuration.  Configs
/// with equal build options (and equal `lp_options`) share the same LP
/// relaxation and solution — the key DesignSweep memoizes solves by.
LpBuildOptions lp_build_options(const DesignerConfig& config);

class OverlayDesigner {
 public:
  explicit OverlayDesigner(DesignerConfig config = {}) : config_(config) {}

  /// Runs the full pipeline on `instance`.  Rounding attempts run on
  /// `context`'s shared pool (capped by `config.threads`); the overload
  /// without a context uses ExecutionContext::global(), or runs inline
  /// when the config is serial.  No pools are constructed per call.
  DesignResult design(const net::OverlayInstance& instance) const;
  DesignResult design(const net::OverlayInstance& instance,
                      const util::ExecutionContext& context) const;

  /// The context the no-context overloads run on: serial() when the
  /// config cannot use parallelism anyway (avoids constructing the global
  /// pool), ExecutionContext::global() otherwise.  Exposed so callers
  /// that must install a service first (e.g. an LpCache) can pick the
  /// same context the designer would — the policy lives here only.
  static util::ExecutionContext default_context(const DesignerConfig& config);

  /// Reuses a pre-built LP and its solution (for sweeps that vary only the
  /// rounding configuration, e.g. the c trade-off experiment E8).
  DesignResult design_from_lp(const net::OverlayInstance& instance,
                              const OverlayLp& lp,
                              const lp::Solution& lp_solution) const;
  DesignResult design_from_lp(const net::OverlayInstance& instance,
                              const OverlayLp& lp,
                              const lp::Solution& lp_solution,
                              const util::ExecutionContext& context) const;

  const DesignerConfig& config() const { return config_; }

 private:
  DesignerConfig config_;
};

}  // namespace omn::core
