#pragma once
// DesignSweep: pool-backed batch driver for experiment grids.
//
// Every bench in bench/ runs the same shape of loop: for each instance
// (topology, seed, scale) × each designer configuration (ablation flag,
// attempt count, c value), run the pipeline and tabulate the DesignResult.
// DesignSweep owns that loop and runs the grid cells on a
// util::ThreadPool, so a sweep uses every core while each cell stays
// bit-identical to a serial run (cells are independent and the designer
// itself is deterministic per seed).
//
// Cells are ordered instance-major, config-minor; report.cell(i, c) gives
// random access.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "omn/core/designer.hpp"
#include "omn/net/instance.hpp"

namespace omn::core {

/// One (instance, config) grid cell and its design outcome.
struct SweepCell {
  std::size_t instance_index = 0;
  std::size_t config_index = 0;
  std::string instance_label;
  std::string config_label;
  DesignResult result;
  /// Wall-clock seconds spent on this cell's design() call.
  double seconds = 0.0;
};

struct SweepOptions {
  /// Total threads running grid cells (the calling thread included):
  /// 0 = hardware_concurrency(), 1 = serial.  Cell-internal rounding
  /// attempts always run serially — the grid level owns the parallelism.
  std::size_t threads = 0;
  /// When true, each cell designs with seed = config.seed + instance_index
  /// so Monte Carlo draws are independent across the instance axis (the
  /// usual per-seed experiment shape, e.g. E12).
  bool reseed_per_instance = false;
};

struct SweepReport {
  /// Instance-major, config-minor: cells[i * num_configs + c].
  std::vector<SweepCell> cells;
  std::size_t num_instances = 0;
  std::size_t num_configs = 0;
  /// Wall-clock seconds for the whole grid (serial-vs-parallel speedup is
  /// the ratio of two runs' wall_seconds).
  double wall_seconds = 0.0;

  const SweepCell& cell(std::size_t instance, std::size_t config) const {
    return cells.at(instance * num_configs + config);
  }
};

class DesignSweep {
 public:
  DesignSweep& add_instance(std::string label, net::OverlayInstance instance);
  DesignSweep& add_config(std::string label, DesignerConfig config);

  std::size_t num_instances() const { return instances_.size(); }
  std::size_t num_configs() const { return configs_.size(); }
  std::size_t num_cells() const { return instances_.size() * configs_.size(); }

  /// Runs the full instance × config grid and returns the result table.
  /// The report is identical for every thread count.
  SweepReport run(const SweepOptions& options = {}) const;

 private:
  std::vector<std::pair<std::string, net::OverlayInstance>> instances_;
  std::vector<std::pair<std::string, DesignerConfig>> configs_;
};

}  // namespace omn::core
