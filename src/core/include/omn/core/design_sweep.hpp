#pragma once
// DesignSweep: batch driver for experiment grids, with LP reuse.
//
// Every bench in bench/ runs the same shape of loop: for each instance
// (topology, seed, scale) × each designer configuration (ablation flag,
// attempt count, c value), run the pipeline and tabulate the DesignResult.
// DesignSweep owns that loop and runs the grid cells on a shared
// util::ExecutionContext, so a sweep uses every core while each cell stays
// bit-identical to a serial run (cells are independent and the designer
// itself is deterministic per seed).
//
// LP-reuse planner: configurations that differ only in rounding knobs
// (seed, c, attempt count, prune flag, ...) share the same LP relaxation.
// The planner groups configs by their exact (LpBuildOptions, SolveOptions)
// key, solves each distinct LP once per instance, and fans the rounding
// cells out via design_from_lp — so an E8-style grid (one instance × k
// rounding-only configs) performs exactly one LP solve.  Because the LP
// build and the simplex solve are deterministic, the grouped report is
// bit-identical to the ungrouped one in everything but wall-clock fields.
//
// LP cache: when a core::LpCache service is installed on the execution
// context (context.set_service(...)), the planner consults it before
// solving, so repeated sweeps over the same topology — across run()
// calls, benches, or processes sharing a cache directory — skip the LP
// work entirely; SweepReport::lp_cache_hits/misses make that observable,
// and a warm cache drives lp_solves to 0.  Designs stay bit-identical
// with the cache on or off.
//
// Cells are ordered instance-major, config-minor; report.cell(i, c) gives
// random access.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "omn/core/designer.hpp"
#include "omn/net/instance.hpp"
#include "omn/util/execution_context.hpp"
#include "omn/util/json.hpp"

namespace omn::dist {
struct DistOptions;  // defined in omn/dist/dist_sweep.hpp (omn::dist)
}  // namespace omn::dist

namespace omn::core {

/// One (instance, config) grid cell and its design outcome.
struct SweepCell {
  std::size_t instance_index = 0;
  std::size_t config_index = 0;
  std::string instance_label;
  std::string config_label;
  DesignResult result;
  /// Wall-clock seconds spent on this cell's rounding/design work.  When
  /// the LP was reused, result.lp_seconds holds the *shared* solve's time
  /// (amortized over every cell of the group), not a per-cell cost.
  double seconds = 0.0;
};

struct SweepOptions {
  /// Cap on the TOTAL threads the sweep may use (the calling thread
  /// included): 0 = the execution context's full concurrency, 1 = serial.
  /// With an explicit cap, each cell's nested rounding attempts run
  /// inline so the budget holds; with 0, cells and their attempts share
  /// the context's pool at both levels.  Either way there is one pool and
  /// no configuration oversubscribes the machine.
  std::size_t threads = 0;
  /// When true, each cell designs with seed = config.seed + instance_index
  /// so Monte Carlo draws are independent across the instance axis (the
  /// usual per-seed experiment shape, e.g. E12).
  bool reseed_per_instance = false;
  /// Solve each distinct LP once per instance and share it across the
  /// configs that only differ in rounding knobs.  Disabling re-solves the
  /// LP per cell; the report is bit-identical either way (timing fields
  /// excepted) — the knob exists for measurement and tests.
  bool reuse_lp = true;
};

struct SweepReport {
  /// Instance-major, config-minor: cells[i * num_configs + c].
  std::vector<SweepCell> cells;
  std::size_t num_instances = 0;
  std::size_t num_configs = 0;
  /// Number of distinct LP configurations among the sweep's configs
  /// (groups of configs differing only in rounding knobs).
  std::size_t lp_configs = 0;
  /// Simplex solves actually performed: num_instances * lp_configs when
  /// the planner reused solves (num_cells with reuse_lp off), minus any
  /// solves served by the LP cache.  A fully warm cache makes this 0.
  std::size_t lp_solves = 0;
  /// LP cache traffic, when a core::LpCache service is installed on the
  /// execution context (both stay 0 otherwise).  Hits + misses equals the
  /// planner's distinct (instance, LP config) solves — or num_cells with
  /// reuse_lp off — and lp_solves == lp_cache_misses when a cache is on.
  std::size_t lp_cache_hits = 0;
  std::size_t lp_cache_misses = 0;
  /// Simplex work actually performed across the sweep's LP solves (cache
  /// hits contribute 0 — no pivots ran): total and phase-1 pivot counts,
  /// basis refactorizations, and how many solves started from a cached
  /// same-shape basis (always 0 unless a config sets lp_warm_start).
  std::size_t lp_iterations = 0;
  std::size_t lp_phase1_iterations = 0;
  std::size_t lp_refactorizations = 0;
  std::size_t lp_warm_start_hits = 0;
  /// Wall-clock seconds for the whole grid (serial-vs-parallel speedup is
  /// the ratio of two runs' wall_seconds).  For a merged distributed
  /// report this is the end-to-end time the caller observed when it
  /// recorded one, otherwise the max over the merged shards' walls (the
  /// shards ran concurrently).
  double wall_seconds = 0.0;
  /// Machine-seconds spent producing the cells: equals wall_seconds for a
  /// single-process run; for a merged report it is the SUM of the shards'
  /// walls, so (cpu_seconds / wall_seconds) reads as the effective
  /// parallelism across workers.
  double cpu_seconds = 0.0;

  const SweepCell& cell(std::size_t instance, std::size_t config) const {
    return cells.at(instance * num_configs + config);
  }

  /// Merges a shard report (cells covering any subset of this report's
  /// grid) into this one: each shard cell lands at its global
  /// instance-major slot, the LP counters add up, wall_seconds takes the
  /// max (shards run concurrently) and cpu_seconds the sum of the shards'
  /// walls.  The receiver must carry the full grid dimensions; its cells
  /// vector is sized on first merge.  Throws std::invalid_argument when
  /// the shard's dimensions disagree or a cell indexes outside the grid.
  void merge(const SweepReport& shard);

  /// Cells whose LP solve was shared (reuse planner) or served from the
  /// cache instead of running the simplex: cells - lp_solves -
  /// lp_cache_hits, clamped at 0.  The quantity every summary line and
  /// metrics file reports — defined once here.
  std::size_t saved_by_reuse() const;
};

/// The report's counters and timings as one JSON object (cells, grid
/// dimensions, LP solve/cache counters, saved_by_reuse, wall/cpu
/// seconds) — the schema the --metrics flag and the committed
/// BENCH_*.json perf trajectories are built from; see
/// docs/EXPERIMENTS.md "Metrics JSON schema".  Per-cell results are NOT
/// included: metrics files are counters, not result archives.
util::Json to_json(const SweepReport& report);

class DesignSweep {
 public:
  DesignSweep& add_instance(std::string label, net::OverlayInstance instance);
  DesignSweep& add_config(std::string label, DesignerConfig config);

  std::size_t num_instances() const { return instances_.size(); }
  std::size_t num_configs() const { return configs_.size(); }
  std::size_t num_cells() const { return instances_.size() * configs_.size(); }

  /// The instance added i-th, in cell order — post-pass analyses (e.g. a
  /// bench scanning the winning designs) index it with
  /// SweepCell::instance_index instead of keeping their own copy.
  const net::OverlayInstance& instance(std::size_t i) const {
    return instances_.at(i).second;
  }
  const std::string& instance_label(std::size_t i) const {
    return instances_.at(i).first;
  }
  /// The config added c-th (omn::dist serializes the grid to workers
  /// through these accessors).
  const DesignerConfig& config(std::size_t c) const {
    return configs_.at(c).second;
  }
  const std::string& config_label(std::size_t c) const {
    return configs_.at(c).first;
  }

  /// Runs the full instance × config grid and returns the result table.
  /// The report is identical (timing fields excepted) for every thread
  /// count, execution context, and reuse_lp setting.  The overload without
  /// a context uses ExecutionContext::global() (or runs inline for
  /// threads == 1); pass a caller-owned context to share its pool instead.
  SweepReport run(const SweepOptions& options = {}) const;
  SweepReport run(const SweepOptions& options,
                  const util::ExecutionContext& context) const;

  /// Runs the contiguous instance-major cell range [begin, end) and
  /// returns a partial report: cells.size() == end - begin (each cell
  /// keeping its GLOBAL instance/config indices and labels), the grid
  /// dimensions and lp_configs describing the FULL grid, and the LP
  /// counters covering only this range's solves.  Every cell is
  /// bit-identical to the same cell of a full run() — ranges only change
  /// which (instance, LP config) solves this call performs — which is the
  /// property the distributed engine's shards rest on.  run() is
  /// run_range(0, num_cells()).  Throws std::out_of_range on a bad range.
  SweepReport run_range(std::size_t begin, std::size_t end,
                        const SweepOptions& options,
                        const util::ExecutionContext& context) const;

  /// Shards this grid across worker processes (omn::dist): deterministic
  /// shard plan, frame protocol over worker stdin/stdout, failed-worker
  /// reassignment, optional resumable per-shard checkpoints, and a merged
  /// report whose cells are bit-identical to run() (timing fields
  /// excepted).  DECLARED here but DEFINED in the omn::dist library —
  /// callers must link omn::dist; the core library itself never depends
  /// on process plumbing.  See omn/dist/dist_sweep.hpp.
  SweepReport run_distributed(const SweepOptions& options,
                              const dist::DistOptions& dist_options) const;

  /// The context run(options) uses: serial() for explicitly serial sweeps
  /// (avoids constructing the global pool), ExecutionContext::global()
  /// otherwise.  Exposed so callers that must install a service first
  /// (e.g. an LpCache) pick the same context — the CLI and bench_common
  /// use this instead of restating the policy.
  static util::ExecutionContext default_context(const SweepOptions& options);

 private:
  std::vector<std::pair<std::string, net::OverlayInstance>> instances_;
  std::vector<std::pair<std::string, DesignerConfig>> configs_;
};

}  // namespace omn::core
