#pragma once
// Text (de)serialization of a Design, so the CLI and operational tooling
// can persist the output of a design run and re-load it for evaluation,
// simulation, or failover analysis against the same instance.
//
// Format:
//   omn-design v1
//   z <R>   <bits...>
//   y <S*R> <bits...>
//   x <E>   <bits...>

#include <iosfwd>
#include <string>

#include "omn/core/design.hpp"
#include "omn/net/instance.hpp"

namespace omn::core {

void save_design(const Design& design, std::ostream& os);
/// Loads and validates slot counts against `instance`.
Design load_design(std::istream& is, const net::OverlayInstance& instance);

std::string design_to_text(const Design& design);
Design design_from_text(const std::string& text,
                        const net::OverlayInstance& instance);

void save_design_file(const Design& design, const std::string& path);
Design load_design_file(const std::string& path,
                        const net::OverlayInstance& instance);

}  // namespace omn::core
