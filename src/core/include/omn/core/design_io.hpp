#pragma once
// Text (de)serialization of a Design, so the CLI and operational tooling
// can persist the output of a design run and re-load it for evaluation,
// simulation, or failover analysis against the same instance.
//
// Format:
//   omn-design v1
//   meta <key> <value>   (zero or more; optional provenance block)
//   z <R>   <bits...>
//   y <S*R> <bits...>
//   x <E>   <bits...>

#include <cstdint>
#include <iosfwd>
#include <string>

#include "omn/core/design.hpp"
#include "omn/net/instance.hpp"

namespace omn::core {

/// Optional provenance saved alongside a design: the designer knobs the
/// run used and its per-stage timings, so a loaded plan can report how it
/// was produced.  Serialized as `meta <key> <value>` lines after the
/// header; files written without metadata are byte-identical to the
/// original v1 format, and unknown keys are ignored on load (forward
/// compatibility).
struct DesignMeta {
  std::uint64_t seed = 0;
  double c = 0.0;
  int rounding_attempts = 0;
  int threads = 0;
  double lp_seconds = 0.0;
  double rounding_seconds = 0.0;

  bool operator==(const DesignMeta&) const = default;
};

void save_design(const Design& design, std::ostream& os);
void save_design(const Design& design, std::ostream& os,
                 const DesignMeta& meta);
/// Loads and validates slot counts against `instance`.  The overload with
/// `meta` fills in any `meta` lines present in the stream (fields absent
/// from the file keep their zero defaults).
Design load_design(std::istream& is, const net::OverlayInstance& instance);
Design load_design(std::istream& is, const net::OverlayInstance& instance,
                   DesignMeta* meta);

std::string design_to_text(const Design& design);
Design design_from_text(const std::string& text,
                        const net::OverlayInstance& instance);

void save_design_file(const Design& design, const std::string& path);
void save_design_file(const Design& design, const std::string& path,
                      const DesignMeta& meta);
Design load_design_file(const std::string& path,
                        const net::OverlayInstance& instance);
Design load_design_file(const std::string& path,
                        const net::OverlayInstance& instance,
                        DesignMeta* meta);

}  // namespace omn::core
