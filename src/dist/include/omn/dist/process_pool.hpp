#pragma once
// ProcessPool: the parent side of a fleet of sweep worker processes.
//
// Each worker is a spawned subprocess (util::Subprocess) speaking the
// omn/dist/frame.hpp protocol on its stdin/stdout.  The pool owns spawn,
// framed send/recv per worker, liveness, kill (also the fault-injection
// seam the tests use), and orderly shutdown.  It contains NO scheduling
// policy — which shard goes to which worker, and what happens when one
// dies, lives in DesignSweep::run_distributed.
//
// Thread model: one scheduler thread drives one worker's *stream* —
// send_frame and recv_frame on the same worker index must not race, but
// different workers are fully independent.  Control operations (kill /
// alive / shutdown), by contrast, may come from any thread at any time
// (the fault-injection tests kill a worker while its scheduler is blocked
// in recv_frame), so each worker slot carries a mutex guarding the
// Subprocess handle's control state; the blocking pipe reads themselves
// happen outside that lock, or a kill could never interrupt them.

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "omn/dist/frame.hpp"
#include "omn/util/subprocess.hpp"
#include "omn/util/thread_annotations.hpp"

namespace omn::dist {

class ProcessPool {
 public:
  /// Spawns `count` workers, each running `command` (a full argv, e.g.
  /// {"/path/to/omn_design", "worker", "--lp-cache", dir}).  Throws
  /// std::invalid_argument for an empty command or zero count, and
  /// propagates util::Subprocess::spawn failures.
  ProcessPool(std::vector<std::string> command, std::size_t count);

  /// Kills and reaps any worker still running.
  ~ProcessPool();

  ProcessPool(const ProcessPool&) = delete;
  ProcessPool& operator=(const ProcessPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Sends one frame to worker `w`.  False when the worker is dead or the
  /// pipe write fails (EPIPE after a crash) — the caller reassigns.
  bool send_frame(std::size_t w, FrameType type, std::string_view payload);

  /// Receives and validates one frame from worker `w` (blocking).  Any
  /// status but kOk means the worker died or the stream is corrupt.
  FrameStatus recv_frame(std::size_t w, Frame& out);

  /// SIGKILLs worker `w` (idempotent).  The scheduler calls this on
  /// protocol corruption; the fault-injection tests call it to simulate a
  /// mid-shard crash.
  void kill(std::size_t w);

  /// True while worker `w`'s process is running.
  bool alive(std::size_t w);

  /// Asks worker `w` to exit (kShutdown frame + stdin EOF) and reaps it.
  /// Returns its exit code (128 + signal for a signalled death).
  int shutdown(std::size_t w);

 private:
  /// One spawned worker.  `mutex` serializes the Subprocess control
  /// surface (kill / running / wait / close_stdin all mutate the handle's
  /// pid/reap bookkeeping) across threads.  Stream I/O deliberately runs
  /// on a reference taken under the lock and then released: the pipe fds
  /// are fixed after spawn, per-worker streams are single-threaded by the
  /// scheduler contract above, and kill() must be able to cut a blocked
  /// read short — POSIX guarantees a signal-killed child EOFs the pipe.
  struct Slot {
    util::Mutex mutex;
    util::Subprocess process OMN_GUARDED_BY(mutex);
  };

  // unique_ptr because Mutex is immovable and slots must survive vector
  // setup; the vector itself is immutable after construction.
  std::vector<std::unique_ptr<Slot>> workers_;
};

}  // namespace omn::dist
