#pragma once
// The distributed sweep wire protocol: versioned, checksummed, length-
// prefixed binary frames over a byte stream (worker stdin/stdout).
//
// Frame format v1 (all fields little-endian; see docs/ARCHITECTURE.md):
//
//   u32 magic 0x464E4D4F ("OMNF")   u32 version (1)
//   u32 type                        u64 payload size
//   payload bytes
//   u64 checksum (util::Hasher digest.lo of all preceding bytes,
//                 header included)
//
// The reader is paranoid by design: a frame is either parsed whole and
// checksum-verified, or rejected with a status precise enough for the
// caller to distinguish a cleanly closed stream (kEof — the peer exited)
// from corruption (anything else — the peer, or the pipe, is broken and
// the in-flight shard must be reassigned).  An oversized length prefix is
// rejected before allocation, so garbage bytes can never trigger a
// multi-gigabyte buffer.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

namespace omn::dist {

/// On-wire format version; bumped on any layout change so mismatched
/// parent/worker binaries reject each other instead of misreading.
/// v3: result payloads carry a trailing omn-trace blob (worker span
/// buffers for the merged --trace timeline; empty when tracing is off).
inline constexpr std::uint32_t kFrameVersion = 3;

/// Frames larger than this are rejected before allocation.  Far above any
/// real grid or shard report, far below anything that could OOM a host.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;  // 1 GiB

enum class FrameType : std::uint32_t {
  kGrid = 1,      ///< parent -> worker: the full sweep grid + options
  kShard = 2,     ///< parent -> worker: one cell range to compute
  kResult = 3,    ///< worker -> parent: the shard's partial SweepReport
  kShutdown = 4,  ///< parent -> worker: finish up and exit 0
};

/// Outcome of one read_frame call.
enum class FrameStatus {
  kOk,           ///< frame parsed and checksum-verified
  kEof,          ///< stream ended cleanly AT a frame boundary
  kTruncated,    ///< stream ended inside a frame
  kBadMagic,     ///< first four bytes are not the protocol magic
  kBadVersion,   ///< frame written by an incompatible protocol version
  kBadType,      ///< type field outside the known FrameType range
  kOversized,    ///< length prefix exceeds kMaxFramePayload
  kBadChecksum,  ///< payload arrived but the trailing checksum disagrees
};

/// Human-readable status name (diagnostics and test failure messages).
std::string_view to_string(FrameStatus status);

/// One parsed frame.
struct Frame {
  FrameType type = FrameType::kShutdown;
  std::string payload;
};

/// Serializes one frame (header + payload + trailing checksum).
std::string encode_frame(FrameType type, std::string_view payload);

/// Byte source for read_frame: blocking-reads up to `size` bytes into
/// `data` and returns the count actually read; short only at EOF/error.
using ReadExactFn =
    std::function<std::size_t(char* data, std::size_t size)>;

/// Reads and validates one frame from `read`.  On kOk, `out` holds the
/// frame; on any other status `out` is unspecified.
FrameStatus read_frame(const ReadExactFn& read, Frame& out);

/// Stream conveniences (the worker side reads std::cin / writes
/// std::cout; the golden-format tests drive string streams).
void write_frame(std::ostream& os, FrameType type, std::string_view payload);
FrameStatus read_frame(std::istream& is, Frame& out);

}  // namespace omn::dist
