#pragma once
// ShardPlan: the deterministic partition of a sweep grid into shards.
//
// A DesignSweep grid is a flat instance-major cell range [0, num_cells);
// the plan splits it into `num_shards` contiguous, non-empty,
// near-equal ranges (sizes differ by at most one, larger shards first) —
// a pure function of (num_cells, num_shards), never of worker count,
// timing, or host.  Determinism is what makes shard checkpoints
// addressable across runs: shard k of the same grid is the same cells,
// every time, on every machine.

#include <cstddef>
#include <vector>

namespace omn::dist {

/// One contiguous instance-major cell range [begin, end).
struct ShardRange {
  std::size_t index = 0;  ///< position in the plan (0-based)
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool operator==(const ShardRange&) const = default;
};

struct ShardPlan {
  std::vector<ShardRange> shards;

  /// Partitions [0, num_cells) into min(num_shards, num_cells) non-empty
  /// near-equal contiguous ranges (num_shards == 0 behaves as 1).  An
  /// empty grid yields an empty plan.
  static ShardPlan make(std::size_t num_cells, std::size_t num_shards);
};

}  // namespace omn::dist
