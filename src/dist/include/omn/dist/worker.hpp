#pragma once
// The worker side of the distributed sweep protocol.
//
// A worker is any process whose main() routes to worker_main() when
// argv[1] == "worker": it reads frames from stdin (the grid first, then
// shard assignments), runs each shard via DesignSweep::run_range on its
// own execution context, and writes result frames to stdout.  stdout
// carries ONLY frames — a worker never prints there — and diagnostics go
// to stderr, which the parent leaves attached to its own.
//
// Protocol errors (corrupt frame, shard before grid, range outside the
// grid) terminate the worker with a nonzero exit; the parent treats that
// like a crash and reassigns the shard elsewhere.  A clean stdin EOF or a
// shutdown frame exits 0.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "omn/core/lp_cache.hpp"

namespace omn::dist {

/// The frame loop.  `lp_cache` (may be null) is installed on the
/// execution context the shards run on, so workers sharing a cache
/// directory share LP solves across processes.  Returns a process exit
/// code (0 = clean shutdown or EOF).
int run_worker(std::istream& in, std::ostream& out,
               std::shared_ptr<core::LpCache> lp_cache);

/// Entry point for `<exe> worker [--lp-cache DIR] [--trace-spans]`:
/// parses the flags, builds the cache, and runs run_worker over
/// stdin/stdout.  --trace-spans turns span recording on; drained spans
/// ride back to the parent inside each result frame (v3).  Call from
/// main() when argv[1] == "worker" (omn_design, every bench on
/// bench_common.hpp, and the test binaries all do).
int worker_main(int argc, char** argv);

/// The argv that re-invokes the CURRENT executable as a worker:
/// {util::current_executable_path(), "worker"} plus, when `lp_cache_dir`
/// is non-empty, {"--lp-cache", lp_cache_dir}, plus "--trace-spans" when
/// the calling process is tracing.  Throws std::runtime_error when the
/// executable path cannot be recovered.
std::vector<std::string> self_worker_command(const std::string& lp_cache_dir);

}  // namespace omn::dist
