#pragma once
// Payload codecs for the distributed sweep frame protocol.
//
// Three payloads cross the wire (inside omn/dist/frame.hpp frames):
//
//   grid    parent -> worker   the full DesignSweep definition: sweep
//                              options, every (label, instance) — the
//                              instance as omn-instance text, reusing
//                              omn::net::serialize — and every
//                              (label, DesignerConfig), field by field.
//   shard   parent -> worker   one contiguous instance-major cell range.
//   result  worker -> parent   the shard's partial core::SweepReport,
//                              every double as its exact bit pattern, so
//                              a merged distributed report is
//                              bit-identical to a local run.
//
// All encoders go through util::ByteWriter (fixed-width little-endian);
// all decoders are bounds-checked and return false on any structural
// problem — a rejected payload is treated like a corrupt frame.
//
// grid_digest() names a grid's *content* (instances, configs, labels,
// result-shaping options, shard count): shard checkpoints are keyed on it
// so a resumed sweep only reuses checkpoints from an identical grid.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "omn/core/design_sweep.hpp"
#include "omn/util/hash.hpp"

namespace omn::dist {

/// A decoded grid payload: everything a worker needs to reconstruct the
/// DesignSweep and run any cell range of it bit-identically.
struct WireGrid {
  core::SweepOptions options;
  core::DesignSweep sweep;
};

/// One shard assignment: cells [begin, end) of the instance-major grid.
struct WireShard {
  std::uint64_t shard_index = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// One shard outcome: the shard index plus the partial report
/// (cells carry their global indices; see DesignSweep::run_range).
struct WireResult {
  std::uint64_t shard_index = 0;
  core::SweepReport report;
  /// Opaque omn-trace blob (obs::encode_trace) holding the span buffer
  /// the worker drained after computing this shard; empty when tracing
  /// is off.  Frame v3 field — purely observational: it never enters
  /// the grid digest, checkpoints, or the merged report.
  std::string trace;
};

std::string encode_grid(const core::DesignSweep& sweep,
                        const core::SweepOptions& options);
bool decode_grid(std::string_view payload, WireGrid& out);

std::string encode_shard(const WireShard& shard);
bool decode_shard(std::string_view payload, WireShard& out);

std::string encode_result(const WireResult& result);
bool decode_result(std::string_view payload, WireResult& out);

/// Content digest of the grid a distributed run shards: instances (text),
/// configs, labels, the result-shaping sweep options (reseed_per_instance,
/// reuse_lp — NOT threads, which never changes results), and the shard
/// count.  Checkpoints carry this digest, so resuming with a different
/// grid, option set, or shard plan recomputes instead of mixing results.
util::Digest128 grid_digest(const core::DesignSweep& sweep,
                            const core::SweepOptions& options,
                            std::size_t num_shards);

}  // namespace omn::dist
