#pragma once
// Resumable per-shard result checkpoints for distributed sweeps.
//
// After a shard's result frame is validated, the parent writes the
// shard's partial SweepReport to `<dir>/<grid digest>.shard-<k>.ckpt`
// via the same unique-temp-file + atomic-rename protocol as the LP
// cache's .lpsol entries, so an interrupted distributed sweep never
// leaves a partial checkpoint behind.  On the next run over the SAME
// grid (wire.hpp's grid_digest: instances, configs, labels,
// result-shaping options, shard count), valid checkpoints are merged
// directly and only the missing shards are recomputed.
//
// Checkpoint format v2 (all fields little-endian; see
// docs/ARCHITECTURE.md).  v2 only bumps the version number: the payload
// embeds the wire report encoding, which frame v2 extended, so v1
// checkpoints must be rejected (and recomputed) rather than misread.
//
//   u32 magic 0x4B434D4F ("OMCK")   u32 version (2)
//   u64 digest.hi   u64 digest.lo   (grid_digest of the producing run)
//   u64 shard index   u64 begin   u64 end
//   u64 payload size   payload (wire.hpp report encoding)
//   u64 checksum (util::Hasher digest.lo of all preceding bytes)
//
// Corrupt, truncated, version-mismatched, or foreign-grid files are
// rejected — the shard is simply recomputed; a checkpoint can make a run
// faster, never wrong.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "omn/core/design_sweep.hpp"
#include "omn/dist/shard_plan.hpp"
#include "omn/util/hash.hpp"

namespace omn::dist {

/// On-disk checkpoint format version; bumped on any layout change —
/// including changes to the embedded wire report encoding — so stale
/// files are rejected instead of misread.
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// The checkpoint path for shard `range` of the grid named by `digest`.
std::string checkpoint_path(const std::string& directory,
                            const util::Digest128& digest,
                            const ShardRange& range);

/// Writes the shard's report atomically (unique temp file + rename).
/// Creates `directory` if missing.  Failures are swallowed — a checkpoint
/// is advisory, and a failed store must never fail the sweep.
void write_checkpoint(const std::string& directory,
                      const util::Digest128& digest, const ShardRange& range,
                      const core::SweepReport& report);

/// Loads and fully validates the shard's checkpoint: magic, version,
/// grid digest, shard identity (index AND cell range), checksum, and the
/// payload decode.  Returns nullopt — indistinguishable from "never
/// written" — on any mismatch.
std::optional<core::SweepReport> load_checkpoint(
    const std::string& directory, const util::Digest128& digest,
    const ShardRange& range);

// ---- entry (de)serialization, exposed for the format tests --------------

/// Writes one v1 checkpoint entry to `os`.
void write_checkpoint_entry(std::ostream& os, const util::Digest128& digest,
                            const ShardRange& range,
                            const core::SweepReport& report);

/// Parses one entry, validating everything (see load_checkpoint).
std::optional<core::SweepReport> read_checkpoint_entry(
    std::istream& is, const util::Digest128& digest, const ShardRange& range);

}  // namespace omn::dist
