#pragma once
// omn::dist — multi-process sharded sweep execution.
//
// DesignSweep grids are embarrassingly parallel AND bit-deterministic per
// (instance, config) cell, so a grid can be partitioned (shard_plan.hpp),
// shipped to worker processes over a checksummed frame protocol
// (frame.hpp + wire.hpp), executed via DesignSweep::run_range, and the
// partial reports merged (SweepReport::merge) into a report whose cells
// are bit-identical to a local run() — timing fields excepted.  This file
// holds the options and stats of that engine; the entry point is
// core::DesignSweep::run_distributed(options, DistOptions), which is
// DECLARED in omn/core/design_sweep.hpp but DEFINED in this library
// (core stays free of process plumbing; callers link omn::dist).
//
// Fault tolerance: a worker that dies mid-shard (crash, OOM-kill) or
// returns a corrupt frame is dropped, its shard is reassigned to a
// surviving worker, and the sweep completes as long as ONE worker
// survives.  With a checkpoint directory, finished shards are persisted
// (atomic temp + rename, see checkpoint.hpp) and an interrupted sweep
// resumes without recomputing them.
//
// Workers are ordinary subprocesses running `<exe> worker` (worker.hpp):
// omn_design has the subcommand, every bench on bench_common.hpp
// self-spawns, and nothing in the protocol assumes a shared filesystem —
// sharding across hosts only needs the frames carried over a remote
// transport.  Workers given the same --lp-cache directory share one LP
// cache, so a warm distributed sweep performs zero simplex solves.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "omn/core/design_sweep.hpp"
#include "omn/util/json.hpp"

namespace omn::dist {

/// Observability counters for one run_distributed call (all zero when the
/// grid was empty).  Pass a DistStats* in DistOptions to collect them.
struct DistStats {
  std::size_t shards_total = 0;
  /// Shards merged straight from valid checkpoint files (never executed).
  std::size_t shards_from_checkpoint = 0;
  /// Shards actually executed by workers this run.
  std::size_t shards_computed = 0;
  /// Shard assignments that failed (worker death or protocol corruption)
  /// and were handed to another worker.
  std::size_t shards_reassigned = 0;
  std::size_t workers_spawned = 0;
  /// Workers dropped after a failed assignment.
  std::size_t workers_failed = 0;
  std::size_t checkpoints_written = 0;
  /// The per-worker thread cap actually shipped to the workers: the
  /// host's effective budget (SweepOptions::threads, or all cores when
  /// 0) divided across the workers spawned, never below 1.  Stays 0 when
  /// no worker was spawned (every shard came from a checkpoint).  The
  /// --metrics output surfaces this so an oversubscribed host is visible
  /// in the numbers, not just in `top`.
  std::size_t threads_per_worker = 0;
};

/// The stats as one JSON object (field names match the struct) — merged
/// into the --metrics output of every distributed sweep; see
/// docs/EXPERIMENTS.md "Metrics JSON schema".
util::Json to_json(const DistStats& stats);

/// Automatic shard granularity: shards per worker when
/// DistOptions::shards is 0.  Small enough to amortize the per-shard
/// round trip, large enough that reassignment and checkpoint units stay
/// fine-grained.  E8's distributed LP budget is derived from this — keep
/// them in sync through this constant.
inline constexpr std::size_t kDefaultShardsPerWorker = 4;

struct DistOptions {
  /// Worker processes to spawn (at least 1; capped at the pending shard
  /// count, so small grids never spawn idle workers).  The sweep's
  /// thread budget is per HOST: SweepOptions::threads (all cores when 0)
  /// is divided across the workers actually spawned before it is shipped
  /// — `--workers 2 --threads 0` gives each worker half the cores, never
  /// 2x all of them — and each worker sizes its pool to exactly that cap
  /// (DistStats::threads_per_worker).  threads never change results.
  std::size_t workers = 2;
  /// Shard count: 0 = automatic (kDefaultShardsPerWorker per worker),
  /// always capped at the cell count.
  std::size_t shards = 0;
  /// Full argv of the worker process, e.g. {exe, "worker", "--lp-cache",
  /// dir}; see worker.hpp's self_worker_command().  Required.
  std::vector<std::string> worker_command;
  /// Directory for per-shard result checkpoints; empty = no checkpoints.
  std::string checkpoint_dir;
  /// Out-param for run telemetry; may be nullptr.
  DistStats* stats = nullptr;
  /// Test-only fault injection: called after shard `shard` is assigned to
  /// worker `worker`; returning true SIGKILLs that worker before its
  /// result is read, exactly like a mid-shard crash.  Leave empty outside
  /// tests.
  std::function<bool(std::size_t worker, std::size_t shard)>
      inject_kill_after_assign;
};

}  // namespace omn::dist
