#include "omn/dist/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "omn/dist/wire.hpp"
#include "omn/util/atomic_file.hpp"
#include "omn/util/bytes.hpp"

namespace omn::dist {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x4B434D4Fu;  // "OMCK" little-endian

}  // namespace

std::string checkpoint_path(const std::string& directory,
                            const util::Digest128& digest,
                            const ShardRange& range) {
  return (fs::path(directory) /
          (digest.hex() + ".shard-" + std::to_string(range.index) + ".ckpt"))
      .string();
}

void write_checkpoint_entry(std::ostream& os, const util::Digest128& digest,
                            const ShardRange& range,
                            const core::SweepReport& report) {
  // The payload is the wire result encoding (shard index + report), so
  // the checkpoint and the live protocol can never drift apart.
  const std::string payload = encode_result(WireResult{range.index, report});
  util::ByteWriter w;
  w.u32(kMagic);
  w.u32(kCheckpointVersion);
  w.u64(digest.hi);
  w.u64(digest.lo);
  w.u64(range.index);
  w.u64(range.begin);
  w.u64(range.end);
  w.u64(payload.size());
  std::string bytes = w.bytes();
  bytes += payload;
  util::ByteWriter tail;
  tail.u64(util::content_checksum(bytes));
  bytes += tail.bytes();
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::optional<core::SweepReport> read_checkpoint_entry(
    std::istream& is, const util::Digest128& digest, const ShardRange& range) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string data = buffer.str();
  util::ByteReader r(data);

  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  util::Digest128 stored;
  std::uint64_t index = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t payload_size = 0;
  if (!r.u32(magic) || magic != kMagic) return std::nullopt;
  if (!r.u32(version) || version != kCheckpointVersion) return std::nullopt;
  if (!r.u64(stored.hi) || !r.u64(stored.lo) || !(stored == digest)) {
    return std::nullopt;
  }
  if (!r.u64(index) || index != range.index) return std::nullopt;
  if (!r.u64(begin) || begin != range.begin) return std::nullopt;
  if (!r.u64(end) || end != range.end) return std::nullopt;
  if (!r.u64(payload_size) || r.remaining() < 8 ||
      payload_size != r.remaining() - 8) {
    return std::nullopt;
  }

  const std::size_t payload_offset = r.position();
  const std::string_view payload =
      std::string_view(data).substr(payload_offset,
                                    static_cast<std::size_t>(payload_size));

  util::ByteReader tail(
      std::string_view(data).substr(payload_offset + payload.size()));
  std::uint64_t checksum = 0;
  if (!tail.u64(checksum) || tail.remaining() != 0) return std::nullopt;
  if (checksum != util::content_checksum(std::string_view(data).substr(
                      0, payload_offset + payload.size()))) {
    return std::nullopt;
  }

  WireResult result;
  if (!decode_result(payload, result)) return std::nullopt;
  if (result.shard_index != range.index) return std::nullopt;
  if (result.report.cells.size() != range.size()) return std::nullopt;
  return std::move(result.report);
}

void write_checkpoint(const std::string& directory,
                      const util::Digest128& digest, const ShardRange& range,
                      const core::SweepReport& report) {
  // Advisory: a failed checkpoint (directory creation or the atomic
  // write) must never fail the sweep — the shard simply isn't resumable.
  try {
    fs::create_directories(directory);
  } catch (const fs::filesystem_error&) {
    return;
  }
  std::ostringstream buffer;
  write_checkpoint_entry(buffer, digest, range, report);
  util::write_file_atomic(checkpoint_path(directory, digest, range),
                          buffer.str());
}

std::optional<core::SweepReport> load_checkpoint(
    const std::string& directory, const util::Digest128& digest,
    const ShardRange& range) {
  std::ifstream in(checkpoint_path(directory, digest, range),
                   std::ios::binary);
  if (!in.good()) return std::nullopt;
  return read_checkpoint_entry(in, digest, range);
}

}  // namespace omn::dist
