// DesignSweep::run_distributed — declared in omn/core/design_sweep.hpp,
// defined here so the core library never depends on process plumbing.
//
// Scheduling: one parent-side thread per worker drives that worker's
// frame stream (send shard, block on result, validate, checkpoint,
// merge).  Shards live in a shared queue; a worker that dies or corrupts
// a frame is dropped and its shard is pushed back for a surviving worker.
// Every failure costs the worker that suffered it, so a shard can fail
// at most once per spawned worker and the sweep fails exactly when the
// last worker dies with shards still pending (a deterministically
// crashing cell exhausts the fleet and surfaces that way).

#include <algorithm>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "omn/core/design_sweep.hpp"
#include "omn/dist/checkpoint.hpp"
#include "omn/dist/dist_sweep.hpp"
#include "omn/dist/frame.hpp"
#include "omn/dist/process_pool.hpp"
#include "omn/dist/shard_plan.hpp"
#include "omn/dist/wire.hpp"
#include "omn/obs/collector.hpp"
#include "omn/obs/timeline.hpp"
#include "omn/obs/trace_codec.hpp"
#include "omn/util/thread_annotations.hpp"
#include "omn/util/timer.hpp"
#include "omn/util/trace.hpp"

namespace omn::core {

namespace {

/// Structural validation of a result frame against its assignment, strict
/// enough that SweepReport::merge below can never throw AND can never
/// leave a hole: right grid dimensions, right cell count, every cell
/// inside the shard's range, and no cell slot repeated (cells == range
/// then follows by pigeonhole — a duplicate would silently shadow a
/// missing cell with a default-constructed one).
bool result_matches_shard(const dist::WireResult& result,
                          const dist::ShardRange& shard,
                          std::size_t num_instances,
                          std::size_t num_configs) {
  const SweepReport& report = result.report;
  if (result.shard_index != shard.index) return false;
  if (report.num_instances != num_instances ||
      report.num_configs != num_configs) {
    return false;
  }
  if (report.cells.size() != shard.size()) return false;
  std::vector<bool> seen(shard.size(), false);
  for (const SweepCell& cell : report.cells) {
    if (cell.instance_index >= num_instances ||
        cell.config_index >= num_configs) {
      return false;
    }
    const std::size_t index =
        cell.instance_index * num_configs + cell.config_index;
    if (index < shard.begin || index >= shard.end) return false;
    if (seen[index - shard.begin]) return false;
    seen[index - shard.begin] = true;
  }
  return true;
}

/// Everything the per-worker scheduler threads share, under one mutex.
/// The pre-spawn (checkpoint resume) and post-join sections run single-
/// threaded but still take the lock — it is uncontended there, and keeps
/// every access to the guarded fields inside an analysis-checked scope.
struct SchedulerState {
  util::Mutex mutex;
  util::CondVar cv;  // shard available, sweep finished, or sweep aborted
  /// Shard count to complete; set before the threads spawn, then const.
  std::size_t target = 0;

  std::deque<dist::ShardRange> pending OMN_GUARDED_BY(mutex);
  std::size_t completed OMN_GUARDED_BY(mutex) = 0;
  std::size_t live_workers OMN_GUARDED_BY(mutex) = 0;
  bool aborted OMN_GUARDED_BY(mutex) = false;
  std::string error OMN_GUARDED_BY(mutex);
  SweepReport merged OMN_GUARDED_BY(mutex);
  dist::DistStats stats OMN_GUARDED_BY(mutex);
};

}  // namespace

SweepReport DesignSweep::run_distributed(
    const SweepOptions& options, const dist::DistOptions& dist_options) const {
  if (dist_options.worker_command.empty()) {
    throw std::invalid_argument(
        "run_distributed: DistOptions::worker_command is required");
  }
  const std::size_t workers = dist_options.workers == 0
                                  ? 1
                                  : dist_options.workers;
  if (num_cells() == 0) {
    // Nothing to shard; keep the empty-grid semantics of run().
    return run_range(0, 0, options, util::ExecutionContext::serial());
  }

  util::Timer wall;
  OMN_TRACE_SPAN("dist.run_distributed");
  const std::size_t num_shards =
      dist_options.shards == 0 ? workers * dist::kDefaultShardsPerWorker
                               : dist_options.shards;
  const dist::ShardPlan plan = dist::ShardPlan::make(num_cells(), num_shards);
  const util::Digest128 digest =
      dist::grid_digest(*this, options, plan.shards.size());

  SchedulerState state;
  std::size_t pending_count = 0;
  {
    util::LockGuard lock(state.mutex);
    state.merged.num_instances = num_instances();
    state.merged.num_configs = num_configs();
    state.merged.cells.resize(num_cells());
    state.stats.shards_total = plan.shards.size();

    // Resume: merge every shard with a valid checkpoint, queue the rest.
    // A checkpoint's payload gets the same structural validation as a
    // live result frame — the checksum is a content hash, not proof the
    // file was written by a correct producer, and merge() must neither
    // throw nor leave holes.
    for (const dist::ShardRange& shard : plan.shards) {
      if (!dist_options.checkpoint_dir.empty()) {
        if (auto report = dist::load_checkpoint(dist_options.checkpoint_dir,
                                                digest, shard)) {
          dist::WireResult result{shard.index, std::move(*report)};
          if (result_matches_shard(result, shard, num_instances(),
                                   num_configs())) {
            state.merged.merge(result.report);
            ++state.stats.shards_from_checkpoint;
            continue;
          }
        }
      }
      state.pending.push_back(shard);
    }
    pending_count = state.pending.size();
  }

  if (pending_count != 0) {
    const std::size_t spawn_count = std::min(workers, pending_count);
    // Workers run on one host, so the thread budget is a HOST budget and
    // must be DIVIDED across the workers actually spawned: N all-cores
    // pools (or N x an explicit cap) would oversubscribe the machine
    // N-fold, while a resume that spawns one worker for one missing
    // shard still gets the whole budget.  The cap shipped here is also
    // the size of the pool each worker constructs (worker.cpp) — no
    // worker ever spins up more threads than its share.  threads never
    // changes results (it is excluded from the grid digest), only wall
    // clock.
    SweepOptions worker_options = options;
    const std::size_t host_budget =
        options.threads != 0
            ? options.threads
            : std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
    worker_options.threads =
        std::max<std::size_t>(host_budget / spawn_count, 1);
    const std::string grid_payload =
        dist::encode_grid(*this, worker_options);
    dist::ProcessPool pool(dist_options.worker_command, spawn_count);
    state.target = pending_count;
    {
      util::LockGuard lock(state.mutex);
      state.stats.threads_per_worker = worker_options.threads;
      state.stats.workers_spawned = spawn_count;
      state.live_workers = spawn_count;
    }

    const auto drive_worker = [&](std::size_t w) {
      // Parent-clock placement of this worker's trace epoch: the worker
      // enables tracing at exec, which is (to visualization accuracy)
      // right now.  See obs::TimelineProcess::offset_micros.
      const std::int64_t trace_offset =
          util::Trace::enabled()
              ? static_cast<std::int64_t>(util::Trace::now_micros())
              : 0;
      // Every failure drops this worker for good, so a shard is retried
      // at most once per spawned worker; the terminal state is simply
      // "no workers left" below.
      const auto fail = [&](const dist::ShardRange* shard) {
        pool.kill(w);
        const util::LockGuard lock(state.mutex);
        --state.live_workers;
        ++state.stats.workers_failed;
        if (shard != nullptr) {
          state.pending.push_back(*shard);
          ++state.stats.shards_reassigned;
        }
        if (state.live_workers == 0 && state.completed < state.target &&
            !state.aborted) {
          state.aborted = true;
          state.error =
              "run_distributed: all workers died with shards pending";
        }
        state.cv.notify_all();
      };

      if (!pool.send_frame(w, dist::FrameType::kGrid, grid_payload)) {
        fail(nullptr);
        return;
      }
      for (;;) {
        dist::ShardRange shard;
        {
          util::LockGuard lock(state.mutex);
          while (state.pending.empty() && state.completed != state.target &&
                 !state.aborted) {
            state.cv.wait(state.mutex);
          }
          if (state.completed == state.target || state.aborted) break;
          shard = state.pending.front();
          state.pending.pop_front();
        }

        bool ok = pool.send_frame(w, dist::FrameType::kShard,
                                  dist::encode_shard(dist::WireShard{
                                      shard.index, shard.begin, shard.end}));
        if (ok && dist_options.inject_kill_after_assign &&
            dist_options.inject_kill_after_assign(w, shard.index)) {
          pool.kill(w);
        }
        dist::Frame frame;
        dist::WireResult result;
        ok = ok && pool.recv_frame(w, frame) == dist::FrameStatus::kOk &&
             frame.type == dist::FrameType::kResult &&
             dist::decode_result(frame.payload, result) &&
             result_matches_shard(result, shard, num_instances(),
                                  num_configs());
        if (!ok) {
          fail(&shard);
          return;
        }

        if (!result.trace.empty()) {
          // Worker span buffers for this shard (frame v3).  A blob that
          // fails to decode is dropped, not fatal: the trace is an
          // observation of the result, never part of it.
          obs::ProcessTrace worker_trace;
          if (obs::decode_trace(result.trace, worker_trace)) {
            worker_trace.name = "worker " + std::to_string(w);
            obs::add_child_trace(obs::TimelineProcess{
                static_cast<std::uint32_t>(w + 1), trace_offset,
                std::move(worker_trace)});
          }
        }

        bool checkpointed = false;
        if (!dist_options.checkpoint_dir.empty()) {
          dist::write_checkpoint(dist_options.checkpoint_dir, digest, shard,
                                 result.report);
          checkpointed = true;
        }
        {
          OMN_TRACE_SPAN([&] {
            return "dist.merge_shard " + std::to_string(shard.index);
          });
          const util::LockGuard lock(state.mutex);
          state.merged.merge(result.report);
          ++state.completed;
          ++state.stats.shards_computed;
          if (checkpointed) ++state.stats.checkpoints_written;
          if (state.completed == state.target) state.cv.notify_all();
        }
      }
      pool.shutdown(w);
    };

    // Raw std::thread (not the shared ThreadPool) on purpose: these
    // scheduler threads spend their lives blocked in pipe I/O, and
    // parking them in the pool would starve compute tasks of workers.
    // omn-lint: allow(raw-concurrency): blocking per-worker scheduler
    // threads must not occupy the shared compute pool
    std::vector<std::thread> threads;
    threads.reserve(spawn_count);
    for (std::size_t w = 0; w < spawn_count; ++w) {
      threads.emplace_back(drive_worker, w);
    }
    for (std::thread& t : threads) t.join();
  }

  SweepReport merged;
  dist::DistStats stats;
  {
    util::LockGuard lock(state.mutex);
    if (state.aborted) throw std::runtime_error(state.error);
    merged = std::move(state.merged);
    stats = state.stats;
  }

  // The merge accumulated max-of-shard walls; the parent measured the
  // true end-to-end wall (queueing and respawns included) — report that.
  merged.wall_seconds = wall.seconds();
  if (dist_options.stats != nullptr) *dist_options.stats = stats;
  return merged;
}

}  // namespace omn::core
