// DesignSweep::run_distributed — declared in omn/core/design_sweep.hpp,
// defined here so the core library never depends on process plumbing.
//
// Scheduling: one parent-side thread per worker drives that worker's
// frame stream (send shard, block on result, validate, checkpoint,
// merge).  Shards live in a shared queue; a worker that dies or corrupts
// a frame is dropped and its shard is pushed back for a surviving worker.
// Every failure costs the worker that suffered it, so a shard can fail
// at most once per spawned worker and the sweep fails exactly when the
// last worker dies with shards still pending (a deterministically
// crashing cell exhausts the fleet and surfaces that way).

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "omn/core/design_sweep.hpp"
#include "omn/dist/checkpoint.hpp"
#include "omn/dist/dist_sweep.hpp"
#include "omn/dist/frame.hpp"
#include "omn/dist/process_pool.hpp"
#include "omn/dist/shard_plan.hpp"
#include "omn/dist/wire.hpp"
#include "omn/util/timer.hpp"

namespace omn::core {

namespace {

/// Structural validation of a result frame against its assignment, strict
/// enough that SweepReport::merge below can never throw AND can never
/// leave a hole: right grid dimensions, right cell count, every cell
/// inside the shard's range, and no cell slot repeated (cells == range
/// then follows by pigeonhole — a duplicate would silently shadow a
/// missing cell with a default-constructed one).
bool result_matches_shard(const dist::WireResult& result,
                          const dist::ShardRange& shard,
                          std::size_t num_instances,
                          std::size_t num_configs) {
  const SweepReport& report = result.report;
  if (result.shard_index != shard.index) return false;
  if (report.num_instances != num_instances ||
      report.num_configs != num_configs) {
    return false;
  }
  if (report.cells.size() != shard.size()) return false;
  std::vector<bool> seen(shard.size(), false);
  for (const SweepCell& cell : report.cells) {
    if (cell.instance_index >= num_instances ||
        cell.config_index >= num_configs) {
      return false;
    }
    const std::size_t index =
        cell.instance_index * num_configs + cell.config_index;
    if (index < shard.begin || index >= shard.end) return false;
    if (seen[index - shard.begin]) return false;
    seen[index - shard.begin] = true;
  }
  return true;
}

}  // namespace

SweepReport DesignSweep::run_distributed(
    const SweepOptions& options, const dist::DistOptions& dist_options) const {
  if (dist_options.worker_command.empty()) {
    throw std::invalid_argument(
        "run_distributed: DistOptions::worker_command is required");
  }
  const std::size_t workers = dist_options.workers == 0
                                  ? 1
                                  : dist_options.workers;
  if (num_cells() == 0) {
    // Nothing to shard; keep the empty-grid semantics of run().
    return run_range(0, 0, options, util::ExecutionContext::serial());
  }

  util::Timer wall;
  const std::size_t num_shards =
      dist_options.shards == 0 ? workers * dist::kDefaultShardsPerWorker
                               : dist_options.shards;
  const dist::ShardPlan plan = dist::ShardPlan::make(num_cells(), num_shards);
  const util::Digest128 digest =
      dist::grid_digest(*this, options, plan.shards.size());

  SweepReport merged;
  merged.num_instances = num_instances();
  merged.num_configs = num_configs();
  merged.cells.resize(num_cells());

  dist::DistStats stats;
  stats.shards_total = plan.shards.size();

  // Resume: merge every shard with a valid checkpoint, queue the rest.
  // A checkpoint's payload gets the same structural validation as a live
  // result frame — the checksum is a content hash, not proof the file
  // was written by a correct producer, and merge() must neither throw
  // nor leave holes.
  std::deque<dist::ShardRange> pending;
  for (const dist::ShardRange& shard : plan.shards) {
    if (!dist_options.checkpoint_dir.empty()) {
      if (auto report = dist::load_checkpoint(dist_options.checkpoint_dir,
                                              digest, shard)) {
        dist::WireResult result{shard.index, std::move(*report)};
        if (result_matches_shard(result, shard, num_instances(),
                                 num_configs())) {
          merged.merge(result.report);
          ++stats.shards_from_checkpoint;
          continue;
        }
      }
    }
    pending.push_back(shard);
  }

  if (!pending.empty()) {
    const std::size_t spawn_count = std::min(workers, pending.size());
    // Workers run on one host, so the thread budget is a HOST budget and
    // must be DIVIDED across the workers actually spawned: N all-cores
    // pools (or N x an explicit cap) would oversubscribe the machine
    // N-fold, while a resume that spawns one worker for one missing
    // shard still gets the whole budget.  The cap shipped here is also
    // the size of the pool each worker constructs (worker.cpp) — no
    // worker ever spins up more threads than its share.  threads never
    // changes results (it is excluded from the grid digest), only wall
    // clock.
    SweepOptions worker_options = options;
    const std::size_t host_budget =
        options.threads != 0
            ? options.threads
            : std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
    worker_options.threads =
        std::max<std::size_t>(host_budget / spawn_count, 1);
    stats.threads_per_worker = worker_options.threads;
    const std::string grid_payload =
        dist::encode_grid(*this, worker_options);
    dist::ProcessPool pool(dist_options.worker_command, spawn_count);
    stats.workers_spawned = spawn_count;

    std::mutex mutex;
    std::condition_variable cv;
    const std::size_t target = pending.size();
    std::size_t completed = 0;
    std::size_t live_workers = spawn_count;
    bool aborted = false;
    std::string error;

    const auto drive_worker = [&](std::size_t w) {
      // Every failure drops this worker for good, so a shard is retried
      // at most once per spawned worker; the terminal state is simply
      // "no workers left" below.
      const auto fail = [&](const dist::ShardRange* shard) {
        pool.kill(w);
        const std::scoped_lock lock(mutex);
        --live_workers;
        ++stats.workers_failed;
        if (shard != nullptr) {
          pending.push_back(*shard);
          ++stats.shards_reassigned;
        }
        if (live_workers == 0 && completed < target && !aborted) {
          aborted = true;
          error = "run_distributed: all workers died with shards pending";
        }
        cv.notify_all();
      };

      if (!pool.send_frame(w, dist::FrameType::kGrid, grid_payload)) {
        fail(nullptr);
        return;
      }
      for (;;) {
        dist::ShardRange shard;
        {
          std::unique_lock lock(mutex);
          cv.wait(lock, [&] {
            return !pending.empty() || completed == target || aborted;
          });
          if (completed == target || aborted) break;
          shard = pending.front();
          pending.pop_front();
        }

        bool ok = pool.send_frame(w, dist::FrameType::kShard,
                                  dist::encode_shard(dist::WireShard{
                                      shard.index, shard.begin, shard.end}));
        if (ok && dist_options.inject_kill_after_assign &&
            dist_options.inject_kill_after_assign(w, shard.index)) {
          pool.kill(w);
        }
        dist::Frame frame;
        dist::WireResult result;
        ok = ok && pool.recv_frame(w, frame) == dist::FrameStatus::kOk &&
             frame.type == dist::FrameType::kResult &&
             dist::decode_result(frame.payload, result) &&
             result_matches_shard(result, shard, num_instances(),
                                  num_configs());
        if (!ok) {
          fail(&shard);
          return;
        }

        bool checkpointed = false;
        if (!dist_options.checkpoint_dir.empty()) {
          dist::write_checkpoint(dist_options.checkpoint_dir, digest, shard,
                                 result.report);
          checkpointed = true;
        }
        {
          const std::scoped_lock lock(mutex);
          merged.merge(result.report);
          ++completed;
          ++stats.shards_computed;
          if (checkpointed) ++stats.checkpoints_written;
          if (completed == target) cv.notify_all();
        }
      }
      pool.shutdown(w);
    };

    std::vector<std::thread> threads;
    threads.reserve(spawn_count);
    for (std::size_t w = 0; w < spawn_count; ++w) {
      threads.emplace_back(drive_worker, w);
    }
    for (std::thread& t : threads) t.join();

    if (aborted) throw std::runtime_error(error);
  }

  // The merge accumulated max-of-shard walls; the parent measured the
  // true end-to-end wall (queueing and respawns included) — report that.
  merged.wall_seconds = wall.seconds();
  if (dist_options.stats != nullptr) *dist_options.stats = stats;
  return merged;
}

}  // namespace omn::core
