#include "omn/dist/shard_plan.hpp"

namespace omn::dist {

ShardPlan ShardPlan::make(std::size_t num_cells, std::size_t num_shards) {
  ShardPlan plan;
  if (num_cells == 0) return plan;
  if (num_shards == 0) num_shards = 1;
  if (num_shards > num_cells) num_shards = num_cells;

  const std::size_t base = num_cells / num_shards;
  const std::size_t extra = num_cells % num_shards;  // first `extra` get +1
  plan.shards.reserve(num_shards);
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t size = base + (s < extra ? 1 : 0);
    plan.shards.push_back(ShardRange{s, cursor, cursor + size});
    cursor += size;
  }
  return plan;
}

}  // namespace omn::dist
