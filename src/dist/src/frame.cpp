#include "omn/dist/frame.hpp"

#include <istream>
#include <ostream>

#include "omn/util/bytes.hpp"
#include "omn/util/hash.hpp"

namespace omn::dist {

namespace {

constexpr std::uint32_t kMagic = 0x464E4D4Fu;  // "OMNF" little-endian

}  // namespace

std::string_view to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kEof: return "eof";
    case FrameStatus::kTruncated: return "truncated";
    case FrameStatus::kBadMagic: return "bad-magic";
    case FrameStatus::kBadVersion: return "bad-version";
    case FrameStatus::kBadType: return "bad-type";
    case FrameStatus::kOversized: return "oversized";
    case FrameStatus::kBadChecksum: return "bad-checksum";
  }
  return "unknown";
}

std::string encode_frame(FrameType type, std::string_view payload) {
  util::ByteWriter w;
  w.u32(kMagic);
  w.u32(kFrameVersion);
  w.u32(static_cast<std::uint32_t>(type));
  w.u64(payload.size());
  // ByteWriter::str would length-prefix again; append the raw payload.
  std::string out = w.bytes();
  out.append(payload.data(), payload.size());
  util::ByteWriter tail;
  tail.u64(util::content_checksum(out));
  out += tail.bytes();
  return out;
}

FrameStatus read_frame(const ReadExactFn& read, Frame& out) {
  // Header: magic, version, type, payload size (20 bytes).  Zero bytes
  // here is the one place EOF is clean — the peer closed between frames.
  char header[20];
  const std::size_t got = read(header, sizeof(header));
  if (got == 0) return FrameStatus::kEof;
  if (got < sizeof(header)) return FrameStatus::kTruncated;

  util::ByteReader r(std::string_view(header, sizeof(header)));
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t type = 0;
  std::uint64_t payload_size = 0;
  r.u32(magic);
  r.u32(version);
  r.u32(type);
  r.u64(payload_size);
  if (magic != kMagic) return FrameStatus::kBadMagic;
  if (version != kFrameVersion) return FrameStatus::kBadVersion;
  if (type < static_cast<std::uint32_t>(FrameType::kGrid) ||
      type > static_cast<std::uint32_t>(FrameType::kShutdown)) {
    return FrameStatus::kBadType;
  }
  if (payload_size > kMaxFramePayload) return FrameStatus::kOversized;

  out.type = static_cast<FrameType>(type);
  out.payload.resize(static_cast<std::size_t>(payload_size));
  if (payload_size > 0 &&
      read(out.payload.data(), out.payload.size()) != out.payload.size()) {
    return FrameStatus::kTruncated;
  }

  char checksum_bytes[8];
  if (read(checksum_bytes, sizeof(checksum_bytes)) != sizeof(checksum_bytes)) {
    return FrameStatus::kTruncated;
  }
  util::ByteReader cr(std::string_view(checksum_bytes, sizeof(checksum_bytes)));
  std::uint64_t stored = 0;
  cr.u64(stored);

  util::Hasher hasher;
  hasher.bytes(header, sizeof(header));
  hasher.bytes(out.payload.data(), out.payload.size());
  if (stored != hasher.digest().lo) return FrameStatus::kBadChecksum;
  return FrameStatus::kOk;
}

void write_frame(std::ostream& os, FrameType type, std::string_view payload) {
  const std::string bytes = encode_frame(type, payload);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

FrameStatus read_frame(std::istream& is, Frame& out) {
  return read_frame(
      [&is](char* data, std::size_t size) -> std::size_t {
        is.read(data, static_cast<std::streamsize>(size));
        return static_cast<std::size_t>(is.gcount());
      },
      out);
}

}  // namespace omn::dist
