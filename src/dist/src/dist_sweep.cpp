#include "omn/dist/dist_sweep.hpp"

namespace omn::dist {

util::Json to_json(const DistStats& stats) {
  util::Json j = util::Json::object();
  j.set("workers_spawned", stats.workers_spawned);
  j.set("workers_failed", stats.workers_failed);
  j.set("threads_per_worker", stats.threads_per_worker);
  j.set("shards_total", stats.shards_total);
  j.set("shards_computed", stats.shards_computed);
  j.set("shards_from_checkpoint", stats.shards_from_checkpoint);
  j.set("shards_reassigned", stats.shards_reassigned);
  j.set("checkpoints_written", stats.checkpoints_written);
  return j;
}

}  // namespace omn::dist
