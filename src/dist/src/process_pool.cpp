#include "omn/dist/process_pool.hpp"

#include <stdexcept>
#include <utility>

namespace omn::dist {

ProcessPool::ProcessPool(std::vector<std::string> command, std::size_t count) {
  if (command.empty()) {
    throw std::invalid_argument("ProcessPool: empty worker command");
  }
  if (count == 0) {
    throw std::invalid_argument("ProcessPool: zero workers");
  }
  workers_.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    auto slot = std::make_unique<Slot>();
    slot->process = util::Subprocess::spawn(command);
    workers_.push_back(std::move(slot));
  }
}

ProcessPool::~ProcessPool() = default;  // Subprocess kills + reaps stragglers

bool ProcessPool::send_frame(std::size_t w, FrameType type,
                             std::string_view payload) {
  Slot& slot = *workers_.at(w);
  const std::string bytes = encode_frame(type, payload);
  // Stream writes belong to this worker's single scheduler thread; take
  // the handle reference under the lock, write outside it, so a blocked
  // write (full pipe) never wedges a concurrent kill().
  util::Subprocess* process = nullptr;
  {
    util::LockGuard lock(slot.mutex);
    process = &slot.process;
  }
  return process->write_exact(bytes.data(), bytes.size());
}

FrameStatus ProcessPool::recv_frame(std::size_t w, Frame& out) {
  Slot& slot = *workers_.at(w);
  // Same pattern as send_frame: recv blocks until the worker answers or
  // dies, and kill() (from the fault-injection tests, or the scheduler's
  // own corruption path) is what makes a dead read return — it must be
  // able to take the slot lock while we sit in read_exact.
  util::Subprocess* process = nullptr;
  {
    util::LockGuard lock(slot.mutex);
    process = &slot.process;
  }
  return read_frame(
      [process](char* data, std::size_t size) {
        return process->read_exact(data, size);
      },
      out);
}

void ProcessPool::kill(std::size_t w) {
  Slot& slot = *workers_.at(w);
  util::LockGuard lock(slot.mutex);
  slot.process.kill();
}

bool ProcessPool::alive(std::size_t w) {
  Slot& slot = *workers_.at(w);
  util::LockGuard lock(slot.mutex);
  return slot.process.running();
}

int ProcessPool::shutdown(std::size_t w) {
  Slot& slot = *workers_.at(w);
  const std::string bytes = encode_frame(FrameType::kShutdown, {});
  util::LockGuard lock(slot.mutex);
  // Holding the lock across wait() is fine here: a worker that got the
  // shutdown frame and stdin EOF exits on its own, no kill required.
  slot.process.write_exact(bytes.data(), bytes.size());  // best effort
  slot.process.close_stdin();
  return slot.process.wait();
}

}  // namespace omn::dist
