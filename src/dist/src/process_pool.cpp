#include "omn/dist/process_pool.hpp"

#include <stdexcept>

namespace omn::dist {

ProcessPool::ProcessPool(std::vector<std::string> command, std::size_t count) {
  if (command.empty()) {
    throw std::invalid_argument("ProcessPool: empty worker command");
  }
  if (count == 0) {
    throw std::invalid_argument("ProcessPool: zero workers");
  }
  workers_.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    workers_.push_back(util::Subprocess::spawn(command));
  }
}

ProcessPool::~ProcessPool() = default;  // Subprocess kills + reaps stragglers

bool ProcessPool::send_frame(std::size_t w, FrameType type,
                             std::string_view payload) {
  const std::string bytes = encode_frame(type, payload);
  return workers_.at(w).write_exact(bytes.data(), bytes.size());
}

FrameStatus ProcessPool::recv_frame(std::size_t w, Frame& out) {
  util::Subprocess& worker = workers_.at(w);
  return read_frame(
      [&worker](char* data, std::size_t size) {
        return worker.read_exact(data, size);
      },
      out);
}

void ProcessPool::kill(std::size_t w) { workers_.at(w).kill(); }

bool ProcessPool::alive(std::size_t w) { return workers_.at(w).running(); }

int ProcessPool::shutdown(std::size_t w) {
  util::Subprocess& worker = workers_.at(w);
  const std::string bytes = encode_frame(FrameType::kShutdown, {});
  worker.write_exact(bytes.data(), bytes.size());  // best effort
  worker.close_stdin();
  return worker.wait();
}

}  // namespace omn::dist
