#include "omn/dist/worker.hpp"

#include <cstring>
#include <iostream>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>

#include "omn/dist/frame.hpp"
#include "omn/dist/wire.hpp"
#include "omn/obs/timeline.hpp"
#include "omn/obs/trace_codec.hpp"
#include "omn/util/execution_context.hpp"
#include "omn/util/subprocess.hpp"
#include "omn/util/trace.hpp"

namespace omn::dist {

int run_worker(std::istream& in, std::ostream& out,
               std::shared_ptr<core::LpCache> lp_cache) {
  std::optional<WireGrid> grid;
  util::ExecutionContext context = util::ExecutionContext::serial();

  for (;;) {
    Frame frame;
    const FrameStatus status = read_frame(in, frame);
    if (status == FrameStatus::kEof) return 0;  // parent went away cleanly
    if (status != FrameStatus::kOk) {
      std::cerr << "omn worker: corrupt frame (" << to_string(status)
                << ")\n";
      return 1;
    }
    switch (frame.type) {
      case FrameType::kGrid: {
        WireGrid decoded;
        if (!decode_grid(frame.payload, decoded)) {
          std::cerr << "omn worker: bad grid payload\n";
          return 1;
        }
        grid.emplace(std::move(decoded));
        // Size the pool to the shipped per-worker cap instead of taking
        // the all-cores global context: run_distributed divides the host
        // budget across co-hosted workers, and a worker that built an
        // all-cores pool anyway would oversubscribe the machine N-fold
        // (the claimant cap bounds work, not threads).  threads == 1
        // constructs no pool at all; 0 (a grid not sent by
        // run_distributed, e.g. a test driving the protocol directly)
        // keeps the all-cores default.  The shared LP cache rides along
        // as a service.
        context = util::ExecutionContext(grid->options.threads);
        if (lp_cache != nullptr) context.set_service(lp_cache);
        break;
      }
      case FrameType::kShard: {
        WireShard shard;
        if (!grid.has_value() || !decode_shard(frame.payload, shard) ||
            shard.end > grid->sweep.num_cells()) {
          std::cerr << "omn worker: bad shard assignment\n";
          return 1;
        }
        WireResult result;
        result.shard_index = shard.shard_index;
        {
          OMN_TRACE_SPAN([&] {
            return "worker.shard " + std::to_string(shard.shard_index);
          });
          result.report = grid->sweep.run_range(
              static_cast<std::size_t>(shard.begin),
              static_cast<std::size_t>(shard.end), grid->options, context);
        }
        if (util::Trace::enabled()) {
          // Drain this shard's spans into the result frame; ticks keep
          // increasing across drains, so the parent can concatenate
          // per-thread streams from successive shards.
          result.trace = obs::encode_trace(obs::drain_process_trace("worker"));
        }
        write_frame(out, FrameType::kResult, encode_result(result));
        out.flush();
        if (!out.good()) {
          std::cerr << "omn worker: cannot write result\n";
          return 1;
        }
        break;
      }
      case FrameType::kShutdown:
        return 0;
      case FrameType::kResult:
        std::cerr << "omn worker: unexpected result frame\n";
        return 1;
    }
  }
}

int worker_main(int argc, char** argv) {
  std::string lp_cache_dir;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lp-cache") == 0 && i + 1 < argc) {
      lp_cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-spans") == 0) {
      // Parent runs with --trace: record spans and ship them in result
      // frames.  No file — the parent owns the merged export.
      util::Trace::set_enabled(true);
    } else {
      std::cerr << "usage: " << argv[0]
                << " worker [--lp-cache DIR] [--trace-spans]\n";
      return 2;
    }
  }
  std::shared_ptr<core::LpCache> cache;
  try {
    if (!lp_cache_dir.empty()) {
      cache = std::make_shared<core::LpCache>(lp_cache_dir);
    }
    return run_worker(std::cin, std::cout, std::move(cache));
  } catch (const std::exception& ex) {
    std::cerr << "omn worker: " << ex.what() << "\n";
    return 1;
  }
}

std::vector<std::string> self_worker_command(const std::string& lp_cache_dir) {
  std::string exe = util::current_executable_path();
  if (exe.empty()) {
    throw std::runtime_error(
        "self_worker_command: cannot resolve the current executable path");
  }
  std::vector<std::string> command{std::move(exe), "worker"};
  if (!lp_cache_dir.empty()) {
    command.push_back("--lp-cache");
    command.push_back(lp_cache_dir);
  }
  // Tracing propagates by inheritance: when the parent is tracing, its
  // workers record spans too and ship them back in result frames.  The
  // flag rides on argv, never in the grid payload, so the grid digest —
  // and with it checkpoint identity — is the same traced or not.
  if (util::Trace::enabled()) command.push_back("--trace-spans");
  return command;
}

}  // namespace omn::dist
