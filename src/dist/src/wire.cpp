#include "omn/dist/wire.hpp"

#include <exception>

#include "omn/net/serialize.hpp"
#include "omn/util/bytes.hpp"

namespace omn::dist {

namespace {

using util::ByteReader;
using util::ByteWriter;

// ---- DesignerConfig ------------------------------------------------------
// Field-by-field, fixed order.  Adding a designer knob MUST extend both
// sides (and bump kFrameVersion in frame.hpp): the codec carries every
// field that can change a cell's result.

void encode_basis(ByteWriter& w, const lp::Basis& b) {
  w.u64(b.state.size());
  for (lp::VarStatus s : b.state) w.u8(static_cast<std::uint8_t>(s));
  w.u64(b.basic.size());
  for (std::int32_t row : b.basic) w.i32(row);
}

bool decode_basis(ByteReader& r, lp::Basis& b) {
  std::uint64_t num_states = 0;
  if (!r.vec_size(num_states, 1)) return false;
  b.state.resize(static_cast<std::size_t>(num_states));
  for (lp::VarStatus& s : b.state) {
    std::uint8_t raw = 0;
    if (!r.u8(raw) || raw > static_cast<std::uint8_t>(lp::VarStatus::kBasic)) {
      return false;
    }
    s = static_cast<lp::VarStatus>(raw);
  }
  std::uint64_t num_basic = 0;
  if (!r.vec_size(num_basic, 4)) return false;
  b.basic.resize(static_cast<std::size_t>(num_basic));
  for (std::int32_t& row : b.basic) {
    if (!r.i32(row) || row < 0 || static_cast<std::uint64_t>(row) >= num_states) {
      return false;
    }
  }
  return true;
}

void encode_solve_options(ByteWriter& w, const lp::SolveOptions& o) {
  w.i32(o.max_iterations);
  w.f64(o.optimality_tol);
  w.f64(o.feasibility_tol);
  w.f64(o.pivot_tol);
  w.i32(o.degenerate_switch);
  w.u8(static_cast<std::uint8_t>(o.algorithm));
  w.u8(static_cast<std::uint8_t>(o.pricing));
  w.i32(o.refactor_interval);
  w.boolean(o.warm_start_basis.has_value());
  if (o.warm_start_basis.has_value()) encode_basis(w, *o.warm_start_basis);
}

bool decode_solve_options(ByteReader& r, lp::SolveOptions& o) {
  if (!(r.i32(o.max_iterations) && r.f64(o.optimality_tol) &&
        r.f64(o.feasibility_tol) && r.f64(o.pivot_tol) &&
        r.i32(o.degenerate_switch))) {
    return false;
  }
  std::uint8_t algorithm = 0;
  std::uint8_t pricing = 0;
  bool has_basis = false;
  if (!r.u8(algorithm) ||
      algorithm > static_cast<std::uint8_t>(lp::Algorithm::kDenseTableau) ||
      !r.u8(pricing) ||
      pricing > static_cast<std::uint8_t>(lp::Pricing::kSteepestEdge) ||
      !r.i32(o.refactor_interval) || !r.boolean(has_basis)) {
    return false;
  }
  o.algorithm = static_cast<lp::Algorithm>(algorithm);
  o.pricing = static_cast<lp::Pricing>(pricing);
  o.warm_start_basis.reset();
  if (has_basis) {
    lp::Basis basis;
    if (!decode_basis(r, basis)) return false;
    o.warm_start_basis = std::move(basis);
  }
  return true;
}

void encode_box_options(ByteWriter& w, const core::BoxNetworkOptions& o) {
  w.boolean(o.keep_lone_partial_box);
  w.f64(o.x_epsilon);
}

bool decode_box_options(ByteReader& r, core::BoxNetworkOptions& o) {
  return r.boolean(o.keep_lone_partial_box) && r.f64(o.x_epsilon);
}

void encode_config(ByteWriter& w, const core::DesignerConfig& c) {
  w.f64(c.c);
  w.u64(c.seed);
  w.i32(c.rounding_attempts);
  w.i32(c.threads);
  w.boolean(c.color_constraints);
  w.boolean(c.bandwidth_extension);
  w.boolean(c.rd_capacities);
  w.boolean(c.reflector_stream_capacities);
  w.boolean(c.prune_unused);
  w.boolean(c.cutting_plane);
  w.boolean(c.lp_warm_start);
  encode_solve_options(w, c.lp_options);
  w.i64(c.color_options.color_capacity_scaled);
  w.f64(c.color_options.cost_drop_factor);
  w.i32(c.color_options.relax_retries);
  w.u64(c.color_options.seed);
  encode_box_options(w, c.color_options.box_options);
  encode_solve_options(w, c.color_options.lp_options);
  encode_box_options(w, c.box_options);
}

bool decode_config(ByteReader& r, core::DesignerConfig& c) {
  return r.f64(c.c) && r.u64(c.seed) && r.i32(c.rounding_attempts) &&
         r.i32(c.threads) && r.boolean(c.color_constraints) &&
         r.boolean(c.bandwidth_extension) && r.boolean(c.rd_capacities) &&
         r.boolean(c.reflector_stream_capacities) &&
         r.boolean(c.prune_unused) && r.boolean(c.cutting_plane) &&
         r.boolean(c.lp_warm_start) &&
         decode_solve_options(r, c.lp_options) &&
         r.i64(c.color_options.color_capacity_scaled) &&
         r.f64(c.color_options.cost_drop_factor) &&
         r.i32(c.color_options.relax_retries) &&
         r.u64(c.color_options.seed) &&
         decode_box_options(r, c.color_options.box_options) &&
         decode_solve_options(r, c.color_options.lp_options) &&
         decode_box_options(r, c.box_options);
}

// ---- Design / Evaluation / DesignResult ----------------------------------

void encode_u8_vec(ByteWriter& w, const std::vector<std::uint8_t>& v) {
  w.u64(v.size());
  for (std::uint8_t b : v) w.u8(b);
}

bool decode_u8_vec(ByteReader& r, std::vector<std::uint8_t>& v) {
  std::uint64_t count = 0;
  if (!r.vec_size(count, 1)) return false;
  v.resize(static_cast<std::size_t>(count));
  for (std::uint8_t& b : v) {
    if (!r.u8(b)) return false;
  }
  return true;
}

void encode_f64_vec(ByteWriter& w, const std::vector<double>& v) {
  w.u64(v.size());
  for (double d : v) w.f64(d);
}

bool decode_f64_vec(ByteReader& r, std::vector<double>& v) {
  std::uint64_t count = 0;
  if (!r.vec_size(count, 8)) return false;
  v.resize(static_cast<std::size_t>(count));
  for (double& d : v) {
    if (!r.f64(d)) return false;
  }
  return true;
}

void encode_i32_vec(ByteWriter& w, const std::vector<int>& v) {
  w.u64(v.size());
  for (int i : v) w.i32(i);
}

bool decode_i32_vec(ByteReader& r, std::vector<int>& v) {
  std::uint64_t count = 0;
  if (!r.vec_size(count, 4)) return false;
  v.resize(static_cast<std::size_t>(count));
  for (int& i : v) {
    if (!r.i32(i)) return false;
  }
  return true;
}

void encode_evaluation(ByteWriter& w, const core::Evaluation& e) {
  w.f64(e.total_cost);
  w.f64(e.reflector_cost);
  w.f64(e.sr_edge_cost);
  w.f64(e.rd_edge_cost);
  w.i32(e.reflectors_built);
  w.i32(e.streams_delivered);
  encode_f64_vec(w, e.fanout_utilization);
  w.f64(e.max_fanout_utilization);
  w.f64(e.min_weight_ratio);
  w.f64(e.mean_weight_ratio);
  w.i32(e.sinks_total);
  w.i32(e.sinks_meeting_demand);
  w.i32(e.sinks_meeting_quarter);
  w.i32(e.sinks_unserved);
  w.i32(e.max_color_copies);
  w.boolean(e.consistent);
  w.u64(e.sinks.size());
  for (const core::SinkEvaluation& s : e.sinks) {
    w.i32(s.sink);
    w.f64(s.demand_weight);
    w.f64(s.delivered_weight);
    w.f64(s.weight_ratio);
    w.f64(s.delivery_probability);
    w.f64(s.threshold);
    w.i32(s.copies);
    encode_i32_vec(w, s.copies_per_color);
  }
}

bool decode_evaluation(ByteReader& r, core::Evaluation& e) {
  if (!(r.f64(e.total_cost) && r.f64(e.reflector_cost) &&
        r.f64(e.sr_edge_cost) && r.f64(e.rd_edge_cost) &&
        r.i32(e.reflectors_built) && r.i32(e.streams_delivered) &&
        decode_f64_vec(r, e.fanout_utilization) &&
        r.f64(e.max_fanout_utilization) && r.f64(e.min_weight_ratio) &&
        r.f64(e.mean_weight_ratio) && r.i32(e.sinks_total) &&
        r.i32(e.sinks_meeting_demand) && r.i32(e.sinks_meeting_quarter) &&
        r.i32(e.sinks_unserved) && r.i32(e.max_color_copies) &&
        r.boolean(e.consistent))) {
    return false;
  }
  std::uint64_t count = 0;
  // Each sink row is at least 7 fixed fields + one vec length.
  if (!r.vec_size(count, 4 + 5 * 8 + 4 + 8)) return false;
  e.sinks.resize(static_cast<std::size_t>(count));
  for (core::SinkEvaluation& s : e.sinks) {
    if (!(r.i32(s.sink) && r.f64(s.demand_weight) &&
          r.f64(s.delivered_weight) && r.f64(s.weight_ratio) &&
          r.f64(s.delivery_probability) && r.f64(s.threshold) &&
          r.i32(s.copies) && decode_i32_vec(r, s.copies_per_color))) {
      return false;
    }
  }
  return true;
}

void encode_design_result(ByteWriter& w, const core::DesignResult& d) {
  w.u32(static_cast<std::uint32_t>(d.status));
  encode_u8_vec(w, d.design.z);
  encode_u8_vec(w, d.design.y);
  encode_u8_vec(w, d.design.x);
  encode_evaluation(w, d.evaluation);
  encode_f64_vec(w, d.lp_design.z);
  encode_f64_vec(w, d.lp_design.y);
  encode_f64_vec(w, d.lp_design.x);
  w.f64(d.lp_objective);
  w.i32(d.lp_iterations);
  w.i32(d.lp_phase1_iterations);
  w.i32(d.lp_refactorizations);
  w.f64(d.cost_ratio);
  w.i32(d.winning_attempt);
  w.i32(d.attempts_made);
  w.f64(d.lp_seconds);
  w.f64(d.rounding_seconds);
  w.boolean(d.lp_cache_hit);
  w.boolean(d.lp_warm_start);
}

bool decode_design_result(ByteReader& r, core::DesignResult& d) {
  std::uint32_t status = 0;
  if (!r.u32(status) ||
      status > static_cast<std::uint32_t>(
                   core::DesignStatus::kLpIterationLimit)) {
    return false;
  }
  d.status = static_cast<core::DesignStatus>(status);
  return decode_u8_vec(r, d.design.z) && decode_u8_vec(r, d.design.y) &&
         decode_u8_vec(r, d.design.x) && decode_evaluation(r, d.evaluation) &&
         decode_f64_vec(r, d.lp_design.z) && decode_f64_vec(r, d.lp_design.y) &&
         decode_f64_vec(r, d.lp_design.x) && r.f64(d.lp_objective) &&
         r.i32(d.lp_iterations) && r.i32(d.lp_phase1_iterations) &&
         r.i32(d.lp_refactorizations) && r.f64(d.cost_ratio) &&
         r.i32(d.winning_attempt) && r.i32(d.attempts_made) &&
         r.f64(d.lp_seconds) && r.f64(d.rounding_seconds) &&
         r.boolean(d.lp_cache_hit) && r.boolean(d.lp_warm_start);
}

void encode_report(ByteWriter& w, const core::SweepReport& report) {
  w.u64(report.num_instances);
  w.u64(report.num_configs);
  w.u64(report.lp_configs);
  w.u64(report.lp_solves);
  w.u64(report.lp_cache_hits);
  w.u64(report.lp_cache_misses);
  w.u64(report.lp_iterations);
  w.u64(report.lp_phase1_iterations);
  w.u64(report.lp_refactorizations);
  w.u64(report.lp_warm_start_hits);
  w.f64(report.wall_seconds);
  w.f64(report.cpu_seconds);
  w.u64(report.cells.size());
  for (const core::SweepCell& cell : report.cells) {
    w.u64(cell.instance_index);
    w.u64(cell.config_index);
    w.str(cell.instance_label);
    w.str(cell.config_label);
    w.f64(cell.seconds);
    encode_design_result(w, cell.result);
  }
}

bool decode_report(ByteReader& r, core::SweepReport& report) {
  std::uint64_t num_instances = 0;
  std::uint64_t num_configs = 0;
  std::uint64_t lp_configs = 0;
  std::uint64_t lp_solves = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t iterations = 0;
  std::uint64_t phase1_iterations = 0;
  std::uint64_t refactorizations = 0;
  std::uint64_t warm_hits = 0;
  if (!(r.u64(num_instances) && r.u64(num_configs) && r.u64(lp_configs) &&
        r.u64(lp_solves) && r.u64(hits) && r.u64(misses) &&
        r.u64(iterations) && r.u64(phase1_iterations) &&
        r.u64(refactorizations) && r.u64(warm_hits) &&
        r.f64(report.wall_seconds) && r.f64(report.cpu_seconds))) {
    return false;
  }
  report.num_instances = static_cast<std::size_t>(num_instances);
  report.num_configs = static_cast<std::size_t>(num_configs);
  report.lp_configs = static_cast<std::size_t>(lp_configs);
  report.lp_solves = static_cast<std::size_t>(lp_solves);
  report.lp_cache_hits = static_cast<std::size_t>(hits);
  report.lp_cache_misses = static_cast<std::size_t>(misses);
  report.lp_iterations = static_cast<std::size_t>(iterations);
  report.lp_phase1_iterations = static_cast<std::size_t>(phase1_iterations);
  report.lp_refactorizations = static_cast<std::size_t>(refactorizations);
  report.lp_warm_start_hits = static_cast<std::size_t>(warm_hits);
  std::uint64_t count = 0;
  // A cell is at least: two u64 indices, two str lengths, seconds, and
  // the result's fixed fields — bound the count well before allocating.
  if (!r.vec_size(count, 2 * 8 + 2 * 8 + 8 + 16)) return false;
  report.cells.resize(static_cast<std::size_t>(count));
  for (core::SweepCell& cell : report.cells) {
    std::uint64_t instance_index = 0;
    std::uint64_t config_index = 0;
    if (!(r.u64(instance_index) && r.u64(config_index) &&
          r.str(cell.instance_label) && r.str(cell.config_label) &&
          r.f64(cell.seconds) && decode_design_result(r, cell.result))) {
      return false;
    }
    cell.instance_index = static_cast<std::size_t>(instance_index);
    cell.config_index = static_cast<std::size_t>(config_index);
  }
  return true;
}

void encode_options(ByteWriter& w, const core::SweepOptions& options) {
  w.u64(options.threads);
  w.boolean(options.reseed_per_instance);
  w.boolean(options.reuse_lp);
}

bool decode_options(ByteReader& r, core::SweepOptions& options) {
  std::uint64_t threads = 0;
  if (!r.u64(threads) || !r.boolean(options.reseed_per_instance) ||
      !r.boolean(options.reuse_lp)) {
    return false;
  }
  options.threads = static_cast<std::size_t>(threads);
  return true;
}

}  // namespace

std::string encode_grid(const core::DesignSweep& sweep,
                        const core::SweepOptions& options) {
  ByteWriter w;
  encode_options(w, options);
  w.u64(sweep.num_instances());
  for (std::size_t i = 0; i < sweep.num_instances(); ++i) {
    w.str(sweep.instance_label(i));
    w.str(net::to_text(sweep.instance(i)));
  }
  w.u64(sweep.num_configs());
  for (std::size_t c = 0; c < sweep.num_configs(); ++c) {
    w.str(sweep.config_label(c));
    encode_config(w, sweep.config(c));
  }
  return w.bytes();
}

bool decode_grid(std::string_view payload, WireGrid& out) {
  ByteReader r(payload);
  if (!decode_options(r, out.options)) return false;
  std::uint64_t num_instances = 0;
  if (!r.vec_size(num_instances, 16)) return false;
  for (std::uint64_t i = 0; i < num_instances; ++i) {
    std::string label;
    std::string text;
    if (!r.str(label) || !r.str(text)) return false;
    try {
      out.sweep.add_instance(std::move(label), net::from_text(text));
    } catch (const std::exception&) {
      return false;  // malformed instance text is corruption, not a throw
    }
  }
  std::uint64_t num_configs = 0;
  if (!r.vec_size(num_configs, 8)) return false;
  for (std::uint64_t c = 0; c < num_configs; ++c) {
    std::string label;
    core::DesignerConfig config;
    if (!r.str(label) || !decode_config(r, config)) return false;
    out.sweep.add_config(std::move(label), config);
  }
  return r.remaining() == 0;
}

std::string encode_shard(const WireShard& shard) {
  ByteWriter w;
  w.u64(shard.shard_index);
  w.u64(shard.begin);
  w.u64(shard.end);
  return w.bytes();
}

bool decode_shard(std::string_view payload, WireShard& out) {
  ByteReader r(payload);
  return r.u64(out.shard_index) && r.u64(out.begin) && r.u64(out.end) &&
         out.begin <= out.end && r.remaining() == 0;
}

std::string encode_result(const WireResult& result) {
  ByteWriter w;
  w.u64(result.shard_index);
  encode_report(w, result.report);
  w.str(result.trace);  // v3: trailing span-buffer blob (may be empty)
  return w.bytes();
}

bool decode_result(std::string_view payload, WireResult& out) {
  ByteReader r(payload);
  return r.u64(out.shard_index) && decode_report(r, out.report) &&
         r.str(out.trace) && r.remaining() == 0;
}

util::Digest128 grid_digest(const core::DesignSweep& sweep,
                            const core::SweepOptions& options,
                            std::size_t num_shards) {
  // The digest hashes the grid payload with threads zeroed: the thread
  // cap never changes results, so a resume with a different --threads
  // still reuses checkpoints.  The shard count IS part of the identity —
  // a different plan produces different shard ranges.
  core::SweepOptions canonical = options;
  canonical.threads = 0;
  const std::string payload = encode_grid(sweep, canonical);
  util::Hasher h;
  h.str("omn-dist-grid-v1");
  h.bytes(payload.data(), payload.size());
  h.u64(num_shards);
  return h.digest();
}

}  // namespace omn::dist
