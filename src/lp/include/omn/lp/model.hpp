#pragma once
// Sparse linear-program model container.
//
// The overlay-design LP (paper Section 2) has Theta(|S|*|R|*|D|) variables
// and constraints; the model stores the constraint matrix as sparse
// triplets and hands the solver a column-compressed view.
//
// Conventions:
//  - objective is always MINIMIZED;
//  - every variable has bounds [lower, upper]; upper may be +infinity;
//  - rows are Ax <= rhs, Ax >= rhs, or Ax == rhs.

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace omn::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class RowSense { kLessEqual, kGreaterEqual, kEqual };

struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  std::string name;
};

struct Row {
  RowSense sense = RowSense::kLessEqual;
  double rhs = 0.0;
  std::string name;
};

/// One nonzero of the constraint matrix.
struct Triplet {
  int row = 0;
  int var = 0;
  double value = 0.0;
};

class Model {
 public:
  /// Adds a variable; returns its index.
  int add_variable(double lower, double upper, double objective,
                   std::string name = {});

  /// Adds an empty row; returns its index.
  int add_row(RowSense sense, double rhs, std::string name = {});

  /// Appends a nonzero coefficient.  Duplicate (row, var) entries are
  /// summed when the matrix is compiled.
  void add_coefficient(int row, int var, double value);

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  std::size_t num_nonzeros() const { return triplets_.size(); }

  const Variable& variable(int v) const { return variables_.at(static_cast<std::size_t>(v)); }
  Variable& variable(int v) { return variables_.at(static_cast<std::size_t>(v)); }
  const Row& row(int r) const { return rows_.at(static_cast<std::size_t>(r)); }
  Row& row(int r) { return rows_.at(static_cast<std::size_t>(r)); }
  const std::vector<Triplet>& triplets() const { return triplets_; }

  /// Computes the activity (A x)_r of every row for a given point.
  std::vector<double> row_activities(const std::vector<double>& x) const;

  /// Objective value c.x of a given point.
  double objective_value(const std::vector<double>& x) const;

  /// Maximum violation of bounds and row senses at a point (0 if feasible).
  double max_infeasibility(const std::vector<double>& x) const;

  /// Validates internal consistency (indices in range, bounds ordered).
  /// Throws std::invalid_argument on problems.
  void validate() const;

 private:
  std::vector<Variable> variables_;
  std::vector<Row> rows_;
  std::vector<Triplet> triplets_;
};

}  // namespace omn::lp
