#pragma once
// Pluggable entering-variable pricing for the revised simplex.
//
// Two rules sit behind SolveOptions::pricing:
//
//  - Dantzig: score a candidate by its rate of objective improvement
//    |d_j|.  No state; cheapest per scan, but blind to how "long" the
//    entering edge is, so it can take many short steps on skewed polytopes.
//  - Steepest edge (Devex reference framework, Forrest-Goldfarb style
//    approximation): score by d_j^2 / gamma_j, where gamma_j approximates
//    the squared norm of the edge direction in a reference framework.
//    Weights start at 1 and are updated from the pivot row each basis
//    change; when they overflow the trust bound the framework resets.
//
// The candidate scan itself lives in the solver (it owns states/bounds);
// this class only scores candidates and maintains the Devex weights.

#include <vector>

#include "omn/lp/simplex.hpp"

namespace omn::lp {

class Pricer {
 public:
  /// Starts a fresh reference framework over `num_columns` candidate
  /// columns.  Called at phase starts; cheap for Dantzig.
  void reset(Pricing rule, int num_columns);

  /// Score for candidate j whose improvement rate is `dj` (> 0, already
  /// sign-adjusted for the bound the variable sits at).  Higher wins.
  double score(int j, double dj) const;

  /// Devex weight update after a basis change: entering column q with
  /// pivot element `alpha_q` = alpha_row[q], leaving column `leaving`;
  /// `alpha_row` is the pivot row in candidate-column space (only entries
  /// for columns < reset()'s num_columns are read).  No-op for Dantzig.
  void on_pivot(int q, int leaving, double alpha_q,
                const std::vector<double>& alpha_row);

  Pricing rule() const { return rule_; }

 private:
  Pricing rule_ = Pricing::kDantzig;
  std::vector<double> weights_;
  double max_weight_ = 1.0;
};

}  // namespace omn::lp
