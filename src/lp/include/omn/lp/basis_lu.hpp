#pragma once
// Sparse LU factorization of a simplex basis with product-form updates.
//
// The revised simplex keeps the m×m basis B implicitly as
//
//     B = (P^T L U) · E_1 · E_2 · ... · E_k
//
// where P L U comes from a left-looking sparse factorization with partial
// pivoting and each eta matrix E_i = I + (w - e_p) e_p^T records one column
// replacement (w = B_prev^{-1} a_entering).  ftran/btran apply the factors
// in the appropriate order, so each costs O(LU fill + eta fill) instead of
// the dense tableau's O(m · total).  The eta file grows by one spike per
// pivot; the solver refactorizes (rebuilding L U from the current basis and
// clearing the file) on a configurable interval or when a pivot looks
// numerically degraded.
//
// Index conventions: "row space" is the model's raw row index i; "slot
// space" is the basis position r (column r of B is the basis column chosen
// for row slot r).  factorize() consumes columns in slot order; ftran maps
// row space -> slot space, btran maps slot space -> row space.

#include <utility>
#include <vector>

namespace omn::lp {

class BasisLu {
 public:
  /// Factorizes the m×m matrix whose slot-r column is `columns[r]`, given
  /// as sparse (row, value) entries (rows unique, any order).  Clears the
  /// eta file.  Returns false when the matrix is numerically singular, in
  /// which case the factorization must not be used.
  bool factorize(int m,
                 const std::vector<std::vector<std::pair<int, double>>>& columns);

  /// Solves B x = b in place: on entry `x` holds b indexed by raw row, on
  /// exit it holds the solution indexed by basis slot.
  void ftran(std::vector<double>& x) const;

  /// Solves Bᵀ y = c in place: on entry `x` holds c indexed by basis slot,
  /// on exit it holds the solution indexed by raw row.
  void btran(std::vector<double>& x) const;

  /// Appends an eta replacing the basis column in slot `slot` with the
  /// entering column whose ftran image is `w` (slot space, dense).  Returns
  /// false — leaving the factorization unchanged — when |w[slot]| is too
  /// small to divide by; the caller must refactorize instead.
  bool update(int slot, const std::vector<double>& w);

  /// Etas accumulated since the last factorize().
  int eta_count() const { return static_cast<int>(etas_.size()); }

  /// Total successful factorize() calls over the object's lifetime.
  int factorizations() const { return factorizations_; }

  int dimension() const { return m_; }

 private:
  struct Eta {
    int slot = 0;       // replaced basis slot p
    double pivot = 0.0; // w[p]
    int begin = 0;      // range into eta_slot_/eta_val_ (entries with i != p)
    int end = 0;
  };

  int m_ = 0;
  int factorizations_ = 0;

  // Permutation: pivot_row_[t] = raw row chosen at elimination step t;
  // row_step_[i] = step at which raw row i became pivotal.
  std::vector<int> pivot_row_;
  std::vector<int> row_step_;
  std::vector<double> diag_;  // U diagonal per step

  // L columns (unit diagonal implicit): per step t, (raw row, multiplier)
  // entries for rows eliminated at step t.
  std::vector<int> l_ptr_;
  std::vector<int> l_row_;
  std::vector<double> l_val_;

  // U columns: per step t, (earlier step s, value) entries above the
  // diagonal.
  std::vector<int> u_ptr_;
  std::vector<int> u_step_;
  std::vector<double> u_val_;

  std::vector<Eta> etas_;
  std::vector<int> eta_slot_;
  std::vector<double> eta_val_;

  mutable std::vector<double> work_;
};

}  // namespace omn::lp
