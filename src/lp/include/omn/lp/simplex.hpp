#pragma once
// Two-phase primal simplex for linear programs with bounded variables.
//
// This is the LP substrate the paper's algorithm sits on (Section 2: "We
// solve the LP to optimality and find a fractional solution").  It is a
// dense-tableau bounded-variable simplex:
//
//  - every row is normalized to `Ax <= b` (>= rows are negated; == rows get
//    a slack fixed to [0,0]) and given a slack in [0, +inf);
//  - rows whose slack cannot absorb the initial residual get an artificial
//    variable; phase I minimizes the sum of artificials;
//  - variables may sit nonbasic at either bound; bound flips are handled
//    without a basis change (Chvatal ch. 8 upper-bounding technique);
//  - Dantzig pricing with an automatic switch to Bland's rule after a run
//    of degenerate pivots, which guarantees termination.
//
// The dense tableau keeps the implementation transparent and exactly
// reproducible; it is comfortably fast for the O(|S||R||D|)-variable
// overlay LPs used in the paper's regime (thousands of variables).

#include <string>
#include <vector>

#include "omn/lp/model.hpp"

namespace omn::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

std::string to_string(SolveStatus status);

struct SolveOptions {
  /// 0 = automatic: max(20000, 60 * (rows + vars)).
  int max_iterations = 0;
  /// Reduced-cost optimality tolerance.
  double optimality_tol = 1e-9;
  /// Feasibility tolerance for phase-I residual and final checks.
  double feasibility_tol = 1e-7;
  /// Minimum admissible pivot magnitude.
  double pivot_tol = 1e-8;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int degenerate_switch = 64;

  /// The solver is deterministic, so equal options (and an equal model)
  /// produce the same Solution — used by LP-memoizing callers.
  bool operator==(const SolveOptions&) const = default;
};

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Objective value c.x (minimization) of the returned point.
  double objective = 0.0;
  /// Primal values for the model's structural variables.
  std::vector<double> x;
  /// Total simplex pivots (both phases).
  int iterations = 0;
  /// Pivots spent in phase I.
  int phase1_iterations = 0;
  /// max constraint/bound violation of the returned point, as measured by
  /// Model::max_infeasibility (diagnostic; ~1e-9 for healthy solves).
  double max_violation = 0.0;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

class SimplexSolver {
 public:
  /// Solves `model` (minimization).  The model is not modified.
  Solution solve(const Model& model, const SolveOptions& options = {}) const;
};

}  // namespace omn::lp
