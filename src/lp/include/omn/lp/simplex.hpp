#pragma once
// Two-phase primal simplex for linear programs with bounded variables.
//
// This is the LP substrate the paper's algorithm sits on (Section 2: "We
// solve the LP to optimality and find a fractional solution").  Two
// interchangeable cores sit behind one options struct:
//
//  - `Algorithm::kRevised` (default): a revised simplex that keeps the
//    column-compressed A, maintains the basis as a sparse LU factorization
//    with product-form (eta-file) updates and periodic refactorization, and
//    solves B·y = a_q / Bᵀ·z = c_B by substitution.  Per-pivot work is
//    proportional to basis fill, not to the full tableau, which is what the
//    overlay LPs' extreme sparsity rewards.  Pricing is pluggable
//    (`SolveOptions::pricing`): Dantzig or Devex-style steepest edge with
//    reference-framework weight updates.
//  - `Algorithm::kDenseTableau`: the original dense full-tableau core, kept
//    as an in-tree differential oracle.  It always prices Dantzig (with the
//    Bland switch), so its pivot sequences are bit-stable references.
//
// Shared mechanics (identical standard form in both cores):
//
//  - every row is normalized to `Ax <= b` (>= rows are negated; == rows get
//    a slack fixed to [0,0]) and given a slack in [0, +inf);
//  - rows whose slack cannot absorb the initial residual get an artificial
//    variable; phase I minimizes the sum of artificials;
//  - variables may sit nonbasic at either bound; bound flips are handled
//    without a basis change (Chvatal ch. 8 upper-bounding technique);
//  - an automatic switch to Bland's rule after a run of degenerate pivots
//    guarantees termination.
//
// Optimal solves export their final basis (`Solution::basis`); the revised
// core accepts one back via `SolveOptions::warm_start_basis` and, when it is
// still primal feasible for the new model, skips phase I entirely.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "omn/lp/model.hpp"

namespace omn::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

std::string to_string(SolveStatus status);

/// Which simplex core executes the solve.
enum class Algorithm : std::uint8_t {
  kRevised = 0,       ///< sparse LU basis + eta updates (default)
  kDenseTableau = 1,  ///< original dense tableau (differential oracle)
};

/// Entering-variable rule for the revised core.  The dense oracle ignores
/// this and always prices Dantzig, so its pivot counts stay pinned.
enum class Pricing : std::uint8_t {
  kDantzig = 0,       ///< most-negative reduced cost
  kSteepestEdge = 1,  ///< Devex reference-framework weights (default)
};

std::string to_string(Algorithm algorithm);
std::string to_string(Pricing pricing);

/// Per-column simplex status in an exported basis.
enum class VarStatus : std::uint8_t {
  kAtLower = 0,
  kAtUpper = 1,
  kBasic = 2,
};

/// A complete simplex basis over the standard form's n structural + m slack
/// columns (artificials are never exported).  `state[j]` gives column j's
/// status; `basic[r]` the column basic in row r.  A Basis is only meaningful
/// for a model with matching dimensions — importers validate and fall back
/// to a cold start on any mismatch.
struct Basis {
  std::vector<VarStatus> state;  ///< size n + m: structural, then slacks
  std::vector<std::int32_t> basic;  ///< size m: column basic in row r

  bool operator==(const Basis&) const = default;
};

struct SolveOptions {
  /// 0 = automatic: max(20000, 60 * (rows + vars)).
  int max_iterations = 0;
  /// Reduced-cost optimality tolerance.
  double optimality_tol = 1e-9;
  /// Feasibility tolerance for phase-I residual and final checks.
  double feasibility_tol = 1e-7;
  /// Minimum admissible pivot magnitude.
  double pivot_tol = 1e-8;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int degenerate_switch = 64;
  /// Simplex core to run.
  Algorithm algorithm = Algorithm::kRevised;
  /// Entering rule for the revised core (measured default: steepest edge).
  Pricing pricing = Pricing::kSteepestEdge;
  /// Eta updates accumulated before the revised core refactorizes the basis
  /// LU (numeric drift triggers an early refactorization regardless).
  /// Values < 1 behave as 1.
  int refactor_interval = 64;
  /// Optional starting basis for the revised core (ignored by the dense
  /// oracle).  An invalid, singular, or primal-infeasible basis falls back
  /// to the ordinary cold start; a usable one skips phase I.
  std::optional<Basis> warm_start_basis;

  /// The solver is deterministic, so equal options (and an equal model)
  /// produce the same Solution — used by LP-memoizing callers.
  bool operator==(const SolveOptions&) const = default;
};

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Objective value c.x (minimization) of the returned point.
  double objective = 0.0;
  /// Primal values for the model's structural variables.
  std::vector<double> x;
  /// Total simplex pivots (both phases).
  int iterations = 0;
  /// Pivots spent in phase I.
  int phase1_iterations = 0;
  /// max constraint/bound violation of the returned point, as measured by
  /// Model::max_infeasibility (diagnostic; ~1e-9 for healthy solves).
  double max_violation = 0.0;
  /// Basis LU refactorizations performed (revised core; 0 for dense).
  int refactorizations = 0;
  /// True when the solve started from SolveOptions::warm_start_basis
  /// (i.e. the basis was accepted, not merely supplied).
  bool warm_started = false;
  /// Final basis of an optimal solve, exported unless an artificial column
  /// remained basic (degenerate equality rows).  Feed back through
  /// SolveOptions::warm_start_basis to re-solve perturbed instances.
  std::optional<Basis> basis;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

class SimplexSolver {
 public:
  /// Solves `model` (minimization).  The model is not modified.
  Solution solve(const Model& model, const SolveOptions& options = {}) const;
};

}  // namespace omn::lp
