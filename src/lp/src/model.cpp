#include "omn/lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace omn::lp {

int Model::add_variable(double lower, double upper, double objective,
                        std::string name) {
  if (std::isnan(lower) || std::isnan(upper) || lower > upper) {
    throw std::invalid_argument("Model: bad variable bounds for " + name);
  }
  variables_.push_back(Variable{lower, upper, objective, std::move(name)});
  return static_cast<int>(variables_.size()) - 1;
}

int Model::add_row(RowSense sense, double rhs, std::string name) {
  if (std::isnan(rhs)) throw std::invalid_argument("Model: NaN rhs for " + name);
  rows_.push_back(Row{sense, rhs, std::move(name)});
  return static_cast<int>(rows_.size()) - 1;
}

void Model::add_coefficient(int row, int var, double value) {
  if (row < 0 || row >= num_rows()) throw std::out_of_range("Model: bad row index");
  if (var < 0 || var >= num_variables()) throw std::out_of_range("Model: bad var index");
  if (value == 0.0) return;
  triplets_.push_back(Triplet{row, var, value});
}

std::vector<double> Model::row_activities(const std::vector<double>& x) const {
  if (static_cast<int>(x.size()) != num_variables()) {
    throw std::invalid_argument("Model: point dimension mismatch");
  }
  std::vector<double> activity(static_cast<std::size_t>(num_rows()), 0.0);
  for (const Triplet& t : triplets_) {
    activity[static_cast<std::size_t>(t.row)] +=
        t.value * x[static_cast<std::size_t>(t.var)];
  }
  return activity;
}

double Model::objective_value(const std::vector<double>& x) const {
  if (static_cast<int>(x.size()) != num_variables()) {
    throw std::invalid_argument("Model: point dimension mismatch");
  }
  double obj = 0.0;
  for (int v = 0; v < num_variables(); ++v) {
    obj += variables_[static_cast<std::size_t>(v)].objective *
           x[static_cast<std::size_t>(v)];
  }
  return obj;
}

double Model::max_infeasibility(const std::vector<double>& x) const {
  double worst = 0.0;
  for (int v = 0; v < num_variables(); ++v) {
    const Variable& var = variables_[static_cast<std::size_t>(v)];
    const double value = x[static_cast<std::size_t>(v)];
    worst = std::max(worst, var.lower - value);
    if (std::isfinite(var.upper)) worst = std::max(worst, value - var.upper);
  }
  const std::vector<double> activity = row_activities(x);
  for (int r = 0; r < num_rows(); ++r) {
    const Row& row = rows_[static_cast<std::size_t>(r)];
    const double a = activity[static_cast<std::size_t>(r)];
    switch (row.sense) {
      case RowSense::kLessEqual:
        worst = std::max(worst, a - row.rhs);
        break;
      case RowSense::kGreaterEqual:
        worst = std::max(worst, row.rhs - a);
        break;
      case RowSense::kEqual:
        worst = std::max(worst, std::abs(a - row.rhs));
        break;
    }
  }
  return worst;
}

void Model::validate() const {
  for (const Triplet& t : triplets_) {
    if (t.row < 0 || t.row >= num_rows() || t.var < 0 ||
        t.var >= num_variables()) {
      throw std::invalid_argument("Model: triplet index out of range");
    }
    if (!std::isfinite(t.value)) {
      throw std::invalid_argument("Model: non-finite coefficient");
    }
  }
  for (const Variable& v : variables_) {
    if (v.lower > v.upper) throw std::invalid_argument("Model: inverted bounds");
    if (!std::isfinite(v.lower)) {
      throw std::invalid_argument("Model: lower bound must be finite");
    }
  }
}

}  // namespace omn::lp
